#include "graph/cow_graph.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "graph/memgraph.h"
#include "util/random.h"

namespace aion::graph {
namespace {

std::shared_ptr<const MemoryGraph> BaseGraph() {
  auto g = std::make_unique<MemoryGraph>();
  // 0 -> 1 -> 2, 0 -> 2
  EXPECT_TRUE(g->Apply(GraphUpdate::AddNode(0, {"A"})).ok());
  EXPECT_TRUE(g->Apply(GraphUpdate::AddNode(1, {"B"})).ok());
  EXPECT_TRUE(g->Apply(GraphUpdate::AddNode(2, {"A", "B"})).ok());
  EXPECT_TRUE(g->Apply(GraphUpdate::AddRelationship(0, 0, 1, "R")).ok());
  EXPECT_TRUE(g->Apply(GraphUpdate::AddRelationship(1, 1, 2, "R")).ok());
  EXPECT_TRUE(g->Apply(GraphUpdate::AddRelationship(2, 0, 2, "S")).ok());
  return g;
}

TEST(CowGraphTest, ReadsThroughToBase) {
  CowGraph cow(BaseGraph());
  EXPECT_EQ(cow.NumNodes(), 3u);
  EXPECT_EQ(cow.NumRelationships(), 3u);
  ASSERT_NE(cow.GetNode(1), nullptr);
  EXPECT_TRUE(cow.GetNode(1)->HasLabel("B"));
  EXPECT_EQ(cow.RelIds(0, Direction::kOutgoing), (std::vector<RelId>{0, 2}));
  EXPECT_EQ(cow.OverlaySize(), 0u);
}

TEST(CowGraphTest, MutationDoesNotTouchBase) {
  auto base = BaseGraph();
  CowGraph cow(base);
  ASSERT_TRUE(
      cow.Apply(GraphUpdate::SetNodeProperty(0, "x", PropertyValue(1))).ok());
  ASSERT_TRUE(cow.Apply(GraphUpdate::DeleteRelationship(2)).ok());
  ASSERT_TRUE(cow.Apply(GraphUpdate::AddNode(3)).ok());
  // Base unchanged.
  EXPECT_EQ(base->GetNode(0)->props.Get("x"), nullptr);
  EXPECT_NE(base->GetRelationship(2), nullptr);
  EXPECT_EQ(base->NumNodes(), 3u);
  // Overlay visible through the CowGraph.
  EXPECT_EQ(cow.GetNode(0)->props.Get("x")->AsInt(), 1);
  EXPECT_EQ(cow.GetRelationship(2), nullptr);
  EXPECT_EQ(cow.NumNodes(), 4u);
  EXPECT_EQ(cow.NumRelationships(), 2u);
}

TEST(CowGraphTest, OverlayStaysSmall) {
  CowGraph cow(BaseGraph());
  ASSERT_TRUE(
      cow.Apply(GraphUpdate::SetNodeProperty(1, "k", PropertyValue(9))).ok());
  // Only the touched node is copied.
  EXPECT_EQ(cow.OverlaySize(), 1u);
}

TEST(CowGraphTest, ConstraintsEnforced) {
  CowGraph cow(BaseGraph());
  EXPECT_TRUE(cow.Apply(GraphUpdate::AddNode(0)).IsAlreadyExists());
  EXPECT_TRUE(cow.Apply(GraphUpdate::DeleteNode(0)).IsFailedPrecondition());
  EXPECT_TRUE(cow.Apply(GraphUpdate::AddRelationship(9, 0, 42, "R"))
                  .IsFailedPrecondition());
  // Delete rels around node 0, then node delete succeeds.
  ASSERT_TRUE(cow.Apply(GraphUpdate::DeleteRelationship(0)).ok());
  ASSERT_TRUE(cow.Apply(GraphUpdate::DeleteRelationship(2)).ok());
  EXPECT_TRUE(cow.Apply(GraphUpdate::DeleteNode(0)).ok());
  EXPECT_EQ(cow.GetNode(0), nullptr);
}

TEST(CowGraphTest, DeletedNodeCanBeReadded) {
  CowGraph cow(BaseGraph());
  ASSERT_TRUE(cow.Apply(GraphUpdate::DeleteRelationship(1)).ok());
  ASSERT_TRUE(cow.Apply(GraphUpdate::DeleteRelationship(0)).ok());
  ASSERT_TRUE(cow.Apply(GraphUpdate::DeleteNode(1)).ok());
  ASSERT_TRUE(cow.Apply(GraphUpdate::AddNode(1, {"Fresh"})).ok());
  ASSERT_NE(cow.GetNode(1), nullptr);
  EXPECT_TRUE(cow.GetNode(1)->HasLabel("Fresh"));
  EXPECT_FALSE(cow.GetNode(1)->HasLabel("B"));
  // Re-added node has empty adjacency.
  EXPECT_TRUE(cow.RelIds(1, Direction::kBoth).empty());
}

TEST(CowGraphTest, ForEachMergesBaseAndOverlay) {
  CowGraph cow(BaseGraph());
  ASSERT_TRUE(cow.Apply(GraphUpdate::AddNode(7, {"New"})).ok());
  ASSERT_TRUE(cow.Apply(GraphUpdate::AddRelationship(9, 7, 0, "T")).ok());
  ASSERT_TRUE(cow.Apply(GraphUpdate::DeleteRelationship(1)).ok());
  std::set<NodeId> nodes;
  cow.ForEachNode([&](const Node& n) { nodes.insert(n.id); });
  EXPECT_EQ(nodes, (std::set<NodeId>{0, 1, 2, 7}));
  std::set<RelId> rels;
  cow.ForEachRelationship([&](const Relationship& r) { rels.insert(r.id); });
  EXPECT_EQ(rels, (std::set<RelId>{0, 2, 9}));
  // New relationship visible in adjacency of both endpoints.
  EXPECT_EQ(cow.RelIds(7, Direction::kOutgoing), (std::vector<RelId>{9}));
  std::vector<RelId> in0 = cow.RelIds(0, Direction::kIncoming);
  EXPECT_EQ(in0, (std::vector<RelId>{9}));
}

TEST(CowGraphTest, MaterializeEqualsOverlayView) {
  CowGraph cow(BaseGraph());
  ASSERT_TRUE(cow.Apply(GraphUpdate::AddNode(5, {"C"})).ok());
  ASSERT_TRUE(cow.Apply(GraphUpdate::AddRelationship(10, 5, 2, "T")).ok());
  ASSERT_TRUE(cow.Apply(GraphUpdate::DeleteRelationship(0)).ok());
  ASSERT_TRUE(
      cow.Apply(GraphUpdate::SetNodeProperty(2, "p", PropertyValue(3))).ok());
  auto materialized = cow.Materialize();
  EXPECT_TRUE(materialized->SameGraphAs(cow));
  EXPECT_EQ(materialized->NumNodes(), cow.NumNodes());
  EXPECT_EQ(materialized->NumRelationships(), cow.NumRelationships());
}

// Property: a CowGraph receiving a random update stream is equivalent to a
// MemoryGraph receiving the same stream.
class CowEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(CowEquivalenceTest, MatchesMemoryGraph) {
  util::Random rng(static_cast<uint64_t>(GetParam()) * 17 + 1);
  auto base_mut = std::make_unique<MemoryGraph>();
  std::vector<NodeId> nodes;
  std::vector<RelId> rels;
  NodeId next_node = 0;
  RelId next_rel = 0;
  // Build a random base.
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(base_mut->Apply(GraphUpdate::AddNode(next_node)).ok());
    nodes.push_back(next_node++);
  }
  for (int i = 0; i < 400; ++i) {
    const NodeId s = nodes[rng.Uniform(nodes.size())];
    const NodeId t = nodes[rng.Uniform(nodes.size())];
    ASSERT_TRUE(
        base_mut->Apply(GraphUpdate::AddRelationship(next_rel, s, t, "R")).ok());
    rels.push_back(next_rel++);
  }
  auto reference = base_mut->Clone();
  std::shared_ptr<const MemoryGraph> base = std::move(base_mut);
  CowGraph cow(base);

  for (int op = 0; op < 500; ++op) {
    GraphUpdate u;
    const double dice = rng.NextDouble();
    if (dice < 0.2) {
      u = GraphUpdate::AddNode(next_node);
      nodes.push_back(next_node++);
    } else if (dice < 0.5) {
      const NodeId s = nodes[rng.Uniform(nodes.size())];
      const NodeId t = nodes[rng.Uniform(nodes.size())];
      u = GraphUpdate::AddRelationship(next_rel, s, t, "R");
      rels.push_back(next_rel++);
    } else if (dice < 0.7 && !rels.empty()) {
      const size_t idx = rng.Uniform(rels.size());
      u = GraphUpdate::DeleteRelationship(rels[idx]);
      rels.erase(rels.begin() + static_cast<long>(idx));
    } else {
      const NodeId n = nodes[rng.Uniform(nodes.size())];
      u = GraphUpdate::SetNodeProperty(n, "p",
                                       PropertyValue(static_cast<int>(op)));
    }
    const auto cow_status = cow.Apply(u);
    const auto ref_status = reference->Apply(u);
    ASSERT_EQ(cow_status.ok(), ref_status.ok()) << u.ToString();
  }
  EXPECT_TRUE(reference->SameGraphAs(cow));
  // Adjacency equivalence for a sample of nodes.
  for (int i = 0; i < 50; ++i) {
    const NodeId n = nodes[rng.Uniform(nodes.size())];
    std::multiset<RelId> cow_out, ref_out;
    for (RelId r : cow.RelIds(n, Direction::kBoth)) cow_out.insert(r);
    for (RelId r : reference->RelIds(n, Direction::kBoth)) ref_out.insert(r);
    EXPECT_EQ(cow_out, ref_out) << "node " << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CowEquivalenceTest,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace aion::graph
