#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "obs/trace.h"

namespace aion::obs {
namespace {

TEST(MetricsRegistryTest, InstrumentsAreNamedAndStable) {
  MetricsRegistry registry;
  Counter* c = registry.counter("a.count");
  EXPECT_EQ(c, registry.counter("a.count"));  // same name, same instrument
  EXPECT_NE(c, registry.counter("b.count"));
  c->Add();
  c->Add(4);
  EXPECT_EQ(c->value(), 5u);

  Gauge* g = registry.gauge("a.gauge");
  g->Set(-7);
  EXPECT_EQ(g->value(), -7);
  g->Add(10);
  EXPECT_EQ(g->value(), 3);

  Histogram* h = registry.histogram("a.nanos");
  h->Record(1000);
  h->Record(3000);
  EXPECT_EQ(h->count(), 2u);
}

TEST(MetricsRegistryTest, CountersAggregateAcrossThreads) {
  MetricsRegistry registry;
  Counter* c = registry.counter("hits");
  Histogram* h = registry.histogram("lat");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c->Add();
        h->Record(100);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->value(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h->count(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsRegistryTest, SnapshotCopiesEveryInstrument) {
  MetricsRegistry registry;
  registry.counter("c1")->Add(3);
  registry.gauge("g1")->Set(42);
  registry.histogram("h1")->Record(5000);
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counter("c1"), 3u);
  EXPECT_EQ(snap.gauge("g1"), 42);
  ASSERT_EQ(snap.histograms.count("h1"), 1u);
  EXPECT_EQ(snap.histograms.at("h1").count, 1u);
  // Missing names read as zero (no insertion).
  EXPECT_EQ(snap.counter("nope"), 0u);
  EXPECT_EQ(snap.gauge("nope"), 0);
  // The snapshot is a copy: later activity does not retroactively change it.
  registry.counter("c1")->Add(100);
  EXPECT_EQ(snap.counter("c1"), 3u);
}

TEST(MetricsRegistryTest, ToJsonIsWellFormedEnough) {
  MetricsRegistry registry;
  registry.counter("x.count")->Add(2);
  registry.gauge("x.gauge")->Set(-1);
  registry.histogram("x.nanos")->Record(1500);
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"x.count\":2"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"x.gauge\":-1"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"x.nanos\""), std::string::npos);
  // Balanced braces, no trailing comma before a closing brace.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(json.find(",}"), std::string::npos);
}

TEST(MetricsRegistryTest, ResetZeroesValuesButKeepsPointersValid) {
  MetricsRegistry registry;
  Counter* c = registry.counter("r.count");
  Gauge* g = registry.gauge("r.gauge");
  Histogram* h = registry.histogram("r.nanos");
  c->Add(9);
  g->Set(-3);
  h->Record(2500);
  registry.Reset();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(g->value(), 0);
  EXPECT_EQ(h->count(), 0u);
  // The same resolved pointers keep recording after Reset — nothing was
  // deallocated or re-registered.
  c->Add(2);
  g->Set(5);
  h->Record(100);
  EXPECT_EQ(c, registry.counter("r.count"));
  EXPECT_EQ(g, registry.gauge("r.gauge"));
  EXPECT_EQ(h, registry.histogram("r.nanos"));
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counter("r.count"), 2u);
  EXPECT_EQ(snap.gauge("r.gauge"), 5);
  EXPECT_EQ(snap.histogram_count("r.nanos"), 1u);
}

TEST(PrometheusExportTest, NameManglingIsDeterministic) {
  EXPECT_EQ(PrometheusName("query.parse_nanos"), "aion_query_parse_nanos");
  EXPECT_EQ(PrometheusName("server.queries"), "aion_server_queries");
  EXPECT_EQ(PrometheusName("weird-name with spaces"),
            "aion_weird_name_with_spaces");
}

TEST(PrometheusExportTest, EveryJsonInstrumentRoundTrips) {
  MetricsRegistry registry;
  registry.counter("rt.count")->Add(7);
  registry.counter("rt.other_count")->Add(1);
  registry.gauge("rt.gauge")->Set(11);
  registry.histogram("rt.nanos")->Record(1000);
  const MetricsSnapshot snap = registry.Snapshot();
  const std::string text = snap.ToPrometheus();
  // Every instrument name in the JSON snapshot appears (mangled) in the
  // Prometheus exposition — nothing is silently dropped.
  for (const auto& [name, value] : snap.counters) {
    EXPECT_NE(text.find(PrometheusName(name)), std::string::npos) << name;
  }
  for (const auto& [name, value] : snap.gauges) {
    EXPECT_NE(text.find(PrometheusName(name)), std::string::npos) << name;
  }
  for (const auto& [name, summary] : snap.histograms) {
    const std::string p = PrometheusName(name);
    EXPECT_NE(text.find(p + "_bucket{le=\""), std::string::npos);
    EXPECT_NE(text.find(p + "_bucket{le=\"+Inf\"}"), std::string::npos);
    EXPECT_NE(text.find(p + "_sum"), std::string::npos);
    EXPECT_NE(text.find(p + "_count"), std::string::npos);
  }
  // Exposition-format basics: TYPE lines precede samples, counter value
  // shows up verbatim, and the text ends with a newline.
  EXPECT_NE(text.find("# TYPE aion_rt_count counter"), std::string::npos);
  EXPECT_NE(text.find("aion_rt_count 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE aion_rt_gauge gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE aion_rt_nanos histogram"), std::string::npos);
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
}

// Parses the histogram family out of the exposition and checks real
// Prometheus histogram semantics: cumulative buckets are monotone
// nondecreasing in le order, and the +Inf bucket equals _count.
TEST(PrometheusExportTest, HistogramFamiliesParse) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram("parse.nanos");
  // Samples spread across several power-of-two buckets, plus a huge one
  // that lands in the overflow (+Inf-only) region.
  h->Record(1);
  h->Record(3);
  h->Record(3);
  h->Record(1000);
  h->Record(~uint64_t{0});
  const std::string text = registry.ToPrometheus();

  const std::string bucket_prefix = "aion_parse_nanos_bucket{le=\"";
  std::vector<std::pair<uint64_t, uint64_t>> buckets;  // (le, cumulative)
  uint64_t inf_count = 0;
  bool saw_inf = false;
  size_t pos = 0;
  while ((pos = text.find(bucket_prefix, pos)) != std::string::npos) {
    pos += bucket_prefix.size();
    const size_t le_end = text.find('"', pos);
    ASSERT_NE(le_end, std::string::npos);
    const std::string le = text.substr(pos, le_end - pos);
    const size_t value_start = text.find("} ", le_end);
    ASSERT_NE(value_start, std::string::npos);
    const uint64_t cumulative =
        std::stoull(text.substr(value_start + 2));
    if (le == "+Inf") {
      saw_inf = true;
      inf_count = cumulative;
    } else {
      buckets.emplace_back(std::stoull(le), cumulative);
    }
  }
  ASSERT_TRUE(saw_inf);
  ASSERT_FALSE(buckets.empty());
  for (size_t i = 1; i < buckets.size(); ++i) {
    EXPECT_GT(buckets[i].first, buckets[i - 1].first);        // le ascending
    EXPECT_GE(buckets[i].second, buckets[i - 1].second);      // cumulative
  }
  // +Inf is the grand total and caps every finite bucket.
  EXPECT_EQ(inf_count, 5u);
  EXPECT_GE(inf_count, buckets.back().second);
  const size_t sum_pos = text.find("aion_parse_nanos_sum ");
  const size_t count_pos = text.find("aion_parse_nanos_count ");
  ASSERT_NE(sum_pos, std::string::npos);
  ASSERT_NE(count_pos, std::string::npos);
  EXPECT_EQ(std::stoull(text.substr(
                count_pos + std::string("aion_parse_nanos_count ").size())),
            5u);
}

TEST(ScopedLatencyTest, RecordsOnDestructionAndToleratesNull) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram("scoped");
  {
    ScopedLatency probe(h);
  }
  EXPECT_EQ(h->count(), 1u);
  {
    ScopedLatency no_sink(nullptr);  // must not crash
  }
}

TEST(TraceSinkTest, RingBufferKeepsNewestSpans) {
  TraceSink sink(4);
  for (uint64_t i = 0; i < 6; ++i) {
    TraceEvent e;
    e.name = "t";
    e.start_nanos = i;
    sink.Record(e);
  }
  EXPECT_EQ(sink.total_recorded(), 6u);
  const std::vector<TraceEvent> events = sink.Snapshot();
  ASSERT_EQ(events.size(), 4u);  // capacity bound
  // Oldest first: spans 2..5 survive.
  EXPECT_EQ(events.front().start_nanos, 2u);
  EXPECT_EQ(events.back().start_nanos, 5u);
  sink.Clear();
  EXPECT_TRUE(sink.Snapshot().empty());
  EXPECT_EQ(sink.total_recorded(), 0u);
}

TEST(TraceSinkTest, DisabledSinkDropsSpans) {
  TraceSink sink(8);
  sink.set_enabled(false);
  TraceEvent e;
  e.name = "dropped";
  sink.Record(e);
  EXPECT_TRUE(sink.Snapshot().empty());
}

TEST(TraceSpanTest, MacroFeedsGlobalSinkAndHistogram) {
  TraceSink& global = TraceSink::Global();
  global.Clear();
  MetricsRegistry registry;
  Histogram* h = registry.histogram("span.nanos");
  {
    AION_TRACE_SPAN("test.span", h);
  }
  EXPECT_EQ(h->count(), 1u);
  const std::vector<TraceEvent> events = global.Snapshot();
  ASSERT_FALSE(events.empty());
  EXPECT_STREQ(events.back().name, "test.span");
}

}  // namespace
}  // namespace aion::obs
