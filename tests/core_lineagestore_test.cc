#include "core/lineagestore.h"

#include <gtest/gtest.h>

#include <set>

#include "graph/temporal_graph.h"
#include "storage/file.h"
#include "util/random.h"

namespace aion::core {
namespace {

using graph::Direction;
using graph::GraphUpdate;
using graph::kInfiniteTime;
using graph::TimeInterval;

GraphUpdate At(Timestamp ts, GraphUpdate u) {
  u.ts = ts;
  return u;
}

class LineageStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = storage::MakeTempDir("aion_ls_test_");
    ASSERT_TRUE(dir.ok());
    dir_ = *dir;
    pool_ = storage::StringPool::InMemory();
  }
  void TearDown() override { (void)storage::RemoveDirRecursively(dir_); }

  std::unique_ptr<LineageStore> OpenStore(uint32_t threshold = 4) {
    LineageStore::Options options;
    options.dir = dir_ + "/ls" + std::to_string(++counter_);
    options.materialization_threshold = threshold;
    auto store = LineageStore::Open(options, pool_.get());
    EXPECT_TRUE(store.ok()) << store.status().ToString();
    return store.ok() ? std::move(*store) : nullptr;
  }

  std::string dir_;
  std::unique_ptr<storage::StringPool> pool_;
  int counter_ = 0;
};

// Timeline identical to the TemporalGraph test, serving as the reference.
std::vector<GraphUpdate> Timeline() {
  return {
      At(1, GraphUpdate::AddNode(0, {"A"})),
      At(1, GraphUpdate::AddNode(1, {"B"})),
      At(2, GraphUpdate::AddRelationship(0, 0, 1, "R")),
      At(3, GraphUpdate::SetNodeProperty(0, "x", graph::PropertyValue(1))),
      At(5, GraphUpdate::DeleteRelationship(0)),
      At(6, GraphUpdate::DeleteNode(1)),
      At(8, GraphUpdate::AddNode(1, {"Born again"})),
  };
}

TEST_F(LineageStoreTest, PointLookupAtTime) {
  auto store = OpenStore();
  ASSERT_TRUE(store->ApplyAll(Timeline()).ok());
  auto n0_at_2 = store->GetNodeAt(0, 2);
  ASSERT_TRUE(n0_at_2.ok());
  ASSERT_TRUE(n0_at_2->has_value());
  EXPECT_TRUE((*n0_at_2)->HasLabel("A"));
  EXPECT_EQ((*n0_at_2)->props.Get("x"), nullptr);

  auto n0_at_3 = store->GetNodeAt(0, 3);
  ASSERT_TRUE(n0_at_3.ok());
  EXPECT_EQ((*n0_at_3)->props.Get("x")->AsInt(), 1);

  EXPECT_FALSE(store->GetNodeAt(0, 0)->has_value());   // before creation
  EXPECT_FALSE(store->GetNodeAt(1, 7)->has_value());   // deleted window
  EXPECT_TRUE(store->GetNodeAt(1, 8)->has_value());    // re-added
  EXPECT_FALSE(store->GetNodeAt(42, 5)->has_value());  // never existed
}

TEST_F(LineageStoreTest, RelationshipLookupAndHistory) {
  auto store = OpenStore();
  ASSERT_TRUE(store->ApplyAll(Timeline()).ok());
  auto at3 = store->GetRelationshipAt(0, 3);
  ASSERT_TRUE(at3.ok());
  ASSERT_TRUE(at3->has_value());
  EXPECT_EQ((*at3)->src, 0u);
  EXPECT_FALSE(store->GetRelationshipAt(0, 5)->has_value());

  auto history = store->GetRelationship(0, 0, kInfiniteTime);
  ASSERT_TRUE(history.ok());
  ASSERT_EQ(history->size(), 1u);
  EXPECT_EQ((*history)[0].interval, (TimeInterval{2, 5}));
}

TEST_F(LineageStoreTest, NodeHistoryMatchesTemporalGraphReference) {
  auto store = OpenStore();
  const auto updates = Timeline();
  ASSERT_TRUE(store->ApplyAll(updates).ok());
  auto reference = graph::TemporalGraph::Build(updates);
  ASSERT_TRUE(reference.ok());
  for (graph::NodeId id : {0ULL, 1ULL}) {
    auto got = store->GetNode(id, 0, kInfiniteTime);
    ASSERT_TRUE(got.ok());
    const auto expected = (*reference)->NodeHistory(id, 0, kInfiniteTime);
    ASSERT_EQ(got->size(), expected.size()) << "node " << id;
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ((*got)[i].interval, expected[i].interval);
      EXPECT_EQ((*got)[i].entity, expected[i].entity);
    }
  }
}

TEST_F(LineageStoreTest, HistoryWindowClipping) {
  auto store = OpenStore();
  ASSERT_TRUE(store->ApplyAll(Timeline()).ok());
  // Node 0 versions: [1,3), [3,inf). Window [2,3) only sees the first.
  auto w = store->GetNode(0, 2, 3);
  ASSERT_TRUE(w.ok());
  ASSERT_EQ(w->size(), 1u);
  EXPECT_EQ((*w)[0].interval, (TimeInterval{1, 3}));
  // Window [4, 9): only the second.
  w = store->GetNode(0, 4, 9);
  ASSERT_TRUE(w.ok());
  ASSERT_EQ(w->size(), 1u);
  EXPECT_EQ((*w)[0].interval.start, 3u);
  // Node 1 in dead window [6, 8): empty.
  EXPECT_TRUE(store->GetNode(1, 6, 8)->empty());
}

TEST_F(LineageStoreTest, SameTimestampUpdatesCollapse) {
  auto store = OpenStore();
  ASSERT_TRUE(store->ApplyAll({
      At(1, GraphUpdate::AddNode(0)),
      At(1, GraphUpdate::SetNodeProperty(0, "a", graph::PropertyValue(1))),
      At(1, GraphUpdate::SetNodeProperty(0, "b", graph::PropertyValue(2))),
  }).ok());
  auto history = store->GetNode(0, 0, kInfiniteTime);
  ASSERT_TRUE(history.ok());
  ASSERT_EQ(history->size(), 1u);
  EXPECT_EQ((*history)[0].entity.props.Get("a")->AsInt(), 1);
  EXPECT_EQ((*history)[0].entity.props.Get("b")->AsInt(), 2);
}

TEST_F(LineageStoreTest, GetRelationshipsByDirection) {
  auto store = OpenStore();
  ASSERT_TRUE(store->ApplyAll({
      At(1, GraphUpdate::AddNode(0)),
      At(1, GraphUpdate::AddNode(1)),
      At(1, GraphUpdate::AddNode(2)),
      At(2, GraphUpdate::AddRelationship(0, 0, 1, "R")),
      At(3, GraphUpdate::AddRelationship(1, 2, 0, "R")),
      At(4, GraphUpdate::AddRelationship(2, 0, 0, "SELF")),
  }).ok());
  auto out = store->GetRelationships(0, Direction::kOutgoing, 4, 4);
  ASSERT_TRUE(out.ok());
  std::set<graph::RelId> out_ids;
  for (const auto& h : *out) out_ids.insert(h.front().entity.id);
  EXPECT_EQ(out_ids, (std::set<graph::RelId>{0, 2}));

  auto in = store->GetRelationships(0, Direction::kIncoming, 4, 4);
  ASSERT_TRUE(in.ok());
  std::set<graph::RelId> in_ids;
  for (const auto& h : *in) in_ids.insert(h.front().entity.id);
  EXPECT_EQ(in_ids, (std::set<graph::RelId>{1, 2}));

  auto both = store->GetRelationships(0, Direction::kBoth, 4, 4);
  ASSERT_TRUE(both.ok());
  std::set<graph::RelId> both_ids;
  for (const auto& h : *both) both_ids.insert(h.front().entity.id);
  EXPECT_EQ(both_ids, (std::set<graph::RelId>{0, 1, 2}));
}

TEST_F(LineageStoreTest, GetRelationshipsRespectsTimeWindow) {
  auto store = OpenStore();
  ASSERT_TRUE(store->ApplyAll(Timeline()).ok());
  // Rel 0 lives [2, 5). At t=1: nothing; at t=2..4: present; at t=5: gone.
  EXPECT_TRUE(store->GetRelationships(0, Direction::kOutgoing, 1, 1)->empty());
  EXPECT_EQ(store->GetRelationships(0, Direction::kOutgoing, 3, 3)->size(), 1u);
  EXPECT_TRUE(store->GetRelationships(0, Direction::kOutgoing, 5, 5)->empty());
  // Window [0, 10) overlaps its lifetime.
  EXPECT_EQ(store->GetRelationships(0, Direction::kOutgoing, 0, 10)->size(),
            1u);
}

TEST_F(LineageStoreTest, LiveNeighboursAtTime) {
  auto store = OpenStore();
  ASSERT_TRUE(store->ApplyAll(Timeline()).ok());
  auto at3 = store->GetLiveNeighbours(0, Direction::kOutgoing, 3);
  ASSERT_TRUE(at3.ok());
  ASSERT_EQ(at3->size(), 1u);
  EXPECT_EQ((*at3)[0].neighbour, 1u);
  EXPECT_EQ((*at3)[0].rel, 0u);
  EXPECT_TRUE(store->GetLiveNeighbours(0, Direction::kOutgoing, 5)->empty());
  EXPECT_TRUE(store->GetLiveNeighbours(0, Direction::kOutgoing, 1)->empty());
}

TEST_F(LineageStoreTest, ExpandMultiHop) {
  auto store = OpenStore();
  // Chain 0 -> 1 -> 2 -> 3 plus shortcut 0 -> 2.
  ASSERT_TRUE(store->ApplyAll({
      At(1, GraphUpdate::AddNode(0)),
      At(1, GraphUpdate::AddNode(1)),
      At(1, GraphUpdate::AddNode(2)),
      At(1, GraphUpdate::AddNode(3)),
      At(2, GraphUpdate::AddRelationship(0, 0, 1, "R")),
      At(2, GraphUpdate::AddRelationship(1, 1, 2, "R")),
      At(2, GraphUpdate::AddRelationship(2, 2, 3, "R")),
      At(2, GraphUpdate::AddRelationship(3, 0, 2, "R")),
  }).ok());
  auto hops = store->Expand(0, Direction::kOutgoing, 2, 2);
  ASSERT_TRUE(hops.ok());
  ASSERT_EQ(hops->size(), 2u);
  std::set<graph::NodeId> hop1, hop2;
  for (const auto& n : (*hops)[0]) hop1.insert(n.id);
  for (const auto& n : (*hops)[1]) hop2.insert(n.id);
  EXPECT_EQ(hop1, (std::set<graph::NodeId>{1, 2}));
  EXPECT_EQ(hop2, (std::set<graph::NodeId>{2, 3}));  // per-hop dedup only
}

TEST_F(LineageStoreTest, ExpandRespectsTime) {
  auto store = OpenStore();
  ASSERT_TRUE(store->ApplyAll(Timeline()).ok());
  auto before = store->Expand(0, Direction::kOutgoing, 1, 1);
  ASSERT_TRUE(before.ok());
  EXPECT_TRUE((*before)[0].empty());
  auto during = store->Expand(0, Direction::kOutgoing, 1, 3);
  ASSERT_TRUE(during.ok());
  ASSERT_EQ((*during)[0].size(), 1u);
  EXPECT_EQ((*during)[0][0].id, 1u);
  EXPECT_TRUE((*during)[0][0].HasLabel("B"));
}

TEST_F(LineageStoreTest, MaterializationThresholdBoundsChains) {
  // threshold=1: every update is a full record; threshold=100: all deltas.
  for (uint32_t threshold : {1u, 2u, 4u, 100u}) {
    auto store = OpenStore(threshold);
    std::vector<GraphUpdate> updates = {At(1, GraphUpdate::AddNode(0))};
    for (int i = 0; i < 20; ++i) {
      updates.push_back(At(static_cast<Timestamp>(i + 2),
                           GraphUpdate::SetNodeProperty(
                               0, "v", graph::PropertyValue(i))));
    }
    ASSERT_TRUE(store->ApplyAll(updates).ok());
    // Regardless of threshold, reconstruction is identical.
    for (Timestamp t : {1ULL, 5ULL, 13ULL, 21ULL}) {
      auto node = store->GetNodeAt(0, t);
      ASSERT_TRUE(node.ok());
      ASSERT_TRUE(node->has_value()) << "threshold " << threshold;
      if (t >= 2) {
        EXPECT_EQ((*node)->props.Get("v")->AsInt(),
                  static_cast<int64_t>(t - 2))
            << "threshold " << threshold << " t " << t;
      }
    }
  }
}

TEST_F(LineageStoreTest, SmallerThresholdUsesMoreStorage) {
  uint64_t bytes_threshold_1 = 0, bytes_threshold_16 = 0;
  for (uint32_t threshold : {1u, 16u}) {
    auto store = OpenStore(threshold);
    std::vector<GraphUpdate> updates = {At(1, GraphUpdate::AddNode(0))};
    // Wide node: many properties so materialized records are large.
    for (int i = 0; i < 16; ++i) {
      updates.push_back(
          At(1, GraphUpdate::SetNodeProperty(0, "init" + std::to_string(i),
                                             graph::PropertyValue(i))));
    }
    for (int i = 0; i < 64; ++i) {
      updates.push_back(At(static_cast<Timestamp>(i + 2),
                           GraphUpdate::SetNodeProperty(
                               0, "v", graph::PropertyValue(i))));
    }
    ASSERT_TRUE(store->ApplyAll(updates).ok());
    ASSERT_TRUE(store->Flush().ok());
    if (threshold == 1) {
      bytes_threshold_1 = store->num_records();
      bytes_threshold_1 = store->SizeBytes();
    } else {
      bytes_threshold_16 = store->SizeBytes();
    }
  }
  // Full materialization on every update must cost strictly more pages than
  // mostly-delta chains. (Page-granular, so compare sizes loosely.)
  EXPECT_GE(bytes_threshold_1, bytes_threshold_16);
}

TEST_F(LineageStoreTest, DeleteRelationshipWithoutEndpointsReconstructs) {
  auto store = OpenStore();
  ASSERT_TRUE(store->ApplyAll({
      At(1, GraphUpdate::AddNode(0)),
      At(1, GraphUpdate::AddNode(1)),
      At(2, GraphUpdate::AddRelationship(0, 0, 1, "R")),
  }).ok());
  // Delete update without populated endpoints.
  GraphUpdate del = At(3, GraphUpdate::DeleteRelationship(0));
  ASSERT_EQ(del.src, graph::kInvalidNodeId);
  ASSERT_TRUE(store->Apply(del).ok());
  EXPECT_FALSE(store->GetRelationshipAt(0, 3)->has_value());
  EXPECT_TRUE(store->GetLiveNeighbours(0, Direction::kOutgoing, 3)->empty());
}

TEST_F(LineageStoreTest, AppliedWatermarkAdvances) {
  auto store = OpenStore();
  EXPECT_EQ(store->applied_ts(), 0u);
  ASSERT_TRUE(store->Apply(At(7, GraphUpdate::AddNode(0))).ok());
  EXPECT_EQ(store->applied_ts(), 7u);
}

TEST_F(LineageStoreTest, PersistsAcrossReopen) {
  LineageStore::Options options;
  options.dir = dir_ + "/persist";
  {
    auto store = LineageStore::Open(options, pool_.get());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->ApplyAll(Timeline()).ok());
    ASSERT_TRUE((*store)->Flush().ok());
  }
  auto store = LineageStore::Open(options, pool_.get());
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->applied_ts(), 8u);
  auto node = (*store)->GetNodeAt(0, 10);
  ASSERT_TRUE(node.ok());
  ASSERT_TRUE(node->has_value());
  EXPECT_EQ((*node)->props.Get("x")->AsInt(), 1);
  // Continue applying after reopen.
  ASSERT_TRUE(
      (*store)
          ->Apply(At(9, GraphUpdate::SetNodeProperty(
                            0, "x", graph::PropertyValue(2))))
          .ok());
  EXPECT_EQ((*(*store)->GetNodeAt(0, 9))->props.Get("x")->AsInt(), 2);
}

// Property sweep: random update streams checked against the TemporalGraph
// reference model across materialization thresholds.
struct FuzzParams {
  int seed;
  uint32_t threshold;
};

class LineageFuzzTest
    : public LineageStoreTest,
      public ::testing::WithParamInterface<std::tuple<int, uint32_t>> {};

TEST_P(LineageFuzzTest, MatchesTemporalGraphReference) {
  const auto [seed, threshold] = GetParam();
  util::Random rng(static_cast<uint64_t>(seed) * 31 + 7);
  auto store = OpenStore(threshold);
  graph::TemporalGraph reference;

  std::vector<graph::NodeId> live_nodes;
  std::vector<graph::RelId> live_rels;
  graph::NodeId next_node = 0;
  graph::RelId next_rel = 0;
  Timestamp ts = 0;
  std::vector<GraphUpdate> all;
  for (int op = 0; op < 800; ++op) {
    if (rng.Bernoulli(0.7)) ++ts;
    GraphUpdate u;
    const double dice = rng.NextDouble();
    if (dice < 0.25 || live_nodes.empty()) {
      u = GraphUpdate::AddNode(next_node, {"L" + std::to_string(op % 3)});
      live_nodes.push_back(next_node++);
    } else if (dice < 0.45) {
      const graph::NodeId s = live_nodes[rng.Uniform(live_nodes.size())];
      const graph::NodeId t = live_nodes[rng.Uniform(live_nodes.size())];
      u = GraphUpdate::AddRelationship(next_rel, s, t, "R");
      live_rels.push_back(next_rel++);
    } else if (dice < 0.75) {
      const graph::NodeId n = live_nodes[rng.Uniform(live_nodes.size())];
      u = GraphUpdate::SetNodeProperty(
          n, "p" + std::to_string(op % 4),
          graph::PropertyValue(static_cast<int>(op)));
    } else if (dice < 0.85 && !live_rels.empty()) {
      const graph::RelId r = live_rels[rng.Uniform(live_rels.size())];
      u = GraphUpdate::SetRelationshipProperty(
          r, "w", graph::PropertyValue(static_cast<double>(op)));
    } else if (!live_rels.empty()) {
      const size_t idx = rng.Uniform(live_rels.size());
      u = GraphUpdate::DeleteRelationship(live_rels[idx]);
      live_rels.erase(live_rels.begin() + static_cast<long>(idx));
    } else {
      continue;
    }
    u.ts = ts;
    ASSERT_TRUE(reference.Apply(u).ok()) << u.ToString();
    ASSERT_TRUE(store->Apply(u).ok()) << u.ToString();
    all.push_back(u);
  }

  // Point-in-time equivalence at sampled times for sampled entities.
  for (int check = 0; check < 60; ++check) {
    const Timestamp t = rng.Uniform(ts + 2);
    const graph::NodeId n = rng.Uniform(next_node);
    auto got = store->GetNodeAt(n, t);
    ASSERT_TRUE(got.ok());
    const graph::Node* expected = reference.NodeAt(n, t);
    ASSERT_EQ(got->has_value(), expected != nullptr)
        << "node " << n << " at " << t;
    if (expected != nullptr) {
      EXPECT_EQ(**got, *expected);
    }
    if (next_rel > 0) {
      const graph::RelId r = rng.Uniform(next_rel);
      auto rel_got = store->GetRelationshipAt(r, t);
      ASSERT_TRUE(rel_got.ok());
      const graph::Relationship* rel_expected = reference.RelationshipAt(r, t);
      ASSERT_EQ(rel_got->has_value(), rel_expected != nullptr);
      if (rel_expected != nullptr) {
        EXPECT_EQ(**rel_got, *rel_expected);
      }
    }
  }

  // Full-history equivalence for sampled nodes.
  for (int check = 0; check < 20; ++check) {
    const graph::NodeId n = rng.Uniform(next_node);
    auto got = store->GetNode(n, 0, kInfiniteTime);
    ASSERT_TRUE(got.ok());
    const auto expected = reference.NodeHistory(n, 0, kInfiniteTime);
    ASSERT_EQ(got->size(), expected.size()) << "node " << n;
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ((*got)[i].interval, expected[i].interval);
      EXPECT_EQ((*got)[i].entity, expected[i].entity);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndThresholds, LineageFuzzTest,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(1u, 4u, 32u)));

}  // namespace
}  // namespace aion::core
