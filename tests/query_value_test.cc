#include "query/value.h"

#include <gtest/gtest.h>

namespace aion::query {
namespace {

TEST(ValueTest, TypePredicates) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(int64_t{5}).is_int());
  EXPECT_TRUE(Value(2.5).is_double());
  EXPECT_TRUE(Value(std::string("s")).is_string());
  graph::Node node;
  EXPECT_TRUE(Value(node).is_node());
  graph::Relationship rel;
  EXPECT_TRUE(Value(rel).is_relationship());
}

TEST(ValueTest, FromPropertyMapsTypes) {
  EXPECT_TRUE(Value::FromProperty(graph::PropertyValue()).is_null());
  EXPECT_EQ(Value::FromProperty(graph::PropertyValue(7)).AsInt(), 7);
  EXPECT_DOUBLE_EQ(Value::FromProperty(graph::PropertyValue(1.5)).AsDouble(),
                   1.5);
  EXPECT_EQ(Value::FromProperty(graph::PropertyValue("x")).AsString(), "x");
  EXPECT_TRUE(Value::FromProperty(graph::PropertyValue(true)).AsBool());
  // Arrays render to their string form.
  const Value arr = Value::FromProperty(
      graph::PropertyValue(std::vector<int64_t>{1, 2}));
  ASSERT_TRUE(arr.is_string());
  EXPECT_EQ(arr.AsString(), "[1, 2]");
}

TEST(ValueTest, ToNumberCoercion) {
  EXPECT_DOUBLE_EQ(Value(int64_t{3}).ToNumber(), 3.0);
  EXPECT_DOUBLE_EQ(Value(0.5).ToNumber(), 0.5);
  EXPECT_DOUBLE_EQ(Value(true).ToNumber(), 1.0);
  EXPECT_DOUBLE_EQ(Value(std::string("nope")).ToNumber(), 0.0);
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value().ToString(), "null");
  EXPECT_EQ(Value(int64_t{-3}).ToString(), "-3");
  graph::Node node;
  node.id = 4;
  node.labels = {"A"};
  node.props.Set("k", graph::PropertyValue(1));
  const std::string rendered = Value(node).ToString();
  EXPECT_NE(rendered.find("(4:A"), std::string::npos);
  EXPECT_NE(rendered.find("k: 1"), std::string::npos);
  graph::Relationship rel;
  rel.id = 9;
  rel.src = 1;
  rel.tgt = 2;
  rel.type = "KNOWS";
  EXPECT_EQ(Value(rel).ToString(), "[9:KNOWS 1->2]");
}

TEST(ValueTest, EqualityIsTypeSensitive) {
  EXPECT_EQ(Value(int64_t{1}), Value(int64_t{1}));
  EXPECT_FALSE(Value(int64_t{1}) == Value(1.0));
  EXPECT_EQ(Value(), Value());
}

TEST(QueryResultTest, TableRendering) {
  QueryResult result;
  result.columns = {"a", "b"};
  result.rows.push_back({Value(int64_t{1}), Value(std::string("x"))});
  result.rows.push_back({Value(int64_t{2}), Value()});
  const std::string table = result.ToString();
  EXPECT_NE(table.find("a | b"), std::string::npos);
  EXPECT_NE(table.find("1 | x"), std::string::npos);
  EXPECT_NE(table.find("2 | null"), std::string::npos);
  EXPECT_EQ(result.NumRows(), 2u);
}

}  // namespace
}  // namespace aion::query
