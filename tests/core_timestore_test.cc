#include "core/timestore.h"

#include <gtest/gtest.h>

#include "storage/file.h"

namespace aion::core {
namespace {

using graph::GraphUpdate;

GraphUpdate At(Timestamp ts, GraphUpdate u) {
  u.ts = ts;
  return u;
}

class TimeStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = storage::MakeTempDir("aion_ts_test_");
    ASSERT_TRUE(dir.ok());
    dir_ = *dir;
    graph_store_ = std::make_unique<GraphStore>(size_t{1} << 26);
  }
  void TearDown() override { (void)storage::RemoveDirRecursively(dir_); }

  std::unique_ptr<TimeStore> OpenStore(SnapshotPolicy policy = {}) {
    TimeStore::Options options;
    options.dir = dir_ + "/ts";
    options.policy = policy;
    auto store = TimeStore::Open(options, graph_store_.get());
    EXPECT_TRUE(store.ok()) << store.status().ToString();
    return store.ok() ? std::move(*store) : nullptr;
  }

  /// Appends a batch and mirrors it into the GraphStore latest replica,
  /// like AionStore::Ingest does.
  void IngestBatch(TimeStore* store, Timestamp ts,
                   std::vector<GraphUpdate> updates, bool* due = nullptr) {
    for (GraphUpdate& u : updates) u.ts = ts;
    bool snapshot_due = false;
    ASSERT_TRUE(store->Append(ts, updates, &snapshot_due).ok());
    for (const GraphUpdate& u : updates) {
      ASSERT_TRUE(graph_store_->ApplyToLatest(u).ok());
    }
    if (due != nullptr) *due = snapshot_due;
  }

  std::string dir_;
  std::unique_ptr<GraphStore> graph_store_;
};

TEST_F(TimeStoreTest, GetDiffReturnsHalfOpenInclusiveExclusive) {
  auto store = OpenStore();
  IngestBatch(store.get(), 1, {GraphUpdate::AddNode(0)});
  IngestBatch(store.get(), 2, {GraphUpdate::AddNode(1)});
  IngestBatch(store.get(), 3, {GraphUpdate::AddNode(2)});
  auto diff = store->GetDiff(1, 3);  // [1, 3): ts 1 and 2
  ASSERT_TRUE(diff.ok());
  ASSERT_EQ(diff->size(), 2u);
  EXPECT_EQ((*diff)[0].ts, 1u);
  EXPECT_EQ((*diff)[1].ts, 2u);
  // Empty and full ranges.
  EXPECT_TRUE(store->GetDiff(3, 3)->empty());
  EXPECT_EQ(store->GetDiff(0, 100)->size(), 3u);
  EXPECT_TRUE(store->GetDiff(5, 2)->empty());
}

TEST_F(TimeStoreTest, GetDiffBoundaryTimestamps) {
  auto store = OpenStore();
  IngestBatch(store.get(), 1, {GraphUpdate::AddNode(0)});
  IngestBatch(store.get(), 2, {GraphUpdate::AddNode(1)});
  IngestBatch(store.get(), 3, {GraphUpdate::AddNode(2)});
  // start is inclusive: an update exactly at `start` is returned.
  auto at_start = store->GetDiff(2, 100);
  ASSERT_TRUE(at_start.ok());
  ASSERT_EQ(at_start->size(), 2u);
  EXPECT_EQ((*at_start)[0].ts, 2u);
  // end is exclusive: an update exactly at `end` is not.
  auto before_end = store->GetDiff(0, 3);
  ASSERT_TRUE(before_end.ok());
  ASSERT_EQ(before_end->size(), 2u);
  EXPECT_EQ(before_end->back().ts, 2u);
  // A width-1 window [t, t+1) isolates a single timestamp.
  auto single = store->GetDiff(2, 3);
  ASSERT_TRUE(single.ok());
  ASSERT_EQ(single->size(), 1u);
  EXPECT_EQ(single->front().ts, 2u);
}

TEST_F(TimeStoreTest, ReplayRangeIsExclusiveInclusive) {
  // ReplayRange(base, t) is the snapshot-replay primitive: everything
  // strictly after `base` up to and including `t` — the documented
  // exception to the half-open convention.
  auto store = OpenStore();
  IngestBatch(store.get(), 1, {GraphUpdate::AddNode(0)});
  IngestBatch(store.get(), 2, {GraphUpdate::AddNode(1)});
  IngestBatch(store.get(), 3, {GraphUpdate::AddNode(2)});
  auto replay = store->ReplayRange(1, 3);  // (1, 3]: ts 2 and 3
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay->size(), 2u);
  EXPECT_EQ((*replay)[0].ts, 2u);
  EXPECT_EQ((*replay)[1].ts, 3u);
  EXPECT_TRUE(store->ReplayRange(3, 3)->empty());
  EXPECT_EQ(store->ReplayRange(0, 3)->size(), 3u);
}

TEST_F(TimeStoreTest, MultipleUpdatesPerTransaction) {
  auto store = OpenStore();
  IngestBatch(store.get(), 1,
              {GraphUpdate::AddNode(0), GraphUpdate::AddNode(1),
               GraphUpdate::AddRelationship(0, 0, 1, "R")});
  auto diff = store->GetDiff(1, 2);
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff->size(), 3u);
  EXPECT_EQ(store->num_updates(), 3u);
}

TEST_F(TimeStoreTest, GetGraphAtReconstructsFromEmptyBase) {
  auto store = OpenStore();
  IngestBatch(store.get(), 1, {GraphUpdate::AddNode(0)});
  IngestBatch(store.get(), 2, {GraphUpdate::AddNode(1)});
  IngestBatch(store.get(), 3,
              {GraphUpdate::AddRelationship(0, 0, 1, "R")});
  IngestBatch(store.get(), 4, {GraphUpdate::DeleteRelationship(0)});

  // Use a cold GraphStore path by querying times before the replica.
  auto at2 = store->GetGraphAt(2);
  ASSERT_TRUE(at2.ok()) << at2.status().ToString();
  EXPECT_EQ((*at2)->NumNodes(), 2u);
  EXPECT_EQ((*at2)->NumRelationships(), 0u);

  auto at3 = store->GetGraphAt(3);
  ASSERT_TRUE(at3.ok());
  EXPECT_EQ((*at3)->NumRelationships(), 1u);

  auto at4 = store->GetGraphAt(4);
  ASSERT_TRUE(at4.ok());
  EXPECT_EQ((*at4)->NumRelationships(), 0u);
  EXPECT_EQ((*at4)->NumNodes(), 2u);
}

TEST_F(TimeStoreTest, GetGraphAtUsesLatestReplicaWithoutReplay) {
  auto store = OpenStore();
  IngestBatch(store.get(), 1, {GraphUpdate::AddNode(0)});
  IngestBatch(store.get(), 2, {GraphUpdate::AddNode(1)});
  auto view = store->GetGraphAt(2);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ((*view)->NumNodes(), 2u);
  // The result should be the shared replica itself (no CoW wrapper):
  // compare against GraphStore::Latest().
  EXPECT_EQ(view->get(),
            static_cast<const graph::GraphView*>(graph_store_->Latest().get()));
}

TEST_F(TimeStoreTest, SnapshotWriteAndReload) {
  {
    auto store = OpenStore();
    IngestBatch(store.get(), 1, {GraphUpdate::AddNode(0)});
    IngestBatch(store.get(), 2, {GraphUpdate::AddNode(1)});
    // Persist the current state as the snapshot at ts 2.
    auto latest = graph_store_->Latest();
    ASSERT_TRUE(store->WriteSnapshot(2, *latest).ok());
    EXPECT_GT(store->SnapshotBytes(), 0u);
    IngestBatch(store.get(), 3, {GraphUpdate::AddNode(2)});
    ASSERT_TRUE(store->Flush().ok());
  }

  // Fresh GraphStore (simulate restart): retrieval must hit the disk
  // snapshot and replay ts 3 on top.
  graph_store_ = std::make_unique<GraphStore>(size_t{1} << 26);
  TimeStore::Options options;
  options.dir = dir_ + "/ts";
  auto reopened = TimeStore::Open(options, graph_store_.get());
  ASSERT_TRUE(reopened.ok());
  auto at3 = (*reopened)->GetGraphAt(3);
  ASSERT_TRUE(at3.ok());
  EXPECT_EQ((*at3)->NumNodes(), 3u);
  auto at2 = (*reopened)->GetGraphAt(2);
  ASSERT_TRUE(at2.ok());
  EXPECT_EQ((*at2)->NumNodes(), 2u);
}

TEST_F(TimeStoreTest, OperationBasedSnapshotPolicy) {
  SnapshotPolicy policy;
  policy.kind = SnapshotPolicy::Kind::kOperationBased;
  policy.every = 5;
  auto store = OpenStore(policy);
  bool due = false;
  for (int i = 0; i < 4; ++i) {
    IngestBatch(store.get(), static_cast<Timestamp>(i + 1),
                {GraphUpdate::AddNode(static_cast<graph::NodeId>(i))}, &due);
    EXPECT_FALSE(due) << i;
  }
  IngestBatch(store.get(), 5, {GraphUpdate::AddNode(4)}, &due);
  EXPECT_TRUE(due);
  // Writing the snapshot resets the counter.
  ASSERT_TRUE(store->WriteSnapshot(5, *graph_store_->Latest()).ok());
  EXPECT_EQ(store->ops_since_snapshot(), 0u);
  IngestBatch(store.get(), 6, {GraphUpdate::AddNode(5)}, &due);
  EXPECT_FALSE(due);
}

TEST_F(TimeStoreTest, TimeBasedSnapshotPolicy) {
  SnapshotPolicy policy;
  policy.kind = SnapshotPolicy::Kind::kTimeBased;
  policy.every = 10;
  auto store = OpenStore(policy);
  bool due = false;
  IngestBatch(store.get(), 5, {GraphUpdate::AddNode(0)}, &due);
  EXPECT_FALSE(due);
  IngestBatch(store.get(), 10, {GraphUpdate::AddNode(1)}, &due);
  EXPECT_TRUE(due);
}

TEST_F(TimeStoreTest, MonotonicityEnforced) {
  auto store = OpenStore();
  IngestBatch(store.get(), 5, {GraphUpdate::AddNode(0)});
  bool due;
  auto u = At(3, GraphUpdate::AddNode(1));
  EXPECT_TRUE(store->Append(3, {u}, &due).IsInvalidArgument());
}

TEST_F(TimeStoreTest, PersistsAcrossReopen) {
  {
    auto store = OpenStore();
    IngestBatch(store.get(), 1, {GraphUpdate::AddNode(0)});
    IngestBatch(store.get(), 2, {GraphUpdate::AddNode(1)});
    ASSERT_TRUE(store->Flush().ok());
  }
  graph_store_ = std::make_unique<GraphStore>(size_t{1} << 26);
  TimeStore::Options options;
  options.dir = dir_ + "/ts";
  auto store = TimeStore::Open(options, graph_store_.get());
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->last_ts(), 2u);
  auto diff = (*store)->GetDiff(0, 10);
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff->size(), 2u);
  // Appends continue with the recovered sequence.
  bool due;
  auto u = At(3, GraphUpdate::AddNode(2));
  ASSERT_TRUE((*store)->Append(3, {u}, &due).ok());
  EXPECT_EQ((*store)->GetDiff(0, 10)->size(), 3u);
}

TEST_F(TimeStoreTest, MaterializeGraphAtIsIndependent) {
  auto store = OpenStore();
  IngestBatch(store.get(), 1, {GraphUpdate::AddNode(0)});
  auto materialized = store->MaterializeGraphAt(1);
  ASSERT_TRUE(materialized.ok());
  EXPECT_EQ((*materialized)->NumNodes(), 1u);
  // Mutating the materialized copy must not affect the replica.
  ASSERT_TRUE((*materialized)
                  ->Apply(At(99, GraphUpdate::AddNode(50)))
                  .ok());
  EXPECT_EQ(graph_store_->Latest()->NumNodes(), 1u);
}

}  // namespace
}  // namespace aion::core
