#include "storage/log_file.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "storage/file.h"

namespace aion::storage {
namespace {

class LogFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = MakeTempDir("aion_log_test_");
    ASSERT_TRUE(dir.ok());
    dir_ = *dir;
  }
  void TearDown() override { (void)RemoveDirRecursively(dir_); }

  std::string dir_;
};

TEST(Crc32cTest, KnownVectorsAndProperties) {
  // CRC-32C of "123456789" is 0xE3069283 (well-known check value).
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
  EXPECT_NE(Crc32c("a", 1), Crc32c("b", 1));
}

TEST_F(LogFileTest, AppendReadRoundTrip) {
  auto log = LogFile::Open(dir_ + "/log");
  ASSERT_TRUE(log.ok());
  auto off1 = (*log)->Append("first record");
  auto off2 = (*log)->Append("second");
  ASSERT_TRUE(off1.ok());
  ASSERT_TRUE(off2.ok());
  std::string payload;
  ASSERT_TRUE((*log)->Read(*off1, &payload).ok());
  EXPECT_EQ(payload, "first record");
  ASSERT_TRUE((*log)->Read(*off2, &payload).ok());
  EXPECT_EQ(payload, "second");
}

TEST_F(LogFileTest, EmptyRecord) {
  auto log = LogFile::Open(dir_ + "/log");
  ASSERT_TRUE(log.ok());
  auto off = (*log)->Append("");
  ASSERT_TRUE(off.ok());
  std::string payload = "junk";
  ASSERT_TRUE((*log)->Read(*off, &payload).ok());
  EXPECT_TRUE(payload.empty());
}

TEST_F(LogFileTest, ReadNextChains) {
  auto log = LogFile::Open(dir_ + "/log");
  ASSERT_TRUE(log.ok());
  const std::vector<std::string> records = {"a", "bb", "ccc", "dddd"};
  for (const std::string& r : records) {
    ASSERT_TRUE((*log)->Append(r).ok());
  }
  uint64_t offset = 0;
  for (const std::string& expected : records) {
    std::string payload;
    auto next = (*log)->ReadNext(offset, &payload);
    ASSERT_TRUE(next.ok());
    EXPECT_EQ(payload, expected);
    offset = *next;
  }
  EXPECT_EQ(offset, (*log)->end_offset());
}

TEST_F(LogFileTest, ScanVisitsAllRecords) {
  auto log = LogFile::Open(dir_ + "/log");
  ASSERT_TRUE(log.ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE((*log)->Append("rec" + std::to_string(i)).ok());
  }
  int count = 0;
  ASSERT_TRUE((*log)
                  ->Scan(0, (*log)->end_offset(),
                         [&count](uint64_t, util::Slice payload) {
                           EXPECT_EQ(payload.ToString(),
                                     "rec" + std::to_string(count));
                           ++count;
                           return true;
                         })
                  .ok());
  EXPECT_EQ(count, 100);
}

TEST_F(LogFileTest, ScanFromMidOffset) {
  auto log = LogFile::Open(dir_ + "/log");
  ASSERT_TRUE(log.ok());
  uint64_t mid = 0;
  for (int i = 0; i < 10; ++i) {
    auto off = (*log)->Append("rec" + std::to_string(i));
    ASSERT_TRUE(off.ok());
    if (i == 5) mid = *off;
  }
  std::vector<std::string> seen;
  ASSERT_TRUE((*log)
                  ->Scan(mid, (*log)->end_offset(),
                         [&seen](uint64_t, util::Slice payload) {
                           seen.push_back(payload.ToString());
                           return true;
                         })
                  .ok());
  ASSERT_EQ(seen.size(), 5u);
  EXPECT_EQ(seen.front(), "rec5");
  EXPECT_EQ(seen.back(), "rec9");
}

TEST_F(LogFileTest, ScanEarlyStop) {
  auto log = LogFile::Open(dir_ + "/log");
  ASSERT_TRUE(log.ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE((*log)->Append("r").ok());
  }
  int count = 0;
  ASSERT_TRUE((*log)
                  ->Scan(0, (*log)->end_offset(),
                         [&count](uint64_t, util::Slice) {
                           ++count;
                           return count < 3;
                         })
                  .ok());
  EXPECT_EQ(count, 3);
}

TEST_F(LogFileTest, PersistsAcrossReopen) {
  const std::string path = dir_ + "/log";
  uint64_t off1;
  {
    auto log = LogFile::Open(path);
    ASSERT_TRUE(log.ok());
    auto off = (*log)->Append("durable record");
    ASSERT_TRUE(off.ok());
    off1 = *off;
    ASSERT_TRUE((*log)->Sync().ok());
  }
  auto log = LogFile::Open(path);
  ASSERT_TRUE(log.ok());
  std::string payload;
  ASSERT_TRUE((*log)->Read(off1, &payload).ok());
  EXPECT_EQ(payload, "durable record");
  // Appends continue after the existing content.
  auto off2 = (*log)->Append("post-reopen");
  ASSERT_TRUE(off2.ok());
  EXPECT_GT(*off2, off1);
}

TEST_F(LogFileTest, DetectsCorruption) {
  const std::string path = dir_ + "/log";
  uint64_t offset;
  {
    auto log = LogFile::Open(path);
    ASSERT_TRUE(log.ok());
    auto off = (*log)->Append("pristine payload");
    ASSERT_TRUE(off.ok());
    offset = *off;
  }
  // Flip a payload byte on disk.
  {
    auto file = RandomAccessFile::Open(path);
    ASSERT_TRUE(file.ok());
    char byte;
    ASSERT_TRUE((*file)->Read(offset + 8, 1, &byte).ok());
    byte ^= 0x40;
    ASSERT_TRUE((*file)->Write(offset + 8, &byte, 1).ok());
  }
  auto log = LogFile::Open(path);
  ASSERT_TRUE(log.ok());
  std::string payload;
  EXPECT_TRUE((*log)->Read(offset, &payload).IsCorruption());
}

TEST_F(LogFileTest, TruncatedTailDetected) {
  const std::string path = dir_ + "/log";
  uint64_t offset;
  {
    auto log = LogFile::Open(path);
    ASSERT_TRUE(log.ok());
    auto off = (*log)->Append("will be truncated");
    ASSERT_TRUE(off.ok());
    offset = *off;
  }
  {
    auto file = RandomAccessFile::Open(path);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Truncate((*file)->size() - 4).ok());
  }
  auto log = LogFile::Open(path);
  ASSERT_TRUE(log.ok());
  std::string payload;
  EXPECT_FALSE((*log)->Read(offset, &payload).ok());
}

TEST_F(LogFileTest, RecoverTailDropsTornSuffix) {
  const std::string path = dir_ + "/log";
  uint64_t keep_end = 0;
  {
    auto log = LogFile::Open(path);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->Append("committed one").ok());
    ASSERT_TRUE((*log)->Append("committed two").ok());
    keep_end = (*log)->end_offset();
    ASSERT_TRUE((*log)->Append("torn by the crash").ok());
  }
  // Crash mid-append: the final record lost its last 4 bytes.
  {
    auto file = RandomAccessFile::Open(path);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Truncate((*file)->size() - 4).ok());
  }
  auto log = LogFile::Open(path);
  ASSERT_TRUE(log.ok());
  auto end = (*log)->RecoverTail();
  ASSERT_TRUE(end.ok()) << end.status().ToString();
  EXPECT_EQ(*end, keep_end);
  // The committed prefix survives and appends continue cleanly.
  std::string payload;
  ASSERT_TRUE((*log)->Read(0, &payload).ok());
  EXPECT_EQ(payload, "committed one");
  ASSERT_TRUE((*log)->Append("post recovery").ok());
}

TEST_F(LogFileTest, RecoverTailDropsZeroExtendedTail) {
  // A crash mid-pwrite can leave a zero-extended file. The dangerous
  // lengths: 8 bytes parses as a valid empty record (crc32("") == 0), 11 is
  // a torn header+payload, 64 is several fake empty records. All must be
  // recognized as a torn tail — truncated, not Corruption — exactly what a
  // tail torn mid-compaction-manifest write leaves behind.
  for (const uint64_t zeros : {uint64_t{8}, uint64_t{11}, uint64_t{64}}) {
    const std::string path =
        dir_ + "/log_zeros_" + std::to_string(zeros);
    uint64_t keep_end = 0;
    {
      auto log = LogFile::Open(path);
      ASSERT_TRUE(log.ok());
      ASSERT_TRUE((*log)->Append("real record").ok());
      keep_end = (*log)->end_offset();
      ASSERT_TRUE((*log)->Sync().ok());
    }
    {
      auto file = RandomAccessFile::Open(path);
      ASSERT_TRUE(file.ok());
      const std::string zero_bytes(zeros, '\0');
      ASSERT_TRUE(
          (*file)->Write((*file)->size(), zero_bytes.data(), zeros).ok());
    }
    auto log = LogFile::Open(path);
    ASSERT_TRUE(log.ok());
    auto end = (*log)->RecoverTail();
    ASSERT_TRUE(end.ok()) << "zeros=" << zeros << ": "
                          << end.status().ToString();
    EXPECT_EQ(*end, keep_end) << "zeros=" << zeros;
    std::string payload;
    ASSERT_TRUE((*log)->Read(0, &payload).ok());
    EXPECT_EQ(payload, "real record");
  }
}

TEST_F(LogFileTest, RecoverTailKeepsEmptyRecordFollowedByData) {
  // An empty record is 8 zero bytes; mid-log it must be preserved (only an
  // all-zero *tail* is torn).
  const std::string path = dir_ + "/log";
  uint64_t empty_off = 0;
  uint64_t keep_end = 0;
  {
    auto log = LogFile::Open(path);
    ASSERT_TRUE(log.ok());
    auto off = (*log)->Append("");
    ASSERT_TRUE(off.ok());
    empty_off = *off;
    ASSERT_TRUE((*log)->Append("data after the empty record").ok());
    keep_end = (*log)->end_offset();
    ASSERT_TRUE((*log)->Sync().ok());
  }
  auto log = LogFile::Open(path);
  ASSERT_TRUE(log.ok());
  auto end = (*log)->RecoverTail();
  ASSERT_TRUE(end.ok());
  EXPECT_EQ(*end, keep_end);
  std::string payload = "junk";
  ASSERT_TRUE((*log)->Read(empty_off, &payload).ok());
  EXPECT_TRUE(payload.empty());
}

TEST_F(LogFileTest, RecoverTailRejectsMidLogCorruption) {
  // A *complete* record with a bad checksum is corruption, never a torn
  // tail: truncating would silently drop the committed records behind it.
  const std::string path = dir_ + "/log";
  uint64_t second_off = 0;
  {
    auto log = LogFile::Open(path);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->Append("first").ok());
    auto off = (*log)->Append("second record, corrupted");
    ASSERT_TRUE(off.ok());
    second_off = *off;
    ASSERT_TRUE((*log)->Append("third, still committed").ok());
    ASSERT_TRUE((*log)->Sync().ok());
  }
  {
    auto file = RandomAccessFile::Open(path);
    ASSERT_TRUE(file.ok());
    char byte;
    ASSERT_TRUE((*file)->Read(second_off + 9, 1, &byte).ok());
    byte ^= 0x20;
    ASSERT_TRUE((*file)->Write(second_off + 9, &byte, 1).ok());
  }
  auto log = LogFile::Open(path);
  ASSERT_TRUE(log.ok());
  auto end = (*log)->RecoverTail();
  ASSERT_FALSE(end.ok());
  EXPECT_TRUE(end.status().IsCorruption());
}

}  // namespace
}  // namespace aion::storage
