#include "core/record.h"

#include <gtest/gtest.h>

#include "storage/string_pool.h"

namespace aion::core {
namespace {

class RecordTest : public ::testing::Test {
 protected:
  RecordTest() : pool_(storage::StringPool::InMemory()), codec_(pool_.get()) {}

  TemporalRecord RoundTrip(const TemporalRecord& record) {
    std::string buf;
    EXPECT_TRUE(codec_.Encode(record, &buf).ok());
    util::Slice input(buf);
    auto decoded = codec_.Decode(&input);
    EXPECT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_TRUE(input.empty());
    return decoded.ok() ? *decoded : TemporalRecord{};
  }

  std::unique_ptr<storage::StringPool> pool_;
  RecordCodec codec_;
};

graph::Node SampleNode() {
  graph::Node node;
  node.id = 42;
  node.labels = {"Admin", "Person"};
  node.props.Set("name", graph::PropertyValue("ada"));
  node.props.Set("age", graph::PropertyValue(36));
  node.props.Set("score", graph::PropertyValue(0.5));
  node.props.Set("tags", graph::PropertyValue(
                             std::vector<std::string>{"a", "b"}));
  return node;
}

graph::Relationship SampleRel() {
  graph::Relationship rel;
  rel.id = 7;
  rel.src = 1;
  rel.tgt = 2;
  rel.type = "KNOWS";
  rel.props.Set("since", graph::PropertyValue(1999));
  return rel;
}

TEST_F(RecordTest, FullNodeRoundTrip) {
  const TemporalRecord record = RecordCodec::FullNode(SampleNode(), 5);
  EXPECT_EQ(record.entity_type, EntityType::kNode);
  EXPECT_FALSE(record.delta);
  EXPECT_FALSE(record.deleted);
  const TemporalRecord decoded = RoundTrip(record);
  EXPECT_EQ(decoded, record);
}

TEST_F(RecordTest, FullRelationshipRoundTrip) {
  const TemporalRecord record = RecordCodec::FullRelationship(SampleRel(), 9);
  const TemporalRecord decoded = RoundTrip(record);
  EXPECT_EQ(decoded, record);
  EXPECT_EQ(decoded.src, 1u);
  EXPECT_EQ(decoded.tgt, 2u);
  EXPECT_EQ(decoded.rel_type, "KNOWS");
}

TEST_F(RecordTest, TombstoneIsTiny) {
  const TemporalRecord record =
      RecordCodec::Tombstone(EntityType::kNode, 1234, 999);
  std::string buf;
  ASSERT_TRUE(codec_.Encode(record, &buf).ok());
  // Header + varint id + varint ts: "deleted entities require space only
  // for their ID and timestamp" (Sec 4.2).
  EXPECT_LE(buf.size(), 6u);
  const TemporalRecord decoded = RoundTrip(record);
  EXPECT_TRUE(decoded.deleted);
  EXPECT_EQ(decoded.id, 1234u);
  EXPECT_EQ(decoded.ts, 999u);
}

TEST_F(RecordTest, DeltaFromPropertyUpdate) {
  graph::GraphUpdate u =
      graph::GraphUpdate::SetNodeProperty(3, "k", graph::PropertyValue(1));
  u.ts = 11;
  auto delta = RecordCodec::DeltaFromUpdate(u);
  ASSERT_TRUE(delta.ok());
  EXPECT_TRUE(delta->delta);
  EXPECT_EQ(delta->props.size(), 1u);
  EXPECT_EQ(RoundTrip(*delta), *delta);
}

TEST_F(RecordTest, DeltaFromLabelRemove) {
  graph::GraphUpdate u = graph::GraphUpdate::RemoveNodeLabel(3, "Old");
  u.ts = 12;
  auto delta = RecordCodec::DeltaFromUpdate(u);
  ASSERT_TRUE(delta.ok());
  ASSERT_EQ(delta->labels.size(), 1u);
  EXPECT_TRUE(delta->labels[0].removed);
  EXPECT_EQ(RoundTrip(*delta), *delta);
}

TEST_F(RecordTest, DeltaRejectsStructuralOps) {
  EXPECT_FALSE(
      RecordCodec::DeltaFromUpdate(graph::GraphUpdate::AddNode(1)).ok());
  EXPECT_FALSE(
      RecordCodec::DeltaFromUpdate(graph::GraphUpdate::DeleteNode(1)).ok());
}

TEST_F(RecordTest, StringsAreInternedOnce) {
  const TemporalRecord a = RecordCodec::FullNode(SampleNode(), 1);
  std::string buf1, buf2;
  ASSERT_TRUE(codec_.Encode(a, &buf1).ok());
  const size_t pool_size = pool_->size();
  ASSERT_TRUE(codec_.Encode(a, &buf2).ok());
  EXPECT_EQ(pool_->size(), pool_size);  // no new strings on re-encode
  EXPECT_EQ(buf1, buf2);
}

TEST_F(RecordTest, RecordsAreCompactViaRefs) {
  // A node with one long repeated string property: the record stores a
  // 4-byte reference, not the string.
  graph::Node node;
  node.id = 1;
  node.props.Set("description", graph::PropertyValue(std::string(500, 'x')));
  std::string buf;
  ASSERT_TRUE(codec_.Encode(RecordCodec::FullNode(node, 1), &buf).ok());
  EXPECT_LT(buf.size(), 32u);
}

TEST_F(RecordTest, FoldFullThenDeltas) {
  graph::Node node;
  bool live = false;
  ASSERT_TRUE(RecordCodec::FoldNode(RecordCodec::FullNode(SampleNode(), 1),
                                    &node, &live)
                  .ok());
  EXPECT_TRUE(live);
  EXPECT_EQ(node.props.Get("age")->AsInt(), 36);

  graph::GraphUpdate set =
      graph::GraphUpdate::SetNodeProperty(42, "age", graph::PropertyValue(37));
  set.ts = 2;
  ASSERT_TRUE(RecordCodec::FoldNode(*RecordCodec::DeltaFromUpdate(set), &node,
                                    &live)
                  .ok());
  EXPECT_EQ(node.props.Get("age")->AsInt(), 37);

  graph::GraphUpdate rm = graph::GraphUpdate::RemoveNodeProperty(42, "name");
  rm.ts = 3;
  ASSERT_TRUE(RecordCodec::FoldNode(*RecordCodec::DeltaFromUpdate(rm), &node,
                                    &live)
                  .ok());
  EXPECT_EQ(node.props.Get("name"), nullptr);

  ASSERT_TRUE(
      RecordCodec::FoldNode(RecordCodec::Tombstone(EntityType::kNode, 42, 4),
                            &node, &live)
          .ok());
  EXPECT_FALSE(live);
}

TEST_F(RecordTest, FoldDeltaOnDeadNodeFails) {
  graph::Node node;
  bool live = false;
  graph::GraphUpdate set =
      graph::GraphUpdate::SetNodeProperty(1, "k", graph::PropertyValue(1));
  EXPECT_TRUE(RecordCodec::FoldNode(*RecordCodec::DeltaFromUpdate(set), &node,
                                    &live)
                  .IsCorruption());
}

TEST_F(RecordTest, FoldRelationship) {
  graph::Relationship rel;
  bool live = false;
  ASSERT_TRUE(
      RecordCodec::FoldRelationship(
          RecordCodec::FullRelationship(SampleRel(), 1), &rel, &live)
          .ok());
  EXPECT_TRUE(live);
  graph::GraphUpdate set = graph::GraphUpdate::SetRelationshipProperty(
      7, "since", graph::PropertyValue(2000));
  ASSERT_TRUE(RecordCodec::FoldRelationship(*RecordCodec::DeltaFromUpdate(set),
                                            &rel, &live)
                  .ok());
  EXPECT_EQ(rel.props.Get("since")->AsInt(), 2000);
}

TEST_F(RecordTest, FoldTypeMismatchFails) {
  graph::Node node;
  bool live = false;
  EXPECT_FALSE(RecordCodec::FoldNode(
                   RecordCodec::FullRelationship(SampleRel(), 1), &node, &live)
                   .ok());
}

TEST_F(RecordTest, DecodeTruncatedFails) {
  std::string buf;
  ASSERT_TRUE(codec_.Encode(RecordCodec::FullNode(SampleNode(), 1), &buf).ok());
  for (size_t keep = 0; keep + 1 < buf.size(); keep += 3) {
    util::Slice input(buf.data(), keep);
    EXPECT_FALSE(codec_.Decode(&input).ok()) << keep;
  }
}

TEST_F(RecordTest, AllPropertyTypesSurvive) {
  graph::Node node;
  node.id = 5;
  node.props.Set("null", graph::PropertyValue());
  node.props.Set("bool", graph::PropertyValue(true));
  node.props.Set("int", graph::PropertyValue(int64_t{-99}));
  node.props.Set("double", graph::PropertyValue(1.25));
  node.props.Set("str", graph::PropertyValue("text"));
  node.props.Set("ints", graph::PropertyValue(std::vector<int64_t>{1, -2}));
  node.props.Set("doubles", graph::PropertyValue(std::vector<double>{0.5}));
  node.props.Set("strs",
                 graph::PropertyValue(std::vector<std::string>{"x", "y"}));
  const TemporalRecord record = RecordCodec::FullNode(node, 3);
  EXPECT_EQ(RoundTrip(record), record);
}

}  // namespace
}  // namespace aion::core
