#include "util/coding.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "util/random.h"
#include "util/slice.h"

namespace aion::util {
namespace {

TEST(CodingTest, Fixed32RoundTrip) {
  std::string s;
  PutFixed32(&s, 0);
  PutFixed32(&s, 12345);
  PutFixed32(&s, std::numeric_limits<uint32_t>::max());
  ASSERT_EQ(s.size(), 12u);
  EXPECT_EQ(DecodeFixed32(s.data()), 0u);
  EXPECT_EQ(DecodeFixed32(s.data() + 4), 12345u);
  EXPECT_EQ(DecodeFixed32(s.data() + 8), std::numeric_limits<uint32_t>::max());
}

TEST(CodingTest, Fixed64RoundTrip) {
  std::string s;
  PutFixed64(&s, 0x0102030405060708ULL);
  EXPECT_EQ(DecodeFixed64(s.data()), 0x0102030405060708ULL);
}

TEST(CodingTest, DoubleRoundTrip) {
  std::string s;
  PutDouble(&s, 3.14159);
  PutDouble(&s, -0.0);
  PutDouble(&s, std::numeric_limits<double>::infinity());
  EXPECT_DOUBLE_EQ(DecodeDouble(s.data()), 3.14159);
  EXPECT_DOUBLE_EQ(DecodeDouble(s.data() + 8), -0.0);
  EXPECT_DOUBLE_EQ(DecodeDouble(s.data() + 16),
                   std::numeric_limits<double>::infinity());
}

TEST(CodingTest, VarintRoundTripBoundaries) {
  const std::vector<uint64_t> values = {
      0,    1,    127,  128,  255,   256,
      (1ULL << 14) - 1, 1ULL << 14, (1ULL << 21) - 1, 1ULL << 21,
      (1ULL << 28) - 1, 1ULL << 28, (1ULL << 35),     (1ULL << 42),
      (1ULL << 49),     (1ULL << 56), (1ULL << 63),
      std::numeric_limits<uint64_t>::max()};
  std::string s;
  for (uint64_t v : values) PutVarint64(&s, v);
  Slice input(s);
  for (uint64_t v : values) {
    uint64_t decoded;
    ASSERT_TRUE(GetVarint64(&input, &decoded));
    EXPECT_EQ(decoded, v);
  }
  EXPECT_TRUE(input.empty());
}

TEST(CodingTest, VarintLengthMatchesEncoding) {
  for (uint64_t v : {uint64_t{0}, uint64_t{127}, uint64_t{128},
                     uint64_t{1} << 20, uint64_t{1} << 40,
                     std::numeric_limits<uint64_t>::max()}) {
    std::string s;
    PutVarint64(&s, v);
    EXPECT_EQ(static_cast<int>(s.size()), VarintLength(v));
  }
}

TEST(CodingTest, VarintTruncatedFails) {
  std::string s;
  PutVarint64(&s, 1ULL << 40);
  for (size_t keep = 0; keep + 1 < s.size(); ++keep) {
    Slice input(s.data(), keep);
    uint64_t v;
    EXPECT_FALSE(GetVarint64(&input, &v)) << "prefix len " << keep;
  }
}

TEST(CodingTest, Varint32RejectsOversized) {
  std::string s;
  PutVarint64(&s, 1ULL << 33);
  Slice input(s);
  uint32_t v;
  EXPECT_FALSE(GetVarint32(&input, &v));
}

TEST(CodingTest, ZigZagRoundTrip) {
  for (int64_t v : {int64_t{0}, int64_t{-1}, int64_t{1}, int64_t{-64},
                    int64_t{63}, std::numeric_limits<int64_t>::min(),
                    std::numeric_limits<int64_t>::max()}) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
  }
  // Small magnitudes encode short.
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
}

TEST(CodingTest, LengthPrefixedSliceRoundTrip) {
  std::string s;
  PutLengthPrefixedSlice(&s, Slice("hello"));
  PutLengthPrefixedSlice(&s, Slice(""));
  PutLengthPrefixedSlice(&s, Slice("world!"));
  Slice input(s);
  Slice out;
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &out));
  EXPECT_EQ(out.ToString(), "hello");
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &out));
  EXPECT_EQ(out.ToString(), "");
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &out));
  EXPECT_EQ(out.ToString(), "world!");
  EXPECT_FALSE(GetLengthPrefixedSlice(&input, &out));
}

TEST(CodingTest, BigEndianPreservesOrder) {
  // Byte-wise comparison of big-endian encodings must match numeric order.
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t a = rng.Next() >> (rng.Uniform(64));
    const uint64_t b = rng.Next() >> (rng.Uniform(64));
    std::string ea, eb;
    PutBigEndian64(&ea, a);
    PutBigEndian64(&eb, b);
    EXPECT_EQ(a < b, Slice(ea).Compare(Slice(eb)) < 0);
    EXPECT_EQ(DecodeBigEndian64(ea.data()), a);
  }
}

TEST(CodingTest, BigEndian32RoundTrip) {
  for (uint32_t v : {0u, 1u, 0xffu, 0x1000u, 0xffffffffu}) {
    std::string s;
    PutBigEndian32(&s, v);
    EXPECT_EQ(DecodeBigEndian32(s.data()), v);
  }
}

TEST(CodingTest, CompositeKeyOrdering) {
  // (id, ts) composite keys: sorting bytewise == sorting by (id, ts).
  struct Pair {
    uint64_t id, ts;
  };
  const std::vector<Pair> pairs = {{1, 5}, {1, 6}, {2, 0}, {2, 1}, {10, 0}};
  std::vector<std::string> keys;
  for (const Pair& p : pairs) {
    std::string k;
    PutBigEndian64(&k, p.id);
    PutBigEndian64(&k, p.ts);
    keys.push_back(k);
  }
  for (size_t i = 0; i + 1 < keys.size(); ++i) {
    EXPECT_LT(Slice(keys[i]).Compare(Slice(keys[i + 1])), 0);
  }
}

TEST(SliceTest, Basics) {
  Slice s("abcdef");
  EXPECT_EQ(s.size(), 6u);
  EXPECT_EQ(s[2], 'c');
  EXPECT_TRUE(s.StartsWith("abc"));
  EXPECT_FALSE(s.StartsWith("abd"));
  s.RemovePrefix(3);
  EXPECT_EQ(s.ToString(), "def");
  EXPECT_TRUE(Slice("") == Slice(""));
  EXPECT_TRUE(Slice("a") != Slice("b"));
  EXPECT_LT(Slice("ab").Compare(Slice("b")), 0);
  EXPECT_LT(Slice("ab").Compare(Slice("abc")), 0);
  EXPECT_GT(Slice("abc").Compare(Slice("ab")), 0);
}

}  // namespace
}  // namespace aion::util
