// End-to-end equivalence: a random transactional workload flows through the
// host database into Aion; every temporal query answer is checked against
// an in-memory TemporalGraph reference built from the same update stream.
// This is the cross-module contract test for the whole system:
//   GraphDatabase -> listener -> AionStore{TimeStore, LineageStore,
//   GraphStore} -> Table 1 API and temporal Cypher.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "core/aion.h"
#include "graph/temporal_graph.h"
#include "query/engine.h"
#include "storage/file.h"
#include "txn/graphdb.h"
#include "util/random.h"

namespace aion {
namespace {

using graph::Direction;
using graph::GraphUpdate;
using graph::kInfiniteTime;
using graph::NodeId;
using graph::RelId;
using graph::Timestamp;

class IntegrationTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    auto dir = storage::MakeTempDir("aion_integration_");
    ASSERT_TRUE(dir.ok());
    dir_ = *dir;
    auto db = txn::GraphDatabase::OpenInMemory();
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    core::AionStore::Options options;
    options.dir = dir_ + "/aion";
    options.snapshot_policy.kind =
        core::SnapshotPolicy::Kind::kOperationBased;
    options.snapshot_policy.every = 200;
    options.materialization_threshold = 4;
    auto aion = core::AionStore::Open(options);
    ASSERT_TRUE(aion.ok());
    aion_ = std::move(*aion);
    db_->RegisterListener(aion_.get());
  }
  void TearDown() override { (void)storage::RemoveDirRecursively(dir_); }

  std::string dir_;
  std::unique_ptr<txn::GraphDatabase> db_;
  std::unique_ptr<core::AionStore> aion_;
};

TEST_P(IntegrationTest, AionAgreesWithTemporalReferenceEverywhere) {
  util::Random rng(static_cast<uint64_t>(GetParam()) * 101 + 13);
  graph::TemporalGraph reference;

  std::vector<NodeId> nodes;
  std::vector<RelId> rels;

  // Drive ~120 transactions of 1-6 updates each through the database.
  for (int t = 0; t < 120; ++t) {
    auto txn = db_->Begin();
    const int ops = 1 + static_cast<int>(rng.Uniform(6));
    // Mirror the operations for the reference (ids assigned by db).
    std::vector<GraphUpdate> mirror;
    for (int i = 0; i < ops; ++i) {
      const double dice = rng.NextDouble();
      if (dice < 0.3 || nodes.size() < 2) {
        graph::PropertySet props;
        props.Set("created_in", graph::PropertyValue(t));
        const NodeId id =
            txn->CreateNode({"L" + std::to_string(t % 3)}, props);
        mirror.push_back(GraphUpdate::AddNode(
            id, {"L" + std::to_string(t % 3)}, props));
        nodes.push_back(id);
      } else if (dice < 0.55) {
        const NodeId s = nodes[rng.Uniform(nodes.size())];
        const NodeId d = nodes[rng.Uniform(nodes.size())];
        graph::PropertySet props;
        props.Set("w", graph::PropertyValue(static_cast<double>(t)));
        const RelId id = txn->CreateRelationship(s, d, "R", props);
        mirror.push_back(GraphUpdate::AddRelationship(id, s, d, "R", props));
        rels.push_back(id);
      } else if (dice < 0.8) {
        const NodeId n = nodes[rng.Uniform(nodes.size())];
        txn->SetNodeProperty(n, "p", graph::PropertyValue(t));
        mirror.push_back(
            GraphUpdate::SetNodeProperty(n, "p", graph::PropertyValue(t)));
      } else if (!rels.empty()) {
        // Deleting a relationship twice within a transaction batch would
        // fail validation; pick one not already slated.
        const size_t idx = rng.Uniform(rels.size());
        const RelId r = rels[idx];
        bool already = false;
        for (const GraphUpdate& m : mirror) {
          if (m.op == graph::UpdateOp::kDeleteRelationship && m.id == r) {
            already = true;
          }
        }
        if (already) continue;
        txn->DeleteRelationship(r);
        mirror.push_back(GraphUpdate::DeleteRelationship(r));
        rels.erase(rels.begin() + static_cast<long>(idx));
      }
    }
    if (mirror.empty()) {
      txn->Abort();
      continue;
    }
    auto ts = txn->Commit();
    ASSERT_TRUE(ts.ok()) << ts.status().ToString();
    for (GraphUpdate& u : mirror) {
      u.ts = *ts;
      ASSERT_TRUE(reference.Apply(u).ok()) << u.ToString();
    }
  }
  aion_->DrainBackground();
  const Timestamp last = db_->LastCommitTimestamp();

  // --- Global queries: snapshots at sampled instants -----------------------
  for (int check = 0; check < 8; ++check) {
    const Timestamp t = rng.Uniform(last + 2);
    auto view = aion_->GetGraphAt(t);
    ASSERT_TRUE(view.ok());
    auto expected = reference.SnapshotAt(t);
    EXPECT_TRUE(expected->SameGraphAs(**view)) << "t=" << t;
  }

  // --- Point queries through the facade ------------------------------------
  for (int check = 0; check < 40; ++check) {
    const Timestamp t = rng.Uniform(last + 2);
    const NodeId n = nodes[rng.Uniform(nodes.size())];
    auto got = aion_->GetNode(n, t, t);
    ASSERT_TRUE(got.ok());
    const graph::Node* expected = reference.NodeAt(n, t);
    ASSERT_EQ(got->size() == 1, expected != nullptr)
        << "node " << n << " t " << t;
    if (expected != nullptr) {
      EXPECT_EQ((*got)[0].entity, *expected);
    }
  }

  // --- Histories ------------------------------------------------------------
  for (int check = 0; check < 15; ++check) {
    const NodeId n = nodes[rng.Uniform(nodes.size())];
    auto got = aion_->GetNode(n, 0, kInfiniteTime);
    ASSERT_TRUE(got.ok());
    const auto expected = reference.NodeHistory(n, 0, kInfiniteTime);
    ASSERT_EQ(got->size(), expected.size()) << "node " << n;
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ((*got)[i].interval, expected[i].interval);
      EXPECT_EQ((*got)[i].entity, expected[i].entity);
    }
  }

  // --- Expand: LineageStore vs reference snapshot BFS -----------------------
  for (int check = 0; check < 10; ++check) {
    const Timestamp t = 1 + rng.Uniform(last);
    const NodeId n = nodes[rng.Uniform(nodes.size())];
    auto got = aion_->ExpandUsing(core::AionStore::StoreChoice::kLineageStore,
                                  n, Direction::kOutgoing, 2, t);
    ASSERT_TRUE(got.ok());
    // Reference: 1-hop and 2-hop sets via the snapshot.
    auto snapshot = reference.SnapshotAt(t);
    if (snapshot->GetNode(n) == nullptr) {
      EXPECT_TRUE((*got)[0].empty());
      continue;
    }
    std::set<NodeId> hop1_expected;
    for (RelId rel_id : snapshot->OutRels(n)) {
      hop1_expected.insert(snapshot->GetRelationship(rel_id)->tgt);
    }
    std::set<NodeId> hop1_got;
    for (const graph::Node& node : (*got)[0]) hop1_got.insert(node.id);
    EXPECT_EQ(hop1_got, hop1_expected) << "node " << n << " t " << t;
  }

  // --- Diff replay reconstructs the final graph ----------------------------
  {
    auto diff = aion_->GetDiff(0, kInfiniteTime);
    ASSERT_TRUE(diff.ok());
    graph::MemoryGraph replayed;
    ASSERT_TRUE(replayed.ApplyAll(*diff).ok());
    auto final_expected = reference.SnapshotAt(last);
    EXPECT_TRUE(final_expected->SameGraphAs(replayed));
    // And it matches the host database's current graph.
    db_->WithReadLock([&](const graph::MemoryGraph& current) {
      EXPECT_TRUE(current.SameGraphAs(replayed));
    });
  }

  // --- Temporal graph export over a window ---------------------------------
  {
    const Timestamp start = last / 3;
    auto temporal = aion_->GetTemporalGraph(start, last);
    ASSERT_TRUE(temporal.ok());
    for (int check = 0; check < 10; ++check) {
      const Timestamp t = start + rng.Uniform(last - start);
      const NodeId n = nodes[rng.Uniform(nodes.size())];
      const graph::Node* expected = reference.NodeAt(n, t);
      const graph::Node* got = (*temporal)->NodeAt(n, t);
      ASSERT_EQ(got != nullptr, expected != nullptr)
          << "node " << n << " t " << t;
      if (expected != nullptr) {
        EXPECT_EQ(*got, *expected);
      }
    }
  }

  // --- Cypher agrees with the API -------------------------------------------
  {
    query::QueryEngine engine(db_.get(), aion_.get());
    const Timestamp t = 1 + rng.Uniform(last);
    auto counted = engine.Execute(
        "USE gdb FOR SYSTEM_TIME AS OF " + std::to_string(t) +
        " MATCH (n) RETURN count(*)");
    ASSERT_TRUE(counted.ok()) << counted.status().ToString();
    EXPECT_EQ(static_cast<size_t>(counted->rows[0][0].AsInt()),
              reference.SnapshotAt(t)->NumNodes());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntegrationTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace aion
namespace aion {
namespace {

// Regression: concurrent temporal reads racing the background LineageStore
// cascade must not observe torn B+Tree pages (this crashed the bolt
// benchmark before LineageStore/PageCache grew internal latches).
TEST(ConcurrencyStressTest, ReadsRaceBackgroundCascade) {
  auto dir = storage::MakeTempDir("aion_race_");
  ASSERT_TRUE(dir.ok());
  core::AionStore::Options options;
  options.dir = *dir + "/aion";
  options.lineage_mode = core::AionStore::LineageMode::kAsync;
  options.snapshot_policy.kind = core::SnapshotPolicy::Kind::kDisabled;
  auto aion = core::AionStore::Open(options);
  ASSERT_TRUE(aion.ok());

  constexpr NodeId kNodes = 400;
  std::vector<GraphUpdate> seed;
  for (NodeId i = 0; i < kNodes; ++i) {
    seed.push_back(GraphUpdate::AddNode(i, {"N"}));
  }
  ASSERT_TRUE((*aion)->Ingest(1, seed).ok());

  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      util::Random rng(100 + r);
      // Bounded iterations on every side: deterministic overlap with the
      // writer without starving the single core.
      for (int i = 0; i < 1200; ++i) {
        const NodeId n = rng.Uniform(kNodes);
        const Timestamp t = 1 + rng.Uniform(2000);
        auto node = (*aion)->GetNode(n, t, t);
        ASSERT_TRUE(node.ok()) << node.status().ToString();
        auto nbrs = (*aion)->ExpandUsing(
            core::AionStore::StoreChoice::kLineageStore, n,
            graph::Direction::kBoth, 1, t);
        ASSERT_TRUE(nbrs.ok()) << nbrs.status().ToString();
        reads.fetch_add(1);
      }
    });
  }
  // Writer: a stream of relationship churn flowing through the async
  // cascade while the readers hammer the same trees.
  util::Random rng(7);
  RelId next_rel = 0;
  std::vector<RelId> live;
  for (Timestamp ts = 2; ts <= 1500; ++ts) {
    GraphUpdate u;
    if (live.empty() || rng.Bernoulli(0.7)) {
      u = GraphUpdate::AddRelationship(next_rel, rng.Uniform(kNodes),
                                       rng.Uniform(kNodes), "R");
      live.push_back(next_rel++);
    } else {
      const size_t idx = rng.Uniform(live.size());
      u = GraphUpdate::DeleteRelationship(live[idx]);
      live.erase(live.begin() + static_cast<long>(idx));
    }
    ASSERT_TRUE((*aion)->Ingest(ts, {u}).ok());
  }
  (*aion)->DrainBackground();
  for (auto& t : readers) t.join();
  EXPECT_EQ(reads.load(), 3u * 1200u);
  // Post-race sanity: the store still answers consistently.
  auto view = (*aion)->GetGraphAt(1500);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ((*view)->NumNodes(), static_cast<size_t>(kNodes));
  (void)storage::RemoveDirRecursively(*dir);
}

}  // namespace
}  // namespace aion
