#include "graph/temporal_graph.h"

#include <gtest/gtest.h>

#include <set>

#include "graph/update.h"

namespace aion::graph {
namespace {

GraphUpdate At(Timestamp ts, GraphUpdate u) {
  u.ts = ts;
  return u;
}

// Timeline:
//  t=1: add node 0, node 1
//  t=2: add rel 0: 0->1
//  t=3: set node 0 prop x=1
//  t=5: delete rel 0
//  t=6: delete node 1
//  t=8: re-add node 1
std::unique_ptr<TemporalGraph> Timeline() {
  auto g = TemporalGraph::Build({
      At(1, GraphUpdate::AddNode(0, {"A"})),
      At(1, GraphUpdate::AddNode(1, {"B"})),
      At(2, GraphUpdate::AddRelationship(0, 0, 1, "R")),
      At(3, GraphUpdate::SetNodeProperty(0, "x", PropertyValue(1))),
      At(5, GraphUpdate::DeleteRelationship(0)),
      At(6, GraphUpdate::DeleteNode(1)),
      At(8, GraphUpdate::AddNode(1, {"Born again"})),
  });
  EXPECT_TRUE(g.ok()) << g.status().ToString();
  return std::move(*g);
}

TEST(TemporalGraphTest, PointInTimeNodeLookup) {
  auto g = Timeline();
  EXPECT_EQ(g->NodeAt(0, 0), nullptr);  // before creation
  ASSERT_NE(g->NodeAt(0, 1), nullptr);
  ASSERT_NE(g->NodeAt(1, 5), nullptr);
  EXPECT_EQ(g->NodeAt(1, 6), nullptr);  // deleted
  EXPECT_EQ(g->NodeAt(1, 7), nullptr);
  ASSERT_NE(g->NodeAt(1, 8), nullptr);  // re-added
  EXPECT_TRUE(g->NodeAt(1, 8)->HasLabel("Born again"));
  EXPECT_TRUE(g->NodeAt(1, 5)->HasLabel("B"));
}

TEST(TemporalGraphTest, PropertyVersioning) {
  auto g = Timeline();
  EXPECT_EQ(g->NodeAt(0, 2)->props.Get("x"), nullptr);
  ASSERT_NE(g->NodeAt(0, 3), nullptr);
  EXPECT_EQ(g->NodeAt(0, 3)->props.Get("x")->AsInt(), 1);
  EXPECT_EQ(g->NodeAt(0, 100)->props.Get("x")->AsInt(), 1);
}

TEST(TemporalGraphTest, RelationshipIntervals) {
  auto g = Timeline();
  EXPECT_EQ(g->RelationshipAt(0, 1), nullptr);
  ASSERT_NE(g->RelationshipAt(0, 2), nullptr);
  ASSERT_NE(g->RelationshipAt(0, 4), nullptr);
  EXPECT_EQ(g->RelationshipAt(0, 5), nullptr);
  EXPECT_EQ(g->RelationshipIntervalAt(0, 3), (TimeInterval{2, 5}));
}

TEST(TemporalGraphTest, NodeHistoryWindows) {
  auto g = Timeline();
  // Node 0 versions: [1,3) without x, [3, inf) with x.
  auto all = g->NodeHistory(0, 0, kInfiniteTime);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].interval, (TimeInterval{1, 3}));
  EXPECT_EQ(all[1].interval, (TimeInterval{3, kInfiniteTime}));
  // Window [1, 2) catches only the first version.
  EXPECT_EQ(g->NodeHistory(0, 1, 2).size(), 1u);
  // Window [4, 10): only the second version overlaps.
  auto late = g->NodeHistory(0, 4, 10);
  ASSERT_EQ(late.size(), 1u);
  EXPECT_EQ(late[0].interval.start, 3u);
  // Node 1: [1,6) and [8, inf).
  EXPECT_EQ(g->NodeHistory(1, 0, kInfiniteTime).size(), 2u);
  EXPECT_EQ(g->NodeHistory(1, 6, 8).size(), 0u);
}

TEST(TemporalGraphTest, OutOfOrderUpdatesRejected) {
  TemporalGraph g;
  ASSERT_TRUE(g.Apply(At(5, GraphUpdate::AddNode(0))).ok());
  EXPECT_TRUE(g.Apply(At(4, GraphUpdate::AddNode(1))).IsInvalidArgument());
  EXPECT_TRUE(g.Apply(At(5, GraphUpdate::AddNode(1))).ok());  // equal ts ok
}

TEST(TemporalGraphTest, ConstraintsAgainstLiveState) {
  TemporalGraph g;
  ASSERT_TRUE(g.Apply(At(1, GraphUpdate::AddNode(0))).ok());
  EXPECT_TRUE(g.Apply(At(2, GraphUpdate::AddNode(0))).IsAlreadyExists());
  EXPECT_TRUE(g.Apply(At(2, GraphUpdate::AddRelationship(0, 0, 9, "R")))
                  .IsFailedPrecondition());
  ASSERT_TRUE(g.Apply(At(3, GraphUpdate::DeleteNode(0))).ok());
  EXPECT_TRUE(g.Apply(At(4, GraphUpdate::DeleteNode(0))).IsFailedPrecondition());
  // Re-add after delete works.
  EXPECT_TRUE(g.Apply(At(5, GraphUpdate::AddNode(0))).ok());
}

TEST(TemporalGraphTest, SameTimestampModificationCollapses) {
  TemporalGraph g;
  ASSERT_TRUE(g.Apply(At(1, GraphUpdate::AddNode(0))).ok());
  ASSERT_TRUE(
      g.Apply(At(1, GraphUpdate::SetNodeProperty(0, "a", PropertyValue(1))))
          .ok());
  // Still a single version (tau_s < tau_e invariant).
  EXPECT_EQ(g.NodeHistory(0, 0, kInfiniteTime).size(), 1u);
  EXPECT_EQ(g.NodeAt(0, 1)->props.Get("a")->AsInt(), 1);
}

TEST(TemporalGraphTest, SnapshotAtMatchesTimeline) {
  auto g = Timeline();
  auto at4 = g->SnapshotAt(4);
  EXPECT_EQ(at4->NumNodes(), 2u);
  EXPECT_EQ(at4->NumRelationships(), 1u);
  EXPECT_EQ(at4->GetNode(0)->props.Get("x")->AsInt(), 1);

  auto at7 = g->SnapshotAt(7);
  EXPECT_EQ(at7->NumNodes(), 1u);  // node 1 deleted, not yet re-added
  EXPECT_EQ(at7->NumRelationships(), 0u);

  auto at9 = g->SnapshotAt(9);
  EXPECT_EQ(at9->NumNodes(), 2u);
}

TEST(TemporalGraphTest, ForEachRelVersionScansHistory) {
  auto g = Timeline();
  int count = 0;
  g->ForEachRelVersion(0, Direction::kOutgoing,
                       [&](const RelationshipVersion& v) {
                         ++count;
                         EXPECT_EQ(v.interval, (TimeInterval{2, 5}));
                       });
  EXPECT_EQ(count, 1);
  count = 0;
  g->ForEachRelVersion(1, Direction::kIncoming,
                       [&](const RelationshipVersion&) { ++count; });
  EXPECT_EQ(count, 1);
  g->ForEachRelVersion(1, Direction::kOutgoing,
                       [&](const RelationshipVersion&) { FAIL(); });
}

TEST(TemporalGraphTest, ForEachNodeInWindow) {
  auto g = Timeline();
  std::set<NodeId> seen;
  g->ForEachNodeInWindow(6, 8, [&](const NodeVersion& v) {
    seen.insert(v.entity.id);
  });
  EXPECT_EQ(seen, std::set<NodeId>{0});  // node 1 is dead during [6,8)
  seen.clear();
  g->ForEachNodeInWindow(0, kInfiniteTime,
                         [&](const NodeVersion& v) { seen.insert(v.entity.id); });
  EXPECT_EQ(seen, (std::set<NodeId>{0, 1}));
}

TEST(TemporalGraphTest, VersionCountersTrack) {
  auto g = Timeline();
  // Node versions: node0 x2, node1 x2 = 4; rel versions: 1.
  EXPECT_EQ(g->NumNodeVersions(), 4u);
  EXPECT_EQ(g->NumRelVersions(), 1u);
  EXPECT_EQ(g->LastTimestamp(), 8u);
}

}  // namespace
}  // namespace aion::graph
