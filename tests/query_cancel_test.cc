// Cooperative cancellation end-to-end: kill a statement from a second
// thread while it is parked inside a long TimeStore replay (and inside
// PROFILE), and assert the typed kCancelled surfaces within one
// operator-row boundary. The suite name contains "Cancel" so the TSan gate
// (scripts/check.sh) picks it up: the registry handle is shared between
// the executing thread and the killer.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/aion.h"
#include "obs/metrics.h"
#include "query/engine.h"
#include "storage/file.h"
#include "txn/graphdb.h"
#include "util/status.h"

namespace aion::query {
namespace {

// Many tiny steps, each a separate TimeStore scan (a cancellation point):
// far more work than any test should finish, so the kill always lands
// mid-flight. A broken kill fails the post-join assertions, not a timeout.
constexpr const char* kLongStatement =
    "CALL aion.incremental.avg('x', 0, 2000000, 1)";

class QueryCancelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = storage::MakeTempDir("aion_cancel_");
    ASSERT_TRUE(dir.ok());
    dir_ = *dir;
    core::AionStore::Options options;
    options.dir = dir_ + "/aion";
    options.lineage_mode = core::AionStore::LineageMode::kSync;
    auto aion = core::AionStore::Open(options);
    ASSERT_TRUE(aion.ok());
    aion_ = std::move(*aion);
    // A little real history so the replay loop touches indexed records,
    // not just empty windows.
    for (graph::Timestamp ts = 1; ts <= 64; ++ts) {
      ASSERT_TRUE(
          aion_->Ingest(ts, {graph::GraphUpdate::AddNode(ts)}).ok());
    }
    auto db = txn::GraphDatabase::OpenInMemory();
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    db_->RegisterListener(aion_.get());
    engine_ = std::make_unique<QueryEngine>(db_.get(), aion_.get());
  }

  void TearDown() override {
    engine_.reset();
    db_.reset();
    aion_.reset();
    (void)storage::RemoveDirRecursively(dir_);
  }

  // Polls dbms.queries() until `statement` shows up running; returns its
  // query id.
  uint64_t WaitForRunning(const std::string& statement) {
    for (int attempt = 0; attempt < 10000; ++attempt) {
      auto listing = engine_->Execute("CALL dbms.queries()");
      EXPECT_TRUE(listing.ok());
      for (const auto& row : listing->rows) {
        if (row[2].AsString() == statement) {
          return static_cast<uint64_t>(row[0].AsInt());
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return 0;
  }

  std::string dir_;
  std::unique_ptr<core::AionStore> aion_;
  std::unique_ptr<txn::GraphDatabase> db_;
  std::unique_ptr<QueryEngine> engine_;
};

TEST_F(QueryCancelTest, KillFromSecondThreadMidTimeStoreReplay) {
  util::StatusOr<QueryResult> result = util::Status::Internal("did not run");
  std::thread worker(
      [&] { result = engine_->Execute(kLongStatement); });

  const uint64_t query_id = WaitForRunning(kLongStatement);
  ASSERT_NE(query_id, 0u) << "statement never appeared in dbms.queries()";

  // The live listing carries route and progress while the query runs.
  auto listing = engine_->Execute("CALL dbms.queries()");
  ASSERT_TRUE(listing.ok());
  ASSERT_EQ(listing->columns,
            (std::vector<std::string>{"query_id", "session_id", "query",
                                      "store", "elapsed_nanos", "rows",
                                      "cancel_requested"}));
  bool listed = false;
  for (const auto& row : listing->rows) {
    if (static_cast<uint64_t>(row[0].AsInt()) != query_id) continue;
    listed = true;
    EXPECT_EQ(row[1].AsInt(), 0);  // embedded session
    EXPECT_GT(row[4].AsInt(), 0);  // elapsed
    EXPECT_FALSE(row[6].AsBool());
  }
  EXPECT_TRUE(listed);

  const auto kill_at = std::chrono::steady_clock::now();
  auto kill = engine_->Execute("CALL dbms.queries.kill(" +
                               std::to_string(query_id) + ")");
  ASSERT_TRUE(kill.ok());
  ASSERT_EQ(kill->NumRows(), 1u);
  EXPECT_TRUE(kill->rows[0][1].AsBool());

  worker.join();
  const auto waited = std::chrono::steady_clock::now() - kill_at;
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status().ToString();
  // One operator-row boundary away: generous bound to absorb sanitizer
  // slowdown, still orders of magnitude under the full statement.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(waited)
                .count(),
            5000);

  // The kill lands in per-session accounting as cancelled (and, by the
  // engine's statements == successes + failures invariant, a failure).
  auto sessions = engine_->Execute("CALL dbms.sessions()");
  ASSERT_TRUE(sessions.ok());
  bool found_session = false;
  for (const auto& row : sessions->rows) {
    if (row[0].AsInt() != 0) continue;
    found_session = true;
    EXPECT_GE(row[5].AsInt(), 1);  // cancelled
    EXPECT_GE(row[4].AsInt(), 1);  // failures
  }
  EXPECT_TRUE(found_session);
  EXPECT_EQ(engine_->workload()->active_count(), 0u);
}

TEST_F(QueryCancelTest, KillMidProfileReturnsCancelled) {
  const std::string statement = std::string("PROFILE ") + kLongStatement;
  util::StatusOr<QueryResult> result = util::Status::Internal("did not run");
  std::thread worker([&] { result = engine_->Execute(statement); });

  const uint64_t query_id = WaitForRunning(statement);
  ASSERT_NE(query_id, 0u);
  EXPECT_TRUE(engine_->workload()->Cancel(query_id));

  worker.join();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status().ToString();
  // The aborted PROFILE restored the recorder: a follow-up statement runs
  // clean.
  auto after = engine_->Execute("MATCH (n) RETURN count(*)");
  EXPECT_TRUE(after.ok()) << after.status().ToString();
}

TEST_F(QueryCancelTest, KillUnknownQueryIdReportsNotKilled) {
  auto kill = engine_->Execute("CALL dbms.queries.kill(999999)");
  ASSERT_TRUE(kill.ok());
  ASSERT_EQ(kill->columns,
            (std::vector<std::string>{"query_id", "killed"}));
  ASSERT_EQ(kill->NumRows(), 1u);
  EXPECT_FALSE(kill->rows[0][1].AsBool());
}

TEST_F(QueryCancelTest, CompletedStatementsAreNotListed) {
  ASSERT_TRUE(engine_->Execute("MATCH (n) RETURN count(*)").ok());
  auto listing = engine_->Execute("CALL dbms.queries()");
  ASSERT_TRUE(listing.ok());
  // Only the introspection statement itself is running.
  ASSERT_EQ(listing->NumRows(), 1u);
  EXPECT_EQ(listing->rows[0][2].AsString(), "CALL dbms.queries()");
}

}  // namespace
}  // namespace aion::query
