// HealthWatchdog: check registration and replacement, threshold direction
// semantics, degraded/recovered transitions, the health.* metrics, and the
// once-per-transition degraded callback.
#include "obs/health.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

namespace aion::obs {
namespace {

HealthWatchdog::Options ManualOptions() {
  HealthWatchdog::Options options;
  options.period_millis = 0;  // no background thread; Evaluate drives it
  return options;
}

TEST(HealthWatchdogTest, NoChecksMeansHealthy) {
  MetricsRegistry registry;
  HealthWatchdog watchdog(&registry, ManualOptions());
  const HealthReport report = watchdog.Evaluate();
  EXPECT_TRUE(report.healthy);
  EXPECT_TRUE(report.checks.empty());
  EXPECT_GT(report.unix_millis, 0u);
  EXPECT_EQ(registry.Snapshot().gauge("health.degraded"), 0);
  EXPECT_EQ(registry.Snapshot().counter("health.evaluations"), 1u);
}

TEST(HealthWatchdogTest, AboveFailsOnlyStrictlyAboveThreshold) {
  MetricsRegistry registry;
  HealthWatchdog watchdog(&registry, ManualOptions());
  double value = 0;
  watchdog.AddCheck("lag", [&] { return value; }, 10.0,
                    HealthWatchdog::Direction::kAbove);
  value = 10.0;  // at the threshold: still ok
  EXPECT_TRUE(watchdog.Evaluate().healthy);
  value = 10.5;  // above: degraded
  const HealthReport report = watchdog.Evaluate();
  EXPECT_FALSE(report.healthy);
  ASSERT_EQ(report.checks.size(), 1u);
  EXPECT_EQ(report.checks[0].name, "lag");
  EXPECT_DOUBLE_EQ(report.checks[0].value, 10.5);
  EXPECT_DOUBLE_EQ(report.checks[0].threshold, 10.0);
  EXPECT_FALSE(report.checks[0].ok);
}

TEST(HealthWatchdogTest, BelowFailsOnlyStrictlyBelowThreshold) {
  MetricsRegistry registry;
  HealthWatchdog watchdog(&registry, ManualOptions());
  double hit_rate = 1.0;
  watchdog.AddCheck("hit_rate", [&] { return hit_rate; }, 0.5,
                    HealthWatchdog::Direction::kBelow);
  hit_rate = 0.5;  // at the threshold: still ok
  EXPECT_TRUE(watchdog.Evaluate().healthy);
  hit_rate = 0.4;  // below: degraded
  EXPECT_FALSE(watchdog.Evaluate().healthy);
}

TEST(HealthWatchdogTest, AddCheckReplacesByName) {
  MetricsRegistry registry;
  HealthWatchdog watchdog(&registry, ManualOptions());
  watchdog.AddCheck("x", [] { return 100.0; }, 1.0,
                    HealthWatchdog::Direction::kAbove);
  EXPECT_FALSE(watchdog.Evaluate().healthy);
  // Same name, laxer threshold: the old check is gone, not shadowed.
  watchdog.AddCheck("x", [] { return 100.0; }, 1000.0,
                    HealthWatchdog::Direction::kAbove);
  const HealthReport report = watchdog.Evaluate();
  EXPECT_TRUE(report.healthy);
  ASSERT_EQ(report.checks.size(), 1u);
  EXPECT_DOUBLE_EQ(report.checks[0].threshold, 1000.0);
}

TEST(HealthWatchdogTest, MetricsTrackDegradedStateAndFailedCount) {
  MetricsRegistry registry;
  HealthWatchdog watchdog(&registry, ManualOptions());
  double a = 0, b = 0;
  watchdog.AddCheck("a", [&] { return a; }, 1.0,
                    HealthWatchdog::Direction::kAbove);
  watchdog.AddCheck("b", [&] { return b; }, 1.0,
                    HealthWatchdog::Direction::kAbove);
  watchdog.Evaluate();
  EXPECT_EQ(registry.Snapshot().gauge("health.degraded"), 0);
  EXPECT_EQ(registry.Snapshot().gauge("health.checks_failed"), 0);
  a = 2;
  b = 2;
  watchdog.Evaluate();
  EXPECT_EQ(registry.Snapshot().gauge("health.degraded"), 1);
  EXPECT_EQ(registry.Snapshot().gauge("health.checks_failed"), 2);
  a = 0;
  b = 0;
  watchdog.Evaluate();
  EXPECT_EQ(registry.Snapshot().gauge("health.degraded"), 0);
  EXPECT_EQ(registry.Snapshot().gauge("health.checks_failed"), 0);
  EXPECT_EQ(registry.Snapshot().counter("health.evaluations"), 3u);
}

TEST(HealthWatchdogTest, DegradedCallbackFiresOncePerTransition) {
  MetricsRegistry registry;
  HealthWatchdog watchdog(&registry, ManualOptions());
  double value = 0;
  watchdog.AddCheck("v", [&] { return value; }, 1.0,
                    HealthWatchdog::Direction::kAbove);
  std::vector<HealthReport> fired;
  watchdog.OnDegraded([&](const HealthReport& r) { fired.push_back(r); });
  watchdog.Evaluate();  // healthy: no callback
  EXPECT_TRUE(fired.empty());
  value = 5;
  watchdog.Evaluate();  // healthy -> degraded: fires once
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_FALSE(fired[0].healthy);
  ASSERT_EQ(fired[0].checks.size(), 1u);
  EXPECT_DOUBLE_EQ(fired[0].checks[0].value, 5.0);
  watchdog.Evaluate();  // still degraded: no re-fire
  EXPECT_EQ(fired.size(), 1u);
  value = 0;
  watchdog.Evaluate();  // recovered: no callback either
  EXPECT_EQ(fired.size(), 1u);
  value = 5;
  watchdog.Evaluate();  // a fresh transition fires again
  EXPECT_EQ(fired.size(), 2u);
}

TEST(HealthWatchdogTest, CallbackMayReenterTheWatchdog) {
  // The callback runs outside the watchdog mutex, so a hook that calls back
  // into health (or anything that evaluates) must not deadlock.
  MetricsRegistry registry;
  HealthWatchdog watchdog(&registry, ManualOptions());
  double value = 5;
  watchdog.AddCheck("v", [&] { return value; }, 1.0,
                    HealthWatchdog::Direction::kAbove);
  std::atomic<int> reentered{0};
  watchdog.OnDegraded([&](const HealthReport&) {
    watchdog.Evaluate();
    reentered.fetch_add(1);
  });
  watchdog.Evaluate();
  EXPECT_EQ(reentered.load(), 1);
}

TEST(HealthWatchdogTest, ReportJsonShape) {
  MetricsRegistry registry;
  HealthWatchdog watchdog(&registry, ManualOptions());
  watchdog.AddCheck("shape", [] { return 3.5; }, 2.0,
                    HealthWatchdog::Direction::kAbove);
  const std::string json = watchdog.Evaluate().ToJson();
  EXPECT_NE(json.find("\"healthy\":false"), std::string::npos);
  EXPECT_NE(json.find("\"checks\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"shape\""), std::string::npos);
  EXPECT_NE(json.find("\"ok\":false"), std::string::npos);
  EXPECT_EQ(json.find(",}"), std::string::npos);
  EXPECT_EQ(json.find(",]"), std::string::npos);
}

TEST(HealthWatchdogTest, BackgroundLoopEvaluatesAndStops) {
  MetricsRegistry registry;
  HealthWatchdog::Options options;
  options.period_millis = 5;
  HealthWatchdog watchdog(&registry, options);
  std::atomic<uint64_t> probes{0};
  watchdog.AddCheck("bg",
                    [&] {
                      probes.fetch_add(1);
                      return 0.0;
                    },
                    1.0, HealthWatchdog::Direction::kAbove);
  watchdog.Start();
  for (int i = 0; i < 200 && probes.load() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  watchdog.Stop();
  EXPECT_GE(probes.load(), 2u);
  const uint64_t after_stop = probes.load();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(probes.load(), after_stop);
  watchdog.Stop();  // idempotent
}

}  // namespace
}  // namespace aion::obs
