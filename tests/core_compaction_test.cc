// Storage lifecycle: retention gating, background compaction, snapshot GC,
// lineage chain rewriting, crash-during-compaction recovery, and the
// bounded-footprint mini-soak. Suite name contains "Compaction" so the TSan
// gate (scripts/check.sh) picks up the concurrency tests.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/aion.h"
#include "storage/file.h"

namespace aion {
namespace {

using core::AionStore;
using graph::GraphUpdate;
using graph::Timestamp;

class CompactionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = storage::MakeTempDir("aion_compaction_");
    ASSERT_TRUE(dir.ok());
    dir_ = *dir;
  }
  void TearDown() override { (void)storage::RemoveDirRecursively(dir_); }

  /// Small segments + no policy snapshots: only compaction's floor
  /// snapshots exist, so footprint assertions see exactly the lifecycle's
  /// own files.
  AionStore::Options LifecycleOptions(Timestamp window) {
    AionStore::Options options;
    options.dir = dir_ + "/aion";
    options.lineage_mode = AionStore::LineageMode::kDisabled;
    options.snapshot_policy.kind = core::SnapshotPolicy::Kind::kDisabled;
    options.retention_window = window;
    options.segment_target_bytes = 2048;
    return options;
  }

  /// One tick of a workload whose live state stays bounded: add node `ts`,
  /// delete the node that fell out of the sliding keep-set.
  static std::vector<GraphUpdate> Tick(Timestamp ts, Timestamp keep) {
    std::vector<GraphUpdate> updates;
    graph::PropertySet props;
    props.Set("seq", static_cast<int64_t>(ts));
    updates.push_back(GraphUpdate::AddNode(ts, {"Tick"}, std::move(props)));
    if (ts > keep) updates.push_back(GraphUpdate::DeleteNode(ts - keep));
    return updates;
  }

  std::string dir_;
};

// ---------------------------------------------------------------------
// Retention gate: typed status, logical floor independent of compaction
// ---------------------------------------------------------------------

TEST_F(CompactionTest, RetentionGateReturnsTypedStatus) {
  AionStore::Options options = LifecycleOptions(/*window=*/10);
  auto aion = AionStore::Open(options);
  ASSERT_TRUE(aion.ok());
  for (Timestamp ts = 1; ts <= 30; ++ts) {
    ASSERT_TRUE((*aion)->Ingest(ts, Tick(ts, /*keep=*/5)).ok());
  }
  // No compaction has run: the gate is purely logical.
  EXPECT_EQ((*aion)->RetentionFloor(), 20u);
  EXPECT_EQ((*aion)->RetentionStats().physical_floor, 0u);

  // Every temporal entry point starting below the floor fails with the
  // typed status.
  EXPECT_TRUE((*aion)->GetNode(25, 19, 21).status().IsOutOfRetention());
  EXPECT_TRUE((*aion)->GetRelationship(1, 5, 25).status().IsOutOfRetention());
  EXPECT_TRUE((*aion)
                  ->GetRelationships(25, graph::Direction::kBoth, 10, 25)
                  .status()
                  .IsOutOfRetention());
  EXPECT_TRUE((*aion)
                  ->Expand(25, graph::Direction::kBoth, 1, 19)
                  .status()
                  .IsOutOfRetention());
  EXPECT_TRUE((*aion)->GetDiff(5, 25).status().IsOutOfRetention());
  EXPECT_TRUE((*aion)->GetGraphAt(19).status().IsOutOfRetention());
  EXPECT_TRUE((*aion)->GetWindow(15, 25).status().IsOutOfRetention());
  EXPECT_TRUE((*aion)->GetTemporalGraph(5, 30).status().IsOutOfRetention());
  EXPECT_TRUE((*aion)->GetNodeAt(25, 19).status().IsOutOfRetention());
  EXPECT_TRUE((*aion)->GetRelationshipAt(1, 19).status().IsOutOfRetention());
  EXPECT_TRUE((*aion)->MaterializeGraphAt(10).status().IsOutOfRetention());

  // At or above the floor everything works.
  EXPECT_TRUE((*aion)->GetNode(25, 20, 30).ok());
  EXPECT_TRUE((*aion)->GetDiff(20, 30).ok());
  EXPECT_TRUE((*aion)->GetGraphAt(20).ok());
  EXPECT_TRUE((*aion)->MaterializeGraphAt(25).ok());
  auto node = (*aion)->GetNodeAt(25, 25);
  ASSERT_TRUE(node.ok());
  ASSERT_TRUE(node->has_value());
  EXPECT_TRUE((*node)->HasLabel("Tick"));
}

TEST_F(CompactionTest, UnboundedRetentionNeverGates) {
  AionStore::Options options = LifecycleOptions(/*window=*/0);
  auto aion = AionStore::Open(options);
  ASSERT_TRUE(aion.ok());
  for (Timestamp ts = 1; ts <= 30; ++ts) {
    ASSERT_TRUE((*aion)->Ingest(ts, Tick(ts, /*keep=*/5)).ok());
  }
  EXPECT_EQ((*aion)->RetentionFloor(), 0u);
  EXPECT_TRUE((*aion)->GetNode(3, 1, 30).ok());
  EXPECT_TRUE((*aion)->GetGraphAt(1).ok());
  // A compaction round with no retention window is a no-op.
  ASSERT_TRUE((*aion)->CompactNow().ok());
  EXPECT_EQ((*aion)->RetentionStats().segments_dropped, 0u);
}

// ---------------------------------------------------------------------
// In-window results are byte-identical across compaction
// ---------------------------------------------------------------------

TEST_F(CompactionTest, InWindowResultsIdenticalAcrossCompaction) {
  AionStore::Options options = LifecycleOptions(/*window=*/50);
  auto aion = AionStore::Open(options);
  ASSERT_TRUE(aion.ok());
  for (Timestamp ts = 1; ts <= 200; ++ts) {
    // Like Tick, but with short-lived relationships so history folds cover
    // both entity kinds (deleted well before their endpoint nodes die —
    // the graph rejects deleting a node with live relationships).
    std::vector<GraphUpdate> updates;
    graph::PropertySet props;
    props.Set("seq", static_cast<int64_t>(ts));
    updates.push_back(GraphUpdate::AddNode(ts, {"Tick"}, std::move(props)));
    if (ts % 3 == 0 && ts > 3) {
      updates.push_back(GraphUpdate::AddRelationship(ts, ts, ts - 3, "NEXT"));
    }
    if (ts > 9 && (ts - 6) % 3 == 0) {
      updates.push_back(GraphUpdate::DeleteRelationship(ts - 6));
    }
    if (ts > 30) updates.push_back(GraphUpdate::DeleteNode(ts - 30));
    ASSERT_TRUE((*aion)->Ingest(ts, updates).ok());
  }
  const Timestamp floor = (*aion)->RetentionFloor();
  ASSERT_EQ(floor, 150u);

  // Capture every kind of in-window answer before any physical compaction.
  std::vector<std::string> graphs_before;
  for (Timestamp t = floor; t <= 200; t += 10) {
    auto graph = (*aion)->MaterializeGraphAt(t);
    ASSERT_TRUE(graph.ok()) << graph.status().ToString();
    std::string encoded;
    (*graph)->EncodeTo(&encoded);
    graphs_before.push_back(std::move(encoded));
  }
  auto node_before = (*aion)->GetNode(180, floor, 201);
  ASSERT_TRUE(node_before.ok());
  auto old_node_before = (*aion)->GetNode(130, floor, 201);
  ASSERT_TRUE(old_node_before.ok());  // created pre-floor: clamped interval
  auto rel_before = (*aion)->GetRelationship(180, floor, 201);
  ASSERT_TRUE(rel_before.ok());
  auto rels_before =
      (*aion)->GetRelationships(180, graph::Direction::kBoth, floor, 201);
  ASSERT_TRUE(rels_before.ok());
  auto diff_before = (*aion)->GetDiff(floor, 201);
  ASSERT_TRUE(diff_before.ok());

  // Compact (twice: the second round exercises the already-at-floor path).
  ASSERT_TRUE((*aion)->CompactNow().ok());
  ASSERT_TRUE((*aion)->CompactNow().ok());
  const AionStore::RetentionInfo stats = (*aion)->RetentionStats();
  EXPECT_GT(stats.segments_dropped, 0u);
  EXPECT_GT(stats.records_dropped, 0u);
  EXPECT_GT(stats.bytes_reclaimed, 0u);
  EXPECT_EQ(stats.physical_floor, floor);

  // Same answers, byte for byte.
  size_t i = 0;
  for (Timestamp t = floor; t <= 200; t += 10, ++i) {
    auto graph = (*aion)->MaterializeGraphAt(t);
    ASSERT_TRUE(graph.ok()) << graph.status().ToString();
    std::string encoded;
    (*graph)->EncodeTo(&encoded);
    EXPECT_EQ(encoded, graphs_before[i]) << "graph at t=" << t;
  }
  auto node_after = (*aion)->GetNode(180, floor, 201);
  ASSERT_TRUE(node_after.ok());
  EXPECT_EQ(*node_after, *node_before);
  auto old_node_after = (*aion)->GetNode(130, floor, 201);
  ASSERT_TRUE(old_node_after.ok());
  EXPECT_EQ(*old_node_after, *old_node_before);
  auto rel_after = (*aion)->GetRelationship(180, floor, 201);
  ASSERT_TRUE(rel_after.ok());
  EXPECT_EQ(*rel_after, *rel_before);
  auto rels_after =
      (*aion)->GetRelationships(180, graph::Direction::kBoth, floor, 201);
  ASSERT_TRUE(rels_after.ok());
  EXPECT_EQ(*rels_after, *rels_before);
  auto diff_after = (*aion)->GetDiff(floor, 201);
  ASSERT_TRUE(diff_after.ok());
  EXPECT_EQ(*diff_after, *diff_before);

  // And they survive a reopen of the compacted store.
  aion->reset();
  auto reopened = AionStore::Open(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  i = 0;
  for (Timestamp t = floor; t <= 200; t += 10, ++i) {
    auto graph = (*reopened)->MaterializeGraphAt(t);
    ASSERT_TRUE(graph.ok()) << graph.status().ToString();
    std::string encoded;
    (*graph)->EncodeTo(&encoded);
    EXPECT_EQ(encoded, graphs_before[i]) << "graph at t=" << t;
  }
}

// ---------------------------------------------------------------------
// Bounded footprint mini-soak
// ---------------------------------------------------------------------

TEST_F(CompactionTest, CompactionBoundsFootprintMiniSoak) {
  const Timestamp kWindow = 300;
  AionStore::Options options = LifecycleOptions(kWindow);
  auto aion = AionStore::Open(options);
  ASSERT_TRUE(aion.ok());

  // The footprint yardstick is one *steady-state* window of the workload:
  // the log-byte delta across the second window, uncompacted (the first
  // window is lighter — deletes only start once the keep-set fills).
  for (Timestamp ts = 1; ts <= kWindow; ++ts) {
    ASSERT_TRUE((*aion)->Ingest(ts, Tick(ts, /*keep=*/100)).ok());
  }
  ASSERT_TRUE((*aion)->Flush().ok());
  const uint64_t first_window_bytes = (*aion)->RetentionStats().log_bytes;
  for (Timestamp ts = kWindow + 1; ts <= 2 * kWindow; ++ts) {
    ASSERT_TRUE((*aion)->Ingest(ts, Tick(ts, /*keep=*/100)).ok());
  }
  ASSERT_TRUE((*aion)->Flush().ok());
  const uint64_t window_bytes =
      (*aion)->RetentionStats().log_bytes - first_window_bytes;
  ASSERT_GT(window_bytes, 0u);

  // Ingest ten windows past retention, compacting once per window (the
  // scheduler's job, driven synchronously here).
  for (Timestamp ts = 2 * kWindow + 1; ts <= 12 * kWindow; ++ts) {
    ASSERT_TRUE((*aion)->Ingest(ts, Tick(ts, /*keep=*/100)).ok());
    if (ts % kWindow == 0) {
      ASSERT_TRUE((*aion)->CompactNow().ok());
    }
  }
  ASSERT_TRUE((*aion)->CompactNow().ok());

  const AionStore::RetentionInfo stats = (*aion)->RetentionStats();
  EXPECT_GT(stats.segments_dropped, 0u);
  EXPECT_GT(stats.records_dropped, 0u);
  EXPECT_GT(stats.snapshots_dropped, 0u);  // floor snapshots GC'd as it moves
  EXPECT_EQ(stats.physical_floor, stats.logical_floor);

  // The acceptance bound: total on-disk footprint stays within 2x of one
  // window's live data, no matter how many windows flowed through.
  const uint64_t footprint = stats.log_bytes + stats.snapshot_bytes;
  EXPECT_LE(footprint, 2 * window_bytes)
      << "log=" << stats.log_bytes << " snap=" << stats.snapshot_bytes
      << " window=" << window_bytes;

  // Out-of-window queries fail typed; in-window queries still answer.
  EXPECT_TRUE((*aion)->GetGraphAt(5).status().IsOutOfRetention());
  auto graph = (*aion)->MaterializeGraphAt(12 * kWindow);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_EQ((*graph)->NumNodes(), 100u);  // the sliding keep-set
}

// ---------------------------------------------------------------------
// Snapshot GC
// ---------------------------------------------------------------------

TEST_F(CompactionTest, SnapshotGcKeepsFloorAndNewest) {
  AionStore::Options options = LifecycleOptions(/*window=*/50);
  // Policy snapshots every 20 updates create plenty of GC candidates.
  options.snapshot_policy.kind = core::SnapshotPolicy::Kind::kOperationBased;
  options.snapshot_policy.every = 20;
  // Any snapshot whose replay distance from its predecessor is this cheap
  // is redundant.
  options.snapshot_keep_replay_records = 1u << 30;
  auto aion = AionStore::Open(options);
  ASSERT_TRUE(aion.ok());
  for (Timestamp ts = 1; ts <= 300; ++ts) {
    ASSERT_TRUE((*aion)->Ingest(ts, Tick(ts, /*keep=*/30)).ok());
  }
  (*aion)->DrainBackground();
  ASSERT_TRUE((*aion)->Flush().ok());
  ASSERT_TRUE((*aion)->CompactNow().ok());

  const AionStore::RetentionInfo stats = (*aion)->RetentionStats();
  EXPECT_GT(stats.snapshots_dropped, 0u);
  // Everything between floor and newest was rebuildable within the budget:
  // only those two anchors survive.
  EXPECT_LE(stats.snapshots_live, 2u);

  // Queries across the whole retained range still answer correctly.
  for (Timestamp t = 250; t <= 300; t += 10) {
    auto graph = (*aion)->MaterializeGraphAt(t);
    ASSERT_TRUE(graph.ok()) << graph.status().ToString();
    EXPECT_EQ((*graph)->NumNodes(), 30u);
  }
}

// ---------------------------------------------------------------------
// Lineage chain rewriting
// ---------------------------------------------------------------------

TEST_F(CompactionTest, ChainRewriteKeepsHistoriesIdentical) {
  AionStore::Options options;
  options.dir = dir_ + "/aion";
  options.lineage_mode = AionStore::LineageMode::kSync;
  // Deltas only at ingest time; compaction is what caps the chains.
  options.materialization_threshold = 1000;
  options.lineage_max_chain = 3;
  auto aion = AionStore::Open(options);
  ASSERT_TRUE(aion.ok());

  ASSERT_TRUE((*aion)->Ingest(1, {GraphUpdate::AddNode(7, {"Counter"})}).ok());
  for (Timestamp ts = 2; ts <= 40; ++ts) {
    ASSERT_TRUE((*aion)
                    ->Ingest(ts, {GraphUpdate::SetNodeProperty(
                                     7, "v", static_cast<int64_t>(ts))})
                    .ok());
  }
  ASSERT_TRUE((*aion)->LineageCanServe(40));
  auto before = (*aion)->GetNode(7, 1, 41);
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before->size(), 40u);

  ASSERT_TRUE((*aion)->CompactNow().ok());
  EXPECT_GT((*aion)->RetentionStats().chains_rewritten, 0u);

  auto after = (*aion)->GetNode(7, 1, 41);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, *before);

  // The rewritten chains survive a reopen byte-for-byte too.
  aion->reset();
  auto reopened = AionStore::Open(options);
  ASSERT_TRUE(reopened.ok());
  ASSERT_TRUE((*reopened)->LineageCanServe(40));
  auto recovered = (*reopened)->GetNode(7, 1, 41);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(*recovered, *before);
}

// ---------------------------------------------------------------------
// Crash during compaction (satellite 4)
// ---------------------------------------------------------------------

class CompactionCrashTest : public CompactionTest,
                            public ::testing::WithParamInterface<
                                core::TimeStore::CompactionCrashPoint> {};

TEST_P(CompactionCrashTest, RecoversToIdenticalResults) {
  AionStore::Options options = LifecycleOptions(/*window=*/50);
  std::vector<std::string> graphs_before;
  Timestamp floor = 0;
  {
    options.compaction_crash_point = GetParam();
    auto aion = AionStore::Open(options);
    ASSERT_TRUE(aion.ok());
    for (Timestamp ts = 1; ts <= 200; ++ts) {
      ASSERT_TRUE((*aion)->Ingest(ts, Tick(ts, /*keep=*/30)).ok());
    }
    floor = (*aion)->RetentionFloor();
    for (Timestamp t = floor; t <= 200; t += 10) {
      auto graph = (*aion)->MaterializeGraphAt(t);
      ASSERT_TRUE(graph.ok());
      std::string encoded;
      (*graph)->EncodeTo(&encoded);
      graphs_before.push_back(std::move(encoded));
    }
    // The round "crashes" at the injected point; the store is then torn
    // down as a process death would leave it.
    ASSERT_TRUE((*aion)->CompactNow().ok());
    ASSERT_TRUE((*aion)->Flush().ok());
  }

  options.compaction_crash_point =
      core::TimeStore::CompactionCrashPoint::kNone;
  auto aion = AionStore::Open(options);
  ASSERT_TRUE(aion.ok()) << aion.status().ToString();

  // Every in-window answer is exactly what it was before the crash.
  size_t i = 0;
  for (Timestamp t = floor; t <= 200; t += 10, ++i) {
    auto graph = (*aion)->MaterializeGraphAt(t);
    ASSERT_TRUE(graph.ok()) << graph.status().ToString();
    std::string encoded;
    (*graph)->EncodeTo(&encoded);
    EXPECT_EQ(encoded, graphs_before[i]) << "graph at t=" << t;
  }

  // A clean round completes the interrupted compaction.
  ASSERT_TRUE((*aion)->CompactNow().ok());
  const AionStore::RetentionInfo stats = (*aion)->RetentionStats();
  EXPECT_EQ(stats.physical_floor, stats.logical_floor);
  i = 0;
  for (Timestamp t = floor; t <= 200; t += 10, ++i) {
    auto graph = (*aion)->MaterializeGraphAt(t);
    ASSERT_TRUE(graph.ok()) << graph.status().ToString();
    std::string encoded;
    (*graph)->EncodeTo(&encoded);
    EXPECT_EQ(encoded, graphs_before[i]) << "graph at t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    CrashPoints, CompactionCrashTest,
    ::testing::Values(
        core::TimeStore::CompactionCrashPoint::kAfterSnapshotWrite,
        core::TimeStore::CompactionCrashPoint::kAfterManifestSwap),
    [](const auto& info) {
      return info.param == core::TimeStore::CompactionCrashPoint::
                               kAfterSnapshotWrite
                 ? "AfterSnapshotWrite"
                 : "AfterManifestSwap";
    });

// ---------------------------------------------------------------------
// Background scheduler: concurrency (runs under the TSan gate)
// ---------------------------------------------------------------------

TEST_F(CompactionTest, SchedulerConcurrentWithIngestAndQueries) {
  AionStore::Options options = LifecycleOptions(/*window=*/60);
  options.compaction_period_millis = 2;  // aggressive background rounds
  auto aion = AionStore::Open(options);
  ASSERT_TRUE(aion.ok());

  std::atomic<Timestamp> ingested{0};
  std::atomic<bool> failed{false};
  std::thread writer([&] {
    for (Timestamp ts = 1; ts <= 600 && !failed.load(); ++ts) {
      if (!(*aion)->Ingest(ts, Tick(ts, /*keep=*/25)).ok()) {
        failed.store(true);
        return;
      }
      ingested.store(ts, std::memory_order_release);
    }
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      for (int iter = 0; iter < 200; ++iter) {
        const Timestamp last = ingested.load(std::memory_order_acquire);
        if (last == 0) continue;
        // Race the retention gate on purpose: answers must be correct or
        // typed OutOfRetention — never a crash or a wrong graph.
        auto graph = (*aion)->GetGraphAt(last);
        if (graph.ok()) {
          (void)(*graph)->NumNodes();
        } else if (!graph.status().IsOutOfRetention()) {
          failed.store(true);
          return;
        }
        auto node = (*aion)->GetNode(last, last, last);
        if (!node.ok() && !node.status().IsOutOfRetention()) {
          failed.store(true);
          return;
        }
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_FALSE(failed.load());

  // Let a few more rounds run against a quiescent store, then verify the
  // scheduler actually worked and the store is still consistent.
  ASSERT_TRUE((*aion)->CompactNow().ok());
  const AionStore::RetentionInfo stats = (*aion)->RetentionStats();
  EXPECT_GT(stats.compaction_rounds, 0u);
  EXPECT_GT(stats.segments_dropped, 0u);
  // The physical floor trails the logical one by at most the segment that
  // straddles it: a background round racing the tail of the ingest may
  // have already retired every segment fully below the final floor,
  // leaving the last synchronous round with no victims to advance on.
  EXPECT_GT(stats.physical_floor, 0u);
  EXPECT_LE(stats.physical_floor, stats.logical_floor);
  auto graph = (*aion)->MaterializeGraphAt(600);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_EQ((*graph)->NumNodes(), 25u);
}

// ---------------------------------------------------------------------
// Manifest stays small across many compaction cycles
// ---------------------------------------------------------------------

TEST_F(CompactionTest, ManifestSizeBoundedAcrossManyCommits) {
  const Timestamp kWindow = 50;
  AionStore::Options options = LifecycleOptions(kWindow);
  options.segment_target_bytes = 512;  // many seal commits per window
  auto aion = AionStore::Open(options);
  ASSERT_TRUE(aion.ok());
  for (Timestamp ts = 1; ts <= 20 * kWindow; ++ts) {
    ASSERT_TRUE((*aion)->Ingest(ts, Tick(ts, /*keep=*/20)).ok());
    if (ts % kWindow == 0) {
      ASSERT_TRUE((*aion)->CompactNow().ok());
    }
  }
  auto manifest_size =
      storage::FileSize(options.dir + "/timestore/segments/MANIFEST");
  ASSERT_TRUE(manifest_size.ok()) << manifest_size.status().ToString();
  // Hundreds of seal/drop commits flowed through; without the rewrite the
  // manifest would hold one full-state record per commit.
  EXPECT_LT(*manifest_size, 64u * 1024u);

  // The rewrite is invisible to recovery.
  aion->reset();
  auto reopened = AionStore::Open(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto graph = (*reopened)->MaterializeGraphAt(20 * kWindow);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ((*graph)->NumNodes(), 20u);
}

}  // namespace
}  // namespace aion
