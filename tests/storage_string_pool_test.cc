#include "storage/string_pool.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "storage/file.h"

namespace aion::storage {
namespace {

class StringPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = MakeTempDir("aion_sp_test_");
    ASSERT_TRUE(dir.ok());
    dir_ = *dir;
  }
  void TearDown() override { (void)RemoveDirRecursively(dir_); }

  std::string dir_;
};

TEST_F(StringPoolTest, InternIsIdempotent) {
  auto pool = StringPool::Open(dir_ + "/pool");
  ASSERT_TRUE(pool.ok());
  auto a = (*pool)->Intern("Person");
  auto b = (*pool)->Intern("Person");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
  EXPECT_EQ((*pool)->size(), 1u);
}

TEST_F(StringPoolTest, DistinctStringsGetDistinctRefs) {
  auto pool = StringPool::Open(dir_ + "/pool");
  ASSERT_TRUE(pool.ok());
  std::set<StringRef> refs;
  for (int i = 0; i < 100; ++i) {
    auto r = (*pool)->Intern("label" + std::to_string(i));
    ASSERT_TRUE(r.ok());
    EXPECT_NE(*r, kInvalidStringRef);
    refs.insert(*r);
  }
  EXPECT_EQ(refs.size(), 100u);
}

TEST_F(StringPoolTest, LookupRoundTrip) {
  auto pool = StringPool::Open(dir_ + "/pool");
  ASSERT_TRUE(pool.ok());
  auto ref = (*pool)->Intern("KNOWS");
  ASSERT_TRUE(ref.ok());
  auto s = (*pool)->Lookup(*ref);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(*s, "KNOWS");
}

TEST_F(StringPoolTest, LookupInvalidRefFails) {
  auto pool = StringPool::Open(dir_ + "/pool");
  ASSERT_TRUE(pool.ok());
  EXPECT_FALSE((*pool)->Lookup(kInvalidStringRef).ok());
  EXPECT_FALSE((*pool)->Lookup(9999).ok());
}

TEST_F(StringPoolTest, FindWithoutInterning) {
  auto pool = StringPool::Open(dir_ + "/pool");
  ASSERT_TRUE(pool.ok());
  EXPECT_EQ((*pool)->Find("absent"), kInvalidStringRef);
  auto ref = (*pool)->Intern("present");
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ((*pool)->Find("present"), *ref);
}

TEST_F(StringPoolTest, EmptyStringInternable) {
  auto pool = StringPool::Open(dir_ + "/pool");
  ASSERT_TRUE(pool.ok());
  auto ref = (*pool)->Intern("");
  ASSERT_TRUE(ref.ok());
  EXPECT_NE(*ref, kInvalidStringRef);
  EXPECT_EQ(*(*pool)->Lookup(*ref), "");
}

TEST_F(StringPoolTest, PersistsAcrossReopen) {
  const std::string path = dir_ + "/pool";
  StringRef knows, person;
  {
    auto pool = StringPool::Open(path);
    ASSERT_TRUE(pool.ok());
    knows = *(*pool)->Intern("KNOWS");
    person = *(*pool)->Intern("Person");
  }
  auto pool = StringPool::Open(path);
  ASSERT_TRUE(pool.ok());
  EXPECT_EQ((*pool)->size(), 2u);
  EXPECT_EQ(*(*pool)->Lookup(knows), "KNOWS");
  EXPECT_EQ(*(*pool)->Lookup(person), "Person");
  // Re-interning returns the original refs.
  EXPECT_EQ(*(*pool)->Intern("KNOWS"), knows);
  // New strings continue numbering without collision.
  auto fresh = (*pool)->Intern("City");
  ASSERT_TRUE(fresh.ok());
  EXPECT_NE(*fresh, knows);
  EXPECT_NE(*fresh, person);
}

TEST_F(StringPoolTest, InMemoryPoolWorksWithoutDisk) {
  auto pool = StringPool::InMemory();
  auto ref = pool->Intern("volatile");
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(*pool->Lookup(*ref), "volatile");
  EXPECT_EQ(pool->SizeBytes(), 0u);
}

TEST_F(StringPoolTest, ConcurrentInterning) {
  auto pool = StringPool::InMemory();
  constexpr int kThreads = 8;
  constexpr int kStrings = 200;
  std::vector<std::vector<StringRef>> refs(kThreads,
                                           std::vector<StringRef>(kStrings));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kStrings; ++i) {
        auto r = pool->Intern("shared" + std::to_string(i));
        ASSERT_TRUE(r.ok());
        refs[t][i] = *r;
      }
    });
  }
  for (auto& t : threads) t.join();
  // Every thread must have observed identical refs for identical strings.
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(refs[t], refs[0]);
  }
  EXPECT_EQ(pool->size(), static_cast<size_t>(kStrings));
}

}  // namespace
}  // namespace aion::storage
