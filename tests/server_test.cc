#include "server/server.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "obs/trace.h"
#include "server/protocol.h"
#include "storage/file.h"

namespace aion::server {
namespace {

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = storage::MakeTempDir("aion_srv_test_");
    ASSERT_TRUE(dir.ok());
    dir_ = *dir;
    auto db = txn::GraphDatabase::OpenInMemory();
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    core::AionStore::Options options;
    options.dir = dir_ + "/aion";
    options.lineage_mode = core::AionStore::LineageMode::kSync;
    auto aion = core::AionStore::Open(options);
    ASSERT_TRUE(aion.ok());
    aion_ = std::move(*aion);
    db_->RegisterListener(aion_.get());
    engine_ = std::make_unique<query::QueryEngine>(db_.get(), aion_.get());
    server_ = std::make_unique<BoltLikeServer>(engine_.get());
    auto port = server_->Start();
    ASSERT_TRUE(port.ok()) << port.status().ToString();
    port_ = *port;
  }
  void TearDown() override {
    server_->Stop();
    (void)storage::RemoveDirRecursively(dir_);
  }

  std::string dir_;
  std::unique_ptr<txn::GraphDatabase> db_;
  std::unique_ptr<core::AionStore> aion_;
  std::unique_ptr<query::QueryEngine> engine_;
  std::unique_ptr<BoltLikeServer> server_;
  uint16_t port_ = 0;
};

TEST(ProtocolTest, RowRoundTrip) {
  using query::Value;
  std::vector<Value> row = {Value(), Value(true), Value(int64_t{-42}),
                            Value(2.5), Value(std::string("hello"))};
  std::string payload;
  EncodeRow(row, &payload);
  auto decoded = DecodeRow(util::Slice(payload));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, row);
}

TEST(ProtocolTest, EntityCellsTravelRendered) {
  graph::Node node;
  node.id = 3;
  node.labels = {"X"};
  std::vector<query::Value> row = {query::Value(node)};
  std::string payload;
  EncodeRow(row, &payload);
  auto decoded = DecodeRow(util::Slice(payload));
  ASSERT_TRUE(decoded.ok());
  ASSERT_TRUE((*decoded)[0].is_string());
  EXPECT_NE((*decoded)[0].AsString().find(":X"), std::string::npos);
}

TEST(ProtocolTest, ColumnsRoundTrip) {
  std::string payload;
  EncodeColumns({"a", "b.c", "count(*)"}, &payload);
  auto decoded = DecodeColumns(util::Slice(payload));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, (std::vector<std::string>{"a", "b.c", "count(*)"}));
}

TEST(ProtocolTest, DecodeCorruptPayloadsFail) {
  EXPECT_FALSE(DecodeRow(util::Slice("xx", 2)).ok());
  std::string payload;
  EncodeColumns({"a"}, &payload);
  EXPECT_FALSE(
      DecodeColumns(util::Slice(payload.data(), payload.size() - 1)).ok());
}

TEST_F(ServerTest, WriteThenReadOverWire) {
  auto client = BoltLikeClient::Connect(port_);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto created =
      (*client)->Run("CREATE (a:Person {name: 'ada'})");
  ASSERT_TRUE(created.ok()) << created.status().ToString();

  auto people = (*client)->Run("MATCH (p:Person) RETURN p.name");
  ASSERT_TRUE(people.ok());
  ASSERT_EQ(people->NumRows(), 1u);
  EXPECT_EQ(people->rows[0][0].AsString(), "ada");
  EXPECT_EQ(people->columns, std::vector<std::string>{"p.name"});
  EXPECT_GE(server_->queries_served(), 2u);
}

TEST_F(ServerTest, TemporalQueryOverWire) {
  auto client = BoltLikeClient::Connect(port_);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->Run("CREATE (a:Doc {v: 1})").ok());       // ts 1
  ASSERT_TRUE((*client)->Run("MATCH (n:Doc) SET n.v = 2").ok());   // ts 2
  auto at1 = (*client)->Run(
      "USE gdb FOR SYSTEM_TIME AS OF 1 MATCH (n:Doc) RETURN n.v");
  ASSERT_TRUE(at1.ok()) << at1.status().ToString();
  ASSERT_EQ(at1->NumRows(), 1u);
  EXPECT_EQ(at1->rows[0][0].AsInt(), 1);
}

TEST_F(ServerTest, IngestBatchOverWire) {
  auto client = BoltLikeClient::Connect(port_);
  ASSERT_TRUE(client.ok());
  // One INGEST frame = one committed transaction: the updates flow through
  // the host database (db-managed ids via raw updates) and into Aion via
  // the commit listener.
  std::vector<graph::GraphUpdate> updates;
  for (graph::NodeId i = 0; i < 50; ++i) {
    updates.push_back(graph::GraphUpdate::AddNode(i, {"Bulk"}));
  }
  auto ts = (*client)->IngestBatch(updates);
  ASSERT_TRUE(ts.ok()) << ts.status().ToString();
  EXPECT_EQ(*ts, 1u);
  EXPECT_EQ(db_->NumNodes(), 50u);
  aion_->DrainBackground();
  EXPECT_EQ(aion_->last_ingested_ts(), *ts);

  // The batch is queryable like any other commit.
  auto rows = (*client)->Run("MATCH (n:Bulk) RETURN n");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->NumRows(), 50u);

  // An invalid batch (missing endpoint) fails atomically and keeps the
  // connection alive.
  auto bad = (*client)->IngestBatch(
      {graph::GraphUpdate::AddRelationship(0, 0, 424242, "BAD")});
  EXPECT_TRUE(bad.status().IsAborted());
  EXPECT_EQ(db_->NumRelationships(), 0u);
  auto again = (*client)->IngestBatch(
      {graph::GraphUpdate::AddRelationship(0, 1, 2, "OK")});
  EXPECT_TRUE(again.ok());
  EXPECT_EQ(db_->NumRelationships(), 1u);
}

TEST_F(ServerTest, FailureDoesNotKillConnection) {
  auto client = BoltLikeClient::Connect(port_);
  ASSERT_TRUE(client.ok());
  auto bad = (*client)->Run("THIS IS NOT CYPHER");
  EXPECT_TRUE(bad.status().IsAborted());
  // Connection still usable.
  auto good = (*client)->Run("CREATE (n:X)");
  EXPECT_TRUE(good.ok());
}

TEST_F(ServerTest, ConcurrentClients) {
  constexpr int kClients = 8;
  constexpr int kQueriesPerClient = 20;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto client = BoltLikeClient::Connect(port_);
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int q = 0; q < kQueriesPerClient; ++q) {
        auto result = (*client)->Run("CREATE (n:Load {c: " +
                                     std::to_string(c) + "})");
        if (!result.ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  auto client = BoltLikeClient::Connect(port_);
  ASSERT_TRUE(client.ok());
  auto count = (*client)->Run("MATCH (n:Load) RETURN count(*)");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->rows[0][0].AsInt(), kClients * kQueriesPerClient);
}

TEST_F(ServerTest, ProcedureOverWire) {
  auto client = BoltLikeClient::Connect(port_);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->Run("CREATE (a {x: 1})").ok());
  auto stats = (*client)->Run("CALL aion.graphStats(1)");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->rows[0][0].AsInt(), 1);
}

TEST_F(ServerTest, MetricsMessageReturnsRegistryJson) {
  auto client = BoltLikeClient::Connect(port_);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->Run("CREATE (a:Person {name: 'ada'})").ok());
  ASSERT_TRUE((*client)->Run("MATCH (p:Person) RETURN p.name").ok());
  auto json = (*client)->Metrics();
  ASSERT_TRUE(json.ok()) << json.status().ToString();
  // The snapshot spans every layer sharing the store's registry: server
  // framing, query engine stages, and the ingest path the CREATE drove.
  EXPECT_NE(json->find("\"server.queries\""), std::string::npos);
  EXPECT_NE(json->find("\"query.statements\""), std::string::npos);
  EXPECT_NE(json->find("\"ingest.batches\""), std::string::npos);
  EXPECT_NE(json->find("\"server.frame_read_nanos\""), std::string::npos);
  // And a metrics request keeps the connection usable.
  EXPECT_TRUE((*client)->Run("MATCH (p:Person) RETURN count(*)").ok());
  EXPECT_EQ((*client)->Metrics().ok(), true);
}

TEST_F(ServerTest, MalformedFrameTicksFailureAndKeepsConnection) {
  const uint64_t failures_before =
      engine_->metrics()->Snapshot().counter("server.failures");
  // Raw socket: send a frame whose type byte matches no known message.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port_);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  Message bogus;
  bogus.type = static_cast<MessageType>(99);
  bogus.payload = "not a real message";
  ASSERT_TRUE(WriteMessage(fd, bogus).ok());
  auto reply = ReadMessage(fd);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->type, MessageType::kFailure);
  EXPECT_NE(reply->payload.find("protocol error"), std::string::npos);
  // The connection survived the bad frame: a valid RUN still works.
  Message run;
  run.type = MessageType::kRun;
  run.payload = "CREATE (n:AfterBadFrame)";
  ASSERT_TRUE(WriteMessage(fd, run).ok());
  for (;;) {  // RECORDs stream ahead of the terminal SUCCESS
    auto after = ReadMessage(fd);
    ASSERT_TRUE(after.ok());
    ASSERT_NE(after->type, MessageType::kFailure);
    if (after->type == MessageType::kSuccess) break;
  }
  ::close(fd);
  EXPECT_GT(engine_->metrics()->Snapshot().counter("server.failures"),
            failures_before);
}

TEST_F(ServerTest, PrometheusMessageReturnsExposition) {
  auto client = BoltLikeClient::Connect(port_);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->Run("CREATE (a:Person {name: 'ada'})").ok());
  auto text = (*client)->Prometheus();
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("# TYPE aion_server_queries counter"),
            std::string::npos);
  EXPECT_NE(text->find("aion_query_statements"), std::string::npos);
  EXPECT_NE(text->find("# TYPE aion_server_frame_read_nanos histogram"),
            std::string::npos);
  // No raw dotted names leak through the mangler.
  EXPECT_EQ(text->find("server.queries"), std::string::npos);
  // The request is counted and the connection stays usable.
  EXPECT_GE(engine_->metrics()->Snapshot().counter(
                "server.prometheus_requests"),
            1u);
  EXPECT_TRUE((*client)->Run("MATCH (n) RETURN count(*)").ok());
}

TEST_F(ServerTest, QuerySpansNestUnderConnectionSpan) {
  obs::TraceSink& sink = obs::TraceSink::Global();
  sink.Clear();
  sink.set_enabled(true);
  {
    auto client = BoltLikeClient::Connect(port_);
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE((*client)->Run("CREATE (a:Nested)").ok());
  }  // Goodbye closes the connection; its span completes on the server.
  // The connection span only records once the server worker finishes, so
  // poll briefly.
  uint64_t connection_span = 0;
  uint64_t query_parent = 0;
  for (int attempt = 0; attempt < 100; ++attempt) {
    connection_span = 0;
    query_parent = 0;
    for (const obs::TraceEvent& e : sink.Snapshot()) {
      const std::string name(e.name);
      if (name == "server.connection") connection_span = e.span_id;
      if (name == "query.execute") query_parent = e.parent_id;
    }
    if (connection_span != 0 && query_parent != 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_NE(connection_span, 0u);
  EXPECT_EQ(query_parent, connection_span);
}

TEST_F(ServerTest, StopUnblocksCleanly) {
  auto client = BoltLikeClient::Connect(port_);
  ASSERT_TRUE(client.ok());
  // Complete one round-trip first so the connection worker provably exists
  // and is parked in read() when Stop runs — Stop must shut the socket
  // down to unblock it, not just flip the running flag.
  ASSERT_TRUE((*client)->Run("MATCH (n) RETURN count(*)").ok());
  server_->Stop();
  // Further queries fail with an I/O error rather than hanging.
  auto result = (*client)->Run("MATCH (n) RETURN count(*)");
  EXPECT_FALSE(result.ok());
}

TEST_F(ServerTest, StopCancelsInFlightQueries) {
  auto client = BoltLikeClient::Connect(port_);
  ASSERT_TRUE(client.ok());
  // A statement with far more cancellation points than any test should
  // finish: without the CancelAll sweep in Stop, joining the connection
  // worker would block until the statement completes.
  util::StatusOr<query::QueryResult> result =
      util::Status::Internal("did not run");
  std::thread runner([&] {
    result = (*client)->Run("CALL aion.incremental.avg('x', 0, 2000000, 1)");
  });
  // Wait until the statement is registered as running on the server.
  for (int attempt = 0; attempt < 10000; ++attempt) {
    if (engine_->workload()->active_count() > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GT(engine_->workload()->active_count(), 0u);
  const auto stop_at = std::chrono::steady_clock::now();
  server_->Stop();
  const auto stop_took = std::chrono::steady_clock::now() - stop_at;
  // Stop returned once the worker hit its next row boundary — well under
  // the minutes the full statement would take.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(stop_took)
                .count(),
            5000);
  runner.join();
  // The client never sees a partial result: either the server relayed the
  // typed failure or the teardown dropped the connection first.
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(engine_->workload()->active_count(), 0u);
}

}  // namespace
}  // namespace aion::server
