// Capture → replay round trip: a workload captured on one store replays on
// a second store built from the same history and produces identical row
// counts — the invariant bench_replay turns into a regression benchmark.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/aion.h"
#include "obs/capture.h"
#include "query/engine.h"
#include "storage/file.h"
#include "txn/graphdb.h"

namespace aion::query {
namespace {

// One engine over one store; `capture_path` opts the store into workload
// capture.
struct Harness {
  std::unique_ptr<core::AionStore> aion;
  std::unique_ptr<txn::GraphDatabase> db;
  std::unique_ptr<QueryEngine> engine;
};

Harness MakeHarness(const std::string& dir, const std::string& capture_path) {
  Harness h;
  core::AionStore::Options options;
  options.dir = dir;
  options.lineage_mode = core::AionStore::LineageMode::kSync;
  options.capture_path = capture_path;
  auto aion = core::AionStore::Open(options);
  EXPECT_TRUE(aion.ok());
  h.aion = std::move(*aion);
  // Identical history on every harness: properties over three timestamps.
  for (graph::Timestamp ts = 1; ts <= 3; ++ts) {
    EXPECT_TRUE(h.aion
                    ->Ingest(ts, {graph::GraphUpdate::AddNode(ts, {"Person"}),
                                  graph::GraphUpdate::SetNodeProperty(
                                      ts, "w", graph::PropertyValue(
                                                   static_cast<int64_t>(ts)))})
                    .ok());
  }
  auto db = txn::GraphDatabase::OpenInMemory();
  EXPECT_TRUE(db.ok());
  h.db = std::move(*db);
  h.db->RegisterListener(h.aion.get());
  h.engine = std::make_unique<QueryEngine>(h.db.get(), h.aion.get());
  return h;
}

TEST(WorkloadReplayTest, CapturedWorkloadReplaysWithIdenticalRowCounts) {
  auto dir = storage::MakeTempDir("aion_replay_");
  ASSERT_TRUE(dir.ok());
  const std::string capture_path = *dir + "/capture.jsonl";

  const std::vector<std::string> workload = {
      "MATCH (p:Person) RETURN p.w",
      "USE gdb FOR SYSTEM_TIME AS OF 2 MATCH (n) WHERE id(n) = 1 RETURN n",
      "CALL aion.incremental.avg('w', 0, 3, 1)",
      "CALL aion.diffCount(0, 3)",
      "MATCH (n) RETURN count(*)",
  };

  // Record: run the scripted workload with capture on.
  {
    Harness capturing = MakeHarness(*dir + "/a", capture_path);
    ASSERT_TRUE(capturing.engine->capture() != nullptr);
    ASSERT_TRUE(capturing.engine->capture()->enabled());
    for (const std::string& statement : workload) {
      auto result = capturing.engine->Execute(statement);
      ASSERT_TRUE(result.ok()) << statement << ": "
                               << result.status().ToString();
    }
    EXPECT_EQ(capturing.engine->capture()->total_recorded(),
              workload.size());
  }

  auto records = obs::WorkloadCapture::ReadFile(capture_path);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), workload.size());

  // Replay: the same statements, in capture order, against a fresh store
  // with the same history — row for row.
  Harness replaying = MakeHarness(*dir + "/b", "");
  EXPECT_FALSE(replaying.engine->capture() != nullptr &&
               replaying.engine->capture()->enabled());
  for (size_t i = 0; i < records->size(); ++i) {
    const obs::WorkloadCapture::Record& record = (*records)[i];
    EXPECT_EQ(record.text, workload[i]);
    EXPECT_GT(record.query_id, 0u);
    auto result = replaying.engine->Execute(record.text);
    ASSERT_TRUE(result.ok()) << record.text << ": "
                             << result.status().ToString();
    EXPECT_EQ(result->rows.size(), record.rows)
        << "row count diverged replaying: " << record.text;
  }
  (void)storage::RemoveDirRecursively(*dir);
}

}  // namespace
}  // namespace aion::query
