#include "storage/bptree.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "storage/file.h"
#include "util/coding.h"
#include "util/random.h"

namespace aion::storage {
namespace {

class BpTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = MakeTempDir("aion_bpt_test_");
    ASSERT_TRUE(dir.ok());
    dir_ = *dir;
  }
  void TearDown() override { (void)RemoveDirRecursively(dir_); }

  std::unique_ptr<BpTree> OpenTree(const std::string& name,
                                   size_t cache_pages = 64) {
    BpTree::Options options;
    options.cache_pages = cache_pages;
    auto tree = BpTree::Open(dir_ + "/" + name, options);
    EXPECT_TRUE(tree.ok()) << tree.status().ToString();
    return tree.ok() ? std::move(*tree) : nullptr;
  }

  std::string dir_;
};

TEST_F(BpTreeTest, EmptyTreeGetNotFound) {
  auto tree = OpenTree("t");
  ASSERT_NE(tree, nullptr);
  EXPECT_TRUE(tree->Get("missing").status().IsNotFound());
  EXPECT_EQ(tree->num_entries(), 0u);
}

TEST_F(BpTreeTest, PutGetSingle) {
  auto tree = OpenTree("t");
  ASSERT_TRUE(tree->Put("key", "value").ok());
  auto v = tree->Get("key");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "value");
  EXPECT_EQ(tree->num_entries(), 1u);
}

TEST_F(BpTreeTest, PutReplacesExisting) {
  auto tree = OpenTree("t");
  ASSERT_TRUE(tree->Put("k", "v1").ok());
  ASSERT_TRUE(tree->Put("k", "v2").ok());
  EXPECT_EQ(*tree->Get("k"), "v2");
  EXPECT_EQ(tree->num_entries(), 1u);
}

TEST_F(BpTreeTest, EmptyKeyAndValue) {
  auto tree = OpenTree("t");
  ASSERT_TRUE(tree->Put("", "empty-key").ok());
  ASSERT_TRUE(tree->Put("empty-val", "").ok());
  EXPECT_EQ(*tree->Get(""), "empty-key");
  EXPECT_EQ(*tree->Get("empty-val"), "");
}

TEST_F(BpTreeTest, RejectsOversizedEntry) {
  auto tree = OpenTree("t");
  const std::string huge(BpTree::kMaxEntrySize + 1, 'x');
  EXPECT_TRUE(tree->Put(huge, "").IsInvalidArgument());
  EXPECT_TRUE(tree->Put("k", huge).IsInvalidArgument());
}

TEST_F(BpTreeTest, ManyInsertionsForceSplits) {
  auto tree = OpenTree("t");
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    std::string key;
    util::PutBigEndian64(&key, static_cast<uint64_t>(i * 7 % n));
    ASSERT_TRUE(tree->Put(key, "v" + std::to_string(i * 7 % n)).ok());
  }
  EXPECT_EQ(tree->num_entries(), static_cast<uint64_t>(n));
  EXPECT_GT(tree->height(), 1u);
  for (int i = 0; i < n; ++i) {
    std::string key;
    util::PutBigEndian64(&key, static_cast<uint64_t>(i));
    auto v = tree->Get(key);
    ASSERT_TRUE(v.ok()) << "key " << i;
    EXPECT_EQ(*v, "v" + std::to_string(i));
  }
}

TEST_F(BpTreeTest, IteratorFullScanIsSorted) {
  auto tree = OpenTree("t");
  util::Random rng(11);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 5000; ++i) {
    std::string key;
    util::PutBigEndian64(&key, rng.Next());
    model[key] = std::to_string(i);
    ASSERT_TRUE(tree->Put(key, std::to_string(i)).ok());
  }
  auto it = tree->NewIterator();
  auto model_it = model.begin();
  size_t count = 0;
  for (it.SeekToFirst(); it.Valid(); it.Next(), ++model_it, ++count) {
    ASSERT_NE(model_it, model.end());
    EXPECT_EQ(it.key().ToString(), model_it->first);
    EXPECT_EQ(it.value().ToString(), model_it->second);
  }
  EXPECT_TRUE(it.status().ok());
  EXPECT_EQ(count, model.size());
}

TEST_F(BpTreeTest, SeekPositionsAtLowerBound) {
  auto tree = OpenTree("t");
  for (uint64_t i = 0; i < 100; ++i) {
    std::string key;
    util::PutBigEndian64(&key, i * 10);  // keys 0,10,...,990
    ASSERT_TRUE(tree->Put(key, std::to_string(i * 10)).ok());
  }
  std::string target;
  util::PutBigEndian64(&target, 55);
  auto it = tree->NewIterator();
  it.Seek(target);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(util::DecodeBigEndian64(it.key().data()), 60u);

  // Seek to exact key.
  std::string exact;
  util::PutBigEndian64(&exact, 500);
  it.Seek(exact);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(util::DecodeBigEndian64(it.key().data()), 500u);

  // Seek past the end.
  std::string beyond;
  util::PutBigEndian64(&beyond, 100000);
  it.Seek(beyond);
  EXPECT_FALSE(it.Valid());
  EXPECT_TRUE(it.status().ok());
}

TEST_F(BpTreeTest, ScanRangeHalfOpen) {
  auto tree = OpenTree("t");
  for (uint64_t i = 0; i < 1000; ++i) {
    std::string key;
    util::PutBigEndian64(&key, i);
    ASSERT_TRUE(tree->Put(key, "v").ok());
  }
  std::string low, high;
  util::PutBigEndian64(&low, 100);
  util::PutBigEndian64(&high, 200);
  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_TRUE(tree->ScanRange(low, high, &out).ok());
  ASSERT_EQ(out.size(), 100u);
  EXPECT_EQ(util::DecodeBigEndian64(out.front().first.data()), 100u);
  EXPECT_EQ(util::DecodeBigEndian64(out.back().first.data()), 199u);
}

TEST_F(BpTreeTest, DeleteRemovesKey) {
  auto tree = OpenTree("t");
  for (uint64_t i = 0; i < 2000; ++i) {
    std::string key;
    util::PutBigEndian64(&key, i);
    ASSERT_TRUE(tree->Put(key, "v").ok());
  }
  for (uint64_t i = 0; i < 2000; i += 2) {
    std::string key;
    util::PutBigEndian64(&key, i);
    ASSERT_TRUE(tree->Delete(key).ok());
  }
  EXPECT_EQ(tree->num_entries(), 1000u);
  for (uint64_t i = 0; i < 2000; ++i) {
    std::string key;
    util::PutBigEndian64(&key, i);
    EXPECT_EQ(tree->Get(key).ok(), i % 2 == 1) << i;
  }
  // Iterator skips deleted entries and possibly-empty leaves.
  auto it = tree->NewIterator();
  size_t count = 0;
  for (it.SeekToFirst(); it.Valid(); it.Next()) ++count;
  EXPECT_EQ(count, 1000u);
}

TEST_F(BpTreeTest, DeleteMissingReturnsNotFound) {
  auto tree = OpenTree("t");
  ASSERT_TRUE(tree->Put("a", "1").ok());
  EXPECT_TRUE(tree->Delete("b").IsNotFound());
  EXPECT_EQ(tree->num_entries(), 1u);
}

TEST_F(BpTreeTest, PersistsAcrossReopen) {
  {
    auto tree = OpenTree("t");
    for (uint64_t i = 0; i < 3000; ++i) {
      std::string key;
      util::PutBigEndian64(&key, i);
      ASSERT_TRUE(tree->Put(key, "v" + std::to_string(i)).ok());
    }
    ASSERT_TRUE(tree->Sync().ok());
  }
  auto tree = OpenTree("t");
  ASSERT_NE(tree, nullptr);
  EXPECT_EQ(tree->num_entries(), 3000u);
  for (uint64_t i = 0; i < 3000; i += 137) {
    std::string key;
    util::PutBigEndian64(&key, i);
    auto v = tree->Get(key);
    ASSERT_TRUE(v.ok()) << i;
    EXPECT_EQ(*v, "v" + std::to_string(i));
  }
}

TEST_F(BpTreeTest, OutOfCoreWithTinyCache) {
  // 16-frame cache forces constant eviction while building a multi-level
  // tree — exercises write-back and re-read of every page type.
  auto tree = OpenTree("t", /*cache_pages=*/16);
  const int n = 10000;
  util::Random rng(5);
  std::map<std::string, std::string> model;
  for (int i = 0; i < n; ++i) {
    std::string key;
    util::PutBigEndian64(&key, rng.Next() % 100000);
    const std::string value = std::to_string(i);
    model[key] = value;
    ASSERT_TRUE(tree->Put(key, value).ok());
  }
  EXPECT_EQ(tree->num_entries(), model.size());
  EXPECT_GT(tree->cache().evictions(), 0u);
  for (const auto& [k, v] : model) {
    auto got = tree->Get(k);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, v);
  }
}

TEST_F(BpTreeTest, SkewedEntrySizesSplitSafely) {
  // Mix tiny and near-maximum entries so count-based splits would overflow.
  auto tree = OpenTree("t");
  util::Random rng(9);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 2000; ++i) {
    std::string key;
    util::PutBigEndian64(&key, rng.Next());
    const size_t vsize = rng.Bernoulli(0.2) ? BpTree::kMaxEntrySize - 16 : 8;
    std::string value(vsize, static_cast<char>('a' + (i % 26)));
    model[key] = value;
    ASSERT_TRUE(tree->Put(key, value).ok());
  }
  for (const auto& [k, v] : model) {
    auto got = tree->Get(k);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, v);
  }
  // Full scan still sorted & complete.
  auto it = tree->NewIterator();
  size_t count = 0;
  std::string prev;
  for (it.SeekToFirst(); it.Valid(); it.Next(), ++count) {
    if (count > 0) EXPECT_LT(util::Slice(prev).Compare(it.key()), 0);
    prev = it.key().ToString();
  }
  EXPECT_EQ(count, model.size());
}

// Property sweep: random workloads against a std::map reference model.
class BpTreeModelTest : public BpTreeTest,
                        public ::testing::WithParamInterface<int> {};

TEST_P(BpTreeModelTest, MatchesReferenceModel) {
  const int seed = GetParam();
  auto tree = OpenTree("t" + std::to_string(seed), 32);
  util::Random rng(static_cast<uint64_t>(seed));
  std::map<std::string, std::string> model;
  for (int op = 0; op < 6000; ++op) {
    const double dice = rng.NextDouble();
    std::string key;
    util::PutBigEndian64(&key, rng.Next() % 500);
    if (dice < 0.6) {
      const std::string value = std::to_string(rng.Next() % 1000000);
      model[key] = value;
      ASSERT_TRUE(tree->Put(key, value).ok());
    } else if (dice < 0.8) {
      const bool in_model = model.erase(key) > 0;
      const Status s = tree->Delete(key);
      EXPECT_EQ(s.ok(), in_model);
    } else {
      auto got = tree->Get(key);
      auto it = model.find(key);
      if (it == model.end()) {
        EXPECT_TRUE(got.status().IsNotFound());
      } else {
        ASSERT_TRUE(got.ok());
        EXPECT_EQ(*got, it->second);
      }
    }
  }
  EXPECT_EQ(tree->num_entries(), model.size());
  // Final full-scan equivalence.
  auto it = tree->NewIterator();
  auto mit = model.begin();
  for (it.SeekToFirst(); it.Valid(); it.Next(), ++mit) {
    ASSERT_NE(mit, model.end());
    EXPECT_EQ(it.key().ToString(), mit->first);
    EXPECT_EQ(it.value().ToString(), mit->second);
  }
  EXPECT_EQ(mit, model.end());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BpTreeModelTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace aion::storage
namespace aion::storage {
namespace {

TEST_F(BpTreeTest, SeekForPrevFindsFloorKey) {
  auto tree = OpenTree("rev");
  for (uint64_t i = 0; i < 100; ++i) {
    std::string key;
    util::PutBigEndian64(&key, i * 10);  // 0,10,...,990
    ASSERT_TRUE(tree->Put(key, std::to_string(i * 10)).ok());
  }
  auto it = tree->NewIterator();
  std::string target;
  util::PutBigEndian64(&target, 55);
  it.SeekForPrev(target);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(util::DecodeBigEndian64(it.key().data()), 50u);

  // Exact key.
  target.clear();
  util::PutBigEndian64(&target, 500);
  it.SeekForPrev(target);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(util::DecodeBigEndian64(it.key().data()), 500u);

  // Before all keys -> invalid... but key 0 exists, so use empty-ish target.
  it.SeekForPrev(std::string(1, '\0'));
  EXPECT_FALSE(it.Valid());
  EXPECT_TRUE(it.status().ok());

  // Past the end -> last key.
  target.clear();
  util::PutBigEndian64(&target, 999999);
  it.SeekForPrev(target);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(util::DecodeBigEndian64(it.key().data()), 990u);
}

TEST_F(BpTreeTest, PrevWalksBackwardAcrossLeaves) {
  auto tree = OpenTree("rev2");
  const uint64_t n = 5000;  // multiple leaves
  for (uint64_t i = 0; i < n; ++i) {
    std::string key;
    util::PutBigEndian64(&key, i);
    ASSERT_TRUE(tree->Put(key, "v").ok());
  }
  auto it = tree->NewIterator();
  it.SeekToLast();
  ASSERT_TRUE(it.Valid());
  uint64_t expected = n - 1;
  size_t count = 0;
  while (it.Valid()) {
    EXPECT_EQ(util::DecodeBigEndian64(it.key().data()), expected);
    --expected;
    ++count;
    it.Prev();
  }
  EXPECT_EQ(count, n);
  EXPECT_TRUE(it.status().ok());
}

TEST_F(BpTreeTest, PrevSkipsEmptiedLeaves) {
  auto tree = OpenTree("rev3");
  for (uint64_t i = 0; i < 3000; ++i) {
    std::string key;
    util::PutBigEndian64(&key, i);
    ASSERT_TRUE(tree->Put(key, "v").ok());
  }
  // Empty out a middle band entirely.
  for (uint64_t i = 1000; i < 2000; ++i) {
    std::string key;
    util::PutBigEndian64(&key, i);
    ASSERT_TRUE(tree->Delete(key).ok());
  }
  std::string target;
  util::PutBigEndian64(&target, 1500);
  auto it = tree->NewIterator();
  it.SeekForPrev(target);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(util::DecodeBigEndian64(it.key().data()), 999u);
}

TEST_F(BpTreeTest, SeekToLastOnEmptyTree) {
  auto tree = OpenTree("rev4");
  auto it = tree->NewIterator();
  it.SeekToLast();
  EXPECT_FALSE(it.Valid());
  EXPECT_TRUE(it.status().ok());
}

TEST_F(BpTreeTest, ForwardBackwardRoundTrip) {
  auto tree = OpenTree("rev5");
  util::Random rng(77);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 4000; ++i) {
    std::string key;
    util::PutBigEndian64(&key, rng.Next());
    model[key] = "v";
    ASSERT_TRUE(tree->Put(key, "v").ok());
  }
  // Walk backward from the end, compare with reverse model order.
  auto it = tree->NewIterator();
  it.SeekToLast();
  auto mit = model.rbegin();
  size_t count = 0;
  while (it.Valid()) {
    ASSERT_NE(mit, model.rend());
    EXPECT_EQ(it.key().ToString(), mit->first);
    it.Prev();
    ++mit;
    ++count;
  }
  EXPECT_EQ(count, model.size());
}

}  // namespace
}  // namespace aion::storage
