#include "core/graphstore.h"

#include <gtest/gtest.h>

#include "graph/update.h"

namespace aion::core {
namespace {

using graph::GraphUpdate;
using graph::Timestamp;

GraphUpdate At(Timestamp ts, GraphUpdate u) {
  u.ts = ts;
  return u;
}

std::shared_ptr<const graph::MemoryGraph> GraphWithNodes(size_t n) {
  auto g = std::make_unique<graph::MemoryGraph>();
  for (size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(g->Apply(GraphUpdate::AddNode(i)).ok());
  }
  return g;
}

TEST(GraphStoreTest, LatestReplicaTracksUpdates) {
  GraphStore store(1 << 20);
  ASSERT_TRUE(store.ApplyToLatest(At(1, GraphUpdate::AddNode(0))).ok());
  ASSERT_TRUE(store.ApplyToLatest(At(2, GraphUpdate::AddNode(1))).ok());
  auto latest = store.Latest();
  EXPECT_EQ(latest->NumNodes(), 2u);
  EXPECT_EQ(store.latest_ts(), 2u);
}

TEST(GraphStoreTest, PublishedLatestIsImmutableSnapshot) {
  GraphStore store(1 << 20);
  ASSERT_TRUE(store.ApplyToLatest(At(1, GraphUpdate::AddNode(0))).ok());
  auto snapshot = store.Latest();
  EXPECT_EQ(snapshot->NumNodes(), 1u);
  // Mutating after publication must not change the published snapshot
  // (copy-on-write).
  ASSERT_TRUE(store.ApplyToLatest(At(2, GraphUpdate::AddNode(1))).ok());
  EXPECT_EQ(snapshot->NumNodes(), 1u);
  EXPECT_EQ(store.Latest()->NumNodes(), 2u);
}

TEST(GraphStoreTest, WithLatestDoesNotPublish) {
  GraphStore store(1 << 20);
  ASSERT_TRUE(store.ApplyToLatest(At(1, GraphUpdate::AddNode(0))).ok());
  size_t count = 0;
  store.WithLatest([&](const graph::MemoryGraph& g) { count = g.NumNodes(); });
  EXPECT_EQ(count, 1u);
  ASSERT_TRUE(store.ApplyToLatest(At(2, GraphUpdate::AddNode(1))).ok());
  store.WithLatest([&](const graph::MemoryGraph& g) { count = g.NumNodes(); });
  EXPECT_EQ(count, 2u);
}

TEST(GraphStoreTest, PutGetExactTimestamp) {
  GraphStore store(1 << 20);
  store.Put(10, GraphWithNodes(3));
  auto hit = store.Get(10);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->NumNodes(), 3u);
  EXPECT_EQ(store.Get(11), nullptr);
  EXPECT_GE(store.hits(), 1u);
  EXPECT_GE(store.misses(), 1u);
}

TEST(GraphStoreTest, ClosestAtOrBeforeFloorSemantics) {
  GraphStore store(1 << 30);
  store.Put(10, GraphWithNodes(1));
  store.Put(20, GraphWithNodes(2));
  store.Put(30, GraphWithNodes(3));
  Timestamp ts = 0;
  auto s = store.ClosestAtOrBefore(25, &ts);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(ts, 20u);
  EXPECT_EQ(s->NumNodes(), 2u);
  s = store.ClosestAtOrBefore(10, &ts);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(ts, 10u);
  // Before every cached snapshot, the (empty) latest replica at ts 0 still
  // qualifies: the graph is empty until the first update.
  s = store.ClosestAtOrBefore(5, &ts);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(ts, 0u);
  EXPECT_EQ(s->NumNodes(), 0u);
}

TEST(GraphStoreTest, ClosestPrefersLatestReplicaWhenNewer) {
  GraphStore store(1 << 30);
  store.Put(10, GraphWithNodes(1));
  ASSERT_TRUE(store.ApplyToLatest(At(50, GraphUpdate::AddNode(0))).ok());
  Timestamp ts = 0;
  auto s = store.ClosestAtOrBefore(60, &ts);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(ts, 50u);
  // Queries before the replica's timestamp use the older snapshot.
  s = store.ClosestAtOrBefore(20, &ts);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(ts, 10u);
}

TEST(GraphStoreTest, LruEvictionUnderMemoryPressure) {
  // Capacity fits roughly one 100-node graph (~60B/node + overhead).
  GraphStore store(100 * 70);
  store.Put(1, GraphWithNodes(100));
  store.Put(2, GraphWithNodes(100));
  store.Put(3, GraphWithNodes(100));
  // At most 2 snapshots retained (eviction keeps >= 1).
  EXPECT_LE(store.cached_snapshots(), 2u);
  EXPECT_LE(store.cached_bytes(), 100u * 70u * 2);
}

TEST(GraphStoreTest, EvictionPrefersLeastRecentlyUsed) {
  // Capacity for exactly three 50-node graphs.
  const size_t cost = GraphWithNodes(50)->EstimateMemoryBytes();
  GraphStore store(3 * cost + cost / 2);
  store.Put(1, GraphWithNodes(50));
  store.Put(2, GraphWithNodes(50));
  // Touch snapshot 1 so snapshot 2 is the LRU victim.
  EXPECT_NE(store.Get(1), nullptr);
  store.Put(3, GraphWithNodes(50));
  store.Put(4, GraphWithNodes(50));  // exceeds capacity: evicts 2
  EXPECT_NE(store.Get(1), nullptr);
  EXPECT_EQ(store.Get(2), nullptr);
}

TEST(GraphStoreTest, ResultStore) {
  GraphStore store(1 << 20);
  EXPECT_FALSE(store.GetResult("pr").has_value());
  store.PutResult("pr", {0.1, 0.2, 0.7});
  auto r = store.GetResult("pr");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->size(), 3u);
  store.PutResult("pr", {1.0});
  EXPECT_EQ(store.GetResult("pr")->size(), 1u);
}

TEST(GraphStoreTest, PutReplacesSameTimestamp) {
  GraphStore store(1 << 30);
  store.Put(5, GraphWithNodes(1));
  store.Put(5, GraphWithNodes(9));
  EXPECT_EQ(store.Get(5)->NumNodes(), 9u);
  EXPECT_EQ(store.cached_snapshots(), 1u);
}

TEST(GraphStoreTest, ShardedCacheBehavesLikeOneMap) {
  // Sharding is an implementation detail: floor lookups, exact lookups and
  // the global byte budget must be indistinguishable from a single map,
  // whatever the shard count.
  for (size_t shards : {size_t{1}, size_t{3}, size_t{16}}) {
    GraphStore store(1 << 30, nullptr, shards);
    EXPECT_EQ(store.num_shards(), shards);
    for (Timestamp ts = 1; ts <= 40; ++ts) {
      store.Put(ts, GraphWithNodes(ts));
    }
    EXPECT_EQ(store.cached_snapshots(), 40u);
    for (Timestamp ts = 1; ts <= 40; ++ts) {
      auto hit = store.Get(ts);
      ASSERT_NE(hit, nullptr) << "shards=" << shards << " ts=" << ts;
      EXPECT_EQ(hit->NumNodes(), ts);
    }
    // Floor semantics across shard boundaries (37 hashes elsewhere than
    // 35; the scan must still find the max key <= t globally).
    Timestamp found = 0;
    auto closest = store.ClosestAtOrBefore(37, &found);
    ASSERT_NE(closest, nullptr);
    EXPECT_EQ(found, 37u);
    EXPECT_EQ(store.Get(1000), nullptr);
  }
}

TEST(GraphStoreTest, ShardCountersSumToTotals) {
  obs::MetricsRegistry metrics;
  GraphStore store(1 << 30, &metrics, 4);
  for (Timestamp ts = 1; ts <= 10; ++ts) store.Put(ts, GraphWithNodes(1));
  for (Timestamp ts = 1; ts <= 10; ++ts) EXPECT_NE(store.Get(ts), nullptr);
  EXPECT_EQ(store.Get(99), nullptr);
  const auto snapshot = metrics.Snapshot();
  uint64_t shard_hits = 0;
  uint64_t shard_misses = 0;
  for (size_t i = 0; i < store.num_shards(); ++i) {
    const std::string prefix = "graphstore.shard" + std::to_string(i);
    shard_hits += snapshot.counter(prefix + ".hits");
    shard_misses += snapshot.counter(prefix + ".misses");
  }
  EXPECT_EQ(shard_hits, store.hits());
  EXPECT_EQ(shard_misses, store.misses());
  EXPECT_EQ(snapshot.counter("graphstore.requests"),
            store.hits() + store.misses());
}

TEST(GraphStoreTest, GlobalEvictionSpansShards) {
  // Budget for ~2 snapshots; entries land on different shards, yet the
  // byte budget is global, so old entries are evicted wherever they live.
  GraphStore store(/*capacity_bytes=*/100 * 70, nullptr, 8);
  for (Timestamp ts = 1; ts <= 6; ++ts) {
    store.Put(ts, GraphWithNodes(100));
  }
  EXPECT_LE(store.cached_snapshots(), 2u);
  // The newest snapshot always survives (most recently used).
  EXPECT_NE(store.Get(6), nullptr);
}

TEST(GraphStoreTest, MutateLatestAppliesBatchAtomically) {
  GraphStore store(1 << 20);
  auto before = store.Latest();
  ASSERT_TRUE(store
                  .MutateLatest(7,
                                [](graph::MemoryGraph* g) {
                                  AION_RETURN_IF_ERROR(
                                      g->Apply(GraphUpdate::AddNode(0)));
                                  return g->Apply(GraphUpdate::AddNode(1));
                                })
                  .ok());
  // The pre-mutation handout is untouched (copy-on-write) and the replica
  // clock advanced to the batch timestamp.
  EXPECT_EQ(before->NumNodes(), 0u);
  EXPECT_EQ(store.Latest()->NumNodes(), 2u);
  EXPECT_EQ(store.latest_ts(), 7u);
  EXPECT_EQ(store.cow_clones(), 1u);
}

}  // namespace
}  // namespace aion::core
