#include "query/planner.h"

#include <gtest/gtest.h>

#include "query/parser.h"
#include "storage/file.h"

namespace aion::query {
namespace {

using core::AionStore;

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = storage::MakeTempDir("aion_plan_test_");
    ASSERT_TRUE(dir.ok());
    dir_ = *dir;
    AionStore::Options options;
    options.dir = dir_ + "/aion";
    options.lineage_mode = AionStore::LineageMode::kSync;
    auto aion = AionStore::Open(options);
    ASSERT_TRUE(aion.ok());
    aion_ = std::move(*aion);
    // 100 nodes (30 labelled Hot), ring of 100 rels -> avg degree 1.
    // One batched ingest, two transactions (ts 1 = nodes, ts 2 = rels).
    core::WriteBatch batch;
    for (graph::NodeId i = 0; i < 100; ++i) {
      batch.Add(1, graph::GraphUpdate::AddNode(
                       i, i < 30 ? std::vector<std::string>{"Hot"}
                                 : std::vector<std::string>{}));
    }
    for (graph::RelId i = 0; i < 100; ++i) {
      batch.Add(2,
                graph::GraphUpdate::AddRelationship(i, i, (i + 1) % 100, "R"));
    }
    ASSERT_TRUE(aion_->IngestBatch(std::move(batch)).ok());
  }
  void TearDown() override { (void)storage::RemoveDirRecursively(dir_); }

  PlanInfo PlanOf(const std::string& text) {
    auto stmt = Parse(text);
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    return PlanStatement(*stmt, aion_.get());
  }

  std::string dir_;
  std::unique_ptr<AionStore> aion_;
};

TEST_F(PlannerTest, IdAnchoredPointLookup) {
  PlanInfo plan = PlanOf(
      "USE g FOR SYSTEM_TIME AS OF 2 MATCH (n) WHERE id(n) = 7 RETURN n");
  EXPECT_EQ(plan.access, PlanInfo::Access::kPointLookup);
  EXPECT_TRUE(plan.anchored_by_id);
  EXPECT_EQ(plan.anchor_id, 7u);
  EXPECT_EQ(plan.store, AionStore::StoreChoice::kLineageStore);
  EXPECT_DOUBLE_EQ(plan.estimated_fraction, 0.0);
}

TEST_F(PlannerTest, RangeQueryIsPointHistory) {
  PlanInfo plan = PlanOf(
      "USE g FOR SYSTEM_TIME BETWEEN 1 AND 9 MATCH (n) WHERE id(n) = 7 "
      "RETURN n");
  EXPECT_EQ(plan.access, PlanInfo::Access::kPointHistory);
  EXPECT_EQ(plan.store, AionStore::StoreChoice::kLineageStore);
}

TEST_F(PlannerTest, ShallowExpandUsesLineage) {
  PlanInfo plan = PlanOf(
      "USE g FOR SYSTEM_TIME AS OF 2 MATCH (n)-[*2]->(m) WHERE id(n) = 7 "
      "RETURN m");
  EXPECT_EQ(plan.access, PlanInfo::Access::kExpand);
  EXPECT_EQ(plan.hops, 2u);
  // Avg degree 1: 2 hops reach ~3/100 of the graph, far below 30%.
  EXPECT_LT(plan.estimated_fraction, 0.3);
  EXPECT_EQ(plan.store, AionStore::StoreChoice::kLineageStore);
}

TEST_F(PlannerTest, DeepExpandSwitchesToTimeStore) {
  PlanInfo plan = PlanOf(
      "USE g FOR SYSTEM_TIME AS OF 2 MATCH (n)-[*80]->(m) WHERE id(n) = 7 "
      "RETURN m");
  EXPECT_EQ(plan.access, PlanInfo::Access::kExpand);
  EXPECT_GT(plan.estimated_fraction, 0.3);
  EXPECT_EQ(plan.store, AionStore::StoreChoice::kTimeStore);
}

TEST_F(PlannerTest, UnanchoredScanIsGlobal) {
  PlanInfo plan = PlanOf("MATCH (n) RETURN count(*)");
  EXPECT_EQ(plan.access, PlanInfo::Access::kGlobalScan);
  EXPECT_FALSE(plan.anchored_by_id);
  EXPECT_EQ(plan.store, AionStore::StoreChoice::kTimeStore);
  EXPECT_DOUBLE_EQ(plan.estimated_fraction, 1.0);
}

TEST_F(PlannerTest, LabelScanUsesLabelSelectivity) {
  PlanInfo plan = PlanOf("MATCH (n:Hot) RETURN n");
  EXPECT_EQ(plan.access, PlanInfo::Access::kGlobalScan);
  EXPECT_NEAR(plan.estimated_fraction, 0.3, 1e-9);
}

TEST_F(PlannerTest, MultiSegmentHopsAccumulate) {
  PlanInfo plan = PlanOf(
      "MATCH (a)-[*2]->(b)-[:R]->(c) WHERE id(a) = 1 RETURN c");
  EXPECT_EQ(plan.hops, 3u);
  EXPECT_EQ(plan.access, PlanInfo::Access::kExpand);
}

TEST_F(PlannerTest, NullAionDefaultsSafely) {
  auto stmt = Parse("MATCH (n) WHERE id(n) = 3 RETURN n");
  ASSERT_TRUE(stmt.ok());
  PlanInfo plan = PlanStatement(*stmt, nullptr);
  EXPECT_TRUE(plan.anchored_by_id);
  EXPECT_EQ(plan.store, AionStore::StoreChoice::kTimeStore);
}

}  // namespace
}  // namespace aion::query
