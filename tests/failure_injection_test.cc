// Failure injection: corrupted files, truncated logs, exhausted caches, and
// mid-flight crash/recovery scenarios must surface as Status errors (or be
// recovered), never as silent wrong answers.
#include <gtest/gtest.h>

#include "core/aion.h"
#include "storage/bptree.h"
#include "storage/file.h"
#include "txn/graphdb.h"

namespace aion {
namespace {

using graph::GraphUpdate;

class FailureInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = storage::MakeTempDir("aion_fault_");
    ASSERT_TRUE(dir.ok());
    dir_ = *dir;
  }
  void TearDown() override { (void)storage::RemoveDirRecursively(dir_); }

  void CorruptFile(const std::string& path, uint64_t offset, char xor_mask) {
    auto file = storage::RandomAccessFile::Open(path);
    ASSERT_TRUE(file.ok());
    ASSERT_GT((*file)->size(), offset);
    char byte;
    ASSERT_TRUE((*file)->Read(offset, 1, &byte).ok());
    byte ^= xor_mask;
    ASSERT_TRUE((*file)->Write(offset, &byte, 1).ok());
  }

  std::string dir_;
};

TEST_F(FailureInjectionTest, BpTreeBadMagicRejected) {
  const std::string path = dir_ + "/tree";
  {
    auto tree = storage::BpTree::Open(path);
    ASSERT_TRUE(tree.ok());
    ASSERT_TRUE((*tree)->Put("k", "v").ok());
    ASSERT_TRUE((*tree)->Sync().ok());
  }
  CorruptFile(path, 0, 0x5a);  // meta page magic
  auto tree = storage::BpTree::Open(path);
  EXPECT_FALSE(tree.ok());
  EXPECT_TRUE(tree.status().IsCorruption());
}

TEST_F(FailureInjectionTest, BpTreeCorruptLeafTypeDetected) {
  const std::string path = dir_ + "/tree";
  {
    auto tree = storage::BpTree::Open(path);
    ASSERT_TRUE(tree.ok());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE((*tree)->Put("key" + std::to_string(i), "v").ok());
    }
    ASSERT_TRUE((*tree)->Sync().ok());
  }
  // Page 1 is the root leaf; flip its type byte.
  CorruptFile(path, storage::kPageSize, 0x7f);
  auto tree = storage::BpTree::Open(path);
  ASSERT_TRUE(tree.ok());  // meta intact
  EXPECT_FALSE((*tree)->Get("key1").ok());
}

TEST_F(FailureInjectionTest, TimeStoreLogCorruptionSurfaces) {
  core::AionStore::Options options;
  options.dir = dir_ + "/aion";
  options.lineage_mode = core::AionStore::LineageMode::kDisabled;
  {
    auto aion = core::AionStore::Open(options);
    ASSERT_TRUE(aion.ok());
    for (graph::Timestamp ts = 1; ts <= 20; ++ts) {
      ASSERT_TRUE((*aion)->Ingest(ts, {GraphUpdate::AddNode(ts)}).ok());
    }
    ASSERT_TRUE((*aion)->Flush().ok());
  }
  // Flip a payload byte in the middle of the first update-log segment.
  // Either Open fails loudly (the startup replay hits the checksum) or the
  // first read does — never a silently wrong answer.
  CorruptFile(options.dir + "/timestore/segments/seg_1.log", 120, 0x3c);
  auto aion = core::AionStore::Open(options);
  if (!aion.ok()) {
    EXPECT_TRUE(aion.status().IsCorruption());
    return;
  }
  auto diff = (*aion)->GetDiff(0, 100);
  EXPECT_FALSE(diff.ok());
  EXPECT_TRUE(diff.status().IsCorruption());
}

TEST_F(FailureInjectionTest, HostWalCorruptionFailsRecovery) {
  txn::GraphDatabase::Options options;
  options.data_dir = dir_ + "/db";
  {
    auto db = txn::GraphDatabase::Open(options);
    ASSERT_TRUE(db.ok());
    for (int i = 0; i < 10; ++i) {
      auto txn = (*db)->Begin();
      txn->CreateNode();
      ASSERT_TRUE(txn->Commit().ok());
    }
  }
  CorruptFile(options.data_dir + "/wal", 40, 0x11);
  auto db = txn::GraphDatabase::Open(options);
  EXPECT_FALSE(db.ok());
}

TEST_F(FailureInjectionTest, CrashBeforeLineageFlushRecoversViaFallback) {
  // Simulate a crash where the TimeStore persisted but the LineageStore
  // watermark did not: queries must still answer via the fallback.
  core::AionStore::Options options;
  options.dir = dir_ + "/aion";
  options.lineage_mode = core::AionStore::LineageMode::kAsync;
  {
    auto aion = core::AionStore::Open(options);
    ASSERT_TRUE(aion.ok());
    for (graph::Timestamp ts = 1; ts <= 10; ++ts) {
      ASSERT_TRUE((*aion)
                      ->Ingest(ts, {GraphUpdate::AddNode(
                                       ts, {"N"},
                                       graph::PropertySet{})})
                      .ok());
    }
    (*aion)->DrainBackground();
    ASSERT_TRUE((*aion)->Flush().ok());
  }
  // Crash: TimeStore persisted, but the LineageStore watermark meta was
  // lost before it hit disk.
  ASSERT_TRUE(storage::RemoveFileIfExists(options.dir + "/lineagestore/meta")
                  .ok());
  auto aion = core::AionStore::Open(options);
  ASSERT_TRUE(aion.ok());
  // LineageStore watermark is behind; the store falls back to TimeStore.
  EXPECT_FALSE((*aion)->LineageCanServe(10));
  auto node = (*aion)->GetNode(5, 5, 5);
  ASSERT_TRUE(node.ok()) << node.status().ToString();
  ASSERT_EQ(node->size(), 1u);
  EXPECT_TRUE(node.value()[0].entity.HasLabel("N"));
}

TEST_F(FailureInjectionTest, PageCachePinExhaustionReported) {
  auto cache = storage::PageCache::Open(dir_ + "/pc", 8);
  ASSERT_TRUE(cache.ok());
  std::vector<storage::PageHandle> pins;
  storage::PageId id;
  for (int i = 0; i < 8; ++i) {
    auto page = (*cache)->Allocate(&id);
    ASSERT_TRUE(page.ok());
    pins.push_back(std::move(*page));
  }
  auto overflow = (*cache)->Allocate(&id);
  ASSERT_FALSE(overflow.ok());
  EXPECT_TRUE(overflow.status().IsFailedPrecondition());
}

TEST_F(FailureInjectionTest, SnapshotFileCorruptionSurfaces) {
  core::AionStore::Options options;
  options.dir = dir_ + "/aion";
  options.lineage_mode = core::AionStore::LineageMode::kDisabled;
  options.snapshot_policy.kind = core::SnapshotPolicy::Kind::kOperationBased;
  options.snapshot_policy.every = 5;
  {
    auto aion = core::AionStore::Open(options);
    ASSERT_TRUE(aion.ok());
    for (graph::Timestamp ts = 1; ts <= 20; ++ts) {
      ASSERT_TRUE((*aion)->Ingest(ts, {GraphUpdate::AddNode(ts)}).ok());
    }
    (*aion)->DrainBackground();
    ASSERT_TRUE((*aion)->Flush().ok());
    ASSERT_GT((*aion)->Introspect().timestore_snapshot_bytes, 0u);
  }
  // Corrupt every snapshot file's header region.
  for (int i = 0; i < 8; ++i) {
    const std::string snap = options.dir + "/timestore/snapshots/snap_" +
                             std::to_string(5 * (i + 1)) + "_" +
                             std::to_string(i);
    if (storage::FileExists(snap)) {
      CorruptFile(snap, 0, 0x42);
    }
  }
  // Fresh process: retrieval that needs the snapshot either fails loudly or
  // answers correctly from another source — it must never silently return a
  // wrong graph.
  auto aion = core::AionStore::Open(options);
  if (aion.ok()) {
    auto view = (*aion)->GetGraphAt(6);
    if (view.ok()) {
      EXPECT_EQ((*view)->NumNodes(), 6u);
    }
  }
}

}  // namespace
}  // namespace aion
