// Concurrent temporal reads against a live AionStore: readers pin epochs
// and replay history while the ingest path keeps committing. These tests
// are the TSan gate for the sharded GraphStore, the parallel TimeStore
// replay, and the epoch-pinning fast path (see docs/ARCHITECTURE.md).
#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/aion.h"
#include "storage/file.h"

namespace aion::core {
namespace {

using graph::Direction;
using graph::GraphUpdate;
using graph::Timestamp;

class ConcurrentReadsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = storage::MakeTempDir("aion_concurrent_reads_test_");
    ASSERT_TRUE(dir.ok());
    dir_ = *dir;
  }
  void TearDown() override { (void)storage::RemoveDirRecursively(dir_); }

  std::unique_ptr<AionStore> OpenAion(AionStore::Options options = {}) {
    options.dir = dir_ + "/aion" + std::to_string(++counter_);
    auto store = AionStore::Open(options);
    EXPECT_TRUE(store.ok()) << store.status().ToString();
    return store.ok() ? std::move(*store) : nullptr;
  }

  /// The batch committed at ts `i` (i >= 1): node i, plus a relationship
  /// i-1 -> i when i > 1. So the graph at time t has exactly t nodes and
  /// t - 1 relationships — checkable from any thread without re-reading.
  static std::vector<GraphUpdate> BatchAt(Timestamp i) {
    std::vector<GraphUpdate> batch;
    batch.push_back(GraphUpdate::AddNode(i, {"Person"}));
    if (i > 1) {
      batch.push_back(GraphUpdate::AddRelationship(
          /*id=*/i - 1, /*src=*/i - 1, /*tgt=*/i, "KNOWS"));
    }
    return batch;
  }

  std::string dir_;
  int counter_ = 0;
};

// The satellite stress test: 8 reader threads issue random GetGraphAt /
// GetDiff / Expand calls while the main thread keeps appending batches.
// Every returned view must be commit-boundary consistent: node and edge
// counts at time t must match the deterministic workload, and a post-run
// sequential re-materialization must agree with what readers observed.
TEST_F(ConcurrentReadsTest, ReadersSeeConsistentSnapshotsDuringIngest) {
  constexpr int kReaders = 8;
  constexpr Timestamp kBatches = 200;

  auto aion = OpenAion();
  ASSERT_NE(aion, nullptr);
  // Seed some history so readers have something from the first iteration.
  for (Timestamp i = 1; i <= 20; ++i) {
    ASSERT_TRUE(aion->Ingest(i, BatchAt(i)).ok());
  }

  struct Sample {
    Timestamp t = 0;
    size_t nodes = 0;
    size_t rels = 0;
  };
  std::vector<std::vector<Sample>> samples(kReaders);
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      std::mt19937 rng(1234u + static_cast<unsigned>(r));
      while (!stop.load(std::memory_order_acquire)) {
        // Only fully committed timestamps participate: anything at or
        // below the ingest high-water mark observed *before* the read.
        const Timestamp high = aion->last_ingested_ts();
        if (high == 0) continue;
        const Timestamp t = 1 + rng() % high;
        switch (rng() % 3) {
          case 0: {
            auto view = aion->GetGraphAt(t);
            if (!view.ok()) {
              ++failures;
              break;
            }
            Sample s;
            s.t = t;
            s.nodes = (*view)->NumNodes();
            s.rels = (*view)->NumRelationships();
            if (s.nodes != static_cast<size_t>(t) ||
                s.rels != static_cast<size_t>(t - 1)) {
              ++failures;
            }
            samples[r].push_back(s);
            break;
          }
          case 1: {
            const Timestamp start = 1 + rng() % high;
            auto diff = aion->GetDiff(start, high + 1);
            if (!diff.ok()) {
              ++failures;
              break;
            }
            Timestamp prev = 0;
            for (const GraphUpdate& u : *diff) {
              if (u.ts < start || u.ts > high || u.ts < prev) ++failures;
              prev = u.ts;
            }
            break;
          }
          default: {
            auto hops = aion->Expand(/*id=*/1, Direction::kBoth,
                                     /*hops=*/1, t);
            if (!hops.ok()) ++failures;
            break;
          }
        }
      }
    });
  }

  for (Timestamp i = 21; i <= kBatches; ++i) {
    ASSERT_TRUE(aion->Ingest(i, BatchAt(i)).ok());
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  aion->DrainBackground();

  EXPECT_EQ(failures.load(), 0);
  // Re-materialize sequentially at every sampled timestamp; the counts the
  // readers saw mid-ingest must match the quiesced store's answer exactly.
  size_t verified = 0;
  for (const auto& per_reader : samples) {
    for (const Sample& s : per_reader) {
      auto graph = aion->MaterializeGraphAt(s.t);
      ASSERT_TRUE(graph.ok()) << graph.status().ToString();
      EXPECT_EQ((*graph)->NumNodes(), s.nodes) << "at t=" << s.t;
      EXPECT_EQ((*graph)->NumRelationships(), s.rels) << "at t=" << s.t;
      ++verified;
    }
  }
  // The loop above is vacuous if no reader ever completed a GetGraphAt.
  EXPECT_GT(verified, 0u);
}

// Parallel replay must be indistinguishable from sequential replay: the
// same store reopened with a 1-thread read pool (sequential decode) and a
// 4-thread pool (partitioned decode) materializes structurally identical
// graphs at every probed timestamp.
TEST_F(ConcurrentReadsTest, ParallelReplayMatchesSequentialReplay) {
  constexpr Timestamp kBatches = 120;
  AionStore::Options options;
  // Disable eager snapshots so every materialization replays a long log
  // range — exactly the shape that crosses the parallel-decode threshold.
  options.snapshot_policy.kind = SnapshotPolicy::Kind::kDisabled;
  options.read_threads = 1;

  std::string store_dir;
  {
    auto seq = OpenAion(options);
    ASSERT_NE(seq, nullptr);
    store_dir = dir_ + "/aion" + std::to_string(counter_);
    for (Timestamp i = 1; i <= kBatches; ++i) {
      ASSERT_TRUE(seq->Ingest(i, BatchAt(i)).ok());
    }
    ASSERT_TRUE(seq->Flush().ok());
  }

  auto reopen = [&](size_t read_threads) {
    AionStore::Options o = options;
    o.dir = store_dir;
    o.read_threads = read_threads;
    auto store = AionStore::Open(o);
    EXPECT_TRUE(store.ok()) << store.status().ToString();
    return store.ok() ? std::move(*store) : nullptr;
  };

  const std::vector<Timestamp> probes = {1, 31, 64, 99, kBatches};
  std::vector<std::unique_ptr<graph::MemoryGraph>> sequential;
  {
    auto seq = reopen(1);
    ASSERT_NE(seq, nullptr);
    for (Timestamp t : probes) {
      auto g = seq->MaterializeGraphAt(t);
      ASSERT_TRUE(g.ok()) << g.status().ToString();
      sequential.push_back(std::move(*g));
    }
    // A 1-thread pool must never take the partitioned path.
    EXPECT_EQ(seq->Introspect().metrics.counter("timestore.parallel_scans"),
              0u);
  }
  auto par = reopen(4);
  ASSERT_NE(par, nullptr);
  for (size_t i = 0; i < probes.size(); ++i) {
    auto g = par->MaterializeGraphAt(probes[i]);
    ASSERT_TRUE(g.ok()) << g.status().ToString();
    EXPECT_TRUE((*g)->SameGraphAs(*sequential[i]))
        << "divergence at t=" << probes[i];
  }
  // The long replays (ranges of >= 32 log records) must have used the pool.
  const auto metrics = par->Introspect().metrics;
  EXPECT_GT(metrics.counter("timestore.parallel_scans"), 0u);
  EXPECT_GT(metrics.gauge("timestore.replay_parallel_permille"), 0);
}

// Epoch pinning: reads at the ingest frontier are served from the pinned
// latest replica (no TimeStore replay), the pin is reused until the next
// ingest invalidates it, and reader waits land in the latency histogram.
TEST_F(ConcurrentReadsTest, EpochPinServesFrontierReadsAndRefreshesLazily) {
  auto aion = OpenAion();
  ASSERT_NE(aion, nullptr);
  for (Timestamp i = 1; i <= 10; ++i) {
    ASSERT_TRUE(aion->Ingest(i, BatchAt(i)).ok());
  }

  auto view = aion->GetGraphAt(10);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ((*view)->NumNodes(), 10u);
  auto snapshot = aion->Introspect().metrics;
  EXPECT_GE(snapshot.counter("aion.epoch_reads"), 1u);
  const uint64_t refreshes = snapshot.counter("aion.epoch_refreshes");
  EXPECT_GE(refreshes, 1u);
  EXPECT_GT(snapshot.histogram_count("aion.reader_wait_nanos"), 0u);

  // Same frontier, same pin: no refresh.
  ASSERT_TRUE(aion->GetGraphAt(10).ok());
  EXPECT_EQ(aion->Introspect().metrics.counter("aion.epoch_refreshes"),
            refreshes);

  // Ingest invalidates; the next frontier read refreshes exactly once.
  ASSERT_TRUE(aion->Ingest(11, BatchAt(11)).ok());
  auto after = aion->GetGraphAt(11);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ((*after)->NumNodes(), 11u);
  EXPECT_EQ(aion->Introspect().metrics.counter("aion.epoch_refreshes"),
            refreshes + 1);

  // Historical reads must not be served from the (newer) pin.
  auto old_view = aion->GetGraphAt(5);
  ASSERT_TRUE(old_view.ok());
  EXPECT_EQ((*old_view)->NumNodes(), 5u);
}

// A pinned epoch stays immutable while ingest moves on (copy-on-write on
// the latest replica): the holder's counts never change.
TEST_F(ConcurrentReadsTest, PinnedEpochIsImmutableUnderLaterIngest) {
  auto aion = OpenAion();
  ASSERT_NE(aion, nullptr);
  for (Timestamp i = 1; i <= 5; ++i) {
    ASSERT_TRUE(aion->Ingest(i, BatchAt(i)).ok());
  }
  auto pin = aion->PinEpoch();
  ASSERT_NE(pin, nullptr);
  ASSERT_NE(pin->graph, nullptr);
  EXPECT_EQ(pin->ts, 5u);
  EXPECT_EQ(pin->graph->NumNodes(), 5u);
  for (Timestamp i = 6; i <= 50; ++i) {
    ASSERT_TRUE(aion->Ingest(i, BatchAt(i)).ok());
  }
  EXPECT_EQ(pin->ts, 5u);
  EXPECT_EQ(pin->graph->NumNodes(), 5u);
  EXPECT_EQ(pin->graph->NumRelationships(), 4u);
}

}  // namespace
}  // namespace aion::core
