// Cross-cutting edge cases: empty structures, boundary timestamps, and
// odd-but-legal inputs that the main suites do not reach.
#include <gtest/gtest.h>

#include "core/aion.h"
#include "graph/cow_graph.h"
#include "graph/memgraph.h"
#include "query/lexer.h"
#include "query/parser.h"
#include "storage/file.h"

namespace aion {
namespace {

using graph::GraphUpdate;
using graph::kInfiniteTime;

TEST(EdgeCaseTest, EmptyMemoryGraphSerializes) {
  graph::MemoryGraph empty;
  std::string buf;
  empty.EncodeTo(&buf);
  auto decoded = graph::MemoryGraph::DecodeFrom(util::Slice(buf));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ((*decoded)->NumNodes(), 0u);
  EXPECT_TRUE(empty.SameGraphAs(**decoded));
}

TEST(EdgeCaseTest, CloneWithoutNeighbourhoods) {
  graph::MemoryGraph g;
  ASSERT_TRUE(g.Apply(GraphUpdate::AddNode(0)).ok());
  ASSERT_TRUE(g.Apply(GraphUpdate::AddNode(1)).ok());
  ASSERT_TRUE(g.Apply(GraphUpdate::AddRelationship(0, 0, 1, "R")).ok());
  g.DropNeighbourhoods();
  auto copy = g.Clone();
  EXPECT_FALSE(copy->has_neighbourhoods());
  copy->RebuildNeighbourhoods();
  EXPECT_EQ(copy->OutRels(0).size(), 1u);
}

TEST(EdgeCaseTest, CowGraphOverEmptyBase) {
  auto base = std::make_shared<graph::MemoryGraph>();
  graph::CowGraph cow(base);
  EXPECT_EQ(cow.NumNodes(), 0u);
  ASSERT_TRUE(cow.Apply(GraphUpdate::AddNode(5)).ok());
  EXPECT_EQ(cow.NumNodes(), 1u);
  EXPECT_EQ(cow.NodeCapacity(), 6u);
  auto materialized = cow.Materialize();
  EXPECT_EQ(materialized->NumNodes(), 1u);
}

TEST(EdgeCaseTest, LexerHandlesCommentsAndOperators) {
  auto tokens = query::Tokenize(
      "MATCH (n) // a comment to end of line\nWHERE n.a <> 1 RETURN n");
  ASSERT_TRUE(tokens.ok());
  bool saw_neq = false;
  for (const auto& t : *tokens) {
    if (t.type == query::TokenType::kNeq) saw_neq = true;
  }
  EXPECT_TRUE(saw_neq);
}

TEST(EdgeCaseTest, ParserNullLiteralInPattern) {
  auto stmt = query::Parse("MATCH (n {ghost: null}) RETURN n");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->patterns[0].nodes[0].properties[0].second.kind,
            query::Literal::Kind::kNull);
}

class EdgeCaseAionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = storage::MakeTempDir("aion_edge_");
    ASSERT_TRUE(dir.ok());
    dir_ = *dir;
    core::AionStore::Options options;
    options.dir = dir_ + "/aion";
    options.lineage_mode = core::AionStore::LineageMode::kSync;
    auto aion = core::AionStore::Open(options);
    ASSERT_TRUE(aion.ok());
    aion_ = std::move(*aion);
  }
  void TearDown() override { (void)storage::RemoveDirRecursively(dir_); }

  std::string dir_;
  std::unique_ptr<core::AionStore> aion_;
};

TEST_F(EdgeCaseAionTest, QueriesOnEmptyStore) {
  // Queries before any ingestion: empty, not errors.
  auto node = aion_->GetNode(0, 5, 5);
  ASSERT_TRUE(node.ok());
  EXPECT_TRUE(node->empty());
  auto diff = aion_->GetDiff(0, kInfiniteTime);
  ASSERT_TRUE(diff.ok());
  EXPECT_TRUE(diff->empty());
  auto view = aion_->GetGraphAt(100);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ((*view)->NumNodes(), 0u);
  auto expand = aion_->Expand(7, graph::Direction::kBoth, 3, 9);
  ASSERT_TRUE(expand.ok());
  EXPECT_TRUE((*expand)[0].empty());
}

TEST_F(EdgeCaseAionTest, QueryBeyondLastIngestedTimestamp) {
  ASSERT_TRUE(aion_->Ingest(5, {GraphUpdate::AddNode(0, {"A"})}).ok());
  // Future timestamps see the latest state.
  auto node = aion_->GetNode(0, 1000, 1000);
  ASSERT_TRUE(node.ok());
  ASSERT_EQ(node->size(), 1u);
  auto view = aion_->GetGraphAt(kInfiniteTime);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ((*view)->NumNodes(), 1u);
}

TEST_F(EdgeCaseAionTest, GetDiffInfinityBounds) {
  ASSERT_TRUE(aion_->Ingest(1, {GraphUpdate::AddNode(0)}).ok());
  ASSERT_TRUE(aion_->Ingest(2, {GraphUpdate::AddNode(1)}).ok());
  auto all = aion_->GetDiff(0, kInfiniteTime);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 2u);
  auto none = aion_->GetDiff(kInfiniteTime, kInfiniteTime);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

TEST_F(EdgeCaseAionTest, SameTimestampBatchesRejectedOnlyWhenDecreasing) {
  ASSERT_TRUE(aion_->Ingest(5, {GraphUpdate::AddNode(0)}).ok());
  // Equal timestamp: allowed (multiple commits can share a tick under
  // direct ingestion).
  EXPECT_TRUE(aion_->Ingest(5, {GraphUpdate::AddNode(1)}).ok());
  // Decreasing: rejected.
  EXPECT_FALSE(aion_->Ingest(4, {GraphUpdate::AddNode(2)}).ok());
}

TEST_F(EdgeCaseAionTest, WindowAndTemporalGraphDegenerateRanges) {
  ASSERT_TRUE(aion_->Ingest(1, {GraphUpdate::AddNode(0)}).ok());
  // Empty window [5, 5): just the snapshot at 5.
  auto window = aion_->GetWindow(5, 5);
  ASSERT_TRUE(window.ok());
  EXPECT_EQ((*window)->NumNodes(), 1u);
  auto temporal = aion_->GetTemporalGraph(5, 5);
  ASSERT_TRUE(temporal.ok());
  EXPECT_NE((*temporal)->NodeAt(0, 5), nullptr);
}

TEST_F(EdgeCaseAionTest, LargePropertyValuesRoundTrip) {
  graph::PropertySet props;
  props.Set("blob", graph::PropertyValue(std::string(10000, 'x')));
  props.Set("array", graph::PropertyValue(std::vector<int64_t>(500, 7)));
  ASSERT_TRUE(aion_->Ingest(1, {GraphUpdate::AddNode(0, {"Big"}, props)}).ok());
  auto node = aion_->GetNode(0, 1, 1);
  ASSERT_TRUE(node.ok()) << node.status().ToString();
  ASSERT_EQ(node->size(), 1u);
  // The 10 KB string lives in the string pool; the record held a 4-byte
  // reference, so it fits B+Tree pages regardless of value size.
  EXPECT_EQ((*node)[0].entity.props.Get("blob")->AsString().size(), 10000u);
  EXPECT_EQ((*node)[0].entity.props.Get("array")->AsIntArray().size(), 500u);
}

}  // namespace
}  // namespace aion
