#include "algo/temporal_paths.h"

#include <gtest/gtest.h>

#include "graph/update.h"

namespace aion::algo {
namespace {

using graph::GraphUpdate;
using graph::kInfiniteTime;
using graph::NodeId;
using graph::TemporalGraph;
using graph::Timestamp;

GraphUpdate At(Timestamp ts, GraphUpdate u) {
  u.ts = ts;
  return u;
}

/// The aviation network of Fig 2: nodes 0..4; flights as intervals
/// [departure, arrival). Node/edge lifecycle approximates the figure:
///   0 -> 2 : [0, 2)     0 -> 3 : [0, 4)    0 -> 4 : [5, 7)
///   2 -> 1 : [4, 8)     3 -> 1 : [10, 13)  4 -> 1 : [10, 13)... simplified:
/// we keep the earliest-arrival path 0->2->1 and the latest-departure path
/// 0->4(5)->1 from the figure's shape.
std::unique_ptr<TemporalGraph> AviationGraph() {
  std::vector<GraphUpdate> updates;
  for (NodeId i = 0; i < 5; ++i) {
    updates.push_back(At(0, GraphUpdate::AddNode(i, {"Airport"})));
  }
  auto flight = [&](graph::RelId id, NodeId src, NodeId tgt, Timestamp dep,
                    Timestamp arr) {
    updates.push_back(At(dep, GraphUpdate::AddRelationship(id, src, tgt,
                                                           "FLIGHT")));
    updates.push_back(At(arr, GraphUpdate::DeleteRelationship(id)));
  };
  // Must be sorted by timestamp for the temporal graph builder; build the
  // list then sort stably by ts.
  flight(0, 0, 2, 1, 2);    // 0 -> 2 early hop
  flight(1, 2, 1, 4, 8);    // 2 -> 1: earliest arrival at 8
  flight(2, 0, 3, 1, 4);    // 0 -> 3
  flight(3, 3, 1, 10, 13);  // 3 -> 1: arrival 13
  flight(4, 0, 4, 5, 7);    // 0 -> 4: latest departure 5
  flight(5, 4, 1, 10, 13);  // 4 -> 1
  std::stable_sort(updates.begin(), updates.end(),
                   [](const GraphUpdate& a, const GraphUpdate& b) {
                     return a.ts < b.ts;
                   });
  auto g = TemporalGraph::Build(updates);
  EXPECT_TRUE(g.ok()) << g.status().ToString();
  return std::move(*g);
}

TEST(TemporalPathsTest, CollectTemporalEdges) {
  auto g = AviationGraph();
  auto edges = CollectTemporalEdges(*g);
  EXPECT_EQ(edges.size(), 6u);
  // Edge intervals are (departure, arrival).
  bool found = false;
  for (const TemporalEdge& e : edges) {
    if (e.rel == 1) {
      EXPECT_EQ(e.departure, 4u);
      EXPECT_EQ(e.arrival, 8u);
      EXPECT_EQ(e.src, 2u);
      EXPECT_EQ(e.tgt, 1u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(TemporalPathsTest, EarliestArrivalPath) {
  auto g = AviationGraph();
  auto ea = EarliestArrival(*g, 0, 0, kInfiniteTime);
  // Earliest arrival at 1 is via 0->2 (arr 2) then 2->1 (dep 4, arr 8).
  EXPECT_EQ(ea[1], 8u);
  EXPECT_EQ(ea[2], 2u);
  EXPECT_EQ(ea[3], 4u);
  EXPECT_EQ(ea[4], 7u);
  EXPECT_EQ(ea[0], 0u);
}

TEST(TemporalPathsTest, EarliestArrivalRespectsStartTime) {
  auto g = AviationGraph();
  // Starting at t=3: the 0->2 flight (dep 1) is gone; 0->4 (dep 5) works.
  auto ea = EarliestArrival(*g, 0, 3, kInfiniteTime);
  EXPECT_EQ(ea[2], kInfiniteTime);
  EXPECT_EQ(ea[4], 7u);
  EXPECT_EQ(ea[1], 13u);  // via 4 -> 1 (dep 10, arr 13)
}

TEST(TemporalPathsTest, LatestDeparturePath) {
  auto g = AviationGraph();
  auto ld = LatestDeparture(*g, 1, 0, kInfiniteTime);
  // Latest departure from 0 reaching 1: take 0->4 at 5 (then 4->1 at 10).
  EXPECT_EQ(ld[0], 5u);
  EXPECT_EQ(ld[4], 10u);
  EXPECT_EQ(ld[3], 10u);
  EXPECT_EQ(ld[2], 4u);
  // Unreachable towards the target: node 1 itself has t_end.
  EXPECT_EQ(ld[1], kInfiniteTime);
}

TEST(TemporalPathsTest, LatestDepartureWithDeadline) {
  auto g = AviationGraph();
  // Deadline 9: only 0->2->1 (arrive 8) fits; latest departure from 0 is 1.
  auto ld = LatestDeparture(*g, 1, 0, 9);
  EXPECT_EQ(ld[0], 1u);
  EXPECT_EQ(ld[2], 4u);
  EXPECT_EQ(ld[4], 0u);  // cannot reach by 9 via 4
}

TEST(TemporalPathsTest, TimeRespectingOrderMatters) {
  // Edge into 1 departs BEFORE the edge into the intermediate node arrives:
  // no time-respecting path.
  std::vector<GraphUpdate> updates;
  for (NodeId i = 0; i < 3; ++i) {
    updates.push_back(At(0, GraphUpdate::AddNode(i)));
  }
  updates.push_back(At(5, GraphUpdate::AddRelationship(0, 0, 1, "F")));
  updates.push_back(At(7, GraphUpdate::DeleteRelationship(0)));  // 0->1 [5,7)
  // 1->2 departs at 2, long before we can be at node 1.
  std::vector<GraphUpdate> early = {
      At(2, GraphUpdate::AddRelationship(1, 1, 2, "F")),
      At(3, GraphUpdate::DeleteRelationship(1))};
  updates.insert(updates.begin() + 3, early.begin(), early.end());
  std::stable_sort(updates.begin(), updates.end(),
                   [](const GraphUpdate& a, const GraphUpdate& b) {
                     return a.ts < b.ts;
                   });
  auto g = TemporalGraph::Build(updates);
  ASSERT_TRUE(g.ok());
  auto ea = EarliestArrival(**g, 0, 0, kInfiniteTime);
  EXPECT_EQ(ea[1], 7u);
  EXPECT_EQ(ea[2], kInfiniteTime);  // static path exists, temporal does not
}

TEST(TemporalPathsTest, FastestPath) {
  auto g = AviationGraph();
  // Journeys 0->1: dep 1 arr 8 (duration 7); dep 5 arr 13 (duration 8);
  // dep 1 arr 13 via 3 (duration 12). Fastest = 7.
  EXPECT_EQ(FastestPathDuration(*g, 0, 1, 0, kInfiniteTime), 7u);
  // Direct hop 0->2: duration 1.
  EXPECT_EQ(FastestPathDuration(*g, 0, 2, 0, kInfiniteTime), 1u);
  EXPECT_EQ(FastestPathDuration(*g, 0, 0, 0, kInfiniteTime), 0u);
  EXPECT_EQ(FastestPathDuration(*g, 1, 0, 0, kInfiniteTime), kInfiniteTime);
}

TEST(TemporalPathsTest, ShortestTemporalPathHops) {
  auto g = AviationGraph();
  EXPECT_EQ(ShortestTemporalPathHops(*g, 0, 1, 0, kInfiniteTime), 2u);
  EXPECT_EQ(ShortestTemporalPathHops(*g, 0, 4, 0, kInfiniteTime), 1u);
  EXPECT_EQ(ShortestTemporalPathHops(*g, 0, 0, 0, kInfiniteTime), 0u);
  EXPECT_EQ(ShortestTemporalPathHops(*g, 1, 3, 0, kInfiniteTime),
            std::numeric_limits<uint32_t>::max());
}

TEST(TemporalPathsTest, WindowRestrictsEdges) {
  auto g = AviationGraph();
  // Window [0, 9]: flights arriving after 9 are unusable.
  auto ea = EarliestArrival(*g, 0, 0, 9);
  EXPECT_EQ(ea[1], 8u);
  auto ea_tight = EarliestArrival(*g, 0, 0, 7);
  EXPECT_EQ(ea_tight[1], kInfiniteTime);
  EXPECT_EQ(ea_tight[4], 7u);
}

}  // namespace
}  // namespace aion::algo
