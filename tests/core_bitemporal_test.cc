#include "core/bitemporal.h"

#include <gtest/gtest.h>

namespace aion::core {
namespace {

using graph::kInfiniteTime;
using graph::PropertySet;
using graph::PropertyValue;
using graph::TimeInterval;

PropertySet WithAppTime(int64_t start, int64_t end) {
  PropertySet props;
  props.Set(kApplicationStartKey, PropertyValue(start));
  props.Set(kApplicationEndKey, PropertyValue(end));
  return props;
}

TEST(BitemporalTest, ApplicationIntervalFromProperties) {
  const TimeInterval system{5, 50};
  EXPECT_EQ(ApplicationInterval(WithAppTime(100, 200), system),
            (TimeInterval{100, 200}));
}

TEST(BitemporalTest, FallsBackToSystemTime) {
  // Sec 4.5: "If the application time is not set as a property, we fall
  // back to using the system time."
  const TimeInterval system{5, 50};
  EXPECT_EQ(ApplicationInterval(PropertySet{}, system), system);
}

TEST(BitemporalTest, PartialPropertiesMix) {
  const TimeInterval system{5, 50};
  PropertySet only_start;
  only_start.Set(kApplicationStartKey, PropertyValue(int64_t{10}));
  EXPECT_EQ(ApplicationInterval(only_start, system), (TimeInterval{10, 50}));
  PropertySet only_end;
  only_end.Set(kApplicationEndKey, PropertyValue(int64_t{30}));
  EXPECT_EQ(ApplicationInterval(only_end, system), (TimeInterval{5, 30}));
}

TEST(BitemporalTest, NonIntPropertiesIgnored) {
  const TimeInterval system{5, 50};
  PropertySet props;
  props.Set(kApplicationStartKey, PropertyValue("not a time"));
  props.Set(kApplicationEndKey, PropertyValue(3.5));
  EXPECT_EQ(ApplicationInterval(props, system), system);
}

TEST(BitemporalTest, ContainedInBoundariesInclusive) {
  const TimeInterval system{0, kInfiniteTime};
  // CONTAINED IN (a, b): start >= a AND end <= b.
  EXPECT_TRUE(
      ApplicationTimeContainedIn(WithAppTime(100, 200), system, 100, 200));
  EXPECT_TRUE(
      ApplicationTimeContainedIn(WithAppTime(100, 200), system, 99, 201));
  EXPECT_FALSE(
      ApplicationTimeContainedIn(WithAppTime(100, 200), system, 101, 200));
  EXPECT_FALSE(
      ApplicationTimeContainedIn(WithAppTime(100, 200), system, 100, 199));
}

TEST(BitemporalTest, FilterVersionsKeepsMatchesOnly) {
  std::vector<graph::NodeVersion> versions(3);
  versions[0].entity.props = WithAppTime(100, 200);
  versions[1].entity.props = WithAppTime(300, 400);
  versions[2].interval = {10, 20};  // no app time: system fallback
  auto filtered = FilterByApplicationTime(versions, 50, 250);
  ASSERT_EQ(filtered.size(), 1u);  // only [100,200]; [10,20] starts too early
  filtered = FilterByApplicationTime(versions, 250, 500);
  EXPECT_EQ(filtered.size(), 1u);  // only [300,400]
  filtered = FilterByApplicationTime(versions, 0, 30);
  EXPECT_EQ(filtered.size(), 1u);  // only the system-time fallback
}

}  // namespace
}  // namespace aion::core
