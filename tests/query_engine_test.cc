#include "query/engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "obs/query_stats.h"
#include "storage/file.h"

namespace aion::query {
namespace {

class QueryEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = storage::MakeTempDir("aion_qe_test_");
    ASSERT_TRUE(dir.ok());
    dir_ = *dir;
    auto db = txn::GraphDatabase::OpenInMemory();
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    core::AionStore::Options options;
    options.dir = dir_ + "/aion";
    options.lineage_mode = core::AionStore::LineageMode::kSync;
    auto aion = core::AionStore::Open(options);
    ASSERT_TRUE(aion.ok());
    aion_ = std::move(*aion);
    db_->RegisterListener(aion_.get());
    engine_ = std::make_unique<QueryEngine>(db_.get(), aion_.get());
  }
  void TearDown() override { (void)storage::RemoveDirRecursively(dir_); }

  QueryResult Run(const std::string& q) {
    auto result = engine_->Execute(q);
    EXPECT_TRUE(result.ok()) << q << " -> " << result.status().ToString();
    return result.ok() ? *result : QueryResult{};
  }

  std::string dir_;
  std::unique_ptr<txn::GraphDatabase> db_;
  std::unique_ptr<core::AionStore> aion_;
  std::unique_ptr<QueryEngine> engine_;
};

TEST_F(QueryEngineTest, CreateAndMatchLatest) {
  Run("CREATE (a:Person {name: 'ada', age: 36})");
  Run("CREATE (b:Person {name: 'bob', age: 17})");
  Run("CREATE (c:City {name: 'berlin'})");

  QueryResult people = Run("MATCH (p:Person) RETURN p.name");
  EXPECT_EQ(people.NumRows(), 2u);
  QueryResult adults =
      Run("MATCH (p:Person) WHERE p.age >= 18 RETURN p.name");
  ASSERT_EQ(adults.NumRows(), 1u);
  EXPECT_EQ(adults.rows[0][0].AsString(), "ada");
  QueryResult count = Run("MATCH (n) RETURN count(*)");
  EXPECT_EQ(count.rows[0][0].AsInt(), 3);
}

TEST_F(QueryEngineTest, CreateRelationshipAndTraverse) {
  Run("CREATE (a:Person {name: 'ada'})-[:KNOWS]->(b:Person {name: 'bob'})");
  QueryResult friends = Run(
      "MATCH (a:Person)-[:KNOWS]->(b:Person) RETURN a.name, b.name");
  ASSERT_EQ(friends.NumRows(), 1u);
  EXPECT_EQ(friends.rows[0][0].AsString(), "ada");
  EXPECT_EQ(friends.rows[0][1].AsString(), "bob");
  // Reverse direction matches nothing.
  EXPECT_EQ(Run("MATCH (a {name: 'bob'})-[:KNOWS]->(b) RETURN b").NumRows(),
            0u);
  // Undirected matches both ways.
  EXPECT_EQ(Run("MATCH (a {name: 'bob'})-[:KNOWS]-(b) RETURN b").NumRows(),
            1u);
}

TEST_F(QueryEngineTest, MultiHopPattern) {
  Run("CREATE (a {name: 'a'})-[:R]->(b {name: 'b'})-[:R]->(c {name: 'c'})");
  QueryResult two_hop = Run("MATCH (x {name: 'a'})-[*2]->(y) RETURN y.name");
  ASSERT_EQ(two_hop.NumRows(), 1u);
  EXPECT_EQ(two_hop.rows[0][0].AsString(), "c");
}

TEST_F(QueryEngineTest, IdPredicateAndProjection) {
  Run("CREATE (a:Person {name: 'ada'})");
  QueryResult ids = Run("MATCH (n:Person) RETURN id(n)");
  ASSERT_EQ(ids.NumRows(), 1u);
  const int64_t id = ids.rows[0][0].AsInt();
  QueryResult by_id = Run("MATCH (n) WHERE id(n) = " + std::to_string(id) +
                          " RETURN n.name");
  ASSERT_EQ(by_id.NumRows(), 1u);
  EXPECT_EQ(by_id.rows[0][0].AsString(), "ada");
}

TEST_F(QueryEngineTest, SetUpdatesProperties) {
  Run("CREATE (a:Person {name: 'ada', age: 36})");
  QueryResult set = Run("MATCH (n:Person) SET n.age = 37");
  EXPECT_EQ(set.rows[0][0].AsInt(), 1);
  QueryResult check = Run("MATCH (n:Person) RETURN n.age");
  EXPECT_EQ(check.rows[0][0].AsInt(), 37);
}

TEST_F(QueryEngineTest, DeleteRemovesEntities) {
  Run("CREATE (a:Person {name: 'ada'})-[:KNOWS]->(b:Person {name: 'bob'})");
  // Deleting a connected node without DETACH fails (Sec 3 constraint).
  auto bad = engine_->Execute("MATCH (n:Person {name: 'ada'}) DELETE n");
  EXPECT_FALSE(bad.ok());
  QueryResult detach =
      Run("MATCH (n:Person {name: 'ada'}) DETACH DELETE n");
  EXPECT_EQ(detach.rows[0][0].AsInt(), 1);  // nodes deleted
  EXPECT_EQ(detach.rows[0][1].AsInt(), 1);  // rels deleted
  EXPECT_EQ(Run("MATCH (n:Person) RETURN count(*)").rows[0][0].AsInt(), 1);
}

TEST_F(QueryEngineTest, AsOfTimeTravel) {
  Run("CREATE (a:Person {name: 'ada'})");                      // ts 1
  Run("MATCH (n:Person) SET n.name = 'lovelace'");             // ts 2
  Run("CREATE (b:City {name: 'london'})");                     // ts 3

  QueryResult at1 =
      Run("USE gdb FOR SYSTEM_TIME AS OF 1 MATCH (n:Person) RETURN n.name");
  ASSERT_EQ(at1.NumRows(), 1u);
  EXPECT_EQ(at1.rows[0][0].AsString(), "ada");

  QueryResult at2 =
      Run("USE gdb FOR SYSTEM_TIME AS OF 2 MATCH (n:Person) RETURN n.name");
  EXPECT_EQ(at2.rows[0][0].AsString(), "lovelace");

  EXPECT_EQ(Run("USE gdb FOR SYSTEM_TIME AS OF 1 MATCH (n) RETURN count(*)")
                .rows[0][0]
                .AsInt(),
            1);
  EXPECT_EQ(Run("USE gdb FOR SYSTEM_TIME AS OF 3 MATCH (n) RETURN count(*)")
                .rows[0][0]
                .AsInt(),
            2);
}

TEST_F(QueryEngineTest, HistoryRangeQuery) {
  Run("CREATE (a:Doc {v: 1})");                    // ts 1
  Run("MATCH (n:Doc) SET n.v = 2");                // ts 2
  Run("MATCH (n:Doc) SET n.v = 3");                // ts 3
  QueryResult ids = Run("MATCH (n:Doc) RETURN id(n)");
  const int64_t id = ids.rows[0][0].AsInt();

  // Fig 1a shape: BETWEEN returns one row per version in [1, 3).
  QueryResult history =
      Run("USE gdb FOR SYSTEM_TIME BETWEEN 1 AND 3 MATCH (n:Doc) "
          "WHERE id(n) = " + std::to_string(id) + " RETURN n.v");
  ASSERT_EQ(history.NumRows(), 2u);
  EXPECT_EQ(history.rows[0][0].AsInt(), 1);
  EXPECT_EQ(history.rows[1][0].AsInt(), 2);

  // CONTAINED IN includes the right endpoint.
  QueryResult all =
      Run("USE gdb FOR SYSTEM_TIME CONTAINED IN (1, 3) MATCH (n:Doc) "
          "WHERE id(n) = " + std::to_string(id) + " RETURN n.v");
  EXPECT_EQ(all.NumRows(), 3u);
}

TEST_F(QueryEngineTest, BitemporalFilter) {
  Run("CREATE (e:Event {app_start: 100, app_end: 200})");
  Run("CREATE (f:Event {app_start: 300, app_end: 400})");
  QueryResult ids = Run("MATCH (e:Event) WHERE e.app_start = 100 RETURN id(e)");
  const int64_t id = ids.rows[0][0].AsInt();
  QueryResult in_range = Run(
      "USE gdb FOR SYSTEM_TIME AS OF 2 MATCH (e:Event) WHERE id(e) = " +
      std::to_string(id) + " AND APPLICATION_TIME CONTAINED IN (50, 250) "
      "RETURN e");
  EXPECT_EQ(in_range.NumRows(), 1u);
  QueryResult out_of_range = Run(
      "USE gdb FOR SYSTEM_TIME AS OF 2 MATCH (e:Event) WHERE id(e) = " +
      std::to_string(id) + " AND APPLICATION_TIME CONTAINED IN (150, 250) "
      "RETURN e");
  EXPECT_EQ(out_of_range.NumRows(), 0u);
}

TEST_F(QueryEngineTest, ProceduresEndToEnd) {
  Run("CREATE (a {name: 'a'})-[:R]->(b {name: 'b'})-[:R]->(c {name: 'c'})");
  QueryResult ids = Run("MATCH (n {name: 'a'}) RETURN id(n)");
  const int64_t a = ids.rows[0][0].AsInt();

  QueryResult expand = Run("CALL aion.expand(" + std::to_string(a) +
                           ", 'out', 2, 1)");
  EXPECT_EQ(expand.NumRows(), 2u);

  QueryResult stats = Run("CALL aion.graphStats(1)");
  EXPECT_EQ(stats.rows[0][0].AsInt(), 3);
  EXPECT_EQ(stats.rows[0][1].AsInt(), 2);

  QueryResult diff = Run("CALL aion.diffCount(0, 10)");
  EXPECT_EQ(diff.rows[0][0].AsInt(), 5);  // 3 nodes + 2 rels

  QueryResult history = Run("CALL aion.nodeHistory(" + std::to_string(a) +
                            ", 0, 100) YIELD ts_start");
  EXPECT_EQ(history.NumRows(), 1u);
  EXPECT_EQ(history.columns, std::vector<std::string>{"ts_start"});
}

TEST_F(QueryEngineTest, UnknownProcedureFails) {
  auto result = engine_->Execute("CALL no.such.proc()");
  EXPECT_TRUE(result.status().IsNotFound());
}

TEST_F(QueryEngineTest, CustomProcedureRegistration) {
  engine_->RegisterProcedure(
      "test.answer", [](QueryEngine&, const std::vector<Literal>&)
          -> util::StatusOr<QueryResult> {
        QueryResult r;
        r.columns = {"answer"};
        r.rows.push_back({Value(int64_t{42})});
        return r;
      });
  QueryResult result = Run("CALL test.answer()");
  EXPECT_EQ(result.rows[0][0].AsInt(), 42);
}

TEST_F(QueryEngineTest, LimitCapsRows) {
  for (int i = 0; i < 10; ++i) {
    Run("CREATE (n:Many {i: " + std::to_string(i) + "})");
  }
  EXPECT_EQ(Run("MATCH (n:Many) RETURN n LIMIT 3").NumRows(), 3u);
}

TEST_F(QueryEngineTest, CyclePatternRequiresSameBinding) {
  Run("CREATE (a {name: 'a'})-[:R]->(b {name: 'b'})");
  Run("MATCH (x {name: 'b'}), (y {name: 'a'}) RETURN x");  // warm-up parse
  // (a)-[:R]->(b)-[:R]->(a) requires a cycle; none exists.
  EXPECT_EQ(Run("MATCH (a)-[:R]->(b)-[:R]->(a) RETURN a").NumRows(), 0u);
}

TEST_F(QueryEngineTest, IncrementalAvgProcedure) {
  // Relationship property stream over 4 commits.
  Run("CREATE (a {name: 'a'})");
  Run("CREATE (b {name: 'b'})");
  for (int i = 1; i <= 4; ++i) {
    auto txn = db_->Begin();
    graph::PropertySet props;
    props.Set("w", graph::PropertyValue(i * 10));
    txn->CreateRelationship(0, 1, "R", props);
    ASSERT_TRUE(txn->Commit().ok());
  }
  QueryResult result = Run("CALL aion.incremental.avg('w', 2, 6, 2)");
  // Rows at t=4 and t=6: averages over rels committed by then.
  ASSERT_EQ(result.NumRows(), 2u);
  EXPECT_DOUBLE_EQ(result.rows[0][1].AsDouble(), 15.0);  // (10+20)/2
  EXPECT_DOUBLE_EQ(result.rows[1][1].AsDouble(), 25.0);  // all four
}

}  // namespace
}  // namespace aion::query
namespace aion::query {
namespace {

TEST_F(QueryEngineTest, RelationshipsProcedure) {
  Run("CREATE (a {name: 'hub'})");                                   // ts 1
  Run("CREATE (b {name: 'x'})");                                     // ts 2
  QueryResult ids = Run("MATCH (n {name: 'hub'}) RETURN id(n)");
  const int64_t hub = ids.rows[0][0].AsInt();
  ids = Run("MATCH (n {name: 'x'}) RETURN id(n)");
  const int64_t x = ids.rows[0][0].AsInt();
  // ts 3: hub -> x; ts 4: x -> hub.
  {
    auto txn = db_->Begin();
    txn->CreateRelationship(static_cast<graph::NodeId>(hub),
                            static_cast<graph::NodeId>(x), "OUT_REL");
    ASSERT_TRUE(txn->Commit().ok());
  }
  {
    auto txn = db_->Begin();
    txn->CreateRelationship(static_cast<graph::NodeId>(x),
                            static_cast<graph::NodeId>(hub), "IN_REL");
    ASSERT_TRUE(txn->Commit().ok());
  }
  QueryResult out = Run("CALL aion.relationships(" + std::to_string(hub) +
                        ", 'out', 4, 4)");
  ASSERT_EQ(out.NumRows(), 1u);
  QueryResult both = Run("CALL aion.relationships(" + std::to_string(hub) +
                         ", 'both', 4, 4)");
  EXPECT_EQ(both.NumRows(), 2u);
  // Before either relationship existed: empty.
  QueryResult early = Run("CALL aion.relationships(" + std::to_string(hub) +
                          ", 'both', 2, 2)");
  EXPECT_EQ(early.NumRows(), 0u);
  // History window covers both validity intervals.
  QueryResult window = Run("CALL aion.relationships(" + std::to_string(hub) +
                           ", 'both', 0, 100)");
  EXPECT_EQ(window.NumRows(), 2u);
}

TEST_F(QueryEngineTest, RelationshipVariableBindingAndPredicates) {
  Run("CREATE (a {name: 'a'})");
  Run("CREATE (b {name: 'b'})");
  {
    auto txn = db_->Begin();
    graph::PropertySet p1, p2;
    p1.Set("since", graph::PropertyValue(1999));
    p2.Set("since", graph::PropertyValue(2020));
    txn->CreateRelationship(0, 1, "KNOWS", p1);
    txn->CreateRelationship(0, 1, "KNOWS", p2);
    ASSERT_TRUE(txn->Commit().ok());
  }
  QueryResult old_rels = Run(
      "MATCH (a)-[r:KNOWS]->(b) WHERE r.since < 2000 RETURN r.since, id(r)");
  ASSERT_EQ(old_rels.NumRows(), 1u);
  EXPECT_EQ(old_rels.rows[0][0].AsInt(), 1999);
  QueryResult all = Run("MATCH (a)-[r:KNOWS]->(b) RETURN r");
  EXPECT_EQ(all.NumRows(), 2u);
}

}  // namespace
}  // namespace aion::query
namespace aion::query {
namespace {

TEST_F(QueryEngineTest, DbmsMetricsProcedureIsConsistent) {
  Run("CREATE (a:Person {name: 'ada', age: 36})");
  Run("CREATE (b:Person {name: 'bob', age: 17})");
  Run("MATCH (p:Person) RETURN p.name");  // latest-graph plan
  Run("USE gdb FOR SYSTEM_TIME AS OF 1 MATCH (n) RETURN count(*)");  // snapshot

  QueryResult metrics = Run("CALL dbms.metrics()");
  ASSERT_EQ(metrics.columns,
            (std::vector<std::string>{"name", "kind", "value"}));
  std::map<std::string, int64_t> values;
  for (const auto& row : metrics.rows) {
    values[row[0].AsString()] = row[2].AsInt();
  }
  // Store introspection rows lead the listing.
  EXPECT_EQ(values["aion.last_ingested_ts"], 2);
  EXPECT_EQ(values["aion.timestore.enabled"], 1);
  EXPECT_EQ(values["aion.lineagestore.enabled"], 1);
  // Every layer reported non-zero activity into the shared registry.
  EXPECT_EQ(values["ingest.batches"], 2);
  EXPECT_GE(values["query.statements"], 4);
  EXPECT_GT(values["timestore.appends"], 0);
  EXPECT_GT(values["query.execute_nanos.count"], 0);
  // Internal consistency: cascade watermark never ahead of ingestion, and
  // every GraphStore request classified as exactly one of hit/miss.
  EXPECT_LE(values["cascade.applied_ts"], values["ingest.last_ts"]);
  EXPECT_EQ(values["graphstore.requests"],
            values["graphstore.hits"] + values["graphstore.misses"]);
}

TEST_F(QueryEngineTest, EachMatchRecordsExactlyOneStoreOutcome) {
  Run("CREATE (a:Person {name: 'ada'})");
  const obs::MetricsSnapshot before = engine_->metrics()->Snapshot();
  Run("MATCH (p:Person) RETURN p.name");                              // latest
  Run("USE gdb FOR SYSTEM_TIME AS OF 1 MATCH (n) RETURN count(*)");   // time
  Run("USE gdb FOR SYSTEM_TIME AS OF 1 MATCH (n) WHERE id(n) = 0 "
      "RETURN n");                                                    // point
  const obs::MetricsSnapshot after = engine_->metrics()->Snapshot();
  auto delta = [&](const char* name) {
    return after.counter(name) - before.counter(name);
  };
  EXPECT_EQ(delta("query.store.latest") + delta("query.store.timestore") +
                delta("query.store.lineage"),
            3u);
  EXPECT_EQ(delta("query.store.latest"), 1u);
}

TEST_F(QueryEngineTest, DbmsTracesExposesSpans) {
  Run("CREATE (a:X)");
  Run("MATCH (n:X) RETURN count(*)");
  QueryResult traces = Run("CALL dbms.traces()");
  ASSERT_EQ(traces.columns,
            (std::vector<std::string>{"span", "start_nanos", "duration_nanos",
                                      "thread", "span_id", "parent_id",
                                      "query_id"}));
  bool saw_query_span = false;
  for (const auto& row : traces.rows) {
    if (row[0].AsString() == "query.execute") {
      saw_query_span = true;
      EXPECT_GT(row[4].AsInt(), 0);  // span ids start at 1
      EXPECT_GT(row[6].AsInt(), 0);  // executed inside a TraceContext
    }
  }
  EXPECT_TRUE(saw_query_span);
}

}  // namespace
}  // namespace aion::query
namespace aion::query {
namespace {

// Column order emitted by ExecuteProfile; indices used by the tests below.
constexpr int kProfOp = 0, kProfStore = 2, kProfRows = 3, kProfNanos = 10;

std::vector<std::string> Operators(const QueryResult& result) {
  std::vector<std::string> ops;
  for (const auto& row : result.rows) ops.push_back(row[0].AsString());
  return ops;
}

bool Contains(const std::vector<std::string>& ops, const std::string& op) {
  return std::find(ops.begin(), ops.end(), op) != ops.end();
}

TEST_F(QueryEngineTest, ExplainDescribesPlanWithoutExecuting) {
  Run("CREATE (a:Person {name: 'ada'})");
  QueryResult plan = Run("EXPLAIN MATCH (p:Person) RETURN p.name");
  ASSERT_EQ(plan.columns, (std::vector<std::string>{"operator", "depth",
                                                    "detail", "store",
                                                    "temporal"}));
  const std::vector<std::string> ops = Operators(plan);
  EXPECT_TRUE(Contains(ops, "ProduceResults"));
  EXPECT_TRUE(Contains(ops, "NodeScan"));
  // Depths increase down the pre-order tree.
  EXPECT_EQ(plan.rows.front()[1].AsInt(), 0);
  EXPECT_GT(plan.rows.back()[1].AsInt(), 0);
  // Every row carries the store and temporal columns.
  for (const auto& row : plan.rows) {
    EXPECT_EQ(row[3].AsString(), "latest");
    EXPECT_EQ(row[4].AsString(), "latest");
  }
}

TEST_F(QueryEngineTest, ExplainWriteDoesNotExecuteIt) {
  QueryResult plan = Run("EXPLAIN CREATE (g:Ghost {name: 'boo'})");
  EXPECT_TRUE(Contains(Operators(plan), "Create"));
  // The CREATE was planned, not run: no Ghost node exists.
  EXPECT_EQ(Run("MATCH (g:Ghost) RETURN count(*)").rows[0][0].AsInt(), 0);
}

TEST_F(QueryEngineTest, ExplainShowsTemporalPlanAndStoreChoice) {
  Run("CREATE (a:Person {name: 'ada'})");  // ts 1
  QueryResult snap =
      Run("EXPLAIN USE gdb FOR SYSTEM_TIME AS OF 1 MATCH (n) "
          "RETURN count(*)");
  EXPECT_TRUE(Contains(Operators(snap), "SnapshotLoad"));
  EXPECT_EQ(snap.rows.front()[3].AsString(), "timestore");
  EXPECT_EQ(snap.rows.front()[4].AsString(), "AS OF 1");

  QueryResult point =
      Run("EXPLAIN USE gdb FOR SYSTEM_TIME AS OF 1 MATCH (n) "
          "WHERE id(n) = 0 RETURN n");
  EXPECT_TRUE(Contains(Operators(point), "NodeHistoryScan"));
  EXPECT_EQ(point.rows.front()[3].AsString(), "lineage");
}

TEST_F(QueryEngineTest, ProfileAnnotatesLatestGraphPlan) {
  Run("CREATE (a:Person {name: 'ada'})");
  Run("CREATE (b:Person {name: 'bob'})");
  QueryResult profile = Run("PROFILE MATCH (p:Person) RETURN p.name");
  ASSERT_EQ(profile.columns,
            (std::vector<std::string>{
                "operator", "detail", "store", "rows", "bptree_probes",
                "records_replayed", "graphstore_hits", "graphstore_misses",
                "pagecache_hits", "pagecache_misses", "nanos"}));
  const std::vector<std::string> ops = Operators(profile);
  EXPECT_TRUE(Contains(ops, "NodeScan"));
  EXPECT_TRUE(Contains(ops, "ProduceResults"));
  ASSERT_EQ(profile.rows.back()[kProfOp].AsString(), "Total");
  const auto& total = profile.rows.back();
  EXPECT_EQ(total[kProfStore].AsString(), "latest");
  EXPECT_EQ(total[kProfRows].AsInt(), 2);  // PROFILE really executed
  EXPECT_GT(total[kProfNanos].AsInt(), 0);
  // Per-operator nanos are sane: each stage is bounded by the total.
  for (const auto& row : profile.rows) {
    EXPECT_GE(row[kProfNanos].AsInt(), 0);
    EXPECT_LE(row[kProfNanos].AsInt(), total[kProfNanos].AsInt());
  }
}

TEST_F(QueryEngineTest, ProfileRoutesToTimeStoreAndLineage) {
  Run("CREATE (a:Person {name: 'ada'})");  // ts 1
  Run("CREATE (b:City {name: 'berlin'})");  // ts 2

  // Snapshot plan: reconstructed through the TimeStore.
  QueryResult snap = Run(
      "PROFILE USE gdb FOR SYSTEM_TIME AS OF 1 MATCH (n) RETURN count(*)");
  EXPECT_TRUE(Contains(Operators(snap), "SnapshotLoad"));
  EXPECT_EQ(snap.rows.back()[kProfStore].AsString(), "timestore");
  EXPECT_EQ(snap.rows.back()[kProfRows].AsInt(), 1);

  // Point-history plan: served by the LineageStore (sync cascade).
  QueryResult point = Run(
      "PROFILE USE gdb FOR SYSTEM_TIME AS OF 1 MATCH (n) WHERE id(n) = 0 "
      "RETURN n");
  EXPECT_TRUE(Contains(Operators(point), "NodeHistoryScan"));
  EXPECT_EQ(point.rows.back()[kProfStore].AsString(), "lineage");
  EXPECT_EQ(point.rows.back()[kProfRows].AsInt(), 1);
}

TEST_F(QueryEngineTest, ProfileAttributionNeverExceedsGlobalDeltas) {
  Run("CREATE (a:Person {name: 'ada'})");
  Run("CREATE (b:Person {name: 'bob'})");
  const obs::MetricsSnapshot before = engine_->metrics()->Snapshot();
  obs::QueryStats attributed;
  auto accumulate = [&](const QueryResult& profile) {
    const auto& total = profile.rows.back();
    ASSERT_EQ(total[kProfOp].AsString(), "Total");
    attributed.bptree_probes += total[4].AsInt();
    attributed.records_replayed += total[5].AsInt();
    attributed.graphstore_hits += total[6].AsInt();
    attributed.graphstore_misses += total[7].AsInt();
    attributed.pagecache_hits += total[8].AsInt();
    attributed.pagecache_misses += total[9].AsInt();
  };
  accumulate(Run("PROFILE MATCH (p:Person) RETURN p.name"));
  accumulate(Run(
      "PROFILE USE gdb FOR SYSTEM_TIME AS OF 1 MATCH (n) RETURN count(*)"));
  accumulate(Run(
      "PROFILE USE gdb FOR SYSTEM_TIME AS OF 1 MATCH (n) WHERE id(n) = 0 "
      "RETURN n"));
  const obs::MetricsSnapshot after = engine_->metrics()->Snapshot();
  auto delta = [&](const char* name) {
    return after.counter(name) - before.counter(name);
  };
  // Thread-local attribution can only undercount the global registry
  // (worker-thread replay is intentionally unattributed), never overcount.
  EXPECT_LE(attributed.graphstore_hits + attributed.graphstore_misses,
            delta("graphstore.hits") + delta("graphstore.misses"));
  EXPECT_LE(attributed.records_replayed, delta("timestore.replayed_updates"));
  EXPECT_LE(attributed.pagecache_hits, delta("pagecache.hits"));
  EXPECT_LE(attributed.pagecache_misses, delta("pagecache.misses"));
}

TEST_F(QueryEngineTest, DbmsMetricsResetZeroesTheRegistry) {
  Run("CREATE (a:Person {name: 'ada'})");
  Run("MATCH (p:Person) RETURN p.name");
  EXPECT_GT(engine_->metrics()->Snapshot().counter("query.statements"), 0u);
  QueryResult reset = Run("CALL dbms.metrics.reset()");
  ASSERT_EQ(reset.columns, std::vector<std::string>{"reset"});
  // The reset call itself runs after the wipe, so at most a couple of
  // statements have ticked since.
  EXPECT_LE(engine_->metrics()->Snapshot().counter("query.statements"), 2u);
  // Resolved pointers stayed valid: new queries keep recording.
  Run("MATCH (p:Person) RETURN p.name");
  EXPECT_GT(engine_->metrics()->Snapshot().counter("query.statements"), 0u);
}

TEST_F(QueryEngineTest, DbmsTraceExportIsChromeLoadableJson) {
  Run("CREATE (a:X)");
  Run("MATCH (n:X) RETURN count(*)");
  QueryResult exported = Run("CALL dbms.trace.export()");
  ASSERT_EQ(exported.columns, std::vector<std::string>{"trace"});
  ASSERT_EQ(exported.NumRows(), 1u);
  const std::string json = exported.rows[0][0].AsString();
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("query.execute"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST_F(QueryEngineTest, SlowlogEmptyWhenDisabled) {
  Run("CREATE (a:Person {name: 'ada'})");
  Run("MATCH (p:Person) RETURN p.name");
  EXPECT_FALSE(aion_->slow_query_log()->enabled());
  QueryResult slowlog = Run("CALL dbms.slowlog()");
  ASSERT_EQ(slowlog.columns,
            (std::vector<std::string>{"unix_millis", "query_id", "session_id",
                                      "nanos", "store", "query", "summary"}));
  EXPECT_EQ(slowlog.NumRows(), 0u);
}

TEST_F(QueryEngineTest, SlowlogCapturesQueriesAboveThreshold) {
  // A second store with a 1ns threshold: every statement qualifies.
  core::AionStore::Options options;
  options.dir = dir_ + "/slow_aion";
  options.lineage_mode = core::AionStore::LineageMode::kSync;
  options.slow_query_threshold_nanos = 1;
  auto slow_aion = core::AionStore::Open(options);
  ASSERT_TRUE(slow_aion.ok());
  auto db = txn::GraphDatabase::OpenInMemory();
  ASSERT_TRUE(db.ok());
  (*db)->RegisterListener(slow_aion->get());
  QueryEngine engine(db->get(), slow_aion->get());
  ASSERT_TRUE(engine.Execute("CREATE (a:Person {name: 'ada'})").ok());
  ASSERT_TRUE(engine.Execute("MATCH (p:Person) RETURN p.name").ok());
  ASSERT_TRUE(
      engine.Execute("USE gdb FOR SYSTEM_TIME AS OF 1 MATCH (n) "
                     "WHERE id(n) = 0 RETURN n")
          .ok());

  auto slowlog = engine.Execute("CALL dbms.slowlog()");
  ASSERT_TRUE(slowlog.ok());
  ASSERT_GE(slowlog->NumRows(), 3u);
  std::map<std::string, std::string> store_by_query;
  for (const auto& row : slowlog->rows) {
    EXPECT_GT(row[1].AsInt(), 0);  // query_id joins dbms.traces()/capture
    EXPECT_EQ(row[2].AsInt(), 0);  // embedded session
    EXPECT_GT(row[3].AsInt(), 0);  // recorded wall time
    store_by_query[row[5].AsString()] = row[4].AsString();
  }
  EXPECT_EQ(store_by_query["MATCH (p:Person) RETURN p.name"], "latest");
  EXPECT_EQ(store_by_query["USE gdb FOR SYSTEM_TIME AS OF 1 MATCH (n) "
                           "WHERE id(n) = 0 RETURN n"],
            "lineage");
  // The JSON-lines file exists alongside the store directory.
  EXPECT_GT(slow_aion->get()->slow_query_log()->total_recorded(), 0u);
}

}  // namespace
}  // namespace aion::query
