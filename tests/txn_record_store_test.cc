#include "txn/record_store.h"

#include <gtest/gtest.h>

#include "storage/file.h"
#include "txn/graphdb.h"

namespace aion::txn {
namespace {

using graph::GraphUpdate;
using graph::PropertyValue;

class RecordStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = storage::MakeTempDir("aion_rs_test_");
    ASSERT_TRUE(dir.ok());
    dir_ = *dir;
  }
  void TearDown() override { (void)storage::RemoveDirRecursively(dir_); }
  std::string dir_;
};

graph::MemoryGraph SampleGraph() {
  graph::MemoryGraph g;
  graph::PropertySet props;
  props.Set("name", PropertyValue("ada"));
  props.Set("age", PropertyValue(36));
  EXPECT_TRUE(g.Apply(GraphUpdate::AddNode(0, {"Person"}, props)).ok());
  EXPECT_TRUE(g.Apply(GraphUpdate::AddNode(2, {"A", "B", "C", "D", "E"})).ok());
  graph::PropertySet rel_props;
  rel_props.Set("since", PropertyValue(1999));
  EXPECT_TRUE(
      g.Apply(GraphUpdate::AddRelationship(1, 0, 2, "KNOWS", rel_props)).ok());
  return g;
}

TEST_F(RecordStoreTest, WriteReadRoundTrip) {
  graph::MemoryGraph g = SampleGraph();
  ASSERT_TRUE(RecordStore::Write(g, 42, dir_ + "/store").ok());
  EXPECT_TRUE(RecordStore::Exists(dir_ + "/store"));
  graph::Timestamp ts = 0;
  auto loaded = RecordStore::Read(dir_ + "/store", &ts);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(ts, 42u);
  EXPECT_TRUE(g.SameGraphAs(**loaded));
  // Overflowed label list (5 labels > 4 inline slots) survives.
  EXPECT_EQ((*loaded)->GetNode(2)->labels.size(), 5u);
  // Sparse id 1 (hole in node ids) stays a hole.
  EXPECT_EQ((*loaded)->GetNode(1), nullptr);
}

TEST_F(RecordStoreTest, MissingCheckpointIsNotFound) {
  graph::Timestamp ts;
  EXPECT_TRUE(RecordStore::Read(dir_ + "/none", &ts).status().IsNotFound());
  EXPECT_FALSE(RecordStore::Exists(dir_ + "/none"));
  EXPECT_EQ(RecordStore::SizeBytes(dir_ + "/none"), 0u);
}

TEST_F(RecordStoreTest, RewriteReplacesCheckpoint) {
  graph::MemoryGraph g = SampleGraph();
  ASSERT_TRUE(RecordStore::Write(g, 1, dir_ + "/store").ok());
  ASSERT_TRUE(g.Apply(GraphUpdate::AddNode(7)).ok());
  ASSERT_TRUE(RecordStore::Write(g, 2, dir_ + "/store").ok());
  graph::Timestamp ts;
  auto loaded = RecordStore::Read(dir_ + "/store", &ts);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(ts, 2u);
  EXPECT_EQ((*loaded)->NumNodes(), 3u);
}

TEST_F(RecordStoreTest, SizeBytesScalesWithGraph) {
  graph::MemoryGraph small = SampleGraph();
  ASSERT_TRUE(RecordStore::Write(small, 1, dir_ + "/small").ok());
  graph::MemoryGraph big;
  for (graph::NodeId i = 0; i < 500; ++i) {
    ASSERT_TRUE(big.Apply(GraphUpdate::AddNode(i)).ok());
  }
  ASSERT_TRUE(RecordStore::Write(big, 1, dir_ + "/big").ok());
  EXPECT_GT(RecordStore::SizeBytes(dir_ + "/big"),
            RecordStore::SizeBytes(dir_ + "/small") * 5);
}

TEST_F(RecordStoreTest, DatabaseCheckpointAndRecover) {
  GraphDatabase::Options options;
  options.data_dir = dir_ + "/db";
  graph::NodeId a = 0, b = 0;
  {
    auto db = GraphDatabase::Open(options);
    ASSERT_TRUE(db.ok());
    auto txn = (*db)->Begin();
    a = txn->CreateNode({"X"});
    ASSERT_TRUE(txn->Commit().ok());
    ASSERT_TRUE((*db)->Checkpoint().ok());
    EXPECT_GT((*db)->CheckpointBytes(), 0u);
    // A commit after the checkpoint lands only in the WAL.
    auto txn2 = (*db)->Begin();
    b = txn2->CreateNode({"Y"});
    ASSERT_TRUE(txn2->Commit().ok());
  }
  // Recovery = checkpoint + WAL tail; ids and clock continue correctly.
  auto db = GraphDatabase::Open(options);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->NumNodes(), 2u);
  EXPECT_TRUE((*db)->GetNode(a)->HasLabel("X"));
  EXPECT_TRUE((*db)->GetNode(b)->HasLabel("Y"));
  EXPECT_EQ((*db)->LastCommitTimestamp(), 2u);
  auto txn = (*db)->Begin();
  EXPECT_GT(txn->CreateNode(), b);
  ASSERT_TRUE(txn->Commit().ok());
  EXPECT_GT((*db)->TotalDiskBytes(), (*db)->CheckpointBytes());
}

TEST_F(RecordStoreTest, InMemoryDatabaseCannotCheckpoint) {
  auto db = GraphDatabase::OpenInMemory();
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE((*db)->Checkpoint().IsFailedPrecondition());
  EXPECT_EQ((*db)->CheckpointBytes(), 0u);
}

}  // namespace
}  // namespace aion::txn
