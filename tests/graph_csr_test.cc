#include "graph/csr.h"

#include <gtest/gtest.h>

#include <set>

#include "graph/memgraph.h"
#include "graph/update.h"

namespace aion::graph {
namespace {

MemoryGraph Diamond() {
  // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3 with sparse ids (holes at 4..9).
  MemoryGraph g;
  for (NodeId id : {0, 1, 2, 3, 10}) {
    EXPECT_TRUE(g.Apply(GraphUpdate::AddNode(id)).ok());
  }
  EXPECT_TRUE(g.Apply(GraphUpdate::AddRelationship(0, 0, 1, "R")).ok());
  EXPECT_TRUE(g.Apply(GraphUpdate::AddRelationship(1, 0, 2, "R")).ok());
  EXPECT_TRUE(g.Apply(GraphUpdate::AddRelationship(2, 1, 3, "R")).ok());
  EXPECT_TRUE(g.Apply(GraphUpdate::AddRelationship(3, 2, 3, "R")).ok());
  return g;
}

TEST(CsrTest, StructureMatchesGraph) {
  MemoryGraph g = Diamond();
  CsrGraph csr = CsrGraph::Build(g);
  EXPECT_EQ(csr.num_nodes(), 5u);
  EXPECT_EQ(csr.num_edges(), 4u);
  const uint32_t d0 = csr.ToDense(0);
  size_t count;
  const uint32_t* nbrs = csr.Neighbors(d0, &count);
  ASSERT_EQ(count, 2u);
  std::set<NodeId> targets = {csr.ToSparse(nbrs[0]), csr.ToSparse(nbrs[1])};
  EXPECT_EQ(targets, (std::set<NodeId>{1, 2}));
  EXPECT_EQ(csr.OutDegree(csr.ToDense(10)), 0u);
  EXPECT_EQ(csr.OutDegree(csr.ToDense(3)), 0u);
}

TEST(CsrTest, ReverseCsr) {
  MemoryGraph g = Diamond();
  CsrGraph csr = CsrGraph::Build(g);
  const uint32_t d3 = csr.ToDense(3);
  size_t count;
  const uint32_t* in = csr.InNeighbors(d3, &count);
  ASSERT_EQ(count, 2u);
  std::set<NodeId> sources = {csr.ToSparse(in[0]), csr.ToSparse(in[1])};
  EXPECT_EQ(sources, (std::set<NodeId>{1, 2}));
  EXPECT_EQ(csr.InDegree(csr.ToDense(0)), 0u);
}

TEST(CsrTest, DenseMapRoundTrip) {
  MemoryGraph g = Diamond();
  CsrGraph csr = CsrGraph::Build(g);
  for (NodeId sparse : {0ULL, 1ULL, 2ULL, 3ULL, 10ULL}) {
    EXPECT_EQ(csr.ToSparse(csr.ToDense(sparse)), sparse);
  }
}

TEST(CsrTest, WeightsFromProperty) {
  MemoryGraph g;
  ASSERT_TRUE(g.Apply(GraphUpdate::AddNode(0)).ok());
  ASSERT_TRUE(g.Apply(GraphUpdate::AddNode(1)).ok());
  PropertySet p;
  p.Set("w", PropertyValue(2.5));
  ASSERT_TRUE(g.Apply(GraphUpdate::AddRelationship(0, 0, 1, "R", p)).ok());
  ASSERT_TRUE(g.Apply(GraphUpdate::AddRelationship(1, 0, 1, "R")).ok());
  CsrGraph csr = CsrGraph::Build(g, "w");
  const uint32_t d0 = csr.ToDense(0);
  size_t count;
  csr.Neighbors(d0, &count);
  ASSERT_EQ(count, 2u);
  // One edge has weight 2.5, the other defaults to 1.0.
  std::multiset<double> weights = {csr.Weight(d0, 0), csr.Weight(d0, 1)};
  EXPECT_EQ(weights, (std::multiset<double>{1.0, 2.5}));
}

TEST(CsrTest, UnweightedDefaultsToOne) {
  MemoryGraph g = Diamond();
  CsrGraph csr = CsrGraph::Build(g);
  EXPECT_DOUBLE_EQ(csr.Weight(csr.ToDense(0), 0), 1.0);
}

TEST(CsrTest, EmptyGraph) {
  MemoryGraph g;
  CsrGraph csr = CsrGraph::Build(g);
  EXPECT_EQ(csr.num_nodes(), 0u);
  EXPECT_EQ(csr.num_edges(), 0u);
}

TEST(CsrTest, EdgeConservation) {
  MemoryGraph g = Diamond();
  CsrGraph csr = CsrGraph::Build(g);
  size_t out_total = 0, in_total = 0;
  for (uint32_t u = 0; u < csr.num_nodes(); ++u) {
    out_total += csr.OutDegree(u);
    in_total += csr.InDegree(u);
  }
  EXPECT_EQ(out_total, csr.num_edges());
  EXPECT_EQ(in_total, csr.num_edges());
}

}  // namespace
}  // namespace aion::graph
