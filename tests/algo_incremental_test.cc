#include "algo/incremental.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/memgraph.h"
#include "util/random.h"

namespace aion::algo {
namespace {

using graph::GraphUpdate;
using graph::MemoryGraph;
using graph::NodeId;
using graph::RelId;

TEST(IncrementalAverageTest, AddsAndUpdates) {
  IncrementalAverage avg("amount");
  graph::PropertySet p10;
  p10.Set("amount", graph::PropertyValue(10));
  GraphUpdate add = GraphUpdate::AddRelationship(0, 0, 1, "R", p10);
  avg.ApplyDiff({add});
  EXPECT_DOUBLE_EQ(avg.Average(), 10.0);
  EXPECT_EQ(avg.count(), 1u);

  avg.ApplyDiff({GraphUpdate::SetRelationshipProperty(
      0, "amount", graph::PropertyValue(20))});
  EXPECT_DOUBLE_EQ(avg.Average(), 20.0);
  EXPECT_EQ(avg.count(), 1u);  // replaced, not added

  graph::PropertySet p30;
  p30.Set("amount", graph::PropertyValue(30));
  avg.ApplyDiff({GraphUpdate::AddRelationship(1, 1, 0, "R", p30)});
  EXPECT_DOUBLE_EQ(avg.Average(), 25.0);
}

TEST(IncrementalAverageTest, DeletionsRetract) {
  IncrementalAverage avg("v");
  graph::PropertySet p1, p2;
  p1.Set("v", graph::PropertyValue(4));
  p2.Set("v", graph::PropertyValue(8));
  avg.ApplyDiff({GraphUpdate::AddRelationship(0, 0, 1, "R", p1),
                 GraphUpdate::AddRelationship(1, 0, 1, "R", p2)});
  EXPECT_DOUBLE_EQ(avg.Average(), 6.0);
  avg.ApplyDiff({GraphUpdate::DeleteRelationship(0)});
  EXPECT_DOUBLE_EQ(avg.Average(), 8.0);
  EXPECT_EQ(avg.count(), 1u);
  avg.ApplyDiff({GraphUpdate::RemoveRelationshipProperty(1, "v")});
  EXPECT_EQ(avg.count(), 0u);
  EXPECT_DOUBLE_EQ(avg.Average(), 0.0);
}

TEST(IncrementalAverageTest, IgnoresOtherKeysAndMissingProps) {
  IncrementalAverage avg("v");
  avg.ApplyDiff({GraphUpdate::AddRelationship(0, 0, 1, "R"),
                 GraphUpdate::SetRelationshipProperty(
                     0, "other", graph::PropertyValue(99))});
  EXPECT_EQ(avg.count(), 0u);
}

TEST(IncrementalAverageTest, MatchesFullScanOnRandomStream) {
  util::Random rng(17);
  MemoryGraph g;
  IncrementalAverage avg("w");
  for (NodeId i = 0; i < 20; ++i) {
    ASSERT_TRUE(g.Apply(GraphUpdate::AddNode(i)).ok());
  }
  std::vector<RelId> live;
  RelId next = 0;
  for (int round = 0; round < 50; ++round) {
    std::vector<GraphUpdate> batch;
    for (int i = 0; i < 10; ++i) {
      const double dice = rng.NextDouble();
      if (dice < 0.5 || live.empty()) {
        graph::PropertySet p;
        if (rng.Bernoulli(0.8)) {
          p.Set("w", graph::PropertyValue(
                         static_cast<double>(rng.Uniform(100))));
        }
        batch.push_back(GraphUpdate::AddRelationship(
            next, rng.Uniform(20), rng.Uniform(20), "R", p));
        live.push_back(next++);
      } else if (dice < 0.75) {
        const RelId r = live[rng.Uniform(live.size())];
        batch.push_back(GraphUpdate::SetRelationshipProperty(
            r, "w", graph::PropertyValue(static_cast<double>(
                        rng.Uniform(100)))));
      } else {
        const size_t idx = rng.Uniform(live.size());
        batch.push_back(GraphUpdate::DeleteRelationship(live[idx]));
        live.erase(live.begin() + static_cast<long>(idx));
      }
    }
    ASSERT_TRUE(g.ApplyAll(batch).ok());
    avg.ApplyDiff(batch);
    const AggregateResult full = AggregateRelationshipProperty(g, "w");
    EXPECT_EQ(avg.count(), full.count) << "round " << round;
    EXPECT_NEAR(avg.sum(), full.sum, 1e-9) << "round " << round;
  }
}

TEST(IncrementalBfsTest, InsertionsRelaxLevels) {
  MemoryGraph g;
  for (NodeId i = 0; i < 5; ++i) {
    ASSERT_TRUE(g.Apply(GraphUpdate::AddNode(i)).ok());
  }
  ASSERT_TRUE(g.Apply(GraphUpdate::AddRelationship(0, 0, 1, "R")).ok());
  ASSERT_TRUE(g.Apply(GraphUpdate::AddRelationship(1, 1, 2, "R")).ok());
  ASSERT_TRUE(g.Apply(GraphUpdate::AddRelationship(2, 2, 3, "R")).ok());
  IncrementalBfs bfs(0);
  bfs.Recompute(g);
  EXPECT_EQ(bfs.LevelOf(3), 3u);
  EXPECT_EQ(bfs.LevelOf(4), kUnreachable);

  // Shortcut 0 -> 3 drops node 3 to level 1.
  std::vector<GraphUpdate> diff = {GraphUpdate::AddRelationship(3, 0, 3, "R")};
  ASSERT_TRUE(g.ApplyAll(diff).ok());
  bfs.ApplyDiff(g, diff);
  EXPECT_EQ(bfs.LevelOf(3), 1u);
  EXPECT_EQ(bfs.LevelOf(2), 2u);  // unchanged

  // Attach node 4 downstream of 3.
  diff = {GraphUpdate::AddRelationship(4, 3, 4, "R")};
  ASSERT_TRUE(g.ApplyAll(diff).ok());
  bfs.ApplyDiff(g, diff);
  EXPECT_EQ(bfs.LevelOf(4), 2u);
}

TEST(IncrementalBfsTest, DeletionsTagAndReset) {
  MemoryGraph g;
  for (NodeId i = 0; i < 5; ++i) {
    ASSERT_TRUE(g.Apply(GraphUpdate::AddNode(i)).ok());
  }
  // Diamond with long way round: 0->1->2->3 and 0->3 shortcut, 3->4.
  ASSERT_TRUE(g.Apply(GraphUpdate::AddRelationship(0, 0, 1, "R")).ok());
  ASSERT_TRUE(g.Apply(GraphUpdate::AddRelationship(1, 1, 2, "R")).ok());
  ASSERT_TRUE(g.Apply(GraphUpdate::AddRelationship(2, 2, 3, "R")).ok());
  ASSERT_TRUE(g.Apply(GraphUpdate::AddRelationship(3, 0, 3, "R")).ok());
  ASSERT_TRUE(g.Apply(GraphUpdate::AddRelationship(4, 3, 4, "R")).ok());
  IncrementalBfs bfs(0);
  bfs.Recompute(g);
  EXPECT_EQ(bfs.LevelOf(3), 1u);
  EXPECT_EQ(bfs.LevelOf(4), 2u);

  // Remove the shortcut: 3 reverts to level 3, 4 to level 4.
  GraphUpdate del = GraphUpdate::DeleteRelationship(3);
  del.src = 0;
  del.tgt = 3;
  ASSERT_TRUE(g.Apply(del).ok());
  bfs.ApplyDiff(g, {del});
  EXPECT_EQ(bfs.LevelOf(3), 3u);
  EXPECT_EQ(bfs.LevelOf(4), 4u);

  // Disconnect 1: everything downstream of the deleted edge unreachable.
  GraphUpdate del2 = GraphUpdate::DeleteRelationship(0);
  del2.src = 0;
  del2.tgt = 1;
  ASSERT_TRUE(g.Apply(del2).ok());
  bfs.ApplyDiff(g, {del2});
  EXPECT_EQ(bfs.LevelOf(1), kUnreachable);
  EXPECT_EQ(bfs.LevelOf(2), kUnreachable);
  EXPECT_EQ(bfs.LevelOf(3), kUnreachable);
  EXPECT_EQ(bfs.LevelOf(4), kUnreachable);
  EXPECT_EQ(bfs.LevelOf(0), 0u);
}

// Property: incremental BFS equals full recomputation after every batch of
// random insertions and deletions.
class IncrementalBfsFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalBfsFuzzTest, MatchesFullRecompute) {
  util::Random rng(static_cast<uint64_t>(GetParam()) * 13 + 5);
  MemoryGraph g;
  constexpr NodeId kNodes = 40;
  for (NodeId i = 0; i < kNodes; ++i) {
    ASSERT_TRUE(g.Apply(GraphUpdate::AddNode(i)).ok());
  }
  IncrementalBfs bfs(0);
  bfs.Recompute(g);
  std::vector<RelId> live;
  RelId next = 0;
  for (int round = 0; round < 40; ++round) {
    std::vector<GraphUpdate> batch;
    for (int i = 0; i < 6; ++i) {
      if (rng.NextDouble() < 0.6 || live.empty()) {
        const NodeId s = rng.Uniform(kNodes);
        const NodeId t = rng.Uniform(kNodes);
        batch.push_back(GraphUpdate::AddRelationship(next, s, t, "R"));
        live.push_back(next++);
      } else {
        const size_t idx = rng.Uniform(live.size());
        const RelId r = live[idx];
        const graph::Relationship* rel = g.GetRelationship(r);
        // The diff carries resolved endpoints (as Aion's Ingest ensures).
        GraphUpdate del = GraphUpdate::DeleteRelationship(r);
        // rel may already be scheduled for deletion in this batch.
        bool already = rel == nullptr;
        for (const GraphUpdate& b : batch) {
          if (b.op == graph::UpdateOp::kDeleteRelationship && b.id == r) {
            already = true;
          }
        }
        if (already) continue;
        del.src = rel->src;
        del.tgt = rel->tgt;
        batch.push_back(del);
        live.erase(live.begin() + static_cast<long>(idx));
      }
    }
    ASSERT_TRUE(g.ApplyAll(batch).ok());
    bfs.ApplyDiff(g, batch);

    IncrementalBfs reference(0);
    reference.Recompute(g);
    for (NodeId n = 0; n < kNodes; ++n) {
      ASSERT_EQ(bfs.LevelOf(n), reference.LevelOf(n))
          << "node " << n << " round " << round;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalBfsFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(IncrementalPageRankTest, DiffBasedMatchesColdRecompute) {
  util::Random rng(23);
  MemoryGraph g;
  for (NodeId i = 0; i < 100; ++i) {
    ASSERT_TRUE(g.Apply(GraphUpdate::AddNode(i)).ok());
  }
  RelId next = 0;
  std::vector<GraphUpdate> batch;
  for (int i = 0; i < 400; ++i) {
    batch.push_back(GraphUpdate::AddRelationship(next++, rng.Uniform(100),
                                                 rng.Uniform(100), "R"));
  }
  ASSERT_TRUE(g.ApplyAll(batch).ok());

  PageRankOptions options;
  options.epsilon = 1e-9;
  options.max_iterations = 1000;
  IncrementalPageRank incremental(options);
  incremental.Recompute(g);
  EXPECT_EQ(incremental.last_pushes(), 0u);

  // Small change: a handful of edge insertions, folded incrementally.
  batch.clear();
  for (int i = 0; i < 5; ++i) {
    batch.push_back(GraphUpdate::AddRelationship(next++, rng.Uniform(100),
                                                 rng.Uniform(100), "R"));
  }
  ASSERT_TRUE(g.ApplyAll(batch).ok());
  incremental.ApplyDiff(g, batch);
  EXPECT_GT(incremental.last_pushes(), 0u);

  // Ranks equal a tightly-converged cold recomputation within tolerance.
  graph::CsrGraph csr = graph::CsrGraph::Build(g);
  PageRankOptions tight = options;
  tight.epsilon = 1e-12;
  auto cold = PageRank(csr, tight);
  for (uint32_t d = 0; d < csr.num_nodes(); ++d) {
    EXPECT_NEAR(incremental.RankOf(csr.ToSparse(d)), cold.ranks[d], 1e-4);
  }
}

TEST(IncrementalPageRankTest, DeletionsPropagate) {
  util::Random rng(29);
  MemoryGraph g;
  for (NodeId i = 0; i < 50; ++i) {
    ASSERT_TRUE(g.Apply(GraphUpdate::AddNode(i)).ok());
  }
  RelId next = 0;
  std::vector<RelId> live;
  std::vector<GraphUpdate> batch;
  for (int i = 0; i < 200; ++i) {
    batch.push_back(GraphUpdate::AddRelationship(next, rng.Uniform(50),
                                                 rng.Uniform(50), "R"));
    live.push_back(next++);
  }
  ASSERT_TRUE(g.ApplyAll(batch).ok());
  PageRankOptions options;
  options.epsilon = 1e-9;
  options.max_iterations = 1000;
  IncrementalPageRank incremental(options);
  incremental.Recompute(g);

  // Delete a handful of relationships; diffs carry resolved endpoints.
  batch.clear();
  for (int i = 0; i < 8; ++i) {
    const size_t idx = rng.Uniform(live.size());
    const RelId r = live[idx];
    const graph::Relationship* rel = g.GetRelationship(r);
    if (rel == nullptr) continue;
    GraphUpdate del = GraphUpdate::DeleteRelationship(r);
    del.src = rel->src;
    del.tgt = rel->tgt;
    ASSERT_TRUE(g.Apply(del).ok());
    batch.push_back(del);
    live.erase(live.begin() + static_cast<long>(idx));
  }
  incremental.ApplyDiff(g, batch);

  graph::CsrGraph csr = graph::CsrGraph::Build(g);
  PageRankOptions tight = options;
  tight.epsilon = 1e-12;
  auto cold = PageRank(csr, tight);
  for (uint32_t d = 0; d < csr.num_nodes(); ++d) {
    EXPECT_NEAR(incremental.RankOf(csr.ToSparse(d)), cold.ranks[d], 1e-4);
  }
}

TEST(IncrementalPageRankTest, NodeChurnFallsBackToFullPass) {
  MemoryGraph g;
  for (NodeId i = 0; i < 10; ++i) {
    ASSERT_TRUE(g.Apply(GraphUpdate::AddNode(i)).ok());
  }
  ASSERT_TRUE(g.Apply(GraphUpdate::AddRelationship(0, 0, 1, "R")).ok());
  PageRankOptions options;
  options.epsilon = 1e-9;
  options.max_iterations = 1000;
  IncrementalPageRank pr(options);
  pr.Recompute(g);
  // New nodes change the teleport base for everyone: fallback path.
  std::vector<GraphUpdate> batch;
  for (NodeId i = 10; i < 20; ++i) {
    batch.push_back(GraphUpdate::AddNode(i));
  }
  batch.push_back(GraphUpdate::AddRelationship(1, 15, 0, "R"));
  ASSERT_TRUE(g.ApplyAll(batch).ok());
  pr.ApplyDiff(g, batch);
  double sum = 0;
  for (const auto& [id, rank] : pr.Ranks(g)) sum += rank;
  EXPECT_NEAR(sum, 1.0, 1e-6);
  EXPECT_GT(pr.RankOf(1), 0.0);
  // Accuracy against cold recompute.
  graph::CsrGraph csr = graph::CsrGraph::Build(g);
  PageRankOptions tight = options;
  tight.epsilon = 1e-12;
  auto cold = PageRank(csr, tight);
  for (uint32_t d = 0; d < csr.num_nodes(); ++d) {
    EXPECT_NEAR(pr.RankOf(csr.ToSparse(d)), cold.ranks[d], 1e-4);
  }
}

// Property: diff-based PageRank equals cold recomputation after random
// mixed batches (insertions and deletions).
class IncrementalPrFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalPrFuzzTest, MatchesColdAfterRandomBatches) {
  util::Random rng(static_cast<uint64_t>(GetParam()) * 7 + 3);
  MemoryGraph g;
  constexpr NodeId kNodes = 60;
  for (NodeId i = 0; i < kNodes; ++i) {
    ASSERT_TRUE(g.Apply(GraphUpdate::AddNode(i)).ok());
  }
  PageRankOptions options;
  options.epsilon = 1e-9;
  options.max_iterations = 2000;
  IncrementalPageRank pr(options);
  pr.Recompute(g);
  std::vector<RelId> live;
  RelId next = 0;
  for (int round = 0; round < 12; ++round) {
    std::vector<GraphUpdate> batch;
    for (int i = 0; i < 8; ++i) {
      if (rng.NextDouble() < 0.7 || live.empty()) {
        GraphUpdate add = GraphUpdate::AddRelationship(
            next, rng.Uniform(kNodes), rng.Uniform(kNodes), "R");
        ASSERT_TRUE(g.Apply(add).ok());
        batch.push_back(add);
        live.push_back(next++);
      } else {
        const size_t idx = rng.Uniform(live.size());
        const RelId r = live[idx];
        const graph::Relationship* rel = g.GetRelationship(r);
        GraphUpdate del = GraphUpdate::DeleteRelationship(r);
        del.src = rel->src;
        del.tgt = rel->tgt;
        ASSERT_TRUE(g.Apply(del).ok());
        batch.push_back(del);
        live.erase(live.begin() + static_cast<long>(idx));
      }
    }
    pr.ApplyDiff(g, batch);
    graph::CsrGraph csr = graph::CsrGraph::Build(g);
    PageRankOptions tight = options;
    tight.epsilon = 1e-12;
    tight.max_iterations = 2000;
    auto cold = PageRank(csr, tight);
    for (uint32_t d = 0; d < csr.num_nodes(); ++d) {
      ASSERT_NEAR(pr.RankOf(csr.ToSparse(d)), cold.ranks[d], 1e-4)
          << "round " << round;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalPrFuzzTest,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace aion::algo
