// FlightRecorder: ring bounds, oldest-first ordering, JSON shape, disk
// dumps, interaction with MetricsRegistry::Reset, and the background
// sampler lifecycle.
#include "obs/timeseries.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "storage/file.h"

namespace aion::obs {
namespace {

FlightRecorder::Options ManualOptions(size_t capacity) {
  FlightRecorder::Options options;
  options.period_millis = 0;  // no background thread; SampleNow drives it
  options.capacity = capacity;
  return options;
}

TEST(FlightRecorderTest, RingIsBoundedAndKeepsNewestOldestFirst) {
  MetricsRegistry registry;
  Counter* c = registry.counter("flight_test.ticks");
  FlightRecorder flight(&registry, ManualOptions(4));
  for (int i = 0; i < 7; ++i) {
    c->Add();
    flight.SampleNow();
  }
  EXPECT_EQ(flight.size(), 4u);  // capacity bound
  const std::vector<FlightSample> samples = flight.Samples();
  ASSERT_EQ(samples.size(), 4u);
  // Samples 4..7 survive, oldest first: counter values 4, 5, 6, 7.
  for (size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(samples[i].snapshot.counter("flight_test.ticks"), 4 + i);
  }
}

TEST(FlightRecorderTest, SamplesCarryEveryInstrumentKind) {
  MetricsRegistry registry;
  registry.counter("k.count")->Add(3);
  registry.gauge("k.gauge")->Set(-5);
  registry.histogram("k.nanos")->Record(1000);
  FlightRecorder flight(&registry, ManualOptions(8));
  flight.SampleNow();
  const std::vector<FlightSample> samples = flight.Samples();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].snapshot.counter("k.count"), 3u);
  EXPECT_EQ(samples[0].snapshot.gauge("k.gauge"), -5);
  EXPECT_EQ(samples[0].snapshot.histogram_count("k.nanos"), 1u);
  EXPECT_GT(samples[0].unix_millis, 0u);
  // The recorder's own instruments land in the sampled registry, so its
  // overhead is visible in the data it records.
  EXPECT_EQ(registry.Snapshot().counter("flight.samples"), 1u);
}

TEST(FlightRecorderTest, ToJsonIsWellFormedEnough) {
  MetricsRegistry registry;
  registry.counter("j.count")->Add(1);
  FlightRecorder flight(&registry, ManualOptions(2));
  flight.SampleNow();
  flight.SampleNow();
  const std::string json = flight.ToJson();
  EXPECT_NE(json.find("\"period_millis\":0"), std::string::npos);
  EXPECT_NE(json.find("\"capacity\":2"), std::string::npos);
  EXPECT_NE(json.find("\"samples\":["), std::string::npos);
  EXPECT_NE(json.find("\"unix_millis\""), std::string::npos);
  EXPECT_NE(json.find("\"j.count\":1"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  EXPECT_EQ(json.find(",}"), std::string::npos);
}

TEST(FlightRecorderTest, DumpToFileWritesTheRing) {
  auto dir = storage::MakeTempDir("aion_flight_test_");
  ASSERT_TRUE(dir.ok());
  MetricsRegistry registry;
  registry.counter("d.count")->Add(9);
  FlightRecorder flight(&registry, ManualOptions(4));
  flight.SampleNow();
  const std::string path = *dir + "/flight.json";
  ASSERT_TRUE(flight.DumpToFile(path).ok());
  std::ifstream in(path);
  const std::string contents((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, flight.ToJson());
  EXPECT_NE(contents.find("\"d.count\":9"), std::string::npos);
}

TEST(FlightRecorderTest, RegistryResetZeroesLaterSamplesButKeepsRing) {
  MetricsRegistry registry;
  Counter* c = registry.counter("reset.count");
  FlightRecorder flight(&registry, ManualOptions(8));
  c->Add(42);
  flight.SampleNow();
  registry.Reset();
  flight.SampleNow();
  // The ring is history: Reset does not rewrite already-taken samples, and
  // the next sample observes the zeroed registry. (A sample's own
  // flight.samples counter reflects samples taken *before* it — the
  // snapshot precedes the increment.)
  const std::vector<FlightSample> samples = flight.Samples();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].snapshot.counter("reset.count"), 42u);
  EXPECT_EQ(samples[1].snapshot.counter("reset.count"), 0u);
  EXPECT_EQ(samples[1].snapshot.counter("flight.samples"), 0u);  // zeroed
  // Sampling keeps working against the same resolved instruments, and the
  // recorder's counter restarts from the reset.
  c->Add(5);
  flight.SampleNow();
  const std::vector<FlightSample> after = flight.Samples();
  EXPECT_EQ(after.back().snapshot.counter("reset.count"), 5u);
  EXPECT_EQ(after.back().snapshot.counter("flight.samples"), 1u);
}

TEST(FlightRecorderTest, BackgroundSamplerFillsTheRing) {
  MetricsRegistry registry;
  FlightRecorder::Options options;
  options.period_millis = 5;
  options.capacity = 64;
  FlightRecorder flight(&registry, options);
  flight.Start();
  // The loop samples immediately, so one sample exists almost at once;
  // poll briefly for a couple more.
  for (int i = 0; i < 200 && flight.size() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  flight.Stop();
  const size_t after_stop = flight.size();
  EXPECT_GE(after_stop, 2u);
  // Stopped means stopped: no more samples arrive.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(flight.size(), after_stop);
  // Stop is idempotent and Start works again.
  flight.Stop();
  flight.Start();
  flight.Stop();
}

TEST(FlightRecorderTest, ZeroPeriodDisablesBackgroundSampling) {
  MetricsRegistry registry;
  FlightRecorder flight(&registry, ManualOptions(4));
  flight.Start();  // no-op
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(flight.size(), 0u);
  flight.SampleNow();  // manual sampling still works
  EXPECT_EQ(flight.size(), 1u);
}

}  // namespace
}  // namespace aion::obs
