#include "workload/generator.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>

#include "graph/memgraph.h"

namespace aion::workload {
namespace {

TEST(GeneratorTest, TableThreeShapesScale) {
  const auto datasets = AllDatasets(0.001);
  ASSERT_EQ(datasets.size(), 6u);
  EXPECT_EQ(datasets[0].name, "DBLP");
  EXPECT_EQ(datasets[5].name, "ORKUT");
  // Relative sizes preserved: Orkut has the most relationships.
  for (const DatasetSpec& spec : datasets) {
    EXPECT_LE(spec.num_rels, Orkut(0.001).num_rels);
  }
  // Average degree ordering roughly matches Table 3 (Orkut 78 > Pokec 18.8
  // > DBLP 7).
  const double dblp_deg = static_cast<double>(datasets[0].num_rels) /
                          static_cast<double>(datasets[0].num_nodes);
  const double orkut_deg = static_cast<double>(datasets[5].num_rels) /
                           static_cast<double>(datasets[5].num_nodes);
  EXPECT_GT(orkut_deg, dblp_deg * 5);
}

TEST(GeneratorTest, UpdatesApplyToConsistentGraph) {
  Workload w = Generate(Dblp(0.001));
  graph::MemoryGraph g;
  ASSERT_TRUE(g.ApplyAll(w.updates).ok());
  EXPECT_EQ(g.NumNodes(), w.num_nodes);
  EXPECT_EQ(g.NumRelationships(), w.num_rels);
  EXPECT_EQ(w.num_rels, Dblp(0.001).num_rels);
}

TEST(GeneratorTest, TimestampsMonotoneAndNodesPrecedeRels) {
  Workload w = Generate(WikiTalk(0.001));
  graph::Timestamp last = 0;
  std::map<graph::NodeId, graph::Timestamp> node_created;
  for (const graph::GraphUpdate& u : w.updates) {
    EXPECT_GE(u.ts, last);
    last = u.ts;
    if (u.op == graph::UpdateOp::kAddNode) {
      node_created[u.id] = u.ts;
    } else if (u.op == graph::UpdateOp::kAddRelationship) {
      ASSERT_TRUE(node_created.count(u.src));
      ASSERT_TRUE(node_created.count(u.tgt));
      EXPECT_LT(node_created[u.src], u.ts);
      EXPECT_LT(node_created[u.tgt], u.ts);
    }
  }
}

TEST(GeneratorTest, DeterministicForSeed) {
  Workload a = Generate(Pokec(0.0005));
  Workload b = Generate(Pokec(0.0005));
  ASSERT_EQ(a.updates.size(), b.updates.size());
  EXPECT_EQ(a.updates, b.updates);
}

TEST(GeneratorTest, UndirectedDatasetsEmitBothDirections) {
  Workload w = Generate(Dblp(0.001));
  size_t mirrored = 0;
  std::map<std::pair<graph::NodeId, graph::NodeId>, int> pairs;
  for (const graph::GraphUpdate& u : w.updates) {
    if (u.op == graph::UpdateOp::kAddRelationship) {
      ++pairs[{u.src, u.tgt}];
    }
  }
  for (const auto& [pair, count] : pairs) {
    if (pairs.count({pair.second, pair.first}) > 0) ++mirrored;
  }
  // The overwhelming majority of edges have their mirror (the tail may be
  // truncated to hit |E| exactly).
  EXPECT_GT(mirrored * 10, pairs.size() * 9);
}

TEST(GeneratorTest, DegreeSkewFromPreferentialAttachment) {
  Workload w = Generate(WikiTalk(0.002));
  graph::MemoryGraph g;
  ASSERT_TRUE(g.ApplyAll(w.updates).ok());
  // Max in-degree should far exceed the average (power-law-ish skew).
  size_t max_in = 0;
  g.ForEachNode([&](const graph::Node& n) {
    max_in = std::max(max_in, g.InRels(n.id).size());
  });
  const double avg = static_cast<double>(w.num_rels) /
                     static_cast<double>(w.num_nodes);
  EXPECT_GT(static_cast<double>(max_in), avg * 5);
}

TEST(GeneratorTest, RelationshipPropertyAttached) {
  Workload w = Generate(Dblp(0.0005), "weight");
  size_t with_prop = 0;
  for (const graph::GraphUpdate& u : w.updates) {
    if (u.op == graph::UpdateOp::kAddRelationship) {
      ASSERT_NE(u.props.Get("weight"), nullptr);
      ++with_prop;
    }
  }
  EXPECT_EQ(with_prop, w.num_rels);
}

TEST(GeneratorTest, SplitUpdatesCoversAll) {
  Workload w = Generate(Dblp(0.0005));
  auto parts = SplitUpdates(w.updates, 10);
  ASSERT_LE(parts.size(), 10u);
  size_t total = 0;
  for (const auto& part : parts) total += part.size();
  EXPECT_EQ(total, w.updates.size());
  // Order preserved across parts.
  EXPECT_EQ(parts.front().front(), w.updates.front());
  EXPECT_EQ(parts.back().back(), w.updates.back());
}

TEST(GeneratorTest, BenchScaleFromEnv) {
  unsetenv("AION_BENCH_SCALE");
  EXPECT_DOUBLE_EQ(BenchScaleFromEnv(0.01), 0.01);
  setenv("AION_BENCH_SCALE", "0.5", 1);
  EXPECT_DOUBLE_EQ(BenchScaleFromEnv(0.01), 0.5);
  setenv("AION_BENCH_SCALE", "7", 1);  // clamped
  EXPECT_DOUBLE_EQ(BenchScaleFromEnv(0.01), 1.0);
  setenv("AION_BENCH_SCALE", "garbage", 1);
  EXPECT_DOUBLE_EQ(BenchScaleFromEnv(0.01), 0.01);
  unsetenv("AION_BENCH_SCALE");
}

TEST(GeneratorTest, MultigraphAllowsParallelEdges) {
  DatasetSpec spec = WikiTalk(0.002);
  Workload w = Generate(spec);
  std::map<std::pair<graph::NodeId, graph::NodeId>, int> pairs;
  for (const graph::GraphUpdate& u : w.updates) {
    if (u.op == graph::UpdateOp::kAddRelationship) ++pairs[{u.src, u.tgt}];
  }
  int parallel = 0;
  for (const auto& [pair, count] : pairs) {
    if (count > 1) ++parallel;
  }
  EXPECT_GT(parallel, 0);  // multigraph produces parallel edges
}

}  // namespace
}  // namespace aion::workload
