#include "txn/graphdb.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "storage/file.h"

namespace aion::txn {
namespace {

class RecordingListener : public TransactionEventListener {
 public:
  void AfterCommit(const TransactionData& data) override {
    commit_timestamps.push_back(data.commit_ts);
    for (const GraphUpdate& u : data.updates) updates.push_back(u);
  }
  std::vector<Timestamp> commit_timestamps;
  std::vector<GraphUpdate> updates;
};

TEST(GraphDatabaseTest, CommitMakesUpdatesVisible) {
  auto db = GraphDatabase::OpenInMemory();
  ASSERT_TRUE(db.ok());
  auto txn = (*db)->Begin();
  const NodeId a = txn->CreateNode({"Person"});
  const NodeId b = txn->CreateNode({"Person"});
  const RelId r = txn->CreateRelationship(a, b, "KNOWS");
  EXPECT_EQ((*db)->NumNodes(), 0u);  // invisible before commit
  auto ts = txn->Commit();
  ASSERT_TRUE(ts.ok());
  EXPECT_EQ(*ts, 1u);
  EXPECT_EQ((*db)->NumNodes(), 2u);
  EXPECT_EQ((*db)->NumRelationships(), 1u);
  ASSERT_TRUE((*db)->GetNode(a).has_value());
  EXPECT_TRUE((*db)->GetNode(a)->HasLabel("Person"));
  EXPECT_EQ((*db)->GetRelationship(r)->src, a);
}

TEST(GraphDatabaseTest, FailedCommitLeavesGraphUntouched) {
  auto db = GraphDatabase::OpenInMemory();
  ASSERT_TRUE(db.ok());
  auto setup = (*db)->Begin();
  const NodeId a = setup->CreateNode();
  ASSERT_TRUE(setup->Commit().ok());

  auto txn = (*db)->Begin();
  const NodeId b = txn->CreateNode();
  txn->CreateRelationship(a, 424242, "BAD");  // missing endpoint
  EXPECT_FALSE(txn->Commit().ok());
  // Atomicity: node b (valid on its own) must not have been applied.
  EXPECT_FALSE((*db)->GetNode(b).has_value());
  EXPECT_EQ((*db)->NumNodes(), 1u);
  EXPECT_EQ((*db)->LastCommitTimestamp(), 1u);
}

TEST(GraphDatabaseTest, EmptyCommitRejected) {
  auto db = GraphDatabase::OpenInMemory();
  ASSERT_TRUE(db.ok());
  auto txn = (*db)->Begin();
  EXPECT_TRUE(txn->Commit().status().IsInvalidArgument());
}

TEST(GraphDatabaseTest, DoubleCommitRejected) {
  auto db = GraphDatabase::OpenInMemory();
  ASSERT_TRUE(db.ok());
  auto txn = (*db)->Begin();
  txn->CreateNode();
  ASSERT_TRUE(txn->Commit().ok());
  EXPECT_TRUE(txn->Commit().status().IsFailedPrecondition());
}

TEST(GraphDatabaseTest, AbortDiscardsBuffer) {
  auto db = GraphDatabase::OpenInMemory();
  ASSERT_TRUE(db.ok());
  auto txn = (*db)->Begin();
  txn->CreateNode();
  txn->Abort();
  EXPECT_EQ((*db)->NumNodes(), 0u);
}

TEST(GraphDatabaseTest, TimestampsMonotonicPerCommit) {
  auto db = GraphDatabase::OpenInMemory();
  ASSERT_TRUE(db.ok());
  for (int i = 1; i <= 5; ++i) {
    auto txn = (*db)->Begin();
    txn->CreateNode();
    txn->CreateNode();
    auto ts = txn->Commit();
    ASSERT_TRUE(ts.ok());
    EXPECT_EQ(*ts, static_cast<Timestamp>(i));
  }
  EXPECT_EQ((*db)->LastCommitTimestamp(), 5u);
}

TEST(GraphDatabaseTest, ListenerSeesCommitsInOrderWithSharedTs) {
  auto db = GraphDatabase::OpenInMemory();
  ASSERT_TRUE(db.ok());
  RecordingListener listener;
  (*db)->RegisterListener(&listener);

  auto t1 = (*db)->Begin();
  const NodeId a = t1->CreateNode();
  const NodeId b = t1->CreateNode();
  t1->CreateRelationship(a, b, "R");
  ASSERT_TRUE(t1->Commit().ok());
  auto t2 = (*db)->Begin();
  t2->SetNodeProperty(a, "k", graph::PropertyValue(1));
  ASSERT_TRUE(t2->Commit().ok());

  ASSERT_EQ(listener.commit_timestamps, (std::vector<Timestamp>{1, 2}));
  ASSERT_EQ(listener.updates.size(), 4u);
  EXPECT_EQ(listener.updates[0].ts, 1u);
  EXPECT_EQ(listener.updates[2].ts, 1u);  // same txn, same ts
  EXPECT_EQ(listener.updates[3].ts, 2u);
}

TEST(GraphDatabaseTest, ListenerNotCalledOnFailedCommit) {
  auto db = GraphDatabase::OpenInMemory();
  ASSERT_TRUE(db.ok());
  RecordingListener listener;
  (*db)->RegisterListener(&listener);
  auto txn = (*db)->Begin();
  txn->DeleteNode(999);
  EXPECT_FALSE(txn->Commit().ok());
  EXPECT_TRUE(listener.commit_timestamps.empty());
}

TEST(GraphDatabaseTest, ConcurrentCommitsSerialize) {
  auto db = GraphDatabase::OpenInMemory();
  ASSERT_TRUE(db.ok());
  constexpr int kThreads = 8;
  constexpr int kTxnsPerThread = 50;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kTxnsPerThread; ++i) {
        auto txn = (*db)->Begin();
        txn->CreateNode();
        if (!txn->Commit().ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ((*db)->NumNodes(),
            static_cast<size_t>(kThreads * kTxnsPerThread));
  EXPECT_EQ((*db)->LastCommitTimestamp(),
            static_cast<Timestamp>(kThreads * kTxnsPerThread));
}

TEST(GraphDatabaseTest, ReadersDuringWrites) {
  auto db = GraphDatabase::OpenInMemory();
  ASSERT_TRUE(db.ok());
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load()) {
      (*db)->WithReadLock([](const graph::MemoryGraph& g) {
        // Graph must always be internally consistent.
        size_t count = 0;
        g.ForEachNode([&count](const graph::Node&) { ++count; });
        ASSERT_EQ(count, g.NumNodes());
      });
    }
  });
  for (int i = 0; i < 200; ++i) {
    auto txn = (*db)->Begin();
    txn->CreateNode();
    ASSERT_TRUE(txn->Commit().ok());
  }
  stop.store(true);
  reader.join();
  EXPECT_EQ((*db)->NumNodes(), 200u);
}

class GraphDatabaseDurabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = storage::MakeTempDir("aion_db_test_");
    ASSERT_TRUE(dir.ok());
    dir_ = *dir;
  }
  void TearDown() override { (void)storage::RemoveDirRecursively(dir_); }
  std::string dir_;
};

TEST_F(GraphDatabaseDurabilityTest, RecoversFromWal) {
  GraphDatabase::Options options;
  options.data_dir = dir_;
  NodeId a, b;
  RelId r;
  {
    auto db = GraphDatabase::Open(options);
    ASSERT_TRUE(db.ok());
    auto txn = (*db)->Begin();
    a = txn->CreateNode({"Person"});
    b = txn->CreateNode();
    r = txn->CreateRelationship(a, b, "KNOWS");
    ASSERT_TRUE(txn->Commit().ok());
    auto txn2 = (*db)->Begin();
    txn2->SetNodeProperty(a, "name", graph::PropertyValue("ada"));
    ASSERT_TRUE(txn2->Commit().ok());
  }
  // Reopen: full state recovered.
  auto db = GraphDatabase::Open(options);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->NumNodes(), 2u);
  EXPECT_EQ((*db)->NumRelationships(), 1u);
  EXPECT_EQ((*db)->GetNode(a)->props.Get("name")->AsString(), "ada");
  EXPECT_EQ((*db)->LastCommitTimestamp(), 2u);
  // Id allocation continues beyond recovered ids.
  auto txn = (*db)->Begin();
  const NodeId fresh = txn->CreateNode();
  EXPECT_GT(fresh, b);
  ASSERT_TRUE(txn->Commit().ok());
  EXPECT_EQ((*db)->LastCommitTimestamp(), 3u);
  (void)r;
}

TEST_F(GraphDatabaseDurabilityTest, ReplayUpdatesSinceFiltersByTimestamp) {
  GraphDatabase::Options options;
  options.data_dir = dir_;
  auto db = GraphDatabase::Open(options);
  ASSERT_TRUE(db.ok());
  for (int i = 0; i < 5; ++i) {
    auto txn = (*db)->Begin();
    txn->CreateNode();
    ASSERT_TRUE(txn->Commit().ok());
  }
  std::vector<Timestamp> seen;
  ASSERT_TRUE((*db)
                  ->ReplayUpdatesSince(
                      2, [&seen](const TransactionData& d) {
                        seen.push_back(d.commit_ts);
                      })
                  .ok());
  EXPECT_EQ(seen, (std::vector<Timestamp>{3, 4, 5}));
}

TEST_F(GraphDatabaseDurabilityTest, InMemoryHasNoWal) {
  auto db = GraphDatabase::OpenInMemory();
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->WalBytes(), 0u);
  EXPECT_TRUE((*db)
                  ->ReplayUpdatesSince(0, [](const TransactionData&) {})
                  .IsFailedPrecondition());
}

}  // namespace
}  // namespace aion::txn
