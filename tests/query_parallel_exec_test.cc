// Morsel-driven parallel execution (ISSUE 10): parallel dispatch must be
// invisible except in wall time — byte-identical rows in identical order at
// every worker count, exact PROFILE and session accounting, and a working
// kill path through the shared cancel flag. The suite names contain
// "ParallelExec" (and the kill suite also "Cancel") so the TSan gate in
// scripts/check.sh runs them under the race detector: the morsel claim
// counter, the published worker stats and the cancel flag are all shared
// between the coordinator and pool workers.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/aion.h"
#include "obs/workload_registry.h"
#include "query/engine.h"
#include "query/exec.h"
#include "storage/file.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace aion::query {
namespace {

ExecOptions ParallelOptions(size_t workers) {
  ExecOptions options;
  options.morsel_size = 8;        // many morsels even on a small fixture
  options.max_workers = workers;  // 1 = sequential reference execution
  options.min_parallel_items = 1;
  return options;
}

class ParallelExecTest : public ::testing::Test {
 protected:
  static constexpr int kPersons = 200;

  void SetUp() override {
    auto dir = storage::MakeTempDir("aion_parexec_");
    ASSERT_TRUE(dir.ok());
    dir_ = *dir;
    auto db = txn::GraphDatabase::OpenInMemory();
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    core::AionStore::Options options;
    options.dir = dir_ + "/aion";
    options.lineage_mode = core::AionStore::LineageMode::kSync;
    auto aion = core::AionStore::Open(options);
    ASSERT_TRUE(aion.ok());
    aion_ = std::move(*aion);
    db_->RegisterListener(aion_.get());
    engine_ = std::make_unique<QueryEngine>(db_.get(), aion_.get());
    // kPersons nodes (ts 1..kPersons), then three whole-population updates
    // so every node carries four versions for the history paths.
    for (int i = 0; i < kPersons; ++i) {
      Run("CREATE (p:Person {name: 'p" + std::to_string(i) +
          "', age: " + std::to_string(i) + "})");
    }
    Run("CREATE (a:Person {name: 'hub'})-[:KNOWS]->(b:Person {name: "
        "'spoke'})");
    for (int round = 0; round < 3; ++round) {
      Run("MATCH (n:Person) SET n.round = " + std::to_string(round));
    }
  }

  void TearDown() override {
    engine_.reset();
    // The engine attached db_ to the store's health watchdog, whose probe
    // thread reads db_ until the store shuts down — destroy the store first.
    aion_.reset();
    db_.reset();
    (void)storage::RemoveDirRecursively(dir_);
  }

  QueryResult Run(const std::string& q) {
    auto result = engine_->Execute(q);
    EXPECT_TRUE(result.ok()) << q << " -> " << result.status().ToString();
    return result.ok() ? *result : QueryResult{};
  }

  QueryResult RunWith(size_t workers, const std::string& q) {
    engine_->set_exec_options(ParallelOptions(workers));
    return Run(q);
  }

  static void ExpectIdentical(const QueryResult& expected,
                              const QueryResult& actual, size_t workers,
                              const std::string& q) {
    ASSERT_EQ(expected.columns, actual.columns) << q;
    ASSERT_EQ(expected.rows.size(), actual.rows.size())
        << q << " at " << workers << " workers";
    for (size_t i = 0; i < expected.rows.size(); ++i) {
      ASSERT_EQ(expected.rows[i].size(), actual.rows[i].size());
      for (size_t j = 0; j < expected.rows[i].size(); ++j) {
        EXPECT_TRUE(expected.rows[i][j] == actual.rows[i][j])
            << q << " at " << workers << " workers, row " << i << " col "
            << j;
      }
    }
  }

  /// Runs `q` sequentially, then at 2/4/8 workers, asserting identical rows
  /// in identical order every time.
  void ExpectEquivalentAcrossWorkerCounts(const std::string& q) {
    const QueryResult expected = RunWith(1, q);
    for (size_t workers : {2u, 4u, 8u}) {
      ExpectIdentical(expected, RunWith(workers, q), workers, q);
    }
  }

  std::string dir_;
  std::unique_ptr<txn::GraphDatabase> db_;
  std::unique_ptr<core::AionStore> aion_;
  std::unique_ptr<QueryEngine> engine_;
};

TEST_F(ParallelExecTest, LatestScansEquivalentAcrossWorkerCounts) {
  ExpectEquivalentAcrossWorkerCounts("MATCH (p:Person) RETURN p.name");
  ExpectEquivalentAcrossWorkerCounts(
      "MATCH (p:Person) WHERE p.age >= 100 RETURN p.name, p.age");
  ExpectEquivalentAcrossWorkerCounts("MATCH (n) RETURN count(*)");
  ExpectEquivalentAcrossWorkerCounts(
      "MATCH (a:Person)-[:KNOWS]->(b:Person) RETURN a.name, b.name");
}

TEST_F(ParallelExecTest, TemporalQueriesEquivalentAcrossWorkerCounts) {
  // Snapshot scan mid-history (TimeStore route).
  ExpectEquivalentAcrossWorkerCounts(
      "USE gdb FOR SYSTEM_TIME AS OF 100 MATCH (n) RETURN count(*)");
  ExpectEquivalentAcrossWorkerCounts(
      "USE gdb FOR SYSTEM_TIME AS OF 150 MATCH (p:Person) RETURN p.name");
  // Point history over one node's versions (LineageStore route; the
  // version loop is the morselized input).
  const int64_t id = Run("MATCH (p:Person {name: 'p0'}) RETURN id(p)")
                         .rows[0][0]
                         .AsInt();
  const std::string point =
      "USE gdb FOR SYSTEM_TIME AS OF 50 MATCH (n) WHERE id(n) = " +
      std::to_string(id) + " RETURN n.name";
  ExpectEquivalentAcrossWorkerCounts(point);
  const std::string history =
      "USE gdb FOR SYSTEM_TIME BETWEEN 1 AND 300 MATCH (n:Person) "
      "WHERE id(n) = " + std::to_string(id) + " RETURN n.round";
  ExpectEquivalentAcrossWorkerCounts(history);
  const std::string contained =
      "USE gdb FOR SYSTEM_TIME CONTAINED IN (1, 300) MATCH (n:Person) "
      "WHERE id(n) = " + std::to_string(id) + " RETURN n.round";
  ExpectEquivalentAcrossWorkerCounts(contained);
}

TEST_F(ParallelExecTest, EquivalentUnderLiveIngest) {
  // Frozen-timestamp queries stay byte-identical while a writer appends
  // history concurrently (epoch pinning: workers never touch the ingest
  // path).
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    graph::Timestamp ts = 1u << 20;  // far past the fixture's history
    while (!stop.load(std::memory_order_relaxed)) {
      (void)aion_->Ingest(ts, {graph::GraphUpdate::AddNode(ts)});
      ++ts;
    }
  });
  const std::string frozen =
      "USE gdb FOR SYSTEM_TIME AS OF 150 MATCH (p:Person) RETURN p.name";
  const QueryResult expected = RunWith(1, frozen);
  for (int round = 0; round < 5; ++round) {
    for (size_t workers : {2u, 4u, 8u}) {
      ExpectIdentical(expected, RunWith(workers, frozen), workers, frozen);
    }
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

TEST_F(ParallelExecTest, ProfileTotalCoversStepSumsAndNotesDispatch) {
  engine_->set_exec_options(ParallelOptions(4));
  for (const std::string& q :
       {std::string("PROFILE MATCH (p:Person) RETURN p.name"),
        std::string("PROFILE USE gdb FOR SYSTEM_TIME AS OF 150 MATCH (n) "
                    "RETURN count(*)")}) {
    const QueryResult profile = Run(q);
    ASSERT_GE(profile.rows.size(), 2u) << q;
    const auto& total = profile.rows.back();
    ASSERT_EQ(total[0].AsString(), "Total") << q;
    // The coordinator times dispatch-to-merge wall clock per stage, so the
    // parent can never report less than the sum of its children even
    // though helpers burn concurrent CPU.
    int64_t child_sum = 0;
    for (size_t i = 0; i + 1 < profile.rows.size(); ++i) {
      child_sum += profile.rows[i][10].AsInt();
    }
    EXPECT_GE(total[10].AsInt(), child_sum) << q;
    // The scan stage carries the dispatch annotation.
    bool noted = false;
    for (const auto& row : profile.rows) {
      if (row[1].AsString().find("morsels=") != std::string::npos) {
        noted = true;
        EXPECT_NE(row[1].AsString().find("workers="), std::string::npos);
      }
    }
    EXPECT_TRUE(noted) << q;
  }
}

TEST_F(ParallelExecTest, SessionRowAccountingExactUnderParallelDispatch) {
  engine_->set_exec_options(ParallelOptions(4));
  const QueryResult before = Run("CALL dbms.sessions()");
  int64_t rows_before = 0;
  for (const auto& row : before.rows) {
    if (row[0].AsInt() == 0) rows_before = row[2].AsInt();
  }
  const QueryResult people = Run("MATCH (p:Person) RETURN p.name");
  const auto produced = static_cast<int64_t>(people.NumRows());
  EXPECT_EQ(produced, kPersons + 2);
  const QueryResult after = Run("CALL dbms.sessions()");
  int64_t rows_after = 0;
  for (const auto& row : after.rows) {
    if (row[0].AsInt() == 0) rows_after = row[2].AsInt();
  }
  // Exactly the parallel statement's rows plus the first dbms.sessions()
  // statement's own rows landed in between — nothing double-counted by
  // worker threads, nothing lost.
  EXPECT_EQ(rows_after - rows_before,
            produced + static_cast<int64_t>(before.NumRows()));
}

TEST_F(ParallelExecTest, ExecInstrumentsTickByMode) {
  const auto counter = [&](const char* name) {
    return engine_->metrics()->Snapshot().counter(name);
  };
  const uint64_t seq_before = counter("exec.sequential_queries");
  RunWith(1, "MATCH (p:Person) RETURN p.name");
  EXPECT_GT(counter("exec.sequential_queries"), seq_before);

  const uint64_t par_before = counter("exec.parallel_queries");
  const uint64_t morsels_before = counter("exec.morsels_dispatched");
  RunWith(4, "MATCH (p:Person) RETURN p.name");
  EXPECT_GT(counter("exec.parallel_queries"), par_before);
  // kPersons + 2 seeds at morsel_size 8.
  EXPECT_GE(counter("exec.morsels_dispatched") - morsels_before,
            static_cast<uint64_t>((kPersons + 2) / 8));
}

// --- kill path ------------------------------------------------------------

class ParallelExecCancelTest : public ::testing::Test {};

TEST_F(ParallelExecCancelTest, DriverStopsClaimingMorselsAfterKill) {
  obs::WorkloadRegistry registry;
  auto running = registry.Register(7, 0, "driver kill test");
  ASSERT_NE(running, nullptr);
  util::ThreadPool pool(3);
  std::atomic<size_t> executed{0};
  util::StatusOr<MorselDriver::Outcome> result =
      util::Status::Internal("did not run");
  {
    obs::ActiveQueryScope scope(running.get());
    ExecOptions options;
    options.morsel_size = 1;
    options.max_workers = 4;
    options.min_parallel_items = 1;
    MorselDriver driver(&pool, options, ExecInstruments{});
    result = driver.Run(100000, [&](size_t morsel, size_t, size_t) {
      executed.fetch_add(1, std::memory_order_relaxed);
      if (morsel == 0) EXPECT_TRUE(registry.Cancel(7));
      return util::Status::OK();
    });
  }
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status().ToString();
  // The claim loops saw the flag and left the tail of the input unclaimed.
  EXPECT_LT(executed.load(), 100000u);
  registry.Finish(std::move(running), false, true, 1, 0);
  EXPECT_EQ(registry.active_count(), 0u);
}

class ParallelExecCancelProcTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = storage::MakeTempDir("aion_parexec_kill_");
    ASSERT_TRUE(dir.ok());
    dir_ = *dir;
    core::AionStore::Options options;
    options.dir = dir_ + "/aion";
    options.lineage_mode = core::AionStore::LineageMode::kSync;
    auto aion = core::AionStore::Open(options);
    ASSERT_TRUE(aion.ok());
    aion_ = std::move(*aion);
    for (graph::Timestamp ts = 1; ts <= 64; ++ts) {
      ASSERT_TRUE(aion_->Ingest(ts, {graph::GraphUpdate::AddNode(ts)}).ok());
    }
    auto db = txn::GraphDatabase::OpenInMemory();
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    db_->RegisterListener(aion_.get());
    engine_ = std::make_unique<QueryEngine>(db_.get(), aion_.get());
  }

  void TearDown() override {
    engine_.reset();
    // The engine attached db_ to the store's health watchdog, whose probe
    // thread reads db_ until the store shuts down — destroy the store first.
    aion_.reset();
    db_.reset();
    (void)storage::RemoveDirRecursively(dir_);
  }

  uint64_t WaitForRunning(const std::string& statement) {
    for (int attempt = 0; attempt < 10000; ++attempt) {
      auto listing = engine_->Execute("CALL dbms.queries()");
      EXPECT_TRUE(listing.ok());
      for (const auto& row : listing->rows) {
        if (row[2].AsString() == statement) {
          return static_cast<uint64_t>(row[0].AsInt());
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return 0;
  }

  std::string dir_;
  std::unique_ptr<core::AionStore> aion_;
  std::unique_ptr<txn::GraphDatabase> db_;
  std::unique_ptr<QueryEngine> engine_;
};

TEST_F(ParallelExecCancelProcTest, KillMidIncrementalPageRankCancels) {
  // Far more diff steps than any test should finish; the per-step cancel
  // check added for ISSUE 10 is what lets the kill land.
  const std::string statement =
      "CALL aion.incremental.pagerank(0, 2000000, 1)";
  util::StatusOr<QueryResult> result = util::Status::Internal("did not run");
  std::thread worker([&] { result = engine_->Execute(statement); });

  const uint64_t query_id = WaitForRunning(statement);
  ASSERT_NE(query_id, 0u) << "statement never appeared in dbms.queries()";
  EXPECT_TRUE(engine_->workload()->Cancel(query_id));

  worker.join();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status().ToString();
  EXPECT_EQ(engine_->workload()->active_count(), 0u);
}

TEST_F(ParallelExecCancelProcTest, KillMidIncrementalBfsCancels) {
  const std::string statement = "CALL aion.incremental.bfs(1, 0, 2000000, 1)";
  util::StatusOr<QueryResult> result = util::Status::Internal("did not run");
  std::thread worker([&] { result = engine_->Execute(statement); });

  const uint64_t query_id = WaitForRunning(statement);
  ASSERT_NE(query_id, 0u);
  EXPECT_TRUE(engine_->workload()->Cancel(query_id));

  worker.join();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status().ToString();
}

}  // namespace
}  // namespace aion::query
