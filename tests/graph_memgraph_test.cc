#include "graph/memgraph.h"

#include <gtest/gtest.h>

#include <set>

#include "graph/update.h"
#include "util/random.h"

namespace aion::graph {
namespace {

MemoryGraph SmallGraph() {
  // 0 -> 1 -> 2, 0 -> 2
  MemoryGraph g;
  EXPECT_TRUE(g.Apply(GraphUpdate::AddNode(0, {"A"})).ok());
  EXPECT_TRUE(g.Apply(GraphUpdate::AddNode(1, {"B"})).ok());
  EXPECT_TRUE(g.Apply(GraphUpdate::AddNode(2, {"A", "B"})).ok());
  EXPECT_TRUE(g.Apply(GraphUpdate::AddRelationship(0, 0, 1, "R")).ok());
  EXPECT_TRUE(g.Apply(GraphUpdate::AddRelationship(1, 1, 2, "R")).ok());
  EXPECT_TRUE(g.Apply(GraphUpdate::AddRelationship(2, 0, 2, "S")).ok());
  return g;
}

TEST(MemoryGraphTest, AddAndGetEntities) {
  MemoryGraph g = SmallGraph();
  EXPECT_EQ(g.NumNodes(), 3u);
  EXPECT_EQ(g.NumRelationships(), 3u);
  ASSERT_NE(g.GetNode(0), nullptr);
  EXPECT_TRUE(g.GetNode(0)->HasLabel("A"));
  EXPECT_FALSE(g.GetNode(0)->HasLabel("B"));
  ASSERT_NE(g.GetRelationship(1), nullptr);
  EXPECT_EQ(g.GetRelationship(1)->src, 1u);
  EXPECT_EQ(g.GetRelationship(1)->tgt, 2u);
  EXPECT_EQ(g.GetNode(99), nullptr);
  EXPECT_EQ(g.GetRelationship(99), nullptr);
}

TEST(MemoryGraphTest, DuplicateInsertRejected) {
  MemoryGraph g = SmallGraph();
  EXPECT_TRUE(g.Apply(GraphUpdate::AddNode(0)).IsAlreadyExists());
  EXPECT_TRUE(
      g.Apply(GraphUpdate::AddRelationship(0, 1, 2, "X")).IsAlreadyExists());
}

TEST(MemoryGraphTest, RelationshipRequiresLiveEndpoints) {
  MemoryGraph g;
  ASSERT_TRUE(g.Apply(GraphUpdate::AddNode(0)).ok());
  EXPECT_TRUE(g.Apply(GraphUpdate::AddRelationship(0, 0, 7, "R"))
                  .IsFailedPrecondition());
  EXPECT_TRUE(g.Apply(GraphUpdate::AddRelationship(0, 7, 0, "R"))
                  .IsFailedPrecondition());
}

TEST(MemoryGraphTest, SelfLoopAllowed) {
  MemoryGraph g;
  ASSERT_TRUE(g.Apply(GraphUpdate::AddNode(0)).ok());
  ASSERT_TRUE(g.Apply(GraphUpdate::AddRelationship(0, 0, 0, "SELF")).ok());
  EXPECT_EQ(g.OutRels(0).size(), 1u);
  EXPECT_EQ(g.InRels(0).size(), 1u);
}

TEST(MemoryGraphTest, NodeDeleteRequiresNoRelationships) {
  MemoryGraph g = SmallGraph();
  EXPECT_TRUE(g.Apply(GraphUpdate::DeleteNode(0)).IsFailedPrecondition());
  ASSERT_TRUE(g.Apply(GraphUpdate::DeleteRelationship(0)).ok());
  ASSERT_TRUE(g.Apply(GraphUpdate::DeleteRelationship(2)).ok());
  EXPECT_TRUE(g.Apply(GraphUpdate::DeleteNode(0)).ok());
  EXPECT_EQ(g.NumNodes(), 2u);
  EXPECT_EQ(g.GetNode(0), nullptr);
}

TEST(MemoryGraphTest, DeleteMissingFails) {
  MemoryGraph g;
  EXPECT_TRUE(g.Apply(GraphUpdate::DeleteNode(3)).IsFailedPrecondition());
  EXPECT_TRUE(
      g.Apply(GraphUpdate::DeleteRelationship(3)).IsFailedPrecondition());
}

TEST(MemoryGraphTest, AdjacencyMaintainedOnDelete) {
  MemoryGraph g = SmallGraph();
  ASSERT_TRUE(g.Apply(GraphUpdate::DeleteRelationship(0)).ok());
  EXPECT_EQ(g.OutRels(0), (std::vector<RelId>{2}));
  EXPECT_EQ(g.InRels(1), std::vector<RelId>{});
  EXPECT_EQ(g.NumRelationships(), 2u);
}

TEST(MemoryGraphTest, PropertyAndLabelUpdates) {
  MemoryGraph g = SmallGraph();
  ASSERT_TRUE(
      g.Apply(GraphUpdate::SetNodeProperty(0, "x", PropertyValue(5))).ok());
  EXPECT_EQ(g.GetNode(0)->props.Get("x")->AsInt(), 5);
  ASSERT_TRUE(g.Apply(GraphUpdate::RemoveNodeProperty(0, "x")).ok());
  EXPECT_EQ(g.GetNode(0)->props.Get("x"), nullptr);
  ASSERT_TRUE(g.Apply(GraphUpdate::AddNodeLabel(0, "New")).ok());
  EXPECT_TRUE(g.GetNode(0)->HasLabel("New"));
  ASSERT_TRUE(g.Apply(GraphUpdate::RemoveNodeLabel(0, "New")).ok());
  EXPECT_FALSE(g.GetNode(0)->HasLabel("New"));
  ASSERT_TRUE(
      g.Apply(GraphUpdate::SetRelationshipProperty(0, "w", PropertyValue(2.0)))
          .ok());
  EXPECT_DOUBLE_EQ(g.GetRelationship(0)->props.Get("w")->AsDouble(), 2.0);
}

TEST(MemoryGraphTest, PropertyUpdateOnMissingEntityFails) {
  MemoryGraph g;
  EXPECT_TRUE(g.Apply(GraphUpdate::SetNodeProperty(5, "k", PropertyValue(1)))
                  .IsFailedPrecondition());
  EXPECT_TRUE(
      g.Apply(GraphUpdate::SetRelationshipProperty(5, "k", PropertyValue(1)))
          .IsFailedPrecondition());
}

TEST(MemoryGraphTest, ForEachRelDirections) {
  MemoryGraph g = SmallGraph();
  EXPECT_EQ(g.RelIds(0, Direction::kOutgoing), (std::vector<RelId>{0, 2}));
  EXPECT_EQ(g.RelIds(0, Direction::kIncoming), std::vector<RelId>{});
  EXPECT_EQ(g.RelIds(2, Direction::kIncoming), (std::vector<RelId>{1, 2}));
  EXPECT_EQ(g.RelIds(1, Direction::kBoth), (std::vector<RelId>{1, 0}));
  EXPECT_EQ(g.Degree(1, Direction::kBoth), 2u);
}

TEST(MemoryGraphTest, ForEachVisitsLiveOnly) {
  MemoryGraph g = SmallGraph();
  ASSERT_TRUE(g.Apply(GraphUpdate::DeleteRelationship(1)).ok());
  std::set<NodeId> nodes;
  g.ForEachNode([&](const Node& n) { nodes.insert(n.id); });
  EXPECT_EQ(nodes, (std::set<NodeId>{0, 1, 2}));
  std::set<RelId> rels;
  g.ForEachRelationship([&](const Relationship& r) { rels.insert(r.id); });
  EXPECT_EQ(rels, (std::set<RelId>{0, 2}));
}

TEST(MemoryGraphTest, CloneIsDeepAndEqual) {
  MemoryGraph g = SmallGraph();
  auto copy = g.Clone();
  EXPECT_TRUE(g.SameGraphAs(*copy));
  ASSERT_TRUE(copy->Apply(GraphUpdate::DeleteRelationship(0)).ok());
  EXPECT_FALSE(g.SameGraphAs(*copy));
  EXPECT_EQ(g.NumRelationships(), 3u);  // original untouched
}

TEST(MemoryGraphTest, DenseMapSkipsHoles) {
  MemoryGraph g;
  ASSERT_TRUE(g.Apply(GraphUpdate::AddNode(2)).ok());
  ASSERT_TRUE(g.Apply(GraphUpdate::AddNode(5)).ok());
  ASSERT_TRUE(g.Apply(GraphUpdate::AddNode(9)).ok());
  DenseIdMap map = g.BuildDenseMap();
  EXPECT_EQ(map.size(), 3u);
  EXPECT_EQ(map.dense_to_sparse, (std::vector<NodeId>{2, 5, 9}));
  EXPECT_TRUE(map.IsMapped(5));
  EXPECT_FALSE(map.IsMapped(3));
  EXPECT_EQ(map.sparse_to_dense[9], 2u);
}

TEST(MemoryGraphTest, EncodeDecodeRoundTrip) {
  MemoryGraph g = SmallGraph();
  ASSERT_TRUE(
      g.Apply(GraphUpdate::SetNodeProperty(1, "k", PropertyValue("v"))).ok());
  ASSERT_TRUE(g.Apply(GraphUpdate::DeleteRelationship(1)).ok());
  std::string buf;
  g.EncodeTo(&buf);
  auto decoded = MemoryGraph::DecodeFrom(util::Slice(buf));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(g.SameGraphAs(**decoded));
  // Adjacency is rebuilt by decode.
  EXPECT_EQ((*decoded)->OutRels(0), g.OutRels(0));
}

TEST(MemoryGraphTest, DropAndRebuildNeighbourhoods) {
  MemoryGraph g = SmallGraph();
  const auto before = g.OutRels(0);
  g.DropNeighbourhoods();
  EXPECT_FALSE(g.has_neighbourhoods());
  g.RebuildNeighbourhoods();
  EXPECT_TRUE(g.has_neighbourhoods());
  EXPECT_EQ(g.OutRels(0), before);
}

TEST(MemoryGraphTest, EstimateMemoryTracksSize) {
  MemoryGraph small = SmallGraph();
  MemoryGraph big;
  for (NodeId i = 0; i < 1000; ++i) {
    ASSERT_TRUE(big.Apply(GraphUpdate::AddNode(i)).ok());
  }
  for (RelId i = 0; i + 1 < 1000; ++i) {
    ASSERT_TRUE(big.Apply(GraphUpdate::AddRelationship(i, i, i + 1, "R")).ok());
  }
  EXPECT_GT(big.EstimateMemoryBytes(), small.EstimateMemoryBytes() * 10);
}

TEST(MemoryGraphTest, SparseIdsGrowCapacity) {
  MemoryGraph g;
  ASSERT_TRUE(g.Apply(GraphUpdate::AddNode(1000000)).ok());
  EXPECT_EQ(g.NumNodes(), 1u);
  EXPECT_EQ(g.NodeCapacity(), 1000001u);
  EXPECT_NE(g.GetNode(1000000), nullptr);
}

// Randomized consistency: adjacency vectors always agree with the
// relationship vector.
class MemGraphFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(MemGraphFuzzTest, AdjacencyConsistentUnderRandomOps) {
  util::Random rng(static_cast<uint64_t>(GetParam()));
  MemoryGraph g;
  std::vector<NodeId> live_nodes;
  std::vector<RelId> live_rels;
  NodeId next_node = 0;
  RelId next_rel = 0;
  for (int op = 0; op < 3000; ++op) {
    const double dice = rng.NextDouble();
    if (dice < 0.3 || live_nodes.empty()) {
      ASSERT_TRUE(g.Apply(GraphUpdate::AddNode(next_node)).ok());
      live_nodes.push_back(next_node++);
    } else if (dice < 0.7) {
      const NodeId s = live_nodes[rng.Uniform(live_nodes.size())];
      const NodeId t = live_nodes[rng.Uniform(live_nodes.size())];
      ASSERT_TRUE(g.Apply(GraphUpdate::AddRelationship(next_rel, s, t, "R")).ok());
      live_rels.push_back(next_rel++);
    } else if (!live_rels.empty()) {
      const size_t idx = rng.Uniform(live_rels.size());
      ASSERT_TRUE(g.Apply(GraphUpdate::DeleteRelationship(live_rels[idx])).ok());
      live_rels.erase(live_rels.begin() + static_cast<long>(idx));
    }
  }
  EXPECT_EQ(g.NumRelationships(), live_rels.size());
  // Invariant: every live rel appears in exactly its endpoints' vectors.
  size_t adjacency_total = 0;
  for (NodeId n : live_nodes) {
    for (RelId r : g.OutRels(n)) {
      ASSERT_NE(g.GetRelationship(r), nullptr);
      EXPECT_EQ(g.GetRelationship(r)->src, n);
      ++adjacency_total;
    }
    for (RelId r : g.InRels(n)) {
      ASSERT_NE(g.GetRelationship(r), nullptr);
      EXPECT_EQ(g.GetRelationship(r)->tgt, n);
    }
  }
  EXPECT_EQ(adjacency_total, live_rels.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemGraphFuzzTest, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace aion::graph
