#include "storage/page_cache.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "storage/file.h"

namespace aion::storage {
namespace {

class PageCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = MakeTempDir("aion_pc_test_");
    ASSERT_TRUE(dir.ok());
    dir_ = *dir;
  }
  void TearDown() override { (void)RemoveDirRecursively(dir_); }

  std::string dir_;
};

TEST_F(PageCacheTest, AllocateAndFetch) {
  auto cache = PageCache::Open(dir_ + "/db", 16);
  ASSERT_TRUE(cache.ok());
  PageId id;
  {
    auto page = (*cache)->Allocate(&id);
    ASSERT_TRUE(page.ok());
    memcpy(page->data(), "hello", 5);
    page->MarkDirty();
  }
  auto page = (*cache)->Fetch(id);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(memcmp(page->data(), "hello", 5), 0);
  EXPECT_EQ(page->page_id(), id);
}

TEST_F(PageCacheTest, AllocateReturnsZeroedPages) {
  auto cache = PageCache::Open(dir_ + "/db", 16);
  ASSERT_TRUE(cache.ok());
  PageId id;
  auto page = (*cache)->Allocate(&id);
  ASSERT_TRUE(page.ok());
  for (size_t i = 0; i < kPageSize; ++i) {
    ASSERT_EQ(page->data()[i], 0) << "byte " << i;
  }
}

TEST_F(PageCacheTest, FetchBeyondEndFails) {
  auto cache = PageCache::Open(dir_ + "/db", 16);
  ASSERT_TRUE(cache.ok());
  EXPECT_FALSE((*cache)->Fetch(5).ok());
}

TEST_F(PageCacheTest, EvictionWritesBackDirtyPages) {
  auto cache = PageCache::Open(dir_ + "/db", 8);
  ASSERT_TRUE(cache.ok());
  // Allocate 32 pages (4x capacity) with distinct content.
  std::vector<PageId> ids(32);
  for (int i = 0; i < 32; ++i) {
    auto page = (*cache)->Allocate(&ids[i]);
    ASSERT_TRUE(page.ok());
    page->data()[0] = static_cast<char>(i);
    page->data()[kPageSize - 1] = static_cast<char>(i + 1);
    page->MarkDirty();
  }
  EXPECT_GT((*cache)->evictions(), 0u);
  // All pages readable with correct content after forced eviction churn.
  for (int i = 0; i < 32; ++i) {
    auto page = (*cache)->Fetch(ids[i]);
    ASSERT_TRUE(page.ok());
    EXPECT_EQ(page->data()[0], static_cast<char>(i));
    EXPECT_EQ(page->data()[kPageSize - 1], static_cast<char>(i + 1));
  }
}

TEST_F(PageCacheTest, PinnedPagesSurviveEvictionPressure) {
  auto cache = PageCache::Open(dir_ + "/db", 8);
  ASSERT_TRUE(cache.ok());
  PageId pinned_id;
  auto pinned = (*cache)->Allocate(&pinned_id);
  ASSERT_TRUE(pinned.ok());
  memcpy(pinned->data(), "pinned", 6);
  pinned->MarkDirty();
  // Churn through many other pages.
  for (int i = 0; i < 20; ++i) {
    PageId id;
    auto page = (*cache)->Allocate(&id);
    ASSERT_TRUE(page.ok());
  }
  // The pinned handle's data pointer is still valid and intact.
  EXPECT_EQ(memcmp(pinned->data(), "pinned", 6), 0);
}

TEST_F(PageCacheTest, AllFramesPinnedFails) {
  auto cache = PageCache::Open(dir_ + "/db", 8);
  ASSERT_TRUE(cache.ok());
  std::vector<PageHandle> pins;
  for (int i = 0; i < 8; ++i) {
    PageId id;
    auto page = (*cache)->Allocate(&id);
    ASSERT_TRUE(page.ok());
    pins.push_back(std::move(*page));
  }
  PageId id;
  EXPECT_FALSE((*cache)->Allocate(&id).ok());
  pins.clear();
  EXPECT_TRUE((*cache)->Allocate(&id).ok());
}

TEST_F(PageCacheTest, PersistsAcrossReopen) {
  const std::string path = dir_ + "/db";
  PageId id;
  {
    auto cache = PageCache::Open(path, 8);
    ASSERT_TRUE(cache.ok());
    auto page = (*cache)->Allocate(&id);
    ASSERT_TRUE(page.ok());
    memcpy(page->data(), "durable", 7);
    page->MarkDirty();
    page->Release();
    ASSERT_TRUE((*cache)->Sync().ok());
  }
  auto cache = PageCache::Open(path, 8);
  ASSERT_TRUE(cache.ok());
  EXPECT_EQ((*cache)->num_pages(), 1u);
  auto page = (*cache)->Fetch(id);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(memcmp(page->data(), "durable", 7), 0);
}

TEST_F(PageCacheTest, FreedPagesAreReused) {
  auto cache = PageCache::Open(dir_ + "/db", 8);
  ASSERT_TRUE(cache.ok());
  PageId a, b;
  { auto p = (*cache)->Allocate(&a); ASSERT_TRUE(p.ok()); }
  ASSERT_TRUE((*cache)->Free(a).ok());
  { auto p = (*cache)->Allocate(&b); ASSERT_TRUE(p.ok()); }
  EXPECT_EQ(a, b);
  EXPECT_EQ((*cache)->num_pages(), 1u);
}

TEST_F(PageCacheTest, HitMissAccounting) {
  auto cache = PageCache::Open(dir_ + "/db", 8);
  ASSERT_TRUE(cache.ok());
  PageId id;
  { auto p = (*cache)->Allocate(&id); ASSERT_TRUE(p.ok()); }
  const uint64_t misses_before = (*cache)->misses();
  { auto p = (*cache)->Fetch(id); ASSERT_TRUE(p.ok()); }
  EXPECT_EQ((*cache)->misses(), misses_before);
  EXPECT_GT((*cache)->hits(), 0u);
}

TEST_F(PageCacheTest, MoveSemanticsOfHandle) {
  auto cache = PageCache::Open(dir_ + "/db", 8);
  ASSERT_TRUE(cache.ok());
  PageId id;
  auto page = (*cache)->Allocate(&id);
  ASSERT_TRUE(page.ok());
  PageHandle h = std::move(*page);
  EXPECT_TRUE(h.valid());
  PageHandle h2;
  EXPECT_FALSE(h2.valid());
  h2 = std::move(h);
  EXPECT_TRUE(h2.valid());
  EXPECT_FALSE(h.valid());  // NOLINT(bugprone-use-after-move)
}

}  // namespace
}  // namespace aion::storage
