// SlowQueryLog: disabled-by-default semantics, threshold filtering, ring
// retention, JSON-line shape, and file writing with rotation.
#include "obs/slowlog.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "storage/file.h"

namespace aion::obs {
namespace {

SlowQueryLog::Entry MakeEntry(uint64_t nanos, const std::string& query) {
  SlowQueryLog::Entry entry;
  entry.unix_millis = 1700000000000ull;
  entry.query_id = 77;
  entry.session_id = 3;
  entry.nanos = nanos;
  entry.store = "timestore";
  entry.query = query;
  entry.summary_json = "{\"bptree_probes\":2}";
  return entry;
}

TEST(SlowQueryLogTest, DisabledByDefaultRecordsNothing) {
  SlowQueryLog log(SlowQueryLog::Options{});  // threshold 0 = off
  EXPECT_FALSE(log.enabled());
  log.Record(MakeEntry(1'000'000'000, "MATCH (n) RETURN n"));
  EXPECT_EQ(log.total_recorded(), 0u);
  EXPECT_TRUE(log.Recent().empty());
}

TEST(SlowQueryLogTest, ThresholdFiltersFastQueries) {
  SlowQueryLog::Options options;
  options.threshold_nanos = 1000;
  SlowQueryLog log(options);
  EXPECT_TRUE(log.enabled());
  log.Record(MakeEntry(999, "fast"));
  log.Record(MakeEntry(1000, "at threshold"));
  log.Record(MakeEntry(5000, "slow"));
  EXPECT_EQ(log.total_recorded(), 2u);
  const std::vector<SlowQueryLog::Entry> recent = log.Recent();
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_EQ(recent[0].query, "at threshold");
  EXPECT_EQ(recent[1].query, "slow");
}

TEST(SlowQueryLogTest, RingDropsOldestBeyondCapacity) {
  SlowQueryLog::Options options;
  options.threshold_nanos = 1;
  options.ring_capacity = 3;
  SlowQueryLog log(options);
  for (int i = 0; i < 5; ++i) {
    log.Record(MakeEntry(10, "q" + std::to_string(i)));
  }
  EXPECT_EQ(log.total_recorded(), 5u);
  const std::vector<SlowQueryLog::Entry> recent = log.Recent();
  ASSERT_EQ(recent.size(), 3u);
  EXPECT_EQ(recent[0].query, "q2");
  EXPECT_EQ(recent[2].query, "q4");
}

TEST(SlowQueryLogTest, ToJsonLineShape) {
  SlowQueryLog::Entry entry = MakeEntry(4242, "MATCH (n) RETURN \"x\"");
  const std::string line = SlowQueryLog::ToJsonLine(entry);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_NE(line.find("\"unix_millis\":1700000000000"), std::string::npos);
  EXPECT_NE(line.find("\"query_id\":77"), std::string::npos);
  EXPECT_NE(line.find("\"session_id\":3"), std::string::npos);
  EXPECT_NE(line.find("\"nanos\":4242"), std::string::npos);
  EXPECT_NE(line.find("\"store\":\"timestore\""), std::string::npos);
  // Quotes inside the statement must be escaped.
  EXPECT_NE(line.find("\\\"x\\\""), std::string::npos);
  // The stats summary embeds as an object, not a quoted string.
  EXPECT_NE(line.find("\"summary\":{\"bptree_probes\":2}"), std::string::npos);
}

TEST(SlowQueryLogTest, WritesJsonLinesToFile) {
  auto dir = storage::MakeTempDir("aion_slowlog_test_");
  ASSERT_TRUE(dir.ok());
  const std::string path = *dir + "/slow.jsonl";
  {
    SlowQueryLog::Options options;
    options.threshold_nanos = 1;
    options.path = path;
    SlowQueryLog log(options);
    log.Record(MakeEntry(100, "first"));
    log.Record(MakeEntry(200, "second"));
  }  // destructor flushes + closes
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    ++lines;
  }
  EXPECT_EQ(lines, 2u);
}

TEST(SlowQueryLogTest, RotatesWhenFileExceedsLimit) {
  auto dir = storage::MakeTempDir("aion_slowlog_test_");
  ASSERT_TRUE(dir.ok());
  const std::string path = *dir + "/slow.jsonl";
  SlowQueryLog::Options options;
  options.threshold_nanos = 1;
  options.path = path;
  options.max_file_bytes = 256;  // tiny: a few records trigger rotation
  SlowQueryLog log(options);
  for (int i = 0; i < 32; ++i) {
    log.Record(MakeEntry(10, "padding padding padding " + std::to_string(i)));
  }
  std::ifstream rotated(path + ".1");
  EXPECT_TRUE(rotated.good()) << "expected one rotated generation";
  std::ifstream current(path);
  EXPECT_TRUE(current.good());
  // Every record survives in the ring even across file rotation.
  EXPECT_EQ(log.total_recorded(), 32u);
}

TEST(SlowQueryLogTest, RotationKeepsNewestEntriesInCurrentFile) {
  auto dir = storage::MakeTempDir("aion_slowlog_test_");
  ASSERT_TRUE(dir.ok());
  const std::string path = *dir + "/slow.jsonl";
  SlowQueryLog::Options options;
  options.threshold_nanos = 1;
  options.path = path;
  options.max_file_bytes = 256;
  SlowQueryLog log(options);
  constexpr int kRecords = 64;
  for (int i = 0; i < kRecords; ++i) {
    log.Record(MakeEntry(
        10, "marker_" + std::to_string(i) + " padding padding padding"));
  }
  const auto read_all = [](const std::string& p) {
    std::ifstream in(p);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  };
  const std::string current = read_all(path);
  // Rollover keeps the newest entries: the last record always lands in the
  // current file, and the very first one has rotated out of it.
  EXPECT_NE(current.find("marker_" + std::to_string(kRecords - 1)),
            std::string::npos);
  EXPECT_EQ(current.find("\"marker_0 "), std::string::npos);
}

TEST(SlowQueryLogTest, RotationBoundsFileCount) {
  auto dir = storage::MakeTempDir("aion_slowlog_test_");
  ASSERT_TRUE(dir.ok());
  const std::string path = *dir + "/slow.jsonl";
  SlowQueryLog::Options options;
  options.threshold_nanos = 1;
  options.path = path;
  options.max_file_bytes = 128;  // tiny: rotation happens many times
  SlowQueryLog log(options);
  for (int i = 0; i < 256; ++i) {
    log.Record(MakeEntry(10, "bounded " + std::to_string(i)));
  }
  // Repeated rollover replaces the single rotated generation instead of
  // accumulating numbered files: path and path.1 exist, path.2 never does.
  EXPECT_TRUE(std::ifstream(path).good());
  EXPECT_TRUE(std::ifstream(path + ".1").good());
  EXPECT_FALSE(std::ifstream(path + ".2").good());
  // Both live files respect the size bound (plus at most one record of
  // slack from the line that triggered the rollover).
  const auto file_size = [](const std::string& p) {
    std::ifstream in(p, std::ios::ate | std::ios::binary);
    return static_cast<size_t>(in.tellg());
  };
  EXPECT_LE(file_size(path), options.max_file_bytes + 256);
  EXPECT_LE(file_size(path + ".1"), options.max_file_bytes + 256);
}

}  // namespace
}  // namespace aion::obs
