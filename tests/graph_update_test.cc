#include "graph/update.h"

#include <gtest/gtest.h>

#include <vector>

namespace aion::graph {
namespace {

std::vector<GraphUpdate> SampleUpdates() {
  PropertySet props;
  props.Set("name", PropertyValue("ada"));
  std::vector<GraphUpdate> updates = {
      GraphUpdate::AddNode(1, {"Person"}, props),
      GraphUpdate::AddNode(2, {"Person", "Admin"}),
      GraphUpdate::AddRelationship(10, 1, 2, "KNOWS"),
      GraphUpdate::SetNodeProperty(1, "age", PropertyValue(36)),
      GraphUpdate::RemoveNodeProperty(1, "name"),
      GraphUpdate::AddNodeLabel(2, "Owner"),
      GraphUpdate::RemoveNodeLabel(2, "Admin"),
      GraphUpdate::SetRelationshipProperty(10, "since", PropertyValue(1999)),
      GraphUpdate::RemoveRelationshipProperty(10, "since"),
      GraphUpdate::DeleteRelationship(10),
      GraphUpdate::DeleteNode(2),
  };
  Timestamp ts = 1;
  for (GraphUpdate& u : updates) u.ts = ts++;
  return updates;
}

TEST(GraphUpdateTest, FactoriesPopulateFields) {
  GraphUpdate u = GraphUpdate::AddRelationship(5, 1, 2, "LIKES");
  EXPECT_EQ(u.op, UpdateOp::kAddRelationship);
  EXPECT_EQ(u.id, 5u);
  EXPECT_EQ(u.src, 1u);
  EXPECT_EQ(u.tgt, 2u);
  EXPECT_EQ(u.type, "LIKES");
}

TEST(GraphUpdateTest, AddNodeSortsAndDedupsLabels) {
  GraphUpdate u = GraphUpdate::AddNode(1, {"b", "a", "b", "c", "a"});
  EXPECT_EQ(u.labels, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(GraphUpdateTest, IsNodeOpClassification) {
  EXPECT_TRUE(IsNodeOp(UpdateOp::kAddNode));
  EXPECT_TRUE(IsNodeOp(UpdateOp::kDeleteNode));
  EXPECT_TRUE(IsNodeOp(UpdateOp::kSetNodeProperty));
  EXPECT_TRUE(IsNodeOp(UpdateOp::kAddNodeLabel));
  EXPECT_FALSE(IsNodeOp(UpdateOp::kAddRelationship));
  EXPECT_FALSE(IsNodeOp(UpdateOp::kDeleteRelationship));
  EXPECT_FALSE(IsNodeOp(UpdateOp::kSetRelationshipProperty));
}

TEST(GraphUpdateTest, EncodeDecodeEveryOp) {
  for (const GraphUpdate& u : SampleUpdates()) {
    std::string buf;
    u.EncodeTo(&buf);
    util::Slice input(buf);
    auto decoded = GraphUpdate::DecodeFrom(&input);
    ASSERT_TRUE(decoded.ok()) << u.ToString();
    EXPECT_EQ(*decoded, u) << u.ToString();
    EXPECT_TRUE(input.empty());
  }
}

TEST(GraphUpdateTest, BatchRoundTrip) {
  const std::vector<GraphUpdate> updates = SampleUpdates();
  std::string buf;
  EncodeUpdateBatch(updates, &buf);
  auto decoded = DecodeUpdateBatch(util::Slice(buf));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, updates);
}

TEST(GraphUpdateTest, EmptyBatchRoundTrip) {
  std::string buf;
  EncodeUpdateBatch({}, &buf);
  auto decoded = DecodeUpdateBatch(util::Slice(buf));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

TEST(GraphUpdateTest, DecodeRejectsGarbage) {
  util::Slice garbage("\xff\x01\x02", 3);
  EXPECT_FALSE(GraphUpdate::DecodeFrom(&garbage).ok());
  util::Slice empty("", 0);
  EXPECT_FALSE(GraphUpdate::DecodeFrom(&empty).ok());
}

TEST(GraphUpdateTest, DecodeTruncatedBatchFails) {
  std::string buf;
  EncodeUpdateBatch(SampleUpdates(), &buf);
  EXPECT_FALSE(DecodeUpdateBatch(util::Slice(buf.data(), buf.size() / 2)).ok());
}

TEST(GraphUpdateTest, ToStringMentionsOpAndId) {
  const GraphUpdate u = GraphUpdate::DeleteNode(77);
  EXPECT_NE(u.ToString().find("DeleteNode"), std::string::npos);
  EXPECT_NE(u.ToString().find("77"), std::string::npos);
}

TEST(TimeIntervalTest, ContainsAndOverlaps) {
  const TimeInterval iv{10, 20};
  EXPECT_TRUE(iv.Contains(10));
  EXPECT_TRUE(iv.Contains(19));
  EXPECT_FALSE(iv.Contains(20));
  EXPECT_FALSE(iv.Contains(9));
  EXPECT_TRUE(iv.Overlaps(0, 11));
  EXPECT_TRUE(iv.Overlaps(19, 100));
  EXPECT_FALSE(iv.Overlaps(20, 100));
  EXPECT_FALSE(iv.Overlaps(0, 10));
  EXPECT_TRUE(iv.Overlaps(12, 15));
  const TimeInterval open{5, kInfiniteTime};
  EXPECT_TRUE(open.Contains(1ULL << 62));
  EXPECT_TRUE(open.Overlaps(100, 101));
}

}  // namespace
}  // namespace aion::graph
