// Cost-based store routing (ISSUE 10): the model defers to the Sec 6.3
// fraction heuristic until both expansion routes have kMinSamples measured
// executions, then routes by estimated nanos. The integration half seeds a
// live store's model through the public accessor and asserts the routing
// decision flips with the measurements.
#include "core/cost_model.h"

#include <gtest/gtest.h>

#include <string>

#include "core/aion.h"
#include "storage/file.h"

namespace aion::core {
namespace {

TEST(CostModelTest, NotConfidentUntilBothRoutesHaveMinSamples) {
  OperatorCostModel model;
  EXPECT_FALSE(model.confident());
  for (uint64_t i = 0; i < OperatorCostModel::kMinSamples; ++i) {
    model.ObserveLineageExpand(1000, 10);
  }
  // One route alone is not enough.
  EXPECT_FALSE(model.confident());
  for (uint64_t i = 0; i + 1 < OperatorCostModel::kMinSamples; ++i) {
    model.ObserveTimeStoreExpand(1000, 10);
  }
  EXPECT_FALSE(model.confident());
  model.ObserveTimeStoreExpand(1000, 10);
  EXPECT_TRUE(model.confident());
  EXPECT_EQ(model.lineage_samples(), OperatorCostModel::kMinSamples);
  EXPECT_EQ(model.timestore_samples(), OperatorCostModel::kMinSamples);
}

TEST(CostModelTest, EwmaTracksPerNodeCostAndZeroNodeRunsStayFinite) {
  OperatorCostModel model;
  model.ObserveLineageExpand(1000, 10);  // 100 nanos/node seeds the EWMA
  EXPECT_DOUBLE_EQ(model.lineage_nanos_per_node(), 100.0);
  model.ObserveLineageExpand(2000, 10);  // 200/node, alpha 1/4 -> 125
  EXPECT_DOUBLE_EQ(model.lineage_nanos_per_node(), 125.0);
  // A 0-node expansion counts as one node, so the per-unit cost cannot
  // divide by zero.
  model.ObserveLineageExpand(400, 0);
  EXPECT_GT(model.lineage_nanos_per_node(), 0.0);
}

TEST(CostModelTest, TimeStoreEstimateCarriesSnapshotLoadTerm) {
  OperatorCostModel model;
  model.ObserveLineageExpand(1000, 10);    // 100 nanos/node
  model.ObserveTimeStoreExpand(500, 10);   // 50 nanos/node
  model.ObserveSnapshotLoad(100000);       // but a heavy fixed cost
  // Small expansions: the snapshot load dominates and lineage wins.
  EXPECT_LT(model.EstimateLineageCost(10),
            model.EstimateTimeStoreCost(10));
  // Large expansions: the cheaper per-node rate amortizes the load.
  EXPECT_GT(model.EstimateLineageCost(100000),
            model.EstimateTimeStoreCost(100000));
}

TEST(CostModelTest, ToJsonCarriesEveryField) {
  OperatorCostModel model;
  model.ObserveLineageExpand(1000, 10);
  const std::string json = model.ToJson();
  EXPECT_NE(json.find("lineage_nanos_per_node"), std::string::npos);
  EXPECT_NE(json.find("timestore_nanos_per_node"), std::string::npos);
  EXPECT_NE(json.find("snapshot_load_nanos"), std::string::npos);
}

class CostRoutingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = storage::MakeTempDir("aion_costroute_");
    ASSERT_TRUE(dir.ok());
    dir_ = *dir;
    AionStore::Options options;
    options.dir = dir_ + "/aion";
    options.lineage_mode = AionStore::LineageMode::kSync;
    auto aion = AionStore::Open(options);
    ASSERT_TRUE(aion.ok());
    aion_ = std::move(*aion);
    // A small chain so expansions of any hop count are well-defined.
    std::vector<graph::GraphUpdate> updates;
    for (graph::NodeId i = 0; i < 16; ++i) {
      updates.push_back(graph::GraphUpdate::AddNode(i));
    }
    for (graph::RelId r = 0; r + 1 < 16; ++r) {
      updates.push_back(
          graph::GraphUpdate::AddRelationship(r, r, r + 1, "NEXT"));
    }
    ASSERT_TRUE(aion_->Ingest(1, updates).ok());
  }

  void TearDown() override {
    aion_.reset();
    (void)storage::RemoveDirRecursively(dir_);
  }

  std::string dir_;
  std::unique_ptr<AionStore> aion_;
};

TEST_F(CostRoutingTest, FreshStoreUsesFractionHeuristic) {
  // No observations yet: small hop counts stay on the LineageStore, deep
  // expansions go to the TimeStore — the pre-ISSUE-10 behaviour.
  EXPECT_FALSE(aion_->cost_model()->confident());
  EXPECT_EQ(aion_->ChooseStoreForExpand(1),
            AionStore::StoreChoice::kLineageStore);
}

TEST_F(CostRoutingTest, MeasuredCostsOverrideHeuristicBothWays) {
  OperatorCostModel* model = aion_->cost_model();
  // Seed: lineage 10x cheaper per node, negligible snapshot cost.
  for (uint64_t i = 0; i < OperatorCostModel::kMinSamples; ++i) {
    model->ObserveLineageExpand(100, 10);     // 10 nanos/node
    model->ObserveTimeStoreExpand(1000, 10);  // 100 nanos/node
  }
  ASSERT_TRUE(model->confident());
  EXPECT_EQ(aion_->ChooseStoreForExpand(1),
            AionStore::StoreChoice::kLineageStore);
  // Flip the measurements: EWMA with alpha 1/4 converges past the
  // crossover within a handful of observations.
  for (int i = 0; i < 64; ++i) {
    model->ObserveLineageExpand(100000, 10);  // 10000 nanos/node
    model->ObserveTimeStoreExpand(100, 10);   // 10 nanos/node
  }
  EXPECT_EQ(aion_->ChooseStoreForExpand(1),
            AionStore::StoreChoice::kTimeStore);
}

TEST_F(CostRoutingTest, ExpandFeedsTheCostModel) {
  const uint64_t before = aion_->cost_model()->lineage_samples() +
                          aion_->cost_model()->timestore_samples();
  auto levels = aion_->Expand(0, graph::Direction::kOutgoing, 2, 1);
  ASSERT_TRUE(levels.ok()) << levels.status().ToString();
  EXPECT_GT(aion_->cost_model()->lineage_samples() +
                aion_->cost_model()->timestore_samples(),
            before);
}

}  // namespace
}  // namespace aion::core
