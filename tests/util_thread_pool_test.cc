#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace aion::util {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForSmallRangeInline) {
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  pool.ParallelFor(3, [&sum](size_t i) { sum.fetch_add(static_cast<int>(i)); });
  EXPECT_EQ(sum.load(), 3);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&called](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, TasksSubmittedDuringWaitComplete) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] {
    counter.fetch_add(1);
    pool.Submit([&] { counter.fetch_add(1); });
  });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 10);
}

}  // namespace
}  // namespace aion::util
