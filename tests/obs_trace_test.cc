// Hierarchical tracing: span parentage, query-id stamping, Chrome
// trace_event export, and the enabled-flag's thread safety.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace aion::obs {
namespace {

// The global sink is shared across tests in this binary; each test clears
// it first and keys assertions on its own span names.

TEST(TraceSpanHierarchyTest, NestedSpansFormParentChain) {
  TraceSink& sink = TraceSink::Global();
  sink.Clear();
  sink.set_enabled(true);
  uint64_t outer_id = 0;
  {
    TraceSpan outer("hier.outer");
    outer_id = outer.span_id();
    EXPECT_EQ(TraceSpan::CurrentSpanId(), outer_id);
    {
      TraceSpan inner("hier.inner");
      EXPECT_EQ(TraceSpan::CurrentSpanId(), inner.span_id());
    }
    // Destruction restores the enclosing span as the thread's current.
    EXPECT_EQ(TraceSpan::CurrentSpanId(), outer_id);
  }
  EXPECT_EQ(TraceSpan::CurrentSpanId(), 0u);

  const TraceEvent* outer_event = nullptr;
  const TraceEvent* inner_event = nullptr;
  const std::vector<TraceEvent> events = sink.Snapshot();
  for (const TraceEvent& e : events) {
    if (std::string(e.name) == "hier.outer") outer_event = &e;
    if (std::string(e.name) == "hier.inner") inner_event = &e;
  }
  ASSERT_NE(outer_event, nullptr);
  ASSERT_NE(inner_event, nullptr);
  EXPECT_EQ(outer_event->parent_id, 0u);  // root
  EXPECT_EQ(inner_event->parent_id, outer_event->span_id);
  EXPECT_NE(inner_event->span_id, outer_event->span_id);
}

TEST(TraceSpanHierarchyTest, SiblingsShareAParentButNotAnId) {
  TraceSink& sink = TraceSink::Global();
  sink.Clear();
  sink.set_enabled(true);
  {
    TraceSpan parent("sib.parent");
    { TraceSpan a("sib.a"); }
    { TraceSpan b("sib.b"); }
  }
  uint64_t parent_id = 0, a_parent = 0, b_parent = 0, a_id = 0, b_id = 0;
  for (const TraceEvent& e : sink.Snapshot()) {
    const std::string name(e.name);
    if (name == "sib.parent") parent_id = e.span_id;
    if (name == "sib.a") a_parent = e.parent_id, a_id = e.span_id;
    if (name == "sib.b") b_parent = e.parent_id, b_id = e.span_id;
  }
  ASSERT_NE(parent_id, 0u);
  EXPECT_EQ(a_parent, parent_id);
  EXPECT_EQ(b_parent, parent_id);
  EXPECT_NE(a_id, b_id);
}

TEST(TraceContextTest, StampsQueryIdOnCoveredSpans) {
  TraceSink& sink = TraceSink::Global();
  sink.Clear();
  sink.set_enabled(true);
  EXPECT_EQ(TraceContext::CurrentQueryId(), 0u);
  const uint64_t qid = TraceContext::NextQueryId();
  {
    TraceContext context(qid);
    EXPECT_EQ(TraceContext::CurrentQueryId(), qid);
    TraceSpan span("ctx.covered");
  }
  EXPECT_EQ(TraceContext::CurrentQueryId(), 0u);
  { TraceSpan span("ctx.uncovered"); }

  uint64_t covered = ~0ull, uncovered = ~0ull;
  for (const TraceEvent& e : sink.Snapshot()) {
    if (std::string(e.name) == "ctx.covered") covered = e.query_id;
    if (std::string(e.name) == "ctx.uncovered") uncovered = e.query_id;
  }
  EXPECT_EQ(covered, qid);
  EXPECT_EQ(uncovered, 0u);
}

TEST(TraceContextTest, NextQueryIdIsMonotonic) {
  const uint64_t a = TraceContext::NextQueryId();
  const uint64_t b = TraceContext::NextQueryId();
  EXPECT_GT(b, a);
  EXPECT_GT(a, 0u);
}

TEST(ChromeTraceExportTest, EmitsCompleteEventsWithSpanArgs) {
  TraceSink sink(16);
  TraceEvent e;
  e.name = "export.span";
  e.start_nanos = 2500;     // 2.5 us
  e.duration_nanos = 1500;  // 1.5 us
  e.thread_id = 7;
  e.span_id = 11;
  e.parent_id = 5;
  e.query_id = 3;
  sink.Record(e);
  const std::string json = sink.ExportChromeTrace();
  // A JSON array of trace_event objects.
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"name\":\"export.span\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":2.500"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":1.500"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":7"), std::string::npos);
  EXPECT_NE(json.find("\"span_id\":11"), std::string::npos);
  EXPECT_NE(json.find("\"parent_id\":5"), std::string::npos);
  EXPECT_NE(json.find("\"query_id\":3"), std::string::npos);
  // Well-formed enough: balanced braces, no trailing commas.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(json.find(",}"), std::string::npos);
  EXPECT_EQ(json.find(",]"), std::string::npos);
}

TEST(ChromeTraceExportTest, EmptySinkExportsEmptyArray) {
  TraceSink sink(4);
  EXPECT_EQ(sink.ExportChromeTrace(), "[]");
}

// Named to match scripts/check.sh's TSAN_TEST_FILTER: toggling the enabled
// flag while other threads record must be race-free (the flag is a
// std::atomic<bool>).
TEST(TraceSinkConcurrencyStress, ToggleEnabledWhileRecording) {
  TraceSink sink(256);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&sink, &stop] {
      TraceEvent e;
      e.name = "stress.span";
      while (!stop.load(std::memory_order_relaxed)) {
        sink.Record(e);
      }
    });
  }
  for (int i = 0; i < 2000; ++i) {
    sink.set_enabled(i % 2 == 0);
    if (i % 100 == 0) (void)sink.Snapshot();
  }
  stop.store(true);
  for (std::thread& t : writers) t.join();
  sink.set_enabled(true);
  sink.Record(TraceEvent{"final", 0, 0, 0, 1, 0, 0});
  EXPECT_GE(sink.total_recorded(), 1u);
}

}  // namespace
}  // namespace aion::obs
