// Group commit (leader/follower batching on the host write path): N
// committers enqueue, one leader appends + fsyncs the WAL once per group.
// Covered here: grouping under concurrency (fsyncs < commits), recovery
// identity after grouped appends, torn-tail crash recovery, and the
// Options validation around the new knobs.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <set>
#include <thread>
#include <vector>

#include "storage/file.h"
#include "txn/graphdb.h"

namespace aion::txn {
namespace {

class GroupCommitTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = storage::MakeTempDir("aion_group_commit_");
    ASSERT_TRUE(dir.ok());
    dir_ = *dir;
  }
  void TearDown() override { (void)storage::RemoveDirRecursively(dir_); }

  std::unique_ptr<GraphDatabase> OpenDb(GraphDatabase::Options options = {}) {
    options.data_dir = dir_ + "/db" + std::to_string(++counter_);
    auto db = GraphDatabase::Open(options);
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    last_data_dir_ = options.data_dir;
    return db.ok() ? std::move(*db) : nullptr;
  }

  std::string dir_;
  std::string last_data_dir_;
  int counter_ = 0;
};

TEST_F(GroupCommitTest, ConcurrentCommitsShareWalSyncs) {
  GraphDatabase::Options options;
  options.sync_commits = true;
  options.group_commit_max_wait_micros = 500;
  auto db = OpenDb(options);

  constexpr int kThreads = 8;
  constexpr int kCommitsPerThread = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < kCommitsPerThread; ++i) {
        auto txn = db->Begin();
        txn->CreateNode({"W"});
        if (!txn->Commit().ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& w : writers) w.join();

  constexpr uint64_t kTotal = kThreads * kCommitsPerThread;
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(db->NumNodes(), kTotal);
  EXPECT_EQ(db->CommitCount(), kTotal);
  EXPECT_EQ(db->LastCommitTimestamp(), kTotal);
  // The whole point: one fsync per leader round, not per transaction.
  EXPECT_EQ(db->WalSyncCount(), db->GroupCommitRounds());
  EXPECT_LT(db->WalSyncCount(), kTotal)
      << "no commits were ever grouped; group commit is not batching";
}

TEST_F(GroupCommitTest, ListenerSeesCommitOrderWithDistinctTimestamps) {
  GraphDatabase::Options options;
  options.group_commit_max_wait_micros = 200;
  auto db = OpenDb(options);

  // Listener callbacks run serialized under the commit latch, in ts order.
  std::vector<Timestamp> seen;
  class Recorder : public TransactionEventListener {
   public:
    explicit Recorder(std::vector<Timestamp>* out) : out_(out) {}
    void AfterCommit(const TransactionData& data) override {
      out_->push_back(data.commit_ts);
    }
    std::vector<Timestamp>* out_;
  } recorder(&seen);
  db->RegisterListener(&recorder);

  constexpr int kThreads = 6;
  constexpr int kCommitsPerThread = 20;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < kCommitsPerThread; ++i) {
        auto txn = db->Begin();
        txn->CreateNode();
        ASSERT_TRUE(txn->Commit().ok());
      }
    });
  }
  for (auto& w : writers) w.join();

  ASSERT_EQ(seen.size(), static_cast<size_t>(kThreads * kCommitsPerThread));
  for (size_t i = 1; i < seen.size(); ++i) {
    EXPECT_LT(seen[i - 1], seen[i]) << "listener order must be ts order";
  }
}

TEST_F(GroupCommitTest, InvalidTransactionsFailWithoutPoisoningTheGroup) {
  auto db = OpenDb();
  auto setup = db->Begin();
  const NodeId a = setup->CreateNode();
  const NodeId b = setup->CreateNode();
  ASSERT_TRUE(setup->Commit().ok());

  constexpr int kThreads = 8;
  std::atomic<int> ok_commits{0};
  std::atomic<int> failed_commits{0};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < 20; ++i) {
        auto txn = db->Begin();
        if ((t + i) % 3 == 0) {
          txn->CreateRelationship(a, 424242, "BAD");  // missing endpoint
        } else {
          txn->CreateRelationship(a, b, "OK");
        }
        if (txn->Commit().ok()) {
          ok_commits.fetch_add(1);
        } else {
          failed_commits.fetch_add(1);
        }
      }
    });
  }
  for (auto& w : writers) w.join();

  EXPECT_GT(ok_commits.load(), 0);
  EXPECT_GT(failed_commits.load(), 0);
  // Only the valid transactions materialized, no matter how they grouped.
  EXPECT_EQ(db->NumRelationships(), static_cast<size_t>(ok_commits.load()));
}

TEST_F(GroupCommitTest, RecoveryAfterConcurrentGroupedCommits) {
  {
    GraphDatabase::Options options;
    options.group_commit_max_wait_micros = 200;
    auto db = OpenDb(options);
    std::vector<std::thread> writers;
    for (int t = 0; t < 4; ++t) {
      writers.emplace_back([&] {
        for (int i = 0; i < 25; ++i) {
          auto txn = db->Begin();
          const NodeId n = txn->CreateNode({"R"});
          txn->SetNodeProperty(n, "k", graph::PropertyValue(int64_t{i}));
          ASSERT_TRUE(txn->Commit().ok());
        }
      });
    }
    for (auto& w : writers) w.join();
    EXPECT_EQ(db->NumNodes(), 100u);
  }
  // Reopen the same directory: WAL replay must rebuild the exact state.
  GraphDatabase::Options options;
  options.data_dir = last_data_dir_;
  auto reopened = GraphDatabase::Open(options);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->NumNodes(), 100u);
  EXPECT_EQ((*reopened)->LastCommitTimestamp(), 100u);
}

TEST_F(GroupCommitTest, MaxBatchOneDisablesGrouping) {
  GraphDatabase::Options options;
  options.group_commit_max_batch = 1;
  auto db = OpenDb(options);
  for (int i = 0; i < 10; ++i) {
    auto txn = db->Begin();
    txn->CreateNode();
    ASSERT_TRUE(txn->Commit().ok());
  }
  EXPECT_EQ(db->GroupCommitRounds(), db->CommitCount());
}

TEST_F(GroupCommitTest, TornWalTailRecoversCommittedPrefix) {
  {
    auto db = OpenDb();
    for (int i = 0; i < 10; ++i) {
      auto txn = db->Begin();
      txn->CreateNode({"T"});
      ASSERT_TRUE(txn->Commit().ok());
    }
  }
  // Crash point: the tail record was only partially written (torn by the
  // crash). Recovery must truncate it and keep the intact prefix.
  const std::string wal_path = last_data_dir_ + "/wal";
  const auto full_size = std::filesystem::file_size(wal_path);
  std::filesystem::resize_file(wal_path, full_size - 3);

  GraphDatabase::Options options;
  options.data_dir = last_data_dir_;
  auto reopened = GraphDatabase::Open(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->NumNodes(), 9u);
  EXPECT_EQ((*reopened)->LastCommitTimestamp(), 9u);

  // The truncated tail is gone from disk too, so the next commit appends a
  // clean record and a re-reopen agrees with it.
  {
    auto txn = (*reopened)->Begin();
    txn->CreateNode({"T"});
    ASSERT_TRUE(txn->Commit().ok());
  }
  reopened->reset();
  auto again = GraphDatabase::Open(options);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)->NumNodes(), 10u);
}

TEST_F(GroupCommitTest, GarbageWalTailIsDiscardedOnOpen) {
  {
    auto db = OpenDb();
    for (int i = 0; i < 5; ++i) {
      auto txn = db->Begin();
      txn->CreateNode();
      ASSERT_TRUE(txn->Commit().ok());
    }
  }
  const std::string wal_path = last_data_dir_ + "/wal";
  {
    std::ofstream out(wal_path, std::ios::binary | std::ios::app);
    out.write("\x40\x00\x00\x00\xde\xad", 6);  // half a frame header
  }
  GraphDatabase::Options options;
  options.data_dir = last_data_dir_;
  auto reopened = GraphDatabase::Open(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->NumNodes(), 5u);
}

TEST_F(GroupCommitTest, OptionsAreValidated) {
  GraphDatabase::Options options;
  options.group_commit_max_batch = 0;
  EXPECT_TRUE(GraphDatabase::Open(options).status().IsInvalidArgument());

  options = {};
  options.group_commit_max_wait_micros = 2'000'000;  // > 1 s
  EXPECT_TRUE(GraphDatabase::Open(options).status().IsInvalidArgument());
}

}  // namespace
}  // namespace aion::txn
