// Concurrency contracts of the storage layer: concurrent B+Tree readers
// share one page cache safely (internal latch), and a writer excluded by a
// store-level latch interleaves with reader phases without corruption.
#include <gtest/gtest.h>

#include <atomic>
#include <shared_mutex>
#include <thread>

#include "storage/bptree.h"
#include "storage/file.h"
#include "util/coding.h"
#include "util/random.h"

namespace aion::storage {
namespace {

std::string Key(uint64_t k) {
  std::string key;
  util::PutBigEndian64(&key, k);
  return key;
}

class StorageConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = MakeTempDir("aion_conc_test_");
    ASSERT_TRUE(dir.ok());
    dir_ = *dir;
  }
  void TearDown() override { (void)RemoveDirRecursively(dir_); }
  std::string dir_;
};

TEST_F(StorageConcurrencyTest, ConcurrentReadersShareTinyCache) {
  BpTree::Options options;
  options.cache_pages = 16;  // heavy eviction churn across threads
  auto tree = BpTree::Open(dir_ + "/tree", options);
  ASSERT_TRUE(tree.ok());
  constexpr uint64_t kEntries = 20000;
  for (uint64_t i = 0; i < kEntries; ++i) {
    ASSERT_TRUE((*tree)->Put(Key(i), "value" + std::to_string(i % 97)).ok());
  }
  constexpr int kThreads = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      util::Random rng(50 + t);
      for (int i = 0; i < 3000; ++i) {
        const uint64_t k = rng.Uniform(kEntries);
        auto v = (*tree)->Get(Key(k));
        if (!v.ok() || *v != "value" + std::to_string(k % 97)) {
          failures.fetch_add(1);
        }
      }
      // Range scans concurrently with point reads.
      auto it = (*tree)->NewIterator();
      size_t count = 0;
      for (it.Seek(Key(rng.Uniform(kEntries / 2))); it.Valid() && count < 500;
           it.Next()) {
        ++count;
      }
      if (!it.status().ok() || count != 500) failures.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(StorageConcurrencyTest, WriterExcludedByLatchInterleavesWithReaders) {
  auto tree = BpTree::Open(dir_ + "/tree2");
  ASSERT_TRUE(tree.ok());
  std::shared_mutex latch;  // the store-level latch the design prescribes
  std::atomic<int> failures{0};
  std::atomic<uint64_t> high_water{0};

  // Bounded work on all sides: on a single-core host a free-spinning reader
  // loop would starve the writer through the shared latch.
  std::thread writer([&] {
    for (uint64_t i = 0; i < 4000; ++i) {
      std::unique_lock<std::shared_mutex> lock(latch);
      if (!(*tree)->Put(Key(i), "v").ok()) failures.fetch_add(1);
      high_water.store(i + 1);
    }
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      util::Random rng(80 + t);
      for (int i = 0; i < 1500; ++i) {
        const uint64_t hw = high_water.load();
        if (hw == 0) {
          std::this_thread::yield();
          continue;
        }
        std::shared_lock<std::shared_mutex> lock(latch);
        const uint64_t k = rng.Uniform(hw);
        auto v = (*tree)->Get(Key(k));
        // Everything below the observed high-water mark must exist.
        if (!v.ok()) failures.fetch_add(1);
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ((*tree)->num_entries(), 4000u);
}

}  // namespace
}  // namespace aion::storage
