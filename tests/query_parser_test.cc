#include "query/parser.h"

#include <gtest/gtest.h>

namespace aion::query {
namespace {

TEST(LexerParserTest, Fig1aHistoryLookup) {
  // Fig 1a: history lookup between t1 and t2 (exclusive).
  auto stmt = Parse(
      "USE GDB FOR SYSTEM_TIME BETWEEN 10 AND 20 "
      "MATCH (n: Node) WHERE id(n) = 7 RETURN n");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->kind, Statement::Kind::kMatch);
  EXPECT_EQ(stmt->time.kind, TimeSpec::Kind::kBetween);
  EXPECT_EQ(stmt->time.a, 10u);
  EXPECT_EQ(stmt->time.b, 20u);
  ASSERT_EQ(stmt->patterns.size(), 1u);
  EXPECT_EQ(stmt->patterns[0].nodes[0].variable, "n");
  EXPECT_EQ(stmt->patterns[0].nodes[0].label, "Node");
  ASSERT_EQ(stmt->predicates.size(), 1u);
  EXPECT_EQ(stmt->predicates[0].kind, Predicate::Kind::kIdEquals);
  EXPECT_EQ(stmt->predicates[0].literal.int_value, 7);
  ASSERT_EQ(stmt->returns.size(), 1u);
  EXPECT_EQ(stmt->returns[0].kind, ReturnItem::Kind::kVariable);
}

TEST(LexerParserTest, Fig1bNeighbourhoodLookup) {
  auto stmt = Parse(
      "USE GDB FOR SYSTEM_TIME AS OF 5 "
      "MATCH (n)-[*3]->(m) WHERE id(n) = 2 RETURN m");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->time.kind, TimeSpec::Kind::kAsOf);
  EXPECT_EQ(stmt->time.a, 5u);
  ASSERT_EQ(stmt->patterns[0].rels.size(), 1u);
  EXPECT_EQ(stmt->patterns[0].rels[0].hops, 3u);
  EXPECT_EQ(stmt->patterns[0].rels[0].direction,
            RelPattern::Direction::kRight);
  EXPECT_EQ(stmt->patterns[0].nodes[1].variable, "m");
}

TEST(LexerParserTest, Fig1cBitemporalLookup) {
  auto stmt = Parse(
      "USE GDB FOR SYSTEM_TIME AS OF 5 "
      "MATCH (n: Node) WHERE id(n) = 1 "
      "AND APPLICATION_TIME CONTAINED IN (100, 200) RETURN n");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_EQ(stmt->predicates.size(), 2u);
  EXPECT_EQ(stmt->predicates[1].kind, Predicate::Kind::kApplicationTime);
  EXPECT_EQ(stmt->predicates[1].app_a, 100u);
  EXPECT_EQ(stmt->predicates[1].app_b, 200u);
}

TEST(LexerParserTest, AllTimeSpecForms) {
  EXPECT_EQ(Parse("USE g FOR SYSTEM_TIME AS OF 3 MATCH (n) RETURN n")
                ->time.kind,
            TimeSpec::Kind::kAsOf);
  EXPECT_EQ(Parse("USE g FOR SYSTEM_TIME FROM 1 TO 9 MATCH (n) RETURN n")
                ->time.kind,
            TimeSpec::Kind::kFromTo);
  EXPECT_EQ(
      Parse("USE g FOR SYSTEM_TIME BETWEEN 1 AND 9 MATCH (n) RETURN n")
          ->time.kind,
      TimeSpec::Kind::kBetween);
  EXPECT_EQ(
      Parse("USE g FOR SYSTEM_TIME CONTAINED IN (1, 9) MATCH (n) RETURN n")
          ->time.kind,
      TimeSpec::Kind::kContainedIn);
}

TEST(LexerParserTest, TimeSpecWindows) {
  graph::Timestamp start, end;
  Parse("USE g FOR SYSTEM_TIME FROM 5 TO 9 MATCH (n) RETURN n")
      ->time.ToWindow(&start, &end);
  EXPECT_EQ(start, 6u);  // FROM..TO is exclusive on both ends
  EXPECT_EQ(end, 9u);
  Parse("USE g FOR SYSTEM_TIME BETWEEN 5 AND 9 MATCH (n) RETURN n")
      ->time.ToWindow(&start, &end);
  EXPECT_EQ(start, 5u);  // BETWEEN..AND is [a, b)
  EXPECT_EQ(end, 9u);
  Parse("USE g FOR SYSTEM_TIME CONTAINED IN (5, 9) MATCH (n) RETURN n")
      ->time.ToWindow(&start, &end);
  EXPECT_EQ(start, 5u);  // CONTAINED IN is [a, b]
  EXPECT_EQ(end, 10u);
}

TEST(LexerParserTest, DirectionsAndTypes) {
  auto stmt = Parse("MATCH (a)<-[r:KNOWS]-(b)-[s]-(c) RETURN a, b, c");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_EQ(stmt->patterns[0].rels.size(), 2u);
  EXPECT_EQ(stmt->patterns[0].rels[0].direction, RelPattern::Direction::kLeft);
  EXPECT_EQ(stmt->patterns[0].rels[0].type, "KNOWS");
  EXPECT_EQ(stmt->patterns[0].rels[0].variable, "r");
  EXPECT_EQ(stmt->patterns[0].rels[1].direction,
            RelPattern::Direction::kUndirected);
}

TEST(LexerParserTest, NodePropertiesInPattern) {
  auto stmt = Parse(
      "MATCH (p:Person {name: 'ada', age: 36, score: 1.5, ok: true}) "
      "RETURN p.name AS who");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const NodePattern& node = stmt->patterns[0].nodes[0];
  ASSERT_EQ(node.properties.size(), 4u);
  EXPECT_EQ(node.properties[0].first, "name");
  EXPECT_EQ(node.properties[0].second.string_value, "ada");
  EXPECT_EQ(node.properties[1].second.int_value, 36);
  EXPECT_DOUBLE_EQ(node.properties[2].second.double_value, 1.5);
  EXPECT_TRUE(node.properties[3].second.bool_value);
  EXPECT_EQ(stmt->returns[0].alias, "who");
  EXPECT_EQ(stmt->returns[0].ColumnName(), "who");
}

TEST(LexerParserTest, PropertyComparisonsInWhere) {
  auto stmt = Parse(
      "MATCH (n) WHERE n.age >= 18 AND n.name <> 'bob' AND n.score < 2.5 "
      "RETURN count(*)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_EQ(stmt->predicates.size(), 3u);
  EXPECT_EQ(stmt->predicates[0].op, Predicate::Op::kGte);
  EXPECT_EQ(stmt->predicates[1].op, Predicate::Op::kNeq);
  EXPECT_EQ(stmt->predicates[2].op, Predicate::Op::kLt);
  EXPECT_EQ(stmt->returns[0].kind, ReturnItem::Kind::kCountStar);
}

TEST(LexerParserTest, CreateStatement) {
  auto stmt = Parse(
      "CREATE (a:Person {name: 'x'})-[:KNOWS]->(b:Person), (c:City)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->kind, Statement::Kind::kCreate);
  ASSERT_EQ(stmt->patterns.size(), 2u);
  EXPECT_EQ(stmt->patterns[0].rels[0].type, "KNOWS");
}

TEST(LexerParserTest, SetAndDelete) {
  auto set = Parse("MATCH (n) WHERE id(n) = 3 SET n.age = 40, n.x = 'y'");
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  EXPECT_EQ(set->kind, Statement::Kind::kMatchSet);
  ASSERT_EQ(set->sets.size(), 2u);
  EXPECT_EQ(set->sets[0].key, "age");

  auto del = Parse("MATCH (n)-[r]->(m) WHERE id(n) = 1 DELETE r");
  ASSERT_TRUE(del.ok()) << del.status().ToString();
  EXPECT_EQ(del->kind, Statement::Kind::kMatchDelete);
  EXPECT_EQ(del->deletes, std::vector<std::string>{"r"});
  EXPECT_FALSE(del->detach);

  auto detach = Parse("MATCH (n) WHERE id(n) = 1 DETACH DELETE n");
  ASSERT_TRUE(detach.ok());
  EXPECT_TRUE(detach->detach);
}

TEST(LexerParserTest, CallWithYield) {
  auto stmt = Parse(
      "CALL aion.incremental.avg('w', 0, 100, 10) YIELD t, avg");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->kind, Statement::Kind::kCall);
  EXPECT_EQ(stmt->procedure, "aion.incremental.avg");
  ASSERT_EQ(stmt->arguments.size(), 4u);
  EXPECT_EQ(stmt->arguments[0].string_value, "w");
  EXPECT_EQ(stmt->yields, (std::vector<std::string>{"t", "avg"}));
}

TEST(LexerParserTest, KeywordsAsPropertyKeys) {
  auto stmt = Parse("MATCH (n) WHERE n.id = 5 RETURN n.count, n.id");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->predicates[0].key, "id");
  EXPECT_EQ(stmt->returns[0].key, "count");
}

TEST(LexerParserTest, LimitClause) {
  auto stmt = Parse("MATCH (n) RETURN n LIMIT 5");
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE(stmt->limit.has_value());
  EXPECT_EQ(*stmt->limit, 5u);
}

TEST(LexerParserTest, CaseInsensitiveKeywords) {
  auto stmt = Parse("match (n) return n");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->kind, Statement::Kind::kMatch);
}

TEST(LexerParserTest, SyntaxErrors) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("MATCH n RETURN n").ok());           // missing parens
  EXPECT_FALSE(Parse("MATCH (n) RETURN").ok());           // missing items
  EXPECT_FALSE(Parse("MATCH (n) RETURN n extra").ok());   // trailing
  EXPECT_FALSE(Parse("USE g FOR SYSTEM_TIME MATCH (n) RETURN n").ok());
  EXPECT_FALSE(Parse("MATCH (n)-[*0]->(m) RETURN m").ok());  // zero hops
  EXPECT_FALSE(Parse("MATCH (n) WHERE RETURN n").ok());
  EXPECT_FALSE(Parse("CALL ()").ok());
  EXPECT_FALSE(Parse("MATCH (n {k: })").ok());
  EXPECT_FALSE(Parse("MATCH (n) WHERE id(n) = 'text' RETURN n").ok());
}

TEST(LexerParserTest, StringEscapes) {
  auto stmt = Parse("MATCH (n {name: 'it\\'s'}) RETURN n");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->patterns[0].nodes[0].properties[0].second.string_value,
            "it's");
  EXPECT_FALSE(Parse("MATCH (n {name: 'unterminated}) RETURN n").ok());
}

TEST(LexerParserTest, ParametersRejectedWithHint) {
  auto stmt = Parse("MATCH (n) WHERE id(n) = $id RETURN n");
  ASSERT_FALSE(stmt.ok());
  EXPECT_NE(stmt.status().message().find("inline"), std::string::npos);
}

}  // namespace
}  // namespace aion::query
