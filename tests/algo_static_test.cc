#include "algo/static_algos.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/memgraph.h"
#include "graph/update.h"
#include "util/random.h"

namespace aion::algo {
namespace {

using graph::CsrGraph;
using graph::GraphUpdate;
using graph::MemoryGraph;
using graph::NodeId;
using graph::RelId;

MemoryGraph Chain(size_t n) {
  MemoryGraph g;
  for (NodeId i = 0; i < n; ++i) {
    EXPECT_TRUE(g.Apply(GraphUpdate::AddNode(i)).ok());
  }
  for (RelId i = 0; i + 1 < n; ++i) {
    EXPECT_TRUE(g.Apply(GraphUpdate::AddRelationship(i, i, i + 1, "R")).ok());
  }
  return g;
}

TEST(BfsTest, ChainLevels) {
  MemoryGraph g = Chain(5);
  CsrGraph csr = CsrGraph::Build(g);
  auto levels = Bfs(csr, csr.ToDense(0));
  for (NodeId i = 0; i < 5; ++i) {
    EXPECT_EQ(levels[csr.ToDense(i)], i);
  }
  // From the tail nothing is reachable (directed).
  auto from_tail = Bfs(csr, csr.ToDense(4));
  EXPECT_EQ(from_tail[csr.ToDense(0)], kUnreachable);
  EXPECT_EQ(from_tail[csr.ToDense(4)], 0u);
}

TEST(BfsTest, DisconnectedComponentsUnreachable) {
  MemoryGraph g;
  for (NodeId i = 0; i < 4; ++i) {
    ASSERT_TRUE(g.Apply(GraphUpdate::AddNode(i)).ok());
  }
  ASSERT_TRUE(g.Apply(GraphUpdate::AddRelationship(0, 0, 1, "R")).ok());
  ASSERT_TRUE(g.Apply(GraphUpdate::AddRelationship(1, 2, 3, "R")).ok());
  CsrGraph csr = CsrGraph::Build(g);
  auto levels = Bfs(csr, csr.ToDense(0));
  EXPECT_EQ(levels[csr.ToDense(1)], 1u);
  EXPECT_EQ(levels[csr.ToDense(2)], kUnreachable);
}

TEST(SsspTest, WeightedShortestPaths) {
  MemoryGraph g;
  for (NodeId i = 0; i < 4; ++i) {
    ASSERT_TRUE(g.Apply(GraphUpdate::AddNode(i)).ok());
  }
  graph::PropertySet w1, w5, w2;
  w1.Set("w", graph::PropertyValue(1.0));
  w5.Set("w", graph::PropertyValue(5.0));
  w2.Set("w", graph::PropertyValue(2.0));
  // 0->1 (1), 1->2 (2), 0->2 (5): best 0->2 is 3 via 1.
  ASSERT_TRUE(g.Apply(GraphUpdate::AddRelationship(0, 0, 1, "R", w1)).ok());
  ASSERT_TRUE(g.Apply(GraphUpdate::AddRelationship(1, 1, 2, "R", w2)).ok());
  ASSERT_TRUE(g.Apply(GraphUpdate::AddRelationship(2, 0, 2, "R", w5)).ok());
  CsrGraph csr = CsrGraph::Build(g, "w");
  auto dist = Sssp(csr, csr.ToDense(0));
  EXPECT_DOUBLE_EQ(dist[csr.ToDense(2)], 3.0);
  EXPECT_DOUBLE_EQ(dist[csr.ToDense(1)], 1.0);
  EXPECT_TRUE(std::isinf(dist[csr.ToDense(3)]));
}

TEST(SsspTest, UnweightedMatchesBfs) {
  util::Random rng(4);
  MemoryGraph g;
  for (NodeId i = 0; i < 60; ++i) {
    ASSERT_TRUE(g.Apply(GraphUpdate::AddNode(i)).ok());
  }
  for (RelId i = 0; i < 200; ++i) {
    ASSERT_TRUE(g.Apply(GraphUpdate::AddRelationship(
                            i, rng.Uniform(60), rng.Uniform(60), "R"))
                    .ok());
  }
  CsrGraph csr = CsrGraph::Build(g);
  auto levels = Bfs(csr, 0);
  auto dist = Sssp(csr, 0);
  for (size_t i = 0; i < csr.num_nodes(); ++i) {
    if (levels[i] == kUnreachable) {
      EXPECT_TRUE(std::isinf(dist[i]));
    } else {
      EXPECT_DOUBLE_EQ(dist[i], static_cast<double>(levels[i]));
    }
  }
}

TEST(PageRankTest, RanksSumToOne) {
  MemoryGraph g = Chain(10);
  CsrGraph csr = CsrGraph::Build(g);
  PageRankOptions options;
  options.epsilon = 1e-10;
  auto result = PageRank(csr, options);
  double sum = 0;
  for (double r : result.ranks) sum += r;
  EXPECT_NEAR(sum, 1.0, 1e-6);
  EXPECT_GT(result.iterations, 1u);
}

TEST(PageRankTest, StarCenterDominates) {
  MemoryGraph g;
  for (NodeId i = 0; i < 10; ++i) {
    ASSERT_TRUE(g.Apply(GraphUpdate::AddNode(i)).ok());
  }
  for (RelId i = 1; i < 10; ++i) {
    ASSERT_TRUE(g.Apply(GraphUpdate::AddRelationship(i, i, 0, "R")).ok());
  }
  CsrGraph csr = CsrGraph::Build(g);
  PageRankOptions options;
  options.epsilon = 1e-10;
  auto result = PageRank(csr, options);
  const double center = result.ranks[csr.ToDense(0)];
  for (NodeId i = 1; i < 10; ++i) {
    EXPECT_GT(center, result.ranks[csr.ToDense(i)] * 3);
  }
}

TEST(PageRankTest, WarmStartConvergesFaster) {
  util::Random rng(8);
  MemoryGraph g;
  for (NodeId i = 0; i < 200; ++i) {
    ASSERT_TRUE(g.Apply(GraphUpdate::AddNode(i)).ok());
  }
  for (RelId i = 0; i < 800; ++i) {
    ASSERT_TRUE(g.Apply(GraphUpdate::AddRelationship(
                            i, rng.Uniform(200), rng.Uniform(200), "R"))
                    .ok());
  }
  CsrGraph csr = CsrGraph::Build(g);
  PageRankOptions options;
  options.epsilon = 1e-8;
  auto cold = PageRank(csr, options);
  // Warm start from the converged answer: should finish almost immediately.
  auto warm = PageRank(csr, options, cold.ranks);
  EXPECT_LT(warm.iterations, cold.iterations);
  EXPECT_LE(warm.iterations, 2u);
}

TEST(ConnectedComponentsTest, TwoIslands) {
  MemoryGraph g;
  for (NodeId i = 0; i < 6; ++i) {
    ASSERT_TRUE(g.Apply(GraphUpdate::AddNode(i)).ok());
  }
  ASSERT_TRUE(g.Apply(GraphUpdate::AddRelationship(0, 0, 1, "R")).ok());
  ASSERT_TRUE(g.Apply(GraphUpdate::AddRelationship(1, 1, 2, "R")).ok());
  ASSERT_TRUE(g.Apply(GraphUpdate::AddRelationship(2, 4, 3, "R")).ok());
  CsrGraph csr = CsrGraph::Build(g);
  auto comp = ConnectedComponents(csr);
  EXPECT_EQ(comp[csr.ToDense(0)], comp[csr.ToDense(2)]);
  EXPECT_EQ(comp[csr.ToDense(3)], comp[csr.ToDense(4)]);
  EXPECT_NE(comp[csr.ToDense(0)], comp[csr.ToDense(3)]);
  EXPECT_NE(comp[csr.ToDense(0)], comp[csr.ToDense(5)]);
}

TEST(TrianglesTest, CountsAndCoefficients) {
  MemoryGraph g;
  for (NodeId i = 0; i < 5; ++i) {
    ASSERT_TRUE(g.Apply(GraphUpdate::AddNode(i)).ok());
  }
  // Triangle 0-1-2 plus pendant edges 2-3, 3-4.
  RelId rid = 0;
  ASSERT_TRUE(g.Apply(GraphUpdate::AddRelationship(rid++, 0, 1, "R")).ok());
  ASSERT_TRUE(g.Apply(GraphUpdate::AddRelationship(rid++, 1, 2, "R")).ok());
  ASSERT_TRUE(g.Apply(GraphUpdate::AddRelationship(rid++, 2, 0, "R")).ok());
  ASSERT_TRUE(g.Apply(GraphUpdate::AddRelationship(rid++, 2, 3, "R")).ok());
  ASSERT_TRUE(g.Apply(GraphUpdate::AddRelationship(rid++, 3, 4, "R")).ok());
  CsrGraph csr = CsrGraph::Build(g);
  EXPECT_EQ(CountTriangles(csr), 1u);
  auto lcc = LocalClusteringCoefficient(csr);
  EXPECT_DOUBLE_EQ(lcc[csr.ToDense(0)], 1.0);  // both neighbours connected
  EXPECT_DOUBLE_EQ(lcc[csr.ToDense(1)], 1.0);
  // Node 2 has neighbours {0, 1, 3}; one closed pair of three.
  EXPECT_NEAR(lcc[csr.ToDense(2)], 1.0 / 3, 1e-9);
  EXPECT_DOUBLE_EQ(lcc[csr.ToDense(4)], 0.0);
}

TEST(TrianglesTest, CompleteGraphK5) {
  MemoryGraph g;
  for (NodeId i = 0; i < 5; ++i) {
    ASSERT_TRUE(g.Apply(GraphUpdate::AddNode(i)).ok());
  }
  RelId rid = 0;
  for (NodeId i = 0; i < 5; ++i) {
    for (NodeId j = i + 1; j < 5; ++j) {
      ASSERT_TRUE(g.Apply(GraphUpdate::AddRelationship(rid++, i, j, "R")).ok());
    }
  }
  CsrGraph csr = CsrGraph::Build(g);
  EXPECT_EQ(CountTriangles(csr), 10u);  // C(5,3)
  auto lcc = LocalClusteringCoefficient(csr);
  for (double c : lcc) EXPECT_DOUBLE_EQ(c, 1.0);
}

TEST(AggregateTest, SumCountAverage) {
  MemoryGraph g;
  ASSERT_TRUE(g.Apply(GraphUpdate::AddNode(0)).ok());
  ASSERT_TRUE(g.Apply(GraphUpdate::AddNode(1)).ok());
  graph::PropertySet p1, p2, p_none;
  p1.Set("amount", graph::PropertyValue(10));
  p2.Set("amount", graph::PropertyValue(2.5));
  ASSERT_TRUE(g.Apply(GraphUpdate::AddRelationship(0, 0, 1, "R", p1)).ok());
  ASSERT_TRUE(g.Apply(GraphUpdate::AddRelationship(1, 0, 1, "R", p2)).ok());
  ASSERT_TRUE(
      g.Apply(GraphUpdate::AddRelationship(2, 1, 0, "R", p_none)).ok());
  auto agg = AggregateRelationshipProperty(g, "amount");
  EXPECT_DOUBLE_EQ(agg.sum, 12.5);
  EXPECT_EQ(agg.count, 2u);
  EXPECT_DOUBLE_EQ(agg.Average(), 6.25);
  // Missing key everywhere.
  auto none = AggregateRelationshipProperty(g, "absent");
  EXPECT_EQ(none.count, 0u);
  EXPECT_DOUBLE_EQ(none.Average(), 0.0);
}

TEST(PageRankTest, EmptyGraph) {
  MemoryGraph g;
  CsrGraph csr = CsrGraph::Build(g);
  auto result = PageRank(csr);
  EXPECT_TRUE(result.ranks.empty());
  EXPECT_TRUE(Bfs(csr, 0).empty());
  EXPECT_EQ(CountTriangles(csr), 0u);
}

}  // namespace
}  // namespace aion::algo
