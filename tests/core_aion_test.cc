#include "core/aion.h"

#include <gtest/gtest.h>

#include <set>

#include "core/bitemporal.h"
#include "storage/file.h"

namespace aion::core {
namespace {

using graph::Direction;
using graph::GraphUpdate;
using graph::kInfiniteTime;

class AionStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = storage::MakeTempDir("aion_store_test_");
    ASSERT_TRUE(dir.ok());
    dir_ = *dir;
  }
  void TearDown() override { (void)storage::RemoveDirRecursively(dir_); }

  std::unique_ptr<AionStore> OpenAion(AionStore::Options options = {}) {
    options.dir = dir_ + "/aion" + std::to_string(++counter_);
    auto store = AionStore::Open(options);
    EXPECT_TRUE(store.ok()) << store.status().ToString();
    return store.ok() ? std::move(*store) : nullptr;
  }

  /// Host database + Aion registered as listener.
  struct Stack {
    std::unique_ptr<txn::GraphDatabase> db;
    std::unique_ptr<AionStore> aion;
  };
  Stack OpenStack(AionStore::Options options = {}) {
    Stack stack;
    txn::GraphDatabase::Options db_options;
    db_options.data_dir = dir_ + "/db" + std::to_string(++counter_);
    auto db = txn::GraphDatabase::Open(db_options);
    EXPECT_TRUE(db.ok());
    stack.db = std::move(*db);
    stack.aion = OpenAion(options);
    stack.db->RegisterListener(stack.aion.get());
    return stack;
  }

  std::string dir_;
  int counter_ = 0;
};

TEST_F(AionStoreTest, EndToEndCommitFlowsIntoBothStores) {
  Stack stack = OpenStack();
  auto txn = stack.db->Begin();
  const auto a = txn->CreateNode({"Person"});
  const auto b = txn->CreateNode({"Person"});
  const auto r = txn->CreateRelationship(a, b, "KNOWS");
  ASSERT_TRUE(txn->Commit().ok());
  auto txn2 = stack.db->Begin();
  txn2->SetNodeProperty(a, "name", graph::PropertyValue("ada"));
  ASSERT_TRUE(txn2->Commit().ok());
  stack.aion->DrainBackground();

  // Point query via LineageStore.
  auto node = stack.aion->GetNode(a, 2, 2);
  ASSERT_TRUE(node.ok());
  ASSERT_EQ(node->size(), 1u);
  EXPECT_EQ((*node)[0].entity.props.Get("name")->AsString(), "ada");

  // History: two versions of node a.
  auto history = stack.aion->GetNode(a, 0, kInfiniteTime);
  ASSERT_TRUE(history.ok());
  EXPECT_EQ(history->size(), 2u);

  // Global query via TimeStore.
  auto at1 = stack.aion->GetGraphAt(1);
  ASSERT_TRUE(at1.ok());
  EXPECT_EQ((*at1)->NumNodes(), 2u);
  EXPECT_EQ((*at1)->NumRelationships(), 1u);
  EXPECT_EQ((*at1)->GetNode(a)->props.Get("name"), nullptr);

  auto at2 = stack.aion->GetGraphAt(2);
  ASSERT_TRUE(at2.ok());
  EXPECT_EQ((*at2)->GetNode(a)->props.Get("name")->AsString(), "ada");
  (void)r;
}

TEST_F(AionStoreTest, NonTemporalReadsUnaffected) {
  // The host database's current graph answers directly, regardless of
  // Aion's background state (the decoupling claim).
  Stack stack = OpenStack();
  auto txn = stack.db->Begin();
  const auto a = txn->CreateNode({"X"});
  ASSERT_TRUE(txn->Commit().ok());
  // No drain: host reads work immediately.
  EXPECT_TRUE(stack.db->GetNode(a).has_value());
}

TEST_F(AionStoreTest, DirectIngestWithoutHostDatabase) {
  auto aion = OpenAion();
  ASSERT_TRUE(aion->Ingest(1, {GraphUpdate::AddNode(0, {"A"}),
                               GraphUpdate::AddNode(1, {"B"})})
                  .ok());
  ASSERT_TRUE(aion->Ingest(2, {GraphUpdate::AddRelationship(0, 0, 1, "R")})
                  .ok());
  aion->DrainBackground();
  EXPECT_EQ(aion->last_ingested_ts(), 2u);
  auto view = aion->GetGraphAt(2);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ((*view)->NumRelationships(), 1u);
}

TEST_F(AionStoreTest, GetDiffSemantics) {
  auto aion = OpenAion();
  ASSERT_TRUE(aion->Ingest(1, {GraphUpdate::AddNode(0)}).ok());
  ASSERT_TRUE(aion->Ingest(2, {GraphUpdate::AddNode(1)}).ok());
  ASSERT_TRUE(aion->Ingest(3, {GraphUpdate::AddNode(2)}).ok());
  // Half-open [1, 3): start inclusive, end exclusive.
  auto diff = aion->GetDiff(1, 3);
  ASSERT_TRUE(diff.ok());
  ASSERT_EQ(diff->size(), 2u);
  EXPECT_EQ((*diff)[0].ts, 1u);
  EXPECT_EQ((*diff)[1].ts, 2u);
  // Boundary pins: [3, 4) holds exactly the ts-3 update; [t, t) is empty.
  auto last = aion->GetDiff(3, 4);
  ASSERT_TRUE(last.ok());
  ASSERT_EQ(last->size(), 1u);
  EXPECT_EQ(last->front().ts, 3u);
  EXPECT_TRUE(aion->GetDiff(3, 3)->empty());
}

TEST_F(AionStoreTest, OpenValidatesOptions) {
  {
    AionStore::Options options;  // dir left empty
    auto aion = AionStore::Open(options);
    EXPECT_TRUE(aion.status().IsInvalidArgument())
        << aion.status().ToString();
  }
  {
    AionStore::Options options;
    options.dir = dir_ + "/bad_fraction";
    options.lineage_fraction_threshold = 0.0;
    EXPECT_TRUE(AionStore::Open(options).status().IsInvalidArgument());
    options.lineage_fraction_threshold = 1.5;
    EXPECT_TRUE(AionStore::Open(options).status().IsInvalidArgument());
    options.lineage_fraction_threshold = -0.3;
    EXPECT_TRUE(AionStore::Open(options).status().IsInvalidArgument());
  }
  {
    AionStore::Options options;
    options.dir = dir_ + "/bad_cache";
    options.index_cache_pages = 0;
    EXPECT_TRUE(AionStore::Open(options).status().IsInvalidArgument());
  }
}

TEST_F(AionStoreTest, ExpandChoosesLineageForSmallFractions) {
  auto aion = OpenAion();
  // 1000 nodes, sparse ring: expansion fraction tiny for 1 hop.
  std::vector<GraphUpdate> nodes;
  for (graph::NodeId i = 0; i < 1000; ++i) {
    nodes.push_back(GraphUpdate::AddNode(i));
  }
  ASSERT_TRUE(aion->Ingest(1, nodes).ok());
  std::vector<GraphUpdate> rels;
  for (graph::RelId i = 0; i < 1000; ++i) {
    rels.push_back(GraphUpdate::AddRelationship(i, i, (i + 1) % 1000, "R"));
  }
  ASSERT_TRUE(aion->Ingest(2, rels).ok());
  aion->DrainBackground();

  EXPECT_EQ(aion->ChooseStoreForExpand(1),
            AionStore::StoreChoice::kLineageStore);
  // Average degree 1: even deep expansions stay small on the estimate...
  // use hops so large the estimate saturates.
  EXPECT_EQ(aion->ChooseStoreForExpand(2000),
            AionStore::StoreChoice::kTimeStore);

  auto expand = aion->Expand(0, Direction::kOutgoing, 2, 2);
  ASSERT_TRUE(expand.ok());
  ASSERT_EQ(expand->size(), 2u);
  EXPECT_EQ((*expand)[0].size(), 1u);
  EXPECT_EQ((*expand)[0][0].id, 1u);
  EXPECT_EQ((*expand)[1][0].id, 2u);
}

TEST_F(AionStoreTest, ExpandViaTimeStoreMatchesLineage) {
  auto aion = OpenAion();
  std::vector<GraphUpdate> updates;
  for (graph::NodeId i = 0; i < 50; ++i) {
    updates.push_back(GraphUpdate::AddNode(i));
  }
  ASSERT_TRUE(aion->Ingest(1, updates).ok());
  updates.clear();
  for (graph::RelId i = 0; i + 1 < 50; ++i) {
    updates.push_back(GraphUpdate::AddRelationship(i, i, i + 1, "R"));
    updates.push_back(
        GraphUpdate::AddRelationship(100 + i, i, (i * 7) % 50, "S"));
  }
  ASSERT_TRUE(aion->Ingest(2, updates).ok());
  aion->DrainBackground();

  auto via_lineage = aion->ExpandUsing(AionStore::StoreChoice::kLineageStore,
                                       0, Direction::kBoth, 3, 2);
  ASSERT_TRUE(via_lineage.ok());
  // Force the TimeStore path through the facade internals by comparing
  // against the snapshot-based traversal.
  auto view = aion->GetGraphAt(2);
  ASSERT_TRUE(view.ok());
  // Compare per-hop node id sets.
  for (size_t hop = 0; hop < 3; ++hop) {
    std::set<graph::NodeId> lineage_ids;
    for (const auto& n : (*via_lineage)[hop]) lineage_ids.insert(n.id);
    EXPECT_FALSE(lineage_ids.empty()) << "hop " << hop;
  }
}

TEST_F(AionStoreTest, GetGraphSeries) {
  auto aion = OpenAion();
  WriteBatch batch;
  for (Timestamp ts = 1; ts <= 10; ++ts) {
    batch.Add(ts, GraphUpdate::AddNode(ts - 1));
  }
  ASSERT_TRUE(aion->IngestBatch(std::move(batch)).ok());
  auto series = aion->GetGraph(2, 10, 4);  // t = 2, 6, 10
  ASSERT_TRUE(series.ok());
  ASSERT_EQ(series->size(), 3u);
  EXPECT_EQ((*series)[0]->NumNodes(), 2u);
  EXPECT_EQ((*series)[1]->NumNodes(), 6u);
  EXPECT_EQ((*series)[2]->NumNodes(), 10u);
}

TEST_F(AionStoreTest, GetWindowKeepsDeletedEntities) {
  auto aion = OpenAion();
  ASSERT_TRUE(aion->Ingest(1, {GraphUpdate::AddNode(0),
                               GraphUpdate::AddNode(1)})
                  .ok());
  ASSERT_TRUE(
      aion->Ingest(2, {GraphUpdate::AddRelationship(0, 0, 1, "R")}).ok());
  ASSERT_TRUE(aion->Ingest(3, {GraphUpdate::DeleteRelationship(0)}).ok());
  ASSERT_TRUE(aion->Ingest(4, {GraphUpdate::AddNode(2)}).ok());

  // Window [2, 5): rel 0 was alive within the window, node 2 appeared.
  auto window = aion->GetWindow(2, 5);
  ASSERT_TRUE(window.ok());
  EXPECT_EQ((*window)->NumNodes(), 3u);
  EXPECT_EQ((*window)->NumRelationships(), 1u);

  // Window [3, 5): rel 0 deleted at 3, so the snapshot at 3 lacks it and it
  // is not re-added by any update in the window.
  window = aion->GetWindow(3, 5);
  ASSERT_TRUE(window.ok());
  EXPECT_EQ((*window)->NumRelationships(), 0u);
  EXPECT_EQ((*window)->NumNodes(), 3u);
}

TEST_F(AionStoreTest, GetTemporalGraphCoversWindow) {
  auto aion = OpenAion();
  ASSERT_TRUE(aion->Ingest(1, {GraphUpdate::AddNode(0)}).ok());
  ASSERT_TRUE(aion->Ingest(2, {GraphUpdate::AddNode(1)}).ok());
  ASSERT_TRUE(
      aion->Ingest(3, {GraphUpdate::AddRelationship(0, 0, 1, "R")}).ok());
  ASSERT_TRUE(aion->Ingest(4, {GraphUpdate::DeleteRelationship(0)}).ok());
  auto temporal = aion->GetTemporalGraph(2, 10);
  ASSERT_TRUE(temporal.ok());
  // Seeded at t=2 with nodes 0,1; rel 0 lives [3,4).
  EXPECT_NE((*temporal)->NodeAt(0, 2), nullptr);
  EXPECT_NE((*temporal)->RelationshipAt(0, 3), nullptr);
  EXPECT_EQ((*temporal)->RelationshipAt(0, 4), nullptr);
}

TEST_F(AionStoreTest, SyncLineageModeServesImmediately) {
  AionStore::Options options;
  options.lineage_mode = AionStore::LineageMode::kSync;
  auto aion = OpenAion(options);
  ASSERT_TRUE(aion->Ingest(1, {GraphUpdate::AddNode(0, {"A"})}).ok());
  // No drain needed.
  EXPECT_TRUE(aion->LineageCanServe(1));
  auto node = aion->GetNode(0, 1, 1);
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(node->size(), 1u);
}

TEST_F(AionStoreTest, TimeStoreFallbackWhenLineageDisabled) {
  AionStore::Options options;
  options.lineage_mode = AionStore::LineageMode::kDisabled;
  auto aion = OpenAion(options);
  ASSERT_TRUE(aion->Ingest(1, {GraphUpdate::AddNode(0, {"A"})}).ok());
  ASSERT_TRUE(
      aion->Ingest(2, {GraphUpdate::SetNodeProperty(
                          0, "k", graph::PropertyValue(5))})
          .ok());
  EXPECT_FALSE(aion->LineageCanServe(2));
  // Point query still works via the TimeStore fallback.
  auto node = aion->GetNode(0, 2, 2);
  ASSERT_TRUE(node.ok());
  ASSERT_EQ(node->size(), 1u);
  EXPECT_EQ((*node)[0].entity.props.Get("k")->AsInt(), 5);
  // History too.
  auto history = aion->GetNode(0, 0, kInfiniteTime);
  ASSERT_TRUE(history.ok());
  EXPECT_EQ(history->size(), 2u);
  // Expand falls back to snapshot traversal.
  EXPECT_EQ(aion->ChooseStoreForExpand(1), AionStore::StoreChoice::kTimeStore);
}

TEST_F(AionStoreTest, LineageOnlyMode) {
  AionStore::Options options;
  options.enable_timestore = false;
  options.lineage_mode = AionStore::LineageMode::kSync;
  auto aion = OpenAion(options);
  ASSERT_TRUE(aion->Ingest(1, {GraphUpdate::AddNode(0)}).ok());
  auto node = aion->GetNode(0, 1, 1);
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(node->size(), 1u);
  EXPECT_FALSE(aion->GetDiff(0, 5).ok());
  EXPECT_FALSE(aion->GetGraphAt(1).ok());
}

TEST_F(AionStoreTest, SnapshotPolicyTriggersBackgroundSnapshots) {
  AionStore::Options options;
  options.snapshot_policy.kind = SnapshotPolicy::Kind::kOperationBased;
  options.snapshot_policy.every = 10;
  auto aion = OpenAion(options);
  for (Timestamp ts = 1; ts <= 30; ++ts) {
    ASSERT_TRUE(aion->Ingest(ts, {GraphUpdate::AddNode(ts)}).ok());
  }
  aion->DrainBackground();
  EXPECT_GT(aion->Introspect().timestore_snapshot_bytes, 0u);
}

TEST_F(AionStoreTest, RecoveryFromHostWal) {
  txn::GraphDatabase::Options db_options;
  db_options.data_dir = dir_ + "/recdb";
  AionStore::Options aion_options;
  aion_options.dir = dir_ + "/recaion";

  graph::NodeId a = 0, b = 0;
  {
    auto db = txn::GraphDatabase::Open(db_options);
    ASSERT_TRUE(db.ok());
    auto aion = AionStore::Open(aion_options);
    ASSERT_TRUE(aion.ok());
    (*db)->RegisterListener(aion->get());
    auto txn = (*db)->Begin();
    a = txn->CreateNode({"A"});
    ASSERT_TRUE(txn->Commit().ok());
    ASSERT_TRUE((*aion)->Flush().ok());
    // Second commit WITHOUT Aion flush: simulate losing the cascade by
    // committing to a detached database.
  }
  {
    // Commit more transactions while Aion is offline.
    auto db = txn::GraphDatabase::Open(db_options);
    ASSERT_TRUE(db.ok());
    auto txn = (*db)->Begin();
    b = txn->CreateNode({"B"});
    ASSERT_TRUE(txn->Commit().ok());
  }
  // Reopen both; Aion recovers the missed transaction from the WAL.
  auto db = txn::GraphDatabase::Open(db_options);
  ASSERT_TRUE(db.ok());
  auto aion = AionStore::Open(aion_options);
  ASSERT_TRUE(aion.ok());
  ASSERT_TRUE((*aion)->RecoverFrom(**db).ok());
  (*aion)->DrainBackground();
  auto node_b = (*aion)->GetNode(b, 2, 2);
  ASSERT_TRUE(node_b.ok());
  EXPECT_EQ(node_b->size(), 1u);
  auto view = (*aion)->GetGraphAt(2);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ((*view)->NumNodes(), 2u);
  (void)a;
}

TEST_F(AionStoreTest, StatisticsObserveCommits) {
  auto aion = OpenAion();
  ASSERT_TRUE(aion->Ingest(1, {GraphUpdate::AddNode(0, {"Person"}),
                               GraphUpdate::AddNode(1, {"Person"}),
                               GraphUpdate::AddNode(2, {"City"})})
                  .ok());
  ASSERT_TRUE(
      aion->Ingest(2, {GraphUpdate::AddRelationship(0, 0, 2, "LIVES_IN")})
          .ok());
  EXPECT_EQ(aion->stats().num_nodes(), 3);
  EXPECT_EQ(aion->stats().num_relationships(), 1);
  EXPECT_EQ(aion->stats().CountWithLabel("Person"), 2);
  EXPECT_EQ(aion->stats().CountWithType("LIVES_IN"), 1);
  // Pattern count annotated with the source node's labels.
  EXPECT_EQ(aion->stats().CountPattern("Person", "LIVES_IN"), 1);
  EXPECT_EQ(aion->stats().CountPattern("City", "LIVES_IN"), 0);
}

TEST_F(AionStoreTest, BitemporalFiltering) {
  auto aion = OpenAion();
  graph::PropertySet props;
  props.Set(kApplicationStartKey, graph::PropertyValue(int64_t{100}));
  props.Set(kApplicationEndKey, graph::PropertyValue(int64_t{200}));
  ASSERT_TRUE(aion->Ingest(1, {GraphUpdate::AddNode(0, {"Event"}, props),
                               GraphUpdate::AddNode(1, {"Event"})})
                  .ok());
  aion->DrainBackground();
  auto versions = aion->GetNode(0, 1, 1);
  ASSERT_TRUE(versions.ok());
  // CONTAINED IN (50, 250): app interval [100, 200] qualifies.
  auto filtered = FilterByApplicationTime(*versions, 50, 250);
  EXPECT_EQ(filtered.size(), 1u);
  // CONTAINED IN (150, 250): app start 100 < 150, excluded.
  filtered = FilterByApplicationTime(*versions, 150, 250);
  EXPECT_TRUE(filtered.empty());
  // Node 1 has no app time: falls back to system interval [1, inf).
  auto v1 = aion->GetNode(1, 1, 1);
  ASSERT_TRUE(v1.ok());
  filtered = FilterByApplicationTime(*v1, 0, kInfiniteTime);
  EXPECT_EQ(filtered.size(), 1u);
  filtered = FilterByApplicationTime(*v1, 0, 10);
  EXPECT_TRUE(filtered.empty());
}

TEST_F(AionStoreTest, StorageAccounting) {
  auto aion = OpenAion();
  WriteBatch batch;
  for (Timestamp ts = 1; ts <= 50; ++ts) {
    batch.Add(ts, GraphUpdate::AddNode(ts));
  }
  ASSERT_TRUE(aion->IngestBatch(std::move(batch)).ok());
  ASSERT_TRUE(aion->Flush().ok());
  EXPECT_GT(aion->SizeBytes(), 0u);
  const AionStore::Introspection info = aion->Introspect();
  EXPECT_GT(info.timestore_log_bytes, 0u);
  EXPECT_GT(info.lineage_size_bytes, 0u);
}

TEST_F(AionStoreTest, IntrospectReportsStoreState) {
  AionStore::Options options;
  options.lineage_mode = AionStore::LineageMode::kSync;
  auto aion = OpenAion(options);
  ASSERT_TRUE(aion->Ingest(1, {GraphUpdate::AddNode(0)}).ok());
  ASSERT_TRUE(aion->Ingest(2, {GraphUpdate::AddNode(1)}).ok());
  const AionStore::Introspection info = aion->Introspect();
  EXPECT_EQ(info.last_ingested_ts, 2u);
  EXPECT_TRUE(info.timestore_enabled);
  EXPECT_EQ(info.timestore_last_ts, 2u);
  EXPECT_EQ(info.timestore_num_updates, 2u);
  EXPECT_TRUE(info.lineage_enabled);
  EXPECT_EQ(info.lineage_applied_ts, 2u);
  EXPECT_EQ(info.latest_ts, 2u);
  // The embedded metrics snapshot agrees with the store state.
  EXPECT_EQ(info.metrics.counter("ingest.batches"), 2u);
  EXPECT_EQ(info.metrics.counter("ingest.updates"), 2u);
  EXPECT_EQ(info.metrics.gauge("ingest.last_ts"), 2);
  EXPECT_EQ(info.metrics.gauge("cascade.applied_ts"), 2);
}

TEST_F(AionStoreTest, MetricsInternallyConsistent) {
  AionStore::Options options;
  options.lineage_mode = AionStore::LineageMode::kSync;
  auto aion = OpenAion(options);
  for (Timestamp ts = 1; ts <= 20; ++ts) {
    ASSERT_TRUE(aion->Ingest(ts, {GraphUpdate::AddNode(ts)}).ok());
  }
  // Exercise the snapshot path a few times (some hits, some misses).
  for (Timestamp ts : {5u, 5u, 10u, 10u, 20u}) {
    ASSERT_TRUE(aion->GetGraphAt(ts).ok());
  }
  const obs::MetricsSnapshot snap = aion->metrics()->Snapshot();
  // Cascade watermark never runs ahead of ingestion.
  EXPECT_LE(snap.gauge("cascade.applied_ts"), snap.gauge("ingest.last_ts"));
  EXPECT_EQ(static_cast<Timestamp>(snap.gauge("ingest.last_ts")),
            aion->last_ingested_ts());
  // Every GraphStore request is classified as exactly one of hit/miss.
  EXPECT_EQ(snap.counter("graphstore.requests"),
            snap.counter("graphstore.hits") +
                snap.counter("graphstore.misses"));
  EXPECT_GT(snap.counter("graphstore.requests"), 0u);
  // Sync mode never falls back to the TimeStore.
  EXPECT_EQ(snap.counter("fallback.timestore"), 0u);
  EXPECT_EQ(snap.counter("ingest.batches"), 20u);
}

TEST_F(AionStoreTest, AsyncLaggingQueryFallsBackAndCounts) {
  // Build a store whose TimeStore holds history the LineageStore has never
  // applied: write the TimeStore directly, then open an async AionStore on
  // top. The fresh cascade watermark (0) lags the recovered log (2), so
  // point queries must route to the TimeStore — and say so in the metrics.
  const std::string dir = dir_ + "/fallback";
  ASSERT_TRUE(storage::CreateDirIfMissing(dir).ok());
  {
    GraphStore scratch(size_t{1} << 26);
    TimeStore::Options ts_options;
    ts_options.dir = dir + "/timestore";
    auto ts = TimeStore::Open(ts_options, &scratch);
    ASSERT_TRUE(ts.ok());
    bool due = false;
    GraphUpdate add = GraphUpdate::AddNode(0, {"A"});
    add.ts = 1;
    ASSERT_TRUE((*ts)->Append(1, {add}, &due).ok());
    GraphUpdate set =
        GraphUpdate::SetNodeProperty(0, "k", graph::PropertyValue(7));
    set.ts = 2;
    ASSERT_TRUE((*ts)->Append(2, {set}, &due).ok());
    ASSERT_TRUE((*ts)->Flush().ok());
  }
  AionStore::Options options;
  options.dir = dir;
  options.lineage_mode = AionStore::LineageMode::kAsync;
  auto aion = AionStore::Open(options);
  ASSERT_TRUE(aion.ok()) << aion.status().ToString();
  ASSERT_EQ((*aion)->last_ingested_ts(), 2u);
  ASSERT_FALSE((*aion)->LineageCanServe(2));
  EXPECT_EQ((*aion)->metrics()->Snapshot().counter("fallback.timestore"),
            0u);
  // The query is answered correctly despite the lagging cascade...
  auto node = (*aion)->GetNode(0, 2, 2);
  ASSERT_TRUE(node.ok()) << node.status().ToString();
  ASSERT_EQ(node->size(), 1u);
  EXPECT_EQ((*node)[0].entity.props.Get("k")->AsInt(), 7);
  // ...and the fallback is recorded.
  EXPECT_EQ((*aion)->metrics()->Snapshot().counter("fallback.timestore"),
            1u);
}

}  // namespace
}  // namespace aion::core
namespace aion::core {
namespace {

using graph::Direction;
using graph::GraphUpdate;

TEST_F(AionStoreTest, ExpandOverTimeSteps) {
  auto aion = OpenAion();
  // Chain grows over time: 0->1 at ts2, 1->2 at ts3, 2->3 at ts4.
  ASSERT_TRUE(aion->Ingest(1, {GraphUpdate::AddNode(0), GraphUpdate::AddNode(1),
                               GraphUpdate::AddNode(2), GraphUpdate::AddNode(3)})
                  .ok());
  ASSERT_TRUE(aion->Ingest(2, {GraphUpdate::AddRelationship(0, 0, 1, "R")}).ok());
  ASSERT_TRUE(aion->Ingest(3, {GraphUpdate::AddRelationship(1, 1, 2, "R")}).ok());
  ASSERT_TRUE(aion->Ingest(4, {GraphUpdate::AddRelationship(2, 2, 3, "R")}).ok());
  aion->DrainBackground();

  auto series = aion->ExpandOverTime(0, Direction::kOutgoing, 2, 1, 4, 1);
  ASSERT_TRUE(series.ok()) << series.status().ToString();
  ASSERT_EQ(series->size(), 4u);  // t = 1, 2, 3, 4
  EXPECT_EQ((*series)[0].at, 1u);
  EXPECT_TRUE((*series)[0].hops[0].empty());      // nothing at t=1
  EXPECT_EQ((*series)[1].hops[0].size(), 1u);     // 0->1 at t=2
  EXPECT_TRUE((*series)[1].hops[1].empty());
  EXPECT_EQ((*series)[2].hops[1].size(), 1u);     // 0->1->2 at t=3
  EXPECT_EQ((*series)[3].hops[1].size(), 1u);

  EXPECT_FALSE(aion->ExpandOverTime(0, Direction::kBoth, 1, 1, 4, 0).ok());
  EXPECT_FALSE(aion->ExpandOverTime(0, Direction::kBoth, 1, 4, 1, 1).ok());
}

TEST_F(AionStoreTest, SnapshotPolicyWritesBoundedSnapshots) {
  AionStore::Options options;
  options.snapshot_policy.kind = SnapshotPolicy::Kind::kOperationBased;
  options.snapshot_policy.every = 10;
  auto aion = OpenAion(options);
  for (Timestamp ts = 1; ts <= 100; ++ts) {
    ASSERT_TRUE(aion->Ingest(ts, {GraphUpdate::AddNode(ts)}).ok());
  }
  aion->DrainBackground();
  // With the single-pending guard, ~100/10 snapshots — not one per commit.
  // Each snapshot of this graph is < 3 KB; 10x that is a safe ceiling.
  const AionStore::Introspection info = aion->Introspect();
  EXPECT_GT(info.timestore_snapshot_bytes, 0u);
  EXPECT_LT(info.timestore_snapshot_bytes, 60u * 1024u);
}

}  // namespace
}  // namespace aion::core
