#include "graph/property.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/slice.h"

namespace aion::graph {
namespace {

TEST(PropertyValueTest, TypesAndAccessors) {
  EXPECT_TRUE(PropertyValue().is_null());
  EXPECT_EQ(PropertyValue(true).type(), PropertyType::kBool);
  EXPECT_EQ(PropertyValue(int64_t{42}).AsInt(), 42);
  EXPECT_EQ(PropertyValue(7).AsInt(), 7);  // int promotes to int64
  EXPECT_DOUBLE_EQ(PropertyValue(2.5).AsDouble(), 2.5);
  EXPECT_EQ(PropertyValue("str").AsString(), "str");
  EXPECT_EQ(PropertyValue(std::vector<int64_t>{1, 2}).AsIntArray().size(), 2u);
}

TEST(PropertyValueTest, ToNumberCoercion) {
  EXPECT_DOUBLE_EQ(PropertyValue(true).ToNumber(), 1.0);
  EXPECT_DOUBLE_EQ(PropertyValue(int64_t{-3}).ToNumber(), -3.0);
  EXPECT_DOUBLE_EQ(PropertyValue(1.5).ToNumber(), 1.5);
  EXPECT_DOUBLE_EQ(PropertyValue("nope").ToNumber(), 0.0);
  EXPECT_DOUBLE_EQ(PropertyValue().ToNumber(), 0.0);
}

TEST(PropertyValueTest, Equality) {
  EXPECT_EQ(PropertyValue(5), PropertyValue(int64_t{5}));
  EXPECT_FALSE(PropertyValue(5) == PropertyValue(5.0));  // type-sensitive
  EXPECT_EQ(PropertyValue("a"), PropertyValue(std::string("a")));
}

TEST(PropertyValueTest, EncodeDecodeAllTypes) {
  const std::vector<PropertyValue> values = {
      PropertyValue(),
      PropertyValue(true),
      PropertyValue(false),
      PropertyValue(int64_t{0}),
      PropertyValue(int64_t{-1234567}),
      PropertyValue(int64_t{1} << 60),
      PropertyValue(3.14159),
      PropertyValue(""),
      PropertyValue("hello world"),
      PropertyValue(std::vector<int64_t>{}),
      PropertyValue(std::vector<int64_t>{1, -2, 3}),
      PropertyValue(std::vector<double>{0.5, -1.25}),
      PropertyValue(std::vector<std::string>{"a", "", "ccc"}),
  };
  std::string buf;
  for (const PropertyValue& v : values) v.EncodeTo(&buf);
  util::Slice input(buf);
  for (const PropertyValue& expected : values) {
    auto decoded = PropertyValue::DecodeFrom(&input);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, expected);
  }
  EXPECT_TRUE(input.empty());
}

TEST(PropertyValueTest, DecodeTruncatedFails) {
  std::string buf;
  PropertyValue("somewhat long string").EncodeTo(&buf);
  for (size_t keep = 0; keep + 1 < buf.size(); ++keep) {
    util::Slice input(buf.data(), keep);
    EXPECT_FALSE(PropertyValue::DecodeFrom(&input).ok());
  }
}

TEST(PropertyValueTest, ToStringFormats) {
  EXPECT_EQ(PropertyValue().ToString(), "null");
  EXPECT_EQ(PropertyValue(true).ToString(), "true");
  EXPECT_EQ(PropertyValue(int64_t{5}).ToString(), "5");
  EXPECT_EQ(PropertyValue("x").ToString(), "\"x\"");
  EXPECT_EQ(PropertyValue(std::vector<int64_t>{1, 2}).ToString(), "[1, 2]");
}

TEST(PropertySetTest, SetGetRemove) {
  PropertySet props;
  EXPECT_TRUE(props.empty());
  props.Set("name", PropertyValue("alice"));
  props.Set("age", PropertyValue(30));
  EXPECT_EQ(props.size(), 2u);
  ASSERT_NE(props.Get("name"), nullptr);
  EXPECT_EQ(props.Get("name")->AsString(), "alice");
  EXPECT_EQ(props.Get("missing"), nullptr);
  EXPECT_TRUE(props.Has("age"));
  EXPECT_TRUE(props.Remove("age"));
  EXPECT_FALSE(props.Remove("age"));
  EXPECT_EQ(props.size(), 1u);
}

TEST(PropertySetTest, SetReplaces) {
  PropertySet props;
  props.Set("k", PropertyValue(1));
  props.Set("k", PropertyValue(2));
  EXPECT_EQ(props.size(), 1u);
  EXPECT_EQ(props.Get("k")->AsInt(), 2);
}

TEST(PropertySetTest, IterationIsKeySorted) {
  PropertySet props;
  props.Set("zebra", PropertyValue(1));
  props.Set("apple", PropertyValue(2));
  props.Set("mango", PropertyValue(3));
  std::vector<std::string> keys;
  for (const auto& [k, v] : props) keys.push_back(k);
  EXPECT_EQ(keys, (std::vector<std::string>{"apple", "mango", "zebra"}));
}

TEST(PropertySetTest, EncodeDecodeRoundTrip) {
  PropertySet props;
  props.Set("s", PropertyValue("text"));
  props.Set("i", PropertyValue(99));
  props.Set("d", PropertyValue(-2.5));
  props.Set("arr", PropertyValue(std::vector<int64_t>{4, 5}));
  std::string buf;
  props.EncodeTo(&buf);
  util::Slice input(buf);
  auto decoded = PropertySet::DecodeFrom(&input);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, props);
  EXPECT_TRUE(input.empty());
}

TEST(PropertySetTest, EmptySetRoundTrip) {
  PropertySet props;
  std::string buf;
  props.EncodeTo(&buf);
  util::Slice input(buf);
  auto decoded = PropertySet::DecodeFrom(&input);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

TEST(PropertySetTest, EstimateBytesGrowsWithContent) {
  PropertySet small, large;
  small.Set("k", PropertyValue(1));
  large.Set("k", PropertyValue(std::string(1000, 'x')));
  EXPECT_GT(large.EstimateBytes(), small.EstimateBytes() + 900);
}

}  // namespace
}  // namespace aion::graph
