#include <gtest/gtest.h>

#include <set>

#include "baselines/gradoop_like.h"
#include "baselines/raphtory_like.h"
#include "graph/temporal_graph.h"
#include "util/random.h"

namespace aion::baselines {
namespace {

using graph::Direction;
using graph::GraphUpdate;
using graph::NodeId;
using graph::RelId;
using graph::Timestamp;

GraphUpdate At(Timestamp ts, GraphUpdate u) {
  u.ts = ts;
  return u;
}

std::vector<GraphUpdate> Timeline() {
  return {
      At(1, GraphUpdate::AddNode(0, {"A"})),
      At(1, GraphUpdate::AddNode(1, {"B"})),
      At(2, GraphUpdate::AddRelationship(0, 0, 1, "R")),
      At(3, GraphUpdate::SetNodeProperty(0, "x", graph::PropertyValue(1))),
      At(5, GraphUpdate::DeleteRelationship(0)),
      At(6, GraphUpdate::DeleteNode(1)),
      At(8, GraphUpdate::AddNode(1, {"Born again"})),
  };
}

template <typename Baseline>
class BaselineTest : public ::testing::Test {};

using BaselineTypes = ::testing::Types<RaphtoryLike, GradoopLike>;
TYPED_TEST_SUITE(BaselineTest, BaselineTypes);

TYPED_TEST(BaselineTest, PointInTimeLookups) {
  TypeParam store;
  ASSERT_TRUE(store.IngestAll(Timeline()).ok());
  // Node 0 property versioning.
  auto n0_at_2 = store.GetNodeAt(0, 2);
  ASSERT_TRUE(n0_at_2.has_value());
  EXPECT_EQ(n0_at_2->props.Get("x"), nullptr);
  auto n0_at_4 = store.GetNodeAt(0, 4);
  ASSERT_TRUE(n0_at_4.has_value());
  EXPECT_EQ(n0_at_4->props.Get("x")->AsInt(), 1);
  // Node 1 lifecycle.
  EXPECT_TRUE(store.GetNodeAt(1, 5).has_value());
  EXPECT_FALSE(store.GetNodeAt(1, 7).has_value());
  EXPECT_TRUE(store.GetNodeAt(1, 9).has_value());
  // Relationship lifecycle.
  EXPECT_FALSE(store.GetRelationshipAt(0, 1).has_value());
  EXPECT_TRUE(store.GetRelationshipAt(0, 3).has_value());
  EXPECT_FALSE(store.GetRelationshipAt(0, 5).has_value());
}

TYPED_TEST(BaselineTest, SnapshotMatchesReference) {
  TypeParam store;
  const auto updates = Timeline();
  ASSERT_TRUE(store.IngestAll(updates).ok());
  auto reference = graph::TemporalGraph::Build(updates);
  ASSERT_TRUE(reference.ok());
  for (Timestamp t : {0ULL, 1ULL, 2ULL, 4ULL, 5ULL, 6ULL, 7ULL, 8ULL, 9ULL}) {
    auto expected = (*reference)->SnapshotAt(t);
    auto actual = store.SnapshotAt(t);
    EXPECT_TRUE(expected->SameGraphAs(*actual)) << "t=" << t;
  }
}

TYPED_TEST(BaselineTest, NeighboursAtTime) {
  TypeParam store;
  ASSERT_TRUE(store.IngestAll(Timeline()).ok());
  auto at3 = store.NeighboursAt(0, Direction::kOutgoing, 3);
  ASSERT_EQ(at3.size(), 1u);
  EXPECT_EQ(at3[0], 1u);
  EXPECT_TRUE(store.NeighboursAt(0, Direction::kOutgoing, 5).empty());
  EXPECT_TRUE(store.NeighboursAt(0, Direction::kOutgoing, 1).empty());
  auto in_at_3 = store.NeighboursAt(1, Direction::kIncoming, 3);
  ASSERT_EQ(in_at_3.size(), 1u);
  EXPECT_EQ(in_at_3[0], 0u);
}

TEST(RaphtoryLikeTest, DropsParallelEdges) {
  RaphtoryLike store;
  ASSERT_TRUE(store.Ingest(At(1, GraphUpdate::AddNode(0))).ok());
  ASSERT_TRUE(store.Ingest(At(1, GraphUpdate::AddNode(1))).ok());
  ASSERT_TRUE(
      store.Ingest(At(2, GraphUpdate::AddRelationship(0, 0, 1, "R"))).ok());
  ASSERT_TRUE(
      store.Ingest(At(3, GraphUpdate::AddRelationship(1, 0, 1, "R"))).ok());
  EXPECT_EQ(store.dropped_parallel_edges(), 1u);
  EXPECT_FALSE(store.GetRelationshipAt(1, 4).has_value());
  // After deleting the live edge, a new parallel one is accepted.
  ASSERT_TRUE(store.Ingest(At(4, GraphUpdate::DeleteRelationship(0))).ok());
  ASSERT_TRUE(
      store.Ingest(At(5, GraphUpdate::AddRelationship(2, 0, 1, "R"))).ok());
  EXPECT_TRUE(store.GetRelationshipAt(2, 6).has_value());
}

TEST(RaphtoryLikeTest, ExpandPerHop) {
  RaphtoryLike store;
  for (NodeId i = 0; i < 4; ++i) {
    ASSERT_TRUE(store.Ingest(At(1, GraphUpdate::AddNode(i))).ok());
  }
  ASSERT_TRUE(
      store.Ingest(At(2, GraphUpdate::AddRelationship(0, 0, 1, "R"))).ok());
  ASSERT_TRUE(
      store.Ingest(At(2, GraphUpdate::AddRelationship(1, 1, 2, "R"))).ok());
  ASSERT_TRUE(
      store.Ingest(At(2, GraphUpdate::AddRelationship(2, 2, 3, "R"))).ok());
  auto hops = store.Expand(0, Direction::kOutgoing, 2, 2);
  ASSERT_EQ(hops.size(), 2u);
  EXPECT_EQ(hops[0], std::vector<NodeId>{1});
  EXPECT_EQ(hops[1], std::vector<NodeId>{2});
}

TEST(GradoopLikeTest, RowCountsGrowWithHistory) {
  GradoopLike store;
  ASSERT_TRUE(store.Ingest(At(1, GraphUpdate::AddNode(0))).ok());
  EXPECT_EQ(store.node_rows(), 1u);
  // Each property change adds a row (temporal-table encoding).
  ASSERT_TRUE(store
                  .Ingest(At(2, GraphUpdate::SetNodeProperty(
                                    0, "k", graph::PropertyValue(1))))
                  .ok());
  ASSERT_TRUE(store
                  .Ingest(At(3, GraphUpdate::SetNodeProperty(
                                    0, "k", graph::PropertyValue(2))))
                  .ok());
  EXPECT_EQ(store.node_rows(), 3u);
}

TEST(GradoopLikeTest, SnapshotDropsDanglingRels) {
  GradoopLike store;
  ASSERT_TRUE(store.Ingest(At(1, GraphUpdate::AddNode(0))).ok());
  ASSERT_TRUE(store.Ingest(At(1, GraphUpdate::AddNode(1))).ok());
  ASSERT_TRUE(
      store.Ingest(At(2, GraphUpdate::AddRelationship(0, 0, 1, "R"))).ok());
  // Delete rel then node (consistent stream).
  ASSERT_TRUE(store.Ingest(At(3, GraphUpdate::DeleteRelationship(0))).ok());
  ASSERT_TRUE(store.Ingest(At(3, GraphUpdate::DeleteNode(1))).ok());
  auto at2 = store.SnapshotAt(2);
  EXPECT_EQ(at2->NumRelationships(), 1u);
  auto at3 = store.SnapshotAt(3);
  EXPECT_EQ(at3->NumRelationships(), 0u);
  EXPECT_EQ(at3->NumNodes(), 1u);
}

// Equivalence under a random (multigraph-free) update stream.
TEST(BaselineEquivalenceTest, AllStoresAgreeOnRandomStream) {
  util::Random rng(99);
  RaphtoryLike raphtory;
  GradoopLike gradoop;
  graph::TemporalGraph reference;

  std::vector<std::pair<NodeId, NodeId>> used_pairs;
  std::vector<RelId> live;
  NodeId next_node = 0;
  RelId next_rel = 0;
  Timestamp ts = 0;
  std::set<std::pair<NodeId, NodeId>> pair_set;
  for (int op = 0; op < 400; ++op) {
    ++ts;
    GraphUpdate u;
    const double dice = rng.NextDouble();
    if (dice < 0.3 || next_node < 2) {
      u = GraphUpdate::AddNode(next_node++);
    } else if (dice < 0.6) {
      const NodeId s = rng.Uniform(next_node);
      const NodeId t = rng.Uniform(next_node);
      if (s == t || !pair_set.insert({s, t}).second) continue;  // simple graph
      u = GraphUpdate::AddRelationship(next_rel, s, t, "R");
      live.push_back(next_rel++);
    } else if (dice < 0.85) {
      const NodeId n = rng.Uniform(next_node);
      u = GraphUpdate::SetNodeProperty(n, "p",
                                       graph::PropertyValue(op));
    } else if (!live.empty()) {
      const size_t idx = rng.Uniform(live.size());
      u = GraphUpdate::DeleteRelationship(live[idx]);
      live.erase(live.begin() + static_cast<long>(idx));
    } else {
      continue;
    }
    u.ts = ts;
    ASSERT_TRUE(reference.Apply(u).ok()) << u.ToString();
    if (u.op == graph::UpdateOp::kDeleteRelationship) {
      // Keep the pair bookkeeping consistent for re-adds.
      const auto rel = gradoop.GetRelationshipAt(u.id, ts - 1);
      if (rel.has_value()) pair_set.erase({rel->src, rel->tgt});
    }
    ASSERT_TRUE(raphtory.Ingest(u).ok()) << u.ToString();
    ASSERT_TRUE(gradoop.Ingest(u).ok()) << u.ToString();
  }
  EXPECT_EQ(raphtory.dropped_parallel_edges(), 0u);
  for (Timestamp t : {ts / 4, ts / 2, ts}) {
    auto expected = reference.SnapshotAt(t);
    EXPECT_TRUE(expected->SameGraphAs(*raphtory.SnapshotAt(t))) << t;
    EXPECT_TRUE(expected->SameGraphAs(*gradoop.SnapshotAt(t))) << t;
  }
}

}  // namespace
}  // namespace aion::baselines
