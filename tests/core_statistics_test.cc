#include "core/statistics.h"

#include <gtest/gtest.h>

namespace aion::core {
namespace {

using graph::GraphUpdate;

TEST(StatisticsTest, NodeAndRelCounts) {
  GraphStatistics stats;
  stats.Observe(GraphUpdate::AddNode(0, {"A"}));
  stats.Observe(GraphUpdate::AddNode(1, {"A", "B"}));
  stats.Observe(GraphUpdate::AddRelationship(0, 0, 1, "R"));
  EXPECT_EQ(stats.num_nodes(), 2);
  EXPECT_EQ(stats.num_relationships(), 1);
  EXPECT_EQ(stats.CountWithLabel("A"), 2);
  EXPECT_EQ(stats.CountWithLabel("B"), 1);
  EXPECT_EQ(stats.CountWithType("R"), 1);
  stats.Observe(GraphUpdate::DeleteRelationship(0));
  EXPECT_EQ(stats.num_relationships(), 0);
  stats.Observe(GraphUpdate::DeleteNode(0));
  EXPECT_EQ(stats.num_nodes(), 1);
}

TEST(StatisticsTest, LabelEventsAdjustCounts) {
  GraphStatistics stats;
  stats.Observe(GraphUpdate::AddNode(0));
  stats.Observe(GraphUpdate::AddNodeLabel(0, "X"));
  EXPECT_EQ(stats.CountWithLabel("X"), 1);
  stats.Observe(GraphUpdate::RemoveNodeLabel(0, "X"));
  EXPECT_EQ(stats.CountWithLabel("X"), 0);
}

TEST(StatisticsTest, PatternCountsFromAnnotatedRelAdds) {
  GraphStatistics stats;
  GraphUpdate rel = GraphUpdate::AddRelationship(0, 0, 1, "KNOWS");
  rel.labels = {"Person"};  // source labels annotation
  stats.Observe(rel);
  EXPECT_EQ(stats.CountPattern("Person", "KNOWS"), 1);
  EXPECT_EQ(stats.CountPattern("", "KNOWS"), 1);   // wildcard label
  EXPECT_EQ(stats.CountPattern("", ""), 1);        // all rels
  EXPECT_EQ(stats.CountPattern("City", "KNOWS"), 0);
}

TEST(StatisticsTest, EstimatePatternUsesMinRule) {
  GraphStatistics stats;
  for (int i = 0; i < 10; ++i) {
    GraphUpdate rel = GraphUpdate::AddRelationship(
        static_cast<graph::RelId>(i), 0, 1, "R");
    rel.labels = {"A"};
    stats.Observe(rel);
  }
  GraphUpdate other = GraphUpdate::AddRelationship(100, 2, 3, "R");
  other.labels = {"B"};
  stats.Observe(other);
  // #((:A)-[:R]->()) = 10, #(()-[:R]->(:B)) approximated by type count 11.
  EXPECT_EQ(stats.EstimatePattern("A", "R", "B"), 10);
  EXPECT_EQ(stats.EstimatePattern("B", "R", ""), 1);
}

TEST(StatisticsTest, ExpandFractionGrowsWithHops) {
  GraphStatistics stats;
  // 100 nodes, 300 rels -> degree 3.
  for (int i = 0; i < 100; ++i) {
    stats.Observe(GraphUpdate::AddNode(static_cast<graph::NodeId>(i)));
  }
  for (int i = 0; i < 300; ++i) {
    stats.Observe(GraphUpdate::AddRelationship(
        static_cast<graph::RelId>(i), 0, 1, "R"));
  }
  EXPECT_DOUBLE_EQ(stats.AverageDegree(), 3.0);
  const double f1 = stats.EstimateExpandFraction(1);
  const double f2 = stats.EstimateExpandFraction(2);
  const double f5 = stats.EstimateExpandFraction(5);
  EXPECT_LT(f1, f2);
  EXPECT_LT(f2, f5);
  EXPECT_NEAR(f1, 4.0 / 100, 1e-9);          // 1 + 3 reached
  EXPECT_NEAR(f2, 13.0 / 100, 1e-9);         // 1 + 3 + 9
  EXPECT_DOUBLE_EQ(f5, 1.0);                 // saturates
}

TEST(StatisticsTest, ThirtyPercentHeuristicBoundary) {
  GraphStatistics stats;
  for (int i = 0; i < 100; ++i) {
    stats.Observe(GraphUpdate::AddNode(static_cast<graph::NodeId>(i)));
  }
  for (int i = 0; i < 300; ++i) {
    stats.Observe(GraphUpdate::AddRelationship(
        static_cast<graph::RelId>(i), 0, 1, "R"));
  }
  // hops=2 -> 13% < 30% (LineageStore); hops=3 -> 40% > 30% (TimeStore).
  EXPECT_LT(stats.EstimateExpandFraction(2), 0.3);
  EXPECT_GT(stats.EstimateExpandFraction(3), 0.3);
}

TEST(StatisticsTest, EmptyGraphEdgeCases) {
  GraphStatistics stats;
  EXPECT_DOUBLE_EQ(stats.AverageDegree(), 0.0);
  EXPECT_DOUBLE_EQ(stats.EstimateExpandFraction(3), 0.0);
  EXPECT_DOUBLE_EQ(stats.EstimateLabelFraction("X"), 0.0);
  EXPECT_EQ(stats.EstimatePattern("A", "R", "B"), 0);
}

TEST(StatisticsTest, LabelFraction) {
  GraphStatistics stats;
  for (int i = 0; i < 10; ++i) {
    stats.Observe(GraphUpdate::AddNode(static_cast<graph::NodeId>(i),
                                       i < 3 ? std::vector<std::string>{"Hot"}
                                             : std::vector<std::string>{}));
  }
  EXPECT_DOUBLE_EQ(stats.EstimateLabelFraction("Hot"), 0.3);
  EXPECT_DOUBLE_EQ(stats.EstimateLabelFraction("Cold"), 0.0);
}

}  // namespace
}  // namespace aion::core
