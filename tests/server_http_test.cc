// ObservabilityHttpServer: the embedded GET-only HTTP/1.0 endpoint. Covers
// /metrics (Prometheus text with histogram families), /healthz (200/503
// tracking the watchdog), /debug/flight, the error paths (404, 405), the
// degraded-and-recover acceptance scenario driven by a stalled cascade
// worker, and Stop() unparking connections.
#include "server/http.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>

#include "core/aion.h"
#include "query/engine.h"
#include "storage/file.h"
#include "txn/graphdb.h"

namespace aion::server {
namespace {

struct HttpResponse {
  int status = 0;
  std::string headers;
  std::string body;
};

// Minimal HTTP/1.0 client: one request, read to EOF (the server closes).
HttpResponse HttpGet(uint16_t port, const std::string& request_line) {
  HttpResponse response;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return response;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return response;
  }
  const std::string request = request_line + "\r\n\r\n";
  (void)::send(fd, request.data(), request.size(), 0);
  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    raw.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  // "HTTP/1.0 200 OK\r\n<headers>\r\n\r\n<body>"
  if (raw.size() > 12 && raw.compare(0, 5, "HTTP/") == 0) {
    response.status = std::atoi(raw.c_str() + 9);
  }
  const size_t split = raw.find("\r\n\r\n");
  if (split != std::string::npos) {
    response.headers = raw.substr(0, split);
    response.body = raw.substr(split + 4);
  }
  return response;
}

TEST(ObservabilityHttpTest, MetricsEndpointServesPrometheusText) {
  obs::MetricsRegistry registry;
  registry.counter("http_test.count")->Add(3);
  registry.histogram("http_test.nanos")->Record(1000);
  ObservabilityHttpServer server(&registry, nullptr, nullptr);
  auto port = server.Start();
  ASSERT_TRUE(port.ok()) << port.status().ToString();
  const HttpResponse response = HttpGet(*port, "GET /metrics HTTP/1.0");
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.headers.find("text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_NE(response.headers.find("Content-Length:"), std::string::npos);
  EXPECT_NE(response.body.find("aion_http_test_count 3"), std::string::npos);
  EXPECT_NE(response.body.find("aion_http_test_nanos_bucket{le=\""),
            std::string::npos);
  EXPECT_NE(response.body.find("_bucket{le=\"+Inf\"}"), std::string::npos);
  server.Stop();
}

TEST(ObservabilityHttpTest, HealthzTracksWatchdogVerdict) {
  obs::MetricsRegistry registry;
  obs::HealthWatchdog::Options options;
  options.period_millis = 0;
  obs::HealthWatchdog watchdog(&registry, options);
  double value = 0;
  watchdog.AddCheck("probe", [&] { return value; }, 1.0,
                    obs::HealthWatchdog::Direction::kAbove);
  ObservabilityHttpServer server(&registry, &watchdog, nullptr);
  auto port = server.Start();
  ASSERT_TRUE(port.ok());
  HttpResponse response = HttpGet(*port, "GET /healthz HTTP/1.0");
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"healthy\":true"), std::string::npos);
  value = 5;  // every /healthz request re-evaluates: flips immediately
  response = HttpGet(*port, "GET /healthz HTTP/1.0");
  EXPECT_EQ(response.status, 503);
  EXPECT_NE(response.body.find("\"healthy\":false"), std::string::npos);
  EXPECT_NE(response.body.find("\"name\":\"probe\""), std::string::npos);
  value = 0;
  response = HttpGet(*port, "GET /healthz HTTP/1.0");
  EXPECT_EQ(response.status, 200);
  server.Stop();
}

TEST(ObservabilityHttpTest, HealthzWithoutWatchdogIsHealthy) {
  obs::MetricsRegistry registry;
  ObservabilityHttpServer server(&registry, nullptr, nullptr);
  auto port = server.Start();
  ASSERT_TRUE(port.ok());
  const HttpResponse response = HttpGet(*port, "GET /healthz HTTP/1.0");
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"healthy\":true"), std::string::npos);
  server.Stop();
}

TEST(ObservabilityHttpTest, FlightEndpointServesRingJson) {
  obs::MetricsRegistry registry;
  registry.counter("ring.count")->Add(7);
  obs::FlightRecorder::Options options;
  options.period_millis = 0;
  options.capacity = 8;
  obs::FlightRecorder flight(&registry, options);
  flight.SampleNow();
  ObservabilityHttpServer server(&registry, nullptr, &flight);
  auto port = server.Start();
  ASSERT_TRUE(port.ok());
  const HttpResponse response = HttpGet(*port, "GET /debug/flight HTTP/1.0");
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.headers.find("application/json"), std::string::npos);
  EXPECT_NE(response.body.find("\"samples\":["), std::string::npos);
  EXPECT_NE(response.body.find("\"ring.count\":7"), std::string::npos);
  server.Stop();
}

TEST(ObservabilityHttpTest, ErrorPaths) {
  obs::MetricsRegistry registry;
  ObservabilityHttpServer server(&registry, nullptr, nullptr);
  auto port = server.Start();
  ASSERT_TRUE(port.ok());
  EXPECT_EQ(HttpGet(*port, "GET /nope HTTP/1.0").status, 404);
  // No flight recorder attached: /debug/flight is 404, not a crash.
  EXPECT_EQ(HttpGet(*port, "GET /debug/flight HTTP/1.0").status, 404);
  EXPECT_EQ(HttpGet(*port, "POST /metrics HTTP/1.0").status, 405);
  // A query string is ignored, not treated as part of the path.
  EXPECT_EQ(HttpGet(*port, "GET /healthz?verbose=1 HTTP/1.0").status, 200);
  EXPECT_GE(server.requests_served(), 4u);
  server.Stop();
}

TEST(ObservabilityHttpTest, StopUnparksConnections) {
  obs::MetricsRegistry registry;
  ObservabilityHttpServer server(&registry, nullptr, nullptr);
  auto port = server.Start();
  ASSERT_TRUE(port.ok());
  // Open a connection and send nothing: the worker parks in recv waiting
  // for the request head. Stop must shut the socket down to unpark it.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(*port);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server.Stop();  // joins the parked worker; hangs forever if it leaks
  char buf[16];
  EXPECT_LE(::recv(fd, buf, sizeof(buf), 0), 0);  // peer closed or reset
  ::close(fd);
}

// Acceptance scenario: a stalled cascade worker degrades health — visible
// through both CALL dbms.health() and GET /healthz — and recovery restores
// both. The stall is injected by pausing the cascade pipeline with a
// watermark-lag threshold small enough that the paused queue trips it.
TEST(ObservabilityHttpTest, StalledCascadeDegradesHealthThenRecovers) {
  auto dir = storage::MakeTempDir("aion_http_accept_");
  ASSERT_TRUE(dir.ok());
  auto db = txn::GraphDatabase::OpenInMemory();
  ASSERT_TRUE(db.ok());
  core::AionStore::Options options;
  options.dir = *dir + "/aion";
  options.lineage_mode = core::AionStore::LineageMode::kAsync;
  // Deterministic health: no background loops, tiny lag tolerance (1ms —
  // generous against scheduler noise, tiny against a deliberate stall).
  options.flight_sample_period_millis = 0;
  options.health_check_period_millis = 0;
  options.health_max_watermark_lag_nanos = 1'000'000;
  auto aion = core::AionStore::Open(options);
  ASSERT_TRUE(aion.ok()) << aion.status().ToString();
  (*db)->RegisterListener(aion->get());
  query::QueryEngine engine(db->get(), aion->get());

  ObservabilityHttpServer server(&engine);
  auto port = server.Start();
  ASSERT_TRUE(port.ok()) << port.status().ToString();

  const auto overall_ok = [&] {
    auto result = engine.Execute("CALL dbms.health()");
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    if (!result.ok() || result->rows.empty()) return false;
    EXPECT_EQ(result->rows[0][0].AsString(), "overall");
    return result->rows[0][3].AsBool();
  };

  // Healthy to start: nothing ingested, no lag.
  EXPECT_TRUE(overall_ok());
  EXPECT_EQ(HttpGet(*port, "GET /healthz HTTP/1.0").status, 200);

  // Stall the cascade, ingest, and let the enqueued transaction age past
  // the threshold: health flips to degraded.
  core::CascadePipeline* cascade = (*aion)->cascade_for_testing();
  ASSERT_NE(cascade, nullptr);
  cascade->PauseForTesting();
  ASSERT_TRUE(engine.Execute("CREATE (n:Stalled {v: 1})").ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GT((*aion)->CascadeWatermarkLagNanos(),
            options.health_max_watermark_lag_nanos);
  EXPECT_FALSE(overall_ok());
  const HttpResponse degraded = HttpGet(*port, "GET /healthz HTTP/1.0");
  EXPECT_EQ(degraded.status, 503);
  EXPECT_NE(degraded.body.find("\"name\":\"cascade.watermark_lag\""),
            std::string::npos);
  // The degraded gauge is exported (the /metrics probe refresh keeps it
  // consistent with the verdict /healthz just returned).
  const HttpResponse metrics = HttpGet(*port, "GET /metrics HTTP/1.0");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("aion_health_degraded 1"), std::string::npos);
  EXPECT_NE(metrics.body.find("aion_cascade_watermark_lag_nanos"),
            std::string::npos);

  // Recovery: resume the cascade, drain, and both surfaces flip back.
  cascade->ResumeForTesting();
  (*aion)->DrainBackground();
  EXPECT_EQ((*aion)->CascadeWatermarkLagNanos(), 0u);
  EXPECT_TRUE(overall_ok());
  EXPECT_EQ(HttpGet(*port, "GET /healthz HTTP/1.0").status, 200);
  const HttpResponse recovered = HttpGet(*port, "GET /metrics HTTP/1.0");
  EXPECT_NE(recovered.body.find("aion_health_degraded 0"),
            std::string::npos);

  // dbms.flight() works over the same engine and carries the ring.
  auto flight = engine.Execute("CALL dbms.flight()");
  ASSERT_TRUE(flight.ok()) << flight.status().ToString();
  EXPECT_NE(flight->rows[0][0].AsString().find("\"samples\":["),
            std::string::npos);

  server.Stop();
  (void)storage::RemoveDirRecursively(*dir);
}

// The engine-backed constructor wires the registry through: queries drive
// server-side instruments that then show up in /metrics.
TEST(ObservabilityHttpTest, EngineBackedMetricsReflectQueries) {
  auto dir = storage::MakeTempDir("aion_http_engine_");
  ASSERT_TRUE(dir.ok());
  auto db = txn::GraphDatabase::OpenInMemory();
  ASSERT_TRUE(db.ok());
  core::AionStore::Options options;
  options.dir = *dir + "/aion";
  options.lineage_mode = core::AionStore::LineageMode::kSync;
  options.flight_sample_period_millis = 0;
  options.health_check_period_millis = 0;
  auto aion = core::AionStore::Open(options);
  ASSERT_TRUE(aion.ok());
  (*db)->RegisterListener(aion->get());
  query::QueryEngine engine(db->get(), aion->get());
  ASSERT_TRUE(engine.Execute("CREATE (n:Wired)").ok());

  ObservabilityHttpServer server(&engine);
  auto port = server.Start();
  ASSERT_TRUE(port.ok());
  const HttpResponse response = HttpGet(*port, "GET /metrics HTTP/1.0");
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("aion_query_statements"), std::string::npos);
  EXPECT_NE(response.body.find("aion_ingest_batches"), std::string::npos);
  // http.requests counts itself (resolved from the same registry).
  const HttpResponse again = HttpGet(*port, "GET /metrics HTTP/1.0");
  EXPECT_NE(again.body.find("aion_http_requests"), std::string::npos);
  server.Stop();
  (void)storage::RemoveDirRecursively(*dir);
}

}  // namespace
}  // namespace aion::server
