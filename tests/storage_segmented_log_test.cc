// SegmentedLog: rolling segments, fence/bloom pruning, atomic drops with
// pinned handles, and crash recovery of the manifest and the active tail.
#include "storage/segmented_log.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "storage/file.h"
#include "util/coding.h"

namespace aion::storage {
namespace {

// Test payloads carry (ts, key) as two fixed64s so the probe can rebuild
// fences and blooms at reopen.
std::string EncodePayload(uint64_t ts, uint64_t key) {
  std::string payload;
  util::PutFixed64(&payload, ts);
  util::PutFixed64(&payload, key);
  payload.append("padding so segments roll quickly");
  return payload;
}

Status ProbePayload(util::Slice payload, uint64_t* ts,
                    std::vector<uint64_t>* keys) {
  if (payload.size() < 16) {
    return util::Status::Corruption("short test payload");
  }
  *ts = util::DecodeFixed64(payload.data());
  keys->push_back(util::DecodeFixed64(payload.data() + 8));
  return Status::OK();
}

class SegmentedLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = MakeTempDir("aion_seglog_test_");
    ASSERT_TRUE(dir.ok());
    dir_ = *dir;
  }
  void TearDown() override { (void)RemoveDirRecursively(dir_); }

  SegmentedLog::Options SmallSegments() {
    SegmentedLog::Options options;
    options.dir = dir_ + "/log";
    options.target_segment_bytes = 128;  // roll every couple of records
    options.probe = ProbePayload;
    return options;
  }

  std::string dir_;
};

TEST_F(SegmentedLogTest, AppendReadRoundTripAcrossRolls) {
  auto log = SegmentedLog::Open(SmallSegments());
  ASSERT_TRUE(log.ok());
  std::vector<RecordLoc> locs;
  for (uint64_t i = 1; i <= 20; ++i) {
    auto loc = (*log)->Append(EncodePayload(i, 100 + i), {i, {100 + i}});
    ASSERT_TRUE(loc.ok());
    locs.push_back(*loc);
  }
  EXPECT_GT((*log)->NumSegments(), 1u);
  for (uint64_t i = 0; i < locs.size(); ++i) {
    std::string payload;
    ASSERT_TRUE((*log)->Read(locs[i], &payload).ok());
    EXPECT_EQ(payload, EncodePayload(i + 1, 101 + i));
  }
  // Sealed segments carry tight fences.
  for (const SegmentMeta& meta : (*log)->SealedSegments()) {
    EXPECT_LE(meta.min_ts, meta.max_ts);
    EXPECT_GE(meta.min_ts, 1u);
    EXPECT_LE(meta.max_ts, 20u);
    EXPECT_GT(meta.records, 0u);
  }
}

TEST_F(SegmentedLogTest, MightContainPrunesByFenceAndBloom) {
  auto log = SegmentedLog::Open(SmallSegments());
  ASSERT_TRUE(log.ok());
  for (uint64_t i = 1; i <= 20; ++i) {
    ASSERT_TRUE(
        (*log)->Append(EncodePayload(i, 100 + i), {i, {100 + i}}).ok());
  }
  ASSERT_TRUE((*log)->SealActive().ok());
  const std::vector<SegmentMeta> sealed = (*log)->SealedSegments();
  ASSERT_GT(sealed.size(), 1u);
  for (const SegmentMeta& meta : sealed) {
    // Fence miss: a range strictly above the segment's records.
    EXPECT_FALSE((*log)->MightContain(meta.id, meta.max_ts + 1,
                                      meta.max_ts + 10, nullptr));
    // Fence hit with no key filter: must scan.
    EXPECT_TRUE(
        (*log)->MightContain(meta.id, meta.min_ts, meta.max_ts, nullptr));
    // Key present in this segment: must scan.
    const std::vector<uint64_t> present = {100 + meta.min_ts};
    EXPECT_TRUE(
        (*log)->MightContain(meta.id, meta.min_ts, meta.max_ts, &present));
  }
  // A key no segment ever saw: bloom filters have no false negatives, and
  // while a false positive is legal per segment, with ~10 bits/key at
  // least one segment must prune.
  uint64_t pruned = 0;
  const std::vector<uint64_t> absent = {999999};
  for (const SegmentMeta& meta : sealed) {
    if (!(*log)->MightContain(meta.id, meta.min_ts, meta.max_ts, &absent)) {
      ++pruned;
    }
  }
  EXPECT_GT(pruned, 0u);
  // Unknown segments hold nothing.
  EXPECT_FALSE((*log)->MightContain(424242, 0, ~0ull, nullptr));
}

TEST_F(SegmentedLogTest, DropSegmentsKeepsPinnedHandlesReadable) {
  auto log = SegmentedLog::Open(SmallSegments());
  ASSERT_TRUE(log.ok());
  std::vector<RecordLoc> locs;
  for (uint64_t i = 1; i <= 20; ++i) {
    auto loc = (*log)->Append(EncodePayload(i, 100 + i), {i, {100 + i}});
    ASSERT_TRUE(loc.ok());
    locs.push_back(*loc);
  }
  const std::vector<uint64_t> victims = (*log)->SealedBefore(10);
  ASSERT_FALSE(victims.empty());
  // Pin a handle to the first victim before it is dropped.
  auto handle = (*log)->Handle(victims.front());
  ASSERT_TRUE(handle.ok());
  const RecordLoc pinned_loc = locs.front();
  ASSERT_EQ(pinned_loc.segment_id, victims.front());

  ASSERT_TRUE((*log)->DropSegments(victims, 10, /*unlink=*/true).ok());
  EXPECT_EQ((*log)->floor_ts(), 10u);
  for (uint64_t id : victims) {
    EXPECT_FALSE((*log)->HasSegment(id));
    EXPECT_FALSE(FileExists(dir_ + "/log/seg_" + std::to_string(id) +
                            ".log"));
  }
  // The pinned handle still reads the unlinked file.
  std::string payload;
  ASSERT_TRUE((*handle)->Read(pinned_loc.offset, &payload).ok());
  EXPECT_EQ(payload, EncodePayload(1, 101));
  // Un-pinned access now fails.
  EXPECT_FALSE((*log)->Read(pinned_loc, &payload).ok());
  EXPECT_FALSE((*log)->Handle(victims.front()).ok());
}

TEST_F(SegmentedLogTest, PersistsAcrossReopen) {
  SegmentedLog::Options options = SmallSegments();
  std::vector<RecordLoc> locs;
  {
    auto log = SegmentedLog::Open(options);
    ASSERT_TRUE(log.ok());
    for (uint64_t i = 1; i <= 20; ++i) {
      auto loc = (*log)->Append(EncodePayload(i, 100 + i), {i, {100 + i}});
      ASSERT_TRUE(loc.ok());
      locs.push_back(*loc);
    }
    ASSERT_TRUE((*log)->Sync().ok());
  }
  auto log = SegmentedLog::Open(options);
  ASSERT_TRUE(log.ok());
  for (uint64_t i = 0; i < locs.size(); ++i) {
    std::string payload;
    ASSERT_TRUE((*log)->Read(locs[i], &payload).ok());
    EXPECT_EQ(payload, EncodePayload(i + 1, 101 + i));
  }
  // The reopened active segment was probed, so its fences are tight again:
  // a far-future range must not claim to contain anything.
  const uint64_t active = (*log)->active_segment_id();
  EXPECT_FALSE((*log)->MightContain(active, 1000, 2000, nullptr));
  // Appends keep working and land past the recovered tail.
  auto loc = (*log)->Append(EncodePayload(21, 121), {21, {121}});
  ASSERT_TRUE(loc.ok());
  std::string payload;
  ASSERT_TRUE((*log)->Read(*loc, &payload).ok());
  EXPECT_EQ(payload, EncodePayload(21, 121));
}

TEST_F(SegmentedLogTest, TornManifestTailFallsBackToPreviousVersion) {
  SegmentedLog::Options options = SmallSegments();
  uint64_t segments_before = 0;
  uint64_t floor_before = 0;
  {
    auto log = SegmentedLog::Open(options);
    ASSERT_TRUE(log.ok());
    for (uint64_t i = 1; i <= 20; ++i) {
      ASSERT_TRUE(
          (*log)->Append(EncodePayload(i, 100 + i), {i, {100 + i}}).ok());
    }
    ASSERT_TRUE((*log)->Sync().ok());
    segments_before = (*log)->NumSegments();
    floor_before = (*log)->floor_ts();
    // One more manifest commit whose tail we will tear off.
    ASSERT_TRUE((*log)->SealActive().ok());
  }
  // Crash mid-manifest-write: the last commit record is torn.
  {
    auto file = RandomAccessFile::Open(options.dir + "/MANIFEST");
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Truncate((*file)->size() - 5).ok());
  }
  auto log = SegmentedLog::Open(options);
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  // The previous version is current again: the seal never happened.
  EXPECT_EQ((*log)->NumSegments(), segments_before);
  EXPECT_EQ((*log)->floor_ts(), floor_before);
}

TEST_F(SegmentedLogTest, ZeroExtendedManifestTailRecovers) {
  SegmentedLog::Options options = SmallSegments();
  uint64_t segments_before = 0;
  {
    auto log = SegmentedLog::Open(options);
    ASSERT_TRUE(log.ok());
    for (uint64_t i = 1; i <= 10; ++i) {
      ASSERT_TRUE(
          (*log)->Append(EncodePayload(i, 100 + i), {i, {100 + i}}).ok());
    }
    ASSERT_TRUE((*log)->Sync().ok());
    segments_before = (*log)->NumSegments();
  }
  // Crash mid-pwrite: the manifest grew by zero bytes that parse as a fake
  // empty record. Must be recognized as torn, not corrupt.
  {
    auto file = RandomAccessFile::Open(options.dir + "/MANIFEST");
    ASSERT_TRUE(file.ok());
    const std::string zeros(8, '\0');
    ASSERT_TRUE((*file)->Write((*file)->size(), zeros.data(), 8).ok());
  }
  auto log = SegmentedLog::Open(options);
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  EXPECT_EQ((*log)->NumSegments(), segments_before);
}

TEST_F(SegmentedLogTest, OrphanSegmentFilesReapedAtOpen) {
  SegmentedLog::Options options = SmallSegments();
  {
    auto log = SegmentedLog::Open(options);
    ASSERT_TRUE(log.ok());
    for (uint64_t i = 1; i <= 10; ++i) {
      ASSERT_TRUE(
          (*log)->Append(EncodePayload(i, 100 + i), {i, {100 + i}}).ok());
    }
    ASSERT_TRUE((*log)->Sync().ok());
  }
  // A crash after a DropSegments manifest commit but before the unlinks
  // leaves unreferenced segment files behind.
  const std::string orphan = options.dir + "/seg_999.log";
  {
    auto f = LogFile::Open(orphan);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append("orphaned bytes").ok());
    ASSERT_TRUE((*f)->Sync().ok());
  }
  ASSERT_TRUE(FileExists(orphan));
  auto log = SegmentedLog::Open(options);
  ASSERT_TRUE(log.ok());
  EXPECT_FALSE(FileExists(orphan));
}

TEST_F(SegmentedLogTest, AppendBatchReportsPerRecordLocations) {
  auto log = SegmentedLog::Open(SmallSegments());
  ASSERT_TRUE(log.ok());
  std::vector<std::string> payloads;
  std::vector<RecordInfo> info;
  for (uint64_t i = 1; i <= 5; ++i) {
    payloads.push_back(EncodePayload(i, 200 + i));
    info.push_back({i, {200 + i}});
  }
  std::vector<RecordLoc> locs;
  ASSERT_TRUE((*log)->AppendBatch(payloads, info, &locs).ok());
  ASSERT_EQ(locs.size(), payloads.size());
  for (size_t i = 0; i < locs.size(); ++i) {
    std::string payload;
    ASSERT_TRUE((*log)->Read(locs[i], &payload).ok());
    EXPECT_EQ(payload, payloads[i]);
  }
}

}  // namespace
}  // namespace aion::storage
