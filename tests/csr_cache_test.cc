// Pinned-snapshot CSR projection cache (ISSUE 10): LRU under a byte
// budget, compaction-driven EvictBelow, and the AionStore::ProjectCsrAt
// integration — repeated analytics over one snapshot must hit, and a
// cached projection must be indistinguishable from a fresh build.
#include "core/csr_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/aion.h"
#include "graph/csr.h"
#include "graph/memgraph.h"
#include "storage/file.h"

namespace aion::core {
namespace {

/// A tiny projection to populate cache entries with; `nodes` scales the
/// footprint so eviction tests can size entries against the budget.
std::shared_ptr<const graph::CsrGraph> MakeCsr(size_t nodes) {
  graph::MemoryGraph g;
  for (graph::NodeId i = 0; i < nodes; ++i) {
    EXPECT_TRUE(g.Apply(graph::GraphUpdate::AddNode(i)).ok());
  }
  for (graph::RelId r = 0; r + 1 < nodes; ++r) {
    EXPECT_TRUE(
        g.Apply(graph::GraphUpdate::AddRelationship(r, r, r + 1, "NEXT"))
            .ok());
  }
  return std::make_shared<graph::CsrGraph>(graph::CsrGraph::Build(g));
}

CsrCache::Builder BuilderFor(size_t nodes, int* builds = nullptr) {
  return [nodes, builds]() -> util::StatusOr<
                               std::shared_ptr<const graph::CsrGraph>> {
    if (builds != nullptr) ++*builds;
    return MakeCsr(nodes);
  };
}

TEST(CsrCacheTest, SecondLookupHitsWithoutRebuilding) {
  CsrCache cache(CsrCache::Options{}, CsrCache::Instruments{});
  int builds = 0;
  auto first = cache.GetOrBuild(10, "", BuilderFor(8, &builds));
  ASSERT_TRUE(first.ok());
  auto second = cache.GetOrBuild(10, "", BuilderFor(8, &builds));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(first->get(), second->get());  // the same resident projection
  const CsrCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(CsrCacheTest, SignatureAndTimestampBothKeyTheCache) {
  CsrCache cache(CsrCache::Options{}, CsrCache::Instruments{});
  int builds = 0;
  ASSERT_TRUE(cache.GetOrBuild(10, "", BuilderFor(8, &builds)).ok());
  ASSERT_TRUE(cache.GetOrBuild(10, "weight", BuilderFor(8, &builds)).ok());
  ASSERT_TRUE(cache.GetOrBuild(11, "", BuilderFor(8, &builds)).ok());
  EXPECT_EQ(builds, 3);
  EXPECT_EQ(cache.GetStats().entries, 3u);
}

TEST(CsrCacheTest, LruEvictionRespectsByteBudgetAndRecency) {
  // Budget fits roughly two of the three projections; the least recently
  // touched one goes.
  const size_t one = MakeCsr(64)->SizeBytes();
  CsrCache::Options options;
  options.capacity_bytes = one * 2 + one / 2;
  CsrCache cache(options, CsrCache::Instruments{});
  ASSERT_TRUE(cache.GetOrBuild(1, "", BuilderFor(64)).ok());
  ASSERT_TRUE(cache.GetOrBuild(2, "", BuilderFor(64)).ok());
  ASSERT_TRUE(cache.GetOrBuild(1, "", BuilderFor(64)).ok());  // touch ts=1
  ASSERT_TRUE(cache.GetOrBuild(3, "", BuilderFor(64)).ok());  // evicts ts=2
  const CsrCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_LE(stats.bytes, options.capacity_bytes);
  int builds = 0;
  ASSERT_TRUE(cache.GetOrBuild(1, "", BuilderFor(64, &builds)).ok());
  EXPECT_EQ(builds, 0);  // survivor still resident
  ASSERT_TRUE(cache.GetOrBuild(2, "", BuilderFor(64, &builds)).ok());
  EXPECT_EQ(builds, 1);  // the evicted key rebuilds
}

TEST(CsrCacheTest, OversizedEntryStillServesButDoesNotAccumulate) {
  // A single projection larger than the whole budget: the cache keeps at
  // most that one entry (never evicts the just-inserted head into nothing).
  const size_t one = MakeCsr(64)->SizeBytes();
  CsrCache::Options options;
  options.capacity_bytes = one / 2;
  CsrCache cache(options, CsrCache::Instruments{});
  ASSERT_TRUE(cache.GetOrBuild(1, "", BuilderFor(64)).ok());
  EXPECT_EQ(cache.GetStats().entries, 1u);
  ASSERT_TRUE(cache.GetOrBuild(2, "", BuilderFor(64)).ok());
  EXPECT_EQ(cache.GetStats().entries, 1u);
}

TEST(CsrCacheTest, EvictBelowDropsProjectionsOfCompactedHistory) {
  CsrCache cache(CsrCache::Options{}, CsrCache::Instruments{});
  ASSERT_TRUE(cache.GetOrBuild(5, "", BuilderFor(8)).ok());
  ASSERT_TRUE(cache.GetOrBuild(10, "", BuilderFor(8)).ok());
  ASSERT_TRUE(cache.GetOrBuild(20, "", BuilderFor(8)).ok());
  EXPECT_EQ(cache.EvictBelow(15), 2u);
  const CsrCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 1u);
  int builds = 0;
  ASSERT_TRUE(cache.GetOrBuild(20, "", BuilderFor(8, &builds)).ok());
  EXPECT_EQ(builds, 0);  // entries at/above the floor survive
}

TEST(CsrCacheTest, ZeroCapacityBuildsEveryTimeAndRetainsNothing) {
  CsrCache::Options options;
  options.capacity_bytes = 0;
  CsrCache cache(options, CsrCache::Instruments{});
  int builds = 0;
  ASSERT_TRUE(cache.GetOrBuild(1, "", BuilderFor(8, &builds)).ok());
  ASSERT_TRUE(cache.GetOrBuild(1, "", BuilderFor(8, &builds)).ok());
  EXPECT_EQ(builds, 2);
  EXPECT_EQ(cache.GetStats().entries, 0u);
}

TEST(CsrCacheTest, BuilderFailureCachesNothing) {
  CsrCache cache(CsrCache::Options{}, CsrCache::Instruments{});
  auto failing = []() -> util::StatusOr<
                          std::shared_ptr<const graph::CsrGraph>> {
    return util::Status::Internal("projection failed");
  };
  EXPECT_FALSE(cache.GetOrBuild(1, "", failing).ok());
  EXPECT_EQ(cache.GetStats().entries, 0u);
  int builds = 0;
  ASSERT_TRUE(cache.GetOrBuild(1, "", BuilderFor(8, &builds)).ok());
  EXPECT_EQ(builds, 1);
}

TEST(CsrCacheTest, ConcurrentMissesOnOneKeyConvergeToOneEntry) {
  CsrCache cache(CsrCache::Options{}, CsrCache::Instruments{});
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&cache] {
      for (int round = 0; round < 50; ++round) {
        auto got = cache.GetOrBuild(42, "", BuilderFor(8));
        ASSERT_TRUE(got.ok());
        ASSERT_NE(got->get(), nullptr);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(cache.GetStats().entries, 1u);
}

class ProjectCsrAtTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = storage::MakeTempDir("aion_projcsr_");
    ASSERT_TRUE(dir.ok());
    dir_ = *dir;
    AionStore::Options options;
    options.dir = dir_ + "/aion";
    options.lineage_mode = AionStore::LineageMode::kSync;
    auto aion = AionStore::Open(options);
    ASSERT_TRUE(aion.ok());
    aion_ = std::move(*aion);
    std::vector<graph::GraphUpdate> updates;
    for (graph::NodeId i = 0; i < 32; ++i) {
      updates.push_back(graph::GraphUpdate::AddNode(i));
    }
    for (graph::RelId r = 0; r + 1 < 32; ++r) {
      updates.push_back(
          graph::GraphUpdate::AddRelationship(r, r, r + 1, "NEXT"));
    }
    ASSERT_TRUE(aion_->Ingest(1, updates).ok());
    ASSERT_TRUE(aion_->Ingest(2, {graph::GraphUpdate::AddNode(100)}).ok());
  }

  void TearDown() override {
    aion_.reset();
    (void)storage::RemoveDirRecursively(dir_);
  }

  std::string dir_;
  std::unique_ptr<AionStore> aion_;
};

TEST_F(ProjectCsrAtTest, RepeatedProjectionsAtOneSnapshotHit) {
  ASSERT_NE(aion_->csr_cache(), nullptr);
  auto first = aion_->ProjectCsrAt(2);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = aion_->ProjectCsrAt(2);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->get(), second->get());
  EXPECT_GE(aion_->csr_cache()->GetStats().hits, 1u);
}

TEST_F(ProjectCsrAtTest, CachedProjectionMatchesFreshBuild) {
  auto cached = aion_->ProjectCsrAt(1);
  ASSERT_TRUE(cached.ok());
  auto view = aion_->GetGraphAt(1);
  ASSERT_TRUE(view.ok());
  const graph::CsrGraph fresh = graph::CsrGraph::Build(**view);
  EXPECT_EQ((*cached)->num_nodes(), fresh.num_nodes());
  EXPECT_EQ((*cached)->num_edges(), fresh.num_edges());
}

TEST_F(ProjectCsrAtTest, WeightSignatureProjectsSeparately) {
  auto unweighted = aion_->ProjectCsrAt(2);
  ASSERT_TRUE(unweighted.ok());
  auto weighted = aion_->ProjectCsrAt(2, "weight");
  ASSERT_TRUE(weighted.ok());
  EXPECT_NE(unweighted->get(), weighted->get());
}

}  // namespace
}  // namespace aion::core
