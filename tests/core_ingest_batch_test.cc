// Batched ingest API: WriteBatch grouping semantics, IngestBatch
// equivalence with the per-call path, validation, cascade backpressure
// (typed kBackpressure vs blocking), sharded cascade ordering, and batched
// recovery from the host WAL.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/aion.h"
#include "storage/file.h"

namespace aion::core {
namespace {

using graph::GraphUpdate;

class IngestBatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = storage::MakeTempDir("aion_ingest_batch_");
    ASSERT_TRUE(dir.ok());
    dir_ = *dir;
  }
  void TearDown() override { (void)storage::RemoveDirRecursively(dir_); }

  std::unique_ptr<AionStore> OpenAion(AionStore::Options options = {}) {
    options.dir = dir_ + "/aion" + std::to_string(++counter_);
    auto store = AionStore::Open(options);
    EXPECT_TRUE(store.ok()) << store.status().ToString();
    return store.ok() ? std::move(*store) : nullptr;
  }

  std::string dir_;
  int counter_ = 0;
};

TEST_F(IngestBatchTest, WriteBatchGroupsConsecutiveTimestamps) {
  WriteBatch batch;
  batch.Add(1, GraphUpdate::AddNode(0))
      .Add(1, GraphUpdate::AddNode(1))
      .Add(2, GraphUpdate::AddNode(2))
      .Add(1, GraphUpdate::AddNode(3));  // non-consecutive: a new group
  EXPECT_EQ(batch.num_transactions(), 3u);
  EXPECT_EQ(batch.num_updates(), 4u);
  EXPECT_EQ(batch.transactions()[0].updates.size(), 2u);
  EXPECT_EQ(batch.transactions()[1].ts, 2u);

  WriteBatch stream;
  std::vector<GraphUpdate> updates;
  for (graph::Timestamp ts : {1u, 1u, 2u, 3u, 3u}) {
    GraphUpdate u = GraphUpdate::AddNode(updates.size());
    u.ts = ts;
    updates.push_back(u);
  }
  stream.AddStream(updates);
  EXPECT_EQ(stream.num_transactions(), 3u);
  EXPECT_EQ(stream.num_updates(), 5u);
}

TEST_F(IngestBatchTest, BatchedIngestMatchesPerCallIngest) {
  auto per_call = OpenAion();
  auto batched = OpenAion();

  WriteBatch batch;
  for (graph::Timestamp ts = 1; ts <= 40; ++ts) {
    const GraphUpdate add = GraphUpdate::AddNode(ts - 1, {"N"});
    ASSERT_TRUE(per_call->Ingest(ts, {add}).ok());
    batch.Add(ts, add);
  }
  ASSERT_TRUE(batched->IngestBatch(std::move(batch)).ok());
  per_call->DrainBackground();
  batched->DrainBackground();

  EXPECT_EQ(batched->last_ingested_ts(), per_call->last_ingested_ts());
  for (graph::Timestamp t : {1u, 17u, 40u}) {
    auto a = per_call->GetGraphAt(t);
    auto b = batched->GetGraphAt(t);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ((*a)->NumNodes(), (*b)->NumNodes()) << "t=" << t;
  }
  auto diff_a = per_call->GetDiff(10, 30);
  auto diff_b = batched->GetDiff(10, 30);
  ASSERT_TRUE(diff_a.ok());
  ASSERT_TRUE(diff_b.ok());
  EXPECT_EQ(diff_a->size(), diff_b->size());
  // The batch preserved per-transaction boundaries in the metrics too.
  const auto info = batched->Introspect();
  EXPECT_EQ(info.metrics.counter("ingest.batches"), 40u);
  EXPECT_EQ(info.metrics.counter("ingest.bulk_ingests"), 1u);
}

TEST_F(IngestBatchTest, EmptyBatchIsANoOp) {
  auto aion = OpenAion();
  EXPECT_TRUE(aion->IngestBatch(WriteBatch()).ok());
  EXPECT_EQ(aion->last_ingested_ts(), 0u);
}

TEST_F(IngestBatchTest, RejectsNonMonotonicAndEmptyGroups) {
  auto aion = OpenAion();
  WriteBatch decreasing;
  decreasing.Add(5, GraphUpdate::AddNode(0)).Add(3, GraphUpdate::AddNode(1));
  EXPECT_TRUE(
      aion->IngestBatch(std::move(decreasing)).IsInvalidArgument());

  WriteBatch empty_group;
  empty_group.AddTransaction(7, {});
  EXPECT_TRUE(
      aion->IngestBatch(std::move(empty_group)).IsInvalidArgument());

  // A rejected batch leaves no trace.
  EXPECT_EQ(aion->last_ingested_ts(), 0u);
  EXPECT_EQ(aion->Introspect().metrics.counter("ingest.updates"), 0u);
}

TEST_F(IngestBatchTest, FailModeSurfacesTypedBackpressure) {
  AionStore::Options options;
  options.cascade_backpressure = AionStore::CascadeBackpressure::kFail;
  options.cascade_queue_capacity = 2;
  auto aion = OpenAion(options);
  ASSERT_NE(aion->cascade_for_testing(), nullptr);

  // Freeze the dispatcher so enqueued items pile up deterministically.
  aion->cascade_for_testing()->PauseForTesting();
  graph::Timestamp ts = 0;
  Status status = Status::OK();
  // Capacity 2 -> the third enqueue must fail (no partial state).
  for (int i = 0; i < 3 && status.ok(); ++i) {
    status = aion->Ingest(++ts, {GraphUpdate::AddNode(ts)});
  }
  EXPECT_TRUE(status.IsBackpressure()) << status.ToString();
  const graph::Timestamp accepted_ts = aion->last_ingested_ts();
  EXPECT_EQ(accepted_ts, 2u);  // the failed commit did not advance anything
  EXPECT_GE(
      aion->Introspect().metrics.counter("cascade.backpressure_events"), 1u);

  // Once the pipeline drains, the same commit succeeds.
  aion->cascade_for_testing()->ResumeForTesting();
  aion->cascade_for_testing()->Drain();
  EXPECT_TRUE(aion->Ingest(ts, {GraphUpdate::AddNode(ts)}).ok());
  aion->DrainBackground();
  EXPECT_EQ(aion->cascade_applied_ts(), ts);
}

TEST_F(IngestBatchTest, BlockModeWaitsInsteadOfFailing) {
  AionStore::Options options;
  options.cascade_backpressure = AionStore::CascadeBackpressure::kBlock;
  options.cascade_queue_capacity = 1;
  auto aion = OpenAion(options);
  ASSERT_NE(aion->cascade_for_testing(), nullptr);

  aion->cascade_for_testing()->PauseForTesting();
  ASSERT_TRUE(aion->Ingest(1, {GraphUpdate::AddNode(0)}).ok());  // fills it

  std::atomic<bool> second_done{false};
  std::thread blocked([&] {
    ASSERT_TRUE(aion->Ingest(2, {GraphUpdate::AddNode(1)}).ok());
    second_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(second_done.load()) << "kBlock must wait, not fail";
  aion->cascade_for_testing()->ResumeForTesting();
  blocked.join();
  EXPECT_TRUE(second_done.load());
  aion->DrainBackground();
  EXPECT_EQ(aion->cascade_applied_ts(), 2u);
}

TEST_F(IngestBatchTest, ShardedCascadePreservesPerEntityHistory) {
  AionStore::Options options;
  options.cascade_workers = 4;
  auto aion = OpenAion(options);

  // Interleaved add/delete churn on a few entities: per-entity order is the
  // thing sharding must preserve even though shards race each other.
  WriteBatch batch;
  graph::Timestamp ts = 0;
  batch.Add(++ts, GraphUpdate::AddNode(0));
  batch.Add(++ts, GraphUpdate::AddNode(1));
  batch.Add(++ts, GraphUpdate::AddNode(2));
  for (int round = 0; round < 30; ++round) {
    batch.Add(++ts, GraphUpdate::AddRelationship(round, round % 3,
                                                 (round + 1) % 3, "R"));
    batch.Add(++ts, GraphUpdate::DeleteRelationship(round));
  }
  ASSERT_TRUE(aion->IngestBatch(std::move(batch)).ok());
  aion->DrainBackground();
  EXPECT_EQ(aion->cascade_applied_ts(), ts);

  // Every relationship's lineage shows exactly one alive interval.
  for (int round = 0; round < 30; ++round) {
    const graph::Timestamp born = 4 + 2 * round;
    auto rel = aion->GetRelationship(round, born, born);
    ASSERT_TRUE(rel.ok()) << rel.status().ToString();
    EXPECT_EQ(rel->size(), 1u) << "rel " << round;
    auto gone = aion->GetRelationship(round, born + 1, born + 1);
    ASSERT_TRUE(gone.ok());
    EXPECT_TRUE(gone->empty()) << "rel " << round;
  }
  EXPECT_GE(aion->Introspect().metrics.counter("cascade.shard_tasks"), 60u);
}

TEST_F(IngestBatchTest, RecoverFromHostWalUsesBatchedReplay) {
  txn::GraphDatabase::Options db_options;
  db_options.data_dir = dir_ + "/recdb";
  auto db = txn::GraphDatabase::Open(db_options);
  ASSERT_TRUE(db.ok());
  // 600 commits without a listener attached: Aion starts empty and must
  // catch up purely from the WAL, in chunked batches.
  for (int i = 0; i < 600; ++i) {
    auto txn = (*db)->Begin();
    txn->CreateNode({"R"});
    ASSERT_TRUE(txn->Commit().ok());
  }

  auto aion = OpenAion();
  ASSERT_TRUE(aion->RecoverFrom(**db).ok());
  aion->DrainBackground();
  EXPECT_EQ(aion->last_ingested_ts(), 600u);
  EXPECT_EQ(aion->cascade_applied_ts(), 600u);
  auto view = aion->GetGraphAt(600);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ((*view)->NumNodes(), 600u);
  // Chunked replay: 600 transactions cost only a handful of bulk appends.
  EXPECT_LE(aion->Introspect().metrics.counter("timestore.batch_appends"),
            4u);
}

TEST_F(IngestBatchTest, CascadeOptionsAreValidated) {
  AionStore::Options options;
  options.dir = dir_ + "/bad1";
  options.cascade_workers = 0;
  EXPECT_TRUE(AionStore::Open(options).status().IsInvalidArgument());

  options = {};
  options.dir = dir_ + "/bad2";
  options.cascade_queue_capacity = 0;
  EXPECT_TRUE(AionStore::Open(options).status().IsInvalidArgument());
}

}  // namespace
}  // namespace aion::core
