#include <gtest/gtest.h>

#include <set>
#include <string>

#include "util/bitset.h"
#include "util/histogram.h"
#include "util/lru_cache.h"
#include "util/object_pool.h"
#include "util/random.h"

namespace aion::util {
namespace {

TEST(LruCacheTest, PutGetBasics) {
  LruCache<int, std::string> cache(3);
  cache.Put(1, "one");
  cache.Put(2, "two");
  EXPECT_EQ(cache.Get(1).value(), "one");
  EXPECT_EQ(cache.Get(2).value(), "two");
  EXPECT_FALSE(cache.Get(3).has_value());
  EXPECT_EQ(cache.size(), 2u);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache<int, int> cache(3);
  cache.Put(1, 10);
  cache.Put(2, 20);
  cache.Put(3, 30);
  // Touch 1 so 2 becomes the LRU victim.
  EXPECT_TRUE(cache.Get(1).has_value());
  cache.Put(4, 40);
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
  EXPECT_TRUE(cache.Contains(4));
}

TEST(LruCacheTest, CostAwareEviction) {
  LruCache<int, int> cache(100);
  cache.Put(1, 1, 40);
  cache.Put(2, 2, 40);
  cache.Put(3, 3, 40);  // exceeds 100: evicts key 1
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_EQ(cache.total_cost(), 80u);
}

TEST(LruCacheTest, OversizedEntryStillAdmitted) {
  LruCache<int, int> cache(10);
  cache.Put(1, 1, 50);
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_EQ(cache.size(), 1u);
  cache.Put(2, 2, 1);
  // The oversized entry is evicted once something else arrives.
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
}

TEST(LruCacheTest, ReplaceUpdatesCost) {
  LruCache<int, int> cache(100);
  cache.Put(1, 1, 60);
  cache.Put(1, 2, 30);
  EXPECT_EQ(cache.total_cost(), 30u);
  EXPECT_EQ(cache.Get(1).value(), 2);
}

TEST(LruCacheTest, EraseAndClear) {
  LruCache<int, int> cache(10);
  cache.Put(1, 1);
  cache.Put(2, 2);
  cache.Erase(1);
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_EQ(cache.size(), 1u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.total_cost(), 0u);
}

TEST(LruCacheTest, PeekDoesNotPromote) {
  LruCache<int, int> cache(2);
  cache.Put(1, 10);
  cache.Put(2, 20);
  EXPECT_EQ(cache.Peek(1).value(), 10);  // no promotion
  cache.Put(3, 30);                      // evicts 1 (still LRU)
  EXPECT_FALSE(cache.Contains(1));
}

TEST(BitsetTest, SetTestClear) {
  Bitset bits(200);
  EXPECT_FALSE(bits.Test(0));
  bits.Set(0);
  bits.Set(63);
  bits.Set(64);
  bits.Set(199);
  EXPECT_TRUE(bits.Test(0));
  EXPECT_TRUE(bits.Test(63));
  EXPECT_TRUE(bits.Test(64));
  EXPECT_TRUE(bits.Test(199));
  EXPECT_FALSE(bits.Test(100));
  EXPECT_EQ(bits.Count(), 4u);
  bits.Clear(63);
  EXPECT_FALSE(bits.Test(63));
  EXPECT_EQ(bits.Count(), 3u);
}

TEST(BitsetTest, TestAndSet) {
  Bitset bits(10);
  EXPECT_TRUE(bits.TestAndSet(5));
  EXPECT_FALSE(bits.TestAndSet(5));
}

TEST(BitsetTest, ForEachSetVisitsAscending) {
  Bitset bits(300);
  std::set<size_t> expected = {0, 1, 64, 65, 128, 255, 299};
  for (size_t i : expected) bits.Set(i);
  std::vector<size_t> visited;
  bits.ForEachSet([&](size_t i) { visited.push_back(i); });
  EXPECT_EQ(std::vector<size_t>(expected.begin(), expected.end()), visited);
}

TEST(BitsetTest, ResetKeepsCapacity) {
  Bitset bits(100);
  for (size_t i = 0; i < 100; i += 3) bits.Set(i);
  bits.Reset();
  EXPECT_EQ(bits.Count(), 0u);
  EXPECT_EQ(bits.size(), 100u);
}

TEST(CountTableTest, AddGetTotal) {
  CountTable t;
  t.Add("Person", 5);
  t.Add("Person", 3);
  t.Add("City");
  EXPECT_EQ(t.Get("Person"), 8);
  EXPECT_EQ(t.Get("City"), 1);
  EXPECT_EQ(t.Get("Absent"), 0);
  EXPECT_EQ(t.Total(), 9);
  EXPECT_EQ(t.distinct(), 2u);
  t.Add("City", -1);
  EXPECT_EQ(t.Get("City"), 0);
  EXPECT_EQ(t.distinct(), 1u);
}

TEST(LatencyHistogramTest, Percentiles) {
  LatencyHistogram h;
  for (int i = 1; i <= 100; ++i) h.Add(i);
  EXPECT_DOUBLE_EQ(h.Mean(), 50.5);
  EXPECT_NEAR(h.Percentile(50), 50.5, 0.51);
  EXPECT_NEAR(h.Percentile(99), 99.01, 0.1);
  EXPECT_DOUBLE_EQ(h.Min(), 1);
  EXPECT_DOUBLE_EQ(h.Max(), 100);
  EXPECT_EQ(h.count(), 100u);
}

TEST(RandomTest, DeterministicForSeed) {
  Random a(42), b(42), c(43);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RandomTest, UniformInRange) {
  Random rng(1);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.UniformRange(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LT(v, 20u);
  }
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(2);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(ZipfTest, SkewFavorsSmallIds) {
  ZipfSampler zipf(1000, 0.99, 7);
  size_t low = 0, total = 20000;
  for (size_t i = 0; i < total; ++i) {
    if (zipf.Next() < 10) ++low;
  }
  // With theta=0.99 the first 10 ids should get far more than 1% of draws.
  EXPECT_GT(low, total / 20);
}

TEST(ShuffleTest, PermutationPreserved) {
  Random rng(3);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  std::vector<int> orig = v;
  Shuffle(&v, &rng);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(BufferPoolTest, RecyclesBuffers) {
  BufferPool pool(2);
  std::string b1 = pool.Acquire();
  b1.reserve(4096);
  b1 = "data";
  pool.Release(std::move(b1));
  EXPECT_EQ(pool.pooled(), 1u);
  std::string b2 = pool.Acquire();
  EXPECT_TRUE(b2.empty());          // cleared on acquire
  EXPECT_GE(b2.capacity(), 4096u);  // capacity retained
}

TEST(BufferPoolTest, PooledBufferRaii) {
  BufferPool pool(4);
  {
    PooledBuffer lease(&pool);
    lease->append("xyz");
  }
  EXPECT_EQ(pool.pooled(), 1u);
}

TEST(BufferPoolTest, CapsPooledCount) {
  BufferPool pool(1);
  pool.Release("a");
  pool.Release("b");
  EXPECT_EQ(pool.pooled(), 1u);
}

}  // namespace
}  // namespace aion::util
