#include "storage/file.h"

#include <gtest/gtest.h>

#include <string>

namespace aion::storage {
namespace {

class FileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = MakeTempDir("aion_file_test_");
    ASSERT_TRUE(dir.ok());
    dir_ = *dir;
  }
  void TearDown() override { (void)RemoveDirRecursively(dir_); }

  std::string dir_;
};

TEST_F(FileTest, OpenCreatesFile) {
  const std::string path = dir_ + "/f1";
  EXPECT_FALSE(FileExists(path));
  auto file = RandomAccessFile::Open(path);
  ASSERT_TRUE(file.ok());
  EXPECT_TRUE(FileExists(path));
  EXPECT_EQ((*file)->size(), 0u);
}

TEST_F(FileTest, WriteReadRoundTrip) {
  auto file = RandomAccessFile::Open(dir_ + "/f2");
  ASSERT_TRUE(file.ok());
  const std::string data = "hello temporal graphs";
  ASSERT_TRUE((*file)->Write(0, data.data(), data.size()).ok());
  std::string buf(data.size(), '\0');
  ASSERT_TRUE((*file)->Read(0, data.size(), buf.data()).ok());
  EXPECT_EQ(buf, data);
}

TEST_F(FileTest, AppendReturnsOffsets) {
  auto file = RandomAccessFile::Open(dir_ + "/f3");
  ASSERT_TRUE(file.ok());
  auto off1 = (*file)->Append("aaaa", 4);
  auto off2 = (*file)->Append("bb", 2);
  ASSERT_TRUE(off1.ok());
  ASSERT_TRUE(off2.ok());
  EXPECT_EQ(*off1, 0u);
  EXPECT_EQ(*off2, 4u);
  EXPECT_EQ((*file)->size(), 6u);
}

TEST_F(FileTest, ReadPastEofFails) {
  auto file = RandomAccessFile::Open(dir_ + "/f4");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Write(0, "xy", 2).ok());
  char buf[8];
  EXPECT_TRUE((*file)->Read(0, 8, buf).IsIOError());
}

TEST_F(FileTest, SparseWriteAtOffset) {
  auto file = RandomAccessFile::Open(dir_ + "/f5");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Write(100, "z", 1).ok());
  EXPECT_EQ((*file)->size(), 101u);
  char c;
  ASSERT_TRUE((*file)->Read(100, 1, &c).ok());
  EXPECT_EQ(c, 'z');
}

TEST_F(FileTest, TruncateShrinks) {
  auto file = RandomAccessFile::Open(dir_ + "/f6");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Write(0, "0123456789", 10).ok());
  ASSERT_TRUE((*file)->Truncate(4).ok());
  EXPECT_EQ((*file)->size(), 4u);
  char buf[5];
  EXPECT_FALSE((*file)->Read(0, 5, buf).ok());
}

TEST_F(FileTest, SizePersistsAcrossReopen) {
  const std::string path = dir_ + "/f7";
  {
    auto file = RandomAccessFile::Open(path);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Write(0, "abc", 3).ok());
    ASSERT_TRUE((*file)->Sync().ok());
  }
  auto file = RandomAccessFile::Open(path);
  ASSERT_TRUE(file.ok());
  EXPECT_EQ((*file)->size(), 3u);
  auto size = FileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 3u);
}

TEST_F(FileTest, DirHelpers) {
  const std::string sub = dir_ + "/a/b/c";
  ASSERT_TRUE(CreateDirIfMissing(sub).ok());
  EXPECT_TRUE(FileExists(sub));
  ASSERT_TRUE(CreateDirIfMissing(sub).ok());  // idempotent
  ASSERT_TRUE(RemoveDirRecursively(dir_ + "/a").ok());
  EXPECT_FALSE(FileExists(sub));
}

TEST_F(FileTest, RemoveFileIfExistsIdempotent) {
  const std::string path = dir_ + "/f8";
  { auto f = RandomAccessFile::Open(path); ASSERT_TRUE(f.ok()); }
  EXPECT_TRUE(RemoveFileIfExists(path).ok());
  EXPECT_FALSE(FileExists(path));
  EXPECT_TRUE(RemoveFileIfExists(path).ok());
}

TEST_F(FileTest, TempDirsAreUnique) {
  auto a = MakeTempDir("aion_uniq_");
  auto b = MakeTempDir("aion_uniq_");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a, *b);
  (void)RemoveDirRecursively(*a);
  (void)RemoveDirRecursively(*b);
}

}  // namespace
}  // namespace aion::storage
