// WorkloadRegistry and WorkloadCapture unit coverage: register/finish
// accounting, cancellation flags, session eviction, JSON shapes, and the
// capture file round trip that bench_replay depends on.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "obs/capture.h"
#include "obs/metrics.h"
#include "obs/workload_registry.h"
#include "storage/file.h"

namespace aion::obs {
namespace {

TEST(WorkloadRegistryTest, RegisterFinishAccountsIntoSession) {
  MetricsRegistry metrics;
  WorkloadRegistry registry(&metrics);
  auto q = registry.Register(7, 3, "MATCH (n) RETURN n");
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(registry.active_count(), 1u);

  auto live = registry.Queries();
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(live[0].query_id, 7u);
  EXPECT_EQ(live[0].session_id, 3u);
  EXPECT_EQ(live[0].text, "MATCH (n) RETURN n");
  EXPECT_EQ(live[0].route, "-");
  EXPECT_FALSE(live[0].cancel_requested);

  registry.Finish(q, /*ok=*/true, /*cancelled=*/false, /*wall_nanos=*/1000,
                  /*rows=*/5);
  EXPECT_EQ(registry.active_count(), 0u);
  auto sessions = registry.Sessions();
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].session_id, 3u);
  EXPECT_EQ(sessions[0].queries, 1u);
  EXPECT_EQ(sessions[0].rows, 5u);
  EXPECT_EQ(sessions[0].wall_nanos, 1000u);
  EXPECT_EQ(sessions[0].failures, 0u);
  EXPECT_EQ(sessions[0].cancelled, 0u);
  EXPECT_GT(sessions[0].latency.p99, 0u);
}

TEST(WorkloadRegistryTest, CancelSetsFlagAndCountsSeparately) {
  WorkloadRegistry registry;
  auto q = registry.Register(1, 0, "CALL aion.window(0, 10)");
  ASSERT_NE(q, nullptr);
  EXPECT_FALSE(q->cancel.load());
  EXPECT_TRUE(registry.Cancel(1));
  EXPECT_TRUE(q->cancel.load());
  EXPECT_FALSE(registry.Cancel(99));  // unknown id

  registry.Finish(q, /*ok=*/false, /*cancelled=*/true, 500, 0);
  auto sessions = registry.Sessions();
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].failures, 1u);
  EXPECT_EQ(sessions[0].cancelled, 1u);
}

TEST(WorkloadRegistryTest, CancelAllFlagsEveryRunningQuery) {
  WorkloadRegistry registry;
  auto a = registry.Register(1, 0, "a");
  auto b = registry.Register(2, 0, "b");
  EXPECT_EQ(registry.CancelAll(), 2u);
  EXPECT_TRUE(a->cancel.load());
  EXPECT_TRUE(b->cancel.load());
}

TEST(WorkloadRegistryTest, DisabledRegistryReturnsNullAndFinishTolerates) {
  WorkloadRegistry registry;
  registry.set_enabled(false);
  auto q = registry.Register(1, 0, "x");
  EXPECT_EQ(q, nullptr);
  registry.Finish(q, true, false, 1, 1);  // null handle: no-op
  EXPECT_EQ(registry.active_count(), 0u);
  EXPECT_TRUE(registry.Sessions().empty());
}

TEST(WorkloadRegistryTest, SessionTableEvictsLeastRecentlyActive) {
  WorkloadRegistry::Options options;
  options.max_sessions = 2;
  WorkloadRegistry registry(nullptr, options);
  for (uint64_t session = 1; session <= 3; ++session) {
    auto q = registry.Register(session, session, "q");
    registry.Finish(q, true, false, 10, 1);
  }
  auto sessions = registry.Sessions();
  ASSERT_EQ(sessions.size(), 2u);
  // Session 1 was the least recently active; 2 and 3 survive.
  EXPECT_EQ(sessions[0].session_id, 2u);
  EXPECT_EQ(sessions[1].session_id, 3u);
}

TEST(WorkloadRegistryTest, LongestRunningNanosTracksOldest) {
  WorkloadRegistry registry;
  EXPECT_EQ(registry.LongestRunningNanos(), 0u);
  auto q = registry.Register(1, 0, "long");
  EXPECT_GT(registry.LongestRunningNanos(), 0u);
  registry.Finish(q, true, false, 1, 0);
  EXPECT_EQ(registry.LongestRunningNanos(), 0u);
}

TEST(WorkloadRegistryTest, ToJsonShape) {
  WorkloadRegistry registry;
  auto q = registry.Register(5, 2, "MATCH (n) WHERE n.name = \"x\" RETURN n");
  std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"active\":["), std::string::npos);
  EXPECT_NE(json.find("\"query_id\":5"), std::string::npos);
  EXPECT_NE(json.find("\"session_id\":2"), std::string::npos);
  // Quotes in the statement must be escaped.
  EXPECT_NE(json.find("\\\"x\\\""), std::string::npos);
  registry.Finish(q, true, false, 100, 1);
  json = registry.ToJson();
  EXPECT_NE(json.find("\"active\":[]"), std::string::npos);
  EXPECT_NE(json.find("\"sessions\":[{\"session_id\":2"), std::string::npos);
  EXPECT_NE(json.find("\"p99_nanos\":"), std::string::npos);
}

TEST(WorkloadRegistryTest, ActiveQueryScopeNestsAndRestores) {
  WorkloadRegistry::RunningQuery outer;
  WorkloadRegistry::RunningQuery inner;
  EXPECT_EQ(ActiveQueryScope::Current(), nullptr);
  EXPECT_FALSE(CancellationRequested());
  {
    ActiveQueryScope outer_scope(&outer);
    EXPECT_EQ(ActiveQueryScope::Current(), &outer);
    {
      // A null inner scope keeps the outer query active (procedure
      // re-entry with the registry disabled).
      ActiveQueryScope noop(nullptr);
      EXPECT_EQ(ActiveQueryScope::Current(), &outer);
      ActiveQueryScope inner_scope(&inner);
      EXPECT_EQ(ActiveQueryScope::Current(), &inner);
      SetCurrentQueryRoute("timestore");
      TickCurrentQueryRows(3);
    }
    EXPECT_EQ(ActiveQueryScope::Current(), &outer);
    outer.cancel.store(true);
    EXPECT_TRUE(CancellationRequested());
  }
  EXPECT_EQ(ActiveQueryScope::Current(), nullptr);
  EXPECT_STREQ(inner.route.load(), "timestore");
  EXPECT_EQ(inner.rows.load(), 3u);
}

TEST(WorkloadRegistryTest, SessionScopeNestsAndRestores) {
  EXPECT_EQ(SessionScope::CurrentSessionId(), 0u);
  {
    SessionScope session(7);
    EXPECT_EQ(SessionScope::CurrentSessionId(), 7u);
    {
      SessionScope nested(8);
      EXPECT_EQ(SessionScope::CurrentSessionId(), 8u);
    }
    EXPECT_EQ(SessionScope::CurrentSessionId(), 7u);
  }
  EXPECT_EQ(SessionScope::CurrentSessionId(), 0u);
}

TEST(WorkloadRegistryTest, NextSessionIdStartsAtOne) {
  WorkloadRegistry registry;
  EXPECT_EQ(registry.NextSessionId(), 1u);
  EXPECT_EQ(registry.NextSessionId(), 2u);
}

// --- capture ---------------------------------------------------------------

WorkloadCapture::Record MakeRecord() {
  WorkloadCapture::Record r;
  r.unix_millis = 1700000000000ull;
  r.query_id = 42;
  r.session_id = 2;
  r.nanos = 123456;
  r.rows = 9;
  r.ok = true;
  r.route = "timestore";
  r.text = "MATCH (n) WHERE n.name = \"ada\"\nRETURN n";
  return r;
}

TEST(WorkloadCaptureTest, JsonLineRoundTrip) {
  const WorkloadCapture::Record r = MakeRecord();
  const std::string line = WorkloadCapture::ToJsonLine(r);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_NE(line.find("\"params\":{}"), std::string::npos);
  auto parsed = WorkloadCapture::ParseJsonLine(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->unix_millis, r.unix_millis);
  EXPECT_EQ(parsed->query_id, r.query_id);
  EXPECT_EQ(parsed->session_id, r.session_id);
  EXPECT_EQ(parsed->nanos, r.nanos);
  EXPECT_EQ(parsed->rows, r.rows);
  EXPECT_EQ(parsed->ok, r.ok);
  EXPECT_EQ(parsed->route, r.route);
  EXPECT_EQ(parsed->text, r.text);
}

TEST(WorkloadCaptureTest, ParseRejectsGarbage) {
  EXPECT_FALSE(WorkloadCapture::ParseJsonLine("").ok());
  EXPECT_FALSE(WorkloadCapture::ParseJsonLine("not json").ok());
  EXPECT_FALSE(WorkloadCapture::ParseJsonLine("{\"query_id\":1}").ok());
}

TEST(WorkloadCaptureTest, DisabledCaptureIsNoop) {
  WorkloadCapture capture(WorkloadCapture::Options{});
  EXPECT_FALSE(capture.enabled());
  capture.Append(MakeRecord());
  EXPECT_EQ(capture.total_recorded(), 0u);
}

TEST(WorkloadCaptureTest, AppendAndReadFileBack) {
  auto dir = storage::MakeTempDir("aion_capture_");
  ASSERT_TRUE(dir.ok());
  const std::string path = *dir + "/capture.jsonl";
  {
    WorkloadCapture::Options options;
    options.path = path;
    WorkloadCapture capture(options);
    ASSERT_TRUE(capture.enabled());
    for (uint64_t i = 0; i < 10; ++i) {
      WorkloadCapture::Record r = MakeRecord();
      r.query_id = i + 1;
      r.unix_millis = 0;  // filled from the wall clock
      capture.Append(std::move(r));
    }
    EXPECT_EQ(capture.total_recorded(), 10u);
  }
  auto records = WorkloadCapture::ReadFile(path);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 10u);
  for (uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ((*records)[i].query_id, i + 1);
    EXPECT_GT((*records)[i].unix_millis, 0u);
    EXPECT_EQ((*records)[i].text, MakeRecord().text);
  }
  (void)storage::RemoveDirRecursively(*dir);
}

TEST(WorkloadCaptureTest, RotatesWhenFileExceedsBudget) {
  auto dir = storage::MakeTempDir("aion_capture_rot_");
  ASSERT_TRUE(dir.ok());
  const std::string path = *dir + "/capture.jsonl";
  WorkloadCapture::Options options;
  options.path = path;
  options.max_file_bytes = 256;  // a few records per generation
  WorkloadCapture capture(options);
  for (int i = 0; i < 64; ++i) capture.Append(MakeRecord());
  EXPECT_EQ(capture.total_recorded(), 64u);
  auto current = WorkloadCapture::ReadFile(path);
  ASSERT_TRUE(current.ok());
  auto rotated = WorkloadCapture::ReadFile(path + ".1");
  ASSERT_TRUE(rotated.ok());
  EXPECT_GT(rotated->size(), 0u);
  EXPECT_LT(current->size() + rotated->size(), 64u);  // older gens dropped
  (void)storage::RemoveDirRecursively(*dir);
}

}  // namespace
}  // namespace aion::obs
