#include "util/status.h"

#include <gtest/gtest.h>

namespace aion::util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("node 42");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "node 42");
  EXPECT_EQ(s.ToString(), "NotFound: node 42");
}

TEST(StatusTest, AllConstructorsMapToPredicates) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_TRUE(Status::Backpressure("x").IsBackpressure());
  EXPECT_EQ(Status::Backpressure("queue full").ToString(),
            "Backpressure: queue full");
}

TEST(StatusTest, EmptyMessageToString) {
  EXPECT_EQ(Status::Corruption().ToString(), "Corruption");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 7;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 7);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("gone");
  ASSERT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsNotFound());
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("payload");
  ASSERT_TRUE(v.ok());
  std::string moved = std::move(v).value();
  EXPECT_EQ(moved, "payload");
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Status UseAssignOrReturn(int x, int* out) {
  AION_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  *out = v * 2;
  return Status::OK();
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(21, &out).ok());
  EXPECT_EQ(out, 42);
  EXPECT_TRUE(UseAssignOrReturn(-1, &out).IsInvalidArgument());
}

TEST(StatusOrTest, ReturnIfErrorPropagates) {
  auto fn = [](bool fail) -> Status {
    AION_RETURN_IF_ERROR(fail ? Status::Aborted("stop") : Status::OK());
    return Status::OK();
  };
  EXPECT_TRUE(fn(false).ok());
  EXPECT_TRUE(fn(true).IsAborted());
}

}  // namespace
}  // namespace aion::util
