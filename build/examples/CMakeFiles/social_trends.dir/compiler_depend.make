# Empty compiler generated dependencies file for social_trends.
# This may be replaced when dependencies are built.
