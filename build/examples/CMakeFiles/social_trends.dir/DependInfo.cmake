
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/social_trends.cpp" "examples/CMakeFiles/social_trends.dir/social_trends.cpp.o" "gcc" "examples/CMakeFiles/social_trends.dir/social_trends.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/aion_core.dir/DependInfo.cmake"
  "/root/repo/build/src/algo/CMakeFiles/aion_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/aion_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/aion_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/aion_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/aion_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/aion_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
