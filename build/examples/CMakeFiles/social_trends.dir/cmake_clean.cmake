file(REMOVE_RECURSE
  "CMakeFiles/social_trends.dir/social_trends.cpp.o"
  "CMakeFiles/social_trends.dir/social_trends.cpp.o.d"
  "social_trends"
  "social_trends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_trends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
