# Empty compiler generated dependencies file for cypher_shell.
# This may be replaced when dependencies are built.
