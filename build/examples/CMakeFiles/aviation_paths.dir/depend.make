# Empty dependencies file for aviation_paths.
# This may be replaced when dependencies are built.
