file(REMOVE_RECURSE
  "CMakeFiles/aviation_paths.dir/aviation_paths.cpp.o"
  "CMakeFiles/aviation_paths.dir/aviation_paths.cpp.o.d"
  "aviation_paths"
  "aviation_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aviation_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
