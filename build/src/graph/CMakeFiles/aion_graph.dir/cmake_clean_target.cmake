file(REMOVE_RECURSE
  "libaion_graph.a"
)
