file(REMOVE_RECURSE
  "CMakeFiles/aion_graph.dir/cow_graph.cc.o"
  "CMakeFiles/aion_graph.dir/cow_graph.cc.o.d"
  "CMakeFiles/aion_graph.dir/csr.cc.o"
  "CMakeFiles/aion_graph.dir/csr.cc.o.d"
  "CMakeFiles/aion_graph.dir/memgraph.cc.o"
  "CMakeFiles/aion_graph.dir/memgraph.cc.o.d"
  "CMakeFiles/aion_graph.dir/property.cc.o"
  "CMakeFiles/aion_graph.dir/property.cc.o.d"
  "CMakeFiles/aion_graph.dir/temporal_graph.cc.o"
  "CMakeFiles/aion_graph.dir/temporal_graph.cc.o.d"
  "CMakeFiles/aion_graph.dir/update.cc.o"
  "CMakeFiles/aion_graph.dir/update.cc.o.d"
  "libaion_graph.a"
  "libaion_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aion_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
