
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/cow_graph.cc" "src/graph/CMakeFiles/aion_graph.dir/cow_graph.cc.o" "gcc" "src/graph/CMakeFiles/aion_graph.dir/cow_graph.cc.o.d"
  "/root/repo/src/graph/csr.cc" "src/graph/CMakeFiles/aion_graph.dir/csr.cc.o" "gcc" "src/graph/CMakeFiles/aion_graph.dir/csr.cc.o.d"
  "/root/repo/src/graph/memgraph.cc" "src/graph/CMakeFiles/aion_graph.dir/memgraph.cc.o" "gcc" "src/graph/CMakeFiles/aion_graph.dir/memgraph.cc.o.d"
  "/root/repo/src/graph/property.cc" "src/graph/CMakeFiles/aion_graph.dir/property.cc.o" "gcc" "src/graph/CMakeFiles/aion_graph.dir/property.cc.o.d"
  "/root/repo/src/graph/temporal_graph.cc" "src/graph/CMakeFiles/aion_graph.dir/temporal_graph.cc.o" "gcc" "src/graph/CMakeFiles/aion_graph.dir/temporal_graph.cc.o.d"
  "/root/repo/src/graph/update.cc" "src/graph/CMakeFiles/aion_graph.dir/update.cc.o" "gcc" "src/graph/CMakeFiles/aion_graph.dir/update.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/aion_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
