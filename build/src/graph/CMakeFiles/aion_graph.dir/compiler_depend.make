# Empty compiler generated dependencies file for aion_graph.
# This may be replaced when dependencies are built.
