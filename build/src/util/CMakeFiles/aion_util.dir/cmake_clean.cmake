file(REMOVE_RECURSE
  "CMakeFiles/aion_util.dir/coding.cc.o"
  "CMakeFiles/aion_util.dir/coding.cc.o.d"
  "CMakeFiles/aion_util.dir/status.cc.o"
  "CMakeFiles/aion_util.dir/status.cc.o.d"
  "CMakeFiles/aion_util.dir/thread_pool.cc.o"
  "CMakeFiles/aion_util.dir/thread_pool.cc.o.d"
  "libaion_util.a"
  "libaion_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aion_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
