# Empty dependencies file for aion_util.
# This may be replaced when dependencies are built.
