file(REMOVE_RECURSE
  "libaion_util.a"
)
