
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/engine.cc" "src/query/CMakeFiles/aion_query.dir/engine.cc.o" "gcc" "src/query/CMakeFiles/aion_query.dir/engine.cc.o.d"
  "/root/repo/src/query/lexer.cc" "src/query/CMakeFiles/aion_query.dir/lexer.cc.o" "gcc" "src/query/CMakeFiles/aion_query.dir/lexer.cc.o.d"
  "/root/repo/src/query/parser.cc" "src/query/CMakeFiles/aion_query.dir/parser.cc.o" "gcc" "src/query/CMakeFiles/aion_query.dir/parser.cc.o.d"
  "/root/repo/src/query/planner.cc" "src/query/CMakeFiles/aion_query.dir/planner.cc.o" "gcc" "src/query/CMakeFiles/aion_query.dir/planner.cc.o.d"
  "/root/repo/src/query/procedures.cc" "src/query/CMakeFiles/aion_query.dir/procedures.cc.o" "gcc" "src/query/CMakeFiles/aion_query.dir/procedures.cc.o.d"
  "/root/repo/src/query/value.cc" "src/query/CMakeFiles/aion_query.dir/value.cc.o" "gcc" "src/query/CMakeFiles/aion_query.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/aion_core.dir/DependInfo.cmake"
  "/root/repo/build/src/algo/CMakeFiles/aion_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/aion_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/aion_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/aion_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/aion_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
