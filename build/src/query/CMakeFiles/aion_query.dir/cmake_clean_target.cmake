file(REMOVE_RECURSE
  "libaion_query.a"
)
