# Empty compiler generated dependencies file for aion_query.
# This may be replaced when dependencies are built.
