file(REMOVE_RECURSE
  "CMakeFiles/aion_query.dir/engine.cc.o"
  "CMakeFiles/aion_query.dir/engine.cc.o.d"
  "CMakeFiles/aion_query.dir/lexer.cc.o"
  "CMakeFiles/aion_query.dir/lexer.cc.o.d"
  "CMakeFiles/aion_query.dir/parser.cc.o"
  "CMakeFiles/aion_query.dir/parser.cc.o.d"
  "CMakeFiles/aion_query.dir/planner.cc.o"
  "CMakeFiles/aion_query.dir/planner.cc.o.d"
  "CMakeFiles/aion_query.dir/procedures.cc.o"
  "CMakeFiles/aion_query.dir/procedures.cc.o.d"
  "CMakeFiles/aion_query.dir/value.cc.o"
  "CMakeFiles/aion_query.dir/value.cc.o.d"
  "libaion_query.a"
  "libaion_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aion_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
