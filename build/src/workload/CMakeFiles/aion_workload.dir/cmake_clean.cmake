file(REMOVE_RECURSE
  "CMakeFiles/aion_workload.dir/generator.cc.o"
  "CMakeFiles/aion_workload.dir/generator.cc.o.d"
  "libaion_workload.a"
  "libaion_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aion_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
