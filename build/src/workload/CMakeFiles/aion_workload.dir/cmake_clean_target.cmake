file(REMOVE_RECURSE
  "libaion_workload.a"
)
