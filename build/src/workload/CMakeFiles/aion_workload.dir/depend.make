# Empty dependencies file for aion_workload.
# This may be replaced when dependencies are built.
