file(REMOVE_RECURSE
  "libaion_core.a"
)
