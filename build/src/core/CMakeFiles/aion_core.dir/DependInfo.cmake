
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aion.cc" "src/core/CMakeFiles/aion_core.dir/aion.cc.o" "gcc" "src/core/CMakeFiles/aion_core.dir/aion.cc.o.d"
  "/root/repo/src/core/graphstore.cc" "src/core/CMakeFiles/aion_core.dir/graphstore.cc.o" "gcc" "src/core/CMakeFiles/aion_core.dir/graphstore.cc.o.d"
  "/root/repo/src/core/lineagestore.cc" "src/core/CMakeFiles/aion_core.dir/lineagestore.cc.o" "gcc" "src/core/CMakeFiles/aion_core.dir/lineagestore.cc.o.d"
  "/root/repo/src/core/record.cc" "src/core/CMakeFiles/aion_core.dir/record.cc.o" "gcc" "src/core/CMakeFiles/aion_core.dir/record.cc.o.d"
  "/root/repo/src/core/statistics.cc" "src/core/CMakeFiles/aion_core.dir/statistics.cc.o" "gcc" "src/core/CMakeFiles/aion_core.dir/statistics.cc.o.d"
  "/root/repo/src/core/timestore.cc" "src/core/CMakeFiles/aion_core.dir/timestore.cc.o" "gcc" "src/core/CMakeFiles/aion_core.dir/timestore.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/aion_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/aion_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/aion_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/aion_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
