# Empty dependencies file for aion_core.
# This may be replaced when dependencies are built.
