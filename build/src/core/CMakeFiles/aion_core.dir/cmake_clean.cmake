file(REMOVE_RECURSE
  "CMakeFiles/aion_core.dir/aion.cc.o"
  "CMakeFiles/aion_core.dir/aion.cc.o.d"
  "CMakeFiles/aion_core.dir/graphstore.cc.o"
  "CMakeFiles/aion_core.dir/graphstore.cc.o.d"
  "CMakeFiles/aion_core.dir/lineagestore.cc.o"
  "CMakeFiles/aion_core.dir/lineagestore.cc.o.d"
  "CMakeFiles/aion_core.dir/record.cc.o"
  "CMakeFiles/aion_core.dir/record.cc.o.d"
  "CMakeFiles/aion_core.dir/statistics.cc.o"
  "CMakeFiles/aion_core.dir/statistics.cc.o.d"
  "CMakeFiles/aion_core.dir/timestore.cc.o"
  "CMakeFiles/aion_core.dir/timestore.cc.o.d"
  "libaion_core.a"
  "libaion_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aion_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
