file(REMOVE_RECURSE
  "CMakeFiles/aion_server.dir/protocol.cc.o"
  "CMakeFiles/aion_server.dir/protocol.cc.o.d"
  "CMakeFiles/aion_server.dir/server.cc.o"
  "CMakeFiles/aion_server.dir/server.cc.o.d"
  "libaion_server.a"
  "libaion_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aion_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
