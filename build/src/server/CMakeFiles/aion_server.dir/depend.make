# Empty dependencies file for aion_server.
# This may be replaced when dependencies are built.
