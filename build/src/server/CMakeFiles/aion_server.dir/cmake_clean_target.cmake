file(REMOVE_RECURSE
  "libaion_server.a"
)
