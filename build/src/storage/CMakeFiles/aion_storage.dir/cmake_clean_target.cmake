file(REMOVE_RECURSE
  "libaion_storage.a"
)
