
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/bptree.cc" "src/storage/CMakeFiles/aion_storage.dir/bptree.cc.o" "gcc" "src/storage/CMakeFiles/aion_storage.dir/bptree.cc.o.d"
  "/root/repo/src/storage/file.cc" "src/storage/CMakeFiles/aion_storage.dir/file.cc.o" "gcc" "src/storage/CMakeFiles/aion_storage.dir/file.cc.o.d"
  "/root/repo/src/storage/log_file.cc" "src/storage/CMakeFiles/aion_storage.dir/log_file.cc.o" "gcc" "src/storage/CMakeFiles/aion_storage.dir/log_file.cc.o.d"
  "/root/repo/src/storage/page_cache.cc" "src/storage/CMakeFiles/aion_storage.dir/page_cache.cc.o" "gcc" "src/storage/CMakeFiles/aion_storage.dir/page_cache.cc.o.d"
  "/root/repo/src/storage/string_pool.cc" "src/storage/CMakeFiles/aion_storage.dir/string_pool.cc.o" "gcc" "src/storage/CMakeFiles/aion_storage.dir/string_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/aion_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
