# Empty compiler generated dependencies file for aion_storage.
# This may be replaced when dependencies are built.
