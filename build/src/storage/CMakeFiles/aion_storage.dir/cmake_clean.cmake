file(REMOVE_RECURSE
  "CMakeFiles/aion_storage.dir/bptree.cc.o"
  "CMakeFiles/aion_storage.dir/bptree.cc.o.d"
  "CMakeFiles/aion_storage.dir/file.cc.o"
  "CMakeFiles/aion_storage.dir/file.cc.o.d"
  "CMakeFiles/aion_storage.dir/log_file.cc.o"
  "CMakeFiles/aion_storage.dir/log_file.cc.o.d"
  "CMakeFiles/aion_storage.dir/page_cache.cc.o"
  "CMakeFiles/aion_storage.dir/page_cache.cc.o.d"
  "CMakeFiles/aion_storage.dir/string_pool.cc.o"
  "CMakeFiles/aion_storage.dir/string_pool.cc.o.d"
  "libaion_storage.a"
  "libaion_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aion_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
