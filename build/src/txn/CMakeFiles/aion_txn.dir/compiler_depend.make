# Empty compiler generated dependencies file for aion_txn.
# This may be replaced when dependencies are built.
