file(REMOVE_RECURSE
  "CMakeFiles/aion_txn.dir/graphdb.cc.o"
  "CMakeFiles/aion_txn.dir/graphdb.cc.o.d"
  "CMakeFiles/aion_txn.dir/record_store.cc.o"
  "CMakeFiles/aion_txn.dir/record_store.cc.o.d"
  "libaion_txn.a"
  "libaion_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aion_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
