file(REMOVE_RECURSE
  "libaion_txn.a"
)
