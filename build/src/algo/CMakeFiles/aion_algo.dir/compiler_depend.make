# Empty compiler generated dependencies file for aion_algo.
# This may be replaced when dependencies are built.
