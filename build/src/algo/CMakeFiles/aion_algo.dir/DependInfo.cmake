
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algo/incremental.cc" "src/algo/CMakeFiles/aion_algo.dir/incremental.cc.o" "gcc" "src/algo/CMakeFiles/aion_algo.dir/incremental.cc.o.d"
  "/root/repo/src/algo/static_algos.cc" "src/algo/CMakeFiles/aion_algo.dir/static_algos.cc.o" "gcc" "src/algo/CMakeFiles/aion_algo.dir/static_algos.cc.o.d"
  "/root/repo/src/algo/temporal_paths.cc" "src/algo/CMakeFiles/aion_algo.dir/temporal_paths.cc.o" "gcc" "src/algo/CMakeFiles/aion_algo.dir/temporal_paths.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/aion_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/aion_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
