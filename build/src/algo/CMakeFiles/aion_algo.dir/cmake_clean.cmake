file(REMOVE_RECURSE
  "CMakeFiles/aion_algo.dir/incremental.cc.o"
  "CMakeFiles/aion_algo.dir/incremental.cc.o.d"
  "CMakeFiles/aion_algo.dir/static_algos.cc.o"
  "CMakeFiles/aion_algo.dir/static_algos.cc.o.d"
  "CMakeFiles/aion_algo.dir/temporal_paths.cc.o"
  "CMakeFiles/aion_algo.dir/temporal_paths.cc.o.d"
  "libaion_algo.a"
  "libaion_algo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aion_algo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
