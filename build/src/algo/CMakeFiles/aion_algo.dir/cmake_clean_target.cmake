file(REMOVE_RECURSE
  "libaion_algo.a"
)
