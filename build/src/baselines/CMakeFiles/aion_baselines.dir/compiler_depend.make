# Empty compiler generated dependencies file for aion_baselines.
# This may be replaced when dependencies are built.
