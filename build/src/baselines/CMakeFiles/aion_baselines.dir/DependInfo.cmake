
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/gradoop_like.cc" "src/baselines/CMakeFiles/aion_baselines.dir/gradoop_like.cc.o" "gcc" "src/baselines/CMakeFiles/aion_baselines.dir/gradoop_like.cc.o.d"
  "/root/repo/src/baselines/raphtory_like.cc" "src/baselines/CMakeFiles/aion_baselines.dir/raphtory_like.cc.o" "gcc" "src/baselines/CMakeFiles/aion_baselines.dir/raphtory_like.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/aion_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/aion_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
