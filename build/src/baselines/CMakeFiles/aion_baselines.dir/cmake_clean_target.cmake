file(REMOVE_RECURSE
  "libaion_baselines.a"
)
