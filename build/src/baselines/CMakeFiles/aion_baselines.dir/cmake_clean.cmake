file(REMOVE_RECURSE
  "CMakeFiles/aion_baselines.dir/gradoop_like.cc.o"
  "CMakeFiles/aion_baselines.dir/gradoop_like.cc.o.d"
  "CMakeFiles/aion_baselines.dir/raphtory_like.cc.o"
  "CMakeFiles/aion_baselines.dir/raphtory_like.cc.o.d"
  "libaion_baselines.a"
  "libaion_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aion_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
