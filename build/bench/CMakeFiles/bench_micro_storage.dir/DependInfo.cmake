
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_micro_storage.cc" "bench/CMakeFiles/bench_micro_storage.dir/bench_micro_storage.cc.o" "gcc" "bench/CMakeFiles/bench_micro_storage.dir/bench_micro_storage.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/aion_core.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/aion_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/aion_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/aion_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/aion_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
