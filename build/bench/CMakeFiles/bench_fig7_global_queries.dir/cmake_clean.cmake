file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_global_queries.dir/bench_fig7_global_queries.cc.o"
  "CMakeFiles/bench_fig7_global_queries.dir/bench_fig7_global_queries.cc.o.d"
  "bench_fig7_global_queries"
  "bench_fig7_global_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_global_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
