# Empty compiler generated dependencies file for bench_fig7_global_queries.
# This may be replaced when dependencies are built.
