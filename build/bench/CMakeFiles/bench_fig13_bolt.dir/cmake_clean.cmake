file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_bolt.dir/bench_fig13_bolt.cc.o"
  "CMakeFiles/bench_fig13_bolt.dir/bench_fig13_bolt.cc.o.d"
  "bench_fig13_bolt"
  "bench_fig13_bolt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_bolt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
