# Empty compiler generated dependencies file for bench_fig6_point_queries.
# This may be replaced when dependencies are built.
