file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_point_queries.dir/bench_fig6_point_queries.cc.o"
  "CMakeFiles/bench_fig6_point_queries.dir/bench_fig6_point_queries.cc.o.d"
  "bench_fig6_point_queries"
  "bench_fig6_point_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_point_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
