file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_storage.dir/bench_fig10_storage.cc.o"
  "CMakeFiles/bench_fig10_storage.dir/bench_fig10_storage.cc.o.d"
  "bench_fig10_storage"
  "bench_fig10_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
