# Empty dependencies file for bench_fig9_ingestion.
# This may be replaced when dependencies are built.
