# Empty dependencies file for bench_fig14_procedures.
# This may be replaced when dependencies are built.
