file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_procedures.dir/bench_fig14_procedures.cc.o"
  "CMakeFiles/bench_fig14_procedures.dir/bench_fig14_procedures.cc.o.d"
  "bench_fig14_procedures"
  "bench_fig14_procedures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_procedures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
