file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_snapshots.dir/bench_ablation_snapshots.cc.o"
  "CMakeFiles/bench_ablation_snapshots.dir/bench_ablation_snapshots.cc.o.d"
  "bench_ablation_snapshots"
  "bench_ablation_snapshots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_snapshots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
