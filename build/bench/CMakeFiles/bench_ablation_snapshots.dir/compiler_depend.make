# Empty compiler generated dependencies file for bench_ablation_snapshots.
# This may be replaced when dependencies are built.
