file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_nhop.dir/bench_fig8_nhop.cc.o"
  "CMakeFiles/bench_fig8_nhop.dir/bench_fig8_nhop.cc.o.d"
  "bench_fig8_nhop"
  "bench_fig8_nhop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_nhop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
