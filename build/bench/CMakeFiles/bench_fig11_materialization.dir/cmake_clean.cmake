file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_materialization.dir/bench_fig11_materialization.cc.o"
  "CMakeFiles/bench_fig11_materialization.dir/bench_fig11_materialization.cc.o.d"
  "bench_fig11_materialization"
  "bench_fig11_materialization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_materialization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
