# Empty compiler generated dependencies file for storage_string_pool_test.
# This may be replaced when dependencies are built.
