file(REMOVE_RECURSE
  "CMakeFiles/storage_string_pool_test.dir/storage_string_pool_test.cc.o"
  "CMakeFiles/storage_string_pool_test.dir/storage_string_pool_test.cc.o.d"
  "storage_string_pool_test"
  "storage_string_pool_test.pdb"
  "storage_string_pool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_string_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
