# Empty dependencies file for core_timestore_test.
# This may be replaced when dependencies are built.
