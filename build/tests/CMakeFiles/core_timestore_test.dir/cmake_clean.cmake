file(REMOVE_RECURSE
  "CMakeFiles/core_timestore_test.dir/core_timestore_test.cc.o"
  "CMakeFiles/core_timestore_test.dir/core_timestore_test.cc.o.d"
  "core_timestore_test"
  "core_timestore_test.pdb"
  "core_timestore_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_timestore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
