file(REMOVE_RECURSE
  "CMakeFiles/query_value_test.dir/query_value_test.cc.o"
  "CMakeFiles/query_value_test.dir/query_value_test.cc.o.d"
  "query_value_test"
  "query_value_test.pdb"
  "query_value_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_value_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
