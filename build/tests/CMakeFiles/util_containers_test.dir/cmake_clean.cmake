file(REMOVE_RECURSE
  "CMakeFiles/util_containers_test.dir/util_containers_test.cc.o"
  "CMakeFiles/util_containers_test.dir/util_containers_test.cc.o.d"
  "util_containers_test"
  "util_containers_test.pdb"
  "util_containers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_containers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
