# Empty dependencies file for util_containers_test.
# This may be replaced when dependencies are built.
