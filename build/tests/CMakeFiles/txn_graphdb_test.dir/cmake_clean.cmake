file(REMOVE_RECURSE
  "CMakeFiles/txn_graphdb_test.dir/txn_graphdb_test.cc.o"
  "CMakeFiles/txn_graphdb_test.dir/txn_graphdb_test.cc.o.d"
  "txn_graphdb_test"
  "txn_graphdb_test.pdb"
  "txn_graphdb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txn_graphdb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
