# Empty dependencies file for txn_graphdb_test.
# This may be replaced when dependencies are built.
