# Empty dependencies file for storage_log_file_test.
# This may be replaced when dependencies are built.
