# Empty compiler generated dependencies file for storage_file_test.
# This may be replaced when dependencies are built.
