# Empty compiler generated dependencies file for algo_incremental_test.
# This may be replaced when dependencies are built.
