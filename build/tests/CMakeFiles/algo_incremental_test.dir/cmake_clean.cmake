file(REMOVE_RECURSE
  "CMakeFiles/algo_incremental_test.dir/algo_incremental_test.cc.o"
  "CMakeFiles/algo_incremental_test.dir/algo_incremental_test.cc.o.d"
  "algo_incremental_test"
  "algo_incremental_test.pdb"
  "algo_incremental_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algo_incremental_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
