# Empty compiler generated dependencies file for core_aion_test.
# This may be replaced when dependencies are built.
