file(REMOVE_RECURSE
  "CMakeFiles/core_aion_test.dir/core_aion_test.cc.o"
  "CMakeFiles/core_aion_test.dir/core_aion_test.cc.o.d"
  "core_aion_test"
  "core_aion_test.pdb"
  "core_aion_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_aion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
