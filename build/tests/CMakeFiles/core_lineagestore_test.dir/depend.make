# Empty dependencies file for core_lineagestore_test.
# This may be replaced when dependencies are built.
