file(REMOVE_RECURSE
  "CMakeFiles/core_lineagestore_test.dir/core_lineagestore_test.cc.o"
  "CMakeFiles/core_lineagestore_test.dir/core_lineagestore_test.cc.o.d"
  "core_lineagestore_test"
  "core_lineagestore_test.pdb"
  "core_lineagestore_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_lineagestore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
