# Empty dependencies file for algo_temporal_paths_test.
# This may be replaced when dependencies are built.
