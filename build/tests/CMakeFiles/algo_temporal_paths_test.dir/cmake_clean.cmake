file(REMOVE_RECURSE
  "CMakeFiles/algo_temporal_paths_test.dir/algo_temporal_paths_test.cc.o"
  "CMakeFiles/algo_temporal_paths_test.dir/algo_temporal_paths_test.cc.o.d"
  "algo_temporal_paths_test"
  "algo_temporal_paths_test.pdb"
  "algo_temporal_paths_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algo_temporal_paths_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
