file(REMOVE_RECURSE
  "CMakeFiles/core_bitemporal_test.dir/core_bitemporal_test.cc.o"
  "CMakeFiles/core_bitemporal_test.dir/core_bitemporal_test.cc.o.d"
  "core_bitemporal_test"
  "core_bitemporal_test.pdb"
  "core_bitemporal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_bitemporal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
