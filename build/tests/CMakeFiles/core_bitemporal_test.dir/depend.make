# Empty dependencies file for core_bitemporal_test.
# This may be replaced when dependencies are built.
