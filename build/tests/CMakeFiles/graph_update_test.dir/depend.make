# Empty dependencies file for graph_update_test.
# This may be replaced when dependencies are built.
