file(REMOVE_RECURSE
  "CMakeFiles/graph_update_test.dir/graph_update_test.cc.o"
  "CMakeFiles/graph_update_test.dir/graph_update_test.cc.o.d"
  "graph_update_test"
  "graph_update_test.pdb"
  "graph_update_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_update_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
