# Empty compiler generated dependencies file for graph_memgraph_test.
# This may be replaced when dependencies are built.
