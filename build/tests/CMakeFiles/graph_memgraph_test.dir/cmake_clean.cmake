file(REMOVE_RECURSE
  "CMakeFiles/graph_memgraph_test.dir/graph_memgraph_test.cc.o"
  "CMakeFiles/graph_memgraph_test.dir/graph_memgraph_test.cc.o.d"
  "graph_memgraph_test"
  "graph_memgraph_test.pdb"
  "graph_memgraph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_memgraph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
