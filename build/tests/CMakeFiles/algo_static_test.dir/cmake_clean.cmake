file(REMOVE_RECURSE
  "CMakeFiles/algo_static_test.dir/algo_static_test.cc.o"
  "CMakeFiles/algo_static_test.dir/algo_static_test.cc.o.d"
  "algo_static_test"
  "algo_static_test.pdb"
  "algo_static_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algo_static_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
