# Empty dependencies file for algo_static_test.
# This may be replaced when dependencies are built.
