file(REMOVE_RECURSE
  "CMakeFiles/core_statistics_test.dir/core_statistics_test.cc.o"
  "CMakeFiles/core_statistics_test.dir/core_statistics_test.cc.o.d"
  "core_statistics_test"
  "core_statistics_test.pdb"
  "core_statistics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_statistics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
