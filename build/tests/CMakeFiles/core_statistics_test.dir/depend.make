# Empty dependencies file for core_statistics_test.
# This may be replaced when dependencies are built.
