# Empty dependencies file for graph_temporal_test.
# This may be replaced when dependencies are built.
