# Empty compiler generated dependencies file for graph_cow_test.
# This may be replaced when dependencies are built.
