file(REMOVE_RECURSE
  "CMakeFiles/graph_cow_test.dir/graph_cow_test.cc.o"
  "CMakeFiles/graph_cow_test.dir/graph_cow_test.cc.o.d"
  "graph_cow_test"
  "graph_cow_test.pdb"
  "graph_cow_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_cow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
