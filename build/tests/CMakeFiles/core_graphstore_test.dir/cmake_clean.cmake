file(REMOVE_RECURSE
  "CMakeFiles/core_graphstore_test.dir/core_graphstore_test.cc.o"
  "CMakeFiles/core_graphstore_test.dir/core_graphstore_test.cc.o.d"
  "core_graphstore_test"
  "core_graphstore_test.pdb"
  "core_graphstore_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_graphstore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
