# Empty compiler generated dependencies file for core_graphstore_test.
# This may be replaced when dependencies are built.
