// Ablation — synchronous vs asynchronous LineageStore cascade (DESIGN.md
// §5.1 / paper Sec 5.1): Aion updates the TimeStore on the commit path and
// cascades to the LineageStore in the background. This ablation measures
// (i) commit-path latency per transaction under both modes and (ii) the
// cascade lag the asynchronous mode accepts in exchange — the rare window
// where queries fall back to the TimeStore.
#include "bench/bench_common.h"
#include "txn/graphdb.h"
#include "util/histogram.h"

using namespace aion;  // NOLINT

int main() {
  const double scale = workload::BenchScaleFromEnv(0.001);
  bench::PrintHeader(
      "Ablation: cascade mode",
      "commit latency vs LineageStore lag (WikiTalk-like)", scale);
  workload::Workload w = workload::Generate(workload::WikiTalk(scale));
  printf("%-8s %18s %18s %18s %16s\n", "mode", "p50 commit (us)",
         "p99 commit (us)", "ingest (kups/s)", "lag @end (ts)");

  for (const bool synchronous : {true, false}) {
    bench::TempDir dir("aion_cascade_");
    core::AionStore::Options options;
    options.dir = dir.path() + "/aion";
    options.lineage_mode = synchronous
                               ? core::AionStore::LineageMode::kSync
                               : core::AionStore::LineageMode::kAsync;
    options.snapshot_policy.kind = core::SnapshotPolicy::Kind::kDisabled;
    auto aion = core::AionStore::Open(options);
    AION_CHECK(aion.ok());
    auto db = txn::GraphDatabase::OpenInMemory();
    AION_CHECK(db.ok());
    (*db)->RegisterListener(aion->get());

    util::LatencyHistogram latency;
    constexpr size_t kBatch = 100;
    bench::Timer total;
    size_t i = 0;
    while (i < w.updates.size()) {
      auto txn = (*db)->Begin();
      const size_t end = std::min(i + kBatch, w.updates.size());
      for (; i < end; ++i) txn->Add(w.updates[i]);
      bench::Timer commit_timer;
      AION_CHECK(txn->Commit().ok());
      latency.Add(commit_timer.Seconds() * 1e6);
    }
    const double ingest_seconds = total.Seconds();
    // Cascade lag right after the last commit (before draining).
    const graph::Timestamp lag =
        (*aion)->last_ingested_ts() - (*aion)->cascade_applied_ts();
    (*aion)->DrainBackground();
    printf("%-8s %18.1f %18.1f %18.1f %16llu\n",
           synchronous ? "sync" : "async", latency.Percentile(50),
           latency.Percentile(99),
           static_cast<double>(w.updates.size()) / ingest_seconds / 1e3,
           static_cast<unsigned long long>(lag));
  }
  bench::PrintFooter();
  printf("Expected: async mode keeps the commit path close to the\n"
         "TimeStore-only cost and absorbs the LineageStore work as lag\n"
         "(drained by background workers) — the Sec 5.1 design decision.\n");
  return 0;
}
