// Storage-lifecycle soak: ingest many retention windows' worth of updates
// with the background compaction scheduler live, and prove (a) the on-disk
// footprint stays bounded by one window's live data instead of growing with
// total ingest, (b) in-window temporal answers are byte-identical before
// and after compaction and across a reopen, and (c) out-of-retention reads
// fail with the typed status. Exits nonzero (AION_CHECK) on any violation —
// the nightly CI soak job runs this for a long stretch and archives the
// JSON summary plus a flight-recorder dump.
//
// Knobs (environment):
//   AION_SOAK_WINDOWS       retention windows to ingest past the first
//                           (default 12; nightly uses more)
//   AION_SOAK_WINDOW_TICKS  timestamps per retention window (default 2000)
//   AION_SOAK_FLIGHT_OUT    flight-recorder dump path (default
//                           soak_flight.json)
//   AION_BENCH_JSON_OUT     summary path (default BENCH_soak.json)
#include <algorithm>
#include <cinttypes>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "obs/timeseries.h"
#include "util/random.h"

using namespace aion;  // NOLINT

namespace {

uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::strtoull(value, nullptr, 10) : fallback;
}

/// Sliding-window workload: add node `ts` (with a property and, every third
/// tick, a short-lived relationship), retire entities that fell out of the
/// keep-set. Live state is constant, so retained footprint should be too.
std::vector<graph::GraphUpdate> Tick(graph::Timestamp ts,
                                     graph::Timestamp keep) {
  std::vector<graph::GraphUpdate> updates;
  // Node 0 is a long-lived hub whose property is rewritten continuously:
  // its lineage delta chain grows without bound unless compaction's chain
  // rewriting caps it.
  if (ts == 1) {
    updates.push_back(graph::GraphUpdate::AddNode(0, {"Hub"}));
  }
  if (ts % 10 == 0) {
    updates.push_back(graph::GraphUpdate::SetNodeProperty(
        0, "beat", static_cast<int64_t>(ts)));
  }
  graph::PropertySet props;
  props.Set("seq", static_cast<int64_t>(ts));
  updates.push_back(
      graph::GraphUpdate::AddNode(ts, {"Soak"}, std::move(props)));
  if (ts % 3 == 0 && ts > 3) {
    updates.push_back(
        graph::GraphUpdate::AddRelationship(ts, ts, ts - 3, "NEXT"));
  }
  if (ts > 9 && (ts - 6) % 3 == 0) {
    updates.push_back(graph::GraphUpdate::DeleteRelationship(ts - 6));
  }
  if (ts > keep) {
    updates.push_back(graph::GraphUpdate::DeleteNode(ts - keep));
  }
  return updates;
}

std::string EncodeGraphAt(core::AionStore& aion, graph::Timestamp t) {
  auto graph = aion.MaterializeGraphAt(t);
  AION_CHECK(graph.ok());
  std::string encoded;
  (*graph)->EncodeTo(&encoded);
  return encoded;
}

}  // namespace

int main() {
  const uint64_t windows = EnvOr("AION_SOAK_WINDOWS", 12);
  const graph::Timestamp window_ticks =
      EnvOr("AION_SOAK_WINDOW_TICKS", 2000);
  const graph::Timestamp keep = window_ticks / 4 + 10;
  const char* flight_env = std::getenv("AION_SOAK_FLIGHT_OUT");
  const std::string flight_out =
      flight_env != nullptr ? flight_env : "soak_flight.json";

  bench::PrintHeader("Soak", "storage lifecycle: retention + compaction",
                     static_cast<double>(windows));
  printf("window=%" PRIu64 " ticks, %" PRIu64
         " windows past retention, keep-set=%" PRIu64 " nodes\n",
         static_cast<uint64_t>(window_ticks), windows,
         static_cast<uint64_t>(keep));

  bench::TempDir dir("aion_soak_");
  core::AionStore::Options options;
  options.dir = dir.path() + "/aion";
  options.lineage_mode = core::AionStore::LineageMode::kSync;
  options.materialization_threshold = 64;  // long delta chains...
  options.lineage_max_chain = 8;           // ...capped by compaction
  options.snapshot_policy.kind = core::SnapshotPolicy::Kind::kDisabled;
  options.retention_window = window_ticks;
  // Roughly a quarter-window per segment (a tick is a few dozen log
  // bytes), so the straddling segment the physical floor waits on stays a
  // small fraction of the footprint at any AION_SOAK_WINDOW_TICKS.
  options.segment_target_bytes =
      std::max<uint64_t>(8 << 10, window_ticks * 16);
  options.compaction_period_millis = 25;  // live background scheduler
  options.flight_sample_period_millis = 100;

  // Yardstick phase, scheduler off: windows 1..2 must stay uncompacted
  // while we measure what one steady-state window of this workload costs
  // in log bytes (a live round could drop window-1 segments mid-measure
  // and shrink the delta). The second window is the yardstick — the first
  // is lighter while the keep-set fills.
  core::AionStore::Options yardstick_options = options;
  yardstick_options.compaction_period_millis = 0;
  std::unique_ptr<core::AionStore> aion;
  {
    auto opened = core::AionStore::Open(yardstick_options);
    AION_CHECK(opened.ok());
    aion = std::move(*opened);
  }
  graph::Timestamp ts = 0;
  auto ingest_window = [&] {
    for (graph::Timestamp end = ts + window_ticks; ts < end;) {
      ++ts;
      AION_CHECK_OK(aion->Ingest(ts, Tick(ts, keep)));
    }
  };
  ingest_window();
  AION_CHECK_OK(aion->Flush());
  const uint64_t first_window_bytes = aion->RetentionStats().log_bytes;
  ingest_window();
  AION_CHECK_OK(aion->Flush());
  const uint64_t window_bytes =
      aion->RetentionStats().log_bytes - first_window_bytes;
  AION_CHECK(window_bytes > 0);

  // Soak phase: reopen the same directory with the background scheduler
  // live.
  aion.reset();
  {
    auto opened = core::AionStore::Open(options);
    AION_CHECK(opened.ok());
    aion = std::move(*opened);
  }

  bench::Timer timer;
  uint64_t peak_footprint = 0;
  for (uint64_t w = 0; w < windows; ++w) {
    ingest_window();
    // One synchronous round at the boundary (serialized with the
    // background scheduler) so the bound below checks compacted state, not
    // scheduler lag.
    AION_CHECK_OK(aion->CompactNow());
    const core::AionStore::RetentionInfo stats = aion->RetentionStats();
    const uint64_t footprint = stats.log_bytes + stats.snapshot_bytes;
    if (footprint > peak_footprint) peak_footprint = footprint;
    printf("window %3" PRIu64 ": floor=%" PRIu64 " log=%" PRIu64
           "B snap=%" PRIu64 "B (%.2fx window) segs=%" PRIu64
           " snaps=%" PRIu64 "\n",
           w + 1, stats.physical_floor, stats.log_bytes,
           stats.snapshot_bytes,
           static_cast<double>(footprint) / window_bytes,
           stats.segments_live, stats.snapshots_live);
    // The acceptance bound: never more than 2x one window's live data.
    AION_CHECK(footprint <= 2 * window_bytes);
    // Out-of-retention reads fail typed; in-window reads answer.
    AION_CHECK(aion->GetGraphAt(stats.logical_floor > window_ticks / 2
                                    ? stats.logical_floor - window_ticks / 2
                                    : 0)
                   .status()
                   .IsOutOfRetention());
    auto live = aion->MaterializeGraphAt(ts);
    AION_CHECK(live.ok());
    AION_CHECK((*live)->NumNodes() == keep + 1);  // keep-set + the hub
  }
  const double soak_seconds = timer.Seconds();

  // Quiescent re-verification: answers must be byte-identical across one
  // more full compaction round and across a process restart.
  const graph::Timestamp floor = aion->RetentionFloor();
  std::vector<graph::Timestamp> checkpoints;
  std::vector<std::string> before;
  util::Random rng(17);
  for (int i = 0; i < 8; ++i) {
    checkpoints.push_back(floor + rng.Uniform(ts - floor + 1));
  }
  checkpoints.push_back(floor);
  checkpoints.push_back(ts);
  for (graph::Timestamp t : checkpoints) {
    before.push_back(EncodeGraphAt(*aion, t));
  }
  AION_CHECK_OK(aion->CompactNow());
  for (size_t i = 0; i < checkpoints.size(); ++i) {
    AION_CHECK(EncodeGraphAt(*aion, checkpoints[i]) == before[i]);
  }

  const core::AionStore::RetentionInfo final_stats = aion->RetentionStats();
  bench::PrintMetricsJson(*aion, "soak");
  AION_CHECK_OK(aion->flight_recorder()->DumpToFile(flight_out));
  printf("flight-recorder dump: %s\n", flight_out.c_str());
  aion.reset();

  auto reopened = core::AionStore::Open(options);
  AION_CHECK(reopened.ok());
  for (size_t i = 0; i < checkpoints.size(); ++i) {
    AION_CHECK(EncodeGraphAt(**reopened, checkpoints[i]) == before[i]);
  }

  printf("soak OK: %" PRIu64 " windows in %.1fs, peak footprint %" PRIu64
         "B (%.2fx window), %" PRIu64 " segments / %" PRIu64
         " records dropped, %" PRIu64 " chains rewritten\n",
         windows, soak_seconds, peak_footprint,
         static_cast<double>(peak_footprint) / window_bytes,
         final_stats.segments_dropped, final_stats.records_dropped,
         final_stats.chains_rewritten);

  char buf[1024];
  snprintf(buf, sizeof(buf),
           "{\n  \"figure\": \"soak\",\n"
           "  \"windows\": %" PRIu64 ",\n  \"window_ticks\": %" PRIu64
           ",\n  \"soak_seconds\": %.2f,\n  \"window_bytes\": %" PRIu64
           ",\n  \"peak_footprint_bytes\": %" PRIu64
           ",\n  \"peak_footprint_over_window\": %.3f,\n"
           "  \"segments_dropped\": %" PRIu64
           ",\n  \"records_dropped\": %" PRIu64
           ",\n  \"bytes_reclaimed\": %" PRIu64
           ",\n  \"snapshots_dropped\": %" PRIu64
           ",\n  \"chains_rewritten\": %" PRIu64
           ",\n  \"compaction_rounds\": %" PRIu64 "\n}\n",
           windows, static_cast<uint64_t>(window_ticks), soak_seconds,
           window_bytes, peak_footprint,
           static_cast<double>(peak_footprint) / window_bytes,
           final_stats.segments_dropped, final_stats.records_dropped,
           final_stats.bytes_reclaimed, final_stats.snapshots_dropped,
           final_stats.chains_rewritten, final_stats.compaction_rounds);
  bench::PrintFooter();
  bench::WriteBenchJson(buf, "BENCH_soak.json");
  return 0;
}
