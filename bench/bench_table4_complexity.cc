// Table 4 — Storage and retrieval costs: empirical validation of the
// complexity table. Sweeps the history length |U| and measures how each
// system's relationship point-lookup and snapshot-retrieval costs scale:
//   Aion      rel lookup ~ log|U_R|        snapshot ~ |G| + delta(|U|)
//   Raphtory  rel lookup ~ 2|U_R^n|        snapshot ~ |U|
//   Gradoop   rel lookup ~ |U_R|           snapshot ~ |U|
// The ratio between successive rows exposes the growth class: flat-ish for
// logarithmic costs, ~2x per doubling for linear ones.
#include "baselines/gradoop_like.h"
#include "baselines/raphtory_like.h"
#include "bench/bench_common.h"
#include "util/random.h"

using namespace aion;  // NOLINT

int main() {
  const double scale = workload::BenchScaleFromEnv(0.001);
  bench::PrintHeader("Table 4",
                     "cost scaling with history size (ns per operation)",
                     scale);

  // One hub relationship accumulates a long property-update history while
  // the surrounding graph grows; |U| doubles per row.
  printf("%-10s | %12s %12s %12s | %12s %12s %12s\n", "|U|", "Aion pt",
         "Raph pt", "Grad pt", "Aion snap", "Raph snap", "Grad snap");

  const size_t base_updates = 2000;
  for (int doubling = 0; doubling < 4; ++doubling) {
    const size_t num_updates = base_updates << doubling;

    // Build the update stream: star graph around node 0 with property
    // churn on relationship 0.
    std::vector<graph::GraphUpdate> updates;
    graph::Timestamp ts = 0;
    {
      graph::GraphUpdate u = graph::GraphUpdate::AddNode(0);
      u.ts = ++ts;
      updates.push_back(u);
    }
    util::Random rng(3);
    graph::NodeId next_node = 1;
    graph::RelId next_rel = 0;
    while (updates.size() < num_updates) {
      if (next_rel == 0 || rng.Bernoulli(0.5)) {
        graph::GraphUpdate n = graph::GraphUpdate::AddNode(next_node);
        n.ts = ++ts;
        updates.push_back(n);
        graph::GraphUpdate r = graph::GraphUpdate::AddRelationship(
            next_rel++, 0, next_node++, "R");
        r.ts = ++ts;
        updates.push_back(r);
      } else {
        graph::GraphUpdate u = graph::GraphUpdate::SetRelationshipProperty(
            0, "p", graph::PropertyValue(static_cast<int64_t>(ts)));
        u.ts = ++ts;
        updates.push_back(u);
      }
    }

    core::AionStore::Options options;
    options.lineage_mode = core::AionStore::LineageMode::kSync;
    options.snapshot_policy.kind = core::SnapshotPolicy::Kind::kOperationBased;
    options.snapshot_policy.every = num_updates / 4;
    workload::Workload w;
    w.updates = updates;
    w.max_ts = ts;
    w.num_rels = next_rel;
    w.num_nodes = next_node;
    bench::LoadedAion loaded = bench::LoadAion(w, options);

    baselines::RaphtoryLike raphtory;
    AION_CHECK_OK(raphtory.IngestAll(updates));
    baselines::GradoopLike gradoop;
    AION_CHECK_OK(gradoop.IngestAll(updates));

    // Point lookups on the hub relationship (longest history).
    const size_t point_ops = 2000;
    util::Random probe_rng(5);
    auto measure_point = [&](auto&& lookup) -> double {
      bench::Timer timer;
      for (size_t i = 0; i < point_ops; ++i) {
        lookup(graph::RelId{0}, 1 + probe_rng.Uniform(ts));
      }
      return timer.Seconds() * 1e9 / static_cast<double>(point_ops);
    };
    const double aion_pt =
        measure_point([&](graph::RelId r, graph::Timestamp t) {
          AION_CHECK(loaded.aion->GetRelationshipAt(r, t).ok());
        });
    const double raph_pt =
        measure_point([&](graph::RelId r, graph::Timestamp t) {
          raphtory.GetRelationshipAt(r, t);
        });
    const double grad_pt =
        measure_point([&](graph::RelId r, graph::Timestamp t) {
          gradoop.GetRelationshipAt(r, t);
        });

    // Snapshots at random times.
    const size_t snap_ops = 3;
    auto measure_snap = [&](auto&& snap) -> double {
      bench::Timer timer;
      for (size_t i = 0; i < snap_ops; ++i) {
        snap(1 + probe_rng.Uniform(ts));
      }
      return timer.Seconds() * 1e9 / static_cast<double>(snap_ops);
    };
    const double aion_snap = measure_snap([&](graph::Timestamp t) {
      AION_CHECK(loaded.aion->GetGraphAt(t).ok());
    });
    const double raph_snap = measure_snap(
        [&](graph::Timestamp t) { raphtory.SnapshotAt(t); });
    const double grad_snap = measure_snap(
        [&](graph::Timestamp t) { gradoop.SnapshotAt(t); });

    printf("%-10zu | %12.0f %12.0f %12.0f | %12.0f %12.0f %12.0f\n",
           num_updates, aion_pt, raph_pt, grad_pt, aion_snap, raph_snap,
           grad_snap);
  }
  bench::PrintFooter();
  printf("Expected per |U| doubling: Aion point cost ~flat (log);\n"
         "Raphtory/Gradoop point cost ~2x (linear scans); snapshot costs\n"
         "grow for everyone, Aion's bounded by snapshot + delta replay.\n");
  return 0;
}
