// Fig 11 — Materializing graph entities: the delta-chain threshold sweep.
// The DBLP-like graph's relationships receive 32 property updates each
// (building history chains); the LineageStore materializes a full record
// every N deltas for N in {32, 16, 8, 4, 2, 1}. Reported: reconstruction
// throughput (random relationship state lookups) and storage relative to
// the all-delta configuration.
//
// Paper shape: all-delta (32) loses up to 40% throughput; materializing on
// every update (1) costs up to 80% more storage and also hurts throughput
// (fatter records, fewer per page); N=4 balances and is Aion's default.
#include "bench/bench_common.h"
#include "util/random.h"

using namespace aion;  // NOLINT

int main() {
  const double scale = workload::BenchScaleFromEnv(0.001);
  bench::PrintHeader(
      "Fig 11",
      "delta materialization threshold sweep (DBLP-like, 32 updates/rel)",
      scale);

  // Smaller relationship count than Fig 6 (32 updates per relationship).
  workload::DatasetSpec spec = workload::Dblp(scale * 0.2);
  workload::Workload base = workload::Generate(spec);

  // Extend the stream: 32 property updates per relationship, round-robin so
  // chains interleave (distinct discrete times, as in the paper).
  std::vector<graph::GraphUpdate> updates = base.updates;
  graph::Timestamp ts = base.max_ts;
  for (int round = 0; round < 32; ++round) {
    for (graph::RelId rel = 0; rel < base.num_rels; ++rel) {
      // String values fatten materialized records (string refs per value),
      // so page occupancy differences between thresholds become visible.
      graph::GraphUpdate u = graph::GraphUpdate::SetRelationshipProperty(
          rel, "p" + std::to_string(round),
          graph::PropertyValue("value-" + std::to_string(round % 7)));
      u.ts = ++ts;
      updates.push_back(std::move(u));
    }
  }

  printf("rels: %zu, property updates: %zu\n", base.num_rels,
         updates.size() - base.updates.size());
  printf("%-10s %18s %18s\n", "threshold", "lookup (1e4 ops/s)",
         "storage (norm.)");

  double delta_only_bytes = 0;
  for (uint32_t threshold : {32u, 16u, 8u, 4u, 2u, 1u}) {
    bench::TempDir dir("aion_fig11_");
    core::LineageStore::Options options;
    options.dir = dir.path() + "/ls";
    options.materialization_threshold = threshold;
    // Small page cache: reconstruction cost includes page reads, as in the
    // paper's out-of-core setting.
    options.index_cache_pages = 32;
    auto pool = storage::StringPool::InMemory();
    auto store = core::LineageStore::Open(options, pool.get());
    AION_CHECK(store.ok());
    for (const graph::GraphUpdate& u : updates) {
      AION_CHECK_OK((*store)->Apply(u));
    }
    AION_CHECK_OK((*store)->Flush());

    const size_t ops = bench::OpsFor(base.num_rels * 4, 2000, 20000);
    util::Random rng(17);
    bench::Timer timer;
    for (size_t i = 0; i < ops; ++i) {
      const graph::RelId rel = rng.Uniform(base.num_rels);
      const graph::Timestamp t = 1 + rng.Uniform(ts);
      auto result = (*store)->GetRelationshipAt(rel, t);
      AION_CHECK(result.ok());
    }
    const double tput = static_cast<double>(ops) / timer.Seconds();
    const double bytes = static_cast<double>((*store)->SizeBytes());
    if (threshold == 32) delta_only_bytes = bytes;
    printf("%-10u %18.2f %18.2f\n", threshold, tput / 1e4,
           bytes / delta_only_bytes);
  }
  bench::PrintFooter();
  printf("Expected: throughput dips at 32 (long chains) and at 1 (bloated\n"
         "pages); storage grows monotonically as the threshold shrinks;\n"
         "threshold 4 balances both (Aion's default).\n");
  return 0;
}
