// Ablation — snapshot policy (DESIGN.md §5.1 / paper Sec 4.3): TimeStore
// retrieval follows Copy+Log (closest snapshot + forward replay), so the
// eager-snapshot frequency trades storage for retrieval latency. This sweep
// varies the operation-based policy from "no snapshots" (replay everything)
// to "snapshot every |U|/64 updates" and reports random-snapshot retrieval
// latency alongside the snapshot storage bill.
#include "bench/bench_common.h"
#include "util/random.h"

using namespace aion;  // NOLINT

int main() {
  const double scale = workload::BenchScaleFromEnv(0.001);
  bench::PrintHeader("Ablation: snapshot policy",
                     "retrieval latency vs snapshot storage (Pokec-like)",
                     scale);
  workload::Workload w = workload::Generate(workload::Pokec(scale));
  printf("updates: %zu\n", w.updates.size());
  printf("%-22s %16s %18s %14s\n", "policy", "retrieval (ms)",
         "snapshots (MB)", "log+idx (MB)");

  struct PolicyChoice {
    const char* name;
    core::SnapshotPolicy policy;
  };
  std::vector<PolicyChoice> policies;
  policies.push_back(
      {"disabled (log only)", {core::SnapshotPolicy::Kind::kDisabled, 0}});
  for (size_t divisor : {4, 16, 64}) {
    core::SnapshotPolicy policy;
    policy.kind = core::SnapshotPolicy::Kind::kOperationBased;
    policy.every = w.updates.size() / divisor + 1;
    std::string* name = new std::string("every |U|/" +
                                        std::to_string(divisor));
    policies.push_back({name->c_str(), policy});
  }

  for (const PolicyChoice& choice : policies) {
    core::AionStore::Options options;
    options.lineage_mode = core::AionStore::LineageMode::kDisabled;
    options.snapshot_policy = choice.policy;
    // Keep the in-memory snapshot cache tiny so retrieval exercises the
    // disk path (the paper's out-of-core setting).
    options.graphstore_capacity_bytes = 1;
    bench::LoadedAion loaded = bench::LoadAion(w, options);
    AION_CHECK_OK(loaded.aion->Flush());

    const size_t runs = 8;
    util::Random rng(3);
    bench::Timer timer;
    for (size_t i = 0; i < runs; ++i) {
      const graph::Timestamp t = 1 + rng.Uniform(w.max_ts);
      auto view = loaded.aion->GetGraphAt(t);
      AION_CHECK(view.ok());
    }
    const double ms = timer.Seconds() * 1000 / runs;
    const double mb = 1024.0 * 1024.0;
    const core::AionStore::Introspection info = loaded.aion->Introspect();
    printf("%-22s %16.2f %18.2f %14.2f\n", choice.name, ms,
           static_cast<double>(info.timestore_snapshot_bytes) / mb,
           static_cast<double>(info.timestore_size_bytes -
                               info.timestore_snapshot_bytes) /
               mb);
  }
  bench::PrintFooter();
  printf("Expected: retrieval latency falls as snapshots densify (less log\n"
         "replay); snapshot storage grows linearly with frequency — the\n"
         "Copy+Log trade the paper's TimeStore makes (Sec 6.1).\n");
  return 0;
}
