// Fig 14 — Speedup with procedures: incremental graph computations invoked
// as temporal procedures (CALL aion.incremental.*) over the client-server
// path, compared against re-running the full algorithm per snapshot through
// the same path. Procedures remove per-snapshot query compilation and task
// scheduling overheads, so speedups exceed Fig 12's (Sec 6.7).
#include "algo/static_algos.h"
#include "bench/bench_common.h"
#include "graph/csr.h"
#include "query/engine.h"
#include "server/server.h"
#include "txn/graphdb.h"

using namespace aion;  // NOLINT

int main() {
  const double scale = workload::BenchScaleFromEnv(0.001);
  bench::PrintHeader(
      "Fig 14",
      "incremental speedup via temporal procedures over the wire", scale);
  printf("%-12s %10s %10s %10s %10s %10s %10s\n", "Dataset", "AVG(10)",
         "AVG(100)", "BFS(10)", "BFS(100)", "PR(10)", "PR(100)");

  const std::vector<workload::DatasetSpec> datasets = {
      workload::Dblp(scale), workload::WikiTalk(scale),
      workload::Pokec(scale), workload::LiveJournal(scale)};

  for (const workload::DatasetSpec& spec : datasets) {
    workload::Workload w = workload::Generate(spec, "w");

    core::AionStore::Options options;
    options.snapshot_policy.kind = core::SnapshotPolicy::Kind::kOperationBased;
    options.snapshot_policy.every = w.updates.size() / 2;  // mid snapshot
    bench::LoadedAion loaded = bench::LoadAion(w, options);

    auto db = txn::GraphDatabase::OpenInMemory();
    AION_CHECK(db.ok());
    query::QueryEngine engine(db->get(), loaded.aion.get());
    server::BoltLikeServer server(&engine);
    auto port = server.Start();
    AION_CHECK(port.ok());
    auto client = server::BoltLikeClient::Connect(*port);
    AION_CHECK(client.ok());

    const graph::Timestamp half = w.max_ts / 2;
    double speedups[6];
    int column = 0;
    for (const size_t snapshots : {size_t{10}, size_t{100}}) {
      const graph::Timestamp step =
          std::max<graph::Timestamp>(1, (w.max_ts - half) / snapshots);

      // Full recomputation baseline per snapshot (embedded, the strongest
      // non-incremental contender: no per-snapshot compile, still replays
      // the whole algorithm).
      auto full_run = [&](const std::string& algo_name) -> double {
        bench::Timer timer;
        for (graph::Timestamp t = half; t <= w.max_ts; t += step) {
          auto view = loaded.aion->GetGraphAt(t);
          AION_CHECK(view.ok());
          if (algo_name == "avg") {
            algo::AggregateRelationshipProperty(**view, "w");
          } else {
            graph::CsrGraph csr = graph::CsrGraph::Build(**view);
            if (algo_name == "bfs") {
              if (csr.num_nodes() > 0) algo::Bfs(csr, 0);
            } else {
              algo::PageRank(csr);  // paper setting: epsilon 0.01
            }
          }
        }
        return timer.Seconds();
      };

      auto proc_run = [&](const std::string& call) -> double {
        bench::Timer timer;
        auto result = (*client)->Run(call);
        AION_CHECK(result.ok());
        return timer.Seconds();
      };

      const std::string range = std::to_string(half) + ", " +
                                std::to_string(w.max_ts) + ", " +
                                std::to_string(step);
      speedups[column] =
          full_run("avg") /
          proc_run("CALL aion.incremental.avg('w', " + range + ")");
      speedups[column + 2] =
          full_run("bfs") /
          proc_run("CALL aion.incremental.bfs(0, " + range + ")");
      speedups[column + 4] =
          full_run("pr") /
          proc_run("CALL aion.incremental.pagerank(" + range +
                   ")");
      ++column;
    }
    printf("%-12s %9.1fx %9.1fx %9.1fx %9.1fx %9.1fx %9.1fx\n",
           spec.name.c_str(), speedups[0], speedups[1], speedups[2],
           speedups[3], speedups[4], speedups[5]);
    server.Stop();
  }
  bench::PrintFooter();
  printf("Expected: speedups at or above Fig 12's (9-61x AVG, 3.5-12x BFS\n"
         "in the paper): one procedure call replaces per-snapshot queries.\n");
  return 0;
}
