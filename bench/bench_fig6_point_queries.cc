// Fig 6 — Fetching random relationships: point-query throughput of Aion
// (LineageStore: page-backed B+Tree reads, O(log |U_R|)) versus the
// Raphtory-like baseline (in-memory arrays with linear validity checks,
// 2|U_R^n| per lookup, Table 4).
//
// Paper shape: Raphtory ~30% ahead on the small graphs (everything in
// cache), gap closing below ~7% as graphs grow and its per-node history
// scans lengthen; Aion stays within the same order of magnitude throughout.
#include <algorithm>

#include "baselines/raphtory_like.h"
#include "bench/bench_common.h"
#include "query/engine.h"
#include "txn/graphdb.h"
#include "util/random.h"

using namespace aion;  // NOLINT

namespace {

// Workload-registry overhead on the engine's point-query path: the same
// temporal point statements with the live-query registry tracking every
// statement versus with it disabled (Register returns null and the engine
// takes its untimed fast path). The acceptance bar for the observatory is
// <= 2% on this path.
std::string RegistryOverheadJson(double scale) {
  workload::Workload w = workload::Generate(workload::Dblp(scale), "w");
  core::AionStore::Options options;
  options.lineage_mode = core::AionStore::LineageMode::kSync;
  options.snapshot_policy.kind = core::SnapshotPolicy::Kind::kDisabled;
  bench::LoadedAion loaded = bench::LoadAion(w, options);
  auto db = txn::GraphDatabase::OpenInMemory();
  AION_CHECK(db.ok());
  query::QueryEngine engine(db->get(), loaded.aion.get());

  const size_t ops = bench::OpsFor(w.num_nodes, 1000, 8000);
  util::Random rng(7);
  std::vector<std::string> statements;
  statements.reserve(ops);
  for (size_t i = 0; i < ops; ++i) {
    statements.push_back(
        "USE gdb FOR SYSTEM_TIME AS OF " +
        std::to_string(1 + rng.Uniform(w.max_ts)) +
        " MATCH (n) WHERE id(n) = " + std::to_string(rng.Uniform(w.num_nodes)) +
        " RETURN n");
  }
  // Warm caches before anything is timed.
  for (const std::string& statement : statements) {
    AION_CHECK(engine.Execute(statement).ok());
  }

  // The effect being measured is ~100ns on a multi-microsecond statement,
  // far below this machine's drift, so the two modes pair at statement
  // granularity: every statement executes twice back-to-back — once
  // tracked, once not, the order alternating by statement index and pass —
  // and each pair yields one (tracked, untracked) sample microseconds
  // apart. Aggregate means are still wrecked by millisecond scheduler
  // preemptions landing on one leg of a few pairs, so the summary is the
  // median per-pair delta over the median untracked cost — outliers drop
  // out entirely.
  constexpr int kPasses = 4;
  std::vector<double> deltas, off_samples;
  deltas.reserve(kPasses * statements.size());
  off_samples.reserve(kPasses * statements.size());
  for (int pass = 0; pass < kPasses; ++pass) {
    for (size_t i = 0; i < statements.size(); ++i) {
      const bool on_first = (i + static_cast<size_t>(pass)) % 2 == 0;
      double on_ns = 0, off_ns = 0;
      for (int leg = 0; leg < 2; ++leg) {
        const bool track = (leg == 0) == on_first;
        engine.workload()->set_enabled(track);
        bench::Timer timer;
        AION_CHECK(engine.Execute(statements[i]).ok());
        (track ? on_ns : off_ns) = timer.Seconds() * 1e9;
      }
      deltas.push_back(on_ns - off_ns);
      off_samples.push_back(off_ns);
    }
  }
  engine.workload()->set_enabled(true);
  auto median = [](std::vector<double>& xs) {
    std::nth_element(xs.begin(), xs.begin() + xs.size() / 2, xs.end());
    return xs[xs.size() / 2];
  };
  const double median_delta = median(deltas);
  const double median_off = median(off_samples);
  const double on_ops_rate = 1e9 / (median_off + median_delta);
  const double off_ops_rate = 1e9 / median_off;
  const double overhead_pct = 100.0 * median_delta / median_off;
  printf("registry overhead (engine point queries, %d statement-paired "
         "passes, %zu pairs):\n"
         "  tracked %.0f ops/s, untracked %.0f ops/s, overhead %.2f%%\n",
         kPasses, deltas.size(), on_ops_rate, off_ops_rate, overhead_pct);
  char buf[160];
  snprintf(buf, sizeof(buf),
           "{\"on_ops\": %.0f, \"off_ops\": %.0f, \"overhead_pct\": %.2f}",
           on_ops_rate, off_ops_rate, overhead_pct);
  return buf;
}

// ISSUE 10: the engine's point and history paths across the morsel
// dispatcher's worker-count sweep. Single-core machine — the numbers
// document that parallel dispatch does not regress these paths rather than
// demonstrating core scaling; byte-identical results at every width are
// enforced by the ParallelExec test suite.
std::string WorkerSweepJson(double scale) {
  workload::Workload w = workload::Generate(workload::Dblp(scale), "w");
  core::AionStore::Options options;
  options.lineage_mode = core::AionStore::LineageMode::kSync;
  options.snapshot_policy.kind = core::SnapshotPolicy::Kind::kDisabled;
  bench::LoadedAion loaded = bench::LoadAion(w, options);
  auto db = txn::GraphDatabase::OpenInMemory();
  AION_CHECK(db.ok());
  query::QueryEngine engine(db->get(), loaded.aion.get());

  const size_t ops = bench::OpsFor(w.num_nodes, 500, 2000);
  util::Random rng(23);
  std::vector<std::string> points, histories;
  points.reserve(ops);
  histories.reserve(ops);
  for (size_t i = 0; i < ops; ++i) {
    const std::string id = std::to_string(rng.Uniform(w.num_nodes));
    points.push_back("USE gdb FOR SYSTEM_TIME AS OF " +
                     std::to_string(1 + rng.Uniform(w.max_ts)) +
                     " MATCH (n) WHERE id(n) = " + id + " RETURN n");
    histories.push_back("USE gdb FOR SYSTEM_TIME BETWEEN 1 AND " +
                        std::to_string(w.max_ts) +
                        " MATCH (n) WHERE id(n) = " + id + " RETURN n");
  }
  for (const std::string& s : points) AION_CHECK(engine.Execute(s).ok());
  for (const std::string& s : histories) AION_CHECK(engine.Execute(s).ok());

  std::string sweep = "[";
  for (size_t workers : {1u, 2u, 4u, 8u}) {
    query::ExecOptions exec;
    exec.morsel_size = 32;
    exec.max_workers = workers;
    exec.min_parallel_items = 64;
    engine.set_exec_options(exec);
    bench::Timer timer;
    for (const std::string& s : points) AION_CHECK(engine.Execute(s).ok());
    const double point_ops = static_cast<double>(ops) / timer.Seconds();
    timer.Reset();
    for (const std::string& s : histories) {
      AION_CHECK(engine.Execute(s).ok());
    }
    const double history_ops = static_cast<double>(ops) / timer.Seconds();
    printf("worker sweep %zu: point %.0f ops/s, history %.0f ops/s\n",
           workers, point_ops, history_ops);
    char buf[112];
    snprintf(buf, sizeof(buf),
             "%s{\"workers\": %zu, \"point_ops\": %.0f, "
             "\"history_ops\": %.0f}",
             workers == 1 ? "" : ", ", workers, point_ops, history_ops);
    sweep += buf;
  }
  sweep += "]";
  return sweep;
}

}  // namespace

int main() {
  const double scale = workload::BenchScaleFromEnv(0.001);
  bench::PrintHeader("Fig 6",
                     "point-query throughput (10^5 ops/s), Aion vs Raphtory",
                     scale);
  printf("%-12s %14s %18s %12s\n", "Dataset", "Aion (1e5/s)",
         "Raphtory (1e5/s)", "Raph/Aion");

  std::string json = "{\n  \"figure\": \"fig6\",\n  \"scale\": " +
                     std::to_string(scale) + ",\n  \"datasets\": {\n";
  bool first = true;
  for (const workload::DatasetSpec& spec : workload::AllDatasets(scale)) {
    workload::Workload w = workload::Generate(spec);

    core::AionStore::Options options;
    options.lineage_mode = core::AionStore::LineageMode::kSync;
    options.snapshot_policy.kind = core::SnapshotPolicy::Kind::kDisabled;
    bench::LoadedAion loaded = bench::LoadAion(w, options);

    baselines::RaphtoryLike raphtory;
    AION_CHECK_OK(raphtory.IngestAll(w.updates));

    const size_t ops = bench::OpsFor(w.num_rels, 2000, 20000);
    util::Random rng(7);
    std::vector<std::pair<graph::RelId, graph::Timestamp>> probes(ops);
    for (auto& [rel, ts] : probes) {
      rel = rng.Uniform(w.num_rels);
      ts = 1 + rng.Uniform(w.max_ts);
    }

    bench::Timer timer;
    size_t aion_hits = 0;
    for (const auto& [rel, ts] : probes) {
      auto result = loaded.aion->GetRelationshipAt(rel, ts);
      AION_CHECK(result.ok());
      aion_hits += result->has_value() ? 1 : 0;
    }
    const double aion_tput = static_cast<double>(ops) / timer.Seconds();

    timer.Reset();
    size_t raph_hits = 0;
    for (const auto& [rel, ts] : probes) {
      raph_hits += raphtory.GetRelationshipAt(rel, ts).has_value() ? 1 : 0;
    }
    const double raph_tput = static_cast<double>(ops) / timer.Seconds();

    printf("%-12s %14.2f %18.2f %12.2fx   (hits %zu/%zu, dropped %llu)\n",
           spec.name.c_str(), aion_tput / 1e5, raph_tput / 1e5,
           raph_tput / aion_tput, aion_hits, raph_hits,
           static_cast<unsigned long long>(
               raphtory.dropped_parallel_edges()));
    char buf[192];
    snprintf(buf, sizeof(buf),
             "%s    \"%s\": {\"aion_ops\": %.0f, \"raphtory_ops\": %.0f, "
             "\"raph_over_aion\": %.2f}",
             first ? "" : ",\n", spec.name.c_str(), aion_tput, raph_tput,
             raph_tput / aion_tput);
    json += buf;
    first = false;
    bench::PrintMetricsJson(*loaded.aion, spec.name);
  }
  json += "\n  },\n  \"registry_overhead\": " + RegistryOverheadJson(scale) +
          ",\n  \"worker_sweep\": " + WorkerSweepJson(scale) + "\n}\n";
  bench::PrintFooter();
  printf("Expected: both systems within the same order of magnitude;\n"
         "Raphtory ahead on small graphs, Aion closing as history grows.\n");
  bench::WriteBenchJson(json, "BENCH_fig6.json");
  return 0;
}
