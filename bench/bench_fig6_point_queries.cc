// Fig 6 — Fetching random relationships: point-query throughput of Aion
// (LineageStore: page-backed B+Tree reads, O(log |U_R|)) versus the
// Raphtory-like baseline (in-memory arrays with linear validity checks,
// 2|U_R^n| per lookup, Table 4).
//
// Paper shape: Raphtory ~30% ahead on the small graphs (everything in
// cache), gap closing below ~7% as graphs grow and its per-node history
// scans lengthen; Aion stays within the same order of magnitude throughout.
#include "baselines/raphtory_like.h"
#include "bench/bench_common.h"
#include "util/random.h"

using namespace aion;  // NOLINT

int main() {
  const double scale = workload::BenchScaleFromEnv(0.001);
  bench::PrintHeader("Fig 6",
                     "point-query throughput (10^5 ops/s), Aion vs Raphtory",
                     scale);
  printf("%-12s %14s %18s %12s\n", "Dataset", "Aion (1e5/s)",
         "Raphtory (1e5/s)", "Raph/Aion");

  std::string json = "{\n  \"figure\": \"fig6\",\n  \"scale\": " +
                     std::to_string(scale) + ",\n  \"datasets\": {\n";
  bool first = true;
  for (const workload::DatasetSpec& spec : workload::AllDatasets(scale)) {
    workload::Workload w = workload::Generate(spec);

    core::AionStore::Options options;
    options.lineage_mode = core::AionStore::LineageMode::kSync;
    options.snapshot_policy.kind = core::SnapshotPolicy::Kind::kDisabled;
    bench::LoadedAion loaded = bench::LoadAion(w, options);

    baselines::RaphtoryLike raphtory;
    AION_CHECK_OK(raphtory.IngestAll(w.updates));

    const size_t ops = bench::OpsFor(w.num_rels, 2000, 20000);
    util::Random rng(7);
    std::vector<std::pair<graph::RelId, graph::Timestamp>> probes(ops);
    for (auto& [rel, ts] : probes) {
      rel = rng.Uniform(w.num_rels);
      ts = 1 + rng.Uniform(w.max_ts);
    }

    bench::Timer timer;
    size_t aion_hits = 0;
    for (const auto& [rel, ts] : probes) {
      auto result = loaded.aion->GetRelationshipAt(rel, ts);
      AION_CHECK(result.ok());
      aion_hits += result->has_value() ? 1 : 0;
    }
    const double aion_tput = static_cast<double>(ops) / timer.Seconds();

    timer.Reset();
    size_t raph_hits = 0;
    for (const auto& [rel, ts] : probes) {
      raph_hits += raphtory.GetRelationshipAt(rel, ts).has_value() ? 1 : 0;
    }
    const double raph_tput = static_cast<double>(ops) / timer.Seconds();

    printf("%-12s %14.2f %18.2f %12.2fx   (hits %zu/%zu, dropped %llu)\n",
           spec.name.c_str(), aion_tput / 1e5, raph_tput / 1e5,
           raph_tput / aion_tput, aion_hits, raph_hits,
           static_cast<unsigned long long>(
               raphtory.dropped_parallel_edges()));
    char buf[192];
    snprintf(buf, sizeof(buf),
             "%s    \"%s\": {\"aion_ops\": %.0f, \"raphtory_ops\": %.0f, "
             "\"raph_over_aion\": %.2f}",
             first ? "" : ",\n", spec.name.c_str(), aion_tput, raph_tput,
             raph_tput / aion_tput);
    json += buf;
    first = false;
    bench::PrintMetricsJson(*loaded.aion, spec.name);
  }
  json += "\n  }\n}\n";
  bench::PrintFooter();
  printf("Expected: both systems within the same order of magnitude;\n"
         "Raphtory ahead on small graphs, Aion closing as history grows.\n");
  bench::WriteBenchJson(json, "BENCH_fig6.json");
  return 0;
}
