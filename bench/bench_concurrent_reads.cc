// Concurrent-read scaling: aggregate temporal-query throughput as reader
// threads are added against one AionStore. Each reader issues a mix of
// GetGraphAt / GetDiff / Expand at random timestamps; the store serves
// them through the sharded GraphStore, epoch pinning, and parallel replay
// (no global reader latch anywhere on the path).
//
// Expected shape: near-linear QPS growth while threads <= cores (>= 3x at
// 8 threads on an 8-core box); on fewer cores the curve flattens at the
// core count but must never dip below the single-thread baseline.
//
// AION_BENCH_SECONDS controls the measured interval per thread count
// (default 1.0; the CI smoke run uses a shorter one).
#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "util/random.h"

using namespace aion;  // NOLINT

namespace {

double SecondsFromEnv() {
  const char* value = std::getenv("AION_BENCH_SECONDS");
  if (value == nullptr) return 1.0;
  const double parsed = std::atof(value);
  return parsed > 0 ? parsed : 1.0;
}

uint64_t Percentile(std::vector<uint64_t>* nanos, double p) {
  if (nanos->empty()) return 0;
  const size_t idx = static_cast<size_t>(p * (nanos->size() - 1));
  std::nth_element(nanos->begin(), nanos->begin() + idx, nanos->end());
  return (*nanos)[idx];
}

struct RunResult {
  double qps = 0;
  uint64_t p50_nanos = 0;
  uint64_t p99_nanos = 0;
};

RunResult RunReaders(core::AionStore* aion, size_t threads,
                     graph::Timestamp max_ts, double seconds) {
  std::atomic<bool> stop{false};
  std::vector<uint64_t> ops(threads, 0);
  std::vector<std::vector<uint64_t>> latencies(threads);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (size_t r = 0; r < threads; ++r) {
    workers.emplace_back([&, r] {
      util::Random rng(1000 + static_cast<uint32_t>(r));
      auto& lat = latencies[r];
      while (!stop.load(std::memory_order_acquire)) {
        const graph::Timestamp t = 1 + rng.Uniform(max_ts);
        const auto begin = std::chrono::steady_clock::now();
        switch (rng.Uniform(5)) {
          case 0: {
            auto diff = aion->GetDiff(t, t + max_ts / 16 + 1);
            AION_CHECK(diff.ok());
            break;
          }
          case 1: {
            auto hops = aion->Expand(rng.Uniform(64), graph::Direction::kBoth,
                                     2, t);
            AION_CHECK(hops.ok());
            break;
          }
          case 2: {
            // Frontier read ("the graph now"): served from the pinned
            // epoch without touching the TimeStore.
            auto view = aion->GetGraphAt(max_ts);
            AION_CHECK(view.ok());
            break;
          }
          default: {
            // Historical full-snapshot retrieval, the paper's dominant
            // read (Fig 7): sharded snapshot cache + replay.
            auto view = aion->GetGraphAt(t);
            AION_CHECK(view.ok());
            break;
          }
        }
        lat.push_back(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - begin)
                .count()));
        ++ops[r];
      }
    });
  }
  bench::Timer timer;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true, std::memory_order_release);
  for (std::thread& w : workers) w.join();
  const double elapsed = timer.Seconds();

  RunResult result;
  uint64_t total_ops = 0;
  std::vector<uint64_t> all;
  for (size_t r = 0; r < threads; ++r) {
    total_ops += ops[r];
    all.insert(all.end(), latencies[r].begin(), latencies[r].end());
  }
  result.qps = static_cast<double>(total_ops) / elapsed;
  result.p50_nanos = Percentile(&all, 0.50);
  result.p99_nanos = Percentile(&all, 0.99);
  return result;
}

}  // namespace

int main() {
  const double scale = workload::BenchScaleFromEnv(0.001);
  const double seconds = SecondsFromEnv();
  bench::PrintHeader("Concurrent reads",
                     "aggregate temporal-read throughput vs reader threads",
                     scale);

  workload::Workload w = workload::Generate(workload::Pokec(scale));
  core::AionStore::Options options;
  options.lineage_mode = core::AionStore::LineageMode::kDisabled;
  options.snapshot_policy.kind = core::SnapshotPolicy::Kind::kOperationBased;
  options.snapshot_policy.every = w.updates.size() / 32 + 1;
  bench::LoadedAion loaded = bench::LoadAion(w, options);

  printf("%8s %14s %12s %12s %10s\n", "threads", "QPS", "p50(us)", "p99(us)",
         "speedup");
  double baseline_qps = 0;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    const RunResult r =
        RunReaders(loaded.aion.get(), threads, w.max_ts, seconds);
    if (threads == 1) baseline_qps = r.qps;
    printf("%8zu %14.0f %12.1f %12.1f %9.2fx\n", threads, r.qps,
           r.p50_nanos / 1e3, r.p99_nanos / 1e3,
           baseline_qps > 0 ? r.qps / baseline_qps : 0.0);
  }
  bench::PrintFooter();
  bench::PrintMetricsJson(*loaded.aion, "pokec");
  return 0;
}
