// Fig 13 — Transactions using Bolt: end-to-end transactional throughput of
// temporal Cypher submitted over the bolt-like client-server protocol, with
// read-only, 10%-write, and 20%-write mixes. Reads fetch temporal graph
// entities at arbitrary time points; writes create nodes/relationships
// (updating Aion through the commit listener).
//
// Paper shape: read-only saturates the server (~37k q/s on their 32-core
// box); +10% writes costs ~20%, +20% writes ~35%.
#include <atomic>
#include <thread>

#include "bench/bench_common.h"
#include "server/server.h"
#include "txn/graphdb.h"
#include "util/random.h"

using namespace aion;  // NOLINT

namespace {

double RunMix(uint16_t port, size_t clients, size_t queries_per_client,
              double write_fraction, const workload::Workload& w) {
  std::atomic<size_t> failures{0};
  bench::Timer timer;
  std::vector<std::thread> threads;
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      auto client = server::BoltLikeClient::Connect(port);
      if (!client.ok()) {
        failures.fetch_add(queries_per_client);
        return;
      }
      util::Random rng(1000 + c);
      for (size_t q = 0; q < queries_per_client; ++q) {
        std::string text;
        if (rng.NextDouble() < write_fraction) {
          // Writes "create or update nodes and relationships" (Sec 6.7):
          // alternate creations with property updates on existing nodes.
          if (rng.Bernoulli(0.5)) {
            text = "CREATE (n:Client {c: " + std::to_string(c) + "})";
          } else {
            const graph::NodeId node = rng.Uniform(w.num_nodes);
            text = "MATCH (n) WHERE id(n) = " + std::to_string(node) +
                   " SET n.touched = " + std::to_string(q);
          }
        } else {
          const graph::NodeId node = rng.Uniform(w.num_nodes);
          const graph::Timestamp ts = 1 + rng.Uniform(w.max_ts);
          text = "USE gdb FOR SYSTEM_TIME AS OF " + std::to_string(ts) +
                 " MATCH (n) WHERE id(n) = " + std::to_string(node) +
                 " RETURN n";
        }
        auto result = (*client)->Run(text);
        if (!result.ok()) {
          if (failures.fetch_add(1) == 0) {
            fprintf(stderr, "query failed: %s -> %s\n", text.c_str(),
                    result.status().ToString().c_str());
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  AION_CHECK(failures.load() == 0);
  return static_cast<double>(clients * queries_per_client) /
         timer.Seconds();
}

}  // namespace

int main() {
  const double scale = workload::BenchScaleFromEnv(0.001);
  bench::PrintHeader(
      "Fig 13", "Cypher-over-bolt transactional throughput (10^3 q/s)",
      scale);
  printf("%-12s %14s %16s %16s\n", "Dataset", "read-only", "10% writes",
         "20% writes");

  const std::vector<workload::DatasetSpec> datasets = {
      workload::Dblp(scale), workload::WikiTalk(scale),
      workload::Pokec(scale), workload::LiveJournal(scale)};

  for (const workload::DatasetSpec& spec : datasets) {
    workload::Workload w = workload::Generate(spec);

    bench::TempDir dir("aion_fig13_");
    auto db = txn::GraphDatabase::OpenInMemory();
    AION_CHECK(db.ok());
    core::AionStore::Options options;
    options.dir = dir.path() + "/aion";
    options.snapshot_policy.kind = core::SnapshotPolicy::Kind::kDisabled;
    auto aion = core::AionStore::Open(options);
    AION_CHECK(aion.ok());
    (*db)->RegisterListener(aion->get());
    // Load through the transactional path so ids match the host db.
    constexpr size_t kBatch = 1000;
    size_t i = 0;
    while (i < w.updates.size()) {
      auto txn = (*db)->Begin();
      const size_t end = std::min(i + kBatch, w.updates.size());
      for (; i < end; ++i) txn->Add(w.updates[i]);
      AION_CHECK(txn->Commit().ok());
    }
    (*aion)->DrainBackground();
    w.max_ts = (*db)->LastCommitTimestamp();

    query::QueryEngine engine(db->get(), aion->get());
    server::BoltLikeServer server(&engine);
    auto port = server.Start();
    AION_CHECK(port.ok());

    const size_t clients = 4;  // single-core host: a few client threads
    const size_t per_client = 1000;
    RunMix(*port, clients, 200, 0.0, w);  // warm-up
    // Median of three runs per mix: single-core scheduling makes individual
    // sub-second runs noisy, especially on the smallest dataset.
    auto median_of_3 = [&](double write_fraction) {
      double a = RunMix(*port, clients, per_client, write_fraction, w);
      double b = RunMix(*port, clients, per_client, write_fraction, w);
      double c = RunMix(*port, clients, per_client, write_fraction, w);
      if (a > b) std::swap(a, b);
      if (b > c) std::swap(b, c);
      if (a > b) std::swap(a, b);
      return b;
    };
    const double ro = median_of_3(0.0);
    const double w10 = median_of_3(0.1);
    const double w20 = median_of_3(0.2);
    printf("%-12s %14.2f %9.2f (%3.0f%%) %9.2f (%3.0f%%)\n",
           spec.name.c_str(), ro / 1e3, w10 / 1e3, w10 / ro * 100,
           w20 / 1e3, w20 / ro * 100);
    server.Stop();
  }
  bench::PrintFooter();
  printf("Expected: throughput decreases as the write share rises\n"
         "(paper: -20%% at 10%% writes, -35%% at 20%% writes).\n");
  return 0;
}
