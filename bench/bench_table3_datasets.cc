// Table 3 — Evaluation datasets: generates the six dataset analogues and
// reports |V|, |E|, average degree, directedness, and the in-memory sizes
// of the host graph representation ("Neo4j" column analogue: MemoryGraph
// with adjacency) versus Aion's compute representation (Sec 6.1 accounting:
// ~60 B/node, ~68 B/rel, 4 B per neighbourhood entry).
#include "bench/bench_common.h"
#include "graph/memgraph.h"

using namespace aion;  // NOLINT — benchmark binary

int main() {
  const double scale = workload::BenchScaleFromEnv(0.001);
  bench::PrintHeader("Table 3", "evaluation datasets", scale);
  printf("%-12s %-14s %10s %12s %8s %9s %14s %14s\n", "Dataset", "Domain",
         "|V|", "|E|", "|E|/|V|", "Directed", "Host (MB)", "Aion (MB)");

  const char* domains[] = {"citation", "communication", "social",
                           "social",   "hyperlink",     "social"};
  int i = 0;
  for (const workload::DatasetSpec& spec : workload::AllDatasets(scale)) {
    workload::Workload w = workload::Generate(spec);
    graph::MemoryGraph g;
    AION_CHECK_OK(g.ApplyAll(w.updates));

    // Host representation: entities + adjacency + std::optional/vector
    // overheads (the "Neo4j in-memory" analogue).
    const double host_mb =
        static_cast<double>(g.EstimateMemoryBytes() +
                            g.NumNodes() * 16 /* record headers */) /
        (1024.0 * 1024.0);
    // Aion's compute representation (Sec 6.1): 60 B/node, 68 B/rel, 4 B per
    // in/out neighbourhood entry.
    const double aion_mb =
        static_cast<double>(g.NumNodes() * 60 + g.NumRelationships() * 68 +
                            2 * g.NumRelationships() * 4) /
        (1024.0 * 1024.0);
    printf("%-12s %-14s %10zu %12zu %8.1f %9s %14.2f %14.2f\n",
           spec.name.c_str(), domains[i++], g.NumNodes(),
           g.NumRelationships(),
           static_cast<double>(g.NumRelationships()) /
               static_cast<double>(g.NumNodes()),
           spec.doubled_from_undirected ? "no" : "yes", host_mb, aion_mb);
  }
  bench::PrintFooter();
  printf("Paper shape: Aion's in-memory sizes track the host's closely\n"
         "(175 vs 180 MB on DBLP up to 17.2 vs 18.1 GB on Orkut).\n");
  return 0;
}
