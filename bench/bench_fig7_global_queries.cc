// Fig 7 — Fetching random snapshots: global-query runtime of Aion
// (TimeStore Copy+Log: closest snapshot + forward replay, with the
// GraphStore LRU cache) versus the Raphtory-like baseline (all-history
// scan + filter) and the Gradoop-like baseline (table scan + filter +
// dangling-edge verification join).
//
// Paper shape: Aion fastest (3–7.3x over Raphtory on the smaller datasets,
// 30–50% ahead on the larger ones once snapshots stop fitting the cache);
// Gradoop slowest by up to an order of magnitude (6.6–52.2x).
#include "baselines/gradoop_like.h"
#include "baselines/raphtory_like.h"
#include "bench/bench_common.h"
#include "util/random.h"

using namespace aion;  // NOLINT

int main() {
  const double scale = workload::BenchScaleFromEnv(0.001);
  bench::PrintHeader(
      "Fig 7", "random full-snapshot retrieval runtime (ms per snapshot)",
      scale);
  printf("%-12s %12s %14s %14s %10s %10s\n", "Dataset", "Aion(ms)",
         "Raphtory(ms)", "Gradoop(ms)", "Raph/Aion", "Grad/Aion");

  std::string json = "{\n  \"figure\": \"fig7\",\n  \"scale\": " +
                     std::to_string(scale) + ",\n  \"datasets\": {\n";
  bool first = true;
  for (const workload::DatasetSpec& spec : workload::AllDatasets(scale)) {
    workload::Workload w = workload::Generate(spec);

    core::AionStore::Options options;
    options.lineage_mode = core::AionStore::LineageMode::kDisabled;
    // Eager snapshots every ~1/8 of the stream (the Copy part of Copy+Log).
    options.snapshot_policy.kind = core::SnapshotPolicy::Kind::kOperationBased;
    options.snapshot_policy.every = w.updates.size() / 32 + 1;
    bench::LoadedAion loaded = bench::LoadAion(w, options);

    baselines::RaphtoryLike raphtory;
    AION_CHECK_OK(raphtory.IngestAll(w.updates));
    baselines::GradoopLike gradoop;
    AION_CHECK_OK(gradoop.IngestAll(w.updates));

    const size_t runs = 6;
    util::Random rng(11);
    std::vector<graph::Timestamp> times(runs);
    for (auto& t : times) t = 1 + rng.Uniform(w.max_ts);

    bench::Timer timer;
    size_t aion_nodes = 0;
    for (graph::Timestamp t : times) {
      auto view = loaded.aion->GetGraphAt(t);
      AION_CHECK(view.ok());
      aion_nodes += (*view)->NumNodes();
    }
    const double aion_ms = timer.Seconds() * 1000 / runs;

    timer.Reset();
    size_t raph_nodes = 0;
    for (graph::Timestamp t : times) {
      raph_nodes += raphtory.SnapshotAt(t)->NumNodes();
    }
    const double raph_ms = timer.Seconds() * 1000 / runs;

    timer.Reset();
    size_t grad_nodes = 0;
    for (graph::Timestamp t : times) {
      grad_nodes += gradoop.SnapshotAt(t)->NumNodes();
    }
    const double grad_ms = timer.Seconds() * 1000 / runs;

    printf("%-12s %12.2f %14.2f %14.2f %9.1fx %9.1fx\n", spec.name.c_str(),
           aion_ms, raph_ms, grad_ms, raph_ms / aion_ms, grad_ms / aion_ms);
    AION_CHECK(aion_nodes == raph_nodes || spec.multigraph);
    (void)grad_nodes;
    char buf[224];
    snprintf(buf, sizeof(buf),
             "%s    \"%s\": {\"aion_ms\": %.3f, \"raphtory_ms\": %.3f, "
             "\"gradoop_ms\": %.3f, \"raph_over_aion\": %.2f, "
             "\"grad_over_aion\": %.2f}",
             first ? "" : ",\n", spec.name.c_str(), aion_ms, raph_ms,
             grad_ms, raph_ms / aion_ms, grad_ms / aion_ms);
    json += buf;
    first = false;
    bench::PrintMetricsJson(*loaded.aion, spec.name);
  }
  json += "\n  }\n}\n";
  bench::PrintFooter();
  printf("Expected: Aion < Raphtory < Gradoop; Gradoop worst by roughly an\n"
         "order of magnitude (all-history scan + dangling-edge join).\n");
  bench::WriteBenchJson(json, "BENCH_fig7.json");
  return 0;
}
