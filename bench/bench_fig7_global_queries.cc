// Fig 7 — Fetching random snapshots: global-query runtime of Aion
// (TimeStore Copy+Log: closest snapshot + forward replay, with the
// GraphStore LRU cache) versus the Raphtory-like baseline (all-history
// scan + filter) and the Gradoop-like baseline (table scan + filter +
// dangling-edge verification join).
//
// Paper shape: Aion fastest (3–7.3x over Raphtory on the smaller datasets,
// 30–50% ahead on the larger ones once snapshots stop fitting the cache);
// Gradoop slowest by up to an order of magnitude (6.6–52.2x).
#include "baselines/gradoop_like.h"
#include "baselines/raphtory_like.h"
#include "bench/bench_common.h"
#include "graph/csr.h"
#include "query/engine.h"
#include "txn/graphdb.h"
#include "util/random.h"

using namespace aion;  // NOLINT

namespace {

// ISSUE 10: repeated global analytics over one pinned snapshot. The
// baseline rebuilds the CSR projection from a fresh GetGraphAt on every
// iteration (the pre-cache behaviour); the cached path goes through
// AionStore::ProjectCsrAt, which pins the read epoch and serves the
// projection from the byte-budgeted LRU cache after the first build. The
// emitted speedup is projection-reuse over rebuild-per-query — this is a
// single-core machine, so wall-time wins come from the cache, not from
// core parallelism. Alongside, the same fixed-snapshot range scan runs
// through the query engine at a worker-count sweep so the morsel
// dispatcher's behaviour lands in the committed JSON too.
std::string CsrProjectionJson(double scale) {
  workload::Workload w = workload::Generate(workload::Dblp(scale), "w");
  core::AionStore::Options options;
  options.lineage_mode = core::AionStore::LineageMode::kDisabled;
  options.snapshot_policy.kind = core::SnapshotPolicy::Kind::kOperationBased;
  options.snapshot_policy.every = w.updates.size() / 8 + 1;
  bench::LoadedAion loaded = bench::LoadAion(w, options);
  const graph::Timestamp snapshot_ts = w.max_ts;

  const size_t runs = 24;
  bench::Timer timer;
  size_t rebuild_edges = 0;
  for (size_t i = 0; i < runs; ++i) {
    auto view = loaded.aion->GetGraphAt(snapshot_ts);
    AION_CHECK(view.ok());
    const graph::CsrGraph csr = graph::CsrGraph::Build(**view);
    rebuild_edges += csr.num_edges();
  }
  const double rebuild_ms = timer.Seconds() * 1000 / runs;

  timer.Reset();
  size_t cached_edges = 0;
  for (size_t i = 0; i < runs; ++i) {
    auto csr = loaded.aion->ProjectCsrAt(snapshot_ts);
    AION_CHECK(csr.ok());
    cached_edges += (*csr)->num_edges();
  }
  const double cached_ms = timer.Seconds() * 1000 / runs;
  AION_CHECK(rebuild_edges == cached_edges);

  const core::CsrCache::Stats cache = loaded.aion->csr_cache()->GetStats();
  const double hit_rate =
      cache.hits + cache.misses > 0
          ? static_cast<double>(cache.hits) / (cache.hits + cache.misses)
          : 0.0;
  printf("csr projection at fixed snapshot: rebuild %.3f ms/op, cached "
         "%.3f ms/op, speedup %.1fx, hit rate %.2f\n",
         rebuild_ms, cached_ms, rebuild_ms / cached_ms, hit_rate);

  // Worker-count sweep over the engine's range-scan path at the same
  // snapshot (morsel-driven NodeScan; single core, so the interesting
  // output is that results and costs stay flat rather than regressing).
  auto db = txn::GraphDatabase::OpenInMemory();
  AION_CHECK(db.ok());
  query::QueryEngine engine(db->get(), loaded.aion.get());
  const std::string scan = "USE gdb FOR SYSTEM_TIME AS OF " +
                           std::to_string(snapshot_ts) +
                           " MATCH (n) RETURN count(*)";
  std::string sweep = "[";
  for (size_t workers : {1u, 2u, 4u, 8u}) {
    query::ExecOptions exec;
    exec.morsel_size = 32;
    exec.max_workers = workers;
    exec.min_parallel_items = 1;
    engine.set_exec_options(exec);
    const size_t scan_runs = 8;
    bench::Timer scan_timer;
    for (size_t i = 0; i < scan_runs; ++i) {
      AION_CHECK(engine.Execute(scan).ok());
    }
    const double scan_ms = scan_timer.Seconds() * 1000 / scan_runs;
    char buf[96];
    snprintf(buf, sizeof(buf), "%s{\"workers\": %zu, \"scan_ms\": %.3f}",
             workers == 1 ? "" : ", ", workers, scan_ms);
    sweep += buf;
    printf("range scan at %zu workers: %.3f ms/query\n", workers, scan_ms);
  }
  sweep += "]";

  char buf[352];
  snprintf(buf, sizeof(buf),
           "{\"rebuild_ms\": %.3f, \"cached_ms\": %.3f, "
           "\"speedup_cached_over_rebuild\": %.2f, "
           "\"csr_cache_hit_rate\": %.3f, \"worker_sweep\": %s}",
           rebuild_ms, cached_ms, rebuild_ms / cached_ms, hit_rate,
           sweep.c_str());
  return buf;
}

}  // namespace

int main() {
  const double scale = workload::BenchScaleFromEnv(0.001);
  bench::PrintHeader(
      "Fig 7", "random full-snapshot retrieval runtime (ms per snapshot)",
      scale);
  printf("%-12s %12s %14s %14s %10s %10s\n", "Dataset", "Aion(ms)",
         "Raphtory(ms)", "Gradoop(ms)", "Raph/Aion", "Grad/Aion");

  std::string json = "{\n  \"figure\": \"fig7\",\n  \"scale\": " +
                     std::to_string(scale) + ",\n  \"datasets\": {\n";
  bool first = true;
  for (const workload::DatasetSpec& spec : workload::AllDatasets(scale)) {
    workload::Workload w = workload::Generate(spec);

    core::AionStore::Options options;
    options.lineage_mode = core::AionStore::LineageMode::kDisabled;
    // Eager snapshots every ~1/8 of the stream (the Copy part of Copy+Log).
    options.snapshot_policy.kind = core::SnapshotPolicy::Kind::kOperationBased;
    options.snapshot_policy.every = w.updates.size() / 32 + 1;
    bench::LoadedAion loaded = bench::LoadAion(w, options);

    baselines::RaphtoryLike raphtory;
    AION_CHECK_OK(raphtory.IngestAll(w.updates));
    baselines::GradoopLike gradoop;
    AION_CHECK_OK(gradoop.IngestAll(w.updates));

    const size_t runs = 6;
    util::Random rng(11);
    std::vector<graph::Timestamp> times(runs);
    for (auto& t : times) t = 1 + rng.Uniform(w.max_ts);

    bench::Timer timer;
    size_t aion_nodes = 0;
    for (graph::Timestamp t : times) {
      auto view = loaded.aion->GetGraphAt(t);
      AION_CHECK(view.ok());
      aion_nodes += (*view)->NumNodes();
    }
    const double aion_ms = timer.Seconds() * 1000 / runs;

    timer.Reset();
    size_t raph_nodes = 0;
    for (graph::Timestamp t : times) {
      raph_nodes += raphtory.SnapshotAt(t)->NumNodes();
    }
    const double raph_ms = timer.Seconds() * 1000 / runs;

    timer.Reset();
    size_t grad_nodes = 0;
    for (graph::Timestamp t : times) {
      grad_nodes += gradoop.SnapshotAt(t)->NumNodes();
    }
    const double grad_ms = timer.Seconds() * 1000 / runs;

    printf("%-12s %12.2f %14.2f %14.2f %9.1fx %9.1fx\n", spec.name.c_str(),
           aion_ms, raph_ms, grad_ms, raph_ms / aion_ms, grad_ms / aion_ms);
    AION_CHECK(aion_nodes == raph_nodes || spec.multigraph);
    (void)grad_nodes;
    char buf[224];
    snprintf(buf, sizeof(buf),
             "%s    \"%s\": {\"aion_ms\": %.3f, \"raphtory_ms\": %.3f, "
             "\"gradoop_ms\": %.3f, \"raph_over_aion\": %.2f, "
             "\"grad_over_aion\": %.2f}",
             first ? "" : ",\n", spec.name.c_str(), aion_ms, raph_ms,
             grad_ms, raph_ms / aion_ms, grad_ms / aion_ms);
    json += buf;
    first = false;
    bench::PrintMetricsJson(*loaded.aion, spec.name);
  }
  json += "\n  },\n  \"csr_projection\": " + CsrProjectionJson(scale) +
          "\n}\n";
  bench::PrintFooter();
  printf("Expected: Aion < Raphtory < Gradoop; Gradoop worst by roughly an\n"
         "order of magnitude (all-history scan + dangling-edge join).\n");
  bench::WriteBenchJson(json, "BENCH_fig7.json");
  return 0;
}
