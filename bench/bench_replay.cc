// Workload replay — the capture file (src/obs/capture.h) turned into a
// regression benchmark. Phase 1 records a scripted mixed workload
// (latest-store matches, temporal point reads across both temporal routes,
// incremental procedures) against a freshly loaded store with capture
// enabled. Phase 2 rebuilds an identical store and re-executes the capture
// in order, asserting row-for-row identical results and reporting per-route
// latency deltas between the captured run and the replay. A route whose
// replay drifts far from its captured latency is a regression (or an
// environment change) localized to that store's read path.
#include <cinttypes>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "obs/capture.h"
#include "query/engine.h"
#include "txn/graphdb.h"

using namespace aion;  // NOLINT

namespace {

struct RouteTotals {
  uint64_t statements = 0;
  uint64_t rows = 0;
  uint64_t captured_nanos = 0;
  uint64_t replayed_nanos = 0;
};

// The scripted workload: deterministic, read-only (the store is preloaded
// by direct ingestion, so transactional CREATEs would collide with loaded
// node ids), touching every read route.
std::vector<std::string> ScriptedWorkload(const workload::Workload& w) {
  std::vector<std::string> statements;
  statements.push_back("MATCH (p:Person) RETURN p.name");
  statements.push_back("MATCH (n) RETURN count(*)");
  // Temporal point reads spread over ids and history; the planner routes
  // recent timestamps and old ones differently (timestore vs lineage),
  // which is exactly the per-route split the report breaks out.
  const size_t num_points =
      bench::OpsFor(w.num_nodes, /*lo=*/64, /*hi=*/512);
  for (size_t i = 0; i < num_points; ++i) {
    const uint64_t id = (i * 7919) % std::max<size_t>(1, w.num_nodes);
    const graph::Timestamp t =
        1 + (i * 104729) % std::max<graph::Timestamp>(1, w.max_ts);
    statements.push_back("USE gdb FOR SYSTEM_TIME AS OF " +
                         std::to_string(t) + " MATCH (n) WHERE id(n) = " +
                         std::to_string(id) + " RETURN n");
  }
  // Procedures: window scans and the incremental loop.
  const graph::Timestamp half = w.max_ts / 2;
  const graph::Timestamp step =
      std::max<graph::Timestamp>(1, (w.max_ts - half) / 16);
  statements.push_back("CALL aion.diffCount(0, " + std::to_string(w.max_ts) +
                       ")");
  statements.push_back("CALL aion.incremental.avg('w', " +
                       std::to_string(half) + ", " +
                       std::to_string(w.max_ts) + ", " +
                       std::to_string(step) + ")");
  return statements;
}

struct Instance {
  bench::LoadedAion loaded;
  std::unique_ptr<txn::GraphDatabase> db;
  std::unique_ptr<query::QueryEngine> engine;
};

Instance MakeInstance(const workload::Workload& w,
                      const std::string& capture_path) {
  Instance instance;
  core::AionStore::Options options;
  options.capture_path = capture_path;
  instance.loaded = bench::LoadAion(w, options, "aion_replay_");
  auto db = txn::GraphDatabase::OpenInMemory();
  AION_CHECK(db.ok());
  instance.db = std::move(*db);
  instance.db->RegisterListener(instance.loaded.aion.get());
  instance.engine = std::make_unique<query::QueryEngine>(
      instance.db.get(), instance.loaded.aion.get());
  return instance;
}

}  // namespace

int main() {
  const double scale = workload::BenchScaleFromEnv(0.001);
  bench::PrintHeader("Replay",
                     "captured workload replayed against a rebuilt store",
                     scale);

  workload::Workload w = workload::Generate(workload::Dblp(scale), "w");
  bench::TempDir capture_dir("aion_replay_capture_");
  const std::string capture_path = capture_dir.path() + "/capture.jsonl";

  // --- record -------------------------------------------------------------
  const std::vector<std::string> script = ScriptedWorkload(w);
  {
    Instance recording = MakeInstance(w, capture_path);
    AION_CHECK(recording.engine->capture()->enabled());
    for (const std::string& statement : script) {
      auto result = recording.engine->Execute(statement);
      AION_CHECK(result.ok());
    }
    AION_CHECK(recording.engine->capture()->total_recorded() ==
               script.size());
  }
  auto records = obs::WorkloadCapture::ReadFile(capture_path);
  AION_CHECK(records.ok());
  AION_CHECK(records->size() == script.size());

  // --- replay -------------------------------------------------------------
  Instance replaying = MakeInstance(w, /*capture_path=*/"");
  std::map<std::string, RouteTotals> routes;
  bool rows_match = true;
  for (const obs::WorkloadCapture::Record& record : *records) {
    bench::Timer timer;
    auto result = replaying.engine->Execute(record.text);
    AION_CHECK(result.ok());
    const uint64_t replayed_nanos =
        static_cast<uint64_t>(timer.Seconds() * 1e9);
    if (result->rows.size() != record.rows) {
      rows_match = false;
      printf("ROW MISMATCH: captured %" PRIu64 " replayed %zu for %s\n",
             record.rows, result->rows.size(), record.text.c_str());
    }
    RouteTotals& totals = routes[record.route];
    totals.statements += 1;
    totals.rows += record.rows;
    totals.captured_nanos += record.nanos;
    totals.replayed_nanos += replayed_nanos;
  }

  printf("%-10s %10s %10s %14s %14s %8s\n", "route", "stmts", "rows",
         "captured_ms", "replayed_ms", "delta");
  std::string routes_json;
  for (const auto& [route, totals] : routes) {
    const double captured_ms = totals.captured_nanos / 1e6;
    const double replayed_ms = totals.replayed_nanos / 1e6;
    const double delta_pct =
        totals.captured_nanos > 0
            ? 100.0 * (static_cast<double>(totals.replayed_nanos) -
                       static_cast<double>(totals.captured_nanos)) /
                  static_cast<double>(totals.captured_nanos)
            : 0.0;
    printf("%-10s %10" PRIu64 " %10" PRIu64 " %14.3f %14.3f %+7.1f%%\n",
           route.c_str(), totals.statements, totals.rows, captured_ms,
           replayed_ms, delta_pct);
    if (!routes_json.empty()) routes_json += ",";
    char buf[256];
    snprintf(buf, sizeof(buf),
             "{\"route\":\"%s\",\"statements\":%" PRIu64
             ",\"rows\":%" PRIu64 ",\"captured_nanos\":%" PRIu64
             ",\"replayed_nanos\":%" PRIu64 ",\"delta_pct\":%.2f}",
             route.c_str(), totals.statements, totals.rows,
             totals.captured_nanos, totals.replayed_nanos, delta_pct);
    routes_json += buf;
  }
  bench::PrintFooter();
  printf("rows_match: %s (%zu statements replayed)\n",
         rows_match ? "yes" : "NO", records->size());
  printf("Expected: every statement replays with an identical row count;\n"
         "per-route deltas reflect machine noise, not behavior drift.\n");

  char header[160];
  snprintf(header, sizeof(header),
           "{\"bench\":\"replay\",\"scale\":%g,\"statements\":%zu,"
           "\"rows_match\":%s,\"routes\":[",
           scale, records->size(), rows_match ? "true" : "false");
  bench::WriteBenchJson(std::string(header) + routes_json + "]}\n",
                        "BENCH_replay.json");
  return rows_match ? 0 : 1;
}
