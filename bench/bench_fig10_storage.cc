// Fig 10 — Temporal storage overhead: disk footprint of the host database
// (graph payload + WAL retained for recovery, the dominant fragment in the
// paper) versus the additional space used by TimeStore (log + time index +
// snapshots) and LineageStore (four entity-keyed indexes).
//
// Paper shape: Aion adds 29-41% on top of the host database's total disk
// cost, despite nominally storing updates twice — the variable-size
// records, deltas, and 4-byte string references keep the overhead modest.
#include "bench/bench_common.h"
#include "txn/graphdb.h"

using namespace aion;  // NOLINT

int main() {
  const double scale = workload::BenchScaleFromEnv(0.001);
  bench::PrintHeader("Fig 10", "temporal storage overhead on disk (MB)",
                     scale);
  printf("%-12s %12s %12s %14s %12s\n", "Dataset", "Host (MB)",
         "TimeStore", "LineageStore", "overhead");

  const std::vector<workload::DatasetSpec> datasets = {
      workload::Dblp(scale), workload::WikiTalk(scale),
      workload::Pokec(scale), workload::LiveJournal(scale)};

  for (const workload::DatasetSpec& spec : datasets) {
    workload::Workload w = workload::Generate(spec);

    bench::TempDir dir("aion_fig10_");
    // Host database with a real WAL on disk.
    txn::GraphDatabase::Options db_options;
    db_options.data_dir = dir.path() + "/db";
    auto db = txn::GraphDatabase::Open(db_options);
    AION_CHECK(db.ok());
    core::AionStore::Options options;
    options.dir = dir.path() + "/aion";
    options.lineage_mode = core::AionStore::LineageMode::kSync;
    options.snapshot_policy.kind = core::SnapshotPolicy::Kind::kOperationBased;
    options.snapshot_policy.every = w.updates.size() / 4 + 1;
    auto aion = core::AionStore::Open(options);
    AION_CHECK(aion.ok());
    (*db)->RegisterListener(aion->get());

    constexpr size_t kBatch = 1000;
    size_t i = 0;
    while (i < w.updates.size()) {
      auto txn = (*db)->Begin();
      const size_t end = std::min(i + kBatch, w.updates.size());
      for (; i < end; ++i) txn->Add(w.updates[i]);
      AION_CHECK(txn->Commit().ok());
    }
    (*aion)->DrainBackground();
    AION_CHECK_OK((*aion)->Flush());
    // Host footprint = fixed-size record store files (Neo4j-style
    // checkpoint) + transaction logs retained for recovery (the paper's
    // dominant fragment).
    AION_CHECK_OK((*db)->Checkpoint());

    const double mb = 1024.0 * 1024.0;
    const core::AionStore::Introspection info = (*aion)->Introspect();
    const double host_mb = static_cast<double>((*db)->TotalDiskBytes()) / mb;
    const double ts_mb = static_cast<double>(info.timestore_size_bytes) / mb;
    const double ls_mb = static_cast<double>(info.lineage_size_bytes) / mb;
    printf("%-12s %12.2f %12.2f %14.2f %11.0f%%\n", spec.name.c_str(),
           host_mb, ts_mb, ls_mb, (ts_mb + ls_mb) / host_mb * 100.0);
  }
  bench::PrintFooter();
  printf("Paper shape: temporal stores add a modest fraction relative to\n"
         "the host's total footprint (29-41%% in the paper, where Neo4j's\n"
         "indexes+txn logs inflate the base by 6-9x the raw graph).\n");
  return 0;
}
