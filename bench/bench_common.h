// Shared utilities for the per-figure/table benchmark binaries. Every
// binary regenerates one table or figure of the paper's evaluation
// (Sec 6): it prints the same rows/series the paper reports, at a dataset
// scale controlled by AION_BENCH_SCALE (default 0.001 of the paper's
// sizes — the shapes, not the absolute numbers, are the reproduction
// target; see EXPERIMENTS.md).
#ifndef AION_BENCH_BENCH_COMMON_H_
#define AION_BENCH_BENCH_COMMON_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/aion.h"
#include "storage/file.h"
#include "util/logging.h"
#include "workload/generator.h"

namespace aion::bench {

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  void Reset() { start_ = std::chrono::steady_clock::now(); }
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// RAII temp directory for a benchmark run.
class TempDir {
 public:
  explicit TempDir(const std::string& prefix) {
    auto dir = storage::MakeTempDir(prefix);
    AION_CHECK(dir.ok());
    path_ = *dir;
  }
  ~TempDir() { (void)storage::RemoveDirRecursively(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// An Aion instance populated with a workload (direct ingestion; all
/// background work drained).
struct LoadedAion {
  std::unique_ptr<TempDir> dir;
  std::unique_ptr<core::AionStore> aion;
  workload::Workload workload;
  double ingest_seconds = 0;
};

inline LoadedAion LoadAion(const workload::Workload& workload,
                           core::AionStore::Options options = {},
                           const std::string& dir_prefix = "aion_bench_") {
  LoadedAion loaded;
  loaded.dir = std::make_unique<TempDir>(dir_prefix);
  options.dir = loaded.dir->path() + "/aion";
  auto aion = core::AionStore::Open(options);
  AION_CHECK(aion.ok());
  loaded.aion = std::move(*aion);
  loaded.workload = workload;
  Timer timer;
  // Batched load: consecutive same-ts runs stay one transaction each, but
  // the whole stream costs one IngestBatch (one log write + one sorted
  // index load per chunk) instead of one Ingest per update.
  constexpr size_t kLoadChunk = 1024;
  core::WriteBatch batch;
  for (const graph::GraphUpdate& u : workload.updates) {
    batch.Add(u.ts, u);
    if (batch.num_transactions() >= kLoadChunk) {
      AION_CHECK_OK(loaded.aion->IngestBatch(std::move(batch)));
      batch.Clear();
    }
  }
  AION_CHECK_OK(loaded.aion->IngestBatch(std::move(batch)));
  loaded.aion->DrainBackground();
  loaded.ingest_seconds = timer.Seconds();
  return loaded;
}

inline void PrintHeader(const std::string& figure,
                        const std::string& description, double scale) {
  printf("==============================================================\n");
  printf("%s — %s\n", figure.c_str(), description.c_str());
  printf("dataset scale: %g of the paper's sizes (AION_BENCH_SCALE)\n",
         scale);
  printf("==============================================================\n");
}

inline void PrintFooter() {
  printf("--------------------------------------------------------------\n");
}

/// Emits the store's full metrics registry (per-store counters, gauges, and
/// latency histograms) as a single JSON line, prefixed with the dataset it
/// describes, so runs can be scraped alongside the human-readable tables.
inline void PrintMetricsJson(const core::AionStore& aion,
                             const std::string& label) {
  printf("metrics %s %s\n", label.c_str(), aion.metrics()->ToJson().c_str());
}

/// Writes a figure's machine-readable summary to $AION_BENCH_JSON_OUT
/// (default `default_name` in the working directory). The checked-in
/// BENCH_*.json files at the repo root are these summaries at the default
/// scale; CI's soak and smoke jobs upload fresh ones as artifacts.
inline void WriteBenchJson(const std::string& json,
                           const std::string& default_name) {
  const char* out_env = std::getenv("AION_BENCH_JSON_OUT");
  const std::string out_path = out_env != nullptr ? out_env : default_name;
  if (FILE* out = fopen(out_path.c_str(), "w")) {
    fputs(json.c_str(), out);
    fclose(out);
    printf("wrote %s\n", out_path.c_str());
  } else {
    printf("could not write %s\n", out_path.c_str());
  }
}

/// Iterations helper: benchmarks pick operation counts relative to dataset
/// size, bounded for single-core runs.
inline size_t OpsFor(size_t entities, size_t lo, size_t hi) {
  size_t ops = entities / 4;
  if (ops < lo) ops = lo;
  if (ops > hi) ops = hi;
  return ops;
}

}  // namespace aion::bench

#endif  // AION_BENCH_BENCH_COMMON_H_
