// Micro-benchmarks (google-benchmark) for the storage substrate: B+Tree
// point operations and range scans, log appends, temporal record
// encode/decode, and page-cache hit paths. These are the primitives whose
// costs the evaluation figures aggregate; useful for regression tracking.
#include <benchmark/benchmark.h>

#include "core/record.h"
#include "storage/bptree.h"
#include "util/logging.h"
#include "storage/file.h"
#include "storage/log_file.h"
#include "storage/string_pool.h"
#include "util/coding.h"
#include "util/random.h"

namespace {

using namespace aion;  // NOLINT

std::string TempPath(const std::string& name) {
  static std::string* dir = [] {
    auto d = storage::MakeTempDir("aion_micro_");
    AION_CHECK(d.ok());
    return new std::string(*d);
  }();
  return *dir + "/" + name;
}

std::string Key(uint64_t a, uint64_t b) {
  std::string key;
  util::PutBigEndian64(&key, a);
  util::PutBigEndian64(&key, b);
  return key;
}

void BM_BpTreePut(benchmark::State& state) {
  auto tree = storage::BpTree::Open(
      TempPath("put_" + std::to_string(state.range(0))));
  AION_CHECK(tree.ok());
  util::Random rng(1);
  uint64_t i = 0;
  for (auto _ : state) {
    AION_CHECK_OK((*tree)->Put(Key(rng.Next(), i++), "value"));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BpTreePut)->Arg(0);

void BM_BpTreeGet(benchmark::State& state) {
  const int64_t n = state.range(0);
  auto tree = storage::BpTree::Open(TempPath("get_" + std::to_string(n)));
  AION_CHECK(tree.ok());
  for (int64_t i = 0; i < n; ++i) {
    AION_CHECK_OK((*tree)->Put(Key(static_cast<uint64_t>(i), 0), "value"));
  }
  util::Random rng(2);
  for (auto _ : state) {
    auto v = (*tree)->Get(Key(rng.Uniform(static_cast<uint64_t>(n)), 0));
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BpTreeGet)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_BpTreeRangeScan(benchmark::State& state) {
  const int64_t n = 50000;
  auto tree = storage::BpTree::Open(TempPath("scan"));
  AION_CHECK(tree.ok());
  if ((*tree)->num_entries() == 0) {
    for (int64_t i = 0; i < n; ++i) {
      AION_CHECK_OK((*tree)->Put(Key(static_cast<uint64_t>(i), 0), "value"));
    }
  }
  util::Random rng(3);
  const uint64_t span = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    const uint64_t start = rng.Uniform(static_cast<uint64_t>(n) - span);
    auto it = (*tree)->NewIterator();
    size_t count = 0;
    for (it.Seek(Key(start, 0)); it.Valid() && count < span; it.Next()) {
      ++count;
    }
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_BpTreeRangeScan)->Arg(16)->Arg(256);

void BM_LogAppend(benchmark::State& state) {
  auto log = storage::LogFile::Open(TempPath("log"));
  AION_CHECK(log.ok());
  const std::string payload(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    AION_CHECK((*log)->Append(payload).ok());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_LogAppend)->Arg(64)->Arg(1024);

void BM_RecordEncodeDecode(benchmark::State& state) {
  auto pool = storage::StringPool::InMemory();
  core::RecordCodec codec(pool.get());
  graph::Node node;
  node.id = 42;
  node.labels = {"Person", "Admin"};
  for (int i = 0; i < state.range(0); ++i) {
    node.props.Set("key" + std::to_string(i),
                   graph::PropertyValue(static_cast<int64_t>(i)));
  }
  const core::TemporalRecord record = core::RecordCodec::FullNode(node, 7);
  for (auto _ : state) {
    std::string buf;
    AION_CHECK_OK(codec.Encode(record, &buf));
    util::Slice input(buf);
    auto decoded = codec.Decode(&input);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_RecordEncodeDecode)->Arg(1)->Arg(8)->Arg(32);

void BM_UpdateBatchCodec(benchmark::State& state) {
  std::vector<graph::GraphUpdate> batch;
  for (int i = 0; i < state.range(0); ++i) {
    batch.push_back(graph::GraphUpdate::AddRelationship(
        static_cast<graph::RelId>(i), 1, 2, "KNOWS"));
  }
  for (auto _ : state) {
    std::string buf;
    graph::EncodeUpdateBatch(batch, &buf);
    auto decoded = graph::DecodeUpdateBatch(util::Slice(buf));
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_UpdateBatchCodec)->Arg(1)->Arg(100);

}  // namespace

BENCHMARK_MAIN();
