// Fig 8 — N-hop graph accesses: throughput of n-hop expansion queries from
// random roots, comparing the Raphtory-like baseline, LineageStore (Alg 1
// over the neighbourhood indexes), and TimeStore (full snapshot
// materialization + traversal).
//
// Paper shape: for 1–2 hops the fine-grained stores beat TimeStore by
// orders of magnitude; around 4 hops (>30% of the graph accessed) TimeStore
// catches up; at 8 hops the fine-grained stores collapse (nodes re-accessed
// ~9x) and TimeStore wins — motivating the 30% planner heuristic (Sec 6.3).
#include <set>

#include "baselines/raphtory_like.h"
#include "bench/bench_common.h"
#include "graph/csr.h"
#include "util/random.h"

using namespace aion;  // NOLINT

namespace {

/// Hop-limited reach over the materialized snapshot view (the pre-cache
/// traversal the dataset loop also times).
size_t ViewReach(const graph::GraphView& view, graph::NodeId root,
                 uint32_t hops) {
  std::vector<graph::NodeId> frontier = {root};
  std::set<graph::NodeId> seen = {root};
  for (uint32_t h = 0; h < hops && !frontier.empty(); ++h) {
    std::vector<graph::NodeId> next;
    for (graph::NodeId u : frontier) {
      view.ForEachRel(u, graph::Direction::kOutgoing,
                      [&](graph::RelId rel_id) {
                        const graph::Relationship* rel =
                            view.GetRelationship(rel_id);
                        if (rel != nullptr && seen.insert(rel->tgt).second) {
                          next.push_back(rel->tgt);
                        }
                      });
    }
    frontier = std::move(next);
  }
  return seen.size() - 1;
}

/// The same reach over the CSR projection. The dense node domain is what
/// buys the speed here: visited tracking is a flat bitmap instead of the
/// sparse-id set the view traversal is stuck with.
size_t CsrReach(const graph::CsrGraph& csr, graph::NodeId root,
                uint32_t hops, std::vector<char>* visited) {
  if (!csr.dense_map().IsMapped(root)) return 0;
  visited->assign(csr.num_nodes(), 0);
  std::vector<uint32_t> frontier = {csr.ToDense(root)};
  (*visited)[frontier[0]] = 1;
  size_t reached = 0;
  for (uint32_t h = 0; h < hops && !frontier.empty(); ++h) {
    std::vector<uint32_t> next;
    for (uint32_t u : frontier) {
      size_t count = 0;
      const uint32_t* neighbors = csr.Neighbors(u, &count);
      for (size_t i = 0; i < count; ++i) {
        if (!(*visited)[neighbors[i]]) {
          (*visited)[neighbors[i]] = 1;
          next.push_back(neighbors[i]);
          ++reached;
        }
      }
    }
    frontier = std::move(next);
  }
  return reached;
}

// ISSUE 10: n-hop expansions at one pinned snapshot through the cached CSR
// projection versus re-materializing and walking the snapshot view per
// query. Every probe's reach is asserted identical between the two paths
// — the cache must be an invisible accelerator. Single-core machine: the
// speedup is projection reuse, not parallelism.
std::string CsrNhopJson(double scale) {
  workload::Workload w = workload::Generate(workload::Dblp(scale), "w");
  core::AionStore::Options options;
  options.lineage_mode = core::AionStore::LineageMode::kDisabled;
  options.snapshot_policy.kind = core::SnapshotPolicy::Kind::kOperationBased;
  options.snapshot_policy.every = w.updates.size() / 8 + 1;
  bench::LoadedAion loaded = bench::LoadAion(w, options);
  const graph::Timestamp ts = w.max_ts;
  const uint32_t hops = 2;

  const size_t runs = 48;
  util::Random rng(17);
  std::vector<graph::NodeId> roots(runs);
  for (auto& r : roots) r = rng.Uniform(w.num_nodes);

  bench::Timer timer;
  std::vector<size_t> view_reach(runs);
  for (size_t i = 0; i < runs; ++i) {
    auto view = loaded.aion->GetGraphAt(ts);
    AION_CHECK(view.ok());
    view_reach[i] = ViewReach(**view, roots[i], hops);
  }
  const double view_ops = static_cast<double>(runs) / timer.Seconds();

  timer.Reset();
  std::vector<size_t> csr_reach(runs);
  std::vector<char> visited;
  for (size_t i = 0; i < runs; ++i) {
    auto csr = loaded.aion->ProjectCsrAt(ts);
    AION_CHECK(csr.ok());
    csr_reach[i] = CsrReach(**csr, roots[i], hops, &visited);
  }
  const double csr_ops = static_cast<double>(runs) / timer.Seconds();
  for (size_t i = 0; i < runs; ++i) {
    AION_CHECK(view_reach[i] == csr_reach[i]);
  }

  const core::CsrCache::Stats cache = loaded.aion->csr_cache()->GetStats();
  const double hit_rate =
      cache.hits + cache.misses > 0
          ? static_cast<double>(cache.hits) / (cache.hits + cache.misses)
          : 0.0;
  printf("%u-hop at fixed snapshot: view traversal %.1f ops/s, cached CSR "
         "%.1f ops/s, speedup %.1fx, hit rate %.2f (reach identical on "
         "%zu probes)\n",
         hops, view_ops, csr_ops, csr_ops / view_ops, hit_rate, runs);
  char buf[224];
  snprintf(buf, sizeof(buf),
           "{\"hops\": %u, \"view_ops\": %.2f, \"cached_csr_ops\": %.2f, "
           "\"speedup_cached_over_view\": %.2f, "
           "\"csr_cache_hit_rate\": %.3f, \"probes\": %zu}",
           hops, view_ops, csr_ops, csr_ops / view_ops, hit_rate, runs);
  return buf;
}

}  // namespace

int main() {
  const double scale = workload::BenchScaleFromEnv(0.001);
  bench::PrintHeader("Fig 8",
                     "n-hop expansion throughput (ops/s) by store", scale);
  printf("%-18s %14s %14s %14s %9s\n", "Dataset(hops)", "Raphtory",
         "LineageStore", "TimeStore", "choice");

  const std::vector<workload::DatasetSpec> datasets = {
      workload::Dblp(scale), workload::WikiTalk(scale),
      workload::Pokec(scale), workload::LiveJournal(scale)};
  const uint32_t hop_counts[] = {1, 2, 4, 8};

  std::string json = "{\n  \"figure\": \"fig8\",\n  \"scale\": " +
                     std::to_string(scale) + ",\n  \"series\": [\n";
  bool first = true;

  for (const workload::DatasetSpec& spec : datasets) {
    workload::Workload w = workload::Generate(spec);

    core::AionStore::Options options;
    options.lineage_mode = core::AionStore::LineageMode::kSync;
    options.snapshot_policy.kind =
        core::SnapshotPolicy::Kind::kOperationBased;
    options.snapshot_policy.every = w.updates.size() / 4 + 1;
    bench::LoadedAion loaded = bench::LoadAion(w, options);

    baselines::RaphtoryLike raphtory;
    AION_CHECK_OK(raphtory.IngestAll(w.updates));

    for (uint32_t hops : hop_counts) {
      // Single-core budget: fewer runs for deeper expansions.
      const size_t runs = hops <= 2 ? 60 : (hops == 4 ? 10 : 3);
      util::Random rng(13 + hops);
      std::vector<std::pair<graph::NodeId, graph::Timestamp>> probes(runs);
      for (auto& [node, ts] : probes) {
        node = rng.Uniform(w.num_nodes);
        // Arbitrary historical instants: the TimeStore must construct each
        // snapshot (Sec 6.3), the fine-grained stores filter by timestamp.
        ts = w.max_ts / 2 + rng.Uniform(w.max_ts / 2);
      }

      bench::Timer timer;
      for (const auto& [node, ts] : probes) {
        raphtory.Expand(node, graph::Direction::kOutgoing, hops, ts);
      }
      const double raph_tput = static_cast<double>(runs) / timer.Seconds();

      timer.Reset();
      for (const auto& [node, ts] : probes) {
        auto result = loaded.aion->ExpandUsing(
            core::AionStore::StoreChoice::kLineageStore, node,
            graph::Direction::kOutgoing, hops, ts);
        AION_CHECK(result.ok());
      }
      const double lineage_tput =
          static_cast<double>(runs) / timer.Seconds();

      timer.Reset();
      for (const auto& [node, ts] : probes) {
        auto view = loaded.aion->GetGraphAt(ts);
        AION_CHECK(view.ok());
        // Traverse hops over the materialized snapshot.
        std::vector<graph::NodeId> frontier = {node};
        for (uint32_t h = 0; h < hops && !frontier.empty(); ++h) {
          std::vector<graph::NodeId> next;
          std::set<graph::NodeId> seen;
          for (graph::NodeId u : frontier) {
            (*view)->ForEachRel(
                u, graph::Direction::kOutgoing, [&](graph::RelId rel_id) {
                  const graph::Relationship* rel =
                      (*view)->GetRelationship(rel_id);
                  if (rel != nullptr && seen.insert(rel->tgt).second) {
                    next.push_back(rel->tgt);
                  }
                });
          }
          frontier = std::move(next);
        }
      }
      const double time_tput = static_cast<double>(runs) / timer.Seconds();

      const auto choice = loaded.aion->ChooseStoreForExpand(hops);
      const char* choice_name =
          choice == core::AionStore::StoreChoice::kLineageStore ? "Lineage"
                                                                : "Time";
      printf("%-12s(%u)   %14.2f %14.2f %14.2f %9s\n", spec.name.c_str(),
             hops, raph_tput, lineage_tput, time_tput, choice_name);
      char buf[256];
      snprintf(buf, sizeof(buf),
               "%s    {\"dataset\": \"%s\", \"hops\": %u, "
               "\"raphtory_ops\": %.2f, \"lineage_ops\": %.2f, "
               "\"timestore_ops\": %.2f, \"choice\": \"%s\"}",
               first ? "" : ",\n", spec.name.c_str(), hops, raph_tput,
               lineage_tput, time_tput, choice_name);
      json += buf;
      first = false;
    }
  }
  json += "\n  ],\n  \"csr_nhop\": " + CsrNhopJson(scale) + "\n}\n";
  bench::PrintFooter();
  printf("Expected: fine-grained stores dominate at 1-2 hops; TimeStore\n"
         "levels out for deep expansions, matching the 30%% heuristic.\n");
  bench::WriteBenchJson(json, "BENCH_fig8.json");
  return 0;
}
