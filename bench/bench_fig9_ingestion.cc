// Fig 9 — Ingestion overhead: normalized write-transaction throughput when
// the temporal stores are updated synchronously with each commit, relative
// to the plain host database without Aion. Modes: TS+LS (both synchronous),
// LS only, TS only.
//
// Paper shape: TS-only costs <15%; anything involving the synchronous
// LineageStore costs ~40% (composite-key B+Tree updates dominate) — which
// is exactly why Aion defaults to synchronous TimeStore + asynchronous
// LineageStore cascade (Sec 5.1, Sec 6.4).
// Extended here with the two write-path experiments the batched API adds:
//  * batched vs per-call direct ingestion (WriteBatch/IngestBatch against
//    one Ingest() per update);
//  * multi-writer group commit (sync_commits on real disk): throughput per
//    writer count and the fsyncs-per-commit ratio.
// Results are also written as JSON to $AION_BENCH_JSON_OUT (default
// ./BENCH_fig9.json) so CI can archive before/after numbers.
#include <cstdlib>
#include <thread>

#include "bench/bench_common.h"
#include "txn/graphdb.h"

using namespace aion;  // NOLINT

namespace {

/// Commits the workload through the host database in batches (the paper
/// batches 1000 updates per transaction) and returns updates/second.
double IngestThroughput(const workload::Workload& w,
                        core::AionStore* aion_or_null) {
  // Durable host database: the baseline pays the WAL like the temporal
  // modes do (the paper's Neo4j baseline persists transactions too).
  bench::TempDir dir("aion_fig9_db_");
  txn::GraphDatabase::Options db_options;
  db_options.data_dir = dir.path() + "/db";
  auto db = txn::GraphDatabase::Open(db_options);
  AION_CHECK(db.ok());
  if (aion_or_null != nullptr) {
    (*db)->RegisterListener(aion_or_null);
  }
  constexpr size_t kBatch = 1000;
  bench::Timer timer;
  size_t i = 0;
  while (i < w.updates.size()) {
    auto txn = (*db)->Begin();
    const size_t end = std::min(i + kBatch, w.updates.size());
    for (; i < end; ++i) {
      graph::GraphUpdate u = w.updates[i];
      txn->Add(std::move(u));
    }
    AION_CHECK(txn->Commit().ok());
  }
  if (aion_or_null != nullptr) aion_or_null->DrainBackground();
  return static_cast<double>(w.updates.size()) / timer.Seconds();
}

/// Direct AionStore load, one Ingest() call per update. Updates/second.
double PerCallThroughput(const workload::Workload& w) {
  bench::TempDir dir("aion_fig9_percall_");
  core::AionStore::Options options;
  options.dir = dir.path() + "/aion";
  options.snapshot_policy.kind = core::SnapshotPolicy::Kind::kDisabled;
  auto aion = core::AionStore::Open(options);
  AION_CHECK(aion.ok());
  bench::Timer timer;
  for (const graph::GraphUpdate& u : w.updates) {
    AION_CHECK_OK((*aion)->Ingest(u.ts, {u}));
  }
  (*aion)->DrainBackground();
  return static_cast<double>(w.updates.size()) / timer.Seconds();
}

/// Direct AionStore load through WriteBatch/IngestBatch. Updates/second.
double BatchedThroughput(const workload::Workload& w, size_t chunk) {
  bench::TempDir dir("aion_fig9_batched_");
  core::AionStore::Options options;
  options.dir = dir.path() + "/aion";
  options.snapshot_policy.kind = core::SnapshotPolicy::Kind::kDisabled;
  auto aion = core::AionStore::Open(options);
  AION_CHECK(aion.ok());
  bench::Timer timer;
  core::WriteBatch batch;
  for (const graph::GraphUpdate& u : w.updates) {
    batch.Add(u.ts, u);
    if (batch.num_transactions() >= chunk) {
      AION_CHECK_OK((*aion)->IngestBatch(std::move(batch)));
      batch.Clear();
    }
  }
  AION_CHECK_OK((*aion)->IngestBatch(std::move(batch)));
  (*aion)->DrainBackground();
  return static_cast<double>(w.updates.size()) / timer.Seconds();
}

struct FlightOverheadPoint {
  double off_ups = 0;
  double on_ups = 0;
  double overhead_pct = 0;
  uint64_t samples = 0;
};

/// Batched direct ingest with the flight recorder disabled vs sampling at
/// `period_millis`. The sampler snapshots every instrument off the ingest
/// path, so its cost should be statistical noise (<1% at the default
/// period) — this measures it instead of assuming it.
FlightOverheadPoint FlightOverhead(const workload::Workload& w,
                                   uint64_t period_millis) {
  auto run = [&](uint64_t period, uint64_t* samples_out) -> double {
    bench::TempDir dir("aion_fig9_flight_");
    core::AionStore::Options options;
    options.dir = dir.path() + "/aion";
    options.snapshot_policy.kind = core::SnapshotPolicy::Kind::kDisabled;
    options.flight_sample_period_millis = period;
    auto aion = core::AionStore::Open(options);
    AION_CHECK(aion.ok());
    bench::Timer timer;
    core::WriteBatch batch;
    for (const graph::GraphUpdate& u : w.updates) {
      batch.Add(u.ts, u);
      if (batch.num_transactions() >= 1024) {
        AION_CHECK_OK((*aion)->IngestBatch(std::move(batch)));
        batch.Clear();
      }
    }
    AION_CHECK_OK((*aion)->IngestBatch(std::move(batch)));
    (*aion)->DrainBackground();
    const double seconds = timer.Seconds();
    if (samples_out != nullptr) {
      *samples_out =
          (*aion)->metrics()->Snapshot().counter("flight.samples");
    }
    return static_cast<double>(w.updates.size()) / seconds;
  };
  FlightOverheadPoint point;
  run(0, nullptr);  // warm-up
  point.off_ups = std::max(run(0, nullptr), run(0, nullptr));
  uint64_t samples_a = 0, samples_b = 0;
  const double on_a = run(period_millis, &samples_a);
  const double on_b = run(period_millis, &samples_b);
  point.on_ups = std::max(on_a, on_b);
  point.samples = std::max(samples_a, samples_b);
  point.overhead_pct = (point.off_ups - point.on_ups) / point.off_ups * 100.0;
  return point;
}

struct GroupCommitPoint {
  size_t writers = 0;
  double commits_per_sec = 0;
  double fsyncs_per_commit = 0;
  double mean_group_size = 0;
};

/// `writers` concurrent committers against a durable host database with
/// sync_commits on: every group costs a real fsync, so grouping is the
/// only way throughput scales past one writer.
GroupCommitPoint GroupCommitThroughput(size_t writers,
                                       size_t commits_per_writer) {
  bench::TempDir dir("aion_fig9_group_");
  txn::GraphDatabase::Options options;
  options.data_dir = dir.path() + "/db";
  options.sync_commits = true;
  options.group_commit_max_wait_micros = 200;
  auto db = txn::GraphDatabase::Open(options);
  AION_CHECK(db.ok());
  bench::Timer timer;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < writers; ++t) {
    threads.emplace_back([&] {
      for (size_t i = 0; i < commits_per_writer; ++i) {
        auto txn = (*db)->Begin();
        txn->CreateNode({"W"});
        AION_CHECK(txn->Commit().ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  const double seconds = timer.Seconds();
  GroupCommitPoint point;
  point.writers = writers;
  const double commits = static_cast<double>((*db)->CommitCount());
  point.commits_per_sec = commits / seconds;
  point.fsyncs_per_commit =
      static_cast<double>((*db)->WalSyncCount()) / commits;
  point.mean_group_size =
      commits / static_cast<double>((*db)->GroupCommitRounds());
  return point;
}

}  // namespace

int main() {
  const double scale = workload::BenchScaleFromEnv(0.001);
  bench::PrintHeader(
      "Fig 9", "normalized ingestion throughput vs plain host database",
      scale);
  printf("%-12s %10s %10s %10s %10s\n", "Dataset", "baseline", "TS+LS",
         "LS", "TS");

  std::string json = "{\n  \"figure\": \"fig9\",\n";
  {
    char buf[64];
    snprintf(buf, sizeof(buf), "  \"scale\": %g,\n", scale);
    json += buf;
  }
  json += "  \"modes\": {\n";
  bool first_dataset = true;

  const std::vector<workload::DatasetSpec> datasets = {
      workload::Dblp(scale), workload::WikiTalk(scale),
      workload::Pokec(scale), workload::LiveJournal(scale)};

  for (const workload::DatasetSpec& spec : datasets) {
    workload::Workload w = workload::Generate(spec);

    // Warm-up run (page cache, allocator), then best-of-2 per mode to damp
    // single-core noise on the smaller datasets.
    IngestThroughput(w, nullptr);
    const double baseline =
        std::max(IngestThroughput(w, nullptr), IngestThroughput(w, nullptr));

    auto run_mode = [&](bool timestore,
                        core::AionStore::LineageMode mode) -> double {
      bench::TempDir dir("aion_fig9_");
      core::AionStore::Options options;
      options.dir = dir.path() + "/aion";
      options.enable_timestore = timestore;
      options.lineage_mode = mode;
      options.snapshot_policy.kind = core::SnapshotPolicy::Kind::kDisabled;
      auto aion = core::AionStore::Open(options);
      AION_CHECK(aion.ok());
      return IngestThroughput(w, aion->get());
    };

    auto best_of_2 = [&](bool timestore, core::AionStore::LineageMode mode) {
      return std::max(run_mode(timestore, mode), run_mode(timestore, mode));
    };
    const double ts_ls = best_of_2(true, core::AionStore::LineageMode::kSync);
    const double ls_only =
        best_of_2(false, core::AionStore::LineageMode::kSync);
    const double ts_only =
        best_of_2(true, core::AionStore::LineageMode::kDisabled);

    printf("%-12s %10.2f %10.2f %10.2f %10.2f   (baseline: %.0f ups/s)\n",
           spec.name.c_str(), 1.0, ts_ls / baseline, ls_only / baseline,
           ts_only / baseline, baseline);
    char buf[256];
    snprintf(buf, sizeof(buf),
             "%s    \"%s\": {\"baseline_ups\": %.0f, \"ts_ls\": %.3f, "
             "\"ls\": %.3f, \"ts\": %.3f}",
             first_dataset ? "" : ",\n", spec.name.c_str(), baseline,
             ts_ls / baseline, ls_only / baseline, ts_only / baseline);
    json += buf;
    first_dataset = false;
  }
  json += "\n  },\n";
  bench::PrintFooter();
  printf("Expected: TS close to 1.0 (<15%% overhead); TS+LS and LS\n"
         "substantially lower (~0.6) due to composite-key index updates.\n");

  // --- Batched vs per-call direct ingestion -------------------------------
  printf("\nBatched ingest (WriteBatch/IngestBatch vs one Ingest per "
         "update, %s):\n",
         datasets.front().name.c_str());
  {
    workload::Workload w = workload::Generate(datasets.front());
    PerCallThroughput(w);  // warm-up
    const double per_call =
        std::max(PerCallThroughput(w), PerCallThroughput(w));
    const double batched =
        std::max(BatchedThroughput(w, 1024), BatchedThroughput(w, 1024));
    printf("  per-call: %10.0f ups/s\n  batched:  %10.0f ups/s  "
           "(%.1fx)\n",
           per_call, batched, batched / per_call);
    char buf[192];
    snprintf(buf, sizeof(buf),
             "  \"batched_ingest\": {\"per_call_ups\": %.0f, "
             "\"batched_ups\": %.0f, \"speedup\": %.2f},\n",
             per_call, batched, batched / per_call);
    json += buf;
  }

  // --- Flight recorder sampling overhead ----------------------------------
  printf("\nFlight recorder overhead (batched ingest, default 500ms "
         "sampling period):\n");
  {
    workload::Workload w = workload::Generate(datasets.front());
    const FlightOverheadPoint p = FlightOverhead(w, 500);
    printf("  sampler off: %10.0f ups/s\n  sampler on:  %10.0f ups/s  "
           "(%.2f%% overhead, %llu samples)\n",
           p.off_ups, p.on_ups, p.overhead_pct,
           static_cast<unsigned long long>(p.samples));
    char buf[224];
    snprintf(buf, sizeof(buf),
             "  \"flight_recorder\": {\"period_millis\": 500, "
             "\"off_ups\": %.0f, \"on_ups\": %.0f, \"overhead_pct\": %.2f, "
             "\"samples\": %llu},\n",
             p.off_ups, p.on_ups, p.overhead_pct,
             static_cast<unsigned long long>(p.samples));
    json += buf;
  }

  // --- Group commit scaling (sync_commits, real fsyncs) -------------------
  printf("\nGroup commit (durable host db, sync_commits=true, 200 "
         "commits/writer):\n");
  printf("  %8s %14s %18s %16s\n", "writers", "commits/s", "fsyncs/commit",
         "mean group size");
  json += "  \"group_commit\": [\n";
  {
    bool first = true;
    for (size_t writers : {1, 2, 4, 8}) {
      const GroupCommitPoint p = GroupCommitThroughput(writers, 200);
      printf("  %8zu %14.0f %18.3f %16.2f\n", p.writers, p.commits_per_sec,
             p.fsyncs_per_commit, p.mean_group_size);
      char buf[192];
      snprintf(buf, sizeof(buf),
               "%s    {\"writers\": %zu, \"commits_per_sec\": %.0f, "
               "\"fsyncs_per_commit\": %.3f, \"mean_group_size\": %.2f}",
               first ? "" : ",\n", p.writers, p.commits_per_sec,
               p.fsyncs_per_commit, p.mean_group_size);
      json += buf;
      first = false;
    }
  }
  json += "\n  ]\n}\n";
  bench::PrintFooter();
  printf("Expected: batched >= 3x per-call; multi-writer throughput above\n"
         "1-writer with fsyncs/commit well under 1.\n");

  bench::WriteBenchJson(json, "BENCH_fig9.json");
  return 0;
}
