// Fig 9 — Ingestion overhead: normalized write-transaction throughput when
// the temporal stores are updated synchronously with each commit, relative
// to the plain host database without Aion. Modes: TS+LS (both synchronous),
// LS only, TS only.
//
// Paper shape: TS-only costs <15%; anything involving the synchronous
// LineageStore costs ~40% (composite-key B+Tree updates dominate) — which
// is exactly why Aion defaults to synchronous TimeStore + asynchronous
// LineageStore cascade (Sec 5.1, Sec 6.4).
#include "bench/bench_common.h"
#include "txn/graphdb.h"

using namespace aion;  // NOLINT

namespace {

/// Commits the workload through the host database in batches (the paper
/// batches 1000 updates per transaction) and returns updates/second.
double IngestThroughput(const workload::Workload& w,
                        core::AionStore* aion_or_null) {
  // Durable host database: the baseline pays the WAL like the temporal
  // modes do (the paper's Neo4j baseline persists transactions too).
  bench::TempDir dir("aion_fig9_db_");
  txn::GraphDatabase::Options db_options;
  db_options.data_dir = dir.path() + "/db";
  auto db = txn::GraphDatabase::Open(db_options);
  AION_CHECK(db.ok());
  if (aion_or_null != nullptr) {
    (*db)->RegisterListener(aion_or_null);
  }
  constexpr size_t kBatch = 1000;
  bench::Timer timer;
  size_t i = 0;
  while (i < w.updates.size()) {
    auto txn = (*db)->Begin();
    const size_t end = std::min(i + kBatch, w.updates.size());
    for (; i < end; ++i) {
      graph::GraphUpdate u = w.updates[i];
      txn->Add(std::move(u));
    }
    AION_CHECK(txn->Commit().ok());
  }
  if (aion_or_null != nullptr) aion_or_null->DrainBackground();
  return static_cast<double>(w.updates.size()) / timer.Seconds();
}

}  // namespace

int main() {
  const double scale = workload::BenchScaleFromEnv(0.001);
  bench::PrintHeader(
      "Fig 9", "normalized ingestion throughput vs plain host database",
      scale);
  printf("%-12s %10s %10s %10s %10s\n", "Dataset", "baseline", "TS+LS",
         "LS", "TS");

  const std::vector<workload::DatasetSpec> datasets = {
      workload::Dblp(scale), workload::WikiTalk(scale),
      workload::Pokec(scale), workload::LiveJournal(scale)};

  for (const workload::DatasetSpec& spec : datasets) {
    workload::Workload w = workload::Generate(spec);

    // Warm-up run (page cache, allocator), then best-of-2 per mode to damp
    // single-core noise on the smaller datasets.
    IngestThroughput(w, nullptr);
    const double baseline =
        std::max(IngestThroughput(w, nullptr), IngestThroughput(w, nullptr));

    auto run_mode = [&](bool timestore,
                        core::AionStore::LineageMode mode) -> double {
      bench::TempDir dir("aion_fig9_");
      core::AionStore::Options options;
      options.dir = dir.path() + "/aion";
      options.enable_timestore = timestore;
      options.lineage_mode = mode;
      options.snapshot_policy.kind = core::SnapshotPolicy::Kind::kDisabled;
      auto aion = core::AionStore::Open(options);
      AION_CHECK(aion.ok());
      return IngestThroughput(w, aion->get());
    };

    auto best_of_2 = [&](bool timestore, core::AionStore::LineageMode mode) {
      return std::max(run_mode(timestore, mode), run_mode(timestore, mode));
    };
    const double ts_ls = best_of_2(true, core::AionStore::LineageMode::kSync);
    const double ls_only =
        best_of_2(false, core::AionStore::LineageMode::kSync);
    const double ts_only =
        best_of_2(true, core::AionStore::LineageMode::kDisabled);

    printf("%-12s %10.2f %10.2f %10.2f %10.2f   (baseline: %.0f ups/s)\n",
           spec.name.c_str(), 1.0, ts_ls / baseline, ls_only / baseline,
           ts_only / baseline, baseline);
  }
  bench::PrintFooter();
  printf("Expected: TS close to 1.0 (<15%% overhead); TS+LS and LS\n"
         "substantially lower (~0.6) due to composite-key index updates.\n");
  return 0;
}
