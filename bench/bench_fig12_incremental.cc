// Fig 12 — Incremental query execution: speedup of incremental AVG, BFS,
// and PageRank over re-running the full algorithm on every snapshot, for 10
// and 100 consecutive snapshots. Per Sec 6.6: half the relationships load
// into the first snapshot; the rest arrive in one hundred increments.
//
// Paper shape: AVG speedups are the largest (up to 9x / 46.5x for 10 / 100
// snapshots); BFS and PageRank land between 2.3x and 12x since changes must
// propagate through the graph; more snapshots = more reuse.
#include "algo/incremental.h"
#include "algo/static_algos.h"
#include "bench/bench_common.h"
#include "graph/csr.h"

using namespace aion;  // NOLINT

namespace {

struct Workbench {
  std::unique_ptr<graph::MemoryGraph> first_half;
  std::vector<std::vector<graph::GraphUpdate>> increments;  // 100 batches
};

Workbench Prepare(const workload::Workload& w) {
  Workbench bench;
  bench.first_half = std::make_unique<graph::MemoryGraph>();
  // Node creations + first half of the relationship additions seed the
  // first snapshot; the remainder splits into 100 increments.
  std::vector<graph::GraphUpdate> seed, rest;
  size_t rel_count = 0;
  for (const graph::GraphUpdate& u : w.updates) {
    if (u.op == graph::UpdateOp::kAddRelationship) {
      if (++rel_count <= w.num_rels / 2) {
        seed.push_back(u);
      } else {
        rest.push_back(u);
      }
    } else {
      seed.push_back(u);  // all nodes pre-exist (paper loads rels over time)
    }
  }
  AION_CHECK_OK(bench.first_half->ApplyAll(seed));
  bench.increments = workload::SplitUpdates(rest, 100);
  return bench;
}

double Speedup(double full_seconds, double incremental_seconds) {
  return incremental_seconds <= 0 ? 0 : full_seconds / incremental_seconds;
}

}  // namespace

int main() {
  const double scale = workload::BenchScaleFromEnv(0.001);
  bench::PrintHeader("Fig 12",
                     "incremental execution speedup over full recomputation",
                     scale);
  printf("%-12s %10s %10s %10s %10s %10s %10s\n", "Dataset", "AVG(10)",
         "AVG(100)", "BFS(10)", "BFS(100)", "PR(10)", "PR(100)");

  const std::vector<workload::DatasetSpec> datasets = {
      workload::Dblp(scale), workload::WikiTalk(scale),
      workload::Pokec(scale), workload::LiveJournal(scale)};

  for (const workload::DatasetSpec& spec : datasets) {
    workload::Workload w = workload::Generate(spec, "w");
    double speedups[6];
    int column = 0;
    for (const size_t snapshots : {size_t{10}, size_t{100}}) {
      Workbench wb = Prepare(w);
      // Coalesce the 100 increments into `snapshots` batches.
      std::vector<std::vector<graph::GraphUpdate>> batches;
      const size_t group = 100 / snapshots;
      for (size_t s = 0; s < snapshots; ++s) {
        std::vector<graph::GraphUpdate> batch;
        for (size_t g = s * group;
             g < (s + 1) * group && g < wb.increments.size(); ++g) {
          batch.insert(batch.end(), wb.increments[g].begin(),
                       wb.increments[g].end());
        }
        batches.push_back(std::move(batch));
      }

      // ---- AVG ----
      {
        auto g = wb.first_half->Clone();
        bench::Timer timer;
        for (const auto& batch : batches) {
          AION_CHECK_OK(g->ApplyAll(batch));
          algo::AggregateRelationshipProperty(*g, "w");  // full scan
        }
        const double full = timer.Seconds();
        g = wb.first_half->Clone();
        algo::IncrementalAverage avg("w");
        // Seed from the base graph.
        g->ForEachRelationship([&avg](const graph::Relationship& r) {
          graph::GraphUpdate u = graph::GraphUpdate::AddRelationship(
              r.id, r.src, r.tgt, r.type, r.props);
          avg.ApplyDiff({u});
        });
        timer.Reset();
        for (const auto& batch : batches) {
          AION_CHECK_OK(g->ApplyAll(batch));
          avg.ApplyDiff(batch);
        }
        speedups[column] = Speedup(full, timer.Seconds());
      }

      // ---- BFS ----
      {
        auto g = wb.first_half->Clone();
        const graph::NodeId source = 0;
        bench::Timer timer;
        for (const auto& batch : batches) {
          AION_CHECK_OK(g->ApplyAll(batch));
          algo::IncrementalBfs full_bfs(source);
          full_bfs.Recompute(*g);  // full recomputation per snapshot
        }
        const double full = timer.Seconds();
        g = wb.first_half->Clone();
        algo::IncrementalBfs bfs(source);
        bfs.Recompute(*g);
        timer.Reset();
        for (const auto& batch : batches) {
          AION_CHECK_OK(g->ApplyAll(batch));
          bfs.ApplyDiff(*g, batch);
        }
        speedups[column + 2] = Speedup(full, timer.Seconds());
      }

      // ---- PageRank ----
      {
        algo::PageRankOptions pr_options;  // paper setting: epsilon 0.01
        auto g = wb.first_half->Clone();
        bench::Timer timer;
        for (const auto& batch : batches) {
          AION_CHECK_OK(g->ApplyAll(batch));
          graph::CsrGraph csr = graph::CsrGraph::Build(*g);
          algo::PageRank(csr, pr_options);  // cold start per snapshot
        }
        const double full = timer.Seconds();
        g = wb.first_half->Clone();
        algo::IncrementalPageRank pr(pr_options);
        pr.Recompute(*g);
        timer.Reset();
        for (const auto& batch : batches) {
          AION_CHECK_OK(g->ApplyAll(batch));
          pr.ApplyDiff(*g, batch);  // residual change propagation
        }
        speedups[column + 4] = Speedup(full, timer.Seconds());
      }
      ++column;
    }
    printf("%-12s %9.1fx %9.1fx %9.1fx %9.1fx %9.1fx %9.1fx\n",
           spec.name.c_str(), speedups[0], speedups[1], speedups[2],
           speedups[3], speedups[4], speedups[5]);
  }
  bench::PrintFooter();
  printf("Expected: AVG >> BFS/PR; 100 snapshots > 10 snapshots (more\n"
         "opportunities to reuse past computation, Sec 6.6).\n");
  return 0;
}
