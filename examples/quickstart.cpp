// Quickstart: stand up the host graph database with Aion attached, commit a
// few transactions, and time-travel — through both the temporal graph API
// (Table 1) and temporal Cypher (Fig 1).
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/aion.h"
#include "query/engine.h"
#include "storage/file.h"
#include "txn/graphdb.h"
#include "util/logging.h"

using aion::core::AionStore;
using aion::graph::Direction;
using aion::graph::kInfiniteTime;
using aion::query::QueryEngine;
using aion::txn::GraphDatabase;

int main() {
  // --- Setup: host database + Aion listener ------------------------------
  auto dir = aion::storage::MakeTempDir("aion_quickstart_");
  AION_CHECK(dir.ok());

  auto db = GraphDatabase::OpenInMemory();
  AION_CHECK(db.ok());

  AionStore::Options options;
  options.dir = *dir + "/aion";
  auto aion_store = AionStore::Open(options);
  AION_CHECK(aion_store.ok());
  (*db)->RegisterListener(aion_store->get());

  // --- Commit some history ------------------------------------------------
  // ts 1: two people meet.
  auto txn = (*db)->Begin();
  const auto ada = txn->CreateNode({"Person"});
  const auto bob = txn->CreateNode({"Person"});
  txn->SetNodeProperty(ada, "name", aion::graph::PropertyValue("Ada"));
  txn->SetNodeProperty(bob, "name", aion::graph::PropertyValue("Bob"));
  const auto knows = txn->CreateRelationship(ada, bob, "KNOWS");
  AION_CHECK(txn->Commit().ok());

  // ts 2: Ada gets a title.
  txn = (*db)->Begin();
  txn->SetNodeProperty(ada, "title",
                       aion::graph::PropertyValue("Countess of Lovelace"));
  AION_CHECK(txn->Commit().ok());

  // ts 3: the friendship ends.
  txn = (*db)->Begin();
  txn->DeleteRelationship(knows);
  AION_CHECK(txn->Commit().ok());

  (*aion_store)->DrainBackground();

  // --- Temporal graph API (Table 1) ---------------------------------------
  printf("== Temporal graph API ==\n");
  auto history = (*aion_store)->GetNode(ada, 0, kInfiniteTime);
  AION_CHECK(history.ok());
  printf("Ada has %zu versions:\n", history->size());
  for (const auto& version : *history) {
    const auto* title = version.entity.props.Get("title");
    printf("  [%llu, %s): title=%s\n",
           static_cast<unsigned long long>(version.interval.start),
           version.interval.end == kInfiniteTime
               ? "inf"
               : std::to_string(version.interval.end).c_str(),
           title == nullptr ? "<none>" : title->AsString().c_str());
  }

  auto neighbours_at_1 = (*aion_store)->Expand(ada, Direction::kBoth, 1, 1);
  AION_CHECK(neighbours_at_1.ok());
  printf("Ada's neighbours at ts 1: %zu\n", (*neighbours_at_1)[0].size());
  auto neighbours_at_3 = (*aion_store)->Expand(ada, Direction::kBoth, 1, 3);
  AION_CHECK(neighbours_at_3.ok());
  printf("Ada's neighbours at ts 3: %zu (friendship deleted)\n",
         (*neighbours_at_3)[0].size());

  auto diff = (*aion_store)->GetDiff(1, 3);
  AION_CHECK(diff.ok());
  printf("Updates in [ts 1, ts 3):\n");
  for (const auto& update : *diff) {
    printf("  %s\n", update.ToString().c_str());
  }

  // --- Temporal Cypher (Fig 1) --------------------------------------------
  printf("\n== Temporal Cypher ==\n");
  QueryEngine engine(db->get(), aion_store->get());
  const std::string queries[] = {
      "MATCH (p:Person) RETURN p.name, p.title",
      "USE gdb FOR SYSTEM_TIME AS OF 1 MATCH (p:Person) RETURN p.name, "
      "p.title",
      "USE gdb FOR SYSTEM_TIME BETWEEN 1 AND 4 MATCH (p:Person) WHERE "
      "id(p) = " + std::to_string(ada) + " RETURN p.title",
      "USE gdb FOR SYSTEM_TIME AS OF 1 MATCH (a:Person)-[:KNOWS]->(b) "
      "RETURN a.name, b.name",
  };
  for (const std::string& q : queries) {
    printf("\n> %s\n", q.c_str());
    auto result = engine.Execute(q);
    AION_CHECK(result.ok());
    printf("%s", result->ToString().c_str());
  }

  (void)aion::storage::RemoveDirRecursively(*dir);
  printf("\nquickstart: OK\n");
  return 0;
}
