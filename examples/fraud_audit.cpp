// Fraud audit — the data-auditing use case from the paper's introduction
// (Sec 1: "data auditing, e.g. HIPAA privacy compliance ... and restoring
// data to a previous version, i.e. perform data repair").
//
// An account graph receives transfers; an attacker quietly rewrites an
// account's risk rating and drains it. The auditor uses Aion to:
//   1. pinpoint *when* the rating changed (node history);
//   2. see *everything* the offending transactions did (getDiff);
//   3. repair the data by restoring the pre-attack state into a new commit;
//   4. check the bitemporal view (application time vs system time).
//
// Build & run:  ./build/examples/fraud_audit
#include <cstdio>

#include "core/aion.h"
#include "core/bitemporal.h"
#include "query/engine.h"
#include "storage/file.h"
#include "txn/graphdb.h"
#include "util/logging.h"

using aion::core::AionStore;
using aion::graph::kInfiniteTime;
using aion::graph::PropertyValue;
using aion::query::QueryEngine;
using aion::txn::GraphDatabase;

int main() {
  auto dir = aion::storage::MakeTempDir("aion_fraud_");
  AION_CHECK(dir.ok());
  auto db = GraphDatabase::OpenInMemory();
  AION_CHECK(db.ok());
  AionStore::Options options;
  options.dir = *dir + "/aion";
  auto aion_store = AionStore::Open(options);
  AION_CHECK(aion_store.ok());
  (*db)->RegisterListener(aion_store->get());
  AionStore& aion = **aion_store;

  // ts 1: accounts are provisioned. Application time records when the
  // accounts were legally opened (years before this system existed).
  auto txn = (*db)->Begin();
  aion::graph::PropertySet alice_props, mule_props;
  alice_props.Set("owner", PropertyValue("alice"));
  alice_props.Set("risk", PropertyValue("low"));
  alice_props.Set("balance", PropertyValue(100000));
  alice_props.Set(aion::core::kApplicationStartKey,
                  PropertyValue(int64_t{20190104}));
  alice_props.Set(aion::core::kApplicationEndKey,
                  PropertyValue(int64_t{20191231}));
  mule_props.Set("owner", PropertyValue("shellcorp"));
  mule_props.Set("risk", PropertyValue("high"));
  mule_props.Set("balance", PropertyValue(0));
  const auto alice = txn->CreateNode({"Account"}, alice_props);
  const auto mule = txn->CreateNode({"Account"}, mule_props);
  AION_CHECK(txn->Commit().ok());

  // ts 2: ATTACK — the mule's risk rating is laundered to "low".
  txn = (*db)->Begin();
  txn->SetNodeProperty(mule, "risk", PropertyValue("low"));
  AION_CHECK(txn->Commit().ok());

  // ts 3: ATTACK — a large transfer to the now-"low-risk" account.
  txn = (*db)->Begin();
  aion::graph::PropertySet transfer;
  transfer.Set("amount", PropertyValue(99999));
  txn->CreateRelationship(alice, mule, "TRANSFER", transfer);
  txn->SetNodeProperty(alice, "balance", PropertyValue(1));
  txn->SetNodeProperty(mule, "balance", PropertyValue(99999));
  AION_CHECK(txn->Commit().ok());
  aion.DrainBackground();

  // --- 1. When did the rating change? -------------------------------------
  printf("== Audit: risk-rating history of the mule account ==\n");
  auto history = aion.GetNode(mule, 0, kInfiniteTime);
  AION_CHECK(history.ok());
  aion::graph::Timestamp attack_ts = 0;
  for (const auto& version : *history) {
    const std::string risk = version.entity.props.Get("risk")->AsString();
    printf("  [%llu, ...) risk=%s\n",
           static_cast<unsigned long long>(version.interval.start),
           risk.c_str());
    if (risk == "low" && attack_ts == 0 && version.interval.start > 1) {
      attack_ts = version.interval.start;
    }
  }
  AION_CHECK(attack_ts != 0);
  printf("  -> rating laundered at commit ts %llu\n",
         static_cast<unsigned long long>(attack_ts));

  // --- 2. What else happened from that moment on? -------------------------
  printf("\n== Everything committed from the attack onwards ==\n");
  auto diff = aion.GetDiff(attack_ts, kInfiniteTime);
  AION_CHECK(diff.ok());
  for (const auto& update : *diff) {
    printf("  %s\n", update.ToString().c_str());
  }

  // --- 3. Data repair: restore the pre-attack state -----------------------
  printf("\n== Repair: restore pre-attack values in a new commit ==\n");
  auto before = aion.GetGraphAt(attack_ts - 1);
  AION_CHECK(before.ok());
  const aion::graph::Node* clean_mule = (*before)->GetNode(mule);
  const aion::graph::Node* clean_alice = (*before)->GetNode(alice);
  AION_CHECK(clean_mule != nullptr && clean_alice != nullptr);
  txn = (*db)->Begin();
  txn->SetNodeProperty(mule, "risk", *clean_mule->props.Get("risk"));
  txn->SetNodeProperty(mule, "balance", *clean_mule->props.Get("balance"));
  txn->SetNodeProperty(alice, "balance", *clean_alice->props.Get("balance"));
  auto repair_ts = txn->Commit();
  AION_CHECK(repair_ts.ok());
  printf("  restored at commit ts %llu (history preserved, nothing erased)\n",
         static_cast<unsigned long long>(*repair_ts));

  // The attack remains fully visible in history (audit trail intact).
  aion.DrainBackground();
  auto full_history = aion.GetNode(mule, 0, kInfiniteTime);
  AION_CHECK(full_history.ok());
  printf("  mule account now has %zu recorded versions\n",
         full_history->size());

  // --- 4. Bitemporal check via Cypher --------------------------------------
  printf("\n== Bitemporal Cypher ==\n");
  QueryEngine engine(db->get(), aion_store->get());
  const std::string q =
      "USE gdb FOR SYSTEM_TIME AS OF 1 MATCH (a:Account) WHERE id(a) = " +
      std::to_string(alice) +
      " AND APPLICATION_TIME CONTAINED IN (20190101, 20200101) "
      "RETURN a.owner";
  printf("> %s\n", q.c_str());
  auto result = engine.Execute(q);
  AION_CHECK(result.ok());
  printf("%s", result->ToString().c_str());

  (void)aion::storage::RemoveDirRecursively(*dir);
  printf("\nfraud_audit: OK\n");
  return 0;
}
