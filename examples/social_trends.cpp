// Social trends — mining trends over time (Sec 1) on a generated social
// network: incremental PageRank tracks influence drift across daily
// snapshots, and getWindow isolates a burst of activity ("e-commerce
// transactions of a specific week to capture Black Friday sales", Sec 4.1).
//
// Build & run:  ./build/examples/social_trends
#include <algorithm>
#include <cstdio>

#include "algo/incremental.h"
#include "core/aion.h"
#include "storage/file.h"
#include "util/logging.h"
#include "workload/generator.h"

using aion::algo::IncrementalPageRank;
using aion::core::AionStore;
using aion::graph::GraphUpdate;
using aion::graph::Timestamp;

int main() {
  auto dir = aion::storage::MakeTempDir("aion_trends_");
  AION_CHECK(dir.ok());
  AionStore::Options options;
  options.dir = *dir + "/aion";
  auto aion_store = AionStore::Open(options);
  AION_CHECK(aion_store.ok());
  AionStore& aion = **aion_store;

  // A small Pokec-like social network, streamed in as "days" of activity.
  aion::workload::DatasetSpec spec = aion::workload::Pokec(0.001);
  spec.name = "MiniPokec";
  aion::workload::Workload workload = aion::workload::Generate(spec);
  printf("Generated %s: %zu users, %zu follows\n", spec.name.c_str(),
         workload.num_nodes, workload.num_rels);

  constexpr size_t kDays = 10;
  const auto days = aion::workload::SplitUpdates(workload.updates, kDays);
  std::vector<Timestamp> day_ends;
  for (const auto& day : days) {
    // One batched ingest per day: same-ts events stay grouped as single
    // transactions, the whole day costs one log write.
    aion::core::WriteBatch batch;
    batch.AddStream(day);
    AION_CHECK_OK(aion.IngestBatch(std::move(batch)));
    day_ends.push_back(day.back().ts);
  }
  aion.DrainBackground();

  // --- Influence drift: incremental PageRank per day ----------------------
  printf("\n== Daily influence (incremental PageRank) ==\n");
  auto graph = aion.MaterializeGraphAt(day_ends[0]);
  AION_CHECK(graph.ok());
  IncrementalPageRank pagerank;
  pagerank.Recompute(**graph);
  Timestamp prev = day_ends[0];
  for (size_t day = 1; day < day_ends.size(); ++day) {
    // The new day's events: everything after `prev` up to and including
    // the day end, i.e. the half-open window [prev + 1, day_end + 1).
    auto diff = aion.GetDiff(prev + 1, day_ends[day] + 1);
    AION_CHECK(diff.ok());
    AION_CHECK_OK((*graph)->ApplyAll(*diff));
    pagerank.ApplyDiff(**graph, *diff);
    // Top influencer of the day.
    aion::graph::NodeId top = 0;
    double top_rank = -1;
    for (const auto& [id, rank] : pagerank.Ranks(**graph)) {
      if (rank > top_rank) {
        top_rank = rank;
        top = id;
      }
    }
    printf("  day %2zu: top user=%llu rank=%.5f (%llu residual pushes, "
           "%zu new events)\n",
           day, static_cast<unsigned long long>(top), top_rank,
           static_cast<unsigned long long>(pagerank.last_pushes()),
           diff->size());
    prev = day_ends[day];
  }

  // --- Burst window: who was active during the spike? ---------------------
  printf("\n== Activity window (days 4-6) ==\n");
  auto window = aion.GetWindow(day_ends[3], day_ends[6]);
  AION_CHECK(window.ok());
  printf("  window graph: %zu users, %zu follows (vs %zu/%zu overall)\n",
         (*window)->NumNodes(), (*window)->NumRelationships(),
         workload.num_nodes, workload.num_rels);

  // --- Trend series via getGraph -----------------------------------------
  printf("\n== Graph growth series (getGraph) ==\n");
  const Timestamp step = std::max<Timestamp>(1, workload.max_ts / 5);
  auto series = aion.GetGraph(step, workload.max_ts, step);
  AION_CHECK(series.ok());
  for (size_t i = 0; i < series->size(); ++i) {
    printf("  t=%llu: %zu users, %zu follows\n",
           static_cast<unsigned long long>(step * (i + 1)),
           (*series)[i]->NumNodes(), (*series)[i]->NumRelationships());
  }

  (void)aion::storage::RemoveDirRecursively(*dir);
  printf("\nsocial_trends: OK\n");
  return 0;
}
