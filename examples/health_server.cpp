// Health server: stand up the full stack — host database, Aion, query
// engine — plus the embedded observability HTTP endpoint, ingest a little
// history, and keep serving until the time limit expires. Meant for
// scraping demos and CI smoke tests:
//
//   ./build/examples/health_server [port] [seconds]
//   curl localhost:<port>/metrics
//   curl localhost:<port>/healthz
//   curl localhost:<port>/debug/flight
//
// Defaults: an ephemeral port (printed on stdout) and 5 seconds.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "core/aion.h"
#include "query/engine.h"
#include "server/http.h"
#include "storage/file.h"
#include "txn/graphdb.h"
#include "util/logging.h"

using aion::core::AionStore;
using aion::query::QueryEngine;
using aion::server::ObservabilityHttpServer;
using aion::txn::GraphDatabase;

int main(int argc, char** argv) {
  const uint16_t port =
      argc > 1 ? static_cast<uint16_t>(std::atoi(argv[1])) : 0;
  const int seconds = argc > 2 ? std::atoi(argv[2]) : 5;

  auto dir = aion::storage::MakeTempDir("aion_health_server_");
  AION_CHECK(dir.ok());
  auto db = GraphDatabase::OpenInMemory();
  AION_CHECK(db.ok());

  AionStore::Options options;
  options.dir = *dir + "/aion";
  // Sample fast enough that even a short-lived server accumulates a
  // multi-sample flight ring worth curling.
  options.flight_sample_period_millis = 100;
  options.health_check_period_millis = 250;
  auto aion_store = AionStore::Open(options);
  AION_CHECK(aion_store.ok());
  (*db)->RegisterListener(aion_store->get());
  QueryEngine engine(db->get(), aion_store->get());

  // A little history so /metrics shows real ingest and query counters.
  AION_CHECK(engine.Execute("CREATE (a:Person {name: 'ada'})").ok());
  AION_CHECK(engine.Execute("CREATE (b:Person {name: 'bob'})").ok());
  AION_CHECK(engine.Execute("MATCH (p:Person) RETURN p.name").ok());
  (*aion_store)->DrainBackground();

  ObservabilityHttpServer server(&engine);
  auto bound = server.Start(port);
  AION_CHECK(bound.ok());
  printf("listening on %u\n", static_cast<unsigned>(*bound));
  fflush(stdout);

  // Keep a trickle of writes flowing so scrapes during the window see
  // counters moving, then shut down cleanly.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(seconds);
  int i = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    AION_CHECK(engine
                   .Execute("CREATE (n:Tick {i: " + std::to_string(i++) +
                            "})")
                   .ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  const auto health = (*aion_store)->health_watchdog()->Evaluate();
  printf("served %llu requests, healthy=%s\n",
         static_cast<unsigned long long>(server.requests_served()),
         health.healthy ? "true" : "false");
  server.Stop();
  (void)aion::storage::RemoveDirRecursively(*dir);
  return health.healthy ? 0 : 1;
}
