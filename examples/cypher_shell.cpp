// Interactive temporal-Cypher shell against an embedded Aion instance — a
// tiny cypher-shell analogue. Reads one statement per line; `:quit` exits,
// `:server` starts the bolt-like server and reconnects the shell through it
// (demonstrating the client-server path of Sec 6.7).
//
// Build & run:  ./build/examples/cypher_shell
//   aion> CREATE (a:Person {name: 'ada'})
//   aion> MATCH (p:Person) RETURN p.name
//   aion> USE gdb FOR SYSTEM_TIME AS OF 1 MATCH (n) RETURN count(*)
#include <cstdio>
#include <iostream>
#include <string>

#include "core/aion.h"
#include "query/engine.h"
#include "server/server.h"
#include "storage/file.h"
#include "txn/graphdb.h"
#include "util/logging.h"

int main() {
  auto dir = aion::storage::MakeTempDir("aion_shell_");
  AION_CHECK(dir.ok());
  auto db = aion::txn::GraphDatabase::OpenInMemory();
  AION_CHECK(db.ok());
  aion::core::AionStore::Options options;
  options.dir = *dir + "/aion";
  options.lineage_mode = aion::core::AionStore::LineageMode::kSync;
  auto aion_store = aion::core::AionStore::Open(options);
  AION_CHECK(aion_store.ok());
  (*db)->RegisterListener(aion_store->get());
  aion::query::QueryEngine engine(db->get(), aion_store->get());

  std::unique_ptr<aion::server::BoltLikeServer> server;
  std::unique_ptr<aion::server::BoltLikeClient> client;

  printf("Aion temporal Cypher shell. :quit to exit, :server for bolt mode.\n");
  std::string line;
  while (true) {
    printf(client ? "aion/bolt> " : "aion> ");
    fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line == ":quit" || line == ":exit") break;
    if (line == ":server") {
      if (server == nullptr) {
        server = std::make_unique<aion::server::BoltLikeServer>(&engine);
        auto port = server->Start();
        AION_CHECK(port.ok());
        auto connected = aion::server::BoltLikeClient::Connect(*port);
        AION_CHECK(connected.ok());
        client = std::move(*connected);
        printf("bolt-like server on 127.0.0.1:%u; shell now routes through "
               "it\n", *port);
      }
      continue;
    }
    auto result = client ? client->Run(line) : engine.Execute(line);
    if (!result.ok()) {
      printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    printf("%s(%zu rows)\n", result->ToString().c_str(), result->NumRows());
  }
  if (server != nullptr) {
    client.reset();
    server->Stop();
  }
  (void)aion::storage::RemoveDirRecursively(*dir);
  return 0;
}
