// Aviation temporal paths — the Fig 2 scenario: an aviation network where
// airports (nodes) and flights (relationships) are annotated with time
// intervals; single-scan algorithms find the earliest-arrival and
// latest-departure journeys between airports.
//
// Build & run:  ./build/examples/aviation_paths
#include <algorithm>
#include <cstdio>
#include <vector>

#include "algo/temporal_paths.h"
#include "core/aion.h"
#include "storage/file.h"
#include "util/logging.h"

using aion::algo::EarliestArrival;
using aion::algo::FastestPathDuration;
using aion::algo::LatestDeparture;
using aion::algo::ShortestTemporalPathHops;
using aion::core::AionStore;
using aion::graph::GraphUpdate;
using aion::graph::kInfiniteTime;
using aion::graph::NodeId;
using aion::graph::Timestamp;

namespace {

const char* kAirports[] = {"AMS", "LHR", "JFK", "SFO", "NRT"};

}  // namespace

int main() {
  auto dir = aion::storage::MakeTempDir("aion_aviation_");
  AION_CHECK(dir.ok());
  AionStore::Options options;
  options.dir = *dir + "/aion";
  auto aion_store = AionStore::Open(options);
  AION_CHECK(aion_store.ok());
  AionStore& aion = **aion_store;

  // Airports 0..4 open at ts 0 (direct ingestion without a host database).
  std::vector<GraphUpdate> setup;
  for (NodeId i = 0; i < 5; ++i) {
    aion::graph::PropertySet props;
    props.Set("code", aion::graph::PropertyValue(kAirports[i]));
    setup.push_back(GraphUpdate::AddNode(i, {"Airport"}, props));
  }
  AION_CHECK_OK(aion.Ingest(1, setup));

  // Flights: relationship valid [departure, arrival). Mirrors Fig 2's
  // shape: an early two-hop route and a late direct-ish alternative.
  struct Flight {
    NodeId src, tgt;
    Timestamp dep, arr;
  };
  const Flight flights[] = {
      {0, 2, 2, 4},    // AMS -> JFK, early
      {2, 1, 6, 9},    // JFK -> LHR: earliest arrival path lands at 9
      {0, 3, 2, 5},    // AMS -> SFO
      {3, 1, 12, 15},  // SFO -> LHR
      {0, 4, 7, 10},   // AMS -> NRT: latest departure at 7
      {4, 1, 12, 15},  // NRT -> LHR
  };
  // Ingestion must be ordered by commit timestamp: collect every
  // departure/arrival event, sort, then replay.
  std::vector<GraphUpdate> events;
  aion::graph::RelId rel = 0;
  for (const Flight& f : flights) {
    GraphUpdate add =
        GraphUpdate::AddRelationship(rel, f.src, f.tgt, "FLIGHT");
    add.ts = f.dep;
    GraphUpdate del = GraphUpdate::DeleteRelationship(rel);
    del.ts = f.arr;
    events.push_back(std::move(add));
    events.push_back(std::move(del));
    ++rel;
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const GraphUpdate& a, const GraphUpdate& b) {
                     return a.ts < b.ts;
                   });
  aion::core::WriteBatch schedule;
  schedule.AddStream(events);
  AION_CHECK_OK(aion.IngestBatch(std::move(schedule)));
  aion.DrainBackground();

  // Extract the temporal LPG and run the single-scan path algorithms.
  auto temporal = aion.GetTemporalGraph(0, kInfiniteTime);
  AION_CHECK(temporal.ok());

  printf("Earliest arrival from AMS (departing >= t=0):\n");
  const auto ea = EarliestArrival(**temporal, 0, 0, kInfiniteTime);
  for (NodeId i = 0; i < 5; ++i) {
    if (ea[i] == kInfiniteTime) {
      printf("  %s: unreachable\n", kAirports[i]);
    } else {
      printf("  %s: t=%llu\n", kAirports[i],
             static_cast<unsigned long long>(ea[i]));
    }
  }

  printf("\nLatest departure towards LHR (arriving by t=inf):\n");
  const auto ld = LatestDeparture(**temporal, 1, 0, kInfiniteTime);
  for (NodeId i = 0; i < 5; ++i) {
    if (i == 1) continue;
    if (ld[i] == 0) {
      printf("  %s: cannot reach LHR\n", kAirports[i]);
    } else {
      printf("  %s: leave at t=%llu\n", kAirports[i],
             static_cast<unsigned long long>(ld[i]));
    }
  }

  const Timestamp fastest = FastestPathDuration(**temporal, 0, 1, 0,
                                                kInfiniteTime);
  printf("\nFastest AMS -> LHR journey: %llu time units\n",
         static_cast<unsigned long long>(fastest));
  printf("Fewest hops AMS -> LHR: %u\n",
         ShortestTemporalPathHops(**temporal, 0, 1, 0, kInfiniteTime));

  // Tightening the deadline forces the early route.
  const auto ld_by_10 = LatestDeparture(**temporal, 1, 0, 10);
  printf("With a t<=10 deadline, leave AMS no later than t=%llu\n",
         static_cast<unsigned long long>(ld_by_10[0]));

  (void)aion::storage::RemoveDirRecursively(*dir);
  printf("\naviation_paths: OK\n");
  return 0;
}
