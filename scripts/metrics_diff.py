#!/usr/bin/env python3
"""Diff two Aion metrics snapshots by instrument names.

The bench binaries emit one line per dataset:

    metrics <label> {"counters":{...},"gauges":{...},"histograms":{...}}

This tool reduces such output (or a raw ToJson() object) to the set of
instrument names per kind and compares it against a checked-in baseline, so
CI catches instruments that were accidentally dropped or renamed without
being sensitive to the values themselves (which vary run to run).

Usage:
    metrics_diff.py extract BENCH_OUTPUT          # names-only JSON -> stdout
    metrics_diff.py diff BASELINE CURRENT         # exit 1 on any difference
    metrics_diff.py require SNAPSHOT NAME...      # exit 1 on a missing name

Both `diff` operands accept any supported format: a names-only baseline
written by `extract`, raw bench output with `metrics ` lines, or a bare
registry ToJson() object.

`require` asserts that every listed instrument name exists (in any kind, in
every label) of the snapshot; a NAME ending in "." or "*" matches as a
prefix. CI uses it to pin down instrument families a PR introduces — e.g.
`require bench.out 'compaction.*'` fails the build if the storage-lifecycle
instruments stop being registered.
"""

import json
import sys

KINDS = ("counters", "gauges", "histograms")


def names_from_registry(registry):
    """{'counters': {...}, ...} -> {'counters': [names], ...}."""
    return {kind: sorted(registry.get(kind, {})) for kind in KINDS}


def load_names(path):
    """Returns {label: {kind: [names]}} from any supported file format."""
    with open(path, "r", encoding="utf-8") as f:
        text = f.read()

    # Bench output: scrape `metrics <label> <json>` lines.
    scraped = {}
    for line in text.splitlines():
        if not line.startswith("metrics "):
            continue
        try:
            _, label, payload = line.split(" ", 2)
            scraped[label] = names_from_registry(json.loads(payload))
        except (ValueError, json.JSONDecodeError) as e:
            sys.exit(f"{path}: malformed metrics line ({e}): {line[:120]}")
    if scraped:
        return scraped

    try:
        doc = json.loads(text)
    except json.JSONDecodeError as e:
        sys.exit(f"{path}: neither metrics lines nor JSON ({e})")

    # Raw registry ToJson(): value dicts under counters/gauges/histograms.
    if any(kind in doc for kind in KINDS):
        return {"default": names_from_registry(doc)}

    # Names-only baseline from `extract`: {label: {kind: [names]}}.
    return {
        label: {kind: sorted(kinds.get(kind, [])) for kind in KINDS}
        for label, kinds in doc.items()
    }


def diff_names(baseline, current):
    """Prints differences; returns True when the name sets diverge."""
    changed = False
    for label in sorted(set(baseline) | set(current)):
        if label not in current:
            print(f"missing label in current run: {label}")
            changed = True
            continue
        if label not in baseline:
            print(f"new label not in baseline: {label}")
            changed = True
            continue
        for kind in KINDS:
            base = set(baseline[label][kind])
            cur = set(current[label][kind])
            for name in sorted(base - cur):
                print(f"{label}: {kind[:-1]} removed: {name}")
                changed = True
            for name in sorted(cur - base):
                print(f"{label}: {kind[:-1]} added: {name}")
                changed = True
    return changed


def require_names(snapshot, required):
    """Prints missing instruments; returns True when any requirement fails."""
    failed = False
    for label in sorted(snapshot):
        present = set()
        for kind in KINDS:
            present.update(snapshot[label][kind])
        for req in required:
            if req.endswith(("*", ".")):
                prefix = req.rstrip("*")
                if not any(name.startswith(prefix) for name in present):
                    print(f"{label}: no instrument with prefix {prefix!r}")
                    failed = True
            elif req not in present:
                print(f"{label}: required instrument missing: {req}")
                failed = True
    return failed


def main(argv):
    if len(argv) == 3 and argv[1] == "extract":
        print(json.dumps(load_names(argv[2]), indent=2, sort_keys=True))
        return 0
    if len(argv) >= 4 and argv[1] == "require":
        if require_names(load_names(argv[2]), argv[3:]):
            return 1
        print(f"all {len(argv) - 3} required instrument name(s) present")
        return 0
    if len(argv) == 4 and argv[1] == "diff":
        if diff_names(load_names(argv[2]), load_names(argv[3])):
            print("metrics instrument names diverged from baseline; "
                  "if intentional, regenerate bench/baseline_metrics.json "
                  "with `metrics_diff.py extract`.", file=sys.stderr)
            return 1
        print("metrics instrument names match baseline")
        return 0
    print(__doc__, file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv))
