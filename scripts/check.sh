#!/usr/bin/env bash
# Full local gate: RelWithDebInfo build + tests, then an ASan/UBSan build +
# tests. src/obs compiles with -Werror (see src/obs/CMakeLists.txt), so any
# warning in the observability layer fails the build here.
#
# Usage: scripts/check.sh [--fast]
#   --fast   skip the sanitizer pass (RelWithDebInfo build + ctest only)
set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "== RelWithDebInfo build =="
cmake --preset default
cmake --build --preset default -j "${JOBS}"

echo "== ctest (RelWithDebInfo) =="
ctest --preset default -j "${JOBS}"

if [[ "${FAST}" == "1" ]]; then
  echo "check.sh: fast mode — sanitizer pass skipped."
  exit 0
fi

echo "== ASan/UBSan build =="
cmake --preset asan
cmake --build --preset asan -j "${JOBS}"

echo "== ctest (ASan/UBSan) =="
ctest --preset asan -j "${JOBS}"

echo "check.sh: all green."
