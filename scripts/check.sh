#!/usr/bin/env bash
# Local/CI gate over the CMake presets. src/obs compiles with -Werror (see
# src/obs/CMakeLists.txt), so any warning in the observability layer fails
# the build here.
#
# Usage: scripts/check.sh [--fast] [--asan] [--tsan] [--preset NAME]
#   (no flags)      default preset (RelWithDebInfo) + the asan preset
#   --fast          default preset only (skip every sanitizer pass)
#   --asan          asan preset only
#   --tsan          tsan preset only, restricted to the concurrency tests
#                   (see TSAN_TEST_FILTER below)
#   --preset NAME   exactly that preset, full test suite
#
# Safe to invoke from any working directory; builds always land in the
# preset's binaryDir under the repo root. Parallelism: ctest honours
# CTEST_PARALLEL_LEVEL when exported, else the build's -j value is used.
set -euo pipefail
cd "$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

# The TSan pass gates the threaded paths, not the whole (slower under the
# sanitizer) suite: thread-pool plumbing, storage-layer concurrency, the
# concurrent temporal reads introduced with the sharded GraphStore, and
# cross-thread query cancellation (kill / server Stop sweeps).
TSAN_TEST_FILTER='ThreadPool|StorageConcurrency|ConcurrencyStress'
TSAN_TEST_FILTER+='|ConcurrentReads|ConcurrentInterning|ConcurrentCommits'
TSAN_TEST_FILTER+='|GroupCommit|IngestBatch|Compaction|Cancel|ParallelExec'

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
CTEST_JOBS="${CTEST_PARALLEL_LEVEL:-${JOBS}}"
export CTEST_PARALLEL_LEVEL="${CTEST_JOBS}"

run_preset() {
  local preset="$1"
  shift
  echo "== ${preset}: configure + build =="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${JOBS}"
  echo "== ${preset}: ctest (-j ${CTEST_JOBS}) =="
  ctest --preset "${preset}" -j "${CTEST_JOBS}" "$@"
}

case "${1:-}" in
  --fast)
    run_preset default
    echo "check.sh: fast mode — sanitizer passes skipped."
    ;;
  --asan)
    run_preset asan
    ;;
  --tsan)
    run_preset tsan -R "${TSAN_TEST_FILTER}"
    ;;
  --preset)
    [[ -n "${2:-}" ]] || { echo "check.sh: --preset needs a name" >&2; exit 2; }
    run_preset "$2"
    ;;
  "")
    run_preset default
    run_preset asan
    ;;
  *)
    echo "check.sh: unknown flag '$1'" >&2
    exit 2
    ;;
esac

echo "check.sh: all green."
