// Deterministic pseudo-random utilities used by workload generators and
// benchmarks. Deliberately not std::mt19937-based on hot paths: Xorshift128+
// is a few cycles per draw and completely reproducible across platforms.
#ifndef AION_UTIL_RANDOM_H_
#define AION_UTIL_RANDOM_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace aion::util {

/// Xorshift128+ generator. Deterministic for a given seed.
class Random {
 public:
  explicit Random(uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding so nearby seeds give unrelated streams.
    auto splitmix = [&seed]() {
      seed += 0x9e3779b97f4a7c15ULL;
      uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      return z ^ (z >> 31);
    };
    s0_ = splitmix();
    s1_ = splitmix();
    if (s0_ == 0 && s1_ == 0) s1_ = 1;
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) {
    assert(n > 0);
    return Next() % n;
  }

  /// Uniform in [lo, hi). hi must be > lo.
  uint64_t UniformRange(uint64_t lo, uint64_t hi) {
    assert(hi > lo);
    return lo + Uniform(hi - lo);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  uint64_t s0_;
  uint64_t s1_;
};

/// Zipf-distributed sampler over [0, n) with skew `theta` (0 = uniform).
/// Uses the standard rejection-free inverse-CDF approximation (Gray et al.).
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double theta, uint64_t seed = 42)
      : n_(n), theta_(theta), rng_(seed) {
    assert(n > 0);
    zetan_ = Zeta(n, theta);
    zeta2_ = Zeta(2, theta);
    alpha_ = 1.0 / (1.0 - theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - zeta2_ / zetan_);
  }

  uint64_t Next() {
    const double u = rng_.NextDouble();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    return static_cast<uint64_t>(
        static_cast<double>(n_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
  }

 private:
  static double Zeta(uint64_t n, double theta) {
    double sum = 0;
    for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(i, theta);
    return sum;
  }

  uint64_t n_;
  double theta_;
  Random rng_;
  double zetan_;
  double zeta2_;
  double alpha_;
  double eta_;
};

/// In-place Fisher-Yates shuffle driven by the given generator.
template <typename T>
void Shuffle(std::vector<T>* v, Random* rng) {
  for (size_t i = v->size(); i > 1; --i) {
    const size_t j = rng->Uniform(i);
    std::swap((*v)[i - 1], (*v)[j]);
  }
}

}  // namespace aion::util

#endif  // AION_UTIL_RANDOM_H_
