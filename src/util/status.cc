#include "util/status.h"

namespace aion::util {

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kBackpressure:
      return "Backpressure";
    case StatusCode::kOutOfRetention:
      return "OutOfRetention";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace aion::util
