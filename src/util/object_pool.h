// Statically-sized object pools (Sec 5.3): Aion minimizes allocation on the
// critical path by recycling byte buffers and scratch objects. BufferPool
// hands out std::string buffers that keep their capacity across uses;
// each worker thread owns its own pool to avoid contention.
#ifndef AION_UTIL_OBJECT_POOL_H_
#define AION_UTIL_OBJECT_POOL_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace aion::util {

/// Recycles objects of type T. Acquire() returns a cleared object (via
/// Clearer{}(obj)); Release() returns it to the pool up to `max_pooled`.
template <typename T, typename Clearer>
class ObjectPool {
 public:
  explicit ObjectPool(size_t max_pooled = 64) : max_pooled_(max_pooled) {}

  T Acquire() {
    if (free_.empty()) return T();
    T obj = std::move(free_.back());
    free_.pop_back();
    Clearer{}(&obj);
    return obj;
  }

  void Release(T obj) {
    if (free_.size() < max_pooled_) free_.push_back(std::move(obj));
  }

  size_t pooled() const { return free_.size(); }

 private:
  size_t max_pooled_;
  std::vector<T> free_;
};

struct StringClearer {
  void operator()(std::string* s) const { s->clear(); }
};

/// Pool of byte buffers for record encoding / disk I/O scratch space.
/// clear() keeps capacity, so steady-state encoding allocates nothing.
using BufferPool = ObjectPool<std::string, StringClearer>;

/// RAII lease of a pooled buffer.
class PooledBuffer {
 public:
  explicit PooledBuffer(BufferPool* pool)
      : pool_(pool), buffer_(pool->Acquire()) {}
  ~PooledBuffer() { pool_->Release(std::move(buffer_)); }

  PooledBuffer(const PooledBuffer&) = delete;
  PooledBuffer& operator=(const PooledBuffer&) = delete;

  std::string* get() { return &buffer_; }
  std::string& operator*() { return buffer_; }
  std::string* operator->() { return &buffer_; }

 private:
  BufferPool* pool_;
  std::string buffer_;
};

}  // namespace aion::util

#endif  // AION_UTIL_OBJECT_POOL_H_
