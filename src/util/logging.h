// Minimal assertion/check macros. AION_CHECK* abort with a message on
// violation in all build modes; AION_DCHECK* compile away in NDEBUG builds.
#ifndef AION_UTIL_LOGGING_H_
#define AION_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace aion::util::logging_internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  fprintf(stderr, "AION_CHECK failed at %s:%d: %s\n", file, line, expr);
  fflush(stderr);
  abort();
}

}  // namespace aion::util::logging_internal

#define AION_CHECK(expr)                                                \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::aion::util::logging_internal::CheckFailed(__FILE__, __LINE__,   \
                                                  #expr);               \
    }                                                                   \
  } while (0)

#define AION_CHECK_OK(status_expr)                                      \
  do {                                                                  \
    auto _aion_chk = (status_expr);                                     \
    if (!_aion_chk.ok()) {                                              \
      fprintf(stderr, "AION_CHECK_OK failed at %s:%d: %s\n", __FILE__,  \
              __LINE__, _aion_chk.ToString().c_str());                  \
      fflush(stderr);                                                   \
      abort();                                                          \
    }                                                                   \
  } while (0)

#ifdef NDEBUG
#define AION_DCHECK(expr) \
  do {                    \
  } while (0)
#else
#define AION_DCHECK(expr) AION_CHECK(expr)
#endif

#endif  // AION_UTIL_LOGGING_H_
