#include "util/coding.h"

namespace aion::util {

void PutVarint64(std::string* dst, uint64_t value) {
  unsigned char buf[10];
  int n = 0;
  while (value >= 0x80) {
    buf[n++] = static_cast<unsigned char>(value | 0x80);
    value >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(value);
  dst->append(reinterpret_cast<char*>(buf), n);
}

void PutVarint32(std::string* dst, uint32_t value) {
  PutVarint64(dst, value);
}

bool GetVarint64(Slice* input, uint64_t* value) {
  uint64_t result = 0;
  for (uint32_t shift = 0; shift <= 63 && !input->empty(); shift += 7) {
    unsigned char byte = static_cast<unsigned char>((*input)[0]);
    input->RemovePrefix(1);
    if (byte & 0x80) {
      result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    } else {
      result |= static_cast<uint64_t>(byte) << shift;
      *value = result;
      return true;
    }
  }
  return false;
}

bool GetVarint32(Slice* input, uint32_t* value) {
  uint64_t v64;
  if (!GetVarint64(input, &v64) || v64 > UINT32_MAX) return false;
  *value = static_cast<uint32_t>(v64);
  return true;
}

int VarintLength(uint64_t value) {
  int len = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++len;
  }
  return len;
}

bool GetLengthPrefixedSlice(Slice* input, Slice* result) {
  uint64_t len;
  if (!GetVarint64(input, &len)) return false;
  if (input->size() < len) return false;
  *result = Slice(input->data(), len);
  input->RemovePrefix(len);
  return true;
}

}  // namespace aion::util
