// Byte-level encode/decode primitives shared by the storage layer and record
// codecs: little-endian fixed-width integers for record fields, varints for
// compact lengths, and big-endian ("order-preserving") integers for B+Tree
// composite keys where byte order must match numeric order.
#ifndef AION_UTIL_CODING_H_
#define AION_UTIL_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "util/slice.h"

namespace aion::util {

// ---------------------------------------------------------------------------
// Fixed-width little-endian encoding (record fields).
// ---------------------------------------------------------------------------

inline void EncodeFixed32(char* dst, uint32_t value) {
  memcpy(dst, &value, sizeof(value));  // little-endian hosts only
}

inline void EncodeFixed64(char* dst, uint64_t value) {
  memcpy(dst, &value, sizeof(value));
}

inline uint32_t DecodeFixed32(const char* ptr) {
  uint32_t result;
  memcpy(&result, ptr, sizeof(result));
  return result;
}

inline uint64_t DecodeFixed64(const char* ptr) {
  uint64_t result;
  memcpy(&result, ptr, sizeof(result));
  return result;
}

inline void PutFixed32(std::string* dst, uint32_t value) {
  char buf[sizeof(value)];
  EncodeFixed32(buf, value);
  dst->append(buf, sizeof(buf));
}

inline void PutFixed64(std::string* dst, uint64_t value) {
  char buf[sizeof(value)];
  EncodeFixed64(buf, value);
  dst->append(buf, sizeof(buf));
}

inline void PutDouble(std::string* dst, double value) {
  uint64_t bits;
  memcpy(&bits, &value, sizeof(bits));
  PutFixed64(dst, bits);
}

inline double DecodeDouble(const char* ptr) {
  uint64_t bits = DecodeFixed64(ptr);
  double value;
  memcpy(&value, &bits, sizeof(value));
  return value;
}

// ---------------------------------------------------------------------------
// Varint encoding (compact lengths and ids).
// ---------------------------------------------------------------------------

/// Appends `value` as a LEB128 varint (1-10 bytes).
void PutVarint64(std::string* dst, uint64_t value);
void PutVarint32(std::string* dst, uint32_t value);

/// Parses a varint from the front of `input`, advancing it. Returns false on
/// truncated/overlong input.
bool GetVarint64(Slice* input, uint64_t* value);
bool GetVarint32(Slice* input, uint32_t* value);

/// Returns the encoded size of `value` as a varint.
int VarintLength(uint64_t value);

/// ZigZag maps signed integers to unsigned so small magnitudes stay short.
inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

// ---------------------------------------------------------------------------
// Length-prefixed slices.
// ---------------------------------------------------------------------------

inline void PutLengthPrefixedSlice(std::string* dst, const Slice& value) {
  PutVarint64(dst, value.size());
  dst->append(value.data(), value.size());
}

/// Parses a varint length followed by that many bytes; advances `input`.
bool GetLengthPrefixedSlice(Slice* input, Slice* result);

// ---------------------------------------------------------------------------
// Big-endian encoding for order-preserving composite keys. A sequence of
// big-endian fields compares bytewise in the same order as the tuple of
// numeric values, which is what the B+Tree needs.
// ---------------------------------------------------------------------------

inline void PutBigEndian64(std::string* dst, uint64_t value) {
  char buf[8];
  for (int i = 7; i >= 0; --i) {
    buf[i] = static_cast<char>(value & 0xff);
    value >>= 8;
  }
  dst->append(buf, 8);
}

inline uint64_t DecodeBigEndian64(const char* ptr) {
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value = (value << 8) | static_cast<unsigned char>(ptr[i]);
  }
  return value;
}

inline void PutBigEndian32(std::string* dst, uint32_t value) {
  char buf[4];
  for (int i = 3; i >= 0; --i) {
    buf[i] = static_cast<char>(value & 0xff);
    value >>= 8;
  }
  dst->append(buf, 4);
}

inline uint32_t DecodeBigEndian32(const char* ptr) {
  uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value = (value << 8) | static_cast<unsigned char>(ptr[i]);
  }
  return value;
}

}  // namespace aion::util

#endif  // AION_UTIL_CODING_H_
