// Status and StatusOr<T>: exception-free error handling for all library
// paths, following the RocksDB/Arrow idiom. Functions that can fail return a
// Status (or StatusOr<T> when they also produce a value); callers must check
// ok() before using the result.
#ifndef AION_UTIL_STATUS_H_
#define AION_UTIL_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace aion::util {

/// Error category for a failed operation.
enum class StatusCode : int {
  kOk = 0,
  kNotFound = 1,
  kInvalidArgument = 2,
  kCorruption = 3,
  kIOError = 4,
  kOutOfRange = 5,
  kAlreadyExists = 6,
  kFailedPrecondition = 7,
  kUnimplemented = 8,
  kAborted = 9,
  kInternal = 10,
  kBackpressure = 11,
  kOutOfRetention = 12,
  kCancelled = 13,
};

/// Result of an operation that can fail. Cheap to copy in the OK case
/// (empty message); carries a human-readable message otherwise.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Corruption(std::string msg = "") {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg = "") {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status OutOfRange(std::string msg = "") {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg = "") {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg = "") {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg = "") {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Aborted(std::string msg = "") {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Internal(std::string msg = "") {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Backpressure(std::string msg = "") {
    return Status(StatusCode::kBackpressure, std::move(msg));
  }
  static Status OutOfRetention(std::string msg = "") {
    return Status(StatusCode::kOutOfRetention, std::move(msg));
  }
  static Status Cancelled(std::string msg = "") {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsBackpressure() const { return code_ == StatusCode::kBackpressure; }
  bool IsOutOfRetention() const {
    return code_ == StatusCode::kOutOfRetention;
  }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code();
}

/// Either a value of type T or an error Status. Never holds both.
template <typename T>
class StatusOr {
 public:
  /// Constructs from an error; `status.ok()` must be false.
  StatusOr(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok());
  }
  StatusOr(T value) : repr_(std::move(value)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(repr_); }

  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace aion::util

/// Propagates a non-OK Status from an expression to the caller.
#define AION_RETURN_IF_ERROR(expr)                 \
  do {                                             \
    ::aion::util::Status _aion_status = (expr);    \
    if (!_aion_status.ok()) return _aion_status;   \
  } while (0)

/// Evaluates a StatusOr expression, propagating errors, else assigns `lhs`.
#define AION_ASSIGN_OR_RETURN(lhs, expr)                  \
  auto AION_CONCAT_(_aion_sor_, __LINE__) = (expr);       \
  if (!AION_CONCAT_(_aion_sor_, __LINE__).ok())           \
    return AION_CONCAT_(_aion_sor_, __LINE__).status();   \
  lhs = std::move(AION_CONCAT_(_aion_sor_, __LINE__)).value()

#define AION_CONCAT_IMPL_(a, b) a##b
#define AION_CONCAT_(a, b) AION_CONCAT_IMPL_(a, b)

#endif  // AION_UTIL_STATUS_H_
