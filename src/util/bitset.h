// Dynamic bitset for visited/frontier sets in graph algorithms. Stand-in for
// the roaring bitmaps the paper pools per worker thread (Sec 5.3): dense
// word-packed storage with O(1) test/set and fast reset, reusable across
// iterations via Reset() without reallocation.
#ifndef AION_UTIL_BITSET_H_
#define AION_UTIL_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

namespace aion::util {

class Bitset {
 public:
  Bitset() = default;
  explicit Bitset(size_t n) { Resize(n); }

  void Resize(size_t n) {
    size_ = n;
    words_.resize((n + 63) / 64, 0);
  }

  size_t size() const { return size_; }

  bool Test(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  void Set(size_t i) { words_[i >> 6] |= 1ULL << (i & 63); }
  void Clear(size_t i) { words_[i >> 6] &= ~(1ULL << (i & 63)); }

  /// Sets bit i; returns true if it was previously clear.
  bool TestAndSet(size_t i) {
    const uint64_t mask = 1ULL << (i & 63);
    uint64_t& word = words_[i >> 6];
    const bool was_clear = (word & mask) == 0;
    word |= mask;
    return was_clear;
  }

  /// Clears all bits, keeping capacity.
  void Reset() {
    if (!words_.empty()) {
      memset(words_.data(), 0, words_.size() * sizeof(uint64_t));
    }
  }

  size_t Count() const {
    size_t total = 0;
    for (uint64_t w : words_) total += static_cast<size_t>(__builtin_popcountll(w));
    return total;
  }

  /// Calls fn(i) for every set bit in ascending order.
  template <typename Fn>
  void ForEachSet(Fn&& fn) const {
    for (size_t wi = 0; wi < words_.size(); ++wi) {
      uint64_t w = words_[wi];
      while (w != 0) {
        const int bit = __builtin_ctzll(w);
        fn(wi * 64 + static_cast<size_t>(bit));
        w &= w - 1;
      }
    }
  }

 private:
  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace aion::util

#endif  // AION_UTIL_BITSET_H_
