// Fixed-size worker pool. Used for Aion's background LineageStore cascade
// (Sec 5.1, one ordered worker), the shared reader pool that parallelizes
// TimeStore replay decode, and parallel neighbourhood construction /
// analytics (Sec 5.2). Tasks are plain std::function<void()>; Wait() drains
// the queue, which the tests use to make the asynchronous cascade
// deterministic. ParallelFor from several threads at once is safe: each
// caller tracks completion of its own batch.
#ifndef AION_UTIL_THREAD_POOL_H_
#define AION_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace aion::util {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution on some worker thread.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task (including tasks submitted while
  /// waiting) has finished executing.
  void Wait();

  /// Runs fn(i) for i in [0, n), partitioned across the pool, and waits.
  /// Falls back to inline execution for tiny ranges or a 1-thread pool.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  size_t num_threads() const { return threads_.size(); }

  size_t pending_tasks() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size() + active_;
  }

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  size_t active_ = 0;
  bool shutting_down_ = false;
};

}  // namespace aion::util

#endif  // AION_UTIL_THREAD_POOL_H_
