#include "util/thread_pool.h"

#include <atomic>
#include <utility>

namespace aion::util {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t workers = threads_.size();
  if (workers <= 1 || n < 2 * workers) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<size_t> next{0};
  size_t remaining = workers;  // guarded by done_mu
  std::mutex done_mu;
  std::condition_variable done_cv;
  const size_t chunk = (n + workers * 4 - 1) / (workers * 4);
  for (size_t w = 0; w < workers; ++w) {
    Submit([&] {
      for (;;) {
        const size_t begin = next.fetch_add(chunk);
        if (begin >= n) break;
        const size_t end = begin + chunk < n ? begin + chunk : n;
        for (size_t i = begin; i < end; ++i) fn(i);
      }
      // The decrement must happen under done_mu: were it sequenced before
      // the lock, the caller could observe zero, return, and destroy the
      // mutex this worker is about to acquire.
      std::lock_guard<std::mutex> lock(done_mu);
      if (--remaining == 0) done_cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return remaining == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace aion::util
