// A cost-aware LRU cache used by the GraphStore (snapshot cache). Entries
// carry an explicit cost (e.g. estimated bytes); the cache evicts
// least-recently-used entries until total cost fits the capacity.
//
// Not thread-safe; callers synchronize externally (GraphStore holds a mutex,
// matching the paper's coarse-grained snapshot handout).
#ifndef AION_UTIL_LRU_CACHE_H_
#define AION_UTIL_LRU_CACHE_H_

#include <cassert>
#include <cstddef>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>

namespace aion::util {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class LruCache {
 public:
  /// `capacity` is the maximum total cost held before eviction kicks in.
  explicit LruCache(size_t capacity) : capacity_(capacity) {}

  LruCache(const LruCache&) = delete;
  LruCache& operator=(const LruCache&) = delete;

  /// Inserts or replaces `key`, evicting LRU entries to fit. An entry whose
  /// cost alone exceeds the capacity is still admitted (it simply becomes
  /// the only entry), so oversized snapshots remain retrievable.
  void Put(const Key& key, Value value, size_t cost = 1) {
    auto it = index_.find(key);
    if (it != index_.end()) {
      total_cost_ -= it->second->cost;
      entries_.erase(it->second);
      index_.erase(it);
    }
    entries_.push_front(Entry{key, std::move(value), cost});
    index_[key] = entries_.begin();
    total_cost_ += cost;
    EvictIfNeeded();
  }

  /// Returns the value and marks the entry most-recently-used.
  std::optional<Value> Get(const Key& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return std::nullopt;
    entries_.splice(entries_.begin(), entries_, it->second);
    return entries_.front().value;
  }

  /// Lookup without promoting the entry.
  std::optional<Value> Peek(const Key& key) const {
    auto it = index_.find(key);
    if (it == index_.end()) return std::nullopt;
    return it->second->value;
  }

  bool Contains(const Key& key) const { return index_.count(key) > 0; }

  void Erase(const Key& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return;
    total_cost_ -= it->second->cost;
    entries_.erase(it->second);
    index_.erase(it);
  }

  void Clear() {
    entries_.clear();
    index_.clear();
    total_cost_ = 0;
  }

  /// Visits entries from most- to least-recently-used; `fn(key, value)`.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Entry& e : entries_) fn(e.key, e.value);
  }

  size_t size() const { return entries_.size(); }
  size_t total_cost() const { return total_cost_; }
  size_t capacity() const { return capacity_; }

  void set_capacity(size_t capacity) {
    capacity_ = capacity;
    EvictIfNeeded();
  }

 private:
  struct Entry {
    Key key;
    Value value;
    size_t cost;
  };

  void EvictIfNeeded() {
    while (total_cost_ > capacity_ && entries_.size() > 1) {
      const Entry& victim = entries_.back();
      total_cost_ -= victim.cost;
      index_.erase(victim.key);
      entries_.pop_back();
    }
  }

  size_t capacity_;
  size_t total_cost_ = 0;
  std::list<Entry> entries_;  // front = most recently used
  std::unordered_map<Key, typename std::list<Entry>::iterator, Hash> index_;
};

}  // namespace aion::util

#endif  // AION_UTIL_LRU_CACHE_H_
