// A fixed-size bloom filter over 64-bit keys, used as a per-segment entity
// filter in the segmented update log: temporal scans that look for a single
// entity's history can skip whole log segments whose filter excludes the
// entity. Double hashing (Kirsch-Mitzenmacher) derives all probe positions
// from two mixes of the key, so adds and probes are branch-light.
//
// The bit array serializes as raw bytes (see bytes()/FromBytes), which the
// segment manifest persists alongside each sealed segment's fence keys.
#ifndef AION_UTIL_BLOOM_H_
#define AION_UTIL_BLOOM_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

namespace aion::util {

/// SplitMix64 finalizer: a cheap, well-distributed 64-bit mix.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

class BloomFilter {
 public:
  /// Probes per key. ~10 bits/key with 6 probes gives a ~1% false-positive
  /// rate; oversized filters only get better.
  static constexpr size_t kNumProbes = 6;

  /// An empty filter with at least 64 bits (rounded up to whole bytes).
  explicit BloomFilter(size_t bits = 64)
      : data_((bits < 64 ? 64 : bits + 7) / 8, '\0') {}

  /// Rehydrates a filter from serialized bytes() output.
  static BloomFilter FromBytes(std::string bytes) {
    BloomFilter filter;
    if (!bytes.empty()) filter.data_ = std::move(bytes);
    return filter;
  }

  void Add(uint64_t key) {
    uint64_t h = Mix64(key);
    const uint64_t delta = Mix64(h ^ 0xa5a5a5a5a5a5a5a5ull) | 1;
    const uint64_t bits = data_.size() * 8;
    for (size_t i = 0; i < kNumProbes; ++i) {
      const uint64_t bit = h % bits;
      data_[bit / 8] |= static_cast<char>(1u << (bit % 8));
      h += delta;
    }
  }

  /// False means definitely absent; true means possibly present.
  bool MightContain(uint64_t key) const {
    uint64_t h = Mix64(key);
    const uint64_t delta = Mix64(h ^ 0xa5a5a5a5a5a5a5a5ull) | 1;
    const uint64_t bits = data_.size() * 8;
    for (size_t i = 0; i < kNumProbes; ++i) {
      const uint64_t bit = h % bits;
      if ((data_[bit / 8] & static_cast<char>(1u << (bit % 8))) == 0) {
        return false;
      }
      h += delta;
    }
    return true;
  }

  /// The raw bit array; pass to FromBytes to rebuild the filter.
  const std::string& bytes() const { return data_; }

  size_t size_bits() const { return data_.size() * 8; }

 private:
  std::string data_;
};

}  // namespace aion::util

#endif  // AION_UTIL_BLOOM_H_
