// Simple count/frequency histograms. GraphStatistics (cardinality
// estimation, Sec 5.1) tracks label/type frequencies with CountTable;
// benchmarks report latency distributions with LatencyHistogram.
#ifndef AION_UTIL_HISTOGRAM_H_
#define AION_UTIL_HISTOGRAM_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace aion::util {

/// Frequency table over string keys (labels, relationship types, patterns).
class CountTable {
 public:
  void Add(const std::string& key, int64_t delta = 1) {
    int64_t& v = counts_[key];
    v += delta;
    if (v <= 0) counts_.erase(key);
  }

  int64_t Get(const std::string& key) const {
    auto it = counts_.find(key);
    return it == counts_.end() ? 0 : it->second;
  }

  int64_t Total() const {
    int64_t total = 0;
    for (const auto& [k, v] : counts_) total += v;
    return total;
  }

  size_t distinct() const { return counts_.size(); }
  void Clear() { counts_.clear(); }

  const std::unordered_map<std::string, int64_t>& counts() const {
    return counts_;
  }

 private:
  std::unordered_map<std::string, int64_t> counts_;
};

/// Records raw samples (e.g. nanoseconds) and reports percentiles.
class LatencyHistogram {
 public:
  void Add(double sample) { samples_.push_back(sample); }

  size_t count() const { return samples_.size(); }

  double Mean() const {
    if (samples_.empty()) return 0;
    double sum = 0;
    for (double s : samples_) sum += s;
    return sum / static_cast<double>(samples_.size());
  }

  /// p in [0, 100]. Sorts lazily on call.
  double Percentile(double p) {
    if (samples_.empty()) return 0;
    std::sort(samples_.begin(), samples_.end());
    const double rank = (p / 100.0) * static_cast<double>(samples_.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples_[lo] * (1 - frac) + samples_[hi] * frac;
  }

  double Min() {
    return samples_.empty()
               ? 0
               : *std::min_element(samples_.begin(), samples_.end());
  }
  double Max() {
    return samples_.empty()
               ? 0
               : *std::max_element(samples_.begin(), samples_.end());
  }

  void Clear() { samples_.clear(); }

 private:
  std::vector<double> samples_;
};

}  // namespace aion::util

#endif  // AION_UTIL_HISTOGRAM_H_
