// Simple count/frequency histograms. GraphStatistics (cardinality
// estimation, Sec 5.1) tracks label/type frequencies with CountTable;
// benchmarks report latency distributions with LatencyHistogram; the
// observability layer (src/obs) aggregates per-thread latencies with
// AtomicLatencyHistogram.
#ifndef AION_UTIL_HISTOGRAM_H_
#define AION_UTIL_HISTOGRAM_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace aion::util {

/// Frequency table over string keys (labels, relationship types, patterns).
class CountTable {
 public:
  void Add(const std::string& key, int64_t delta = 1) {
    int64_t& v = counts_[key];
    v += delta;
    if (v <= 0) counts_.erase(key);
  }

  int64_t Get(const std::string& key) const {
    auto it = counts_.find(key);
    return it == counts_.end() ? 0 : it->second;
  }

  int64_t Total() const {
    int64_t total = 0;
    for (const auto& [k, v] : counts_) total += v;
    return total;
  }

  size_t distinct() const { return counts_.size(); }
  void Clear() { counts_.clear(); }

  const std::unordered_map<std::string, int64_t>& counts() const {
    return counts_;
  }

 private:
  std::unordered_map<std::string, int64_t> counts_;
};

/// Records raw samples (e.g. nanoseconds) and reports percentiles.
class LatencyHistogram {
 public:
  void Add(double sample) { samples_.push_back(sample); }

  size_t count() const { return samples_.size(); }

  double Mean() const {
    if (samples_.empty()) return 0;
    double sum = 0;
    for (double s : samples_) sum += s;
    return sum / static_cast<double>(samples_.size());
  }

  /// p in [0, 100]. Sorts lazily on call.
  double Percentile(double p) {
    if (samples_.empty()) return 0;
    std::sort(samples_.begin(), samples_.end());
    const double rank = (p / 100.0) * static_cast<double>(samples_.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples_[lo] * (1 - frac) + samples_[hi] * frac;
  }

  double Min() {
    return samples_.empty()
               ? 0
               : *std::min_element(samples_.begin(), samples_.end());
  }
  double Max() {
    return samples_.empty()
               ? 0
               : *std::max_element(samples_.begin(), samples_.end());
  }

  void Clear() { samples_.clear(); }

 private:
  std::vector<double> samples_;
};

/// Summary of an AtomicLatencyHistogram at one point in time. Percentiles
/// are bucket upper bounds (exponential buckets: at most 2x off).
struct LatencySummary {
  /// One exposition bucket: `cumulative_count` samples had a value <= `le`
  /// (upper bound inclusive, Prometheus `le` semantics).
  struct Bucket {
    uint64_t le = 0;
    uint64_t cumulative_count = 0;
  };

  uint64_t count = 0;
  uint64_t sum = 0;  // same unit as the recorded samples (nanoseconds)
  uint64_t max = 0;
  uint64_t p50 = 0;
  uint64_t p95 = 0;
  uint64_t p99 = 0;
  /// Cumulative power-of-two buckets up to the highest occupied one (empty
  /// when no samples): le = 2^i - 1 for bucket i, the overflow bucket is
  /// ~uint64_t{0} (+Inf). The trailing implicit +Inf bucket equals `count`.
  std::vector<Bucket> buckets;

  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

namespace hist_detail {
// Counter accessors letting BasicLatencyHistogram share its bucket and
// summary logic between the atomic (concurrent writers) and plain
// (externally serialized, no locked read-modify-writes) instantiations.
inline uint64_t CounterRead(const std::atomic<uint64_t>& v) {
  return v.load(std::memory_order_relaxed);
}
inline uint64_t CounterRead(uint64_t v) { return v; }
inline void CounterAdd(std::atomic<uint64_t>& v, uint64_t n) {
  v.fetch_add(n, std::memory_order_relaxed);
}
inline void CounterAdd(uint64_t& v, uint64_t n) { v += n; }
inline void CounterMax(std::atomic<uint64_t>& v, uint64_t sample) {
  uint64_t prev = v.load(std::memory_order_relaxed);
  while (prev < sample &&
         !v.compare_exchange_weak(prev, sample, std::memory_order_relaxed)) {
  }
}
inline void CounterMax(uint64_t& v, uint64_t sample) {
  if (sample > v) v = sample;
}
inline void CounterSet(std::atomic<uint64_t>& v, uint64_t n) {
  v.store(n, std::memory_order_relaxed);
}
inline void CounterSet(uint64_t& v, uint64_t n) { v = n; }
}  // namespace hist_detail

/// Latency histogram with power-of-two buckets; keeps no raw samples, so
/// memory is constant and percentiles are approximate (<= 2x). Instantiated
/// as AtomicLatencyHistogram (relaxed atomic counters — concurrent writers
/// such as query threads, the background cascade and server connections
/// aggregate into one instance without locks) and BucketLatencyHistogram
/// (plain counters for single-writer or externally locked use — Record()
/// is plain arithmetic, no locked read-modify-writes).
template <typename CounterT>
class BasicLatencyHistogram {
 public:
  static constexpr size_t kBuckets = 64;  // bucket i covers [2^(i-1), 2^i)

  void Record(uint64_t sample) {
    using hist_detail::CounterAdd;
    using hist_detail::CounterMax;
    CounterAdd(buckets_[BucketFor(sample)], 1);
    CounterAdd(count_, 1);
    CounterAdd(sum_, sample);
    CounterMax(max_, sample);
  }

  uint64_t count() const { return hist_detail::CounterRead(count_); }
  uint64_t sum() const { return hist_detail::CounterRead(sum_); }

  LatencySummary Summarize() const {
    LatencySummary s;
    std::array<uint64_t, kBuckets> counts;
    size_t highest = 0;
    for (size_t i = 0; i < kBuckets; ++i) {
      counts[i] = hist_detail::CounterRead(buckets_[i]);
      s.count += counts[i];
      if (counts[i] > 0) highest = i;
    }
    s.sum = hist_detail::CounterRead(sum_);
    s.max = hist_detail::CounterRead(max_);
    s.p50 = PercentileFrom(counts, s.count, 0.50);
    s.p95 = PercentileFrom(counts, s.count, 0.95);
    s.p99 = PercentileFrom(counts, s.count, 0.99);
    if (s.count > 0) {
      // Cumulative exposition buckets up to the highest occupied one; bucket
      // i covers [2^(i-1), 2^i), so its inclusive upper bound (Prometheus
      // `le`) is 2^i - 1. The overflow bucket folds into +Inf (max
      // uint64_t here; rendered as le="+Inf" by callers).
      s.buckets.reserve(highest + 1);
      uint64_t cumulative = 0;
      for (size_t i = 0; i <= highest; ++i) {
        cumulative += counts[i];
        const uint64_t le =
            i >= kBuckets - 1 ? ~uint64_t{0} : (uint64_t{1} << i) - 1;
        s.buckets.push_back({le, cumulative});
      }
    }
    return s;
  }

  void Clear() {
    for (auto& b : buckets_) hist_detail::CounterSet(b, 0);
    hist_detail::CounterSet(count_, 0);
    hist_detail::CounterSet(sum_, 0);
    hist_detail::CounterSet(max_, 0);
  }

 private:
  static size_t BucketFor(uint64_t sample) {
    if (sample == 0) return 0;
    const size_t bit = 64 - static_cast<size_t>(__builtin_clzll(sample));
    return std::min(bit, kBuckets - 1);
  }

  static uint64_t PercentileFrom(const std::array<uint64_t, kBuckets>& counts,
                                 uint64_t total, double p) {
    if (total == 0) return 0;
    const uint64_t rank =
        std::max<uint64_t>(1, static_cast<uint64_t>(p * total));
    uint64_t seen = 0;
    for (size_t i = 0; i < kBuckets; ++i) {
      seen += counts[i];
      if (seen >= rank) {
        return i >= 63 ? ~uint64_t{0} : (uint64_t{1} << i);
      }
    }
    return ~uint64_t{0};
  }

  std::array<CounterT, kBuckets> buckets_{};
  CounterT count_{0};
  CounterT sum_{0};
  CounterT max_{0};
};

using AtomicLatencyHistogram = BasicLatencyHistogram<std::atomic<uint64_t>>;
using BucketLatencyHistogram = BasicLatencyHistogram<uint64_t>;

}  // namespace aion::util

#endif  // AION_UTIL_HISTOGRAM_H_
