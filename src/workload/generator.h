// Workload generation (Sec 6.1): deterministic synthetic analogues of the
// six evaluation datasets. Raw SNAP dumps are not available offline, so the
// generators reproduce the properties the evaluation varies: node and
// relationship counts (scaled), average degree, directedness, multigraph
// behaviour, and power-law degree skew — see DESIGN.md substitutions.
//
// Timestamping follows Sec 6.1 exactly: "we load and shuffle all
// relationships, assign them monotonically increasing timestamps, and
// consume them in timestamp order to emulate relationship additions over
// time, where node creation always precedes the creation of any incident
// relationships."
#ifndef AION_WORKLOAD_GENERATOR_H_
#define AION_WORKLOAD_GENERATOR_H_

#include <string>
#include <vector>

#include "graph/update.h"
#include "util/random.h"

namespace aion::workload {

/// Shape parameters of a generated dataset.
struct DatasetSpec {
  std::string name;
  size_t num_nodes = 0;
  size_t num_rels = 0;  // directed relationship count after undirected
                        // doubling, like Table 3's |E|
  bool directed = true;
  /// Undirected sources (DBLP, Orkut) are materialized as two directed
  /// relationships per edge, exactly as the paper preprocesses them.
  bool doubled_from_undirected = false;
  /// WikiTalk-like temporal multigraphs allow parallel edges.
  bool multigraph = false;
  /// Preferential-attachment strength (0 = uniform endpoints).
  double attachment = 0.8;
  uint64_t seed = 42;
};

/// Table 3 analogues, scaled by `scale` (1.0 = full paper sizes; benchmarks
/// default to a laptop-friendly fraction via AION_BENCH_SCALE).
DatasetSpec Dblp(double scale);
DatasetSpec WikiTalk(double scale);
DatasetSpec Pokec(double scale);
DatasetSpec LiveJournal(double scale);
DatasetSpec DbPedia(double scale);
DatasetSpec Orkut(double scale);

/// All six, in Table 3 order.
std::vector<DatasetSpec> AllDatasets(double scale);

/// One relationship of the raw (untimestamped) generated graph.
struct EdgeSpec {
  graph::NodeId src;
  graph::NodeId tgt;
};

/// A generated dataset: the update stream, ready to consume in timestamp
/// order.
struct Workload {
  DatasetSpec spec;
  /// Node-creation updates (timestamps assigned, all before any incident
  /// relationship).
  std::vector<graph::GraphUpdate> updates;
  /// Number of distinct timestamps assigned (== number of updates here;
  /// each update commits on its own tick, as in the paper's replay).
  graph::Timestamp max_ts = 0;
  size_t num_nodes = 0;
  size_t num_rels = 0;
};

/// Generates the dataset: power-law-ish edges via preferential attachment
/// with repeated-endpoint sampling, shuffled, then timestamped per Sec 6.1.
/// When `rel_property` is non-empty every relationship carries a numeric
/// property of that name (used by AVG benchmarks).
Workload Generate(const DatasetSpec& spec,
                  const std::string& rel_property = "");

/// Splits a workload's updates into `parts` consecutive batches of roughly
/// equal size (snapshot increments for the incremental experiments).
std::vector<std::vector<graph::GraphUpdate>> SplitUpdates(
    const std::vector<graph::GraphUpdate>& updates, size_t parts);

/// Reads the benchmark scale factor from AION_BENCH_SCALE (default
/// `def`, clamped to [1e-6, 1.0]).
double BenchScaleFromEnv(double def = 0.002);

}  // namespace aion::workload

#endif  // AION_WORKLOAD_GENERATOR_H_
