#include "workload/generator.h"

#include <algorithm>
#include <cstdlib>

#include "util/logging.h"

namespace aion::workload {

using graph::GraphUpdate;
using graph::NodeId;
using graph::RelId;
using util::Random;

namespace {

size_t Scaled(double count, double scale) {
  const double scaled = count * scale;
  return scaled < 2 ? 2 : static_cast<size_t>(scaled);
}

}  // namespace

// Table 3 shapes: |V|, |E|, avg degree, directedness.
DatasetSpec Dblp(double scale) {
  DatasetSpec spec;
  spec.name = "DBLP";
  spec.num_nodes = Scaled(0.3e6, scale);
  spec.num_rels = Scaled(2.1e6, scale);
  spec.directed = false;
  spec.doubled_from_undirected = true;
  spec.seed = 101;
  return spec;
}

DatasetSpec WikiTalk(double scale) {
  DatasetSpec spec;
  spec.name = "WikiTalk";
  spec.num_nodes = Scaled(1e6, scale);
  spec.num_rels = Scaled(7.8e6, scale);
  spec.directed = true;
  spec.multigraph = true;  // the true temporal network of the six
  spec.attachment = 0.9;   // heavily skewed talk-page activity
  spec.seed = 102;
  return spec;
}

DatasetSpec Pokec(double scale) {
  DatasetSpec spec;
  spec.name = "Pokec";
  spec.num_nodes = Scaled(1.6e6, scale);
  spec.num_rels = Scaled(30e6, scale);
  spec.directed = true;
  spec.seed = 103;
  return spec;
}

DatasetSpec LiveJournal(double scale) {
  DatasetSpec spec;
  spec.name = "LiveJournal";
  spec.num_nodes = Scaled(4.8e6, scale);
  spec.num_rels = Scaled(69e6, scale);
  spec.directed = true;
  spec.seed = 104;
  return spec;
}

DatasetSpec DbPedia(double scale) {
  DatasetSpec spec;
  spec.name = "DBpedia";
  spec.num_nodes = Scaled(18e6, scale);
  spec.num_rels = Scaled(172e6, scale);
  spec.directed = true;
  spec.multigraph = true;  // hyperlink network with parallel links
  spec.seed = 105;
  return spec;
}

DatasetSpec Orkut(double scale) {
  DatasetSpec spec;
  spec.name = "ORKUT";
  spec.num_nodes = Scaled(3e6, scale);
  spec.num_rels = Scaled(234e6, scale);
  spec.directed = false;
  spec.doubled_from_undirected = true;
  spec.seed = 106;
  return spec;
}

std::vector<DatasetSpec> AllDatasets(double scale) {
  return {Dblp(scale),        WikiTalk(scale), Pokec(scale),
          LiveJournal(scale), DbPedia(scale),  Orkut(scale)};
}

Workload Generate(const DatasetSpec& spec, const std::string& rel_property) {
  AION_CHECK(spec.num_nodes >= 2);
  Random rng(spec.seed);
  Workload workload;
  workload.spec = spec;

  // Raw edges. The undirected datasets count |E| after doubling (Table 3),
  // so generate |E|/2 undirected edges and emit both directions.
  const size_t base_edges = spec.doubled_from_undirected
                                ? (spec.num_rels + 1) / 2
                                : spec.num_rels;
  std::vector<EdgeSpec> edges;
  edges.reserve(spec.num_rels);

  // Preferential attachment via a repeated-endpoint pool: targets are drawn
  // from previously used endpoints with probability `attachment`, giving a
  // power-law-ish in-degree distribution.
  std::vector<NodeId> endpoint_pool;
  endpoint_pool.reserve(base_edges / 4 + 16);
  auto draw_node = [&]() -> NodeId {
    if (!endpoint_pool.empty() && rng.NextDouble() < spec.attachment) {
      return endpoint_pool[rng.Uniform(endpoint_pool.size())];
    }
    return rng.Uniform(spec.num_nodes);
  };
  for (size_t i = 0; i < base_edges; ++i) {
    EdgeSpec e;
    e.src = rng.Uniform(spec.num_nodes);  // activity spread over all nodes
    e.tgt = draw_node();
    if (!spec.multigraph && e.src == e.tgt) {
      e.tgt = (e.tgt + 1) % spec.num_nodes;
    }
    // Sampled pool growth (keeps the pool small but skewed).
    if (endpoint_pool.size() < base_edges / 4 + 16 || rng.Bernoulli(0.01)) {
      endpoint_pool.push_back(e.tgt);
    }
    edges.push_back(e);
    if (spec.doubled_from_undirected && edges.size() < spec.num_rels) {
      edges.push_back({e.tgt, e.src});
    }
  }
  if (edges.size() > spec.num_rels) edges.resize(spec.num_rels);

  // Sec 6.1: shuffle, then assign monotonically increasing timestamps with
  // node creations preceding incident relationships.
  util::Shuffle(&edges, &rng);

  workload.updates.reserve(spec.num_nodes + edges.size());
  std::vector<bool> node_created(spec.num_nodes, false);
  graph::Timestamp ts = 0;
  auto create_node = [&](NodeId id) {
    if (node_created[id]) return;
    node_created[id] = true;
    GraphUpdate u = GraphUpdate::AddNode(id, {"Entity"});
    u.ts = ++ts;
    workload.updates.push_back(std::move(u));
    ++workload.num_nodes;
  };
  RelId next_rel = 0;
  for (const EdgeSpec& e : edges) {
    create_node(e.src);
    create_node(e.tgt);
    graph::PropertySet props;
    if (!rel_property.empty()) {
      props.Set(rel_property,
                graph::PropertyValue(static_cast<double>(rng.Uniform(1000))));
    }
    GraphUpdate u = GraphUpdate::AddRelationship(next_rel++, e.src, e.tgt,
                                                 "LINK", std::move(props));
    u.ts = ++ts;
    workload.updates.push_back(std::move(u));
    ++workload.num_rels;
  }
  // Isolated nodes still get created (datasets count them in |V|).
  for (NodeId id = 0; id < spec.num_nodes; ++id) create_node(id);
  workload.max_ts = ts;
  return workload;
}

std::vector<std::vector<GraphUpdate>> SplitUpdates(
    const std::vector<GraphUpdate>& updates, size_t parts) {
  std::vector<std::vector<GraphUpdate>> out;
  if (parts == 0) return out;
  const size_t per_part = (updates.size() + parts - 1) / parts;
  for (size_t begin = 0; begin < updates.size(); begin += per_part) {
    const size_t end = std::min(begin + per_part, updates.size());
    out.emplace_back(updates.begin() + static_cast<long>(begin),
                     updates.begin() + static_cast<long>(end));
  }
  return out;
}

double BenchScaleFromEnv(double def) {
  const char* env = std::getenv("AION_BENCH_SCALE");
  double scale = def;
  if (env != nullptr) {
    char* end = nullptr;
    const double parsed = strtod(env, &end);
    if (end != env && parsed > 0) scale = parsed;
  }
  if (scale > 1.0) scale = 1.0;
  if (scale < 1e-6) scale = 1e-6;
  return scale;
}

}  // namespace aion::workload
