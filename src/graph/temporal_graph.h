// Temporal in-memory LPG (Sec 5.2, temporal variant of Fig 5): the node and
// relationship vectors store *lists of entity versions* instead of single
// objects, and the neighbourhood vectors keep all history. Every
// modification appends at the tail of the respective list, so data is
// ordered by timestamp and history access costs O(log n) by binary search.
//
// This is the TGraph representation returned by getTemporalGraph (Table 1),
// and the substrate for single-scan temporal path algorithms (Fig 2).
#ifndef AION_GRAPH_TEMPORAL_GRAPH_H_
#define AION_GRAPH_TEMPORAL_GRAPH_H_

#include <functional>
#include <memory>
#include <vector>

#include "graph/entity.h"
#include "graph/memgraph.h"
#include "graph/update.h"
#include "util/status.h"

namespace aion::graph {

class TemporalGraph {
 public:
  TemporalGraph() = default;

  TemporalGraph(const TemporalGraph&) = delete;
  TemporalGraph& operator=(const TemporalGraph&) = delete;
  TemporalGraph(TemporalGraph&&) = default;
  TemporalGraph& operator=(TemporalGraph&&) = default;

  /// Applies one timestamped update. Updates must arrive in non-decreasing
  /// timestamp order (the ordered sequence S of Sec 3).
  util::Status Apply(const GraphUpdate& update);
  util::Status ApplyAll(const std::vector<GraphUpdate>& updates);

  /// Builds a temporal graph from an ordered update stream.
  static util::StatusOr<std::unique_ptr<TemporalGraph>> Build(
      const std::vector<GraphUpdate>& updates);

  // -------------------------------------------------------------------
  // Point-in-time access
  // -------------------------------------------------------------------

  /// The version of `id` valid at time `t`, or nullptr.
  const Node* NodeAt(NodeId id, Timestamp t) const;
  const Relationship* RelationshipAt(RelId id, Timestamp t) const;

  /// The validity interval of the version at `t` (entity must exist at t).
  TimeInterval NodeIntervalAt(NodeId id, Timestamp t) const;
  TimeInterval RelationshipIntervalAt(RelId id, Timestamp t) const;

  // -------------------------------------------------------------------
  // History access
  // -------------------------------------------------------------------

  /// All versions of `id` overlapping [start, end).
  std::vector<NodeVersion> NodeHistory(NodeId id, Timestamp start,
                                       Timestamp end) const;
  std::vector<RelationshipVersion> RelationshipHistory(RelId id,
                                                       Timestamp start,
                                                       Timestamp end) const;

  /// Visits every relationship version incident to `node` (all history).
  /// fn(version) — the full interval-annotated relationship, used by the
  /// single-scan temporal path algorithms.
  void ForEachRelVersion(
      NodeId node, Direction direction,
      const std::function<void(const RelationshipVersion&)>& fn) const;

  /// Visits every node that has at least one version overlapping
  /// [start, end); fn receives the latest version in the window.
  void ForEachNodeInWindow(
      Timestamp start, Timestamp end,
      const std::function<void(const NodeVersion&)>& fn) const;

  /// Materializes the regular LPG valid at time `t`.
  std::unique_ptr<MemoryGraph> SnapshotAt(Timestamp t) const;

  size_t NumNodeVersions() const { return num_node_versions_; }
  size_t NumRelVersions() const { return num_rel_versions_; }
  NodeId NodeCapacity() const { return nodes_.size(); }
  RelId RelCapacity() const { return rels_.size(); }

  /// Timestamp of the most recently applied update.
  Timestamp LastTimestamp() const { return last_ts_; }

 private:
  template <typename T>
  struct VersionChain {
    std::vector<Versioned<T>> versions;  // ordered by interval.start

    /// Closes the currently open version (if any) at time `t` and appends a
    /// new open version starting at `t`.
    void Append(Timestamp t, T entity);
    /// Closes the open version at `t` without starting a new one.
    void Close(Timestamp t);
    const Versioned<T>* At(Timestamp t) const;
    Versioned<T>* OpenVersion();
  };

  util::Status RequireNodeAt(NodeId id, Timestamp t);

  std::vector<VersionChain<Node>> nodes_;
  std::vector<VersionChain<Relationship>> rels_;
  // All-history neighbourhoods: relationship ids in first-seen order.
  std::vector<std::vector<RelId>> out_;
  std::vector<std::vector<RelId>> in_;
  size_t num_node_versions_ = 0;
  size_t num_rel_versions_ = 0;
  Timestamp last_ts_ = 0;
};

}  // namespace aion::graph

#endif  // AION_GRAPH_TEMPORAL_GRAPH_H_
