#include "graph/cow_graph.h"

#include <algorithm>

#include "util/logging.h"

namespace aion::graph {

using util::Status;

CowGraph::CowGraph(std::shared_ptr<const MemoryGraph> base)
    : base_(std::move(base)),
      num_nodes_(base_->NumNodes()),
      num_rels_(base_->NumRelationships()),
      node_capacity_(base_->NodeCapacity()),
      rel_capacity_(base_->RelCapacity()) {
  AION_CHECK(base_->has_neighbourhoods());
}

bool CowGraph::NodeExists(NodeId id) const {
  auto it = node_overlay_.find(id);
  if (it != node_overlay_.end()) return it->second.has_value();
  return BaseNode(id) != nullptr;
}

bool CowGraph::RelExists(RelId id) const {
  auto it = rel_overlay_.find(id);
  if (it != rel_overlay_.end()) return it->second.has_value();
  return BaseRel(id) != nullptr;
}

Node* CowGraph::MutableNode(NodeId id) {
  auto it = node_overlay_.find(id);
  if (it != node_overlay_.end()) {
    return it->second.has_value() ? &*it->second : nullptr;
  }
  const Node* base = BaseNode(id);
  if (base == nullptr) return nullptr;
  auto [ins, _] = node_overlay_.emplace(id, *base);
  return &*ins->second;
}

Relationship* CowGraph::MutableRel(RelId id) {
  auto it = rel_overlay_.find(id);
  if (it != rel_overlay_.end()) {
    return it->second.has_value() ? &*it->second : nullptr;
  }
  const Relationship* base = BaseRel(id);
  if (base == nullptr) return nullptr;
  auto [ins, _] = rel_overlay_.emplace(id, *base);
  return &*ins->second;
}

CowGraph::Adjacency* CowGraph::MutableAdjacency(NodeId id) {
  auto it = adj_overlay_.find(id);
  if (it != adj_overlay_.end()) return &it->second;
  Adjacency adj;
  if (id < base_->NodeCapacity()) {
    adj.out = base_->OutRels(id);
    adj.in = base_->InRels(id);
  }
  auto [ins, _] = adj_overlay_.emplace(id, std::move(adj));
  return &ins->second;
}

Status CowGraph::Apply(const GraphUpdate& u) {
  switch (u.op) {
    case UpdateOp::kAddNode: {
      if (NodeExists(u.id)) {
        return Status::AlreadyExists("node " + std::to_string(u.id));
      }
      Node node;
      node.id = u.id;
      node.labels = u.labels;
      node.props = u.props;
      node_overlay_[u.id] = std::move(node);
      adj_overlay_[u.id] = Adjacency{};
      ++num_nodes_;
      node_capacity_ = std::max(node_capacity_, u.id + 1);
      return Status::OK();
    }
    case UpdateOp::kDeleteNode: {
      if (!NodeExists(u.id)) {
        return Status::FailedPrecondition("node " + std::to_string(u.id) +
                                          " does not exist");
      }
      Adjacency* adj = MutableAdjacency(u.id);
      if (!adj->out.empty() || !adj->in.empty()) {
        return Status::FailedPrecondition(
            "node " + std::to_string(u.id) + " still has relationships");
      }
      node_overlay_[u.id] = std::nullopt;
      --num_nodes_;
      return Status::OK();
    }
    case UpdateOp::kAddRelationship: {
      if (!NodeExists(u.src)) {
        return Status::FailedPrecondition("node " + std::to_string(u.src) +
                                          " does not exist");
      }
      if (!NodeExists(u.tgt)) {
        return Status::FailedPrecondition("node " + std::to_string(u.tgt) +
                                          " does not exist");
      }
      if (RelExists(u.id)) {
        return Status::AlreadyExists("relationship " + std::to_string(u.id));
      }
      Relationship rel;
      rel.id = u.id;
      rel.src = u.src;
      rel.tgt = u.tgt;
      rel.type = u.type;
      rel.props = u.props;
      rel_overlay_[u.id] = std::move(rel);
      MutableAdjacency(u.src)->out.push_back(u.id);
      MutableAdjacency(u.tgt)->in.push_back(u.id);
      ++num_rels_;
      rel_capacity_ = std::max(rel_capacity_, u.id + 1);
      return Status::OK();
    }
    case UpdateOp::kDeleteRelationship: {
      const Relationship* rel = GetRelationship(u.id);
      if (rel == nullptr) {
        return Status::FailedPrecondition("relationship " +
                                          std::to_string(u.id) +
                                          " does not exist");
      }
      const NodeId src = rel->src;
      const NodeId tgt = rel->tgt;
      Adjacency* src_adj = MutableAdjacency(src);
      auto out_it = std::find(src_adj->out.begin(), src_adj->out.end(), u.id);
      if (out_it != src_adj->out.end()) src_adj->out.erase(out_it);
      Adjacency* tgt_adj = MutableAdjacency(tgt);
      auto in_it = std::find(tgt_adj->in.begin(), tgt_adj->in.end(), u.id);
      if (in_it != tgt_adj->in.end()) tgt_adj->in.erase(in_it);
      rel_overlay_[u.id] = std::nullopt;
      --num_rels_;
      return Status::OK();
    }
    case UpdateOp::kSetNodeProperty: {
      Node* node = MutableNode(u.id);
      if (node == nullptr) {
        return Status::FailedPrecondition("node " + std::to_string(u.id) +
                                          " does not exist");
      }
      node->props.Set(u.key, u.value);
      return Status::OK();
    }
    case UpdateOp::kRemoveNodeProperty: {
      Node* node = MutableNode(u.id);
      if (node == nullptr) {
        return Status::FailedPrecondition("node " + std::to_string(u.id) +
                                          " does not exist");
      }
      node->props.Remove(u.key);
      return Status::OK();
    }
    case UpdateOp::kAddNodeLabel: {
      Node* node = MutableNode(u.id);
      if (node == nullptr) {
        return Status::FailedPrecondition("node " + std::to_string(u.id) +
                                          " does not exist");
      }
      node->AddLabel(u.label);
      return Status::OK();
    }
    case UpdateOp::kRemoveNodeLabel: {
      Node* node = MutableNode(u.id);
      if (node == nullptr) {
        return Status::FailedPrecondition("node " + std::to_string(u.id) +
                                          " does not exist");
      }
      node->RemoveLabel(u.label);
      return Status::OK();
    }
    case UpdateOp::kSetRelationshipProperty: {
      Relationship* rel = MutableRel(u.id);
      if (rel == nullptr) {
        return Status::FailedPrecondition("relationship " +
                                          std::to_string(u.id) +
                                          " does not exist");
      }
      rel->props.Set(u.key, u.value);
      return Status::OK();
    }
    case UpdateOp::kRemoveRelationshipProperty: {
      Relationship* rel = MutableRel(u.id);
      if (rel == nullptr) {
        return Status::FailedPrecondition("relationship " +
                                          std::to_string(u.id) +
                                          " does not exist");
      }
      rel->props.Remove(u.key);
      return Status::OK();
    }
  }
  return Status::InvalidArgument("unknown update op");
}

Status CowGraph::ApplyAll(const std::vector<GraphUpdate>& updates) {
  // Pre-size the overlays for replay-sized batches: each update touches at
  // most one entity plus its adjacency, so this bounds rehashing during the
  // hot Copy+Log path without overshooting small diffs.
  node_overlay_.reserve(node_overlay_.size() + updates.size() / 2);
  rel_overlay_.reserve(rel_overlay_.size() + updates.size() / 2);
  for (const GraphUpdate& u : updates) {
    AION_RETURN_IF_ERROR(Apply(u));
  }
  return Status::OK();
}

const Node* CowGraph::GetNode(NodeId id) const {
  auto it = node_overlay_.find(id);
  if (it != node_overlay_.end()) {
    return it->second.has_value() ? &*it->second : nullptr;
  }
  return BaseNode(id);
}

const Relationship* CowGraph::GetRelationship(RelId id) const {
  auto it = rel_overlay_.find(id);
  if (it != rel_overlay_.end()) {
    return it->second.has_value() ? &*it->second : nullptr;
  }
  return BaseRel(id);
}

void CowGraph::ForEachNode(
    const std::function<void(const Node&)>& fn) const {
  base_->ForEachNode([&](const Node& n) {
    auto it = node_overlay_.find(n.id);
    if (it == node_overlay_.end()) {
      fn(n);
    } else if (it->second.has_value()) {
      fn(*it->second);
    }
    // tombstone: skip
  });
  // Overlay-only nodes (added after the base snapshot).
  for (const auto& [id, node] : node_overlay_) {
    if (node.has_value() && BaseNode(id) == nullptr) fn(*node);
  }
}

void CowGraph::ForEachRelationship(
    const std::function<void(const Relationship&)>& fn) const {
  base_->ForEachRelationship([&](const Relationship& r) {
    auto it = rel_overlay_.find(r.id);
    if (it == rel_overlay_.end()) {
      fn(r);
    } else if (it->second.has_value()) {
      fn(*it->second);
    }
  });
  for (const auto& [id, rel] : rel_overlay_) {
    if (rel.has_value() && BaseRel(id) == nullptr) fn(*rel);
  }
}

void CowGraph::ForEachRel(NodeId node, Direction direction,
                          const std::function<void(RelId)>& fn) const {
  auto it = adj_overlay_.find(node);
  if (it != adj_overlay_.end()) {
    if (direction == Direction::kOutgoing || direction == Direction::kBoth) {
      for (RelId id : it->second.out) fn(id);
    }
    if (direction == Direction::kIncoming || direction == Direction::kBoth) {
      for (RelId id : it->second.in) fn(id);
    }
    return;
  }
  base_->ForEachRel(node, direction, fn);
}

NodeId CowGraph::NodeCapacity() const { return node_capacity_; }
RelId CowGraph::RelCapacity() const { return rel_capacity_; }

std::unique_ptr<MemoryGraph> CowGraph::Materialize() const {
  auto graph = std::make_unique<MemoryGraph>();
  // Replay as updates in dependency order: nodes, then relationships, so
  // MemoryGraph's constraints hold.
  ForEachNode([&](const Node& n) {
    GraphUpdate u = GraphUpdate::AddNode(n.id, n.labels, n.props);
    AION_CHECK_OK(graph->Apply(u));
  });
  ForEachRelationship([&](const Relationship& r) {
    GraphUpdate u =
        GraphUpdate::AddRelationship(r.id, r.src, r.tgt, r.type, r.props);
    AION_CHECK_OK(graph->Apply(u));
  });
  return graph;
}

}  // namespace aion::graph
