// The dynamic in-memory LPG representation (Sec 5.2, Fig 5): four vectors —
// materialized nodes, materialized relationships, and per-node in-/out-
// neighbourhood vectors holding relationship ids only (source/target ids are
// recovered with an O(1) lookup in the relationship vector). Based on the
// Sortledton design but handling arbitrary labels and properties via the
// materialized entity vectors.
//
// Complexity: O(1) entity insert/update and neighbourhood access; deletions
// cost O(degree) for the affected neighbourhood vectors. Vectors are indexed
// directly by (sparse) entity id and resized to the maximum id seen.
//
// Thread-compatible. "For parallelization, no read-write locks are required,
// as updates are performed using key partitioning and reads always precede
// writes for analytics" — callers partition updates by id or serialize.
#ifndef AION_GRAPH_MEMGRAPH_H_
#define AION_GRAPH_MEMGRAPH_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph_view.h"
#include "graph/update.h"
#include "util/status.h"

namespace aion::graph {

/// Sparse-to-dense node id mapping (Sec 5.2): graph algorithms work over a
/// dense domain [0, Vd) where every id refers to a valid node.
struct DenseIdMap {
  std::vector<NodeId> dense_to_sparse;          // [0, Vd) -> sparse id
  std::vector<uint32_t> sparse_to_dense;        // sparse id -> dense or kUnmapped
  static constexpr uint32_t kUnmapped = ~0u;

  size_t size() const { return dense_to_sparse.size(); }
  bool IsMapped(NodeId sparse) const {
    return sparse < sparse_to_dense.size() &&
           sparse_to_dense[sparse] != kUnmapped;
  }
};

class MemoryGraph final : public GraphView {
 public:
  MemoryGraph() = default;

  // Deep copies are explicit (Clone); accidental copies are expensive.
  MemoryGraph(const MemoryGraph&) = delete;
  MemoryGraph& operator=(const MemoryGraph&) = delete;
  MemoryGraph(MemoryGraph&&) = default;
  MemoryGraph& operator=(MemoryGraph&&) = default;

  // -------------------------------------------------------------------
  // Mutation
  // -------------------------------------------------------------------

  /// Applies one update, enforcing the Sec 3 constraints: inserts require
  /// absence, deletes require presence, relationships require live
  /// endpoints, and node deletion requires its relationships to be deleted
  /// first.
  util::Status Apply(const GraphUpdate& update);

  /// Applies a batch in order, stopping at the first failure.
  util::Status ApplyAll(const std::vector<GraphUpdate>& updates);

  // -------------------------------------------------------------------
  // GraphView
  // -------------------------------------------------------------------
  const Node* GetNode(NodeId id) const override;
  const Relationship* GetRelationship(RelId id) const override;
  void ForEachNode(const std::function<void(const Node&)>& fn) const override;
  void ForEachRelationship(
      const std::function<void(const Relationship&)>& fn) const override;
  void ForEachRel(NodeId node, Direction direction,
                  const std::function<void(RelId)>& fn) const override;
  size_t NumNodes() const override { return num_nodes_; }
  size_t NumRelationships() const override { return num_rels_; }
  NodeId NodeCapacity() const override { return nodes_.size(); }
  RelId RelCapacity() const override { return rels_.size(); }

  /// Direct adjacency access (MemoryGraph only; avoids callback overhead in
  /// tight loops and CSR construction).
  const std::vector<RelId>& OutRels(NodeId id) const;
  const std::vector<RelId>& InRels(NodeId id) const;

  // -------------------------------------------------------------------
  // Snapshot support
  // -------------------------------------------------------------------

  /// Deep copy.
  std::unique_ptr<MemoryGraph> Clone() const;

  /// Builds the sparse-to-dense node id mapping (Sec 5.2).
  DenseIdMap BuildDenseMap() const;

  /// Rough in-memory footprint for GraphStore cost accounting: ~60 B per
  /// node and ~68 B per relationship plus 4 B per neighbourhood entry
  /// (Sec 6.1), plus actual label/property payloads.
  size_t EstimateMemoryBytes() const;

  /// Serializes the full graph (snapshot file payload).
  void EncodeTo(std::string* dst) const;
  static util::StatusOr<std::unique_ptr<MemoryGraph>> DecodeFrom(
      util::Slice input);

  /// Drops the in/out neighbourhood vectors (GraphStore optimization i:
  /// snapshots do not store neighbourhoods; they are recomputed on
  /// retrieval).
  void DropNeighbourhoods();

  /// Rebuilds in/out neighbourhood vectors from the relationship vector,
  /// optionally in parallel chunks.
  void RebuildNeighbourhoods();

  bool has_neighbourhoods() const { return has_neighbourhoods_; }

  /// Structural equality (same live nodes/rels with equal content).
  bool SameGraphAs(const GraphView& other) const;

 private:
  void EnsureNodeCapacity(NodeId id);
  void EnsureRelCapacity(RelId id);
  static void RemoveRelId(std::vector<RelId>* vec, RelId id);

  std::vector<std::optional<Node>> nodes_;
  std::vector<std::optional<Relationship>> rels_;
  std::vector<std::vector<RelId>> out_;  // indexed by NodeId
  std::vector<std::vector<RelId>> in_;
  size_t num_nodes_ = 0;
  size_t num_rels_ = 0;
  bool has_neighbourhoods_ = true;
};

}  // namespace aion::graph

#endif  // AION_GRAPH_MEMGRAPH_H_
