#include "graph/property.h"

#include <algorithm>

#include "util/coding.h"

namespace aion::graph {

using util::GetLengthPrefixedSlice;
using util::GetVarint64;
using util::PutLengthPrefixedSlice;
using util::PutVarint64;
using util::Slice;
using util::Status;
using util::StatusOr;

double PropertyValue::ToNumber() const {
  switch (type()) {
    case PropertyType::kBool:
      return AsBool() ? 1.0 : 0.0;
    case PropertyType::kInt:
      return static_cast<double>(AsInt());
    case PropertyType::kDouble:
      return AsDouble();
    default:
      return 0.0;
  }
}

std::string PropertyValue::ToString() const {
  switch (type()) {
    case PropertyType::kNull:
      return "null";
    case PropertyType::kBool:
      return AsBool() ? "true" : "false";
    case PropertyType::kInt:
      return std::to_string(AsInt());
    case PropertyType::kDouble:
      return std::to_string(AsDouble());
    case PropertyType::kString:
      return "\"" + AsString() + "\"";
    case PropertyType::kIntArray: {
      std::string out = "[";
      for (size_t i = 0; i < AsIntArray().size(); ++i) {
        if (i) out += ", ";
        out += std::to_string(AsIntArray()[i]);
      }
      return out + "]";
    }
    case PropertyType::kDoubleArray: {
      std::string out = "[";
      for (size_t i = 0; i < AsDoubleArray().size(); ++i) {
        if (i) out += ", ";
        out += std::to_string(AsDoubleArray()[i]);
      }
      return out + "]";
    }
    case PropertyType::kStringArray: {
      std::string out = "[";
      for (size_t i = 0; i < AsStringArray().size(); ++i) {
        if (i) out += ", ";
        out += "\"" + AsStringArray()[i] + "\"";
      }
      return out + "]";
    }
  }
  return "?";
}

void PropertyValue::EncodeTo(std::string* dst) const {
  dst->push_back(static_cast<char>(type()));
  switch (type()) {
    case PropertyType::kNull:
      break;
    case PropertyType::kBool:
      dst->push_back(AsBool() ? 1 : 0);
      break;
    case PropertyType::kInt:
      PutVarint64(dst, util::ZigZagEncode(AsInt()));
      break;
    case PropertyType::kDouble:
      util::PutDouble(dst, AsDouble());
      break;
    case PropertyType::kString:
      PutLengthPrefixedSlice(dst, AsString());
      break;
    case PropertyType::kIntArray:
      PutVarint64(dst, AsIntArray().size());
      for (int64_t v : AsIntArray()) PutVarint64(dst, util::ZigZagEncode(v));
      break;
    case PropertyType::kDoubleArray:
      PutVarint64(dst, AsDoubleArray().size());
      for (double v : AsDoubleArray()) util::PutDouble(dst, v);
      break;
    case PropertyType::kStringArray:
      PutVarint64(dst, AsStringArray().size());
      for (const std::string& v : AsStringArray()) {
        PutLengthPrefixedSlice(dst, v);
      }
      break;
  }
}

StatusOr<PropertyValue> PropertyValue::DecodeFrom(Slice* input) {
  if (input->empty()) return Status::Corruption("empty property value");
  const auto type = static_cast<PropertyType>((*input)[0]);
  input->RemovePrefix(1);
  switch (type) {
    case PropertyType::kNull:
      return PropertyValue();
    case PropertyType::kBool: {
      if (input->empty()) return Status::Corruption("truncated bool");
      const bool v = (*input)[0] != 0;
      input->RemovePrefix(1);
      return PropertyValue(v);
    }
    case PropertyType::kInt: {
      uint64_t zz;
      if (!GetVarint64(input, &zz)) return Status::Corruption("truncated int");
      return PropertyValue(util::ZigZagDecode(zz));
    }
    case PropertyType::kDouble: {
      if (input->size() < 8) return Status::Corruption("truncated double");
      const double v = util::DecodeDouble(input->data());
      input->RemovePrefix(8);
      return PropertyValue(v);
    }
    case PropertyType::kString: {
      Slice s;
      if (!GetLengthPrefixedSlice(input, &s)) {
        return Status::Corruption("truncated string");
      }
      return PropertyValue(s.ToString());
    }
    case PropertyType::kIntArray: {
      uint64_t n;
      if (!GetVarint64(input, &n)) return Status::Corruption("truncated array");
      std::vector<int64_t> values;
      values.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        uint64_t zz;
        if (!GetVarint64(input, &zz)) {
          return Status::Corruption("truncated int array");
        }
        values.push_back(util::ZigZagDecode(zz));
      }
      return PropertyValue(std::move(values));
    }
    case PropertyType::kDoubleArray: {
      uint64_t n;
      if (!GetVarint64(input, &n)) return Status::Corruption("truncated array");
      std::vector<double> values;
      values.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        if (input->size() < 8) {
          return Status::Corruption("truncated double array");
        }
        values.push_back(util::DecodeDouble(input->data()));
        input->RemovePrefix(8);
      }
      return PropertyValue(std::move(values));
    }
    case PropertyType::kStringArray: {
      uint64_t n;
      if (!GetVarint64(input, &n)) return Status::Corruption("truncated array");
      std::vector<std::string> values;
      values.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        Slice s;
        if (!GetLengthPrefixedSlice(input, &s)) {
          return Status::Corruption("truncated string array");
        }
        values.push_back(s.ToString());
      }
      return PropertyValue(std::move(values));
    }
  }
  return Status::Corruption("unknown property type tag");
}

void PropertySet::Set(const std::string& key, PropertyValue value) {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const Entry& e, const std::string& k) { return e.first < k; });
  if (it != entries_.end() && it->first == key) {
    it->second = std::move(value);
  } else {
    entries_.insert(it, {key, std::move(value)});
  }
}

const PropertyValue* PropertySet::Get(const std::string& key) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const Entry& e, const std::string& k) { return e.first < k; });
  if (it != entries_.end() && it->first == key) return &it->second;
  return nullptr;
}

bool PropertySet::Remove(const std::string& key) {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const Entry& e, const std::string& k) { return e.first < k; });
  if (it != entries_.end() && it->first == key) {
    entries_.erase(it);
    return true;
  }
  return false;
}

void PropertySet::EncodeTo(std::string* dst) const {
  PutVarint64(dst, entries_.size());
  for (const Entry& e : entries_) {
    PutLengthPrefixedSlice(dst, e.first);
    e.second.EncodeTo(dst);
  }
}

StatusOr<PropertySet> PropertySet::DecodeFrom(Slice* input) {
  uint64_t n;
  if (!GetVarint64(input, &n)) {
    return Status::Corruption("truncated property set");
  }
  PropertySet set;
  set.entries_.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Slice key;
    if (!GetLengthPrefixedSlice(input, &key)) {
      return Status::Corruption("truncated property key");
    }
    AION_ASSIGN_OR_RETURN(PropertyValue value,
                          PropertyValue::DecodeFrom(input));
    // Input encodings are sorted (we produce them); keep append fast but
    // fall back to Set for safety on unordered input.
    if (set.entries_.empty() || set.entries_.back().first < key.ToString()) {
      set.entries_.emplace_back(key.ToString(), std::move(value));
    } else {
      set.Set(key.ToString(), std::move(value));
    }
  }
  return set;
}

size_t PropertySet::EstimateBytes() const {
  size_t total = sizeof(*this) + entries_.capacity() * sizeof(Entry);
  for (const Entry& e : entries_) {
    total += e.first.size();
    switch (e.second.type()) {
      case PropertyType::kString:
        total += e.second.AsString().size();
        break;
      case PropertyType::kIntArray:
        total += e.second.AsIntArray().size() * 8;
        break;
      case PropertyType::kDoubleArray:
        total += e.second.AsDoubleArray().size() * 8;
        break;
      case PropertyType::kStringArray:
        for (const std::string& s : e.second.AsStringArray()) {
          total += s.size() + sizeof(std::string);
        }
        break;
      default:
        break;
    }
  }
  return total;
}

}  // namespace aion::graph
