#include "graph/temporal_graph.h"

#include <algorithm>

#include "util/logging.h"

namespace aion::graph {

using util::Status;
using util::StatusOr;

template <typename T>
void TemporalGraph::VersionChain<T>::Append(Timestamp t, T entity) {
  if (!versions.empty() && versions.back().interval.end == kInfiniteTime) {
    if (versions.back().interval.start == t) {
      // Same-timestamp modification: collapse into the open version so the
      // invariant tau_s < tau_e holds.
      versions.back().entity = std::move(entity);
      return;
    }
    versions.back().interval.end = t;
  }
  versions.push_back({TimeInterval{t, kInfiniteTime}, std::move(entity)});
}

template <typename T>
void TemporalGraph::VersionChain<T>::Close(Timestamp t) {
  if (!versions.empty() && versions.back().interval.end == kInfiniteTime) {
    if (versions.back().interval.start == t) {
      // Created and deleted at the same timestamp: drop the version.
      versions.pop_back();
    } else {
      versions.back().interval.end = t;
    }
  }
}

template <typename T>
const Versioned<T>* TemporalGraph::VersionChain<T>::At(Timestamp t) const {
  // Binary search: last version with start <= t.
  size_t lo = 0, hi = versions.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (versions[mid].interval.start <= t) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == 0) return nullptr;
  const Versioned<T>& v = versions[lo - 1];
  return v.interval.Contains(t) ? &v : nullptr;
}

template <typename T>
Versioned<T>* TemporalGraph::VersionChain<T>::OpenVersion() {
  if (!versions.empty() && versions.back().interval.end == kInfiniteTime) {
    return &versions.back();
  }
  return nullptr;
}

Status TemporalGraph::Apply(const GraphUpdate& u) {
  if (u.ts < last_ts_) {
    return Status::InvalidArgument(
        "updates must be ordered by timestamp (got " + std::to_string(u.ts) +
        " after " + std::to_string(last_ts_) + ")");
  }
  last_ts_ = u.ts;
  switch (u.op) {
    case UpdateOp::kAddNode: {
      if (u.id >= nodes_.size()) {
        nodes_.resize(u.id + 1);
        out_.resize(u.id + 1);
        in_.resize(u.id + 1);
      }
      if (nodes_[u.id].OpenVersion() != nullptr) {
        return Status::AlreadyExists("node " + std::to_string(u.id) +
                                     " is live");
      }
      Node node;
      node.id = u.id;
      node.labels = u.labels;
      node.props = u.props;
      nodes_[u.id].Append(u.ts, std::move(node));
      ++num_node_versions_;
      return Status::OK();
    }
    case UpdateOp::kDeleteNode: {
      if (u.id >= nodes_.size() || nodes_[u.id].OpenVersion() == nullptr) {
        return Status::FailedPrecondition("node " + std::to_string(u.id) +
                                          " is not live");
      }
      nodes_[u.id].Close(u.ts);
      return Status::OK();
    }
    case UpdateOp::kAddRelationship: {
      if (u.src >= nodes_.size() || nodes_[u.src].OpenVersion() == nullptr) {
        return Status::FailedPrecondition("src node not live");
      }
      if (u.tgt >= nodes_.size() || nodes_[u.tgt].OpenVersion() == nullptr) {
        return Status::FailedPrecondition("tgt node not live");
      }
      if (u.id >= rels_.size()) rels_.resize(u.id + 1);
      if (rels_[u.id].OpenVersion() != nullptr) {
        return Status::AlreadyExists("relationship " + std::to_string(u.id) +
                                     " is live");
      }
      Relationship rel;
      rel.id = u.id;
      rel.src = u.src;
      rel.tgt = u.tgt;
      rel.type = u.type;
      rel.props = u.props;
      // First appearance of this rel id around these endpoints goes into
      // the all-history neighbourhood vectors.
      auto& out_vec = out_[u.src];
      if (std::find(out_vec.begin(), out_vec.end(), u.id) == out_vec.end()) {
        out_vec.push_back(u.id);
      }
      auto& in_vec = in_[u.tgt];
      if (std::find(in_vec.begin(), in_vec.end(), u.id) == in_vec.end()) {
        in_vec.push_back(u.id);
      }
      rels_[u.id].Append(u.ts, std::move(rel));
      ++num_rel_versions_;
      return Status::OK();
    }
    case UpdateOp::kDeleteRelationship: {
      if (u.id >= rels_.size() || rels_[u.id].OpenVersion() == nullptr) {
        return Status::FailedPrecondition("relationship " +
                                          std::to_string(u.id) +
                                          " is not live");
      }
      rels_[u.id].Close(u.ts);
      return Status::OK();
    }
    case UpdateOp::kSetNodeProperty:
    case UpdateOp::kRemoveNodeProperty:
    case UpdateOp::kAddNodeLabel:
    case UpdateOp::kRemoveNodeLabel: {
      if (u.id >= nodes_.size() || nodes_[u.id].OpenVersion() == nullptr) {
        return Status::FailedPrecondition("node " + std::to_string(u.id) +
                                          " is not live");
      }
      // Modification = deletion followed by insertion of the new state.
      Node next = nodes_[u.id].OpenVersion()->entity;
      switch (u.op) {
        case UpdateOp::kSetNodeProperty:
          next.props.Set(u.key, u.value);
          break;
        case UpdateOp::kRemoveNodeProperty:
          next.props.Remove(u.key);
          break;
        case UpdateOp::kAddNodeLabel:
          next.AddLabel(u.label);
          break;
        case UpdateOp::kRemoveNodeLabel:
          next.RemoveLabel(u.label);
          break;
        default:
          break;
      }
      nodes_[u.id].Append(u.ts, std::move(next));
      ++num_node_versions_;
      return Status::OK();
    }
    case UpdateOp::kSetRelationshipProperty:
    case UpdateOp::kRemoveRelationshipProperty: {
      if (u.id >= rels_.size() || rels_[u.id].OpenVersion() == nullptr) {
        return Status::FailedPrecondition("relationship " +
                                          std::to_string(u.id) +
                                          " is not live");
      }
      Relationship next = rels_[u.id].OpenVersion()->entity;
      if (u.op == UpdateOp::kSetRelationshipProperty) {
        next.props.Set(u.key, u.value);
      } else {
        next.props.Remove(u.key);
      }
      rels_[u.id].Append(u.ts, std::move(next));
      ++num_rel_versions_;
      return Status::OK();
    }
  }
  return Status::InvalidArgument("unknown update op");
}

Status TemporalGraph::ApplyAll(const std::vector<GraphUpdate>& updates) {
  for (const GraphUpdate& u : updates) {
    AION_RETURN_IF_ERROR(Apply(u));
  }
  return Status::OK();
}

StatusOr<std::unique_ptr<TemporalGraph>> TemporalGraph::Build(
    const std::vector<GraphUpdate>& updates) {
  auto graph = std::make_unique<TemporalGraph>();
  AION_RETURN_IF_ERROR(graph->ApplyAll(updates));
  return graph;
}

const Node* TemporalGraph::NodeAt(NodeId id, Timestamp t) const {
  if (id >= nodes_.size()) return nullptr;
  const NodeVersion* v = nodes_[id].At(t);
  return v == nullptr ? nullptr : &v->entity;
}

const Relationship* TemporalGraph::RelationshipAt(RelId id,
                                                  Timestamp t) const {
  if (id >= rels_.size()) return nullptr;
  const RelationshipVersion* v = rels_[id].At(t);
  return v == nullptr ? nullptr : &v->entity;
}

TimeInterval TemporalGraph::NodeIntervalAt(NodeId id, Timestamp t) const {
  const NodeVersion* v = id < nodes_.size() ? nodes_[id].At(t) : nullptr;
  return v == nullptr ? TimeInterval{0, 0} : v->interval;
}

TimeInterval TemporalGraph::RelationshipIntervalAt(RelId id,
                                                   Timestamp t) const {
  const RelationshipVersion* v =
      id < rels_.size() ? rels_[id].At(t) : nullptr;
  return v == nullptr ? TimeInterval{0, 0} : v->interval;
}

std::vector<NodeVersion> TemporalGraph::NodeHistory(NodeId id,
                                                    Timestamp start,
                                                    Timestamp end) const {
  std::vector<NodeVersion> out;
  if (id >= nodes_.size()) return out;
  for (const NodeVersion& v : nodes_[id].versions) {
    if (v.interval.Overlaps(start, end)) out.push_back(v);
  }
  return out;
}

std::vector<RelationshipVersion> TemporalGraph::RelationshipHistory(
    RelId id, Timestamp start, Timestamp end) const {
  std::vector<RelationshipVersion> out;
  if (id >= rels_.size()) return out;
  for (const RelationshipVersion& v : rels_[id].versions) {
    if (v.interval.Overlaps(start, end)) out.push_back(v);
  }
  return out;
}

void TemporalGraph::ForEachRelVersion(
    NodeId node, Direction direction,
    const std::function<void(const RelationshipVersion&)>& fn) const {
  if (node >= out_.size()) return;
  if (direction == Direction::kOutgoing || direction == Direction::kBoth) {
    for (RelId id : out_[node]) {
      for (const RelationshipVersion& v : rels_[id].versions) fn(v);
    }
  }
  if (direction == Direction::kIncoming || direction == Direction::kBoth) {
    for (RelId id : in_[node]) {
      for (const RelationshipVersion& v : rels_[id].versions) fn(v);
    }
  }
}

void TemporalGraph::ForEachNodeInWindow(
    Timestamp start, Timestamp end,
    const std::function<void(const NodeVersion&)>& fn) const {
  for (const auto& chain : nodes_) {
    const NodeVersion* latest = nullptr;
    for (const NodeVersion& v : chain.versions) {
      if (v.interval.Overlaps(start, end)) latest = &v;
    }
    if (latest != nullptr) fn(*latest);
  }
}

std::unique_ptr<MemoryGraph> TemporalGraph::SnapshotAt(Timestamp t) const {
  auto graph = std::make_unique<MemoryGraph>();
  for (const auto& chain : nodes_) {
    const NodeVersion* v = chain.At(t);
    if (v != nullptr) {
      AION_CHECK_OK(graph->Apply(GraphUpdate::AddNode(
          v->entity.id, v->entity.labels, v->entity.props)));
    }
  }
  for (const auto& chain : rels_) {
    const RelationshipVersion* v = chain.At(t);
    if (v != nullptr) {
      AION_CHECK_OK(graph->Apply(GraphUpdate::AddRelationship(
          v->entity.id, v->entity.src, v->entity.tgt, v->entity.type,
          v->entity.props)));
    }
  }
  return graph;
}

util::Status TemporalGraph::RequireNodeAt(NodeId id, Timestamp t) {
  if (id >= nodes_.size() || nodes_[id].At(t) == nullptr) {
    return Status::FailedPrecondition("node " + std::to_string(id) +
                                      " not live at " + std::to_string(t));
  }
  return Status::OK();
}

}  // namespace aion::graph
