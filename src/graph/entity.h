// LPG graph entities (Sec 3): nodes v = (nid, l, p) with a set of labels,
// relationships e = (rid, src, tgt, l, p) with a single (or empty) type.
// Versioned<T> adds the validity interval of the temporal LPG:
// v = (tau_s, tau_e, nid, l, p).
#ifndef AION_GRAPH_ENTITY_H_
#define AION_GRAPH_ENTITY_H_

#include <algorithm>
#include <string>
#include <vector>

#include "graph/property.h"
#include "graph/types.h"

namespace aion::graph {

/// A node of the labeled property graph.
struct Node {
  NodeId id = kInvalidNodeId;
  std::vector<std::string> labels;  // sorted, unique
  PropertySet props;

  bool HasLabel(const std::string& label) const {
    return std::binary_search(labels.begin(), labels.end(), label);
  }

  /// Adds `label`; returns false if already present.
  bool AddLabel(const std::string& label) {
    auto it = std::lower_bound(labels.begin(), labels.end(), label);
    if (it != labels.end() && *it == label) return false;
    labels.insert(it, label);
    return true;
  }

  /// Removes `label`; returns false if absent.
  bool RemoveLabel(const std::string& label) {
    auto it = std::lower_bound(labels.begin(), labels.end(), label);
    if (it == labels.end() || *it != label) return false;
    labels.erase(it);
    return true;
  }

  bool operator==(const Node&) const = default;
};

/// A directed relationship of the labeled property graph.
struct Relationship {
  RelId id = kInvalidRelId;
  NodeId src = kInvalidNodeId;
  NodeId tgt = kInvalidNodeId;
  std::string type;  // single (or empty) label
  PropertySet props;

  /// The endpoint opposite to `node` (for undirected expansion).
  NodeId Other(NodeId node) const { return node == src ? tgt : src; }

  bool operator==(const Relationship&) const = default;
};

/// An entity version with its validity interval [valid_from, valid_to).
template <typename T>
struct Versioned {
  TimeInterval interval;
  T entity;

  bool operator==(const Versioned&) const = default;
};

using NodeVersion = Versioned<Node>;
using RelationshipVersion = Versioned<Relationship>;

}  // namespace aion::graph

#endif  // AION_GRAPH_ENTITY_H_
