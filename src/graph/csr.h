// Static CSR projection (Sec 2.1 / 5.1): Aion extracts graph history into
// "GDS projections" — Compressed Sparse Row structures over the dense node
// id domain — for efficient parallel analytics. CsrGraph is immutable after
// Build.
#ifndef AION_GRAPH_CSR_H_
#define AION_GRAPH_CSR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph_view.h"
#include "graph/memgraph.h"

namespace aion::graph {

class CsrGraph {
 public:
  /// Projects `view` into CSR form over dense node ids. If `weight_property`
  /// is non-empty, per-edge weights are read from that relationship property
  /// (missing/non-numeric values default to 1.0).
  static CsrGraph Build(const GraphView& view,
                        const std::string& weight_property = "");

  size_t num_nodes() const { return offsets_.size() - 1; }
  size_t num_edges() const { return targets_.size(); }

  /// Outgoing neighbours of dense node `u` as dense ids.
  const uint32_t* Neighbors(uint32_t u, size_t* count) const {
    *count = offsets_[u + 1] - offsets_[u];
    return targets_.data() + offsets_[u];
  }

  /// Incoming neighbours (reverse CSR).
  const uint32_t* InNeighbors(uint32_t u, size_t* count) const {
    *count = in_offsets_[u + 1] - in_offsets_[u];
    return in_targets_.data() + in_offsets_[u];
  }

  double Weight(uint32_t u, size_t edge_index) const {
    return weights_.empty() ? 1.0 : weights_[offsets_[u] + edge_index];
  }

  size_t OutDegree(uint32_t u) const { return offsets_[u + 1] - offsets_[u]; }
  size_t InDegree(uint32_t u) const {
    return in_offsets_[u + 1] - in_offsets_[u];
  }

  const DenseIdMap& dense_map() const { return map_; }
  NodeId ToSparse(uint32_t dense) const { return map_.dense_to_sparse[dense]; }
  uint32_t ToDense(NodeId sparse) const {
    return map_.sparse_to_dense[sparse];
  }

  /// Heap footprint of the projection (arrays + id maps) — the unit the
  /// projection cache's byte budget is accounted in.
  size_t SizeBytes() const {
    return map_.dense_to_sparse.capacity() * sizeof(NodeId) +
           map_.sparse_to_dense.capacity() * sizeof(uint32_t) +
           offsets_.capacity() * sizeof(uint64_t) +
           targets_.capacity() * sizeof(uint32_t) +
           weights_.capacity() * sizeof(double) +
           in_offsets_.capacity() * sizeof(uint64_t) +
           in_targets_.capacity() * sizeof(uint32_t);
  }

 private:
  DenseIdMap map_;
  std::vector<uint64_t> offsets_;     // size num_nodes + 1
  std::vector<uint32_t> targets_;     // dense target ids
  std::vector<double> weights_;       // empty if unweighted
  std::vector<uint64_t> in_offsets_;  // reverse CSR
  std::vector<uint32_t> in_targets_;
};

}  // namespace aion::graph

#endif  // AION_GRAPH_CSR_H_
