#include "graph/memgraph.h"

#include <algorithm>

#include "util/coding.h"
#include "util/logging.h"

namespace aion::graph {

using util::Status;
using util::StatusOr;

namespace {

Status NodeMissing(NodeId id) {
  return Status::FailedPrecondition("node " + std::to_string(id) +
                                    " does not exist");
}
Status RelMissing(RelId id) {
  return Status::FailedPrecondition("relationship " + std::to_string(id) +
                                    " does not exist");
}

}  // namespace

void MemoryGraph::EnsureNodeCapacity(NodeId id) {
  if (id >= nodes_.size()) {
    nodes_.resize(id + 1);
    if (has_neighbourhoods_) {
      out_.resize(id + 1);
      in_.resize(id + 1);
    }
  }
}

void MemoryGraph::EnsureRelCapacity(RelId id) {
  if (id >= rels_.size()) rels_.resize(id + 1);
}

void MemoryGraph::RemoveRelId(std::vector<RelId>* vec, RelId id) {
  auto it = std::find(vec->begin(), vec->end(), id);
  if (it != vec->end()) vec->erase(it);
}

Status MemoryGraph::Apply(const GraphUpdate& u) {
  switch (u.op) {
    case UpdateOp::kAddNode: {
      EnsureNodeCapacity(u.id);
      if (nodes_[u.id].has_value()) {
        return Status::AlreadyExists("node " + std::to_string(u.id) +
                                     " already exists");
      }
      Node node;
      node.id = u.id;
      node.labels = u.labels;
      node.props = u.props;
      nodes_[u.id] = std::move(node);
      ++num_nodes_;
      return Status::OK();
    }
    case UpdateOp::kDeleteNode: {
      if (u.id >= nodes_.size() || !nodes_[u.id].has_value()) {
        return NodeMissing(u.id);
      }
      if (has_neighbourhoods_ &&
          (!out_[u.id].empty() || !in_[u.id].empty())) {
        return Status::FailedPrecondition(
            "node " + std::to_string(u.id) +
            " still has relationships; delete them first");
      }
      nodes_[u.id].reset();
      --num_nodes_;
      return Status::OK();
    }
    case UpdateOp::kAddRelationship: {
      if (u.src >= nodes_.size() || !nodes_[u.src].has_value()) {
        return NodeMissing(u.src);
      }
      if (u.tgt >= nodes_.size() || !nodes_[u.tgt].has_value()) {
        return NodeMissing(u.tgt);
      }
      EnsureRelCapacity(u.id);
      if (rels_[u.id].has_value()) {
        return Status::AlreadyExists("relationship " + std::to_string(u.id) +
                                     " already exists");
      }
      Relationship rel;
      rel.id = u.id;
      rel.src = u.src;
      rel.tgt = u.tgt;
      rel.type = u.type;
      rel.props = u.props;
      rels_[u.id] = std::move(rel);
      if (has_neighbourhoods_) {
        out_[u.src].push_back(u.id);
        in_[u.tgt].push_back(u.id);
      }
      ++num_rels_;
      return Status::OK();
    }
    case UpdateOp::kDeleteRelationship: {
      if (u.id >= rels_.size() || !rels_[u.id].has_value()) {
        return RelMissing(u.id);
      }
      const Relationship& rel = *rels_[u.id];
      if (has_neighbourhoods_) {
        RemoveRelId(&out_[rel.src], u.id);
        RemoveRelId(&in_[rel.tgt], u.id);
      }
      rels_[u.id].reset();
      --num_rels_;
      return Status::OK();
    }
    case UpdateOp::kSetNodeProperty: {
      if (u.id >= nodes_.size() || !nodes_[u.id].has_value()) {
        return NodeMissing(u.id);
      }
      nodes_[u.id]->props.Set(u.key, u.value);
      return Status::OK();
    }
    case UpdateOp::kRemoveNodeProperty: {
      if (u.id >= nodes_.size() || !nodes_[u.id].has_value()) {
        return NodeMissing(u.id);
      }
      nodes_[u.id]->props.Remove(u.key);
      return Status::OK();
    }
    case UpdateOp::kAddNodeLabel: {
      if (u.id >= nodes_.size() || !nodes_[u.id].has_value()) {
        return NodeMissing(u.id);
      }
      nodes_[u.id]->AddLabel(u.label);
      return Status::OK();
    }
    case UpdateOp::kRemoveNodeLabel: {
      if (u.id >= nodes_.size() || !nodes_[u.id].has_value()) {
        return NodeMissing(u.id);
      }
      nodes_[u.id]->RemoveLabel(u.label);
      return Status::OK();
    }
    case UpdateOp::kSetRelationshipProperty: {
      if (u.id >= rels_.size() || !rels_[u.id].has_value()) {
        return RelMissing(u.id);
      }
      rels_[u.id]->props.Set(u.key, u.value);
      return Status::OK();
    }
    case UpdateOp::kRemoveRelationshipProperty: {
      if (u.id >= rels_.size() || !rels_[u.id].has_value()) {
        return RelMissing(u.id);
      }
      rels_[u.id]->props.Remove(u.key);
      return Status::OK();
    }
  }
  return Status::InvalidArgument("unknown update op");
}

Status MemoryGraph::ApplyAll(const std::vector<GraphUpdate>& updates) {
  for (const GraphUpdate& u : updates) {
    AION_RETURN_IF_ERROR(Apply(u));
  }
  return Status::OK();
}

const Node* MemoryGraph::GetNode(NodeId id) const {
  if (id >= nodes_.size() || !nodes_[id].has_value()) return nullptr;
  return &*nodes_[id];
}

const Relationship* MemoryGraph::GetRelationship(RelId id) const {
  if (id >= rels_.size() || !rels_[id].has_value()) return nullptr;
  return &*rels_[id];
}

void MemoryGraph::ForEachNode(
    const std::function<void(const Node&)>& fn) const {
  for (const auto& n : nodes_) {
    if (n.has_value()) fn(*n);
  }
}

void MemoryGraph::ForEachRelationship(
    const std::function<void(const Relationship&)>& fn) const {
  for (const auto& r : rels_) {
    if (r.has_value()) fn(*r);
  }
}

void MemoryGraph::ForEachRel(NodeId node, Direction direction,
                             const std::function<void(RelId)>& fn) const {
  AION_CHECK(has_neighbourhoods_);
  if (node >= nodes_.size()) return;
  if (direction == Direction::kOutgoing || direction == Direction::kBoth) {
    for (RelId id : out_[node]) fn(id);
  }
  if (direction == Direction::kIncoming || direction == Direction::kBoth) {
    for (RelId id : in_[node]) fn(id);
  }
}

const std::vector<RelId>& MemoryGraph::OutRels(NodeId id) const {
  static const std::vector<RelId> kEmpty;
  AION_CHECK(has_neighbourhoods_);
  return id < out_.size() ? out_[id] : kEmpty;
}

const std::vector<RelId>& MemoryGraph::InRels(NodeId id) const {
  static const std::vector<RelId> kEmpty;
  AION_CHECK(has_neighbourhoods_);
  return id < in_.size() ? in_[id] : kEmpty;
}

std::unique_ptr<MemoryGraph> MemoryGraph::Clone() const {
  auto copy = std::make_unique<MemoryGraph>();
  copy->nodes_ = nodes_;
  copy->rels_ = rels_;
  copy->out_ = out_;
  copy->in_ = in_;
  copy->num_nodes_ = num_nodes_;
  copy->num_rels_ = num_rels_;
  copy->has_neighbourhoods_ = has_neighbourhoods_;
  return copy;
}

DenseIdMap MemoryGraph::BuildDenseMap() const {
  DenseIdMap map;
  map.sparse_to_dense.assign(nodes_.size(), DenseIdMap::kUnmapped);
  map.dense_to_sparse.reserve(num_nodes_);
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].has_value()) {
      map.sparse_to_dense[id] = static_cast<uint32_t>(
          map.dense_to_sparse.size());
      map.dense_to_sparse.push_back(id);
    }
  }
  return map;
}

size_t MemoryGraph::EstimateMemoryBytes() const {
  // Table 3 accounting: ~60 B per node, ~68 B per relationship, 4 B per
  // neighbourhood entry; labels and property payloads added on top.
  size_t total = num_nodes_ * 60 + num_rels_ * 68;
  if (has_neighbourhoods_) total += 2 * num_rels_ * 4;
  for (const auto& n : nodes_) {
    if (!n.has_value()) continue;
    for (const std::string& l : n->labels) total += l.size();
    total += n->props.EstimateBytes();
  }
  for (const auto& r : rels_) {
    if (!r.has_value()) continue;
    total += r->type.size();
    total += r->props.EstimateBytes();
  }
  return total;
}

void MemoryGraph::EncodeTo(std::string* dst) const {
  using util::PutLengthPrefixedSlice;
  using util::PutVarint64;
  PutVarint64(dst, nodes_.size());
  PutVarint64(dst, rels_.size());
  PutVarint64(dst, num_nodes_);
  PutVarint64(dst, num_rels_);
  // Live nodes: id, labels, props.
  for (const auto& n : nodes_) {
    if (!n.has_value()) continue;
    PutVarint64(dst, n->id);
    PutVarint64(dst, n->labels.size());
    for (const std::string& l : n->labels) PutLengthPrefixedSlice(dst, l);
    n->props.EncodeTo(dst);
  }
  // Live relationships: id, src, tgt, type, props.
  for (const auto& r : rels_) {
    if (!r.has_value()) continue;
    PutVarint64(dst, r->id);
    PutVarint64(dst, r->src);
    PutVarint64(dst, r->tgt);
    PutLengthPrefixedSlice(dst, r->type);
    r->props.EncodeTo(dst);
  }
  // Neighbourhoods are intentionally not serialized (Sec 5.2: recomputed on
  // retrieval).
}

StatusOr<std::unique_ptr<MemoryGraph>> MemoryGraph::DecodeFrom(
    util::Slice input) {
  using util::GetLengthPrefixedSlice;
  using util::GetVarint64;
  auto graph = std::make_unique<MemoryGraph>();
  uint64_t node_cap, rel_cap, num_nodes, num_rels;
  if (!GetVarint64(&input, &node_cap) || !GetVarint64(&input, &rel_cap) ||
      !GetVarint64(&input, &num_nodes) || !GetVarint64(&input, &num_rels)) {
    return Status::Corruption("truncated graph header");
  }
  graph->nodes_.resize(node_cap);
  graph->rels_.resize(rel_cap);
  graph->out_.resize(node_cap);
  graph->in_.resize(node_cap);
  for (uint64_t i = 0; i < num_nodes; ++i) {
    Node node;
    uint64_t nlabels;
    if (!GetVarint64(&input, &node.id) || !GetVarint64(&input, &nlabels)) {
      return Status::Corruption("truncated node record");
    }
    node.labels.reserve(nlabels);
    util::Slice s;
    for (uint64_t j = 0; j < nlabels; ++j) {
      if (!GetLengthPrefixedSlice(&input, &s)) {
        return Status::Corruption("truncated node label");
      }
      node.labels.push_back(s.ToString());
    }
    AION_ASSIGN_OR_RETURN(node.props, PropertySet::DecodeFrom(&input));
    if (node.id >= node_cap) return Status::Corruption("node id out of range");
    graph->nodes_[node.id] = std::move(node);
  }
  for (uint64_t i = 0; i < num_rels; ++i) {
    Relationship rel;
    if (!GetVarint64(&input, &rel.id) || !GetVarint64(&input, &rel.src) ||
        !GetVarint64(&input, &rel.tgt)) {
      return Status::Corruption("truncated rel record");
    }
    util::Slice s;
    if (!GetLengthPrefixedSlice(&input, &s)) {
      return Status::Corruption("truncated rel type");
    }
    rel.type = s.ToString();
    AION_ASSIGN_OR_RETURN(rel.props, PropertySet::DecodeFrom(&input));
    if (rel.id >= rel_cap) return Status::Corruption("rel id out of range");
    if (rel.src >= node_cap || rel.tgt >= node_cap) {
      return Status::Corruption("rel endpoint out of range");
    }
    graph->out_[rel.src].push_back(rel.id);
    graph->in_[rel.tgt].push_back(rel.id);
    graph->rels_[rel.id] = std::move(rel);
  }
  graph->num_nodes_ = num_nodes;
  graph->num_rels_ = num_rels;
  return graph;
}

void MemoryGraph::DropNeighbourhoods() {
  out_.clear();
  out_.shrink_to_fit();
  in_.clear();
  in_.shrink_to_fit();
  has_neighbourhoods_ = false;
}

void MemoryGraph::RebuildNeighbourhoods() {
  out_.assign(nodes_.size(), {});
  in_.assign(nodes_.size(), {});
  for (const auto& r : rels_) {
    if (!r.has_value()) continue;
    out_[r->src].push_back(r->id);
    in_[r->tgt].push_back(r->id);
  }
  has_neighbourhoods_ = true;
}

bool MemoryGraph::SameGraphAs(const GraphView& other) const {
  if (NumNodes() != other.NumNodes() ||
      NumRelationships() != other.NumRelationships()) {
    return false;
  }
  bool same = true;
  ForEachNode([&](const Node& n) {
    const Node* o = other.GetNode(n.id);
    if (o == nullptr || !(*o == n)) same = false;
  });
  if (!same) return false;
  ForEachRelationship([&](const Relationship& r) {
    const Relationship* o = other.GetRelationship(r.id);
    if (o == nullptr || !(*o == r)) same = false;
  });
  return same;
}

}  // namespace aion::graph
