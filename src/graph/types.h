// Fundamental identifier and time types of the temporal LPG model (Sec 3).
#ifndef AION_GRAPH_TYPES_H_
#define AION_GRAPH_TYPES_H_

#include <cstdint>

namespace aion::graph {

/// Unique node identifier (nid in the paper).
using NodeId = uint64_t;
/// Unique relationship identifier (rid in the paper).
using RelId = uint64_t;

/// Transaction (system) time: "an ordered time domain of discrete positive
/// integer values" (Sec 3). Commit timestamps are assigned monotonically.
using Timestamp = uint64_t;

/// tau_e for live entities: insertion sets the end time to infinity.
inline constexpr Timestamp kInfiniteTime = ~0ULL;

inline constexpr NodeId kInvalidNodeId = ~0ULL;
inline constexpr RelId kInvalidRelId = ~0ULL;

/// Relationship traversal direction for point/subgraph queries (Table 1).
enum class Direction : uint8_t {
  kOutgoing = 0,
  kIncoming = 1,
  kBoth = 2,
};

/// Storage-layer entity tag (Fig 3 header).
enum class EntityType : uint8_t {
  kNode = 0,
  kRelationship = 1,
  kNeighbourhood = 2,
};

/// Validity interval [start, end): start inclusive, end exclusive (Sec 3).
struct TimeInterval {
  Timestamp start = 0;
  Timestamp end = kInfiniteTime;

  bool Contains(Timestamp t) const { return t >= start && t < end; }
  bool Overlaps(Timestamp lo, Timestamp hi) const {
    // Overlap of [start, end) with [lo, hi).
    return start < hi && lo < end;
  }
  bool operator==(const TimeInterval&) const = default;
};

}  // namespace aion::graph

#endif  // AION_GRAPH_TYPES_H_
