// Graph updates (Sec 3): the universe U of insert/delete/update operations,
// forming the ordered sequence S = <u1, u2, ...> with commit timestamps.
// GraphUpdate is the currency flowing from the transaction layer into Aion
// (TimeStore log entries, LineageStore index entries, getDiff results,
// incremental algorithm deltas).
#ifndef AION_GRAPH_UPDATE_H_
#define AION_GRAPH_UPDATE_H_

#include <string>
#include <vector>

#include "graph/entity.h"
#include "graph/property.h"
#include "graph/types.h"
#include "util/slice.h"
#include "util/status.h"

namespace aion::graph {

enum class UpdateOp : uint8_t {
  kAddNode = 0,
  kDeleteNode = 1,
  kAddRelationship = 2,
  kDeleteRelationship = 3,
  kSetNodeProperty = 4,
  kRemoveNodeProperty = 5,
  kAddNodeLabel = 6,
  kRemoveNodeLabel = 7,
  kSetRelationshipProperty = 8,
  kRemoveRelationshipProperty = 9,
};

/// True for operations whose id field is a NodeId.
bool IsNodeOp(UpdateOp op);

/// A single graph update u = (tau, id, op). Fields beyond (ts, op, id) are
/// populated per operation kind; unused fields stay default.
struct GraphUpdate {
  Timestamp ts = 0;
  UpdateOp op = UpdateOp::kAddNode;
  uint64_t id = 0;  // NodeId or RelId depending on op

  // kAddRelationship
  NodeId src = kInvalidNodeId;
  NodeId tgt = kInvalidNodeId;
  std::string type;  // relationship type

  // kAdd*Label / kRemove*Label
  std::string label;

  // k*Property
  std::string key;
  PropertyValue value;

  // kAddNode / kAddRelationship initial state
  std::vector<std::string> labels;
  PropertySet props;

  // -------------------------------------------------------------------
  // Convenience factories (timestamps are assigned at commit time by the
  // transaction layer; factories default ts to 0).
  // -------------------------------------------------------------------
  static GraphUpdate AddNode(NodeId id, std::vector<std::string> labels = {},
                             PropertySet props = {});
  static GraphUpdate DeleteNode(NodeId id);
  static GraphUpdate AddRelationship(RelId id, NodeId src, NodeId tgt,
                                     std::string type,
                                     PropertySet props = {});
  static GraphUpdate DeleteRelationship(RelId id);
  static GraphUpdate SetNodeProperty(NodeId id, std::string key,
                                     PropertyValue value);
  static GraphUpdate RemoveNodeProperty(NodeId id, std::string key);
  static GraphUpdate AddNodeLabel(NodeId id, std::string label);
  static GraphUpdate RemoveNodeLabel(NodeId id, std::string label);
  static GraphUpdate SetRelationshipProperty(RelId id, std::string key,
                                             PropertyValue value);
  static GraphUpdate RemoveRelationshipProperty(RelId id, std::string key);

  bool operator==(const GraphUpdate&) const = default;

  std::string ToString() const;

  /// Appends a self-delimiting encoding to `dst` (WAL / TimeStore log).
  void EncodeTo(std::string* dst) const;
  static util::StatusOr<GraphUpdate> DecodeFrom(util::Slice* input);
};

/// Encodes a batch of updates (one committed transaction) into `dst`.
void EncodeUpdateBatch(const std::vector<GraphUpdate>& updates,
                       std::string* dst);
util::StatusOr<std::vector<GraphUpdate>> DecodeUpdateBatch(util::Slice input);

}  // namespace aion::graph

#endif  // AION_GRAPH_UPDATE_H_
