// Read-only view over a graph at one point in time. Implemented by
// MemoryGraph (materialized snapshots) and CowGraph (copy-on-write overlays
// handed out by the GraphStore, Sec 5.2). Algorithms and the query executor
// program against this interface; heavy analytics first project to CsrGraph.
#ifndef AION_GRAPH_GRAPH_VIEW_H_
#define AION_GRAPH_GRAPH_VIEW_H_

#include <functional>
#include <vector>

#include "graph/entity.h"
#include "graph/types.h"

namespace aion::graph {

class GraphView {
 public:
  virtual ~GraphView() = default;

  /// Returns the node or nullptr if absent. The pointer is valid until the
  /// next mutation of the underlying graph.
  virtual const Node* GetNode(NodeId id) const = 0;

  /// Returns the relationship or nullptr if absent.
  virtual const Relationship* GetRelationship(RelId id) const = 0;

  /// Invokes fn for every live node / relationship.
  virtual void ForEachNode(
      const std::function<void(const Node&)>& fn) const = 0;
  virtual void ForEachRelationship(
      const std::function<void(const Relationship&)>& fn) const = 0;

  /// Invokes fn(rel_id) for each relationship incident to `node` in the
  /// given direction. kBoth visits outgoing first, then incoming; self-loops
  /// therefore appear twice under kBoth (matching adjacency storage).
  virtual void ForEachRel(
      NodeId node, Direction direction,
      const std::function<void(RelId)>& fn) const = 0;

  virtual size_t NumNodes() const = 0;
  virtual size_t NumRelationships() const = 0;

  /// One past the largest id ever observed (vector sizing bound).
  virtual NodeId NodeCapacity() const = 0;
  virtual RelId RelCapacity() const = 0;

  /// Collects incident relationship ids into a vector (convenience).
  std::vector<RelId> RelIds(NodeId node, Direction direction) const {
    std::vector<RelId> ids;
    ForEachRel(node, direction, [&ids](RelId id) { ids.push_back(id); });
    return ids;
  }

  /// Out-degree + in-degree shortcut.
  size_t Degree(NodeId node, Direction direction) const {
    size_t n = 0;
    ForEachRel(node, direction, [&n](RelId) { ++n; });
    return n;
  }
};

}  // namespace aion::graph

#endif  // AION_GRAPH_GRAPH_VIEW_H_
