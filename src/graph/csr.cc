#include "graph/csr.h"

#include "graph/property.h"
#include "util/logging.h"

namespace aion::graph {

CsrGraph CsrGraph::Build(const GraphView& view,
                         const std::string& weight_property) {
  CsrGraph csr;

  // Dense mapping over live nodes.
  DenseIdMap& map = csr.map_;
  map.sparse_to_dense.assign(view.NodeCapacity(), DenseIdMap::kUnmapped);
  map.dense_to_sparse.reserve(view.NumNodes());
  view.ForEachNode([&](const Node& n) {
    map.sparse_to_dense[n.id] =
        static_cast<uint32_t>(map.dense_to_sparse.size());
    map.dense_to_sparse.push_back(n.id);
  });
  const size_t n = map.dense_to_sparse.size();

  // Counting pass.
  std::vector<uint64_t> out_count(n, 0), in_count(n, 0);
  view.ForEachRelationship([&](const Relationship& r) {
    ++out_count[map.sparse_to_dense[r.src]];
    ++in_count[map.sparse_to_dense[r.tgt]];
  });

  csr.offsets_.assign(n + 1, 0);
  csr.in_offsets_.assign(n + 1, 0);
  for (size_t i = 0; i < n; ++i) {
    csr.offsets_[i + 1] = csr.offsets_[i] + out_count[i];
    csr.in_offsets_[i + 1] = csr.in_offsets_[i] + in_count[i];
  }
  const size_t m = csr.offsets_[n];
  csr.targets_.resize(m);
  csr.in_targets_.resize(m);
  const bool weighted = !weight_property.empty();
  if (weighted) csr.weights_.resize(m, 1.0);

  // Fill pass.
  std::vector<uint64_t> out_pos(csr.offsets_.begin(), csr.offsets_.end() - 1);
  std::vector<uint64_t> in_pos(csr.in_offsets_.begin(),
                               csr.in_offsets_.end() - 1);
  view.ForEachRelationship([&](const Relationship& r) {
    const uint32_t src = map.sparse_to_dense[r.src];
    const uint32_t tgt = map.sparse_to_dense[r.tgt];
    const uint64_t opos = out_pos[src]++;
    csr.targets_[opos] = tgt;
    csr.in_targets_[in_pos[tgt]++] = src;
    if (weighted) {
      const PropertyValue* w = r.props.Get(weight_property);
      if (w != nullptr) csr.weights_[opos] = w->ToNumber();
    }
  });
  return csr;
}

}  // namespace aion::graph
