#include "graph/update.h"

#include "util/coding.h"

namespace aion::graph {

using util::GetLengthPrefixedSlice;
using util::GetVarint64;
using util::PutLengthPrefixedSlice;
using util::PutVarint64;
using util::Slice;
using util::Status;
using util::StatusOr;

bool IsNodeOp(UpdateOp op) {
  switch (op) {
    case UpdateOp::kAddNode:
    case UpdateOp::kDeleteNode:
    case UpdateOp::kSetNodeProperty:
    case UpdateOp::kRemoveNodeProperty:
    case UpdateOp::kAddNodeLabel:
    case UpdateOp::kRemoveNodeLabel:
      return true;
    default:
      return false;
  }
}

GraphUpdate GraphUpdate::AddNode(NodeId id, std::vector<std::string> labels,
                                 PropertySet props) {
  GraphUpdate u;
  u.op = UpdateOp::kAddNode;
  u.id = id;
  std::sort(labels.begin(), labels.end());
  labels.erase(std::unique(labels.begin(), labels.end()), labels.end());
  u.labels = std::move(labels);
  u.props = std::move(props);
  return u;
}

GraphUpdate GraphUpdate::DeleteNode(NodeId id) {
  GraphUpdate u;
  u.op = UpdateOp::kDeleteNode;
  u.id = id;
  return u;
}

GraphUpdate GraphUpdate::AddRelationship(RelId id, NodeId src, NodeId tgt,
                                         std::string type,
                                         PropertySet props) {
  GraphUpdate u;
  u.op = UpdateOp::kAddRelationship;
  u.id = id;
  u.src = src;
  u.tgt = tgt;
  u.type = std::move(type);
  u.props = std::move(props);
  return u;
}

GraphUpdate GraphUpdate::DeleteRelationship(RelId id) {
  GraphUpdate u;
  u.op = UpdateOp::kDeleteRelationship;
  u.id = id;
  return u;
}

GraphUpdate GraphUpdate::SetNodeProperty(NodeId id, std::string key,
                                         PropertyValue value) {
  GraphUpdate u;
  u.op = UpdateOp::kSetNodeProperty;
  u.id = id;
  u.key = std::move(key);
  u.value = std::move(value);
  return u;
}

GraphUpdate GraphUpdate::RemoveNodeProperty(NodeId id, std::string key) {
  GraphUpdate u;
  u.op = UpdateOp::kRemoveNodeProperty;
  u.id = id;
  u.key = std::move(key);
  return u;
}

GraphUpdate GraphUpdate::AddNodeLabel(NodeId id, std::string label) {
  GraphUpdate u;
  u.op = UpdateOp::kAddNodeLabel;
  u.id = id;
  u.label = std::move(label);
  return u;
}

GraphUpdate GraphUpdate::RemoveNodeLabel(NodeId id, std::string label) {
  GraphUpdate u;
  u.op = UpdateOp::kRemoveNodeLabel;
  u.id = id;
  u.label = std::move(label);
  return u;
}

GraphUpdate GraphUpdate::SetRelationshipProperty(RelId id, std::string key,
                                                 PropertyValue value) {
  GraphUpdate u;
  u.op = UpdateOp::kSetRelationshipProperty;
  u.id = id;
  u.key = std::move(key);
  u.value = std::move(value);
  return u;
}

GraphUpdate GraphUpdate::RemoveRelationshipProperty(RelId id,
                                                    std::string key) {
  GraphUpdate u;
  u.op = UpdateOp::kRemoveRelationshipProperty;
  u.id = id;
  u.key = std::move(key);
  return u;
}

std::string GraphUpdate::ToString() const {
  std::string out = "u(ts=" + std::to_string(ts) + ", ";
  switch (op) {
    case UpdateOp::kAddNode:
      out += "AddNode " + std::to_string(id);
      break;
    case UpdateOp::kDeleteNode:
      out += "DeleteNode " + std::to_string(id);
      break;
    case UpdateOp::kAddRelationship:
      out += "AddRel " + std::to_string(id) + ": " + std::to_string(src) +
             "-[" + type + "]->" + std::to_string(tgt);
      break;
    case UpdateOp::kDeleteRelationship:
      out += "DeleteRel " + std::to_string(id);
      break;
    case UpdateOp::kSetNodeProperty:
      out += "SetNodeProp " + std::to_string(id) + "." + key + "=" +
             value.ToString();
      break;
    case UpdateOp::kRemoveNodeProperty:
      out += "RemoveNodeProp " + std::to_string(id) + "." + key;
      break;
    case UpdateOp::kAddNodeLabel:
      out += "AddLabel " + std::to_string(id) + ":" + label;
      break;
    case UpdateOp::kRemoveNodeLabel:
      out += "RemoveLabel " + std::to_string(id) + ":" + label;
      break;
    case UpdateOp::kSetRelationshipProperty:
      out += "SetRelProp " + std::to_string(id) + "." + key + "=" +
             value.ToString();
      break;
    case UpdateOp::kRemoveRelationshipProperty:
      out += "RemoveRelProp " + std::to_string(id) + "." + key;
      break;
  }
  return out + ")";
}

void GraphUpdate::EncodeTo(std::string* dst) const {
  dst->push_back(static_cast<char>(op));
  PutVarint64(dst, ts);
  PutVarint64(dst, id);
  switch (op) {
    case UpdateOp::kAddNode:
      PutVarint64(dst, labels.size());
      for (const std::string& l : labels) PutLengthPrefixedSlice(dst, l);
      props.EncodeTo(dst);
      break;
    case UpdateOp::kDeleteNode:
    case UpdateOp::kDeleteRelationship:
      break;
    case UpdateOp::kAddRelationship:
      PutVarint64(dst, src);
      PutVarint64(dst, tgt);
      PutLengthPrefixedSlice(dst, type);
      props.EncodeTo(dst);
      break;
    case UpdateOp::kSetNodeProperty:
    case UpdateOp::kSetRelationshipProperty:
      PutLengthPrefixedSlice(dst, key);
      value.EncodeTo(dst);
      break;
    case UpdateOp::kRemoveNodeProperty:
    case UpdateOp::kRemoveRelationshipProperty:
      PutLengthPrefixedSlice(dst, key);
      break;
    case UpdateOp::kAddNodeLabel:
    case UpdateOp::kRemoveNodeLabel:
      PutLengthPrefixedSlice(dst, label);
      break;
  }
}

StatusOr<GraphUpdate> GraphUpdate::DecodeFrom(Slice* input) {
  if (input->empty()) return Status::Corruption("empty update");
  GraphUpdate u;
  u.op = static_cast<UpdateOp>((*input)[0]);
  if (static_cast<uint8_t>(u.op) >
      static_cast<uint8_t>(UpdateOp::kRemoveRelationshipProperty)) {
    return Status::Corruption("unknown update op");
  }
  input->RemovePrefix(1);
  if (!GetVarint64(input, &u.ts) || !GetVarint64(input, &u.id)) {
    return Status::Corruption("truncated update header");
  }
  Slice s;
  switch (u.op) {
    case UpdateOp::kAddNode: {
      uint64_t n;
      if (!GetVarint64(input, &n)) {
        return Status::Corruption("truncated label count");
      }
      u.labels.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        if (!GetLengthPrefixedSlice(input, &s)) {
          return Status::Corruption("truncated label");
        }
        u.labels.push_back(s.ToString());
      }
      AION_ASSIGN_OR_RETURN(u.props, PropertySet::DecodeFrom(input));
      break;
    }
    case UpdateOp::kDeleteNode:
    case UpdateOp::kDeleteRelationship:
      break;
    case UpdateOp::kAddRelationship: {
      if (!GetVarint64(input, &u.src) || !GetVarint64(input, &u.tgt)) {
        return Status::Corruption("truncated rel endpoints");
      }
      if (!GetLengthPrefixedSlice(input, &s)) {
        return Status::Corruption("truncated rel type");
      }
      u.type = s.ToString();
      AION_ASSIGN_OR_RETURN(u.props, PropertySet::DecodeFrom(input));
      break;
    }
    case UpdateOp::kSetNodeProperty:
    case UpdateOp::kSetRelationshipProperty: {
      if (!GetLengthPrefixedSlice(input, &s)) {
        return Status::Corruption("truncated property key");
      }
      u.key = s.ToString();
      AION_ASSIGN_OR_RETURN(u.value, PropertyValue::DecodeFrom(input));
      break;
    }
    case UpdateOp::kRemoveNodeProperty:
    case UpdateOp::kRemoveRelationshipProperty: {
      if (!GetLengthPrefixedSlice(input, &s)) {
        return Status::Corruption("truncated property key");
      }
      u.key = s.ToString();
      break;
    }
    case UpdateOp::kAddNodeLabel:
    case UpdateOp::kRemoveNodeLabel: {
      if (!GetLengthPrefixedSlice(input, &s)) {
        return Status::Corruption("truncated label");
      }
      u.label = s.ToString();
      break;
    }
  }
  return u;
}

void EncodeUpdateBatch(const std::vector<GraphUpdate>& updates,
                       std::string* dst) {
  PutVarint64(dst, updates.size());
  for (const GraphUpdate& u : updates) u.EncodeTo(dst);
}

StatusOr<std::vector<GraphUpdate>> DecodeUpdateBatch(Slice input) {
  uint64_t n;
  if (!GetVarint64(&input, &n)) {
    return Status::Corruption("truncated batch header");
  }
  std::vector<GraphUpdate> updates;
  updates.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    AION_ASSIGN_OR_RETURN(GraphUpdate u, GraphUpdate::DecodeFrom(&input));
    updates.push_back(std::move(u));
  }
  return updates;
}

}  // namespace aion::graph
