// Property values and property sets of the LPG model (Sec 3): "The
// properties' key is a string; the value can be a string, a primitive data
// type, or an array type."
#ifndef AION_GRAPH_PROPERTY_H_
#define AION_GRAPH_PROPERTY_H_

#include <cstdint>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "util/slice.h"
#include "util/status.h"

namespace aion::graph {

/// Tag identifying the dynamic type of a PropertyValue. Values fit in the
/// 3-bit type field of a property reference (Sec 4.2).
enum class PropertyType : uint8_t {
  kNull = 0,
  kBool = 1,
  kInt = 2,
  kDouble = 3,
  kString = 4,
  kIntArray = 5,
  kDoubleArray = 6,
  kStringArray = 7,
};

/// A single property value: null, primitive, string, or array.
class PropertyValue {
 public:
  using Variant =
      std::variant<std::monostate, bool, int64_t, double, std::string,
                   std::vector<int64_t>, std::vector<double>,
                   std::vector<std::string>>;

  PropertyValue() = default;
  PropertyValue(bool v) : value_(v) {}                        // NOLINT
  PropertyValue(int64_t v) : value_(v) {}                     // NOLINT
  PropertyValue(int v) : value_(static_cast<int64_t>(v)) {}   // NOLINT
  PropertyValue(double v) : value_(v) {}                      // NOLINT
  PropertyValue(std::string v) : value_(std::move(v)) {}      // NOLINT
  PropertyValue(const char* v) : value_(std::string(v)) {}    // NOLINT
  PropertyValue(std::vector<int64_t> v) : value_(std::move(v)) {}      // NOLINT
  PropertyValue(std::vector<double> v) : value_(std::move(v)) {}       // NOLINT
  PropertyValue(std::vector<std::string> v) : value_(std::move(v)) {}  // NOLINT

  PropertyType type() const {
    return static_cast<PropertyType>(value_.index());
  }
  bool is_null() const { return type() == PropertyType::kNull; }

  bool AsBool() const { return std::get<bool>(value_); }
  int64_t AsInt() const { return std::get<int64_t>(value_); }
  double AsDouble() const { return std::get<double>(value_); }
  const std::string& AsString() const { return std::get<std::string>(value_); }
  const std::vector<int64_t>& AsIntArray() const {
    return std::get<std::vector<int64_t>>(value_);
  }
  const std::vector<double>& AsDoubleArray() const {
    return std::get<std::vector<double>>(value_);
  }
  const std::vector<std::string>& AsStringArray() const {
    return std::get<std::vector<std::string>>(value_);
  }

  /// Numeric coercion for aggregates: ints and doubles convert; everything
  /// else yields 0.
  double ToNumber() const;

  bool operator==(const PropertyValue& other) const {
    return value_ == other.value_;
  }

  std::string ToString() const;

  /// Appends a self-delimiting encoding (tag byte + payload) to `dst`.
  void EncodeTo(std::string* dst) const;

  /// Parses a value from the front of `input`, advancing it.
  static util::StatusOr<PropertyValue> DecodeFrom(util::Slice* input);

 private:
  Variant value_;
};

/// A set of key-value properties, stored as a sorted flat vector (entity
/// property counts are small; flat storage beats node-based maps on both
/// memory and scan speed — Sec 5.3 "replaces maps with custom array
/// implementations").
class PropertySet {
 public:
  using Entry = std::pair<std::string, PropertyValue>;
  using const_iterator = std::vector<Entry>::const_iterator;

  /// Inserts or replaces `key`.
  void Set(const std::string& key, PropertyValue value);

  /// Returns the value for `key` or nullptr.
  const PropertyValue* Get(const std::string& key) const;

  /// Removes `key`; returns true if it was present.
  bool Remove(const std::string& key);

  bool Has(const std::string& key) const { return Get(key) != nullptr; }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  void Clear() { entries_.clear(); }

  const_iterator begin() const { return entries_.begin(); }
  const_iterator end() const { return entries_.end(); }

  bool operator==(const PropertySet& other) const {
    return entries_ == other.entries_;
  }

  void EncodeTo(std::string* dst) const;
  static util::StatusOr<PropertySet> DecodeFrom(util::Slice* input);

  /// Rough in-memory footprint for cache accounting.
  size_t EstimateBytes() const;

 private:
  std::vector<Entry> entries_;  // sorted by key
};

}  // namespace aion::graph

#endif  // AION_GRAPH_PROPERTY_H_
