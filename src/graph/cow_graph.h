// Copy-on-write graph overlay (Sec 5.2: "when copying large graphs from the
// GraphStore, Aion uses Copy-on-Write similar to Tegra to avoid unnecessary
// data duplication"). A CowGraph shares an immutable base snapshot and keeps
// modifications in small overlay maps; reads consult the overlay first and
// fall back to the base. Materialize() produces an independent MemoryGraph
// when a caller needs one.
#ifndef AION_GRAPH_COW_GRAPH_H_
#define AION_GRAPH_COW_GRAPH_H_

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "graph/graph_view.h"
#include "graph/memgraph.h"
#include "graph/update.h"
#include "util/status.h"

namespace aion::graph {

class CowGraph final : public GraphView {
 public:
  /// Wraps an immutable base snapshot. The base must have neighbourhoods
  /// built (GraphStore rebuilds them on retrieval).
  explicit CowGraph(std::shared_ptr<const MemoryGraph> base);

  /// Applies one update to the overlay (the base is never touched).
  util::Status Apply(const GraphUpdate& update);
  util::Status ApplyAll(const std::vector<GraphUpdate>& updates);

  // GraphView -----------------------------------------------------------
  const Node* GetNode(NodeId id) const override;
  const Relationship* GetRelationship(RelId id) const override;
  void ForEachNode(const std::function<void(const Node&)>& fn) const override;
  void ForEachRelationship(
      const std::function<void(const Relationship&)>& fn) const override;
  void ForEachRel(NodeId node, Direction direction,
                  const std::function<void(RelId)>& fn) const override;
  size_t NumNodes() const override { return num_nodes_; }
  size_t NumRelationships() const override { return num_rels_; }
  NodeId NodeCapacity() const override;
  RelId RelCapacity() const override;

  /// Copies base + overlay into a standalone MemoryGraph.
  std::unique_ptr<MemoryGraph> Materialize() const;

  /// Number of overlay entries (tests/diagnostics: verifies no full copy
  /// happened).
  size_t OverlaySize() const {
    return node_overlay_.size() + rel_overlay_.size();
  }

  const std::shared_ptr<const MemoryGraph>& base() const { return base_; }

 private:
  // Overlay adjacency for a touched node: base list is copied once on first
  // structural change around that node, then mutated in place.
  struct Adjacency {
    std::vector<RelId> out;
    std::vector<RelId> in;
  };

  /// Node/Relationship lookup helpers honouring overlay tombstones.
  const Node* BaseNode(NodeId id) const { return base_->GetNode(id); }
  const Relationship* BaseRel(RelId id) const {
    return base_->GetRelationship(id);
  }

  /// Returns a mutable copy of `id`'s node in the overlay (copying from the
  /// base on first touch), or nullptr if the node does not exist.
  Node* MutableNode(NodeId id);
  Relationship* MutableRel(RelId id);
  Adjacency* MutableAdjacency(NodeId id);

  bool NodeExists(NodeId id) const;
  bool RelExists(RelId id) const;

  std::shared_ptr<const MemoryGraph> base_;
  // nullopt value = tombstone (deleted in the overlay).
  std::unordered_map<NodeId, std::optional<Node>> node_overlay_;
  std::unordered_map<RelId, std::optional<Relationship>> rel_overlay_;
  std::unordered_map<NodeId, Adjacency> adj_overlay_;
  size_t num_nodes_;
  size_t num_rels_;
  NodeId node_capacity_;
  RelId rel_capacity_;
};

}  // namespace aion::graph

#endif  // AION_GRAPH_COW_GRAPH_H_
