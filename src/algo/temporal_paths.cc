#include "algo/temporal_paths.h"

#include <algorithm>
#include <limits>

#include "obs/workload_registry.h"

namespace aion::algo {

namespace {

/// Cooperative-cancel poll for the scan loops, amortized to one check per
/// 1024 iterations. The algorithms return plain values, so cancellation is
/// an early exit with a partial result — callers driven from a statement
/// (src/query/procedures.cc) re-check after the call and surface
/// util::Status::Cancelled instead of the partial value.
inline bool CancelledEvery1024(size_t i) {
  return (i & 1023u) == 0 && obs::CancellationRequested();
}

}  // namespace

using graph::kInfiniteTime;
using graph::NodeId;
using graph::TemporalGraph;
using graph::Timestamp;

std::vector<TemporalEdge> CollectTemporalEdges(const TemporalGraph& g) {
  std::vector<TemporalEdge> edges;
  for (graph::RelId id = 0; id < g.RelCapacity(); ++id) {
    if (CancelledEvery1024(id)) return edges;
    for (const graph::RelationshipVersion& v :
         g.RelationshipHistory(id, 0, kInfiniteTime)) {
      if (v.interval.end == kInfiniteTime) continue;  // never arrives
      edges.push_back({v.entity.src, v.entity.tgt, v.entity.id,
                       v.interval.start, v.interval.end});
    }
  }
  return edges;
}

std::vector<Timestamp> EarliestArrival(const TemporalGraph& g, NodeId source,
                                       Timestamp t_start, Timestamp t_end) {
  std::vector<Timestamp> ea(g.NodeCapacity(), kInfiniteTime);
  if (source >= ea.size()) return ea;
  ea[source] = t_start;
  std::vector<TemporalEdge> edges = CollectTemporalEdges(g);
  std::sort(edges.begin(), edges.end(),
            [](const TemporalEdge& a, const TemporalEdge& b) {
              return a.departure < b.departure;
            });
  // One pass in departure order (Wu et al. single-scan): an edge is usable
  // once its source is reachable by its departure time.
  for (size_t i = 0; i < edges.size(); ++i) {
    if (CancelledEvery1024(i)) break;
    const TemporalEdge& e = edges[i];
    if (e.departure < t_start || e.arrival > t_end) continue;
    if (ea[e.src] <= e.departure && e.arrival < ea[e.tgt]) {
      ea[e.tgt] = e.arrival;
    }
  }
  return ea;
}

std::vector<Timestamp> LatestDeparture(const TemporalGraph& g, NodeId target,
                                       Timestamp t_start, Timestamp t_end) {
  // ld[v] = latest departure from v that still reaches target by t_end;
  // 0 encodes "cannot reach" (the time domain is positive, Sec 3).
  std::vector<Timestamp> ld(g.NodeCapacity(), 0);
  if (target >= ld.size()) return ld;
  ld[target] = t_end;
  std::vector<TemporalEdge> edges = CollectTemporalEdges(g);
  std::sort(edges.begin(), edges.end(),
            [](const TemporalEdge& a, const TemporalEdge& b) {
              return a.arrival > b.arrival;
            });
  // One pass in reverse arrival order: an edge is usable if the journey can
  // continue from its target after arriving.
  for (size_t i = 0; i < edges.size(); ++i) {
    if (CancelledEvery1024(i)) break;
    const TemporalEdge& e = edges[i];
    if (e.departure < t_start || e.arrival > t_end) continue;
    if (e.arrival <= ld[e.tgt] && e.departure > ld[e.src]) {
      ld[e.src] = e.departure;
    }
  }
  return ld;
}

Timestamp FastestPathDuration(const TemporalGraph& g, NodeId source,
                              NodeId target, Timestamp t_start,
                              Timestamp t_end) {
  if (source >= g.NodeCapacity() || target >= g.NodeCapacity()) {
    return kInfiniteTime;
  }
  if (source == target) return 0;
  // Try each distinct departure time of an edge leaving the source; the
  // fastest journey starts exactly at one of them (Wu et al.).
  std::vector<TemporalEdge> edges = CollectTemporalEdges(g);
  std::vector<Timestamp> departures;
  for (const TemporalEdge& e : edges) {
    if (e.src == source && e.departure >= t_start && e.arrival <= t_end) {
      departures.push_back(e.departure);
    }
  }
  std::sort(departures.begin(), departures.end());
  departures.erase(std::unique(departures.begin(), departures.end()),
                   departures.end());
  Timestamp best = kInfiniteTime;
  for (Timestamp start : departures) {
    if (obs::CancellationRequested()) break;  // one check per restart
    const std::vector<Timestamp> ea = EarliestArrival(g, source, start, t_end);
    if (ea[target] != kInfiniteTime) {
      best = std::min(best, ea[target] - start);
    }
  }
  return best;
}

uint32_t ShortestTemporalPathHops(const TemporalGraph& g, NodeId source,
                                  NodeId target, Timestamp t_start,
                                  Timestamp t_end) {
  if (source >= g.NodeCapacity() || target >= g.NodeCapacity()) {
    return std::numeric_limits<uint32_t>::max();
  }
  if (source == target) return 0;
  // Hop-layered relaxation: arrive[v] = earliest arrival using <= h hops.
  std::vector<TemporalEdge> edges = CollectTemporalEdges(g);
  std::sort(edges.begin(), edges.end(),
            [](const TemporalEdge& a, const TemporalEdge& b) {
              return a.departure < b.departure;
            });
  std::vector<Timestamp> arrive(g.NodeCapacity(), kInfiniteTime);
  arrive[source] = t_start;
  const uint32_t max_hops =
      static_cast<uint32_t>(std::min<size_t>(g.NodeCapacity(), edges.size()));
  for (uint32_t hop = 1; hop <= max_hops; ++hop) {
    if (obs::CancellationRequested()) break;  // one check per hop layer
    bool changed = false;
    std::vector<Timestamp> next = arrive;
    for (const TemporalEdge& e : edges) {
      if (e.departure < t_start || e.arrival > t_end) continue;
      if (arrive[e.src] <= e.departure && e.arrival < next[e.tgt]) {
        next[e.tgt] = e.arrival;
        changed = true;
      }
    }
    arrive.swap(next);
    if (arrive[target] != kInfiniteTime) return hop;
    if (!changed) break;
  }
  return std::numeric_limits<uint32_t>::max();
}

}  // namespace aion::algo
