// Incremental graph computations (Sec 5.2): algorithms that reuse prior
// results across consecutive snapshots, fed by getDiff batches. Aion
// supports three categories:
//  (i)  non-holistic aggregations (running AVG over a property), using
//       stream-processing-style sum/count maintenance;
//  (ii) monotonic path-based algorithms (BFS) with the tag-and-reset
//       technique of Kickstarter: nodes whose value depended on a deleted
//       edge are tagged and reset before re-propagation;
//  (iii) non-monotonic algorithms that converge independently of
//       initialization (PageRank), warm-started from the previous result
//       and iterated on the changed graph.
//
// All classes consume the *diff* (the updates between two snapshots) plus
// access to the post-diff graph, and are verified against full recomputation
// in the test suite.
#ifndef AION_ALGO_INCREMENTAL_H_
#define AION_ALGO_INCREMENTAL_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "algo/static_algos.h"
#include "graph/graph_view.h"
#include "graph/update.h"

namespace aion::algo {

/// Category (i): running average of one relationship property. O(|diff|)
/// per batch; deletions are handled by remembering each relationship's
/// contribution (no dependency tracking required, Sec 6.6).
class IncrementalAverage {
 public:
  explicit IncrementalAverage(std::string property_key)
      : key_(std::move(property_key)) {}

  /// Folds one diff batch into the aggregate.
  void ApplyDiff(const std::vector<graph::GraphUpdate>& diff);

  double Average() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  double sum() const { return sum_; }
  uint64_t count() const { return count_; }

 private:
  void Contribute(graph::RelId id, const graph::PropertyValue* value);
  void Retract(graph::RelId id);

  std::string key_;
  double sum_ = 0;
  uint64_t count_ = 0;
  std::unordered_map<graph::RelId, double> contributions_;
};

/// Category (ii): incremental BFS levels from a fixed source over the
/// *sparse* node id domain, maintained across diffs with tag-and-reset.
class IncrementalBfs {
 public:
  /// `source` is a sparse node id. The graph passed to each call must
  /// reflect the state *after* the corresponding diff.
  explicit IncrementalBfs(graph::NodeId source) : source_(source) {}

  /// (Re)computes from scratch on `g` (initialization or fallback).
  void Recompute(const graph::GraphView& g);

  /// Applies one diff batch; `g` is the post-diff graph.
  void ApplyDiff(const graph::GraphView& g,
                 const std::vector<graph::GraphUpdate>& diff);

  /// Level of sparse node `id`, or kUnreachable.
  uint32_t LevelOf(graph::NodeId id) const {
    return id < levels_.size() ? levels_[id] : kUnreachable;
  }
  const std::vector<uint32_t>& levels() const { return levels_; }
  graph::NodeId source() const { return source_; }

 private:
  void EnsureSize(size_t n);
  void PropagateFrom(const graph::GraphView& g,
                     std::vector<graph::NodeId> frontier);

  graph::NodeId source_;
  std::vector<uint32_t> levels_;  // indexed by sparse node id
};

/// Category (iii): incremental PageRank via residual change propagation
/// ("propagate changes based on dependencies between iterations", Vora et
/// al. [77]). Ranks p and residuals r are maintained across diffs over the
/// sparse node id domain. ApplyDiff adjusts residuals only for the changed
/// adjacency columns (O(diff * degree)) and then pushes residual mass where
/// it exceeds the tolerance — work proportional to the affected region.
/// Structural changes the column adjustment cannot express (node additions/
/// removals change the teleport term for everyone) fall back to one full
/// residual pass before pushing.
class IncrementalPageRank {
 public:
  explicit IncrementalPageRank(PageRankOptions options = {})
      : options_(options) {}

  /// Full recomputation (cold start / fallback): power iteration over the
  /// view; seeds p and r.
  void Recompute(const graph::GraphView& g);

  /// Folds one diff batch; `g` is the post-diff graph. Returns the number
  /// of push sweeps executed.
  uint32_t ApplyDiff(const graph::GraphView& g,
                     const std::vector<graph::GraphUpdate>& diff);

  /// Convenience: Recompute on first use, full-residual refresh + push on
  /// subsequent calls (when the caller has no diff at hand).
  uint32_t Update(const graph::GraphView& g);

  /// Rank of sparse node `id` (0 when unknown/dead).
  double RankOf(graph::NodeId id) const {
    return id < p_.size() ? p_[id] : 0.0;
  }
  /// Live ranks as (sparse id, rank) pairs.
  std::vector<std::pair<graph::NodeId, double>> Ranks(
      const graph::GraphView& g) const;

  uint32_t last_iterations() const { return last_iterations_; }

  /// Residual pushes performed by the last incremental call (0 for cold
  /// starts); the measure of dependency-propagation work.
  uint64_t last_pushes() const { return last_pushes_; }

 private:
  /// Recomputes r = b + d*M(p) - p with one full pass over `g`.
  void FullResidualPass(const graph::GraphView& g);
  /// Pushes residual mass until the L1 residual is below epsilon.
  uint32_t PushUntilConverged(const graph::GraphView& g,
                              std::vector<graph::NodeId> seed_active);
  void EnsureSize(size_t n);

  PageRankOptions options_;
  bool initialized_ = false;
  size_t live_nodes_ = 0;
  std::vector<double> p_;  // indexed by sparse node id
  std::vector<double> r_;
  uint32_t last_iterations_ = 0;
  uint64_t last_pushes_ = 0;
};

}  // namespace aion::algo

#endif  // AION_ALGO_INCREMENTAL_H_
