// Temporal path algorithms (Sec 4.1, Fig 2): single-scan algorithms over
// the temporal graph representation, following Wu et al. [79] — "describing
// temporal paths as a topological-optimum problem using a single scan
// approach instead of performing expensive joins across snapshots".
//
// A relationship version with validity [dep, arr) is interpreted as a
// connection departing its source at `dep` and arriving at its target at
// `arr` (the aviation reading of Fig 2).
#ifndef AION_ALGO_TEMPORAL_PATHS_H_
#define AION_ALGO_TEMPORAL_PATHS_H_

#include <vector>

#include "graph/temporal_graph.h"

namespace aion::algo {

/// One time-respecting connection extracted from the temporal graph.
struct TemporalEdge {
  graph::NodeId src = graph::kInvalidNodeId;
  graph::NodeId tgt = graph::kInvalidNodeId;
  graph::RelId rel = graph::kInvalidRelId;
  graph::Timestamp departure = 0;
  graph::Timestamp arrival = 0;

  bool operator==(const TemporalEdge&) const = default;
};

/// All finite-interval relationship versions as temporal edges (versions
/// still open at infinity are skipped: they never "arrive").
std::vector<TemporalEdge> CollectTemporalEdges(const graph::TemporalGraph& g);

/// Earliest-arrival times from `source` within the window [t_start, t_end]:
/// result[v] is the earliest time one can arrive at v having departed the
/// source no earlier than t_start. kInfiniteTime = unreachable. Single
/// forward scan over edges sorted by departure time.
std::vector<graph::Timestamp> EarliestArrival(const graph::TemporalGraph& g,
                                              graph::NodeId source,
                                              graph::Timestamp t_start,
                                              graph::Timestamp t_end);

/// Latest-departure times towards `target`: result[v] is the latest time
/// one can leave v and still reach `target` by t_end. 0 = cannot reach.
/// Single backward scan over edges sorted by arrival time (descending).
std::vector<graph::Timestamp> LatestDeparture(const graph::TemporalGraph& g,
                                              graph::NodeId target,
                                              graph::Timestamp t_start,
                                              graph::Timestamp t_end);

/// Minimum journey duration (arrival - departure) from source to `target`
/// within the window, or kInfiniteTime when unreachable.
graph::Timestamp FastestPathDuration(const graph::TemporalGraph& g,
                                     graph::NodeId source,
                                     graph::NodeId target,
                                     graph::Timestamp t_start,
                                     graph::Timestamp t_end);

/// Minimum number of hops of any time-respecting journey source -> target
/// within the window, or UINT32_MAX when unreachable.
uint32_t ShortestTemporalPathHops(const graph::TemporalGraph& g,
                                  graph::NodeId source, graph::NodeId target,
                                  graph::Timestamp t_start,
                                  graph::Timestamp t_end);

}  // namespace aion::algo

#endif  // AION_ALGO_TEMPORAL_PATHS_H_
