#include "algo/incremental.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <set>

namespace aion::algo {

using graph::GraphUpdate;
using graph::GraphView;
using graph::NodeId;
using graph::RelId;
using graph::UpdateOp;

// ---------------------------------------------------------------------------
// IncrementalAverage
// ---------------------------------------------------------------------------

void IncrementalAverage::Contribute(RelId id,
                                    const graph::PropertyValue* value) {
  Retract(id);
  if (value == nullptr || value->is_null()) return;
  const double v = value->ToNumber();
  contributions_[id] = v;
  sum_ += v;
  ++count_;
}

void IncrementalAverage::Retract(RelId id) {
  auto it = contributions_.find(id);
  if (it == contributions_.end()) return;
  sum_ -= it->second;
  --count_;
  contributions_.erase(it);
}

void IncrementalAverage::ApplyDiff(const std::vector<GraphUpdate>& diff) {
  for (const GraphUpdate& u : diff) {
    switch (u.op) {
      case UpdateOp::kAddRelationship:
        Contribute(u.id, u.props.Get(key_));
        break;
      case UpdateOp::kDeleteRelationship:
        Retract(u.id);
        break;
      case UpdateOp::kSetRelationshipProperty:
        if (u.key == key_) Contribute(u.id, &u.value);
        break;
      case UpdateOp::kRemoveRelationshipProperty:
        if (u.key == key_) Retract(u.id);
        break;
      default:
        break;
    }
  }
}

// ---------------------------------------------------------------------------
// IncrementalBfs (tag and reset)
// ---------------------------------------------------------------------------

void IncrementalBfs::EnsureSize(size_t n) {
  if (levels_.size() < n) levels_.resize(n, kUnreachable);
}

void IncrementalBfs::Recompute(const GraphView& g) {
  levels_.assign(g.NodeCapacity(), kUnreachable);
  if (g.GetNode(source_) == nullptr) return;
  EnsureSize(source_ + 1);
  levels_[source_] = 0;
  PropagateFrom(g, {source_});
}

void IncrementalBfs::PropagateFrom(const GraphView& g,
                                   std::vector<NodeId> frontier) {
  std::deque<NodeId> queue(frontier.begin(), frontier.end());
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    const uint32_t next_level = levels_[u] == kUnreachable
                                    ? kUnreachable
                                    : levels_[u] + 1;
    if (next_level == kUnreachable) continue;
    g.ForEachRel(u, graph::Direction::kOutgoing, [&](RelId rel_id) {
      const graph::Relationship* rel = g.GetRelationship(rel_id);
      if (rel == nullptr) return;
      const NodeId v = rel->tgt;
      EnsureSize(v + 1);
      if (next_level < levels_[v]) {
        levels_[v] = next_level;
        queue.push_back(v);
      }
    });
  }
}

void IncrementalBfs::ApplyDiff(const GraphView& g,
                               const std::vector<GraphUpdate>& diff) {
  EnsureSize(g.NodeCapacity());

  // Classify the structural changes.
  std::vector<std::pair<NodeId, NodeId>> inserted;  // (src, tgt)
  bool has_deletions = false;
  std::set<NodeId> deletion_targets;
  for (const GraphUpdate& u : diff) {
    switch (u.op) {
      case UpdateOp::kAddRelationship:
        inserted.emplace_back(u.src, u.tgt);
        break;
      case UpdateOp::kDeleteRelationship:
        has_deletions = true;
        if (u.tgt != graph::kInvalidNodeId) deletion_targets.insert(u.tgt);
        break;
      case UpdateOp::kDeleteNode:
        has_deletions = true;
        if (u.id < levels_.size()) deletion_targets.insert(u.id);
        break;
      default:
        break;
    }
  }

  if (has_deletions) {
    // Tag and reset (Kickstarter-style): a deleted edge may have carried a
    // node's shortest path. Tag every node whose level could transitively
    // depend on a deletion target, reset the tagged region, then re-settle
    // it from its untagged boundary.
    std::set<NodeId> tagged;
    std::deque<NodeId> work;
    for (NodeId t : deletion_targets) {
      if (t == source_) continue;
      if (t < levels_.size() && levels_[t] != kUnreachable) {
        tagged.insert(t);
        work.push_back(t);
      }
    }
    // Tag cascade: children whose level equals parent level + 1 may depend
    // on the tagged parent.
    while (!work.empty()) {
      const NodeId u = work.front();
      work.pop_front();
      const uint32_t ul = levels_[u];
      g.ForEachRel(u, graph::Direction::kOutgoing, [&](RelId rel_id) {
        const graph::Relationship* rel = g.GetRelationship(rel_id);
        if (rel == nullptr) return;
        const NodeId v = rel->tgt;
        if (v == source_ || v >= levels_.size()) return;
        if (levels_[v] == ul + 1 && tagged.insert(v).second) {
          work.push_back(v);
        }
      });
    }
    // Reset tagged values, then recompute them from untagged in-neighbours.
    for (NodeId t : tagged) levels_[t] = kUnreachable;
    std::vector<NodeId> frontier;
    for (NodeId t : tagged) {
      uint32_t best = kUnreachable;
      g.ForEachRel(t, graph::Direction::kIncoming, [&](RelId rel_id) {
        const graph::Relationship* rel = g.GetRelationship(rel_id);
        if (rel == nullptr) return;
        const NodeId p = rel->src;
        if (p < levels_.size() && levels_[p] != kUnreachable) {
          best = std::min(best, levels_[p] + 1);
        }
      });
      if (best != kUnreachable) {
        levels_[t] = best;
        frontier.push_back(t);
      }
    }
    PropagateFrom(g, std::move(frontier));
  }

  // Edge insertions only relax levels monotonically.
  std::vector<NodeId> frontier;
  for (const auto& [src, tgt] : inserted) {
    if (src >= levels_.size() || levels_[src] == kUnreachable) continue;
    EnsureSize(tgt + 1);
    if (levels_[src] + 1 < levels_[tgt]) {
      levels_[tgt] = levels_[src] + 1;
      frontier.push_back(tgt);
    }
  }
  if (!frontier.empty()) PropagateFrom(g, std::move(frontier));
}

// ---------------------------------------------------------------------------
// IncrementalPageRank (residual change propagation)
// ---------------------------------------------------------------------------

void IncrementalPageRank::EnsureSize(size_t n) {
  if (p_.size() < n) {
    p_.resize(n, 0.0);
    r_.resize(n, 0.0);
  }
}

void IncrementalPageRank::Recompute(const GraphView& g) {
  const size_t capacity = g.NodeCapacity();
  p_.assign(capacity, 0.0);
  r_.assign(capacity, 0.0);
  live_nodes_ = g.NumNodes();
  initialized_ = true;
  last_pushes_ = 0;
  if (live_nodes_ == 0) {
    last_iterations_ = 0;
    return;
  }
  // Power iteration directly over the sparse id domain.
  const double damping = options_.damping;
  const double base = (1.0 - damping) / static_cast<double>(live_nodes_);
  std::vector<NodeId> live;
  live.reserve(live_nodes_);
  g.ForEachNode([&](const graph::Node& node) { live.push_back(node.id); });
  for (NodeId id : live) p_[id] = 1.0 / static_cast<double>(live_nodes_);
  std::vector<double> next(capacity, 0.0);
  uint32_t iterations = 0;
  for (uint32_t iter = 0; iter < options_.max_iterations; ++iter) {
    double dangling = 0;
    for (NodeId u : live) {
      if (g.Degree(u, graph::Direction::kOutgoing) == 0) dangling += p_[u];
    }
    const double dangling_share =
        damping * dangling / static_cast<double>(live_nodes_);
    for (NodeId u : live) next[u] = base + dangling_share;
    for (NodeId u : live) {
      const size_t degree = g.Degree(u, graph::Direction::kOutgoing);
      if (degree == 0) continue;
      const double share = damping * p_[u] / static_cast<double>(degree);
      g.ForEachRel(u, graph::Direction::kOutgoing, [&](RelId rel_id) {
        const graph::Relationship* rel = g.GetRelationship(rel_id);
        if (rel != nullptr) next[rel->tgt] += share;
      });
    }
    double delta = 0;
    for (NodeId u : live) delta += std::fabs(next[u] - p_[u]);
    for (NodeId u : live) p_[u] = next[u];
    iterations = iter + 1;
    if (delta < options_.epsilon) break;
  }
  last_iterations_ = iterations;
  // Residuals start (approximately) settled: r = 0 within epsilon.
  std::fill(r_.begin(), r_.end(), 0.0);
}

void IncrementalPageRank::FullResidualPass(const GraphView& g) {
  const size_t capacity = g.NodeCapacity();
  EnsureSize(capacity);
  live_nodes_ = g.NumNodes();
  if (live_nodes_ == 0) return;
  const double damping = options_.damping;
  const double base = (1.0 - damping) / static_cast<double>(live_nodes_);
  std::vector<double> contrib(capacity, 0.0);
  double dangling = 0;
  g.ForEachNode([&](const graph::Node& node) {
    const NodeId u = node.id;
    const size_t degree = g.Degree(u, graph::Direction::kOutgoing);
    if (degree == 0) {
      dangling += p_[u];
      return;
    }
    const double share = damping * p_[u] / static_cast<double>(degree);
    g.ForEachRel(u, graph::Direction::kOutgoing, [&](RelId rel_id) {
      const graph::Relationship* rel = g.GetRelationship(rel_id);
      if (rel != nullptr) contrib[rel->tgt] += share;
    });
  });
  const double dangling_share =
      damping * dangling / static_cast<double>(live_nodes_);
  g.ForEachNode([&](const graph::Node& node) {
    const NodeId u = node.id;
    r_[u] = base + dangling_share + contrib[u] - p_[u];
  });
}

uint32_t IncrementalPageRank::PushUntilConverged(
    const GraphView& g, std::vector<NodeId> seed_active) {
  const double damping = options_.damping;
  const size_t n = live_nodes_;
  if (n == 0) return 0;
  // Deduplicate the seed and compute the starting residual mass over it;
  // residual outside the active set is below tolerance by construction.
  std::sort(seed_active.begin(), seed_active.end());
  seed_active.erase(std::unique(seed_active.begin(), seed_active.end()),
                    seed_active.end());
  std::vector<NodeId> active = std::move(seed_active);
  double total_residual = 0;
  for (NodeId u : active) total_residual += std::fabs(r_[u]);
  double global_dangling_residual = 0;
  uint64_t pushes = 0;
  uint32_t sweeps = 0;
  std::vector<bool> in_next(p_.size(), false);
  while (total_residual > options_.epsilon &&
         sweeps < options_.max_iterations) {
    ++sweeps;
    const double threshold =
        total_residual / (2.0 * static_cast<double>(n));
    std::vector<NodeId> next_active;
    next_active.reserve(active.size());
    for (NodeId u : active) in_next[u] = false;
    for (NodeId u : active) {
      const double ru = r_[u];
      if (std::fabs(ru) <= threshold) {
        if (ru != 0.0 && !in_next[u]) {
          next_active.push_back(u);
          in_next[u] = true;
        }
        continue;
      }
      ++pushes;
      p_[u] += ru;
      r_[u] = 0;
      const size_t degree = g.Degree(u, graph::Direction::kOutgoing);
      if (degree == 0) {
        global_dangling_residual += ru;
        continue;
      }
      const double share = damping * ru / static_cast<double>(degree);
      g.ForEachRel(u, graph::Direction::kOutgoing, [&](RelId rel_id) {
        const graph::Relationship* rel = g.GetRelationship(rel_id);
        if (rel == nullptr) return;
        const NodeId v = rel->tgt;
        r_[v] += share;
        if (!in_next[v]) {
          next_active.push_back(v);
          in_next[v] = true;
        }
      });
    }
    if (std::fabs(global_dangling_residual) * damping >
        options_.epsilon / 4) {
      // Flush accumulated dangling mass uniformly across live nodes.
      const double add =
          damping * global_dangling_residual / static_cast<double>(n);
      global_dangling_residual = 0;
      next_active.clear();
      g.ForEachNode([&](const graph::Node& node) {
        r_[node.id] += add;
        if (r_[node.id] != 0.0) next_active.push_back(node.id);
      });
    }
    active = std::move(next_active);
    total_residual = std::fabs(global_dangling_residual);
    for (NodeId u : active) total_residual += std::fabs(r_[u]);
  }
  last_pushes_ = pushes;
  return sweeps;
}

uint32_t IncrementalPageRank::ApplyDiff(
    const GraphView& g, const std::vector<GraphUpdate>& diff) {
  if (!initialized_) {
    Recompute(g);
    return last_iterations_;
  }
  last_pushes_ = 0;
  if (diff.empty()) {
    last_iterations_ = 0;
    return 0;
  }

  // Classify the diff. Node-count changes alter the teleport term for
  // every node; fall back to a full residual pass in that case.
  bool node_count_changed = false;
  // Per changed source: counts of added/removed out-edges, and the removed
  // targets (the post-diff adjacency no longer contains them).
  struct ColumnChange {
    int added = 0;
    std::vector<NodeId> removed_targets;
    std::vector<NodeId> added_targets;
  };
  std::map<NodeId, ColumnChange> changed;
  for (const GraphUpdate& u : diff) {
    switch (u.op) {
      case UpdateOp::kAddNode:
      case UpdateOp::kDeleteNode:
        node_count_changed = true;
        break;
      case UpdateOp::kAddRelationship:
        changed[u.src].added_targets.push_back(u.tgt);
        break;
      case UpdateOp::kDeleteRelationship:
        if (u.src == graph::kInvalidNodeId) {
          node_count_changed = true;  // unresolved endpoints: fall back
        } else {
          changed[u.src].removed_targets.push_back(u.tgt);
        }
        break;
      default:
        break;
    }
  }

  EnsureSize(g.NodeCapacity());
  std::vector<NodeId> touched;
  if (node_count_changed || g.NumNodes() != live_nodes_) {
    FullResidualPass(g);
    g.ForEachNode([&](const graph::Node& node) {
      if (r_[node.id] != 0.0) touched.push_back(node.id);
    });
  } else {
    // Column adjustment: for each changed source u, the distribution of
    // p(u) over its out-neighbours changed from deg_old to deg_new shares.
    const double damping = options_.damping;
    const double n = static_cast<double>(live_nodes_);
    for (auto& [u, change] : changed) {
      // An edge added and deleted within the same batch contributes to
      // neither the old nor the new column: cancel matched pairs first.
      std::sort(change.added_targets.begin(), change.added_targets.end());
      std::sort(change.removed_targets.begin(),
                change.removed_targets.end());
      {
        std::vector<NodeId> added_left, removed_left;
        auto a = change.added_targets.begin();
        auto r = change.removed_targets.begin();
        while (a != change.added_targets.end() &&
               r != change.removed_targets.end()) {
          if (*a < *r) {
            added_left.push_back(*a++);
          } else if (*r < *a) {
            removed_left.push_back(*r++);
          } else {
            ++a;  // cancel the pair
            ++r;
          }
        }
        added_left.insert(added_left.end(), a, change.added_targets.end());
        removed_left.insert(removed_left.end(), r,
                            change.removed_targets.end());
        change.added_targets = std::move(added_left);
        change.removed_targets = std::move(removed_left);
      }
      const size_t deg_new = g.Degree(u, graph::Direction::kOutgoing);
      const size_t deg_old = deg_new + change.removed_targets.size() -
                             change.added_targets.size();
      const double pu = p_[u];
      const double share_new =
          deg_new == 0 ? 0.0 : damping * pu / static_cast<double>(deg_new);
      const double share_old =
          deg_old == 0 ? 0.0 : damping * pu / static_cast<double>(deg_old);
      // Dangling transitions redistribute uniformly: apply the O(n) fix.
      if (deg_old == 0 || deg_new == 0) {
        const double uniform_old = deg_old == 0 ? damping * pu / n : 0.0;
        const double uniform_new = deg_new == 0 ? damping * pu / n : 0.0;
        const double delta = uniform_new - uniform_old;
        if (delta != 0.0) {
          g.ForEachNode([&](const graph::Node& node) {
            r_[node.id] += delta;
            touched.push_back(node.id);
          });
        }
      }
      // Current (post-diff) neighbours: added ones gain the new share; the
      // rest shift from old share to new share.
      std::sort(change.added_targets.begin(), change.added_targets.end());
      std::map<NodeId, int> added_remaining;
      for (NodeId t : change.added_targets) ++added_remaining[t];
      g.ForEachRel(u, graph::Direction::kOutgoing, [&](RelId rel_id) {
        const graph::Relationship* rel = g.GetRelationship(rel_id);
        if (rel == nullptr) return;
        const NodeId v = rel->tgt;
        auto it = added_remaining.find(v);
        if (it != added_remaining.end() && it->second > 0) {
          --it->second;
          r_[v] += share_new;
        } else {
          r_[v] += share_new - share_old;
        }
        touched.push_back(v);
      });
      // Removed neighbours lose the old share.
      for (NodeId v : change.removed_targets) {
        r_[v] -= share_old;
        touched.push_back(v);
      }
    }
  }

  last_iterations_ = PushUntilConverged(g, std::move(touched));
  return last_iterations_;
}

uint32_t IncrementalPageRank::Update(const GraphView& g) {
  if (!initialized_) {
    Recompute(g);
    return last_iterations_;
  }
  EnsureSize(g.NodeCapacity());
  FullResidualPass(g);
  std::vector<NodeId> touched;
  g.ForEachNode([&](const graph::Node& node) {
    if (r_[node.id] != 0.0) touched.push_back(node.id);
  });
  last_iterations_ = 1 + PushUntilConverged(g, std::move(touched));
  return last_iterations_;
}

std::vector<std::pair<NodeId, double>> IncrementalPageRank::Ranks(
    const GraphView& g) const {
  std::vector<std::pair<NodeId, double>> out;
  out.reserve(live_nodes_);
  g.ForEachNode([&](const graph::Node& node) {
    out.emplace_back(node.id,
                     node.id < p_.size() ? p_[node.id] : 0.0);
  });
  return out;
}

}  // namespace aion::algo
