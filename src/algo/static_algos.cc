#include "algo/static_algos.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <functional>
#include <queue>

namespace aion::algo {

using graph::CsrGraph;

std::vector<uint32_t> Bfs(const CsrGraph& g, uint32_t source) {
  std::vector<uint32_t> level(g.num_nodes(), kUnreachable);
  if (source >= g.num_nodes()) return level;
  std::deque<uint32_t> queue;
  level[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const uint32_t u = queue.front();
    queue.pop_front();
    size_t count;
    const uint32_t* nbrs = g.Neighbors(u, &count);
    for (size_t i = 0; i < count; ++i) {
      const uint32_t v = nbrs[i];
      if (level[v] == kUnreachable) {
        level[v] = level[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return level;
}

std::vector<double> Sssp(const CsrGraph& g, uint32_t source) {
  std::vector<double> dist(g.num_nodes(), kInfDistance);
  if (source >= g.num_nodes()) return dist;
  using Item = std::pair<double, uint32_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> heap;
  dist[source] = 0;
  heap.push({0, source});
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) continue;
    size_t count;
    const uint32_t* nbrs = g.Neighbors(u, &count);
    for (size_t i = 0; i < count; ++i) {
      const uint32_t v = nbrs[i];
      const double nd = d + g.Weight(u, i);
      if (nd < dist[v]) {
        dist[v] = nd;
        heap.push({nd, v});
      }
    }
  }
  return dist;
}

PageRankResult PageRank(const CsrGraph& g, const PageRankOptions& options,
                        const std::vector<double>& initial) {
  const size_t n = g.num_nodes();
  PageRankResult result;
  if (n == 0) return result;
  const double base = (1.0 - options.damping) / static_cast<double>(n);
  std::vector<double> ranks =
      initial.size() == n
          ? initial
          : std::vector<double>(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);
  for (uint32_t iter = 0; iter < options.max_iterations; ++iter) {
    double dangling = 0;
    for (size_t u = 0; u < n; ++u) {
      if (g.OutDegree(static_cast<uint32_t>(u)) == 0) dangling += ranks[u];
    }
    const double dangling_share =
        options.damping * dangling / static_cast<double>(n);
    std::fill(next.begin(), next.end(), base + dangling_share);
    for (size_t u = 0; u < n; ++u) {
      const size_t degree = g.OutDegree(static_cast<uint32_t>(u));
      if (degree == 0) continue;
      const double share =
          options.damping * ranks[u] / static_cast<double>(degree);
      size_t count;
      const uint32_t* nbrs = g.Neighbors(static_cast<uint32_t>(u), &count);
      for (size_t i = 0; i < count; ++i) next[nbrs[i]] += share;
    }
    double delta = 0;
    for (size_t u = 0; u < n; ++u) delta += std::fabs(next[u] - ranks[u]);
    ranks.swap(next);
    result.iterations = iter + 1;
    if (delta < options.epsilon) break;
  }
  result.ranks = std::move(ranks);
  return result;
}

std::vector<uint32_t> ConnectedComponents(const CsrGraph& g) {
  const size_t n = g.num_nodes();
  std::vector<uint32_t> parent(n);
  for (size_t i = 0; i < n; ++i) parent[i] = static_cast<uint32_t>(i);
  std::function<uint32_t(uint32_t)> find = [&](uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  auto unite = [&](uint32_t a, uint32_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (a > b) std::swap(a, b);
    parent[b] = a;  // smaller id wins: stable representative
  };
  for (uint32_t u = 0; u < n; ++u) {
    size_t count;
    const uint32_t* nbrs = g.Neighbors(u, &count);
    for (size_t i = 0; i < count; ++i) unite(u, nbrs[i]);
  }
  std::vector<uint32_t> component(n);
  for (uint32_t u = 0; u < n; ++u) component[u] = find(u);
  return component;
}

namespace {

/// Sorted, deduplicated undirected neighbour lists (self-loops dropped).
std::vector<std::vector<uint32_t>> UndirectedAdjacency(const CsrGraph& g) {
  const size_t n = g.num_nodes();
  std::vector<std::vector<uint32_t>> adj(n);
  for (uint32_t u = 0; u < n; ++u) {
    size_t count;
    const uint32_t* out = g.Neighbors(u, &count);
    for (size_t i = 0; i < count; ++i) {
      if (out[i] != u) {
        adj[u].push_back(out[i]);
        adj[out[i]].push_back(u);
      }
    }
  }
  for (auto& list : adj) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  return adj;
}

size_t IntersectionSize(const std::vector<uint32_t>& a,
                        const std::vector<uint32_t>& b) {
  size_t i = 0, j = 0, matches = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++matches;
      ++i;
      ++j;
    }
  }
  return matches;
}

}  // namespace

uint64_t CountTriangles(const CsrGraph& g) {
  const auto adj = UndirectedAdjacency(g);
  uint64_t total = 0;
  for (uint32_t u = 0; u < adj.size(); ++u) {
    for (uint32_t v : adj[u]) {
      if (v <= u) continue;
      total += IntersectionSize(adj[u], adj[v]);
    }
  }
  // Each triangle is counted once per edge pair (u<v) sharing the third
  // vertex w: edges (u,v),(u,w),(v,w) -> counted at (u,v), (u,w), (v,w)
  // via common neighbours -> 3 times total.
  return total / 3;
}

std::vector<double> LocalClusteringCoefficient(const CsrGraph& g) {
  const auto adj = UndirectedAdjacency(g);
  std::vector<double> lcc(adj.size(), 0.0);
  for (uint32_t u = 0; u < adj.size(); ++u) {
    const size_t degree = adj[u].size();
    if (degree < 2) continue;
    uint64_t links = 0;
    for (uint32_t v : adj[u]) {
      links += IntersectionSize(adj[u], adj[v]);
    }
    // Every closed pair is counted twice (once per endpoint order).
    lcc[u] = static_cast<double>(links) /
             static_cast<double>(degree * (degree - 1));
  }
  return lcc;
}

AggregateResult AggregateRelationshipProperty(const graph::GraphView& g,
                                              const std::string& key) {
  AggregateResult result;
  g.ForEachRelationship([&](const graph::Relationship& rel) {
    const graph::PropertyValue* value = rel.props.Get(key);
    if (value != nullptr && !value->is_null()) {
      result.sum += value->ToNumber();
      ++result.count;
    }
  });
  return result;
}

}  // namespace aion::algo
