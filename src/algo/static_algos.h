// Static graph algorithms over CSR projections (the GDS-library substitute,
// Sec 2.1/5.1): BFS, SSSP, PageRank, weakly connected components, triangle
// counting, local clustering coefficient, and property aggregation. These
// are the non-incremental baselines the evaluation compares incremental
// execution against (Sec 6.6: AVG, BFS, PR).
#ifndef AION_ALGO_STATIC_ALGOS_H_
#define AION_ALGO_STATIC_ALGOS_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "graph/csr.h"
#include "graph/graph_view.h"

namespace aion::algo {

inline constexpr uint32_t kUnreachable = std::numeric_limits<uint32_t>::max();
inline constexpr double kInfDistance = std::numeric_limits<double>::infinity();

/// BFS levels from `source` (dense id) following outgoing edges;
/// kUnreachable where not reached.
std::vector<uint32_t> Bfs(const graph::CsrGraph& g, uint32_t source);

/// Single-source shortest paths (Dijkstra) using edge weights;
/// +inf where unreachable. Negative weights are not supported.
std::vector<double> Sssp(const graph::CsrGraph& g, uint32_t source);

struct PageRankOptions {
  double damping = 0.85;
  uint32_t max_iterations = 100;
  /// L1-convergence threshold (Sec 6.6 uses epsilon = 0.01).
  double epsilon = 0.01;
};

struct PageRankResult {
  std::vector<double> ranks;
  uint32_t iterations = 0;
};

/// Power-iteration PageRank with dangling-mass redistribution. When
/// `initial` is non-empty it seeds the iteration (warm start — the basis of
/// incremental execution for non-monotonic algorithms).
PageRankResult PageRank(const graph::CsrGraph& g,
                        const PageRankOptions& options = {},
                        const std::vector<double>& initial = {});

/// Weakly connected components: component id per dense node (smallest
/// member id as representative).
std::vector<uint32_t> ConnectedComponents(const graph::CsrGraph& g);

/// Global triangle count (edges treated as undirected, deduplicated).
uint64_t CountTriangles(const graph::CsrGraph& g);

/// Local clustering coefficient per node (undirected neighbourhoods).
std::vector<double> LocalClusteringCoefficient(const graph::CsrGraph& g);

/// Streaming-style aggregate over one relationship property.
struct AggregateResult {
  double sum = 0;
  uint64_t count = 0;
  double Average() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }
};

/// Full scan of relationship property `key` (numeric coercion; missing
/// properties are skipped).
AggregateResult AggregateRelationshipProperty(const graph::GraphView& g,
                                              const std::string& key);

}  // namespace aion::algo

#endif  // AION_ALGO_STATIC_ALGOS_H_
