// Persistent string interning (Sec 4.2: "Instead of storing the strings
// directly in disk records, we replace them with a reference (4 bytes) to a
// string store"). Labels, relationship types and property keys/values all go
// through this pool, substantially shrinking temporal records.
//
// Storage: an append-only log of (id, string) entries replayed at open into
// two in-memory maps. Ids are dense uint32 starting at 1 (0 is reserved so
// flag bits in record references can never alias a real id of 0).
//
// Thread-safe: interning takes a mutex; lookups are lock-free after the
// pointer snapshot (reads only touch append-only storage guarded by the same
// mutex — kept simple with a shared_mutex).
#ifndef AION_STORAGE_STRING_POOL_H_
#define AION_STORAGE_STRING_POOL_H_

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/log_file.h"
#include "util/status.h"

namespace aion::storage {

using StringRef = uint32_t;
inline constexpr StringRef kInvalidStringRef = 0;

class StringPool {
 public:
  /// Opens (creating if missing) a pool persisted at `path`, replaying any
  /// existing entries.
  static StatusOr<std::unique_ptr<StringPool>> Open(const std::string& path);

  /// Purely in-memory pool (tests, baselines).
  static std::unique_ptr<StringPool> InMemory();

  StringPool(const StringPool&) = delete;
  StringPool& operator=(const StringPool&) = delete;

  /// Returns the ref for `s`, assigning and persisting a new one if needed.
  StatusOr<StringRef> Intern(const std::string& s);

  /// Returns the string for `ref`, or InvalidArgument for unknown refs.
  StatusOr<std::string> Lookup(StringRef ref) const;

  /// Ref for `s` if already interned, else kInvalidStringRef.
  StringRef Find(const std::string& s) const;

  size_t size() const;
  uint64_t SizeBytes() const { return log_ ? log_->SizeBytes() : 0; }

 private:
  explicit StringPool(std::unique_ptr<LogFile> log) : log_(std::move(log)) {}

  Status ReplayLog();

  std::unique_ptr<LogFile> log_;  // null for in-memory pools
  mutable std::shared_mutex mu_;
  std::vector<std::string> by_id_;  // index = ref - 1
  std::unordered_map<std::string, StringRef> by_string_;
};

}  // namespace aion::storage

#endif  // AION_STORAGE_STRING_POOL_H_
