// Append-only record log with CRC-protected framing. TimeStore's single
// update log (Sec 4.3, "similar to a DB write-ahead log with no retention
// policy") and the host database's WAL are both built on this.
//
// Record framing: [u32 payload length][u32 crc32(payload)][payload bytes].
// Append returns the record's starting offset, which callers index in a
// B+Tree keyed by timestamp.
#ifndef AION_STORAGE_LOG_FILE_H_
#define AION_STORAGE_LOG_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/file.h"
#include "util/slice.h"
#include "util/status.h"

namespace aion::storage {

/// CRC-32 (Castagnoli polynomial, software table) over `data`.
uint32_t Crc32c(const char* data, size_t n);

class LogFile {
 public:
  /// Opens (creating if missing) the log at `path`. Appends resume at the
  /// current end of file.
  static StatusOr<std::unique_ptr<LogFile>> Open(const std::string& path);

  LogFile(const LogFile&) = delete;
  LogFile& operator=(const LogFile&) = delete;

  /// Appends one record; returns the offset to pass to Read later.
  StatusOr<uint64_t> Append(util::Slice payload);

  /// Appends every payload as its own framed record with a single write
  /// syscall (group commit / bulk ingest). Returns the offset of the first
  /// record; when `offsets` is non-null it receives one offset per payload.
  StatusOr<uint64_t> AppendBatch(const std::vector<std::string>& payloads,
                                 std::vector<uint64_t>* offsets);

  /// Scans from offset 0 and drops a torn suffix: an *incomplete* final
  /// record (a partially persisted tail after a crash mid-append) is
  /// truncated away, as is an all-zero tail (a crash mid-pwrite can leave a
  /// zero-extended file whose 8 zero header bytes would otherwise parse as
  /// a valid empty record, since Crc32c of "" is 0). A complete record with
  /// a checksum mismatch is mid-log corruption and fails with Corruption
  /// instead — truncating there would silently drop committed records.
  /// Returns the recovered end offset.
  StatusOr<uint64_t> RecoverTail();

  /// Reads the record at `offset` into `*payload`. Verifies the checksum.
  Status Read(uint64_t offset, std::string* payload) const;

  /// Reads the record at `offset` and returns the offset just past it, so
  /// callers can scan forward: `offset = ReadNext(offset, &rec)`.
  StatusOr<uint64_t> ReadNext(uint64_t offset, std::string* payload) const;

  Status Sync() { return file_->Sync(); }

  /// Offset one past the last appended record (== file size).
  uint64_t end_offset() const { return file_->size(); }

  uint64_t SizeBytes() const { return file_->size(); }

  /// Iterates records from `start_offset` until `end_offset` (exclusive;
  /// pass end_offset() for "to the end"), invoking fn(offset, payload).
  /// Stops early if fn returns false.
  template <typename Fn>
  Status Scan(uint64_t start_offset, uint64_t end, Fn&& fn) const {
    uint64_t offset = start_offset;
    std::string payload;
    while (offset < end) {
      AION_ASSIGN_OR_RETURN(uint64_t next, ReadNext(offset, &payload));
      if (!fn(offset, util::Slice(payload))) break;
      offset = next;
    }
    return Status::OK();
  }

 private:
  explicit LogFile(std::unique_ptr<RandomAccessFile> file)
      : file_(std::move(file)) {}

  /// True when every byte from `offset` to EOF is zero (torn-tail probe).
  StatusOr<bool> IsZeroToEof(uint64_t offset) const;

  std::unique_ptr<RandomAccessFile> file_;
};

}  // namespace aion::storage

#endif  // AION_STORAGE_LOG_FILE_H_
