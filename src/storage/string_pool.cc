#include "storage/string_pool.h"

#include <mutex>

#include "util/coding.h"

namespace aion::storage {

StatusOr<std::unique_ptr<StringPool>> StringPool::Open(
    const std::string& path) {
  AION_ASSIGN_OR_RETURN(auto log, LogFile::Open(path));
  std::unique_ptr<StringPool> pool(new StringPool(std::move(log)));
  AION_RETURN_IF_ERROR(pool->ReplayLog());
  return pool;
}

std::unique_ptr<StringPool> StringPool::InMemory() {
  return std::unique_ptr<StringPool>(new StringPool(nullptr));
}

Status StringPool::ReplayLog() {
  return log_->Scan(0, log_->end_offset(),
                    [this](uint64_t /*offset*/, util::Slice payload) {
                      // Entry layout: the interned string itself; ids are
                      // assigned in append order.
                      by_id_.push_back(payload.ToString());
                      by_string_[by_id_.back()] =
                          static_cast<StringRef>(by_id_.size());
                      return true;
                    });
}

StatusOr<StringRef> StringPool::Intern(const std::string& s) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = by_string_.find(s);
    if (it != by_string_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = by_string_.find(s);
  if (it != by_string_.end()) return it->second;
  if (log_ != nullptr) {
    AION_RETURN_IF_ERROR(log_->Append(s).status());
  }
  by_id_.push_back(s);
  const StringRef ref = static_cast<StringRef>(by_id_.size());
  by_string_[s] = ref;
  return ref;
}

StatusOr<std::string> StringPool::Lookup(StringRef ref) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (ref == kInvalidStringRef || ref > by_id_.size()) {
    return Status::InvalidArgument("unknown string ref " +
                                   std::to_string(ref));
  }
  return by_id_[ref - 1];
}

StringRef StringPool::Find(const std::string& s) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = by_string_.find(s);
  return it == by_string_.end() ? kInvalidStringRef : it->second;
}

size_t StringPool::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return by_id_.size();
}

}  // namespace aion::storage
