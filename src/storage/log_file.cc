#include "storage/log_file.h"

#include <algorithm>
#include <array>

#include "util/coding.h"

namespace aion::storage {

namespace {

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int j = 0; j < 8; ++j) {
      crc = (crc >> 1) ^ (0x82f63b78u & (~(crc & 1) + 1));
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

uint32_t Crc32c(const char* data, size_t n) {
  static const std::array<uint32_t, 256> kTable = BuildCrcTable();
  uint32_t crc = 0xffffffffu;
  for (size_t i = 0; i < n; ++i) {
    crc = kTable[(crc ^ static_cast<unsigned char>(data[i])) & 0xff] ^
          (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

StatusOr<std::unique_ptr<LogFile>> LogFile::Open(const std::string& path) {
  AION_ASSIGN_OR_RETURN(auto file, RandomAccessFile::Open(path));
  return std::unique_ptr<LogFile>(new LogFile(std::move(file)));
}

StatusOr<uint64_t> LogFile::Append(util::Slice payload) {
  std::string framed;
  framed.reserve(8 + payload.size());
  util::PutFixed32(&framed, static_cast<uint32_t>(payload.size()));
  util::PutFixed32(&framed, Crc32c(payload.data(), payload.size()));
  framed.append(payload.data(), payload.size());
  return file_->Append(framed.data(), framed.size());
}

StatusOr<uint64_t> LogFile::AppendBatch(
    const std::vector<std::string>& payloads, std::vector<uint64_t>* offsets) {
  if (payloads.empty()) return file_->size();
  size_t total = 0;
  for (const std::string& p : payloads) total += 8 + p.size();
  std::string framed;
  framed.reserve(total);
  std::vector<uint64_t> relative;
  relative.reserve(payloads.size());
  for (const std::string& p : payloads) {
    relative.push_back(framed.size());
    util::PutFixed32(&framed, static_cast<uint32_t>(p.size()));
    util::PutFixed32(&framed, Crc32c(p.data(), p.size()));
    framed.append(p);
  }
  AION_ASSIGN_OR_RETURN(uint64_t base,
                        file_->Append(framed.data(), framed.size()));
  if (offsets != nullptr) {
    offsets->clear();
    offsets->reserve(relative.size());
    for (uint64_t r : relative) offsets->push_back(base + r);
  }
  return base;
}

StatusOr<uint64_t> LogFile::RecoverTail() {
  uint64_t offset = 0;
  std::string payload;
  while (offset < file_->size()) {
    // A zero-extended tail is torn, not a record: Crc32c of an empty
    // payload is 0, so 8+ trailing zero bytes would otherwise parse as a
    // valid empty record. A crash in the middle of a pwrite (e.g. mid
    // compaction-manifest commit) can leave exactly that — the filesystem
    // extends the file before the data lands. If everything from here to
    // EOF is zero, nothing was ever committed here: truncate. A genuine
    // empty record *followed by data* never hits this path.
    if (file_->size() - offset >= 8) {
      char header[8];
      AION_RETURN_IF_ERROR(file_->Read(offset, 8, header));
      bool header_zero = true;
      for (char c : header) header_zero = header_zero && c == 0;
      if (header_zero) {
        AION_ASSIGN_OR_RETURN(bool tail_zero, IsZeroToEof(offset + 8));
        if (tail_zero) break;  // truncate the zero run below
      }
    }
    StatusOr<uint64_t> next = ReadNext(offset, &payload);
    if (next.ok()) {
      offset = *next;
      continue;
    }
    // Only an *incomplete* record is a torn write (the crash interrupted
    // the append): fewer than 8 header bytes left, or a frame whose
    // payload extends past EOF. A complete frame with a bad checksum is
    // mid-log corruption — truncating it would silently drop committed
    // transactions, so surface it instead.
    const uint64_t remaining = file_->size() - offset;
    bool torn = remaining < 8;
    if (!torn) {
      char header[8];
      AION_RETURN_IF_ERROR(file_->Read(offset, 8, header));
      torn = offset + 8 + util::DecodeFixed32(header) > file_->size();
    }
    if (!torn) return next.status();
    break;
  }
  if (offset < file_->size()) {
    AION_RETURN_IF_ERROR(file_->Truncate(offset));
  }
  return offset;
}

StatusOr<bool> LogFile::IsZeroToEof(uint64_t offset) const {
  char buf[4096];
  while (offset < file_->size()) {
    const size_t n = static_cast<size_t>(
        std::min<uint64_t>(sizeof(buf), file_->size() - offset));
    AION_RETURN_IF_ERROR(file_->Read(offset, n, buf));
    for (size_t i = 0; i < n; ++i) {
      if (buf[i] != 0) return false;
    }
    offset += n;
  }
  return true;
}

Status LogFile::Read(uint64_t offset, std::string* payload) const {
  return ReadNext(offset, payload).status();
}

StatusOr<uint64_t> LogFile::ReadNext(uint64_t offset,
                                     std::string* payload) const {
  char header[8];
  AION_RETURN_IF_ERROR(file_->Read(offset, 8, header));
  const uint32_t length = util::DecodeFixed32(header);
  const uint32_t expected_crc = util::DecodeFixed32(header + 4);
  if (offset + 8 + length > file_->size()) {
    return Status::Corruption("log record extends past end of file");
  }
  payload->resize(length);
  if (length > 0) {
    AION_RETURN_IF_ERROR(file_->Read(offset + 8, length, payload->data()));
  }
  if (Crc32c(payload->data(), length) != expected_crc) {
    return Status::Corruption("log record checksum mismatch at offset " +
                              std::to_string(offset));
  }
  return offset + 8 + length;
}

}  // namespace aion::storage
