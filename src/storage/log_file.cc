#include "storage/log_file.h"

#include <array>

#include "util/coding.h"

namespace aion::storage {

namespace {

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int j = 0; j < 8; ++j) {
      crc = (crc >> 1) ^ (0x82f63b78u & (~(crc & 1) + 1));
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

uint32_t Crc32c(const char* data, size_t n) {
  static const std::array<uint32_t, 256> kTable = BuildCrcTable();
  uint32_t crc = 0xffffffffu;
  for (size_t i = 0; i < n; ++i) {
    crc = kTable[(crc ^ static_cast<unsigned char>(data[i])) & 0xff] ^
          (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

StatusOr<std::unique_ptr<LogFile>> LogFile::Open(const std::string& path) {
  AION_ASSIGN_OR_RETURN(auto file, RandomAccessFile::Open(path));
  return std::unique_ptr<LogFile>(new LogFile(std::move(file)));
}

StatusOr<uint64_t> LogFile::Append(util::Slice payload) {
  std::string framed;
  framed.reserve(8 + payload.size());
  util::PutFixed32(&framed, static_cast<uint32_t>(payload.size()));
  util::PutFixed32(&framed, Crc32c(payload.data(), payload.size()));
  framed.append(payload.data(), payload.size());
  return file_->Append(framed.data(), framed.size());
}

Status LogFile::Read(uint64_t offset, std::string* payload) const {
  return ReadNext(offset, payload).status();
}

StatusOr<uint64_t> LogFile::ReadNext(uint64_t offset,
                                     std::string* payload) const {
  char header[8];
  AION_RETURN_IF_ERROR(file_->Read(offset, 8, header));
  const uint32_t length = util::DecodeFixed32(header);
  const uint32_t expected_crc = util::DecodeFixed32(header + 4);
  if (offset + 8 + length > file_->size()) {
    return Status::Corruption("log record extends past end of file");
  }
  payload->resize(length);
  if (length > 0) {
    AION_RETURN_IF_ERROR(file_->Read(offset + 8, length, payload->data()));
  }
  if (Crc32c(payload->data(), length) != expected_crc) {
    return Status::Corruption("log record checksum mismatch at offset " +
                              std::to_string(offset));
  }
  return offset + 8 + length;
}

}  // namespace aion::storage
