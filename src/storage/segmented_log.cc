#include "storage/segmented_log.h"

#include <algorithm>
#include <utility>

namespace aion::storage {

namespace {

constexpr char kManifestName[] = "MANIFEST";
constexpr char kSegmentPrefix[] = "seg_";
constexpr char kSegmentSuffix[] = ".log";

/// Parses "seg_<id>.log" → id; returns 0 (never a valid id) otherwise.
uint64_t ParseSegmentName(const std::string& name) {
  const size_t prefix_len = sizeof(kSegmentPrefix) - 1;
  const size_t suffix_len = sizeof(kSegmentSuffix) - 1;
  if (name.size() <= prefix_len + suffix_len) return 0;
  if (name.compare(0, prefix_len, kSegmentPrefix) != 0) return 0;
  if (name.compare(name.size() - suffix_len, suffix_len, kSegmentSuffix) !=
      0) {
    return 0;
  }
  uint64_t id = 0;
  for (size_t i = prefix_len; i < name.size() - suffix_len; ++i) {
    if (name[i] < '0' || name[i] > '9') return 0;
    id = id * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  return id;
}

}  // namespace

std::string SegmentedLog::SegmentPath(uint64_t id) const {
  return options_.dir + "/" + kSegmentPrefix + std::to_string(id) +
         kSegmentSuffix;
}

StatusOr<std::unique_ptr<SegmentedLog>> SegmentedLog::Open(Options options) {
  AION_RETURN_IF_ERROR(CreateDirIfMissing(options.dir));
  auto log =
      std::unique_ptr<SegmentedLog>(new SegmentedLog(std::move(options)));
  std::lock_guard<std::mutex> lock(log->mu_);
  AION_ASSIGN_OR_RETURN(
      log->manifest_,
      Manifest::Open(log->options_.dir + "/" + kManifestName));

  ManifestState state = log->manifest_->state();
  if (state.active_segment_id == 0) {
    // Fresh log: materialize segment 1 before publishing it so the
    // manifest never references a file that was never created.
    state.active_segment_id = state.next_segment_id++;
    AION_RETURN_IF_ERROR(
        LogFile::Open(log->SegmentPath(state.active_segment_id)).status());
    AION_RETURN_IF_ERROR(log->manifest_->Commit(state));
  }

  for (const SegmentMeta& meta : state.sealed) {
    const std::string path = log->SegmentPath(meta.id);
    if (!FileExists(path)) {
      return Status::Corruption("sealed segment missing: " + path);
    }
    SealedSeg seg;
    seg.meta = meta;
    AION_ASSIGN_OR_RETURN(auto file, LogFile::Open(path));
    seg.log = std::move(file);
    seg.bloom = BloomFilter::FromBytes(meta.bloom);
    log->sealed_.emplace(meta.id, std::move(seg));
  }

  log->active_id_ = state.active_segment_id;
  AION_RETURN_IF_ERROR(log->OpenActiveLocked());
  AION_RETURN_IF_ERROR(log->RemoveOrphansLocked());
  return log;
}

Status SegmentedLog::OpenActiveLocked() {
  AION_ASSIGN_OR_RETURN(auto file, LogFile::Open(SegmentPath(active_id_)));
  active_ = std::move(file);
  AION_ASSIGN_OR_RETURN(uint64_t end, active_->RecoverTail());
  active_min_ts_ = ~0ull;
  active_max_ts_ = 0;
  active_records_ = 0;
  active_opaque_ = false;
  active_keys_.clear();
  if (end == 0) return Status::OK();
  // Rebuild the fence/bloom accumulators from the surviving records.
  // Without a probe fn the segment's contents are opaque: count records
  // but leave the fences wide open so it is never pruned.
  Status probe_status = Status::OK();
  AION_RETURN_IF_ERROR(active_->Scan(
      0, end, [&](uint64_t /*offset*/, util::Slice payload) {
        ++active_records_;
        if (!options_.probe) {
          active_opaque_ = true;
          return true;
        }
        uint64_t ts = 0;
        std::vector<uint64_t> keys;
        probe_status = options_.probe(payload, &ts, &keys);
        if (!probe_status.ok()) return false;
        active_min_ts_ = std::min(active_min_ts_, ts);
        active_max_ts_ = std::max(active_max_ts_, ts);
        for (uint64_t k : keys) active_keys_.insert(k);
        return true;
      }));
  return probe_status;
}

Status SegmentedLog::RemoveOrphansLocked() {
  // A crash between DropSegments' manifest commit and its unlinks (or
  // between creating a new segment file and committing the roll) leaves
  // segment files the manifest no longer (or does not yet) reference.
  AION_ASSIGN_OR_RETURN(std::vector<std::string> names,
                        ListDir(options_.dir));
  for (const std::string& name : names) {
    const uint64_t id = ParseSegmentName(name);
    if (id == 0) continue;
    if (id == active_id_ || sealed_.count(id) > 0) continue;
    AION_RETURN_IF_ERROR(RemoveFileIfExists(options_.dir + "/" + name));
  }
  return Status::OK();
}

Status SegmentedLog::RollLocked() {
  if (active_records_ == 0) return Status::OK();
  // Sealed data must be durable before the manifest calls it sealed.
  AION_RETURN_IF_ERROR(active_->Sync());

  SegmentMeta meta;
  meta.id = active_id_;
  meta.min_ts = active_opaque_ ? 0 : active_min_ts_;
  meta.max_ts = active_opaque_ ? ~0ull : active_max_ts_;
  meta.records = active_records_;
  meta.bytes = active_->SizeBytes();
  BloomFilter bloom{64};
  if (!active_opaque_ && !active_keys_.empty()) {
    const uint64_t bits = options_.bloom_bits != 0
                              ? options_.bloom_bits
                              : active_keys_.size() * 10;
    bloom = BloomFilter(bits);
    for (uint64_t k : active_keys_) bloom.Add(k);
    meta.bloom = bloom.bytes();
  }

  ManifestState state = manifest_->state();
  state.sealed.push_back(meta);
  const uint64_t new_id = state.next_segment_id++;
  state.active_segment_id = new_id;

  // Create the new segment file first, then publish: a crash in between
  // leaves an orphan file (cleaned at reopen), never a missing one.
  AION_ASSIGN_OR_RETURN(auto new_file, LogFile::Open(SegmentPath(new_id)));
  AION_RETURN_IF_ERROR(manifest_->Commit(state));

  SealedSeg seg;
  seg.meta = meta;
  seg.log = active_;
  seg.bloom = BloomFilter::FromBytes(meta.bloom);
  sealed_.emplace(meta.id, std::move(seg));

  active_ = std::move(new_file);
  active_id_ = new_id;
  active_min_ts_ = ~0ull;
  active_max_ts_ = 0;
  active_records_ = 0;
  active_opaque_ = false;
  active_keys_.clear();
  return Status::OK();
}

StatusOr<RecordLoc> SegmentedLog::Append(util::Slice payload,
                                         const RecordInfo& info) {
  std::lock_guard<std::mutex> lock(mu_);
  AION_ASSIGN_OR_RETURN(uint64_t offset, active_->Append(payload));
  RecordLoc loc{active_id_, offset};
  active_min_ts_ = std::min(active_min_ts_, info.ts);
  active_max_ts_ = std::max(active_max_ts_, info.ts);
  ++active_records_;
  for (uint64_t k : info.keys) active_keys_.insert(k);
  if (active_->SizeBytes() >= options_.target_segment_bytes) {
    AION_RETURN_IF_ERROR(RollLocked());
  }
  return loc;
}

Status SegmentedLog::AppendBatch(const std::vector<std::string>& payloads,
                                 const std::vector<RecordInfo>& info,
                                 std::vector<RecordLoc>* locs) {
  if (payloads.size() != info.size()) {
    return Status::InvalidArgument("payloads/info size mismatch");
  }
  if (locs != nullptr) locs->clear();
  if (payloads.empty()) return Status::OK();
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint64_t> offsets;
  AION_RETURN_IF_ERROR(active_->AppendBatch(payloads, &offsets).status());
  if (locs != nullptr) {
    locs->reserve(offsets.size());
    for (uint64_t off : offsets) locs->push_back(RecordLoc{active_id_, off});
  }
  for (const RecordInfo& r : info) {
    active_min_ts_ = std::min(active_min_ts_, r.ts);
    active_max_ts_ = std::max(active_max_ts_, r.ts);
    ++active_records_;
    for (uint64_t k : r.keys) active_keys_.insert(k);
  }
  if (active_->SizeBytes() >= options_.target_segment_bytes) {
    AION_RETURN_IF_ERROR(RollLocked());
  }
  return Status::OK();
}

Status SegmentedLog::Read(const RecordLoc& loc, std::string* payload) const {
  AION_ASSIGN_OR_RETURN(std::shared_ptr<LogFile> log, Handle(loc.segment_id));
  return log->Read(loc.offset, payload);
}

StatusOr<std::shared_ptr<LogFile>> SegmentedLog::Handle(
    uint64_t segment_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (segment_id == active_id_) return active_;
  auto it = sealed_.find(segment_id);
  if (it == sealed_.end()) {
    return Status::NotFound("segment " + std::to_string(segment_id) +
                            " is not live");
  }
  return it->second.log;
}

bool SegmentedLog::MightContain(uint64_t segment_id, uint64_t first_ts,
                                uint64_t last_ts,
                                const std::vector<uint64_t>* keys) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (segment_id == active_id_) {
    if (active_records_ == 0) return false;
    if (active_opaque_) return true;
    if (active_max_ts_ < first_ts || active_min_ts_ > last_ts) return false;
    if (keys == nullptr || keys->empty()) return true;
    for (uint64_t k : *keys) {
      if (active_keys_.count(k) > 0) return true;
    }
    return false;
  }
  auto it = sealed_.find(segment_id);
  if (it == sealed_.end()) return false;
  const SealedSeg& seg = it->second;
  if (seg.meta.max_ts < first_ts || seg.meta.min_ts > last_ts) return false;
  if (keys == nullptr || keys->empty()) return true;
  if (seg.meta.bloom.empty()) return true;  // no filter: cannot rule out
  for (uint64_t k : *keys) {
    if (seg.bloom.MightContain(k)) return true;
  }
  return false;
}

Status SegmentedLog::SealActive() {
  std::lock_guard<std::mutex> lock(mu_);
  return RollLocked();
}

Status SegmentedLog::SealActiveIfColderThan(uint64_t floor) {
  std::lock_guard<std::mutex> lock(mu_);
  if (active_records_ == 0 || active_opaque_) return Status::OK();
  if (active_max_ts_ >= floor) return Status::OK();
  return RollLocked();
}

bool SegmentedLog::HasSegment(uint64_t segment_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return segment_id == active_id_ || sealed_.count(segment_id) > 0;
}

std::vector<uint64_t> SegmentedLog::SealedBefore(uint64_t floor) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint64_t> ids;
  for (const auto& [id, seg] : sealed_) {
    if (seg.meta.records > 0 && seg.meta.max_ts < floor) ids.push_back(id);
  }
  return ids;
}

Status SegmentedLog::DropSegments(const std::vector<uint64_t>& ids,
                                  uint64_t new_floor, bool unlink) {
  std::lock_guard<std::mutex> lock(mu_);
  ManifestState state = manifest_->state();
  state.floor_ts = std::max(state.floor_ts, new_floor);
  state.sealed.erase(
      std::remove_if(state.sealed.begin(), state.sealed.end(),
                     [&](const SegmentMeta& m) {
                       return std::find(ids.begin(), ids.end(), m.id) !=
                              ids.end();
                     }),
      state.sealed.end());
  AION_RETURN_IF_ERROR(manifest_->Commit(state));
  // The drop is durable; unlinking is best-effort cleanup (a crash here
  // leaves orphans that RemoveOrphansLocked reaps at reopen). Readers
  // holding a Handle keep a valid fd past the unlink.
  for (uint64_t id : ids) {
    sealed_.erase(id);
    if (unlink) {
      AION_RETURN_IF_ERROR(RemoveFileIfExists(SegmentPath(id)));
    }
  }
  return Status::OK();
}

Status SegmentedLog::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  return active_->Sync();
}

uint64_t SegmentedLog::floor_ts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return manifest_->state().floor_ts;
}

uint64_t SegmentedLog::active_segment_id() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_id_;
}

uint64_t SegmentedLog::SizeBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = manifest_->SizeBytes() + active_->SizeBytes();
  for (const auto& [id, seg] : sealed_) total += seg.meta.bytes;
  return total;
}

uint64_t SegmentedLog::NumSegments() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sealed_.size() + 1;
}

std::vector<SegmentMeta> SegmentedLog::SealedSegments() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SegmentMeta> metas;
  metas.reserve(sealed_.size());
  for (const auto& [id, seg] : sealed_) metas.push_back(seg.meta);
  return metas;
}

}  // namespace aion::storage
