// A log of CRC-framed records split across rolling segment files
// (`seg_<id>.log`), with a crash-safe Manifest tracking the live segment
// set. This is the storage half of the retention/compaction lifecycle:
//
//  - Appends go to the single *active* segment; when it crosses
//    `target_segment_bytes` it is sealed (fence keys + bloom filter
//    recorded in the manifest) and a fresh segment becomes active.
//  - Sealed segments are immutable. Temporal scans can skip a sealed
//    segment entirely when its [min_ts, max_ts] fences miss the scan
//    range or its bloom filter rules out every entity of interest.
//  - Compaction drops whole sealed segments with one atomic manifest
//    commit (`DropSegments`); readers that already hold a segment Handle
//    keep a valid open fd even after the file is unlinked, so in-flight
//    scans never observe a segment vanishing.
#ifndef AION_STORAGE_SEGMENTED_LOG_H_
#define AION_STORAGE_SEGMENTED_LOG_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "storage/log_file.h"
#include "storage/manifest.h"
#include "util/bloom.h"
#include "util/slice.h"
#include "util/status.h"

namespace aion::storage {

using util::BloomFilter;

/// Stable address of one record: which segment, and the offset within it.
struct RecordLoc {
  uint64_t segment_id = 0;
  uint64_t offset = 0;
};

/// Per-record metadata the log needs to maintain segment fences and bloom
/// filters: the record's timestamp and the entity keys it touches.
struct RecordInfo {
  uint64_t ts = 0;
  std::vector<uint64_t> keys;
};

class SegmentedLog {
 public:
  /// Extracts (ts, entity keys) from an encoded payload; used at reopen to
  /// rebuild the active segment's fences and bloom accumulator.
  using ProbeFn = std::function<Status(util::Slice payload, uint64_t* ts,
                                       std::vector<uint64_t>* keys)>;

  struct Options {
    std::string dir;
    /// Seal the active segment once it reaches this many bytes.
    uint64_t target_segment_bytes = 8ull << 20;
    /// Bloom filter size for sealed segments; 0 = auto-size at ~10 bits
    /// per distinct key.
    uint64_t bloom_bits = 0;
    /// Optional; without it a reopened active segment cannot be pruned
    /// (fences stay wide open) but remains fully correct.
    ProbeFn probe;
  };

  /// Opens (creating if missing) the segmented log in `options.dir`.
  /// Recovers the manifest, re-opens every live segment, recovers the
  /// active segment's torn tail, and unlinks orphaned segment files left
  /// by a crash between a manifest commit and its unlinks.
  static StatusOr<std::unique_ptr<SegmentedLog>> Open(Options options);

  SegmentedLog(const SegmentedLog&) = delete;
  SegmentedLog& operator=(const SegmentedLog&) = delete;

  /// Appends one record to the active segment, rolling it afterwards if it
  /// crossed the target size.
  StatusOr<RecordLoc> Append(util::Slice payload, const RecordInfo& info);

  /// Appends every payload as its own record with a single write syscall
  /// (group commit). `info` must parallel `payloads`. When `locs` is
  /// non-null it receives one location per payload.
  Status AppendBatch(const std::vector<std::string>& payloads,
                     const std::vector<RecordInfo>& info,
                     std::vector<RecordLoc>* locs);

  /// Reads the record at `loc`, verifying its checksum.
  Status Read(const RecordLoc& loc, std::string* payload) const;

  /// Returns an open handle to segment `segment_id`. The handle stays
  /// readable even if the segment is dropped and unlinked afterwards.
  StatusOr<std::shared_ptr<LogFile>> Handle(uint64_t segment_id) const;

  /// False when segment `segment_id` provably holds no record in
  /// [first_ts, last_ts] touching any of `keys` (fence check, then bloom).
  /// `keys` may be null/empty to ask about timestamps alone. Unknown
  /// segments report false (nothing to scan).
  bool MightContain(uint64_t segment_id, uint64_t first_ts, uint64_t last_ts,
                    const std::vector<uint64_t>* keys) const;

  /// Seals the active segment now (no-op when it holds no records), so a
  /// cold tail becomes eligible for compaction.
  Status SealActive();

  /// Seals the active segment only when every record in it is strictly
  /// below `floor` (no-op when empty, opaque, or still warm).
  Status SealActiveIfColderThan(uint64_t floor);

  /// True when `segment_id` is live (sealed or active).
  bool HasSegment(uint64_t segment_id) const;

  /// Ids of sealed segments whose records all lie strictly below `floor`.
  std::vector<uint64_t> SealedBefore(uint64_t floor) const;

  /// Atomically removes `ids` from the live set and advances the
  /// compaction floor to `new_floor` (one manifest commit), then unlinks
  /// the segment files when `unlink` is true. Open handles keep working.
  Status DropSegments(const std::vector<uint64_t>& ids, uint64_t new_floor,
                      bool unlink);

  /// Durably flushes the active segment.
  Status Sync();

  uint64_t floor_ts() const;
  uint64_t active_segment_id() const;
  /// Total bytes across live segment files plus the manifest.
  uint64_t SizeBytes() const;
  /// Live segment count (sealed + active).
  uint64_t NumSegments() const;
  std::vector<SegmentMeta> SealedSegments() const;

 private:
  struct SealedSeg {
    SegmentMeta meta;
    std::shared_ptr<LogFile> log;
    BloomFilter bloom{64};
  };

  explicit SegmentedLog(Options options) : options_(std::move(options)) {}

  std::string SegmentPath(uint64_t id) const;
  Status OpenActiveLocked();
  Status RollLocked();
  Status RemoveOrphansLocked();

  const Options options_;

  mutable std::mutex mu_;
  std::unique_ptr<Manifest> manifest_;
  std::map<uint64_t, SealedSeg> sealed_;

  // Active segment and its fence/bloom accumulators.
  std::shared_ptr<LogFile> active_;
  uint64_t active_id_ = 0;
  uint64_t active_min_ts_ = ~0ull;
  uint64_t active_max_ts_ = 0;
  uint64_t active_records_ = 0;
  // True when the active segment was reopened without a probe fn, so its
  // record set is unknown and it must never be pruned.
  bool active_opaque_ = false;
  std::unordered_set<uint64_t> active_keys_;
};

}  // namespace aion::storage

#endif  // AION_STORAGE_SEGMENTED_LOG_H_
