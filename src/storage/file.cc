#include "storage/file.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <system_error>

namespace aion::storage {

namespace {

Status ErrnoStatus(const std::string& context) {
  return Status::IOError(context + ": " + strerror(errno));
}

}  // namespace

StatusOr<std::unique_ptr<RandomAccessFile>> RandomAccessFile::Open(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) return ErrnoStatus("open " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const Status s = ErrnoStatus("fstat " + path);
    ::close(fd);
    return s;
  }
  return std::unique_ptr<RandomAccessFile>(new RandomAccessFile(
      path, fd, static_cast<uint64_t>(st.st_size)));
}

RandomAccessFile::~RandomAccessFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status RandomAccessFile::Read(uint64_t offset, size_t n, char* scratch) const {
  size_t done = 0;
  while (done < n) {
    const ssize_t r = ::pread(fd_, scratch + done, n - done,
                              static_cast<off_t>(offset + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("pread " + path_);
    }
    if (r == 0) {
      return Status::IOError("short read at offset " + std::to_string(offset) +
                             " in " + path_);
    }
    done += static_cast<size_t>(r);
  }
  return Status::OK();
}

Status RandomAccessFile::Write(uint64_t offset, const char* data, size_t n) {
  size_t done = 0;
  while (done < n) {
    const ssize_t w = ::pwrite(fd_, data + done, n - done,
                               static_cast<off_t>(offset + done));
    if (w < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("pwrite " + path_);
    }
    done += static_cast<size_t>(w);
  }
  if (offset + n > size_.load(std::memory_order_relaxed)) {
    size_.store(offset + n, std::memory_order_release);
  }
  return Status::OK();
}

StatusOr<uint64_t> RandomAccessFile::Append(const char* data, size_t n) {
  const uint64_t offset = size_.load(std::memory_order_relaxed);
  AION_RETURN_IF_ERROR(Write(offset, data, n));
  return offset;
}

Status RandomAccessFile::Sync() {
  if (::fdatasync(fd_) != 0) return ErrnoStatus("fdatasync " + path_);
  return Status::OK();
}

Status RandomAccessFile::Truncate(uint64_t size) {
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    return ErrnoStatus("ftruncate " + path_);
  }
  size_.store(size, std::memory_order_release);
  return Status::OK();
}

Status CreateDirIfMissing(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec) return Status::IOError("mkdir " + path + ": " + ec.message());
  return Status::OK();
}

Status RemoveFileIfExists(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
  if (ec) return Status::IOError("remove " + path + ": " + ec.message());
  return Status::OK();
}

Status RenameFile(const std::string& from, const std::string& to) {
  std::error_code ec;
  std::filesystem::rename(from, to, ec);
  if (ec) {
    return Status::IOError("rename " + from + " -> " + to + ": " +
                           ec.message());
  }
  return Status::OK();
}

Status RemoveDirRecursively(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove_all(path, ec);
  if (ec) return Status::IOError("remove_all " + path + ": " + ec.message());
  return Status::OK();
}

bool FileExists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::exists(path, ec);
}

StatusOr<std::vector<std::string>> ListDir(const std::string& path) {
  std::vector<std::string> names;
  std::error_code ec;
  std::filesystem::directory_iterator it(path, ec);
  if (ec) return Status::IOError("list " + path + ": " + ec.message());
  for (const auto& entry : it) {
    names.push_back(entry.path().filename().string());
  }
  return names;
}

StatusOr<uint64_t> FileSize(const std::string& path) {
  std::error_code ec;
  const uint64_t size = std::filesystem::file_size(path, ec);
  if (ec) return Status::IOError("file_size " + path + ": " + ec.message());
  return size;
}

StatusOr<std::string> MakeTempDir(const std::string& prefix) {
  static std::atomic<uint64_t> counter{0};
  const std::string base =
      std::filesystem::temp_directory_path().string() + "/" + prefix;
  for (int attempt = 0; attempt < 100; ++attempt) {
    const std::string candidate =
        base + std::to_string(::getpid()) + "_" +
        std::to_string(counter.fetch_add(1));
    std::error_code ec;
    if (std::filesystem::create_directories(candidate, ec) && !ec) {
      return candidate;
    }
  }
  return Status::IOError("could not create temp dir with prefix " + prefix);
}

}  // namespace aion::storage
