#include "storage/bptree.h"

#include "obs/query_stats.h"

#include <algorithm>
#include <cstring>

#include "util/coding.h"
#include "util/logging.h"

namespace aion::storage {

using util::GetVarint64;
using util::PutVarint64;
using util::Status;
using util::VarintLength;

namespace {

// Page layout
// -----------
// byte 0        : page type ('L' leaf, 'I' internal)
// bytes 1..2    : uint16 entry count
// bytes 3..4    : uint16 cells end offset
// bytes 8..15   : leaf: next-leaf page id; internal: leftmost child page id
// bytes 16..23  : leaf only: prev-leaf page id
// cells         : leaf at byte 24, internal at byte 16
//   leaf cell     : varint klen, varint vlen, key, value
//   internal cell : varint klen, key, fixed64 child
//
// Meta page (page 0)
// ------------------
// bytes 0..7   : magic
// bytes 8..15  : root page id
// bytes 16..19 : height
// bytes 24..31 : entry count

constexpr uint64_t kMagic = 0x41494f4e42505432ULL;  // "AIONBPT2"
constexpr size_t kInternalHeaderSize = 16;
constexpr size_t kLeafHeaderSize = 24;
constexpr char kLeafType = 'L';
constexpr char kInternalType = 'I';
// Shared budget for both page kinds (sized for the larger leaf header).
constexpr size_t kPagePayload = kPageSize - kLeafHeaderSize;

uint16_t ReadU16(const char* p) {
  uint16_t v;
  memcpy(&v, p, 2);
  return v;
}
void WriteU16(char* p, uint16_t v) { memcpy(p, &v, 2); }

uint64_t ReadU64(const char* p) { return util::DecodeFixed64(p); }
void WriteU64(char* p, uint64_t v) { util::EncodeFixed64(p, v); }

}  // namespace

size_t BpTree::LeafImage::EncodedSize() const {
  size_t total = 0;
  for (const LeafEntry& e : entries) {
    total += VarintLength(e.key.size()) + VarintLength(e.value.size()) +
             e.key.size() + e.value.size();
  }
  return total;
}

size_t BpTree::InternalImage::EncodedSize() const {
  size_t total = 0;
  for (const InternalEntry& e : entries) {
    total += VarintLength(e.key.size()) + e.key.size() + 8;
  }
  return total;
}

BpTree::BpTree(std::unique_ptr<PageCache> cache) : cache_(std::move(cache)) {}

BpTree::~BpTree() { (void)Flush(); }

StatusOr<std::unique_ptr<BpTree>> BpTree::Open(const std::string& path,
                                               const Options& options) {
  AION_ASSIGN_OR_RETURN(
      auto cache,
      PageCache::Open(path, options.cache_pages, options.metrics));
  std::unique_ptr<BpTree> tree(new BpTree(std::move(cache)));
  if (tree->cache_->num_pages() == 0) {
    AION_RETURN_IF_ERROR(tree->InitNew());
  } else {
    AION_RETURN_IF_ERROR(tree->LoadMeta());
  }
  return tree;
}

Status BpTree::InitNew() {
  // Page 0: meta. Page 1: empty root leaf.
  PageId meta_id;
  AION_ASSIGN_OR_RETURN(PageHandle meta, cache_->Allocate(&meta_id));
  if (meta_id != 0) return Status::Internal("meta page must be page 0");

  PageId root_id;
  AION_ASSIGN_OR_RETURN(PageHandle root, cache_->Allocate(&root_id));
  LeafImage empty;
  EncodeLeaf(empty, root.data());
  root.MarkDirty();

  root_ = root_id;
  height_ = 1;
  num_entries_ = 0;
  meta_dirty_ = true;
  AION_RETURN_IF_ERROR(StoreMeta());
  meta.MarkDirty();
  return Status::OK();
}

Status BpTree::LoadMeta() {
  AION_ASSIGN_OR_RETURN(PageHandle meta, cache_->Fetch(0));
  if (ReadU64(meta.data()) != kMagic) {
    return Status::Corruption("bad B+Tree magic");
  }
  root_ = ReadU64(meta.data() + 8);
  height_ = util::DecodeFixed32(meta.data() + 16);
  num_entries_ = ReadU64(meta.data() + 24);
  return Status::OK();
}

Status BpTree::StoreMeta() {
  AION_ASSIGN_OR_RETURN(PageHandle meta, cache_->Fetch(0));
  WriteU64(meta.data(), kMagic);
  WriteU64(meta.data() + 8, root_);
  util::EncodeFixed32(meta.data() + 16, height_);
  WriteU64(meta.data() + 24, num_entries_);
  meta.MarkDirty();
  meta_dirty_ = false;
  return Status::OK();
}

Status BpTree::DecodeLeaf(const char* page, LeafImage* image) {
  if (page[0] != kLeafType) return Status::Corruption("expected leaf page");
  const uint16_t count = ReadU16(page + 1);
  const uint16_t end = ReadU16(page + 3);
  image->next = ReadU64(page + 8);
  image->prev = ReadU64(page + 16);
  image->entries.clear();
  image->entries.reserve(count);
  Slice cells(page + kLeafHeaderSize, end);
  for (uint16_t i = 0; i < count; ++i) {
    uint64_t klen, vlen;
    if (!GetVarint64(&cells, &klen) || !GetVarint64(&cells, &vlen) ||
        cells.size() < klen + vlen) {
      return Status::Corruption("truncated leaf cell");
    }
    LeafEntry entry;
    entry.key.assign(cells.data(), klen);
    entry.value.assign(cells.data() + klen, vlen);
    cells.RemovePrefix(klen + vlen);
    image->entries.push_back(std::move(entry));
  }
  return Status::OK();
}

Status BpTree::DecodeInternal(const char* page, InternalImage* image) {
  if (page[0] != kInternalType) {
    return Status::Corruption("expected internal page");
  }
  const uint16_t count = ReadU16(page + 1);
  const uint16_t end = ReadU16(page + 3);
  image->leftmost = ReadU64(page + 8);
  image->entries.clear();
  image->entries.reserve(count);
  Slice cells(page + kInternalHeaderSize, end);
  for (uint16_t i = 0; i < count; ++i) {
    uint64_t klen;
    if (!GetVarint64(&cells, &klen) || cells.size() < klen + 8) {
      return Status::Corruption("truncated internal cell");
    }
    InternalEntry entry;
    entry.key.assign(cells.data(), klen);
    entry.child = ReadU64(cells.data() + klen);
    cells.RemovePrefix(klen + 8);
    image->entries.push_back(std::move(entry));
  }
  return Status::OK();
}

void BpTree::EncodeLeaf(const LeafImage& image, char* page) {
  page[0] = kLeafType;
  WriteU16(page + 1, static_cast<uint16_t>(image.entries.size()));
  WriteU64(page + 8, image.next);
  WriteU64(page + 16, image.prev);
  std::string cells;
  cells.reserve(image.EncodedSize());
  for (const LeafEntry& e : image.entries) {
    PutVarint64(&cells, e.key.size());
    PutVarint64(&cells, e.value.size());
    cells.append(e.key);
    cells.append(e.value);
  }
  AION_CHECK(cells.size() <= kPagePayload);
  WriteU16(page + 3, static_cast<uint16_t>(cells.size()));
  memcpy(page + kLeafHeaderSize, cells.data(), cells.size());
}

void BpTree::EncodeInternal(const InternalImage& image, char* page) {
  page[0] = kInternalType;
  WriteU16(page + 1, static_cast<uint16_t>(image.entries.size()));
  WriteU64(page + 8, image.leftmost);
  std::string cells;
  cells.reserve(image.EncodedSize());
  for (const InternalEntry& e : image.entries) {
    PutVarint64(&cells, e.key.size());
    cells.append(e.key);
    util::PutFixed64(&cells, e.child);
  }
  AION_CHECK(cells.size() <= kPagePayload);
  WriteU16(page + 3, static_cast<uint16_t>(cells.size()));
  memcpy(page + kInternalHeaderSize, cells.data(), cells.size());
}

StatusOr<PageId> BpTree::DescendToLeaf(Slice key,
                                       std::vector<PageId>* path) const {
  // Hot path: decode internal cells as slices over the pinned page (no
  // string copies), binary search, descend.
  std::vector<std::pair<Slice, PageId>> entries;
  PageId current = root_;
  for (uint32_t level = height_; level > 1; --level) {
    if (path != nullptr) path->push_back(current);
    AION_ASSIGN_OR_RETURN(PageHandle page, cache_->Fetch(current));
    const char* data = page.data();
    if (data[0] != kInternalType) {
      return Status::Corruption("expected internal page");
    }
    const uint16_t count = ReadU16(data + 1);
    const uint16_t end = ReadU16(data + 3);
    const PageId leftmost = ReadU64(data + 8);
    entries.clear();
    entries.reserve(count);
    Slice cells(data + kInternalHeaderSize, end);
    for (uint16_t i = 0; i < count; ++i) {
      uint64_t klen;
      if (!GetVarint64(&cells, &klen) || cells.size() < klen + 8) {
        return Status::Corruption("truncated internal cell");
      }
      entries.emplace_back(Slice(cells.data(), klen),
                           ReadU64(cells.data() + klen));
      cells.RemovePrefix(klen + 8);
    }
    // Child for `key`: the child of the last entry with entry.key <= key,
    // or leftmost if key < all entry keys.
    PageId child = leftmost;
    size_t lo = 0, hi = entries.size();
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      if (entries[mid].first.Compare(key) <= 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo > 0) child = entries[lo - 1].second;
    current = child;
  }
  return current;
}

StatusOr<std::string> BpTree::Get(Slice key) const {
  obs::TickBpTreeProbe();
  AION_ASSIGN_OR_RETURN(PageId leaf_id, DescendToLeaf(key, nullptr));
  AION_ASSIGN_OR_RETURN(PageHandle page, cache_->Fetch(leaf_id));
  // Scan cells without materializing the whole leaf.
  const char* data = page.data();
  if (data[0] != kLeafType) return Status::Corruption("expected leaf page");
  const uint16_t count = ReadU16(data + 1);
  const uint16_t end = ReadU16(data + 3);
  Slice cells(data + kLeafHeaderSize, end);
  for (uint16_t i = 0; i < count; ++i) {
    uint64_t klen, vlen;
    if (!GetVarint64(&cells, &klen) || !GetVarint64(&cells, &vlen) ||
        cells.size() < klen + vlen) {
      return Status::Corruption("truncated leaf cell");
    }
    const Slice entry_key(cells.data(), klen);
    const int cmp = entry_key.Compare(key);
    if (cmp == 0) {
      return std::string(cells.data() + klen, vlen);
    }
    if (cmp > 0) break;  // sorted; key absent
    cells.RemovePrefix(klen + vlen);
  }
  return Status::NotFound("key not in tree");
}

Status BpTree::Put(Slice key, Slice value) {
  if (key.size() + value.size() > kMaxEntrySize) {
    return Status::InvalidArgument("entry too large for B+Tree page");
  }
  std::vector<PageId> path;
  AION_ASSIGN_OR_RETURN(PageId leaf_id, DescendToLeaf(key, &path));

  // Fast path: insert or same-size-overwrite directly in the page buffer
  // (no leaf materialization). Falls through to the image-based slow path
  // on overflow or value-size change.
  {
    AION_ASSIGN_OR_RETURN(PageHandle page, cache_->Fetch(leaf_id));
    char* data = page.data();
    const uint16_t count = ReadU16(data + 1);
    const uint16_t end = ReadU16(data + 3);
    char* cells = data + kLeafHeaderSize;
    // Locate the insertion offset (cells are key-sorted).
    size_t offset = 0;
    bool found = false;
    size_t found_value_offset = 0, found_value_len = 0;
    Slice cursor(cells, end);
    while (!cursor.empty()) {
      const size_t cell_start = static_cast<size_t>(cursor.data() - cells);
      uint64_t klen, vlen;
      if (!GetVarint64(&cursor, &klen) || !GetVarint64(&cursor, &vlen) ||
          cursor.size() < klen + vlen) {
        return Status::Corruption("truncated leaf cell");
      }
      const Slice entry_key(cursor.data(), klen);
      const int cmp = entry_key.Compare(key);
      if (cmp >= 0) {
        offset = cell_start;
        if (cmp == 0) {
          found = true;
          found_value_offset =
              static_cast<size_t>(cursor.data() - cells) + klen;
          found_value_len = vlen;
        }
        break;
      }
      cursor.RemovePrefix(klen + vlen);
      offset = static_cast<size_t>(cursor.data() - cells);
    }
    if (found && found_value_len == value.size()) {
      memcpy(cells + found_value_offset, value.data(), value.size());
      page.MarkDirty();
      return Status::OK();
    }
    if (!found) {
      const size_t cell_size = static_cast<size_t>(
          VarintLength(key.size()) + VarintLength(value.size())) +
          key.size() + value.size();
      if (end + cell_size <= kPagePayload) {
        memmove(cells + offset + cell_size, cells + offset, end - offset);
        char* out = cells + offset;
        // Encode varints directly.
        std::string header;
        PutVarint64(&header, key.size());
        PutVarint64(&header, value.size());
        memcpy(out, header.data(), header.size());
        out += header.size();
        memcpy(out, key.data(), key.size());
        out += key.size();
        memcpy(out, value.data(), value.size());
        WriteU16(data + 1, static_cast<uint16_t>(count + 1));
        WriteU16(data + 3, static_cast<uint16_t>(end + cell_size));
        page.MarkDirty();
        ++num_entries_;
        meta_dirty_ = true;
        return Status::OK();
      }
    }
  }

  LeafImage image;
  {
    AION_ASSIGN_OR_RETURN(PageHandle page, cache_->Fetch(leaf_id));
    AION_RETURN_IF_ERROR(DecodeLeaf(page.data(), &image));
  }

  // Insert or replace, keeping sorted order.
  auto it = std::lower_bound(
      image.entries.begin(), image.entries.end(), key,
      [](const LeafEntry& e, const Slice& k) {
        return Slice(e.key).Compare(k) < 0;
      });
  bool replaced = false;
  if (it != image.entries.end() && Slice(it->key) == key) {
    it->value.assign(value.data(), value.size());
    replaced = true;
  } else {
    LeafEntry entry;
    entry.key.assign(key.data(), key.size());
    entry.value.assign(value.data(), value.size());
    image.entries.insert(it, std::move(entry));
  }

  if (image.EncodedSize() <= kPagePayload) {
    AION_ASSIGN_OR_RETURN(PageHandle page, cache_->Fetch(leaf_id));
    EncodeLeaf(image, page.data());
    page.MarkDirty();
  } else {
    // Split: move the upper half (by encoded size, so skewed entry sizes
    // cannot overflow either side) into a new leaf to the right. When the
    // overflow was caused by a rightmost append (monotonic keys — the
    // common pattern for time- and id-ordered indexes), split at the tail
    // instead, leaving the left leaf ~full (B-link append optimization).
    const bool append_pattern =
        !replaced && Slice(image.entries.back().key) == key;
    size_t split;
    if (append_pattern) {
      split = image.entries.size() - 1;
    } else {
      const size_t total = image.EncodedSize();
      split = 0;
      size_t prefix = 0;
      while (split + 1 < image.entries.size() && prefix < total / 2) {
        const LeafEntry& e = image.entries[split];
        prefix += VarintLength(e.key.size()) + VarintLength(e.value.size()) +
                  e.key.size() + e.value.size();
        ++split;
      }
      if (split == 0) split = 1;
    }
    LeafImage right;
    right.next = image.next;
    right.prev = leaf_id;
    right.entries.assign(std::make_move_iterator(image.entries.begin() +
                                                 static_cast<long>(split)),
                         std::make_move_iterator(image.entries.end()));
    image.entries.resize(split);

    PageId right_id;
    {
      AION_ASSIGN_OR_RETURN(PageHandle right_page,
                            cache_->Allocate(&right_id));
      EncodeLeaf(right, right_page.data());
      right_page.MarkDirty();
    }
    if (right.next != kInvalidPageId) {
      // Maintain the doubly-linked leaf chain: the old successor's prev
      // pointer now refers to the new right leaf.
      AION_ASSIGN_OR_RETURN(PageHandle succ, cache_->Fetch(right.next));
      WriteU64(succ.data() + 16, right_id);
      succ.MarkDirty();
    }
    image.next = right_id;
    {
      AION_ASSIGN_OR_RETURN(PageHandle page, cache_->Fetch(leaf_id));
      EncodeLeaf(image, page.data());
      page.MarkDirty();
    }
    AION_RETURN_IF_ERROR(
        InsertIntoParents(&path, right.entries.front().key, right_id));
  }

  if (!replaced) ++num_entries_;
  meta_dirty_ = true;
  return Status::OK();
}

Status BpTree::AppendSorted(
    const std::vector<std::pair<std::string, std::string>>& entries) {
  if (entries.empty()) return Status::OK();
  for (const auto& [key, value] : entries) {
    if (key.size() + value.size() > kMaxEntrySize) {
      return Status::InvalidArgument("entry too large for B+Tree page");
    }
  }
  bool tail_append = true;
  for (size_t i = 1; i < entries.size() && tail_append; ++i) {
    if (Slice(entries[i - 1].first).Compare(Slice(entries[i].first)) >= 0) {
      tail_append = false;
    }
  }
  if (tail_append && num_entries() > 0) {
    Iterator it = NewIterator();
    it.SeekToLast();
    AION_RETURN_IF_ERROR(it.status());
    if (!it.Valid() || Slice(entries.front().first).Compare(it.key()) <= 0) {
      tail_append = false;
    }
  }
  if (!tail_append) {
    for (const auto& [key, value] : entries) {
      AION_RETURN_IF_ERROR(Put(key, value));
    }
    return Status::OK();
  }

  // Every key lands strictly beyond the current maximum: fill the rightmost
  // leaf in memory, sealing and chaining a fresh leaf whenever it overflows.
  std::vector<PageId> path;
  AION_ASSIGN_OR_RETURN(PageId leaf_id,
                        DescendToLeaf(entries.front().first, &path));
  LeafImage image;
  {
    AION_ASSIGN_OR_RETURN(PageHandle page, cache_->Fetch(leaf_id));
    AION_RETURN_IF_ERROR(DecodeLeaf(page.data(), &image));
  }
  for (const auto& [key, value] : entries) {
    LeafEntry entry;
    entry.key = key;
    entry.value = value;
    image.entries.push_back(std::move(entry));
    if (image.EncodedSize() > kPagePayload) {
      // The new entry starts a fresh rightmost leaf; seal the full one.
      LeafImage right;
      right.prev = leaf_id;
      right.next = image.next;
      right.entries.push_back(std::move(image.entries.back()));
      image.entries.pop_back();
      PageId right_id;
      {
        AION_ASSIGN_OR_RETURN(PageHandle right_page,
                              cache_->Allocate(&right_id));
        EncodeLeaf(right, right_page.data());
        right_page.MarkDirty();
      }
      if (right.next != kInvalidPageId) {
        AION_ASSIGN_OR_RETURN(PageHandle succ, cache_->Fetch(right.next));
        WriteU64(succ.data() + 16, right_id);
        succ.MarkDirty();
      }
      image.next = right_id;
      {
        AION_ASSIGN_OR_RETURN(PageHandle page, cache_->Fetch(leaf_id));
        EncodeLeaf(image, page.data());
        page.MarkDirty();
      }
      // Re-descend before each separator insert: a parent split from the
      // previous round invalidates the cached path. Only internal pages are
      // read, so the in-memory leaf image stays authoritative.
      path.clear();
      AION_RETURN_IF_ERROR(
          DescendToLeaf(right.entries.front().key, &path).status());
      AION_RETURN_IF_ERROR(
          InsertIntoParents(&path, right.entries.front().key, right_id));
      leaf_id = right_id;
      image = std::move(right);
    }
  }
  {
    AION_ASSIGN_OR_RETURN(PageHandle page, cache_->Fetch(leaf_id));
    EncodeLeaf(image, page.data());
    page.MarkDirty();
  }
  num_entries_.fetch_add(entries.size(), std::memory_order_relaxed);
  meta_dirty_ = true;
  return Status::OK();
}

Status BpTree::InsertIntoParents(std::vector<PageId>* path,
                                 std::string sep_key, PageId new_child) {
  while (true) {
    if (path->empty()) {
      // Split reached the root: grow the tree by one level.
      PageId old_root = root_;
      InternalImage new_root;
      new_root.leftmost = old_root;
      new_root.entries.push_back({std::move(sep_key), new_child});
      PageId new_root_id;
      AION_ASSIGN_OR_RETURN(PageHandle page, cache_->Allocate(&new_root_id));
      EncodeInternal(new_root, page.data());
      page.MarkDirty();
      root_ = new_root_id;
      ++height_;
      meta_dirty_ = true;
      return Status::OK();
    }

    const PageId parent_id = path->back();
    path->pop_back();

    InternalImage image;
    {
      AION_ASSIGN_OR_RETURN(PageHandle page, cache_->Fetch(parent_id));
      AION_RETURN_IF_ERROR(DecodeInternal(page.data(), &image));
    }
    auto it = std::lower_bound(
        image.entries.begin(), image.entries.end(), Slice(sep_key),
        [](const InternalEntry& e, const Slice& k) {
          return Slice(e.key).Compare(k) < 0;
        });
    image.entries.insert(it, {std::move(sep_key), new_child});

    if (image.EncodedSize() <= kPagePayload) {
      AION_ASSIGN_OR_RETURN(PageHandle page, cache_->Fetch(parent_id));
      EncodeInternal(image, page.data());
      page.MarkDirty();
      return Status::OK();
    }

    // Split internal node: the separator key moves up; its child becomes
    // the leftmost child of the right node. The split point is chosen by
    // accumulated encoded size so neither side can overflow.
    const size_t total = image.EncodedSize();
    size_t mid = 0;
    size_t prefix = 0;
    while (mid + 1 < image.entries.size() && prefix < total / 2) {
      const InternalEntry& e = image.entries[mid];
      prefix += VarintLength(e.key.size()) + e.key.size() + 8;
      ++mid;
    }
    if (mid == 0) mid = 1;
    std::string up_key = std::move(image.entries[mid].key);
    InternalImage right;
    right.leftmost = image.entries[mid].child;
    right.entries.assign(
        std::make_move_iterator(image.entries.begin() +
                                static_cast<long>(mid) + 1),
        std::make_move_iterator(image.entries.end()));
    image.entries.resize(mid);

    PageId right_id;
    {
      AION_ASSIGN_OR_RETURN(PageHandle right_page,
                            cache_->Allocate(&right_id));
      EncodeInternal(right, right_page.data());
      right_page.MarkDirty();
    }
    {
      AION_ASSIGN_OR_RETURN(PageHandle page, cache_->Fetch(parent_id));
      EncodeInternal(image, page.data());
      page.MarkDirty();
    }
    sep_key = std::move(up_key);
    new_child = right_id;
    // Loop continues to insert (sep_key, new_child) into the next parent.
  }
}

Status BpTree::Delete(Slice key) {
  AION_ASSIGN_OR_RETURN(PageId leaf_id, DescendToLeaf(key, nullptr));
  LeafImage image;
  {
    AION_ASSIGN_OR_RETURN(PageHandle page, cache_->Fetch(leaf_id));
    AION_RETURN_IF_ERROR(DecodeLeaf(page.data(), &image));
  }
  auto it = std::lower_bound(
      image.entries.begin(), image.entries.end(), key,
      [](const LeafEntry& e, const Slice& k) {
        return Slice(e.key).Compare(k) < 0;
      });
  if (it == image.entries.end() || Slice(it->key) != key) {
    return Status::NotFound("key not in tree");
  }
  image.entries.erase(it);
  {
    AION_ASSIGN_OR_RETURN(PageHandle page, cache_->Fetch(leaf_id));
    EncodeLeaf(image, page.data());
    page.MarkDirty();
  }
  --num_entries_;
  meta_dirty_ = true;
  return Status::OK();
}

Status BpTree::Flush() {
  if (meta_dirty_) AION_RETURN_IF_ERROR(StoreMeta());
  return cache_->FlushAll();
}

Status BpTree::Sync() {
  if (meta_dirty_) AION_RETURN_IF_ERROR(StoreMeta());
  return cache_->Sync();
}

namespace {

/// Decodes a leaf's cells into slices over the page buffer (no copies).
Status DecodeLeafSlices(const char* page,
                        std::vector<std::pair<Slice, Slice>>* entries,
                        PageId* next, PageId* prev) {
  if (page[0] != kLeafType) return Status::Corruption("expected leaf page");
  const uint16_t count = ReadU16(page + 1);
  const uint16_t end = ReadU16(page + 3);
  *next = ReadU64(page + 8);
  *prev = ReadU64(page + 16);
  entries->clear();
  entries->reserve(count);
  Slice cells(page + kLeafHeaderSize, end);
  for (uint16_t i = 0; i < count; ++i) {
    uint64_t klen, vlen;
    if (!GetVarint64(&cells, &klen) || !GetVarint64(&cells, &vlen) ||
        cells.size() < klen + vlen) {
      return Status::Corruption("truncated leaf cell");
    }
    entries->emplace_back(Slice(cells.data(), klen),
                          Slice(cells.data() + klen, vlen));
    cells.RemovePrefix(klen + vlen);
  }
  return Status::OK();
}

}  // namespace

Status BpTree::ScanForward(
    Slice target, const std::function<bool(Slice, Slice)>& fn) const {
  obs::TickBpTreeProbe();
  AION_ASSIGN_OR_RETURN(PageId leaf, DescendToLeaf(target, nullptr));
  std::vector<std::pair<Slice, Slice>> entries;
  bool first_leaf = true;
  while (leaf != kInvalidPageId) {
    AION_ASSIGN_OR_RETURN(PageHandle page, cache_->Fetch(leaf));
    PageId next, prev;
    AION_RETURN_IF_ERROR(DecodeLeafSlices(page.data(), &entries, &next,
                                          &prev));
    size_t begin = 0;
    if (first_leaf) {
      // Binary search for the first key >= target.
      size_t lo = 0, hi = entries.size();
      while (lo < hi) {
        const size_t mid = lo + (hi - lo) / 2;
        if (entries[mid].first.Compare(target) < 0) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      begin = lo;
      first_leaf = false;
    }
    for (size_t i = begin; i < entries.size(); ++i) {
      if (!fn(entries[i].first, entries[i].second)) return Status::OK();
    }
    leaf = next;
  }
  return Status::OK();
}

Status BpTree::ScanBackward(
    Slice target, const std::function<bool(Slice, Slice)>& fn) const {
  obs::TickBpTreeProbe();
  AION_ASSIGN_OR_RETURN(PageId leaf, DescendToLeaf(target, nullptr));
  std::vector<std::pair<Slice, Slice>> entries;
  bool first_leaf = true;
  while (leaf != kInvalidPageId) {
    AION_ASSIGN_OR_RETURN(PageHandle page, cache_->Fetch(leaf));
    PageId next, prev;
    AION_RETURN_IF_ERROR(DecodeLeafSlices(page.data(), &entries, &next,
                                          &prev));
    size_t end = entries.size();
    if (first_leaf) {
      // Binary search for one past the last key <= target.
      size_t lo = 0, hi = entries.size();
      while (lo < hi) {
        const size_t mid = lo + (hi - lo) / 2;
        if (entries[mid].first.Compare(target) <= 0) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      end = lo;
      first_leaf = false;
    }
    for (size_t i = end; i > 0; --i) {
      if (!fn(entries[i - 1].first, entries[i - 1].second)) {
        return Status::OK();
      }
    }
    leaf = prev;
  }
  return Status::OK();
}

Status BpTree::ScanRange(
    Slice low, Slice high,
    std::vector<std::pair<std::string, std::string>>* out) const {
  Iterator it = NewIterator();
  for (it.Seek(low); it.Valid(); it.Next()) {
    if (!high.empty() && it.key().Compare(high) >= 0) break;
    out->emplace_back(it.key().ToString(), it.value().ToString());
  }
  return it.status();
}

// ---------------------------------------------------------------------------
// Iterator
// ---------------------------------------------------------------------------

void BpTree::Iterator::LoadLeaf(PageId leaf) {
  keys_.clear();
  values_.clear();
  index_ = 0;
  next_leaf_ = kInvalidPageId;
  prev_leaf_ = kInvalidPageId;
  auto page_or = tree_->cache_->Fetch(leaf);
  if (!page_or.ok()) {
    status_ = page_or.status();
    valid_ = false;
    return;
  }
  LeafImage image;
  const Status s = DecodeLeaf(page_or->data(), &image);
  if (!s.ok()) {
    status_ = s;
    valid_ = false;
    return;
  }
  next_leaf_ = image.next;
  prev_leaf_ = image.prev;
  keys_.reserve(image.entries.size());
  values_.reserve(image.entries.size());
  for (LeafEntry& e : image.entries) {
    keys_.push_back(std::move(e.key));
    values_.push_back(std::move(e.value));
  }
  valid_ = !keys_.empty();
}

void BpTree::Iterator::AdvanceLeaf() {
  while (next_leaf_ != kInvalidPageId) {
    const PageId next = next_leaf_;
    LoadLeaf(next);
    if (!status_.ok()) return;
    if (valid_) return;  // non-empty leaf
    // Empty leaf (possible after deletions): keep following the chain.
  }
  valid_ = false;
}

void BpTree::Iterator::RetreatLeaf() {
  while (prev_leaf_ != kInvalidPageId) {
    const PageId prev = prev_leaf_;
    LoadLeaf(prev);
    if (!status_.ok()) return;
    if (valid_) {
      index_ = keys_.size() - 1;
      return;
    }
  }
  valid_ = false;
}

void BpTree::Iterator::Seek(Slice target) {
  obs::TickBpTreeProbe();
  status_ = Status::OK();
  auto leaf_or = tree_->DescendToLeaf(target, nullptr);
  if (!leaf_or.ok()) {
    status_ = leaf_or.status();
    valid_ = false;
    return;
  }
  LoadLeaf(*leaf_or);
  if (!status_.ok()) return;
  // Position at first key >= target within the leaf.
  size_t lo = 0, hi = keys_.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (Slice(keys_[mid]).Compare(target) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  index_ = lo;
  if (index_ >= keys_.size()) {
    AdvanceLeaf();
  } else {
    valid_ = true;
  }
}

void BpTree::Iterator::SeekToFirst() {
  obs::TickBpTreeProbe();
  status_ = Status::OK();
  // Descend along leftmost children.
  PageId current = tree_->root_;
  for (uint32_t level = tree_->height_; level > 1; --level) {
    auto page_or = tree_->cache_->Fetch(current);
    if (!page_or.ok()) {
      status_ = page_or.status();
      valid_ = false;
      return;
    }
    InternalImage image;
    const Status s = DecodeInternal(page_or->data(), &image);
    if (!s.ok()) {
      status_ = s;
      valid_ = false;
      return;
    }
    current = image.leftmost;
  }
  LoadLeaf(current);
  if (valid_ || !status_.ok()) return;
  AdvanceLeaf();
}

void BpTree::Iterator::Next() {
  AION_DCHECK(valid_);
  ++index_;
  if (index_ >= keys_.size()) AdvanceLeaf();
}

void BpTree::Iterator::Prev() {
  AION_DCHECK(valid_);
  if (index_ == 0) {
    RetreatLeaf();
  } else {
    --index_;
  }
}

void BpTree::Iterator::SeekForPrev(Slice target) {
  obs::TickBpTreeProbe();
  status_ = Status::OK();
  auto leaf_or = tree_->DescendToLeaf(target, nullptr);
  if (!leaf_or.ok()) {
    status_ = leaf_or.status();
    valid_ = false;
    return;
  }
  LoadLeaf(*leaf_or);
  if (!status_.ok()) return;
  // Position at the last key <= target: find the first key > target and
  // step back one.
  size_t lo = 0, hi = keys_.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (Slice(keys_[mid]).Compare(target) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == 0) {
    RetreatLeaf();
  } else {
    index_ = lo - 1;
    valid_ = true;
  }
}

void BpTree::Iterator::SeekToLast() {
  obs::TickBpTreeProbe();
  status_ = Status::OK();
  // Descend along rightmost children.
  PageId current = tree_->root_;
  for (uint32_t level = tree_->height_; level > 1; --level) {
    auto page_or = tree_->cache_->Fetch(current);
    if (!page_or.ok()) {
      status_ = page_or.status();
      valid_ = false;
      return;
    }
    InternalImage image;
    const Status s = DecodeInternal(page_or->data(), &image);
    if (!s.ok()) {
      status_ = s;
      valid_ = false;
      return;
    }
    current =
        image.entries.empty() ? image.leftmost : image.entries.back().child;
  }
  LoadLeaf(current);
  if (!status_.ok()) return;
  if (valid_) {
    index_ = keys_.size() - 1;
  } else {
    RetreatLeaf();
  }
}

}  // namespace aion::storage
