// A fixed-size-page buffer manager over one file, standing in for Neo4j's
// page cache (Sec 5): B+Trees and snapshot files read/write through it, and
// it provides the out-of-core property — only a bounded number of frames are
// resident, with LRU eviction of unpinned pages and write-back of dirty ones.
//
// Thread-safe: an internal mutex serializes frame management (fetch,
// allocate, evict, write-back), so concurrent B+Tree *readers* are safe;
// structural tree mutation still requires the owning store's exclusive
// latch, as with Neo4j's GBPTree.
#ifndef AION_STORAGE_PAGE_CACHE_H_
#define AION_STORAGE_PAGE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "storage/file.h"
#include "util/status.h"

namespace aion::storage {

using PageId = uint64_t;
inline constexpr PageId kInvalidPageId = ~0ULL;
inline constexpr size_t kPageSize = 8192;

class PageCache;

/// RAII pin over a cached page frame. While a PageHandle is live the frame
/// cannot be evicted. Call MarkDirty() after mutating data().
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(PageCache* cache, size_t frame_index);
  ~PageHandle();

  PageHandle(PageHandle&& other) noexcept;
  PageHandle& operator=(PageHandle&& other) noexcept;
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;

  bool valid() const { return cache_ != nullptr; }
  char* data();
  const char* data() const;
  PageId page_id() const;
  void MarkDirty();

  /// Releases the pin early (also done by the destructor).
  void Release();

 private:
  PageCache* cache_ = nullptr;
  size_t frame_index_ = 0;
};

/// Buffer manager for one file divided into kPageSize pages.
class PageCache {
 public:
  /// Opens (creating if missing) the file at `path` with room for
  /// `capacity_pages` resident frames. When `metrics` is given, hit/miss/
  /// eviction counts are additionally aggregated into the shared
  /// "pagecache.{hits,misses,evictions}" counters (summed across every
  /// cache attached to the same registry).
  static StatusOr<std::unique_ptr<PageCache>> Open(
      const std::string& path, size_t capacity_pages,
      obs::MetricsRegistry* metrics = nullptr);

  ~PageCache();

  PageCache(const PageCache&) = delete;
  PageCache& operator=(const PageCache&) = delete;

  /// Pins the given page, reading it from disk if not resident.
  StatusOr<PageHandle> Fetch(PageId id);

  /// Allocates a fresh zeroed page at the end of the file (or reuses a freed
  /// page) and returns it pinned.
  StatusOr<PageHandle> Allocate(PageId* id_out);

  /// Returns a page to the freelist for reuse. The page must be unpinned.
  Status Free(PageId id);

  /// Writes all dirty frames back to the file (no fsync).
  Status FlushAll();

  /// FlushAll + fdatasync.
  Status Sync();

  /// Number of pages in the file (including meta/freed pages).
  uint64_t num_pages() const {
    return num_pages_.load(std::memory_order_relaxed);
  }

  size_t capacity_pages() const { return capacity_; }
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

  /// On-disk footprint in bytes.
  uint64_t SizeBytes() const { return num_pages() * kPageSize; }

 private:
  friend class PageHandle;

  struct Frame {
    PageId page_id = kInvalidPageId;
    int pin_count = 0;
    bool dirty = false;
    std::unique_ptr<char[]> data;
  };

  PageCache(std::unique_ptr<RandomAccessFile> file, size_t capacity);

  StatusOr<size_t> GetFrameFor(PageId id, bool read_from_disk);
  Status EvictOne();
  Status WriteBack(Frame* frame);
  void Touch(size_t frame_index);
  void Unpin(size_t frame_index);

  mutable std::mutex mu_;
  std::unique_ptr<RandomAccessFile> file_;
  size_t capacity_;
  // Mutated under mu_, but read unlocked by num_pages()/SizeBytes()
  // (size probes from concurrent readers) — hence atomics.
  std::atomic<uint64_t> num_pages_{0};
  std::vector<Frame> frames_;
  std::unordered_map<PageId, size_t> page_table_;  // page id -> frame index
  std::list<size_t> lru_;  // front = most recently used, unpinned+pinned
  std::unordered_map<size_t, std::list<size_t>::iterator> lru_pos_;
  std::vector<PageId> free_pages_;
  std::vector<size_t> free_frames_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  // Registry-shared counters (nullptr when metrics are not wired up).
  obs::Counter* metric_hits_ = nullptr;
  obs::Counter* metric_misses_ = nullptr;
  obs::Counter* metric_evictions_ = nullptr;
};

}  // namespace aion::storage

#endif  // AION_STORAGE_PAGE_CACHE_H_
