// Thin POSIX wrappers for random-access file I/O (pread/pwrite) plus small
// filesystem helpers. Everything in the storage layer goes through these so
// failures surface as Status, never exceptions.
#ifndef AION_STORAGE_FILE_H_
#define AION_STORAGE_FILE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace aion::storage {

using util::Status;
using util::StatusOr;

/// A file opened for random-access reads and writes. Thread-compatible:
/// concurrent pread/pwrite to disjoint ranges are safe (POSIX), but callers
/// must serialize Truncate/Sync against writers themselves.
class RandomAccessFile {
 public:
  /// Opens `path`, creating it if missing.
  static StatusOr<std::unique_ptr<RandomAccessFile>> Open(
      const std::string& path);

  ~RandomAccessFile();

  RandomAccessFile(const RandomAccessFile&) = delete;
  RandomAccessFile& operator=(const RandomAccessFile&) = delete;

  /// Reads exactly `n` bytes at `offset` into `scratch`. Fails with IOError
  /// on short reads (reading past EOF is a short read).
  Status Read(uint64_t offset, size_t n, char* scratch) const;

  /// Writes exactly `n` bytes at `offset`.
  Status Write(uint64_t offset, const char* data, size_t n);

  /// Appends `n` bytes at the current logical end, returning the offset the
  /// data was written at.
  StatusOr<uint64_t> Append(const char* data, size_t n);

  Status Sync();
  Status Truncate(uint64_t size);

  uint64_t size() const { return size_.load(std::memory_order_acquire); }
  const std::string& path() const { return path_; }

 private:
  RandomAccessFile(std::string path, int fd, uint64_t size)
      : path_(std::move(path)), fd_(fd), size_(size) {}

  std::string path_;
  int fd_;
  // Logical size; Append maintains it. Atomic so readers may poll size()
  // (e.g. a scan bounding itself) while a single writer appends.
  std::atomic<uint64_t> size_;
};

/// Filesystem helpers.
Status CreateDirIfMissing(const std::string& path);
Status RemoveFileIfExists(const std::string& path);
/// Atomically replaces `to` with `from` (POSIX rename semantics).
Status RenameFile(const std::string& from, const std::string& to);
Status RemoveDirRecursively(const std::string& path);
bool FileExists(const std::string& path);
StatusOr<uint64_t> FileSize(const std::string& path);

/// Names (not paths) of the entries directly inside directory `path`.
StatusOr<std::vector<std::string>> ListDir(const std::string& path);

/// Creates a fresh unique directory under the system temp dir with the given
/// prefix; used by tests and benchmarks.
StatusOr<std::string> MakeTempDir(const std::string& prefix);

}  // namespace aion::storage

#endif  // AION_STORAGE_FILE_H_
