#include "storage/manifest.h"

#include <algorithm>

#include "storage/file.h"
#include "util/coding.h"

namespace aion::storage {

namespace {

// Rewrite the manifest down to one record once it exceeds this many times
// the size of a single encoded state (with a floor so tiny states don't
// trigger a rewrite every few commits).
constexpr uint64_t kRewriteFactor = 8;
constexpr uint64_t kRewriteMinBytes = 4096;

std::string TempPath(const std::string& path) { return path + ".tmp"; }

}  // namespace

void Manifest::Encode(const ManifestState& state, std::string* dst) {
  util::PutFixed64(dst, state.floor_ts);
  util::PutFixed64(dst, state.next_segment_id);
  util::PutFixed64(dst, state.active_segment_id);
  util::PutFixed32(dst, static_cast<uint32_t>(state.sealed.size()));
  for (const SegmentMeta& seg : state.sealed) {
    util::PutFixed64(dst, seg.id);
    util::PutFixed64(dst, seg.min_ts);
    util::PutFixed64(dst, seg.max_ts);
    util::PutFixed64(dst, seg.records);
    util::PutFixed64(dst, seg.bytes);
    util::PutLengthPrefixedSlice(dst, util::Slice(seg.bloom));
  }
}

StatusOr<ManifestState> Manifest::Decode(util::Slice input) {
  ManifestState state;
  if (input.size() < 28) {
    return Status::Corruption("manifest record too short");
  }
  state.floor_ts = util::DecodeFixed64(input.data());
  state.next_segment_id = util::DecodeFixed64(input.data() + 8);
  state.active_segment_id = util::DecodeFixed64(input.data() + 16);
  const uint32_t count = util::DecodeFixed32(input.data() + 24);
  input.RemovePrefix(28);
  state.sealed.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (input.size() < 40) {
      return Status::Corruption("manifest segment entry truncated");
    }
    SegmentMeta seg;
    seg.id = util::DecodeFixed64(input.data());
    seg.min_ts = util::DecodeFixed64(input.data() + 8);
    seg.max_ts = util::DecodeFixed64(input.data() + 16);
    seg.records = util::DecodeFixed64(input.data() + 24);
    seg.bytes = util::DecodeFixed64(input.data() + 32);
    input.RemovePrefix(40);
    util::Slice bloom;
    if (!util::GetLengthPrefixedSlice(&input, &bloom)) {
      return Status::Corruption("manifest bloom filter truncated");
    }
    seg.bloom.assign(bloom.data(), bloom.size());
    state.sealed.push_back(std::move(seg));
  }
  if (!input.empty()) {
    return Status::Corruption("trailing bytes in manifest record");
  }
  return state;
}

StatusOr<std::unique_ptr<Manifest>> Manifest::Open(const std::string& path) {
  // A leftover side file from a rewrite that crashed before its rename is
  // dead weight — the manifest at `path` is still the current version.
  AION_RETURN_IF_ERROR(RemoveFileIfExists(TempPath(path)));
  AION_ASSIGN_OR_RETURN(auto log, LogFile::Open(path));
  AION_ASSIGN_OR_RETURN(uint64_t end, log->RecoverTail());
  auto manifest =
      std::unique_ptr<Manifest>(new Manifest(path, std::move(log)));
  // Replay every intact version; the last one wins. A record that fails to
  // decode is corruption (its checksum passed, so it was fully committed).
  Status decode_status = Status::OK();
  AION_RETURN_IF_ERROR(manifest->log_->Scan(
      0, end, [&](uint64_t /*offset*/, util::Slice payload) {
        StatusOr<ManifestState> state = Decode(payload);
        if (!state.ok()) {
          decode_status = state.status();
          return false;
        }
        manifest->state_ = *std::move(state);
        return true;
      }));
  AION_RETURN_IF_ERROR(decode_status);
  return manifest;
}

Status Manifest::Commit(const ManifestState& state) {
  std::string encoded;
  Encode(state, &encoded);
  AION_RETURN_IF_ERROR(log_->Append(util::Slice(encoded)).status());
  AION_RETURN_IF_ERROR(log_->Sync());
  state_ = state;
  const uint64_t threshold =
      std::max(kRewriteMinBytes, kRewriteFactor * encoded.size());
  if (log_->SizeBytes() > threshold) {
    // The commit above is already durable; a failed rewrite only means the
    // manifest stays fat. But a rename that succeeded while the reopen
    // failed must be surfaced: log_ would still write to the unlinked old
    // inode, silently dropping every later commit.
    AION_RETURN_IF_ERROR(RewriteTo(encoded));
  }
  return Status::OK();
}

Status Manifest::RewriteTo(const std::string& encoded) {
  const std::string tmp = TempPath(path_);
  AION_RETURN_IF_ERROR(RemoveFileIfExists(tmp));
  AION_ASSIGN_OR_RETURN(auto side, LogFile::Open(tmp));
  AION_RETURN_IF_ERROR(side->Append(util::Slice(encoded)).status());
  AION_RETURN_IF_ERROR(side->Sync());
  side.reset();  // close before renaming over the live manifest
  AION_RETURN_IF_ERROR(RenameFile(tmp, path_));
  AION_ASSIGN_OR_RETURN(log_, LogFile::Open(path_));
  return Status::OK();
}

}  // namespace aion::storage
