#include "storage/page_cache.h"

#include "obs/query_stats.h"

#include <cstring>

#include "util/logging.h"

namespace aion::storage {

// ---------------------------------------------------------------------------
// PageHandle
// ---------------------------------------------------------------------------

PageHandle::PageHandle(PageCache* cache, size_t frame_index)
    : cache_(cache), frame_index_(frame_index) {}

PageHandle::~PageHandle() { Release(); }

PageHandle::PageHandle(PageHandle&& other) noexcept
    : cache_(other.cache_), frame_index_(other.frame_index_) {
  other.cache_ = nullptr;
}

PageHandle& PageHandle::operator=(PageHandle&& other) noexcept {
  if (this != &other) {
    Release();
    cache_ = other.cache_;
    frame_index_ = other.frame_index_;
    other.cache_ = nullptr;
  }
  return *this;
}

char* PageHandle::data() {
  AION_DCHECK(valid());
  return cache_->frames_[frame_index_].data.get();
}

const char* PageHandle::data() const {
  AION_DCHECK(valid());
  return cache_->frames_[frame_index_].data.get();
}

PageId PageHandle::page_id() const {
  AION_DCHECK(valid());
  return cache_->frames_[frame_index_].page_id;
}

void PageHandle::MarkDirty() {
  AION_DCHECK(valid());
  cache_->frames_[frame_index_].dirty = true;
}

void PageHandle::Release() {
  if (cache_ != nullptr) {
    cache_->Unpin(frame_index_);
    cache_ = nullptr;
  }
}

// ---------------------------------------------------------------------------
// PageCache
// ---------------------------------------------------------------------------

PageCache::PageCache(std::unique_ptr<RandomAccessFile> file, size_t capacity)
    : file_(std::move(file)), capacity_(capacity) {
  num_pages_ = file_->size() / kPageSize;
  // Preallocate every frame slot: PageHandles read frames_[i] without the
  // mutex, so the vector must never reallocate. Page buffers themselves are
  // allocated lazily.
  frames_.resize(capacity_);
  free_frames_.reserve(capacity_);
  for (size_t i = capacity_; i > 0; --i) free_frames_.push_back(i - 1);
}

PageCache::~PageCache() {
  // Best effort write-back; errors are already surfaced on explicit Sync.
  (void)FlushAll();
}

StatusOr<std::unique_ptr<PageCache>> PageCache::Open(
    const std::string& path, size_t capacity_pages,
    obs::MetricsRegistry* metrics) {
  if (capacity_pages < 8) capacity_pages = 8;
  AION_ASSIGN_OR_RETURN(auto file, RandomAccessFile::Open(path));
  std::unique_ptr<PageCache> cache(
      new PageCache(std::move(file), capacity_pages));
  if (metrics != nullptr) {
    cache->metric_hits_ = metrics->counter("pagecache.hits");
    cache->metric_misses_ = metrics->counter("pagecache.misses");
    cache->metric_evictions_ = metrics->counter("pagecache.evictions");
  }
  return cache;
}

StatusOr<PageHandle> PageCache::Fetch(PageId id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= num_pages_) {
    return Status::InvalidArgument("page " + std::to_string(id) +
                                   " beyond end of file");
  }
  AION_ASSIGN_OR_RETURN(size_t frame, GetFrameFor(id, /*read_from_disk=*/true));
  return PageHandle(this, frame);
}

StatusOr<PageHandle> PageCache::Allocate(PageId* id_out) {
  std::lock_guard<std::mutex> lock(mu_);
  PageId id;
  if (!free_pages_.empty()) {
    id = free_pages_.back();
    free_pages_.pop_back();
  } else {
    id = num_pages_++;
  }
  AION_ASSIGN_OR_RETURN(size_t frame,
                        GetFrameFor(id, /*read_from_disk=*/false));
  memset(frames_[frame].data.get(), 0, kPageSize);
  frames_[frame].dirty = true;
  *id_out = id;
  return PageHandle(this, frame);
}

Status PageCache::Free(PageId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = page_table_.find(id);
  if (it != page_table_.end()) {
    Frame& frame = frames_[it->second];
    if (frame.pin_count > 0) {
      return Status::FailedPrecondition("freeing a pinned page");
    }
    frame.dirty = false;  // dropped, no write-back needed
    frame.page_id = kInvalidPageId;
    lru_.erase(lru_pos_[it->second]);
    lru_pos_.erase(it->second);
    free_frames_.push_back(it->second);
    page_table_.erase(it);
  }
  free_pages_.push_back(id);
  return Status::OK();
}

StatusOr<size_t> PageCache::GetFrameFor(PageId id, bool read_from_disk) {
  auto it = page_table_.find(id);
  if (it != page_table_.end()) {
    ++hits_;
    if (metric_hits_ != nullptr) metric_hits_->Add();
    obs::TickPageCacheHit();
    Touch(it->second);
    ++frames_[it->second].pin_count;
    return it->second;
  }
  ++misses_;
  if (metric_misses_ != nullptr) metric_misses_->Add();
  obs::TickPageCacheMiss();

  // Find a frame: a recycled free frame, a brand-new frame if under
  // capacity, else evict the LRU victim.
  size_t frame_index;
  if (!free_frames_.empty()) {
    frame_index = free_frames_.back();
    free_frames_.pop_back();
  } else {
    AION_RETURN_IF_ERROR(EvictOne());
    if (free_frames_.empty()) {
      return Status::Internal("eviction did not produce a free frame");
    }
    frame_index = free_frames_.back();
    free_frames_.pop_back();
  }

  Frame& frame = frames_[frame_index];
  if (frame.data == nullptr) frame.data = std::make_unique<char[]>(kPageSize);
  frame.page_id = id;
  frame.pin_count = 1;
  frame.dirty = false;
  if (read_from_disk) {
    const uint64_t offset = id * kPageSize;
    if (offset + kPageSize <= file_->size()) {
      AION_RETURN_IF_ERROR(file_->Read(offset, kPageSize, frame.data.get()));
    } else {
      // Page was allocated but never written back (fresh tail page).
      memset(frame.data.get(), 0, kPageSize);
    }
  }
  page_table_[id] = frame_index;
  lru_.push_front(frame_index);
  lru_pos_[frame_index] = lru_.begin();
  return frame_index;
}

Status PageCache::EvictOne() {
  // Scan from least-recently-used end for an unpinned frame.
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    Frame& frame = frames_[*it];
    if (frame.pin_count == 0) {
      AION_RETURN_IF_ERROR(WriteBack(&frame));
      page_table_.erase(frame.page_id);
      const size_t frame_index = *it;
      lru_.erase(std::next(it).base());
      lru_pos_.erase(frame_index);
      frame.page_id = kInvalidPageId;
      free_frames_.push_back(frame_index);
      ++evictions_;
      if (metric_evictions_ != nullptr) metric_evictions_->Add();
      return Status::OK();
    }
  }
  return Status::FailedPrecondition(
      "page cache exhausted: all frames pinned");
}

Status PageCache::WriteBack(Frame* frame) {
  if (!frame->dirty) return Status::OK();
  AION_RETURN_IF_ERROR(
      file_->Write(frame->page_id * kPageSize, frame->data.get(), kPageSize));
  frame->dirty = false;
  return Status::OK();
}

Status PageCache::FlushAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Frame& frame : frames_) {
    if (frame.page_id != kInvalidPageId) {
      AION_RETURN_IF_ERROR(WriteBack(&frame));
    }
  }
  return Status::OK();
}

Status PageCache::Sync() {
  AION_RETURN_IF_ERROR(FlushAll());
  std::lock_guard<std::mutex> lock(mu_);
  return file_->Sync();
}

void PageCache::Touch(size_t frame_index) {
  auto pos = lru_pos_.find(frame_index);
  if (pos != lru_pos_.end()) {
    lru_.splice(lru_.begin(), lru_, pos->second);
  } else {
    lru_.push_front(frame_index);
    lru_pos_[frame_index] = lru_.begin();
  }
}

void PageCache::Unpin(size_t frame_index) {
  std::lock_guard<std::mutex> lock(mu_);
  Frame& frame = frames_[frame_index];
  AION_DCHECK(frame.pin_count > 0);
  --frame.pin_count;
}

}  // namespace aion::storage
