// The segmented log's manifest: a tiny append-only log (LogFile framing)
// whose records each carry a *complete* encoded copy of the segment set —
// the compaction floor, the active segment, and every sealed segment's
// fence keys, record/byte counts and serialized bloom filter.
//
// Writing a new version is a single Append + Sync; recovery replays the
// file (after RecoverTail drops a torn suffix) and the last intact record
// wins. That makes "drop these segments and advance the retention floor"
// an atomic swap: a crash mid-commit leaves the previous version current,
// and the dropped segments are still referenced, still on disk, and still
// serve queries after reopen.
#ifndef AION_STORAGE_MANIFEST_H_
#define AION_STORAGE_MANIFEST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/log_file.h"
#include "util/status.h"

namespace aion::storage {

/// Metadata of one sealed (immutable) log segment.
struct SegmentMeta {
  uint64_t id = 0;
  /// Fence keys: the smallest and largest record timestamp in the segment.
  uint64_t min_ts = 0;
  uint64_t max_ts = 0;
  uint64_t records = 0;
  uint64_t bytes = 0;
  /// Serialized BloomFilter bit array over the segment's entity keys
  /// (empty = no filter, never skip).
  std::string bloom;
};

/// One complete manifest version. Sealed segments are ordered by id, which
/// is also time order (appends are monotonic).
struct ManifestState {
  /// Records with ts < floor_ts have been compacted away (subsumed by a
  /// snapshot at floor_ts). 0 = nothing compacted yet.
  uint64_t floor_ts = 0;
  uint64_t next_segment_id = 1;
  uint64_t active_segment_id = 0;  // 0 = none yet
  std::vector<SegmentMeta> sealed;
};

class Manifest {
 public:
  /// Opens (creating if missing) the manifest at `path`, recovering a torn
  /// tail and replaying to the last intact version. A fresh manifest starts
  /// with a default ManifestState (no segments).
  static StatusOr<std::unique_ptr<Manifest>> Open(const std::string& path);

  Manifest(const Manifest&) = delete;
  Manifest& operator=(const Manifest&) = delete;

  const ManifestState& state() const { return state_; }

  /// Atomically publishes `state` as the new current version (append +
  /// fdatasync). On failure the previous version stays current.
  ///
  /// The append-only file would otherwise grow by one full-state record per
  /// commit, so once it bloats well past the size of a single record Commit
  /// compacts it: the current record is written alone to a side file which
  /// is fsynced and atomically renamed over the manifest. A crash anywhere
  /// in that sequence leaves either the old multi-record file or the new
  /// single-record file — both decode to the same current version.
  Status Commit(const ManifestState& state);

  uint64_t SizeBytes() const { return log_->SizeBytes(); }

  /// Wire format helpers (exposed for tests).
  static void Encode(const ManifestState& state, std::string* dst);
  static StatusOr<ManifestState> Decode(util::Slice input);

 private:
  Manifest(std::string path, std::unique_ptr<LogFile> log)
      : path_(std::move(path)), log_(std::move(log)) {}

  /// Replaces the on-disk manifest with a single record holding `encoded`
  /// via write-temp + rename, then reopens the log at the new (small) file.
  Status RewriteTo(const std::string& encoded);

  std::string path_;
  std::unique_ptr<LogFile> log_;
  ManifestState state_;
};

}  // namespace aion::storage

#endif  // AION_STORAGE_MANIFEST_H_
