// A disk-backed B+Tree over byte-string keys and values, standing in for
// Neo4j's GBPTree (Sec 5: "Backing Aion's storage with Neo4j's B+Tree
// implementation offers sortedness, scalable accesses, out-of-core storage,
// and seamless integration with the page cache").
//
// Properties the temporal stores rely on:
//  * keys compare bytewise, so composite big-endian-encoded keys (entity id,
//    timestamp) sort by (id, ts) — see util/coding.h;
//  * O(log n) point lookups;
//  * ordered range scans via Iterator::Seek + Next, with leaf chaining;
//  * out-of-core operation through the bounded PageCache.
//
// Concurrency: single-writer / multi-reader, serialized externally by the
// owning store (LineageStore / TimeStore hold a shared_mutex: scans under
// the shared side, inserts under the exclusive side). Concurrent readers
// are safe — frame management is serialized inside the PageCache — but
// iterators are invalidated by writes, so a scan must keep the owning
// store's shared latch until it finishes walking the leaves.
//
// Deletions remove entries without rebalancing (pages may become underfull
// but never corrupt). Aion's history stores are append-only; deletion exists
// for completeness and for the host database's needs.
#ifndef AION_STORAGE_BPTREE_H_
#define AION_STORAGE_BPTREE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "storage/page_cache.h"
#include "util/slice.h"
#include "util/status.h"

namespace aion::storage {

using util::Slice;

class BpTree {
 public:
  struct Options {
    /// Resident frames for this tree's page cache. 8 KiB each.
    size_t cache_pages = 1024;
    /// Optional registry receiving the page cache's hit/miss/eviction
    /// counters (see PageCache::Open).
    obs::MetricsRegistry* metrics = nullptr;
  };

  /// Largest accepted key + value size; guarantees >= 4 entries per page.
  static constexpr size_t kMaxEntrySize = (kPageSize - 64) / 4;

  /// Opens (creating if missing) a tree stored in the single file `path`.
  static StatusOr<std::unique_ptr<BpTree>> Open(const std::string& path,
                                                const Options& options);
  static StatusOr<std::unique_ptr<BpTree>> Open(const std::string& path) {
    return Open(path, Options{});
  }

  ~BpTree();

  BpTree(const BpTree&) = delete;
  BpTree& operator=(const BpTree&) = delete;

  /// Inserts `key` -> `value`, replacing any existing value for `key`.
  Status Put(Slice key, Slice value);

  /// Bulk insert. When `entries` is strictly ascending and every key sorts
  /// after the current maximum (the append pattern of time- and id-ordered
  /// indexes), the rightmost leaf is filled in memory and sealed page by
  /// page — one descent per produced page instead of one per key. Any other
  /// input falls back to per-key Put, so the call is always correct.
  Status AppendSorted(
      const std::vector<std::pair<std::string, std::string>>& entries);

  /// Returns the value stored under `key`, or NotFound.
  StatusOr<std::string> Get(Slice key) const;

  /// Removes `key`. Returns NotFound if absent.
  Status Delete(Slice key);

  /// Total live entries. Readable without the owning store's latch (size
  /// probes from introspection while a writer runs) — hence atomic.
  uint64_t num_entries() const {
    return num_entries_.load(std::memory_order_relaxed);
  }

  /// Tree height (1 = root is a leaf).
  uint32_t height() const { return height_; }

  /// Persists all dirty pages and the meta page.
  Status Flush();

  /// Flush + fdatasync.
  Status Sync();

  /// On-disk footprint in bytes.
  uint64_t SizeBytes() const { return cache_->SizeBytes(); }

  const PageCache& cache() const { return *cache_; }

  /// Forward iterator over entries in key order. Snapshot-per-leaf: each
  /// leaf's content is copied out when entered, so holding an Iterator does
  /// not pin pages, but concurrent writes still invalidate it logically.
  class Iterator {
   public:
    explicit Iterator(const BpTree* tree) : tree_(tree) {}

    /// Positions at the first entry with key >= target.
    void Seek(Slice target);
    /// Positions at the last entry with key <= target (backward lower
    /// bound); invalid if no such entry exists.
    void SeekForPrev(Slice target);
    void SeekToFirst();
    void SeekToLast();

    bool Valid() const { return valid_; }
    void Next();
    void Prev();

    /// Valid() must be true.
    Slice key() const { return Slice(keys_[index_]); }
    Slice value() const { return Slice(values_[index_]); }

    /// Non-OK if an I/O error interrupted iteration (Valid() goes false).
    util::Status status() const { return status_; }

   private:
    void LoadLeaf(PageId leaf);
    void AdvanceLeaf();
    void RetreatLeaf();

    const BpTree* tree_;
    bool valid_ = false;
    util::Status status_;
    PageId next_leaf_ = kInvalidPageId;
    PageId prev_leaf_ = kInvalidPageId;
    std::vector<std::string> keys_;
    std::vector<std::string> values_;
    size_t index_ = 0;
  };

  /// Iterators see the tree as of creation-time content; create after writes
  /// settle.
  Iterator NewIterator() const { return Iterator(this); }

  /// Collects all values with low <= key < high (half-open scan).
  Status ScanRange(Slice low, Slice high,
                   std::vector<std::pair<std::string, std::string>>* out) const;

  /// Zero-copy ordered scans for hot read paths: visits (key, value) pairs
  /// whose slices point into pinned page memory — valid only during the
  /// callback. `fn` returns false to stop. ScanForward starts at the first
  /// key >= target (ascending); ScanBackward at the last key <= target
  /// (descending). No tree mutation may happen during the scan.
  Status ScanForward(Slice target,
                     const std::function<bool(Slice, Slice)>& fn) const;
  Status ScanBackward(Slice target,
                      const std::function<bool(Slice, Slice)>& fn) const;

 private:
  friend class Iterator;

  // Decoded in-memory image of one page, used for mutations.
  struct LeafEntry {
    std::string key;
    std::string value;
  };
  struct InternalEntry {
    std::string key;
    PageId child;
  };
  struct LeafImage {
    PageId next = kInvalidPageId;
    PageId prev = kInvalidPageId;
    std::vector<LeafEntry> entries;
    size_t EncodedSize() const;
  };
  struct InternalImage {
    PageId leftmost = kInvalidPageId;
    std::vector<InternalEntry> entries;
    size_t EncodedSize() const;
  };

  explicit BpTree(std::unique_ptr<PageCache> cache);

  Status InitNew();
  Status LoadMeta();
  Status StoreMeta();

  StatusOr<PageId> DescendToLeaf(Slice key,
                                 std::vector<PageId>* path) const;

  static Status DecodeLeaf(const char* page, LeafImage* image);
  static Status DecodeInternal(const char* page, InternalImage* image);
  static void EncodeLeaf(const LeafImage& image, char* page);
  static void EncodeInternal(const InternalImage& image, char* page);

  /// Inserts (key, child) into the parent chain after a child split.
  Status InsertIntoParents(std::vector<PageId>* path, std::string sep_key,
                           PageId new_child);

  std::unique_ptr<PageCache> cache_;
  PageId root_ = kInvalidPageId;
  uint32_t height_ = 1;
  std::atomic<uint64_t> num_entries_{0};
  bool meta_dirty_ = false;
};

}  // namespace aion::storage

#endif  // AION_STORAGE_BPTREE_H_
