// GraphDatabase: the host transactional graph DBMS that Aion extends — a
// standalone stand-in for the Neo4j kernel (see DESIGN.md substitutions).
// It owns the *current* graph only; history is Aion's job, which is exactly
// the decoupling the paper argues for ("decouples temporal storage from the
// current working graph", Sec 4).
//
// Semantics:
//  * write transactions buffer updates and validate + apply atomically at
//    Commit() under the commit latch (read-committed isolation, like
//    Neo4j's default);
//  * commit timestamps come from a monotonic logical clock; every update in
//    a transaction carries the same timestamp;
//  * committed batches are appended to a write-ahead log before listeners
//    fire; recovery replays the WAL (Sec 5.1 fault tolerance);
//  * after-commit listeners observe transactions in commit order.
#ifndef AION_TXN_GRAPHDB_H_
#define AION_TXN_GRAPHDB_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "graph/memgraph.h"
#include "graph/update.h"
#include "obs/metrics.h"
#include "storage/log_file.h"
#include "txn/listener.h"
#include "util/status.h"

namespace aion::txn {

using graph::GraphUpdate;
using graph::NodeId;
using graph::RelId;
using graph::Timestamp;
using util::Status;
using util::StatusOr;

class GraphDatabase;

/// A buffered write transaction. Updates are validated and applied
/// atomically at Commit(); before that, nothing is visible to readers.
class Transaction {
 public:
  ~Transaction();

  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  /// Creates a node with a db-assigned id; returns the id immediately (ids
  /// are reserved even if the transaction later aborts, like Neo4j).
  NodeId CreateNode(std::vector<std::string> labels = {},
                    graph::PropertySet props = {});

  /// Creates a relationship with a db-assigned id.
  RelId CreateRelationship(NodeId src, NodeId tgt, std::string type,
                           graph::PropertySet props = {});

  void DeleteNode(NodeId id);
  void DeleteRelationship(RelId id);
  void SetNodeProperty(NodeId id, std::string key, graph::PropertyValue v);
  void RemoveNodeProperty(NodeId id, std::string key);
  void AddNodeLabel(NodeId id, std::string label);
  void RemoveNodeLabel(NodeId id, std::string label);
  void SetRelationshipProperty(RelId id, std::string key,
                               graph::PropertyValue v);
  void RemoveRelationshipProperty(RelId id, std::string key);

  /// Appends a raw update (used by loaders that manage ids themselves).
  void Add(GraphUpdate update);

  size_t num_updates() const { return updates_.size(); }

  /// Validates and applies the buffered updates atomically. On failure the
  /// graph is untouched and the transaction may be retried or dropped.
  /// Returns the commit timestamp.
  StatusOr<Timestamp> Commit();

  /// Discards the buffer. Also implied by destruction without Commit.
  void Abort();

 private:
  friend class GraphDatabase;
  explicit Transaction(GraphDatabase* db) : db_(db) {}

  GraphDatabase* db_;
  std::vector<GraphUpdate> updates_;
  bool done_ = false;
};

class GraphDatabase {
 public:
  struct Options {
    /// Directory for the WAL. Empty = in-memory database (no durability).
    std::string data_dir;
    /// fdatasync the WAL on every commit group (off by default; group
    /// commit and OS page cache semantics are fine for the experiments).
    bool sync_commits = false;
    /// Group commit: the leader drains up to this many queued transactions
    /// into one WAL append (+ one fsync when sync_commits). 1 disables
    /// grouping. Must be >= 1.
    size_t group_commit_max_batch = 64;
    /// When > 0 the leader waits up to this long for followers to fill the
    /// group before committing (latency traded for batching). 0 = commit
    /// whatever is queued immediately. Must be <= 1'000'000 (1 s).
    uint64_t group_commit_max_wait_micros = 0;
  };

  /// Opens the database, replaying any existing WAL (crash recovery).
  static StatusOr<std::unique_ptr<GraphDatabase>> Open(const Options& options);
  static StatusOr<std::unique_ptr<GraphDatabase>> OpenInMemory() {
    return Open(Options{});
  }

  GraphDatabase(const GraphDatabase&) = delete;
  GraphDatabase& operator=(const GraphDatabase&) = delete;

  /// Starts a write transaction.
  std::unique_ptr<Transaction> Begin() {
    return std::unique_ptr<Transaction>(new Transaction(this));
  }

  /// Registers an after-commit listener (e.g. Aion). Not thread-safe with
  /// concurrent commits; register during setup.
  void RegisterListener(TransactionEventListener* listener) {
    listeners_.push_back(listener);
  }

  // -------------------------------------------------------------------
  // Reads (read-committed: shared lock over the current graph)
  // -------------------------------------------------------------------

  /// Runs `fn` with shared access to the current graph.
  void WithReadLock(
      const std::function<void(const graph::MemoryGraph&)>& fn) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    fn(*current_);
  }

  /// Copying point reads.
  std::optional<graph::Node> GetNode(NodeId id) const;
  std::optional<graph::Relationship> GetRelationship(RelId id) const;
  size_t NumNodes() const;
  size_t NumRelationships() const;

  /// Deep copy of the current graph (snapshot replication seed).
  std::unique_ptr<graph::MemoryGraph> CloneCurrent() const;

  /// Last committed transaction timestamp (0 = none).
  Timestamp LastCommitTimestamp() const { return clock_.load(); }

  /// Replays committed update batches with commit_ts > `after_ts` from the
  /// WAL in commit order (Aion recovery: "replaying the transaction log from
  /// the last persisted transaction time"). In-memory databases have no WAL
  /// and return FailedPrecondition.
  Status ReplayUpdatesSince(
      Timestamp after_ts,
      const std::function<void(const TransactionData&)>& fn) const;

  /// Persists the current graph as a fixed-size-record checkpoint
  /// (Neo4j-style store files; see txn/record_store.h). Subsequent Open()
  /// loads the checkpoint and replays only the WAL tail. Requires a
  /// data_dir.
  Status Checkpoint();

  /// WAL size on disk (0 for in-memory).
  uint64_t WalBytes() const { return wal_ ? wal_->SizeBytes() : 0; }

  /// Checkpoint store files size on disk (0 if never checkpointed).
  uint64_t CheckpointBytes() const;

  /// Total on-disk footprint: store files + transaction log.
  uint64_t TotalDiskBytes() const { return WalBytes() + CheckpointBytes(); }

  /// Next ids (diagnostics / loaders).
  NodeId PeekNextNodeId() const { return next_node_id_.load(); }
  RelId PeekNextRelId() const { return next_rel_id_.load(); }

  /// Committed transactions since Open.
  uint64_t CommitCount() const {
    return commits_.load(std::memory_order_relaxed);
  }
  /// Leader rounds since Open; CommitCount / GroupCommitRounds is the mean
  /// group size.
  uint64_t GroupCommitRounds() const {
    return commit_rounds_.load(std::memory_order_relaxed);
  }
  /// WAL fdatasync calls since Open (one per group when sync_commits).
  uint64_t WalSyncCount() const {
    return wal_syncs_.load(std::memory_order_relaxed);
  }

  /// Resolves txn.* instruments (txn.wal_sync_nanos histogram,
  /// txn.commit_queue_age_nanos gauge) from `registry`, which must outlive
  /// the database. Call during setup (AionStore does, when it shares its
  /// registry with the host); null-safe to skip.
  void AttachMetrics(obs::MetricsRegistry* registry);

  /// Group-commit queue age, measured: wall-clock nanoseconds the oldest
  /// queued-but-uncommitted transaction has been waiting, 0 when the queue
  /// is empty. Also refreshes the txn.commit_queue_age_nanos gauge when
  /// metrics are attached.
  uint64_t CommitQueueAgeNanos();

 private:
  friend class Transaction;

  /// One committer's seat in the group-commit queue. `ts`, `status` and
  /// `done` are written by the leader and read by the owning committer,
  /// both under group_mu_.
  struct PendingCommit {
    std::vector<GraphUpdate> updates;
    Timestamp ts = 0;
    Status status;
    bool done = false;
    uint64_t enqueue_nanos = 0;  // when this seat joined the queue
  };

  GraphDatabase() : current_(std::make_unique<graph::MemoryGraph>()) {}

  StatusOr<Timestamp> CommitBatch(std::vector<GraphUpdate>&& updates);

  /// Leader path: validates, timestamps, WAL-appends (one write + at most
  /// one fsync) and applies a whole group. Runs under commit_mu_ but not
  /// group_mu_, so new committers can enqueue meanwhile.
  void ProcessCommitGroup(const std::vector<PendingCommit*>& group);

  NodeId AllocateNodeId() { return next_node_id_.fetch_add(1); }
  RelId AllocateRelId() { return next_rel_id_.fetch_add(1); }

  Options options_;
  mutable std::shared_mutex mu_;  // guards current_
  std::unique_ptr<graph::MemoryGraph> current_;
  std::mutex commit_mu_;  // held by the leader for WAL + apply + listeners
  std::mutex group_mu_;   // guards the group-commit queue and leader flag
  std::condition_variable group_cv_;
  std::deque<PendingCommit*> commit_queue_;
  bool leader_active_ = false;
  std::unique_ptr<storage::LogFile> wal_;
  std::vector<TransactionEventListener*> listeners_;
  std::atomic<Timestamp> clock_{0};
  std::atomic<NodeId> next_node_id_{0};
  std::atomic<RelId> next_rel_id_{0};
  std::atomic<uint64_t> commits_{0};
  std::atomic<uint64_t> commit_rounds_{0};
  std::atomic<uint64_t> wal_syncs_{0};

  // Observability (resolved once in AttachMetrics; null when not attached).
  obs::Histogram* metric_wal_sync_ = nullptr;       // txn.wal_sync_nanos
  // txn.commit_queue_age_nanos
  obs::Gauge* metric_commit_queue_age_ = nullptr;
};

}  // namespace aion::txn

#endif  // AION_TXN_GRAPHDB_H_
