#include "txn/record_store.h"

#include <cstring>

#include "storage/file.h"
#include "storage/string_pool.h"
#include "util/coding.h"

namespace aion::txn {

using graph::MemoryGraph;
using graph::Node;
using graph::Relationship;
using graph::Timestamp;
using util::Status;
using util::StatusOr;

namespace {

// Record formats. Every record is fixed-size so record id * size gives the
// file offset (Neo4j-style).
constexpr size_t kNodeRecordSize = 64;
constexpr size_t kRelRecordSize = 64;
constexpr uint8_t kInUse = 1;
// Inline label slots per node record; the overflow goes to props.store.
constexpr size_t kInlineLabels = 4;

// Node record:
//   [0]      in_use
//   [1]      inline label count (<= kInlineLabels; 0xff = overflowed)
//   [4..19]  4 x u32 label refs
//   [24..31] property pointer into props.store (u64; ~0 = none)
//   [32..39] label overflow pointer (u64; ~0 = none)
// Relationship record:
//   [0]      in_use
//   [8..15]  src, [16..23] tgt (u64)
//   [24..27] type ref (u32)
//   [32..39] property pointer (u64; ~0 = none)
//   [40..55] reserved chain pointers (next-out/next-in, unused here but
//            part of the doubly-linked-list format the paper describes)
constexpr uint64_t kNoPointer = ~0ULL;

struct Files {
  std::unique_ptr<storage::RandomAccessFile> nodes;
  std::unique_ptr<storage::RandomAccessFile> rels;
  std::unique_ptr<storage::RandomAccessFile> props;
  std::unique_ptr<storage::StringPool> strings;
};

StatusOr<Files> OpenFiles(const std::string& dir) {
  AION_RETURN_IF_ERROR(storage::CreateDirIfMissing(dir));
  Files files;
  AION_ASSIGN_OR_RETURN(files.nodes,
                        storage::RandomAccessFile::Open(dir + "/nodes.store"));
  AION_ASSIGN_OR_RETURN(files.rels,
                        storage::RandomAccessFile::Open(dir + "/rels.store"));
  AION_ASSIGN_OR_RETURN(files.props,
                        storage::RandomAccessFile::Open(dir + "/props.store"));
  AION_ASSIGN_OR_RETURN(files.strings,
                        storage::StringPool::Open(dir + "/strings"));
  return files;
}

/// Appends a property-set payload to props.store; returns its pointer.
StatusOr<uint64_t> AppendProps(Files* files, const graph::PropertySet& props) {
  if (props.empty()) return kNoPointer;
  std::string payload;
  util::PutVarint64(&payload, props.size());
  for (const auto& [key, value] : props) {
    AION_ASSIGN_OR_RETURN(storage::StringRef key_ref,
                          files->strings->Intern(key));
    util::PutFixed32(&payload, key_ref);
    value.EncodeTo(&payload);
  }
  std::string framed;
  util::PutVarint64(&framed, payload.size());
  framed += payload;
  return files->props->Append(framed.data(), framed.size());
}

StatusOr<graph::PropertySet> ReadProps(const Files& files, uint64_t pointer) {
  graph::PropertySet props;
  if (pointer == kNoPointer) return props;
  // Read the varint length (up to 10 bytes) then the payload.
  char len_buf[10];
  const size_t probe =
      std::min<uint64_t>(10, files.props->size() - pointer);
  AION_RETURN_IF_ERROR(files.props->Read(pointer, probe, len_buf));
  util::Slice len_slice(len_buf, probe);
  uint64_t length;
  if (!util::GetVarint64(&len_slice, &length)) {
    return Status::Corruption("bad props length");
  }
  const size_t header = probe - len_slice.size();
  std::string payload(length, '\0');
  AION_RETURN_IF_ERROR(
      files.props->Read(pointer + header, length, payload.data()));
  util::Slice input(payload);
  uint64_t count;
  if (!util::GetVarint64(&input, &count)) {
    return Status::Corruption("bad props count");
  }
  for (uint64_t i = 0; i < count; ++i) {
    if (input.size() < 4) return Status::Corruption("bad prop key ref");
    const uint32_t key_ref = util::DecodeFixed32(input.data());
    input.RemovePrefix(4);
    AION_ASSIGN_OR_RETURN(std::string key, files.strings->Lookup(key_ref));
    AION_ASSIGN_OR_RETURN(graph::PropertyValue value,
                          graph::PropertyValue::DecodeFrom(&input));
    props.Set(key, std::move(value));
  }
  return props;
}

/// Appends an overflow label list; returns its pointer.
StatusOr<uint64_t> AppendLabels(Files* files,
                                const std::vector<std::string>& labels) {
  std::string payload;
  util::PutVarint64(&payload, labels.size());
  for (const std::string& label : labels) {
    AION_ASSIGN_OR_RETURN(storage::StringRef ref,
                          files->strings->Intern(label));
    util::PutFixed32(&payload, ref);
  }
  std::string framed;
  util::PutVarint64(&framed, payload.size());
  framed += payload;
  return files->props->Append(framed.data(), framed.size());
}

StatusOr<std::vector<std::string>> ReadLabels(const Files& files,
                                              uint64_t pointer) {
  char len_buf[10];
  const size_t probe =
      std::min<uint64_t>(10, files.props->size() - pointer);
  AION_RETURN_IF_ERROR(files.props->Read(pointer, probe, len_buf));
  util::Slice len_slice(len_buf, probe);
  uint64_t length;
  if (!util::GetVarint64(&len_slice, &length)) {
    return Status::Corruption("bad labels length");
  }
  const size_t header = probe - len_slice.size();
  std::string payload(length, '\0');
  AION_RETURN_IF_ERROR(
      files.props->Read(pointer + header, length, payload.data()));
  util::Slice input(payload);
  uint64_t count;
  if (!util::GetVarint64(&input, &count)) {
    return Status::Corruption("bad labels count");
  }
  std::vector<std::string> labels;
  labels.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    if (input.size() < 4) return Status::Corruption("bad label ref");
    AION_ASSIGN_OR_RETURN(std::string label,
                          files.strings->Lookup(util::DecodeFixed32(input.data())));
    input.RemovePrefix(4);
    labels.push_back(std::move(label));
  }
  return labels;
}

}  // namespace

Status RecordStore::Write(const MemoryGraph& graph, Timestamp ts,
                          const std::string& dir) {
  // Start fresh: a checkpoint fully replaces the previous one.
  AION_RETURN_IF_ERROR(storage::RemoveDirRecursively(dir));
  AION_ASSIGN_OR_RETURN(Files files, OpenFiles(dir));

  // Pre-size the fixed files (zeroed records read as not-in-use).
  AION_RETURN_IF_ERROR(
      files.nodes->Truncate(graph.NodeCapacity() * kNodeRecordSize));
  AION_RETURN_IF_ERROR(
      files.rels->Truncate(graph.RelCapacity() * kRelRecordSize));

  Status status = Status::OK();
  graph.ForEachNode([&](const Node& node) {
    if (!status.ok()) return;
    char record[kNodeRecordSize] = {0};
    record[0] = kInUse;
    if (node.labels.size() <= kInlineLabels) {
      record[1] = static_cast<char>(node.labels.size());
      for (size_t i = 0; i < node.labels.size(); ++i) {
        auto ref = files.strings->Intern(node.labels[i]);
        if (!ref.ok()) {
          status = ref.status();
          return;
        }
        util::EncodeFixed32(record + 4 + i * 4, *ref);
      }
      util::EncodeFixed64(record + 32, kNoPointer);
    } else {
      record[1] = static_cast<char>(0xff);
      auto pointer = AppendLabels(&files, node.labels);
      if (!pointer.ok()) {
        status = pointer.status();
        return;
      }
      util::EncodeFixed64(record + 32, *pointer);
    }
    auto props = AppendProps(&files, node.props);
    if (!props.ok()) {
      status = props.status();
      return;
    }
    util::EncodeFixed64(record + 24, *props);
    status = files.nodes->Write(node.id * kNodeRecordSize, record,
                                kNodeRecordSize);
  });
  AION_RETURN_IF_ERROR(status);

  graph.ForEachRelationship([&](const Relationship& rel) {
    if (!status.ok()) return;
    char record[kRelRecordSize] = {0};
    record[0] = kInUse;
    util::EncodeFixed64(record + 8, rel.src);
    util::EncodeFixed64(record + 16, rel.tgt);
    auto type_ref = files.strings->Intern(rel.type);
    if (!type_ref.ok()) {
      status = type_ref.status();
      return;
    }
    util::EncodeFixed32(record + 24, *type_ref);
    auto props = AppendProps(&files, rel.props);
    if (!props.ok()) {
      status = props.status();
      return;
    }
    util::EncodeFixed64(record + 32, *props);
    status =
        files.rels->Write(rel.id * kRelRecordSize, record, kRelRecordSize);
  });
  AION_RETURN_IF_ERROR(status);

  // Meta: checkpoint timestamp.
  AION_ASSIGN_OR_RETURN(auto meta,
                        storage::RandomAccessFile::Open(dir + "/meta"));
  char buf[8];
  util::EncodeFixed64(buf, ts);
  AION_RETURN_IF_ERROR(meta->Write(0, buf, 8));
  AION_RETURN_IF_ERROR(meta->Sync());
  return Status::OK();
}

StatusOr<std::unique_ptr<MemoryGraph>> RecordStore::Read(
    const std::string& dir, Timestamp* ts) {
  if (!Exists(dir)) return Status::NotFound("no checkpoint in " + dir);
  AION_ASSIGN_OR_RETURN(Files files, OpenFiles(dir));
  AION_ASSIGN_OR_RETURN(auto meta,
                        storage::RandomAccessFile::Open(dir + "/meta"));
  char buf[8];
  AION_RETURN_IF_ERROR(meta->Read(0, 8, buf));
  *ts = util::DecodeFixed64(buf);

  auto graph = std::make_unique<MemoryGraph>();
  const uint64_t num_node_records = files.nodes->size() / kNodeRecordSize;
  std::string record(kNodeRecordSize, '\0');
  for (uint64_t id = 0; id < num_node_records; ++id) {
    AION_RETURN_IF_ERROR(files.nodes->Read(id * kNodeRecordSize,
                                           kNodeRecordSize, record.data()));
    if (record[0] != kInUse) continue;
    std::vector<std::string> labels;
    const uint8_t inline_count = static_cast<uint8_t>(record[1]);
    if (inline_count == 0xff) {
      AION_ASSIGN_OR_RETURN(
          labels, ReadLabels(files, util::DecodeFixed64(record.data() + 32)));
    } else {
      for (uint8_t i = 0; i < inline_count; ++i) {
        AION_ASSIGN_OR_RETURN(
            std::string label,
            files.strings->Lookup(
                util::DecodeFixed32(record.data() + 4 + i * 4)));
        labels.push_back(std::move(label));
      }
    }
    AION_ASSIGN_OR_RETURN(
        graph::PropertySet props,
        ReadProps(files, util::DecodeFixed64(record.data() + 24)));
    AION_RETURN_IF_ERROR(graph->Apply(
        graph::GraphUpdate::AddNode(id, std::move(labels), std::move(props))));
  }

  const uint64_t num_rel_records = files.rels->size() / kRelRecordSize;
  record.resize(kRelRecordSize);
  for (uint64_t id = 0; id < num_rel_records; ++id) {
    AION_RETURN_IF_ERROR(files.rels->Read(id * kRelRecordSize,
                                          kRelRecordSize, record.data()));
    if (record[0] != kInUse) continue;
    AION_ASSIGN_OR_RETURN(
        std::string type,
        files.strings->Lookup(util::DecodeFixed32(record.data() + 24)));
    AION_ASSIGN_OR_RETURN(
        graph::PropertySet props,
        ReadProps(files, util::DecodeFixed64(record.data() + 32)));
    AION_RETURN_IF_ERROR(graph->Apply(graph::GraphUpdate::AddRelationship(
        id, util::DecodeFixed64(record.data() + 8),
        util::DecodeFixed64(record.data() + 16), std::move(type),
        std::move(props))));
  }
  return graph;
}

uint64_t RecordStore::SizeBytes(const std::string& dir) {
  uint64_t total = 0;
  for (const char* file :
       {"/nodes.store", "/rels.store", "/props.store", "/strings", "/meta"}) {
    auto size = storage::FileSize(dir + file);
    if (size.ok()) total += *size;
  }
  return total;
}

bool RecordStore::Exists(const std::string& dir) {
  return storage::FileExists(dir + "/meta");
}

}  // namespace aion::txn
