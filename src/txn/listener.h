// Transaction event listeners (Sec 5.1): "Graph updates are passed to Aion
// from Neo4j via an event listener that is registered with the database
// management service. The event listener is triggered in the after-commit
// phase of each write transaction" — guaranteeing valid transaction times
// and a consistent LPG after every commit.
#ifndef AION_TXN_LISTENER_H_
#define AION_TXN_LISTENER_H_

#include <vector>

#include "graph/types.h"
#include "graph/update.h"

namespace aion::txn {

/// The after-commit payload: every update applied by one transaction, all
/// carrying the same commit timestamp.
struct TransactionData {
  graph::Timestamp commit_ts = 0;
  const std::vector<graph::GraphUpdate>& updates;
};

class TransactionEventListener {
 public:
  virtual ~TransactionEventListener() = default;

  /// Invoked after a write transaction commits, in commit order. Called
  /// under the database commit latch: implementations must be fast on this
  /// path (Aion appends to the TimeStore synchronously and defers the
  /// LineageStore cascade to background workers).
  virtual void AfterCommit(const TransactionData& data) = 0;
};

}  // namespace aion::txn

#endif  // AION_TXN_LISTENER_H_
