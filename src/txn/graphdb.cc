#include "txn/graphdb.h"

#include <algorithm>
#include <chrono>

#include "graph/cow_graph.h"
#include "txn/record_store.h"
#include "storage/file.h"
#include "util/logging.h"

namespace aion::txn {

// ---------------------------------------------------------------------------
// Transaction
// ---------------------------------------------------------------------------

Transaction::~Transaction() = default;

NodeId Transaction::CreateNode(std::vector<std::string> labels,
                               graph::PropertySet props) {
  const NodeId id = db_->AllocateNodeId();
  updates_.push_back(
      GraphUpdate::AddNode(id, std::move(labels), std::move(props)));
  return id;
}

RelId Transaction::CreateRelationship(NodeId src, NodeId tgt,
                                      std::string type,
                                      graph::PropertySet props) {
  const RelId id = db_->AllocateRelId();
  updates_.push_back(GraphUpdate::AddRelationship(id, src, tgt,
                                                  std::move(type),
                                                  std::move(props)));
  return id;
}

void Transaction::DeleteNode(NodeId id) {
  updates_.push_back(GraphUpdate::DeleteNode(id));
}
void Transaction::DeleteRelationship(RelId id) {
  updates_.push_back(GraphUpdate::DeleteRelationship(id));
}
void Transaction::SetNodeProperty(NodeId id, std::string key,
                                  graph::PropertyValue v) {
  updates_.push_back(
      GraphUpdate::SetNodeProperty(id, std::move(key), std::move(v)));
}
void Transaction::RemoveNodeProperty(NodeId id, std::string key) {
  updates_.push_back(GraphUpdate::RemoveNodeProperty(id, std::move(key)));
}
void Transaction::AddNodeLabel(NodeId id, std::string label) {
  updates_.push_back(GraphUpdate::AddNodeLabel(id, std::move(label)));
}
void Transaction::RemoveNodeLabel(NodeId id, std::string label) {
  updates_.push_back(GraphUpdate::RemoveNodeLabel(id, std::move(label)));
}
void Transaction::SetRelationshipProperty(RelId id, std::string key,
                                          graph::PropertyValue v) {
  updates_.push_back(
      GraphUpdate::SetRelationshipProperty(id, std::move(key), std::move(v)));
}
void Transaction::RemoveRelationshipProperty(RelId id, std::string key) {
  updates_.push_back(
      GraphUpdate::RemoveRelationshipProperty(id, std::move(key)));
}

void Transaction::Add(GraphUpdate update) {
  updates_.push_back(std::move(update));
}

StatusOr<Timestamp> Transaction::Commit() {
  if (done_) {
    return Status::FailedPrecondition("transaction already finished");
  }
  done_ = true;
  return db_->CommitBatch(std::move(updates_));
}

void Transaction::Abort() {
  updates_.clear();
  done_ = true;
}

// ---------------------------------------------------------------------------
// GraphDatabase
// ---------------------------------------------------------------------------

StatusOr<std::unique_ptr<GraphDatabase>> GraphDatabase::Open(
    const Options& options) {
  if (options.group_commit_max_batch == 0) {
    return Status::InvalidArgument("group_commit_max_batch must be >= 1");
  }
  if (options.group_commit_max_wait_micros > 1'000'000) {
    return Status::InvalidArgument(
        "group_commit_max_wait_micros must be <= 1'000'000 (1 s)");
  }
  std::unique_ptr<GraphDatabase> db(new GraphDatabase());
  db->options_ = options;
  if (!options.data_dir.empty()) {
    AION_RETURN_IF_ERROR(storage::CreateDirIfMissing(options.data_dir));
    AION_ASSIGN_OR_RETURN(db->wal_,
                          storage::LogFile::Open(options.data_dir + "/wal"));
    // A crash mid-append can leave a torn record at the tail; drop it (and
    // anything after it) before replaying the good prefix.
    AION_RETURN_IF_ERROR(db->wal_->RecoverTail().status());
    // Recovery: load the checkpoint (if any), then replay the WAL tail.
    Timestamp checkpoint_ts = 0;
    const std::string store_dir = options.data_dir + "/store";
    if (RecordStore::Exists(store_dir)) {
      AION_ASSIGN_OR_RETURN(db->current_,
                            RecordStore::Read(store_dir, &checkpoint_ts));
    }
    Timestamp max_ts = checkpoint_ts;
    NodeId max_node = db->current_->NodeCapacity();
    RelId max_rel = db->current_->RelCapacity();
    Status replay_status = Status::OK();
    AION_RETURN_IF_ERROR(db->wal_->Scan(
        0, db->wal_->end_offset(),
        [&](uint64_t /*offset*/, util::Slice payload) {
          auto batch = graph::DecodeUpdateBatch(payload);
          if (!batch.ok()) {
            replay_status = batch.status();
            return false;
          }
          for (const GraphUpdate& u : *batch) {
            if (u.ts <= checkpoint_ts) {
              // Already reflected in the checkpoint; only track id bounds.
              max_ts = std::max(max_ts, u.ts);
              if (graph::IsNodeOp(u.op)) {
                max_node = std::max(max_node, u.id + 1);
              } else {
                max_rel = std::max(max_rel, u.id + 1);
                max_node = std::max({max_node, u.src + 1, u.tgt + 1});
              }
              continue;
            }
            const Status s = db->current_->Apply(u);
            if (!s.ok()) {
              replay_status = s;
              return false;
            }
            max_ts = std::max(max_ts, u.ts);
            if (graph::IsNodeOp(u.op)) {
              max_node = std::max(max_node, u.id + 1);
            } else {
              max_rel = std::max(max_rel, u.id + 1);
              max_node = std::max({max_node, u.src + 1, u.tgt + 1});
            }
          }
          return true;
        }));
    AION_RETURN_IF_ERROR(replay_status);
    db->clock_.store(max_ts);
    db->next_node_id_.store(max_node);
    db->next_rel_id_.store(max_rel);
  }
  return db;
}

StatusOr<Timestamp> GraphDatabase::CommitBatch(
    std::vector<GraphUpdate>&& updates) {
  if (updates.empty()) {
    return Status::InvalidArgument("empty transaction");
  }
  PendingCommit req;
  req.updates = std::move(updates);
  req.enqueue_nanos = obs::NowNanos();

  std::unique_lock<std::mutex> lock(group_mu_);
  commit_queue_.push_back(&req);
  // Wake a leader parked in its accumulation window so it can recheck the
  // group size.
  group_cv_.notify_all();
  // Park until a leader commits this request, or until this committer is at
  // the head of the queue with no leader running — then it becomes leader.
  group_cv_.wait(lock, [&] {
    return req.done || (!leader_active_ && !commit_queue_.empty() &&
                        commit_queue_.front() == &req);
  });
  if (!req.done) {
    leader_active_ = true;
    const size_t max_batch = options_.group_commit_max_batch;
    if (options_.group_commit_max_wait_micros > 0 &&
        commit_queue_.size() < max_batch) {
      // Accumulation window: trade a bounded latency hit for batching.
      group_cv_.wait_for(
          lock,
          std::chrono::microseconds(options_.group_commit_max_wait_micros),
          [&] { return commit_queue_.size() >= max_batch; });
    }
    std::vector<PendingCommit*> group;
    group.reserve(std::min(max_batch, commit_queue_.size()));
    while (!commit_queue_.empty() && group.size() < max_batch) {
      group.push_back(commit_queue_.front());
      commit_queue_.pop_front();
    }
    lock.unlock();
    ProcessCommitGroup(group);
    lock.lock();
    leader_active_ = false;
    for (PendingCommit* p : group) p->done = true;
    group_cv_.notify_all();
  }
  group_cv_.wait(lock, [&] { return req.done; });
  if (!req.status.ok()) return req.status;
  return req.ts;
}

void GraphDatabase::ProcessCommitGroup(
    const std::vector<PendingCommit*>& group) {
  std::lock_guard<std::mutex> commit_lock(commit_mu_);

  // Validate every transaction against the current graph through one CoW
  // overlay, assigning consecutive commit timestamps to the accepted ones.
  // A transaction that fails validation fails alone; the overlay may hold
  // its partial effects, so it is rebuilt from the accepted prefix.
  Timestamp next_ts = clock_.load();
  // Non-owning aliasing pointer; safe because commits are serialized and
  // writers are the only mutators.
  std::shared_ptr<const graph::MemoryGraph> current_view(
      std::shared_ptr<void>(), current_.get());
  auto overlay = std::make_unique<graph::CowGraph>(current_view);
  std::vector<PendingCommit*> accepted;
  accepted.reserve(group.size());
  for (PendingCommit* p : group) {
    const Timestamp ts = next_ts + 1;
    for (GraphUpdate& u : p->updates) u.ts = ts;
    Status s = overlay->ApplyAll(p->updates);
    if (!s.ok()) {
      p->status = std::move(s);
      overlay = std::make_unique<graph::CowGraph>(current_view);
      for (PendingCommit* a : accepted) {
        AION_CHECK_OK(overlay->ApplyAll(a->updates));
      }
      continue;
    }
    p->ts = ts;
    next_ts = ts;
    accepted.push_back(p);
  }
  if (accepted.empty()) return;

  // Durability before visibility: one WAL write and at most one fsync cover
  // the whole group, but every transaction keeps its own record so replay
  // and RecoverFrom observe per-transaction boundaries.
  if (wal_ != nullptr) {
    std::vector<std::string> payloads;
    payloads.reserve(accepted.size());
    for (PendingCommit* p : accepted) {
      std::string payload;
      graph::EncodeUpdateBatch(p->updates, &payload);
      payloads.push_back(std::move(payload));
    }
    Status s = wal_->AppendBatch(payloads, nullptr).status();
    if (s.ok() && options_.sync_commits) {
      wal_syncs_.fetch_add(1, std::memory_order_relaxed);
      obs::ScopedLatency sync_latency(metric_wal_sync_);
      s = wal_->Sync();
    }
    if (!s.ok()) {
      for (PendingCommit* p : accepted) p->status = s;
      return;
    }
  }

  // Apply (validated above, so failures here are invariant violations).
  // One write-lock acquisition for the group: readers see whole
  // transactions, never a prefix of one.
  {
    std::unique_lock<std::shared_mutex> write_lock(mu_);
    for (const PendingCommit* p : accepted) {
      for (const GraphUpdate& u : p->updates) {
        AION_CHECK_OK(current_->Apply(u));
      }
    }
  }
  clock_.store(next_ts);

  // Raw updates (loaders that manage ids themselves) must advance the id
  // allocators so later CreateNode/CreateRelationship calls don't collide.
  auto raise_to = [](std::atomic<uint64_t>* counter, uint64_t floor) {
    uint64_t current = counter->load();
    while (current < floor &&
           !counter->compare_exchange_weak(current, floor)) {
    }
  };
  for (const PendingCommit* p : accepted) {
    for (const GraphUpdate& u : p->updates) {
      if (graph::IsNodeOp(u.op)) {
        raise_to(&next_node_id_, u.id + 1);
      } else {
        raise_to(&next_rel_id_, u.id + 1);
        if (u.src != graph::kInvalidNodeId) {
          raise_to(&next_node_id_, u.src + 1);
        }
        if (u.tgt != graph::kInvalidNodeId) {
          raise_to(&next_node_id_, u.tgt + 1);
        }
      }
    }
  }
  commits_.fetch_add(accepted.size(), std::memory_order_relaxed);
  commit_rounds_.fetch_add(1, std::memory_order_relaxed);

  // After-commit phase: listeners observe transactions in commit order.
  for (const PendingCommit* p : accepted) {
    TransactionData data{p->ts, p->updates};
    for (TransactionEventListener* l : listeners_) {
      l->AfterCommit(data);
    }
  }
}

void GraphDatabase::AttachMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) return;
  metric_wal_sync_ = registry->histogram("txn.wal_sync_nanos");
  metric_commit_queue_age_ = registry->gauge("txn.commit_queue_age_nanos");
}

uint64_t GraphDatabase::CommitQueueAgeNanos() {
  uint64_t age = 0;
  {
    std::lock_guard<std::mutex> lock(group_mu_);
    if (!commit_queue_.empty()) {
      const uint64_t now = obs::NowNanos();
      const uint64_t enqueued = commit_queue_.front()->enqueue_nanos;
      age = now > enqueued ? now - enqueued : 0;
    }
  }
  if (metric_commit_queue_age_ != nullptr) {
    metric_commit_queue_age_->Set(static_cast<int64_t>(age));
  }
  return age;
}

Status GraphDatabase::Checkpoint() {
  if (options_.data_dir.empty()) {
    return Status::FailedPrecondition("in-memory database cannot checkpoint");
  }
  // Serialize against commits so the checkpoint is a committed state.
  std::lock_guard<std::mutex> commit_lock(commit_mu_);
  std::shared_lock<std::shared_mutex> read_lock(mu_);
  return RecordStore::Write(*current_, clock_.load(),
                            options_.data_dir + "/store");
}

uint64_t GraphDatabase::CheckpointBytes() const {
  if (options_.data_dir.empty()) return 0;
  return RecordStore::SizeBytes(options_.data_dir + "/store");
}

std::optional<graph::Node> GraphDatabase::GetNode(NodeId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const graph::Node* n = current_->GetNode(id);
  return n == nullptr ? std::nullopt : std::optional<graph::Node>(*n);
}

std::optional<graph::Relationship> GraphDatabase::GetRelationship(
    RelId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const graph::Relationship* r = current_->GetRelationship(id);
  return r == nullptr ? std::nullopt
                      : std::optional<graph::Relationship>(*r);
}

size_t GraphDatabase::NumNodes() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return current_->NumNodes();
}

size_t GraphDatabase::NumRelationships() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return current_->NumRelationships();
}

std::unique_ptr<graph::MemoryGraph> GraphDatabase::CloneCurrent() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return current_->Clone();
}

Status GraphDatabase::ReplayUpdatesSince(
    Timestamp after_ts,
    const std::function<void(const TransactionData&)>& fn) const {
  if (wal_ == nullptr) {
    return Status::FailedPrecondition("in-memory database has no WAL");
  }
  Status replay_status = Status::OK();
  AION_RETURN_IF_ERROR(
      wal_->Scan(0, wal_->end_offset(),
                 [&](uint64_t /*offset*/, util::Slice payload) {
                   auto batch = graph::DecodeUpdateBatch(payload);
                   if (!batch.ok()) {
                     replay_status = batch.status();
                     return false;
                   }
                   if (!batch->empty() && batch->front().ts > after_ts) {
                     TransactionData data{batch->front().ts, *batch};
                     fn(data);
                   }
                   return true;
                 }));
  return replay_status;
}

}  // namespace aion::txn
