// Fixed-size record store: the host database's on-disk graph format,
// mirroring Neo4j's store files (Sec 4.2: "Neo4j ... uses fixed-size
// records to store nodes and relationships. Fixed-size records allow
// constant time lookups based on offsets into a file (by simply multiplying
// a record ID by its corresponding record size)").
//
// Layout:
//   nodes.store  — 64-byte records indexed by NodeId
//   rels.store   — 64-byte records indexed by RelId
//   props.store  — variable-size label/property payloads referenced by
//                  pointer from the fixed records
//   strings      — shared string pool (labels, types, keys, string values)
//   meta         — checkpoint timestamp
//
// This is exactly the 2x-overhead-prone format the paper *avoids* for
// temporal storage (hence Aion's variable-size records, Sec 4.2); here it
// serves its intended role: the non-temporal current graph, giving the
// storage experiments (Fig 10) a faithful host-side footprint.
#ifndef AION_TXN_RECORD_STORE_H_
#define AION_TXN_RECORD_STORE_H_

#include <memory>
#include <string>

#include "graph/memgraph.h"
#include "graph/types.h"
#include "util/status.h"

namespace aion::txn {

class RecordStore {
 public:
  /// Persists `graph` as a checkpoint at commit timestamp `ts`, replacing
  /// any previous checkpoint in `dir`.
  static util::Status Write(const graph::MemoryGraph& graph,
                            graph::Timestamp ts, const std::string& dir);

  /// Loads the checkpointed graph; `ts` receives the checkpoint timestamp.
  /// NotFound when no checkpoint exists.
  static util::StatusOr<std::unique_ptr<graph::MemoryGraph>> Read(
      const std::string& dir, graph::Timestamp* ts);

  /// Total on-disk footprint of the checkpoint files (0 if none).
  static uint64_t SizeBytes(const std::string& dir);

  /// True when `dir` holds a checkpoint.
  static bool Exists(const std::string& dir);
};

}  // namespace aion::txn

#endif  // AION_TXN_RECORD_STORE_H_
