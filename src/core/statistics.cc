#include "core/statistics.h"

#include <algorithm>
#include <cmath>

namespace aion::core {

using graph::GraphUpdate;
using graph::UpdateOp;

namespace {

std::string PatternKey(const std::string& label, const std::string& type) {
  return label + "|" + type;
}

}  // namespace

void GraphStatistics::Observe(const GraphUpdate& u) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (u.op) {
    case UpdateOp::kAddNode:
      ++num_nodes_;
      for (const std::string& l : u.labels) label_counts_.Add(l);
      break;
    case UpdateOp::kDeleteNode:
      --num_nodes_;
      // Per-label decrements arrive via the kRemoveNodeLabel events that
      // well-behaved clients issue; without them label counts stay an
      // upper-bound estimate.
      break;
    case UpdateOp::kAddRelationship:
      ++num_rels_;
      type_counts_.Add(u.type);
      // Pattern counts keyed by the endpoint labels recorded on the update
      // stream (populated by the facade when the latest graph is at hand).
      for (const std::string& l : u.labels) {
        out_pattern_counts_.Add(PatternKey(l, u.type));
      }
      break;
    case UpdateOp::kDeleteRelationship:
      --num_rels_;
      break;
    case UpdateOp::kAddNodeLabel:
      label_counts_.Add(u.label);
      break;
    case UpdateOp::kRemoveNodeLabel:
      label_counts_.Add(u.label, -1);
      break;
    default:
      break;
  }
}

int64_t GraphStatistics::num_nodes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return num_nodes_;
}

int64_t GraphStatistics::num_relationships() const {
  std::lock_guard<std::mutex> lock(mu_);
  return num_rels_;
}

int64_t GraphStatistics::CountWithLabel(const std::string& label) const {
  std::lock_guard<std::mutex> lock(mu_);
  return label_counts_.Get(label);
}

int64_t GraphStatistics::CountWithType(const std::string& type) const {
  std::lock_guard<std::mutex> lock(mu_);
  return type_counts_.Get(type);
}

int64_t GraphStatistics::CountPattern(const std::string& src_label,
                                      const std::string& type) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (src_label.empty() && type.empty()) return num_rels_;
  if (src_label.empty()) return type_counts_.Get(type);
  return out_pattern_counts_.Get(PatternKey(src_label, type));
}

int64_t GraphStatistics::EstimatePattern(const std::string& src_label,
                                         const std::string& type,
                                         const std::string& tgt_label) const {
  // min(#((:A)-[:R]->()), #(()-[:R]->(:B))) with the available base stats;
  // when the target-side count is unknown, fall back to the type count.
  const int64_t src_side = CountPattern(src_label, type);
  const int64_t tgt_side =
      tgt_label.empty() ? src_side : CountWithType(type);
  return std::min(src_side, tgt_side);
}

double GraphStatistics::AverageDegree() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (num_nodes_ <= 0) return 0.0;
  return static_cast<double>(num_rels_) / static_cast<double>(num_nodes_);
}

double GraphStatistics::EstimateExpandFraction(uint32_t hops) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (num_nodes_ <= 0) return 0.0;
  const double degree =
      static_cast<double>(num_rels_) / static_cast<double>(num_nodes_);
  // Reached nodes grow geometrically until saturation.
  double reached = 1.0;
  double frontier = 1.0;
  for (uint32_t h = 0; h < hops; ++h) {
    frontier *= degree;
    reached += frontier;
    if (reached >= static_cast<double>(num_nodes_)) {
      return 1.0;
    }
  }
  return std::min(1.0, reached / static_cast<double>(num_nodes_));
}

double GraphStatistics::EstimateLabelFraction(const std::string& label) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (num_nodes_ <= 0) return 0.0;
  return std::min(
      1.0, static_cast<double>(label_counts_.Get(label)) /
               static_cast<double>(num_nodes_));
}

}  // namespace aion::core
