// GraphStore (Sec 5.1/5.2): an in-memory LRU cache of graph snapshots plus
// the always-current latest graph, maintained synchronously from committed
// updates (the HTAP-style replication that avoids Neo4j's expensive
// backup-based snapshot path). Snapshots are handed out as shared immutable
// pointers; callers layer CowGraph overlays on top instead of copying
// (Sec 5.2 optimization ii). It also keeps named algorithm results so
// incremental procedures can reuse prior computations (Sec 5.2).
#ifndef AION_CORE_GRAPHSTORE_H_
#define AION_CORE_GRAPHSTORE_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/memgraph.h"
#include "graph/types.h"
#include "graph/update.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace aion::core {

class GraphStore {
 public:
  /// `capacity_bytes` bounds the estimated memory of cached snapshots
  /// (the latest graph is excluded from the budget: it is the HTAP replica,
  /// not a cache entry). `metrics`, when given, receives the
  /// "graphstore.{requests,hits,misses,cow_clones}" counters; every lookup
  /// (Get / ClosestAtOrBefore) counts one request and exactly one of
  /// hit/miss, so requests == hits + misses always holds.
  explicit GraphStore(size_t capacity_bytes,
                      obs::MetricsRegistry* metrics = nullptr);

  GraphStore(const GraphStore&) = delete;
  GraphStore& operator=(const GraphStore&) = delete;

  // -------------------------------------------------------------------
  // Latest graph (synchronous replica of the host database)
  // -------------------------------------------------------------------

  /// Applies one committed update to the latest graph.
  util::Status ApplyToLatest(const graph::GraphUpdate& update);

  /// The latest graph as an immutable shared snapshot at `latest_ts`.
  /// Cheap when unchanged since the last call (the replica is published
  /// copy-on-write: mutation after a handout clones first).
  std::shared_ptr<const graph::MemoryGraph> Latest();

  /// Replaces the latest replica wholesale (recovery: the state at `ts` was
  /// rebuilt from the TimeStore after a restart).
  void SeedLatest(std::unique_ptr<graph::MemoryGraph> graph,
                  graph::Timestamp ts);

  graph::Timestamp latest_ts() const {
    std::lock_guard<std::mutex> lock(mu_);
    return latest_ts_;
  }

  /// Runs `fn` on the latest graph without publishing it (no copy-on-write
  /// cost on the next ApplyToLatest). Used for cheap lookups on the ingest
  /// path.
  void WithLatest(
      const std::function<void(const graph::MemoryGraph&)>& fn) const {
    std::lock_guard<std::mutex> lock(mu_);
    fn(*latest_);
  }

  // -------------------------------------------------------------------
  // Snapshot cache (LRU by estimated bytes)
  // -------------------------------------------------------------------

  /// Caches `snapshot` as the graph state at `ts`.
  void Put(graph::Timestamp ts, std::shared_ptr<const graph::MemoryGraph> snapshot);

  /// Exact-timestamp lookup.
  std::shared_ptr<const graph::MemoryGraph> Get(graph::Timestamp ts);

  /// The cached snapshot with the largest timestamp <= t (including the
  /// latest replica when latest_ts <= t). Returns nullptr if none.
  /// `snapshot_ts` receives the snapshot's timestamp.
  std::shared_ptr<const graph::MemoryGraph> ClosestAtOrBefore(
      graph::Timestamp t, graph::Timestamp* snapshot_ts);

  size_t cached_snapshots() const;
  size_t cached_bytes() const;
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t cow_clones() const { return cow_clones_; }

  // -------------------------------------------------------------------
  // Algorithm result store (Sec 5.2: intermediate and final results can be
  // stored in GraphStore for efficient access by subsequent queries)
  // -------------------------------------------------------------------

  void PutResult(const std::string& name, std::vector<double> values);
  std::optional<std::vector<double>> GetResult(const std::string& name) const;

 private:
  void EvictIfNeeded();  // callers hold mu_

  mutable std::mutex mu_;
  size_t capacity_bytes_;

  // Latest replica, held as a shared pointer so published views are plain
  // copies: a mutation clones only when someone still holds a view
  // (use-count copy-on-write).
  std::shared_ptr<graph::MemoryGraph> latest_;
  graph::Timestamp latest_ts_ = 0;

  struct Entry {
    std::shared_ptr<const graph::MemoryGraph> snapshot;
    size_t bytes = 0;
    uint64_t last_used = 0;
  };
  std::map<graph::Timestamp, Entry> snapshots_;  // ordered for floor lookup
  size_t total_bytes_ = 0;
  uint64_t use_clock_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t cow_clones_ = 0;
  // Registry-shared counters (nullptr when metrics are not wired up).
  obs::Counter* metric_requests_ = nullptr;
  obs::Counter* metric_hits_ = nullptr;
  obs::Counter* metric_misses_ = nullptr;
  obs::Counter* metric_cow_clones_ = nullptr;

  std::unordered_map<std::string, std::vector<double>> results_;
};

}  // namespace aion::core

#endif  // AION_CORE_GRAPHSTORE_H_
