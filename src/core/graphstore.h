// GraphStore (Sec 5.1/5.2): an in-memory LRU cache of graph snapshots plus
// the always-current latest graph, maintained synchronously from committed
// updates (the HTAP-style replication that avoids Neo4j's expensive
// backup-based snapshot path). Snapshots are handed out as shared immutable
// pointers; callers layer CowGraph overlays on top instead of copying
// (Sec 5.2 optimization ii). It also keeps named algorithm results so
// incremental procedures can reuse prior computations (Sec 5.2).
//
// Concurrency: the snapshot cache is sharded — each timestamp hashes to one
// of N shards, each guarded by its own std::shared_mutex — so concurrent
// GetGraphAt calls on different snapshots never contend on a single latch.
// The latest replica has its own shared_mutex: mutation (MutateLatest /
// ApplyToLatest / SeedLatest) is exclusive and batch-granular, so every
// handout (Latest / ClosestAtOrBefore) observes a commit-boundary state,
// never a half-applied transaction. LRU bookkeeping (use clocks, hit/miss
// tallies, byte totals) is atomic so read paths only ever take shared locks.
#ifndef AION_CORE_GRAPHSTORE_H_
#define AION_CORE_GRAPHSTORE_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/memgraph.h"
#include "graph/types.h"
#include "graph/update.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace aion::core {

class GraphStore {
 public:
  /// Default snapshot-cache shard count. Shard hit/miss counters are
  /// registered as "graphstore.shard<i>.{hits,misses}".
  static constexpr size_t kDefaultShards = 8;

  /// `capacity_bytes` bounds the estimated memory of cached snapshots
  /// (the latest graph is excluded from the budget: it is the HTAP replica,
  /// not a cache entry). `metrics`, when given, receives the
  /// "graphstore.{requests,hits,misses,cow_clones}" counters; every lookup
  /// (Get / ClosestAtOrBefore) counts one request and exactly one of
  /// hit/miss, so requests == hits + misses always holds. `num_shards`
  /// splits the cache map into independently locked shards (>= 1).
  explicit GraphStore(size_t capacity_bytes,
                      obs::MetricsRegistry* metrics = nullptr,
                      size_t num_shards = kDefaultShards);

  GraphStore(const GraphStore&) = delete;
  GraphStore& operator=(const GraphStore&) = delete;

  // -------------------------------------------------------------------
  // Latest graph (synchronous replica of the host database)
  // -------------------------------------------------------------------

  /// Runs `fn` against the mutable latest graph under the exclusive latch,
  /// then advances the replica clock to `batch_ts`. The copy-on-write check
  /// happens once, before `fn`: if a published view is still alive the
  /// replica is cloned first, so holders keep their immutable snapshot.
  /// Because the whole batch applies inside one critical section, readers
  /// can never observe a half-applied transaction (epoch-pinning soundness).
  util::Status MutateLatest(
      graph::Timestamp batch_ts,
      const std::function<util::Status(graph::MemoryGraph*)>& fn);

  /// Applies one committed update to the latest graph (single-update
  /// convenience over MutateLatest).
  util::Status ApplyToLatest(const graph::GraphUpdate& update);

  /// The latest graph as an immutable shared snapshot. Cheap when unchanged
  /// since the last call (the replica is published copy-on-write: mutation
  /// after a handout clones first). `ts`, when given, receives the replica
  /// clock consistent with the returned graph.
  std::shared_ptr<const graph::MemoryGraph> Latest(
      graph::Timestamp* ts = nullptr);

  /// Replaces the latest replica wholesale (recovery: the state at `ts` was
  /// rebuilt from the TimeStore after a restart).
  void SeedLatest(std::unique_ptr<graph::MemoryGraph> graph,
                  graph::Timestamp ts);

  graph::Timestamp latest_ts() const {
    return latest_ts_.load(std::memory_order_acquire);
  }

  /// Runs `fn` on the latest graph without publishing it (no copy-on-write
  /// cost on the next mutation). Used for cheap lookups on the ingest path.
  void WithLatest(
      const std::function<void(const graph::MemoryGraph&)>& fn) const {
    std::shared_lock<std::shared_mutex> lock(latest_mu_);
    fn(*latest_);
  }

  // -------------------------------------------------------------------
  // Snapshot cache (sharded LRU by estimated bytes)
  // -------------------------------------------------------------------

  /// Caches `snapshot` as the graph state at `ts`.
  void Put(graph::Timestamp ts, std::shared_ptr<const graph::MemoryGraph> snapshot);

  /// Exact-timestamp lookup.
  std::shared_ptr<const graph::MemoryGraph> Get(graph::Timestamp ts);

  /// The cached snapshot with the largest timestamp <= t (including the
  /// latest replica when latest_ts <= t). Returns nullptr if none.
  /// `snapshot_ts` receives the snapshot's timestamp.
  std::shared_ptr<const graph::MemoryGraph> ClosestAtOrBefore(
      graph::Timestamp t, graph::Timestamp* snapshot_ts);

  size_t cached_snapshots() const {
    return num_snapshots_.load(std::memory_order_relaxed);
  }
  size_t cached_bytes() const {
    return total_bytes_.load(std::memory_order_relaxed);
  }
  size_t num_shards() const { return shards_.size(); }
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t cow_clones() const {
    return cow_clones_.load(std::memory_order_relaxed);
  }

  // -------------------------------------------------------------------
  // Algorithm result store (Sec 5.2: intermediate and final results can be
  // stored in GraphStore for efficient access by subsequent queries)
  // -------------------------------------------------------------------

  void PutResult(const std::string& name, std::vector<double> values);
  std::optional<std::vector<double>> GetResult(const std::string& name) const;

 private:
  struct Entry {
    std::shared_ptr<const graph::MemoryGraph> snapshot;
    size_t bytes = 0;
    // Global LRU clock value; updated under the shard's *shared* lock, so
    // it must be atomic (map nodes are stable, the atomic never moves).
    mutable std::atomic<uint64_t> last_used{0};
  };

  struct Shard {
    mutable std::shared_mutex mu;
    std::map<graph::Timestamp, Entry> snapshots;  // ordered for floor lookup
    obs::Counter* metric_hits = nullptr;
    obs::Counter* metric_misses = nullptr;
  };

  Shard& ShardFor(graph::Timestamp ts);
  uint64_t Tick() { return use_clock_.fetch_add(1, std::memory_order_relaxed) + 1; }
  void CountHit(Shard* shard);
  void CountMiss(Shard* shard);

  /// Evicts globally-least-recently-used snapshots until the byte budget
  /// holds (keeping at least one snapshot overall). Serialized by evict_mu_;
  /// takes shard locks one at a time, never nested.
  void EvictIfNeeded();

  size_t capacity_bytes_;

  // Latest replica, held as a shared pointer so published views are plain
  // copies: a mutation clones only when someone still holds a view
  // (use-count copy-on-write).
  mutable std::shared_mutex latest_mu_;
  std::shared_ptr<graph::MemoryGraph> latest_;
  std::atomic<graph::Timestamp> latest_ts_{0};

  std::vector<std::unique_ptr<Shard>> shards_;
  std::mutex evict_mu_;
  std::atomic<size_t> total_bytes_{0};
  std::atomic<size_t> num_snapshots_{0};
  std::atomic<uint64_t> use_clock_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> cow_clones_{0};
  // Registry-shared counters (nullptr when metrics are not wired up).
  obs::Counter* metric_requests_ = nullptr;
  obs::Counter* metric_hits_ = nullptr;
  obs::Counter* metric_misses_ = nullptr;
  obs::Counter* metric_cow_clones_ = nullptr;

  mutable std::mutex results_mu_;
  std::unordered_map<std::string, std::vector<double>> results_;
};

}  // namespace aion::core

#endif  // AION_CORE_GRAPHSTORE_H_
