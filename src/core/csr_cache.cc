#include "core/csr_cache.h"

namespace aion::core {

using util::StatusOr;

CsrCache::CsrCache(const Options& options, const Instruments& instruments)
    : options_(options), instruments_(instruments) {}

StatusOr<std::shared_ptr<const graph::CsrGraph>> CsrCache::GetOrBuild(
    graph::Timestamp ts, const std::string& signature,
    const Builder& builder) {
  const Key key{ts, signature};
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++hits_;
      if (instruments_.hits != nullptr) instruments_.hits->Add();
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      return it->second.csr;
    }
    ++misses_;
    if (instruments_.misses != nullptr) instruments_.misses->Add();
  }

  // Build outside the lock: a multi-second projection of a large snapshot
  // must not serialize against hits on other keys.
  AION_ASSIGN_OR_RETURN(std::shared_ptr<const graph::CsrGraph> built,
                        builder());
  if (instruments_.builds != nullptr) instruments_.builds->Add();
  if (built == nullptr || options_.capacity_bytes == 0) return built;

  const size_t bytes = built->SizeBytes();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // A concurrent miss built the same key first; keep the resident copy
    // (callers compare identical projections, so either copy is correct).
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return it->second.csr;
  }
  lru_.push_front(key);
  Entry entry;
  entry.csr = built;
  entry.bytes = bytes;
  entry.lru_it = lru_.begin();
  entries_.emplace(key, std::move(entry));
  bytes_ += bytes;
  EvictOverBudgetLocked();
  if (instruments_.bytes != nullptr) {
    instruments_.bytes->Set(static_cast<int64_t>(bytes_));
  }
  return built;
}

size_t CsrCache::EvictBelow(graph::Timestamp floor) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t dropped = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.first < floor) {
      auto victim = it++;
      RemoveLocked(victim);
      ++dropped;
    } else {
      ++it;
    }
  }
  if (dropped > 0 && instruments_.bytes != nullptr) {
    instruments_.bytes->Set(static_cast<int64_t>(bytes_));
  }
  return dropped;
}

void CsrCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  while (!entries_.empty()) RemoveLocked(entries_.begin());
  if (instruments_.bytes != nullptr) instruments_.bytes->Set(0);
}

CsrCache::Stats CsrCache::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.evictions = evictions_;
  stats.entries = entries_.size();
  stats.bytes = bytes_;
  return stats;
}

void CsrCache::EvictOverBudgetLocked() {
  while (bytes_ > options_.capacity_bytes && entries_.size() > 1) {
    // Never evict the just-inserted head: a single over-budget projection
    // still serves repeated hits until something newer displaces it.
    auto it = entries_.find(lru_.back());
    RemoveLocked(it);
  }
}

void CsrCache::RemoveLocked(std::map<Key, Entry>::iterator it) {
  bytes_ -= it->second.bytes;
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
  ++evictions_;
  if (instruments_.evictions != nullptr) instruments_.evictions->Add();
}

}  // namespace aion::core
