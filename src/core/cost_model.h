// Cost-based store routing (ISSUE 10 / Sec 6.3): the planner's
// LineageStore-vs-TimeStore choice starts from the paper's 30%
// accessed-fraction heuristic, then graduates to measured costs once enough
// executions have been observed. The model keeps an EWMA of per-node
// expansion nanos for each store (fed by timed AionStore::Expand runs) and
// of snapshot-load nanos (fed by PROFILE's SnapshotLoad stage), and
// estimates a candidate route's cost as
//     est_nodes(hops) * nanos_per_node(store) [+ snapshot_load for the
//     TimeStore, which must materialize the graph at t first]
// where est_nodes comes from the statistics module's cardinality
// estimation. Until both stores have kMinSamples observations the model
// reports !confident() and AionStore::ChooseStoreForExpand falls back to
// the fraction heuristic — fresh stores behave exactly as before.
#ifndef AION_CORE_COST_MODEL_H_
#define AION_CORE_COST_MODEL_H_

#include <cstdint>
#include <mutex>
#include <string>

namespace aion::core {

class OperatorCostModel {
 public:
  /// Observations per store before the model overrides the heuristic.
  static constexpr uint64_t kMinSamples = 8;

  /// One measured LineageStore n-hop expansion: `nanos` wall time touching
  /// `nodes` result nodes (hop levels summed; 0-node runs still count as
  /// one node so the per-unit cost stays finite).
  void ObserveLineageExpand(uint64_t nanos, uint64_t nodes);

  /// One measured TimeStore-route expansion. `nanos` covers the whole
  /// route, including the GetGraphAt materialization it needs.
  void ObserveTimeStoreExpand(uint64_t nanos, uint64_t nodes);

  /// One measured snapshot materialization (PROFILE SnapshotLoad stage or
  /// a timed GetGraphAt). Sharpens the TimeStore estimate's fixed cost.
  void ObserveSnapshotLoad(uint64_t nanos);

  /// True once both expansion routes have kMinSamples observations — the
  /// point where measured costs replace the fraction heuristic.
  bool confident() const;

  double lineage_nanos_per_node() const;
  double timestore_nanos_per_node() const;
  double snapshot_load_nanos() const;
  uint64_t lineage_samples() const;
  uint64_t timestore_samples() const;

  /// Estimated cost (nanos) of expanding to `est_nodes` nodes per route.
  double EstimateLineageCost(double est_nodes) const;
  double EstimateTimeStoreCost(double est_nodes) const;

  /// {"lineage_nanos_per_node":...} — dbms.costmodel() payload.
  std::string ToJson() const;

 private:
  // EWMA with alpha 1/4: recent executions dominate, one outlier does not.
  struct Ewma {
    double value = 0.0;
    uint64_t samples = 0;
    void Observe(double x) {
      ++samples;
      value = samples == 1 ? x : value + 0.25 * (x - value);
    }
  };

  mutable std::mutex mu_;
  Ewma lineage_per_node_;
  Ewma timestore_per_node_;
  Ewma snapshot_load_;
};

}  // namespace aion::core

#endif  // AION_CORE_COST_MODEL_H_
