#include "core/timestore.h"

#include <algorithm>

#include "obs/query_stats.h"
#include "obs/trace.h"
#include "storage/file.h"
#include "util/coding.h"
#include "util/logging.h"

namespace aion::core {

using storage::BpTree;
using storage::LogFile;
using util::DecodeBigEndian64;
using util::DecodeFixed64;
using util::PutBigEndian64;
using util::PutFixed64;
using util::Slice;

namespace {

std::string TimeKey(Timestamp ts, uint64_t seq) {
  std::string key;
  PutBigEndian64(&key, ts);
  PutBigEndian64(&key, seq);
  return key;
}

std::string SnapshotKey(Timestamp ts) {
  std::string key;
  PutBigEndian64(&key, ts);
  return key;
}

}  // namespace

StatusOr<std::unique_ptr<TimeStore>> TimeStore::Open(const Options& options,
                                                     GraphStore* graph_store) {
  AION_RETURN_IF_ERROR(storage::CreateDirIfMissing(options.dir));
  AION_RETURN_IF_ERROR(
      storage::CreateDirIfMissing(options.dir + "/snapshots"));
  std::unique_ptr<TimeStore> store(new TimeStore());
  store->options_ = options;
  store->graph_store_ = graph_store;
  AION_ASSIGN_OR_RETURN(store->log_,
                        LogFile::Open(options.dir + "/updates.log"));
  BpTree::Options tree_options;
  tree_options.cache_pages = options.index_cache_pages;
  tree_options.metrics = options.metrics;
  AION_ASSIGN_OR_RETURN(
      store->time_index_,
      BpTree::Open(options.dir + "/time_index.bpt", tree_options));
  AION_ASSIGN_OR_RETURN(
      store->snapshot_index_,
      BpTree::Open(options.dir + "/snapshot_index.bpt", tree_options));
  if (options.metrics != nullptr) {
    store->metric_appends_ = options.metrics->counter("timestore.appends");
    store->metric_batch_appends_ =
        options.metrics->counter("timestore.batch_appends");
    store->metric_snapshots_written_ =
        options.metrics->counter("timestore.snapshots_written");
    store->metric_snapshots_due_ =
        options.metrics->counter("timestore.snapshot_policy_due");
    store->metric_replayed_updates_ =
        options.metrics->counter("timestore.replayed_updates");
    store->metric_parallel_scans_ =
        options.metrics->counter("timestore.parallel_scans");
    store->gauge_parallel_permille_ =
        options.metrics->gauge("timestore.replay_parallel_permille");
    store->metric_snapshot_build_ =
        options.metrics->histogram("timestore.snapshot_build_nanos");
    store->metric_replay_ =
        options.metrics->histogram("timestore.replay_nanos");
  }

  // Recover clock/sequence from the tail of the time index.
  auto it = store->time_index_->NewIterator();
  it.SeekToLast();
  if (it.Valid()) {
    store->last_ts_.store(DecodeBigEndian64(it.key().data()),
                          std::memory_order_relaxed);
    store->seq_ = DecodeBigEndian64(it.key().data() + 8) + 1;
  }
  AION_RETURN_IF_ERROR(it.status());
  // Recover snapshot accounting.
  auto snap_it = store->snapshot_index_->NewIterator();
  for (snap_it.SeekToFirst(); snap_it.Valid(); snap_it.Next()) {
    store->last_snapshot_ts_ = DecodeBigEndian64(snap_it.key().data());
    auto size = storage::FileSize(snap_it.value().ToString());
    if (size.ok()) {
      store->snapshot_bytes_.fetch_add(*size, std::memory_order_relaxed);
    }
    ++store->snapshot_counter_;
  }
  AION_RETURN_IF_ERROR(snap_it.status());
  return store;
}

Status TimeStore::Append(Timestamp ts,
                         const std::vector<GraphUpdate>& updates,
                         bool* snapshot_due) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (ts < last_ts_.load(std::memory_order_relaxed)) {
    return Status::InvalidArgument("timestamps must be monotonic");
  }
  std::string payload;
  graph::EncodeUpdateBatch(updates, &payload);
  AION_ASSIGN_OR_RETURN(uint64_t offset, log_->Append(payload));
  std::string value;
  PutFixed64(&value, offset);
  AION_RETURN_IF_ERROR(time_index_->Put(TimeKey(ts, seq_), value));
  ++seq_;
  last_ts_.store(ts, std::memory_order_release);
  num_updates_.fetch_add(updates.size(), std::memory_order_relaxed);
  const uint64_t ops =
      ops_since_snapshot_.fetch_add(updates.size(),
                                    std::memory_order_relaxed) +
      updates.size();
  if (metric_appends_ != nullptr) metric_appends_->Add();
  if (snapshot_due != nullptr) {
    switch (options_.policy.kind) {
      case SnapshotPolicy::Kind::kOperationBased:
        *snapshot_due = ops >= options_.policy.every;
        break;
      case SnapshotPolicy::Kind::kTimeBased:
        *snapshot_due = ts - last_snapshot_ts_ >= options_.policy.every;
        break;
      case SnapshotPolicy::Kind::kDisabled:
        *snapshot_due = false;
        break;
    }
    if (*snapshot_due && metric_snapshots_due_ != nullptr) {
      metric_snapshots_due_->Add();
    }
  }
  return Status::OK();
}

Status TimeStore::AppendBatch(const std::vector<WriteBatch::TxnGroup>& groups,
                              bool* snapshot_due) {
  if (groups.empty()) {
    if (snapshot_due != nullptr) *snapshot_due = false;
    return Status::OK();
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  Timestamp prev = last_ts_.load(std::memory_order_relaxed);
  for (const WriteBatch::TxnGroup& g : groups) {
    if (g.ts < prev) {
      return Status::InvalidArgument("timestamps must be monotonic");
    }
    prev = g.ts;
  }
  std::vector<std::string> payloads;
  payloads.reserve(groups.size());
  size_t total_updates = 0;
  for (const WriteBatch::TxnGroup& g : groups) {
    std::string payload;
    graph::EncodeUpdateBatch(g.updates, &payload);
    payloads.push_back(std::move(payload));
    total_updates += g.updates.size();
  }
  std::vector<uint64_t> offsets;
  AION_RETURN_IF_ERROR(log_->AppendBatch(payloads, &offsets).status());
  // (ts, seq) keys are strictly increasing (seq always advances), so this
  // takes AppendSorted's amortized tail-load path.
  std::vector<std::pair<std::string, std::string>> entries;
  entries.reserve(groups.size());
  for (size_t i = 0; i < groups.size(); ++i) {
    std::string value;
    PutFixed64(&value, offsets[i]);
    entries.emplace_back(TimeKey(groups[i].ts, seq_), std::move(value));
    ++seq_;
  }
  AION_RETURN_IF_ERROR(time_index_->AppendSorted(entries));
  const Timestamp batch_last = groups.back().ts;
  last_ts_.store(batch_last, std::memory_order_release);
  num_updates_.fetch_add(total_updates, std::memory_order_relaxed);
  const uint64_t ops =
      ops_since_snapshot_.fetch_add(total_updates,
                                    std::memory_order_relaxed) +
      total_updates;
  if (metric_appends_ != nullptr) metric_appends_->Add(groups.size());
  if (metric_batch_appends_ != nullptr) metric_batch_appends_->Add();
  if (snapshot_due != nullptr) {
    switch (options_.policy.kind) {
      case SnapshotPolicy::Kind::kOperationBased:
        *snapshot_due = ops >= options_.policy.every;
        break;
      case SnapshotPolicy::Kind::kTimeBased:
        *snapshot_due = batch_last - last_snapshot_ts_ >=
                        options_.policy.every;
        break;
      case SnapshotPolicy::Kind::kDisabled:
        *snapshot_due = false;
        break;
    }
    if (*snapshot_due && metric_snapshots_due_ != nullptr) {
      metric_snapshots_due_->Add();
    }
  }
  return Status::OK();
}

Status TimeStore::WriteSnapshot(Timestamp ts,
                                const graph::MemoryGraph& graph) {
  AION_TRACE_SPAN("timestore.snapshot_build", metric_snapshot_build_);
  if (metric_snapshots_written_ != nullptr) metric_snapshots_written_->Add();
  std::string payload;
  graph.EncodeTo(&payload);
  std::unique_lock<std::shared_mutex> lock(mu_);
  const std::string path = options_.dir + "/snapshots/snap_" +
                           std::to_string(ts) + "_" +
                           std::to_string(snapshot_counter_++);
  AION_ASSIGN_OR_RETURN(auto file, storage::RandomAccessFile::Open(path));
  AION_RETURN_IF_ERROR(file->Write(0, payload.data(), payload.size()));
  AION_RETURN_IF_ERROR(snapshot_index_->Put(SnapshotKey(ts), path));
  snapshot_bytes_.fetch_add(payload.size(), std::memory_order_relaxed);
  last_snapshot_ts_ = ts;
  ops_since_snapshot_.store(0, std::memory_order_relaxed);
  return Status::OK();
}

StatusOr<std::vector<GraphUpdate>> TimeStore::GetDiff(Timestamp start,
                                                      Timestamp end) const {
  // Half-open [start, end): the common interval convention of the temporal
  // API. end is exclusive, so the last included timestamp is end - 1.
  if (end <= start) return std::vector<GraphUpdate>{};
  return ScanUpdates(start, end - 1);
}

StatusOr<std::vector<GraphUpdate>> TimeStore::ReplayRange(Timestamp base_ts,
                                                          Timestamp t) const {
  // (base_ts, t]: forward replay from a base snapshot *at* base_ts (whose
  // state already includes base_ts's updates) up to and including t.
  if (t <= base_ts) return std::vector<GraphUpdate>{};
  return ScanUpdates(base_ts + 1, t);
}

StatusOr<std::vector<GraphUpdate>> TimeStore::ScanUpdates(
    Timestamp first_ts, Timestamp last_ts) const {
  // Phase 1 — index walk under the shared latch: collect the log offsets of
  // every record in range. This is the only part that can contend with an
  // Append; it touches index pages only.
  std::vector<uint64_t> offsets;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = time_index_->NewIterator();
    for (it.Seek(TimeKey(first_ts, 0)); it.Valid(); it.Next()) {
      const Timestamp ts = DecodeBigEndian64(it.key().data());
      if (ts > last_ts) break;
      offsets.push_back(DecodeFixed64(it.value().data()));
    }
    AION_RETURN_IF_ERROR(it.status());
  }
  if (offsets.empty()) return std::vector<GraphUpdate>{};

  // Phase 2 — latch-free read + decode. Indexed records are immutable (the
  // log is append-only), so no latch is needed; pread is position-safe.
  std::vector<std::vector<GraphUpdate>> parts(offsets.size());
  auto decode_one = [&](size_t i) -> Status {
    std::string record;
    AION_RETURN_IF_ERROR(log_->Read(offsets[i], &record));
    AION_ASSIGN_OR_RETURN(parts[i], graph::DecodeUpdateBatch(record));
    return Status::OK();
  };
  const bool parallel =
      options_.replay_pool != nullptr &&
      options_.replay_pool->num_threads() > 1 &&
      offsets.size() >= options_.parallel_replay_threshold;
  if (parallel) {
    std::vector<Status> statuses(offsets.size());
    options_.replay_pool->ParallelFor(
        offsets.size(), [&](size_t i) { statuses[i] = decode_one(i); });
    for (const Status& s : statuses) AION_RETURN_IF_ERROR(s);
    if (metric_parallel_scans_ != nullptr) metric_parallel_scans_->Add();
    records_scanned_parallel_.fetch_add(offsets.size(),
                                        std::memory_order_relaxed);
  } else {
    for (size_t i = 0; i < offsets.size(); ++i) {
      AION_RETURN_IF_ERROR(decode_one(i));
    }
  }
  const uint64_t total =
      records_scanned_.fetch_add(offsets.size(), std::memory_order_relaxed) +
      offsets.size();
  if (gauge_parallel_permille_ != nullptr && total > 0) {
    gauge_parallel_permille_->Set(static_cast<int64_t>(
        records_scanned_parallel_.load(std::memory_order_relaxed) * 1000 /
        total));
  }

  // Deterministic merge: concatenation in index order reproduces the exact
  // (ts, seq) sequential order, whichever worker decoded which partition.
  size_t total_updates = 0;
  for (const auto& part : parts) total_updates += part.size();
  std::vector<GraphUpdate> diff;
  diff.reserve(total_updates);
  for (auto& part : parts) {
    diff.insert(diff.end(), std::make_move_iterator(part.begin()),
                std::make_move_iterator(part.end()));
  }
  return diff;
}

StatusOr<std::shared_ptr<const graph::MemoryGraph>> TimeStore::FindBase(
    Timestamp t, Timestamp* base_ts) {
  // Memory first.
  Timestamp mem_ts = 0;
  std::shared_ptr<const graph::MemoryGraph> mem =
      graph_store_->ClosestAtOrBefore(t, &mem_ts);

  // Disk: largest snapshot timestamp <= t.
  Timestamp disk_ts = 0;
  std::string disk_path;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = snapshot_index_->NewIterator();
    it.SeekForPrev(SnapshotKey(t));
    if (it.Valid()) {
      disk_ts = DecodeBigEndian64(it.key().data());
      disk_path = it.value().ToString();
    }
    AION_RETURN_IF_ERROR(it.status());
  }

  if (mem != nullptr && (disk_path.empty() || mem_ts >= disk_ts)) {
    *base_ts = mem_ts;
    return mem;
  }
  if (!disk_path.empty()) {
    AION_ASSIGN_OR_RETURN(auto snapshot, LoadSnapshotFile(disk_path));
    *base_ts = disk_ts;
    // Cache the loaded snapshot for subsequent queries.
    graph_store_->Put(disk_ts, snapshot);
    return snapshot;
  }
  *base_ts = 0;
  return std::shared_ptr<const graph::MemoryGraph>(nullptr);
}

StatusOr<std::shared_ptr<const graph::MemoryGraph>>
TimeStore::LoadSnapshotFile(const std::string& path) const {
  AION_ASSIGN_OR_RETURN(auto file, storage::RandomAccessFile::Open(path));
  std::string payload(file->size(), '\0');
  AION_RETURN_IF_ERROR(file->Read(0, payload.size(), payload.data()));
  AION_ASSIGN_OR_RETURN(auto graph,
                        graph::MemoryGraph::DecodeFrom(Slice(payload)));
  return std::shared_ptr<const graph::MemoryGraph>(std::move(graph));
}

StatusOr<std::shared_ptr<const graph::GraphView>> TimeStore::GetGraphAt(
    Timestamp t) {
  AION_TRACE_SPAN("timestore.replay", metric_replay_);
  Timestamp base_ts = 0;
  AION_ASSIGN_OR_RETURN(auto base, FindBase(t, &base_ts));
  if (base == nullptr) {
    base = std::make_shared<const graph::MemoryGraph>();
    base_ts = 0;
  }
  AION_ASSIGN_OR_RETURN(std::vector<GraphUpdate> diff,
                        ReplayRange(base_ts, t));
  if (metric_replayed_updates_ != nullptr) {
    metric_replayed_updates_->Add(diff.size());
    obs::TickRecordsReplayed(diff.size());
  }
  if (diff.empty()) {
    return std::static_pointer_cast<const graph::GraphView>(base);
  }
  auto cow = std::make_shared<graph::CowGraph>(base);
  AION_RETURN_IF_ERROR(cow->ApplyAll(diff));
  return std::static_pointer_cast<const graph::GraphView>(cow);
}

StatusOr<std::unique_ptr<graph::MemoryGraph>> TimeStore::MaterializeGraphAt(
    Timestamp t) {
  AION_TRACE_SPAN("timestore.replay", metric_replay_);
  Timestamp base_ts = 0;
  AION_ASSIGN_OR_RETURN(auto base, FindBase(t, &base_ts));
  std::unique_ptr<graph::MemoryGraph> graph;
  if (base == nullptr) {
    graph = std::make_unique<graph::MemoryGraph>();
    base_ts = 0;
  } else {
    graph = base->Clone();
  }
  AION_ASSIGN_OR_RETURN(std::vector<GraphUpdate> diff,
                        ReplayRange(base_ts, t));
  if (metric_replayed_updates_ != nullptr) {
    metric_replayed_updates_->Add(diff.size());
    obs::TickRecordsReplayed(diff.size());
  }
  AION_RETURN_IF_ERROR(graph->ApplyAll(diff));
  return graph;
}

uint64_t TimeStore::SizeBytes() const {
  return log_->SizeBytes() + time_index_->SizeBytes() +
         snapshot_index_->SizeBytes() +
         snapshot_bytes_.load(std::memory_order_relaxed);
}

Status TimeStore::Flush() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  AION_RETURN_IF_ERROR(time_index_->Flush());
  AION_RETURN_IF_ERROR(snapshot_index_->Flush());
  return Status::OK();
}

}  // namespace aion::core
